# Developer entry points. `make check` is the pre-PR gate: it runs the
# tier-1 build/test pass plus vet, the race detector (the cluster and
# storage layers are concurrency-sensitive; -race is what catches a bad
# interleaving before a reviewer does), and a short run of each fuzz
# target so a decoder regression cannot merge unfuzzed.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test bench bench-ckpt bench-parallel bench-restore bench-replication bench-scale bench-lazy bench-policy scenarios check vet race fuzz chaos chaos-incremental chaos-replication chaos-sharded chaos-lazy chaos-policy

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# Incremental-shipping bench: full images vs delta chains across dirty
# rates (experiment E14), emitted machine-readable for trend tracking.
bench-ckpt:
	$(GO) run ./cmd/crbench -benchckpt BENCH_incremental.json

# Parallel-capture / pipelined-shipping bench (experiment E15): capture
# throughput across shard-worker counts, publish latency p50/p99 through
# the pipelined agent path, end-of-run restore latency.
bench-parallel:
	$(GO) run ./cmd/crbench -bench5 BENCH_5.json

# Restore fast-path bench (experiment E16): recovery latency vs chain
# depth and replay width against the single-full-image baseline, the
# same chain after a server-side fold, and failover-measured restore
# p50/p99 from an autonomic run with CompactAfter set.
bench-restore:
	$(GO) run ./cmd/crbench -bench6 BENCH_6.json

# Replication bench (experiment E17): publish overhead of buddy mirrors
# and 2+1 erasure sharding vs the unreplicated server write, restore
# latency from the nearest surviving replica with the owner's disk lost,
# and failover-measured restore p50 per placement mode. Exits nonzero if
# the degraded-restore p50 exceeds 2x the BENCH_6-style baseline.
bench-replication:
	$(GO) run ./cmd/crbench -bench7 BENCH_7.json

# Fleet-scale bench (experiment E18): the fleet-1k and fleet-10k catalog
# scenarios measured back to back — orchestration events/sec, detection
# and failover latency tails, and the armed-timer count at each scale.
# Exits nonzero if either scenario fails its criteria or the 10k-node
# detect p99 exceeds 2x the 1k-node p99.
bench-scale:
	$(GO) run ./cmd/crbench -bench8 BENCH_8.json

# Lazy-restore bench (experiment E19): time-to-first-instruction of the
# restart-before-read failover vs the eager full restore of the same
# 16-delta chain across replay widths, plus lazy-vs-eager cluster
# failover twins on the same fault schedule. Exits nonzero unless TTFI
# stays at or below 0.25x the eager restore with the drained memory
# image byte-identical to the eager one at every width.
bench-lazy:
	$(GO) run ./cmd/crbench -bench9 BENCH_9.json

# Policy bench (experiment E20): the Young/Daly cadence engine vs a
# fixed-interval twin on the same seeded fault schedule (total work lost
# to failures), and the liveness content policy's delta chain vs a plain
# write-protect twin (bytes shipped, restored live state byte-compared).
# Exits nonzero unless youngdaly work-lost stays at or below 0.8x the
# fixed twin and the liveness chain ships at or below 0.9x the baseline
# with the restored live state byte-identical.
bench-policy:
	$(GO) run ./cmd/crbench -bench10 BENCH_10.json

# The declarative scenario-validation suite's CI subset: every fast
# catalog scenario (64..1000 nodes, faulty digests, whole-shard
# evacuation, the broken-fencing contrast run) judged against its own
# ValidationCriteria. The full 10k-node scenario runs in `make test`
# (skipped only under -short) and in bench-scale.
scenarios:
	$(GO) test ./internal/scenario/ -run 'TestFastScenariosPass|TestBrokenFencingScenarioCatchesDoubleCommit' -count=1 -v

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short, budgeted runs of every fuzz target (Go runs one -fuzz target per
# invocation). The nightly CI job runs these longer plus a 10k-seed chaos
# sweep.
fuzz:
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz '^FuzzImageDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz '^FuzzImageRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/storage/erasure -run '^$$' -fuzz '^FuzzErasureRoundTrip$$' -fuzztime $(FUZZTIME)

# The nightly chaos sweep (10k seeds); failing seeds print shrunken
# chaos.Replay reproducer lines and fail the target.
chaos:
	$(GO) run ./cmd/crsurvey chaos -seeds 10000

# Same sweep with delta-chain shipping forced on every seed, so the
# chain invariants (ancestry-before-durability, GC never breaks a live
# chain, fenced heads) see full coverage nightly rather than only the
# generator's incremental fraction.
chaos-incremental:
	$(GO) run ./cmd/crsurvey chaos -seeds 2000 -incremental

# Replicated-placement sweep: buddy mirrors forced on every seed, 2+1
# erasure on the wide-enough ones, including the node+replica
# double-failure schedules the generator draws. The repl-durability
# checker masks one more holder than the run actually lost, and
# repl-converged demands re-replication finished by the cut. Part of
# `make check` (80 seeds here; the nightly run goes wider).
chaos-replication:
	$(GO) run ./cmd/crsurvey chaos -seeds 80 -replication

# Sharded-detection sweep: digest-path detection forced on every seed
# wide enough for two shards, so aggregator failover, observer probing,
# and digest loss run under the full chaos fault palette (80 seeds here;
# the nightly run goes wider).
chaos-sharded:
	$(GO) run ./cmd/crsurvey chaos -seeds 80 -sharded

# Lazy-restore sweep: restart-before-read failover forced on every seed,
# so demand faults, background prefetch, settle-before-capture, and the
# lazy self-fencing path run under the full chaos fault palette. The
# digest checker makes every seed a lazy-vs-eager equivalence proof: a
# completed run's memory fingerprint must match the eager replay's (80
# seeds here; the nightly run goes wider).
chaos-lazy:
	$(GO) run ./cmd/crsurvey chaos -seeds 80 -lazy

# Policy sweep: the Young/Daly cadence (plus liveness content on
# incremental seeds) forced on every seed, with the work-lost economics
# checker comparing each run against a fixed-cadence twin of the same
# spec — adapting the interval must never lose more than 2x the work of
# not adapting (80 seeds here; the nightly run goes wider).
chaos-policy:
	$(GO) run ./cmd/crsurvey chaos -seeds 80 -policy

check: build vet race fuzz scenarios chaos-replication chaos-sharded chaos-lazy chaos-policy bench-policy
