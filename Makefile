# Developer entry points. `make check` is the pre-PR gate: it runs the
# tier-1 build/test pass plus vet and the race detector (the cluster and
# storage layers are concurrency-sensitive; -race is what catches a bad
# interleaving before a reviewer does).

GO ?= go

.PHONY: all build test bench check vet race

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet race
