# Developer entry points. `make check` is the pre-PR gate: it runs the
# tier-1 build/test pass plus vet, the race detector (the cluster and
# storage layers are concurrency-sensitive; -race is what catches a bad
# interleaving before a reviewer does), and a short run of each fuzz
# target so a decoder regression cannot merge unfuzzed.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test bench check vet race fuzz chaos

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short, budgeted runs of every fuzz target (Go runs one -fuzz target per
# invocation). The nightly CI job runs these longer plus a 10k-seed chaos
# sweep.
fuzz:
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz '^FuzzImageDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz '^FuzzImageRoundTrip$$' -fuzztime $(FUZZTIME)

# The nightly chaos sweep (10k seeds); failing seeds print shrunken
# chaos.Replay reproducer lines and fail the target.
chaos:
	$(GO) run ./cmd/crsurvey chaos -seeds 10000

check: build vet race fuzz
