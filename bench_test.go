// Benchmarks regenerating every artifact of the paper: F1 (Figure 1),
// T1 (Table 1), and the derived experiments E1–E11 of DESIGN.md §3.
// Each benchmark runs the corresponding generator; simulated-time results
// are attached as custom metrics (ns of *simulated* time are reported as
// "sim-ms/op" style metrics where meaningful). Run:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/mechanism"
	"repro/internal/simtime"
)

func BenchmarkF1Figure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(repro.Figure1(), "system-level") {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkT1Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(repro.Table1Diff()) != 0 {
			b.Fatal("Table 1 mismatch")
		}
	}
}

func BenchmarkE1UserVsSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E1UserVsSystem([]int{4}).NumRows() < 4 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE2Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E2Incremental(4).NumRows() < 5 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE3BlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E3BlockSize(2, []int{256, 1024, 4096}).NumRows() != 4 { // 3 sweep + hybrid
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE4Agents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E4Agents([]int{0, 8}).NumRows() < 8 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE5Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E5Storage([]float64{24}).NumRows() != 3 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE6Interval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E6Interval(8).NumRows() < 8 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE7Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E7Hardware(2).NumRows() != 3 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE8MPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E8MPI([]int{2, 8}, 4).NumRows() != 2 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE9Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E9Matrix().NumRows() != 5 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE10Extras(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E10Extras().NumRows() < 6 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkE11StorageFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.E11StorageFaults(0.10).NumRows() != 2 {
			b.Fatal("missing rows")
		}
	}
}

// --- Micro-benchmarks on the core engine ---

// benchCapture measures one full kernel-level capture of a dense image.
func benchCapture(b *testing.B, mib int) {
	app := repro.Dense{MiB: mib}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("bench", reg)
	m := repro.NewCRAK()
	if err := m.Install(k); err != nil {
		b.Fatal(err)
	}
	p, err := k.Spawn(app.Name())
	if err != nil {
		b.Fatal(err)
	}
	repro.SetIterations(p, 1<<30)
	for p.Regs().PC < 1 {
		k.RunFor(repro.Millisecond)
	}
	disk := repro.NewLocalDisk("d")
	b.SetBytes(int64(mib) << 20)
	b.ResetTimer()
	var simTotal simtime.Duration
	for i := 0; i < b.N; i++ {
		tk, err := repro.Checkpoint(m, k, p, disk)
		if err != nil {
			b.Fatal(err)
		}
		simTotal += tk.Total()
	}
	b.ReportMetric(float64(simTotal.Millis())/float64(b.N), "sim-ms/ckpt")
}

func BenchmarkCaptureFull16MiB(b *testing.B) { benchCapture(b, 16) }
func BenchmarkCaptureFull64MiB(b *testing.B) { benchCapture(b, 64) }

func BenchmarkIncrementalDelta(b *testing.B) {
	app := repro.Sparse{MiB: 16, WriteFrac: 0.05, Seed: 9}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("bench", reg)
	tick := repro.NewTICK()
	tick.MaxChain = 0 // unbounded chain: every capture after the first is a delta
	if err := tick.Install(k); err != nil {
		b.Fatal(err)
	}
	p, _ := k.Spawn(app.Name())
	repro.SetIterations(p, 1<<30)
	disk := repro.NewLocalDisk("d")
	if _, err := repro.Checkpoint(tick, k, p, disk); err != nil {
		b.Fatal(err) // full baseline
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(repro.Millisecond)
		tk, err := repro.Checkpoint(tick, k, p, disk)
		if err != nil {
			b.Fatal(err)
		}
		if tk.Img.Mode != checkpoint.ModeIncremental {
			b.Fatal("not incremental")
		}
	}
}

func BenchmarkRestore64MiB(b *testing.B) {
	app := repro.Dense{MiB: 64}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("bench", reg)
	m := repro.NewCRAK()
	m.Install(k)
	p, _ := k.Spawn(app.Name())
	repro.SetIterations(p, 1<<30)
	for p.Regs().PC < 1 {
		k.RunFor(repro.Millisecond)
	}
	tk, err := repro.Checkpoint(m, k, p, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := repro.NewMachine("dst", reg)
		m2 := repro.NewCRAK()
		m2.Install(dst)
		if _, err := m2.Restart(dst, []*repro.Image{tk.Img}, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImageCodec(b *testing.B) {
	app := repro.Dense{MiB: 16}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("bench", reg)
	m := repro.NewCRAK()
	m.Install(k)
	p, _ := k.Spawn(app.Name())
	repro.SetIterations(p, 1<<30)
	for p.Regs().PC < 1 {
		k.RunFor(repro.Millisecond)
	}
	tk, err := mechanism.Checkpoint(m, k, p, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	data, err := tk.Img.EncodeBytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := tk.Img.EncodeBytes()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := checkpoint.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTrackers compares the dirty trackers under one
// mechanism, the DESIGN.md §4 ablation.
func BenchmarkAblationTrackers(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mk   func(k *repro.Kernel, p *repro.Process) checkpoint.Tracker
	}{
		{"full", func(k *repro.Kernel, p *repro.Process) checkpoint.Tracker {
			return &checkpoint.FullTracker{AS: p.AS}
		}},
		{"kernel-wp", func(k *repro.Kernel, p *repro.Process) checkpoint.Tracker {
			return checkpoint.NewKernelWPTracker(k, p)
		}},
		{"hash-1KiB", func(k *repro.Kernel, p *repro.Process) checkpoint.Tracker {
			t, _ := checkpoint.NewHashTracker(&checkpoint.KernelAccessor{K: k, P: p}, k, k.CM, 1024, 64)
			return t
		}},
		{"hybrid-256B", func(k *repro.Kernel, p *repro.Process) checkpoint.Tracker {
			t, _ := checkpoint.NewHybridTracker(k, p, k, 256)
			return t
		}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			app := repro.Sparse{MiB: 8, WriteFrac: 0.05, Seed: 4}
			reg := repro.NewRegistry()
			reg.MustRegister(app)
			k := repro.NewMachine("bench", reg)
			p, _ := k.Spawn(app.Name())
			repro.SetIterations(p, 1<<30)
			for p.Regs().PC < 1 {
				k.RunFor(repro.Millisecond)
			}
			trk := cfg.mk(k, p)
			if err := trk.Arm(); err != nil {
				b.Fatal(err)
			}
			defer trk.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.RunFor(repro.Millisecond)
				if _, err := trk.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
