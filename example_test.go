package repro_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the complete checkpoint/restart flow with CRAK:
// run, checkpoint through the kernel thread, kill, restart, and verify
// the result equals an undisturbed run. The simulation is deterministic,
// so the output is exact.
func Example() {
	app := repro.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 9}

	// Reference: what the undisturbed application computes.
	refReg := repro.NewRegistry()
	refReg.MustRegister(app)
	kr := repro.NewMachine("ref", refReg)
	pr, _ := kr.Spawn(app.Name())
	repro.SetIterations(pr, 12)
	kr.RunUntilExit(pr, kr.Now().Add(repro.Minute))
	want := repro.Fingerprint(pr)

	// The checkpointed run.
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("node0", reg)
	m := repro.NewCRAK()
	if err := m.Install(k); err != nil {
		fmt.Println(err)
		return
	}
	p, _ := k.Spawn(app.Name())
	repro.SetIterations(p, 12)
	for p.Regs().PC < 6 {
		k.RunFor(repro.Millisecond)
	}

	disk := repro.NewLocalDisk("disk0")
	tk, err := repro.Checkpoint(m, k, p, disk)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("checkpointed at iteration %d (%s)\n", tk.Img.Threads[0].Regs.PC, tk.Img.Mode)

	k.Exit(p, 137) // failure
	k.Procs.Remove(p.PID)

	chain, _ := repro.LoadChain(disk, tk.Img.ObjectName())
	p2, _ := m.Restart(k, chain, true)
	k.RunUntilExit(p2, k.Now().Add(repro.Minute))
	fmt.Printf("restart reproduces the reference result: %v\n", repro.Fingerprint(p2) == want)
	// Output:
	// checkpointed at iteration 6 (full)
	// restart reproduces the reference result: true
}
