// Process migration with ZAP pods: a process holding kernel-persistent
// state (a socket, a shared-memory segment, and its own PID stored in
// memory) migrates between cluster nodes. The pod virtualizes those
// resources so the process notices nothing — the §3 argument for
// system-level virtualization, live.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cluster"
	"repro/internal/mechanism"
	"repro/internal/simos/proc"
)

func main() {
	app := repro.ResourceUser{MiB: 8, Iterations: 3000, UseSocket: true, UseShm: true, CheckPID: true}

	reg := repro.NewRegistry()
	// ZAP wraps the program in a pod shim (syscall interception); the
	// wrapped binary must exist on every node.
	podded := repro.NewZAP().Prepare(app)
	reg.MustRegister(podded)

	c := repro.NewCluster(3, 42, reg)
	pool := cluster.NewMechPool(c, func() mechanism.Mechanism { return repro.NewZAP() })
	// Install the pod runtime on every node up front, so the migrating
	// process's (preserved) PID never collides with a late-spawned
	// checkpoint kernel thread.
	for i := range c.Nodes() {
		if _, err := pool.For(i); err != nil {
			log.Fatal(err)
		}
	}
	src := c.Node(0)
	p, err := src.K.Spawn(podded.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pid %d running in a pod on %s (socket + shm + pid checks every 8 iterations)\n",
		p.PID, src.Name)

	c.RunUntil(func() bool { return p.Regs().PC >= 500 }, repro.Minute)
	fmt.Printf("t=%v: iteration %d — migrating %s → %s\n", c.Now(), p.Regs().PC, src.Name, c.Node(1).Name)

	p2, err := cluster.Migrate(c, pool, 0, 1, p.PID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v: now pid %d on %s (PID preserved: %v)\n", c.Now(), p2.PID, c.Node(1).Name, p2.PID == p.PID)

	c.RunUntil(func() bool { return p2.Regs().PC >= 1500 }, repro.Minute)
	fmt.Printf("t=%v: iteration %d — migrating again %s → %s\n", c.Now(), p2.Regs().PC, c.Node(1).Name, c.Node(2).Name)
	p3, err := cluster.Migrate(c, pool, 1, 2, p2.PID)
	if err != nil {
		log.Fatal(err)
	}

	if !c.RunUntil(func() bool { return p3.State == proc.StateZombie }, repro.Minute) {
		log.Fatal("migrated process did not finish")
	}
	switch p3.ExitCode {
	case 0:
		fmt.Printf("t=%v: finished on %s with exit 0 — the process never noticed its two migrations\n",
			c.Now(), c.Node(2).Name)
	default:
		log.Fatalf("process detected the migration: exit %d", p3.ExitCode)
	}
	fmt.Printf("result fingerprint: %#016x\n", repro.Fingerprint(p3))
}
