// Incremental checkpointing with TICK, the paper's "direction forward":
// a transparent kernel-level checkpointer with automatic (timer-driven)
// initiation and page-granularity incremental capture. The example runs a
// sparse scientific code, lets TICK checkpoint it every 10 ms of simulated
// time, and prints the shrinking delta sizes; then it kills the process
// and restores it from the incremental chain.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/mechanism"
)

func main() {
	app := repro.Sparse{MiB: 16, WriteFrac: 0.03, Seed: 11}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("node0", reg)

	tick := repro.NewTICK()
	if err := tick.Install(k); err != nil {
		log.Fatal(err)
	}
	p, err := k.Spawn(app.Name())
	if err != nil {
		log.Fatal(err)
	}
	repro.SetIterations(p, 1<<30)

	_, remote := repro.NewCheckpointServer("ckpt-server")

	// Automatic initiation: a kernel timer drives the checkpoints; no
	// user, tool, or application involvement (§1's autonomic behaviour).
	var leaf string
	stop, err := tick.Attach(k, p, remote, nil, 10*repro.Millisecond, func(t *mechanism.Ticket) {
		if t.Err != nil {
			return
		}
		leaf = t.Img.ObjectName()
		fmt.Printf("t=%-12v %-16s %-11s payload %7.2f MB  capture %v\n",
			k.Now(), t.Img.ObjectName(), t.Img.Mode.String(), float64(t.Stats.PayloadBytes)/1e6, t.CaptureTime())
	})
	if err != nil {
		log.Fatal(err)
	}
	k.RunFor(150 * repro.Millisecond)
	stop()

	if leaf == "" {
		log.Fatal("no checkpoints were taken")
	}

	// Kill and restore from the full+deltas chain.
	iterAtDeath := p.Regs().PC
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	chain, err := repro.LoadChain(remote, leaf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprocess killed at iteration %d; restoring from a %d-image chain\n", iterAtDeath, len(chain))
	p2, err := tick.Restart(k, chain, true)
	if err != nil {
		log.Fatal(err)
	}
	k.RunFor(5 * repro.Millisecond)
	fmt.Printf("restored pid %d resumed at iteration %d and is running again (now at %d)\n",
		p2.PID, chain[len(chain)-1].Threads[0].Regs.PC, p2.Regs().PC)
}
