// Coordinated checkpointing of a parallel job (LAM/MPI [32], CoCheck
// [28]): 8 halo-ring ranks on 4 nodes checkpoint through per-node BLCR,
// coordinated at a drained iteration boundary. A node then fails and the
// whole job restarts — the failed node's ranks on a spare — reproducing
// the reference result exactly.
//
//	go run ./examples/mpi
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/checkpoint"
)

func main() {
	const nRanks, iters = 8, 120

	// Reference run: the fingerprints an undisturbed job produces.
	ref := buildJob(nRanks, iters)
	if !ref.RunUntilDone(10 * repro.Minute) {
		log.Fatal("reference job stuck")
	}
	want, _ := ref.Fingerprints()

	// The real run.
	j := buildJob(nRanks, iters)
	c := j.C
	c.RunFor(5 * repro.Millisecond)

	var imgs []*checkpoint.Image
	if err := j.RequestCheckpoint(c.Node(0).Remote(), func(got []*checkpoint.Image) { imgs = got }); err != nil {
		log.Fatal(err)
	}
	if err := j.WaitCheckpoint(repro.Minute); err != nil {
		log.Fatal(err)
	}
	var total int
	for _, img := range imgs {
		total += img.PayloadBytes()
	}
	fmt.Printf("t=%v: coordinated checkpoint of %d ranks — drained in %v, %0.1f MB total, all at iteration %d\n",
		c.Now(), nRanks, j.LastDrainTime, float64(total)/1e6, imgs[0].Threads[0].Regs.PC)

	c.RunFor(3 * repro.Millisecond)
	fmt.Printf("t=%v: node0 fails (fail-stop)\n", c.Now())
	c.Fail(0)

	// Every node hosts two ranks; pack node0's onto node3.
	assign := make([]int, nRanks)
	for r := 0; r < nRanks; r++ {
		n := r % 4
		if n == 0 {
			n = 3
		}
		assign[r] = n
	}
	if err := j.Restart(imgs, assign); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v: job restarted from the checkpoint (node0's ranks now on node3)\n", c.Now())

	if !j.RunUntilDone(10 * repro.Minute) {
		log.Fatal("restarted job stuck")
	}
	got, _ := j.Fingerprints()
	for r := range want {
		if got[r] != want[r] {
			log.Fatalf("rank %d fingerprint mismatch", r)
		}
	}
	fmt.Printf("t=%v: all %d ranks finished; fingerprints match the reference run exactly\n", c.Now(), nRanks)
}

func buildJob(nRanks int, iters uint64) *repro.ParallelJob {
	c := repro.NewCluster(4, 21, repro.NewRegistry())
	j := repro.NewParallelJob(c, nRanks)
	if err := j.Launch(repro.HaloRing{MiB: 2, Iterations: iters, PagesPerIter: 32, HaloBytes: 8192}); err != nil {
		log.Fatal(err)
	}
	return j
}
