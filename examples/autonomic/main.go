// Autonomic fault tolerance (§1): a long job runs on a cluster whose
// nodes fail (fail-stop, exponential MTBF). A supervisor checkpoints the
// job through CRAK to the remote checkpoint server with a Young-interval
// policy driven by the online MTBF estimate, and restarts it on a spare
// node after each failure. The same run with node-local storage shows why
// Table 1's local-only mechanisms provide only rudimentary fault
// tolerance.
//
//	go run ./examples/autonomic
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cluster"
)

func main() { run() }

func run() {
	app := repro.Sparse{MiB: 8, WriteFrac: 0.1, Seed: 3}
	const iterations = 200

	for _, useLocal := range []bool{false, true} {
		reg := repro.NewRegistry()
		reg.MustRegister(app)
		c := repro.NewCluster(8, 7, reg)
		inj := cluster.NewInjector(cluster.Exponential{Mean: 200 * repro.Millisecond},
			3*repro.Millisecond, 13, 8)
		inj.PermanentFrac = 0.2
		c.SetInjector(inj)

		sup := &repro.Supervisor{
			C:            c,
			MkMech:       func() repro.Mechanism { return repro.NewCRAK() },
			Prog:         app,
			Iterations:   iterations,
			Interval:     8 * repro.Millisecond,
			Adaptive:     true,
			UseLocalDisk: useLocal,
		}
		if err := sup.Run(5 * repro.Second); err != nil {
			log.Fatal(err)
		}
		where := "remote server"
		if useLocal {
			where = "node-local disks"
		}
		fmt.Printf("checkpoints → %s\n", where)
		fmt.Printf("  completed: %v in %v simulated\n", sup.Completed, sup.Makespan)
		fmt.Printf("  checkpoints: %d, restarts: %d (from scratch: %d), failures seen: %d\n",
			sup.Checkpoints, sup.Restarts, sup.FromScratch, sup.Estimator.Failures())
		fmt.Printf("  online MTBF estimate: %v\n\n", sup.Estimator.Estimate())
	}
}
