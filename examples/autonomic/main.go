// Autonomic fault tolerance (§1): a long job runs on a cluster whose
// nodes fail (fail-stop, exponential MTBF). A supervisor checkpoints the
// job through CRAK to the remote checkpoint server with a Young-interval
// policy driven by the online MTBF estimate, and restarts it on a spare
// node after each failure. The same run with node-local storage shows why
// Table 1's local-only mechanisms provide only rudimentary fault
// tolerance.
//
// The final run drops the simulator's failure oracle entirely: liveness
// comes from phi-accrual suspicion over lossy heartbeats, a partition
// fakes a node death mid-run, and epoch fencing keeps the resulting
// split brain from ever committing a stale checkpoint.
//
//	go run ./examples/autonomic
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cluster"
	"repro/internal/detector"
)

func main() {
	run()
	runDetectorDriven()
}

func run() {
	app := repro.Sparse{MiB: 8, WriteFrac: 0.1, Seed: 3}
	const iterations = 200

	for _, useLocal := range []bool{false, true} {
		reg := repro.NewRegistry()
		reg.MustRegister(app)
		c := repro.NewCluster(8, 7, reg)
		inj := cluster.NewInjector(cluster.Exponential{Mean: 200 * repro.Millisecond},
			3*repro.Millisecond, 13, 8)
		inj.PermanentFrac = 0.2
		c.SetInjector(inj)

		sup := repro.MustNewSupervisor(repro.SupervisorConfig{
			C:            c,
			MkMech:       func() repro.Mechanism { return repro.NewCRAK() },
			Prog:         app,
			Iterations:   iterations,
			Policy:       repro.AdaptivePolicy(8 * repro.Millisecond),
			UseLocalDisk: useLocal,
		})
		if err := sup.Run(5 * repro.Second); err != nil {
			log.Fatal(err)
		}
		where := "remote server"
		if useLocal {
			where = "node-local disks"
		}
		fmt.Printf("checkpoints → %s\n", where)
		fmt.Printf("  completed: %v in %v simulated\n", sup.Completed, sup.Makespan)
		fmt.Printf("  checkpoints: %d, restarts: %d (from scratch: %d), failures seen: %d\n",
			sup.Checkpoints, sup.Restarts, sup.FromScratch, sup.Estimator.Failures())
		fmt.Printf("  online MTBF estimate: %v\n\n", sup.Estimator.Estimate())
	}
}

// runDetectorDriven is the §5 "direction forward" demo: no oracle, a
// faulty network, and fencing as the safety net.
func runDetectorDriven() {
	app := repro.Sparse{MiB: 4, WriteFrac: 0.1, Seed: 3}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	c := repro.NewCluster(5, 7, reg)
	np := c.EnableNetFaults(cluster.NetFaultConfig{Loss: 0.03, DelayJitter: 200 * repro.Microsecond})

	period := 200 * repro.Microsecond
	mon := detector.NewMonitor(c, detector.NewPhiAccrual(8, 64, period/2),
		detector.Config{Period: period, Observer: 4}, c.Counters)

	// Real failures on the workers — plus one lie: a 12ms partition that
	// cuts the job's node off from the control plane while it keeps
	// running and keeps trying to checkpoint.
	inj := cluster.NewInjector(cluster.Exponential{Mean: 150 * repro.Millisecond},
		3*repro.Millisecond, 13, 4)
	c.SetInjector(inj)
	cut := false
	c.OnStep(func() {
		if !cut && c.Now() >= repro.Time(20*repro.Millisecond) {
			cut = true
			np.Partition("lie", 0)
		}
		if cut && c.Now() >= repro.Time(32*repro.Millisecond) {
			np.Heal("lie")
		}
	})

	sup := repro.MustNewSupervisor(repro.SupervisorConfig{
		C:           c,
		MkMech:      func() repro.Mechanism { return repro.NewCRAK() },
		Prog:        app,
		Iterations:  120,
		Policy:      repro.FixedPolicy(4 * repro.Millisecond),
		Detector:    mon,
		ControlNode: 4,
	})
	if err := sup.Run(5 * repro.Second); err != nil {
		log.Fatal(err)
	}
	ctr := c.Counters
	fmt.Printf("detector-driven (phi-accrual, 3%% heartbeat loss, one 12ms partition)\n")
	fmt.Printf("  completed: %v in %v simulated; checkpoints: %d, restarts: %d\n",
		sup.Completed, sup.Makespan, sup.Checkpoints, sup.Restarts)
	fmt.Printf("  suspicions: %d (false: %d), detections: %d, wasted restarts: %d\n",
		ctr.Get("det.suspicions"), ctr.Get("det.false_positives"),
		ctr.Get("det.detections"), ctr.Get("det.wasted_restarts"))
	fmt.Printf("  fencing: epochs %d, stale publishes rejected %d, self-fenced writers %d, double commits %d\n",
		ctr.Get("fence.epochs"), ctr.Get("fence.rejected"),
		ctr.Get("fence.suicides"), ctr.Get("fence.double_commits"))
	fmt.Printf("  oracle reads in the decision path: %d\n", sup.OracleReads)
}
