// Quickstart: boot a simulated machine, run a scientific workload,
// checkpoint it with CRAK (kernel module + kernel thread + /dev ioctl),
// kill the process, and restart it bit-exactly from the image.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 32 MiB stencil code, the kind of iterative scientific kernel the
	// paper's introduction motivates.
	app := repro.Stencil{MiB: 32}
	reg := repro.NewRegistry()
	reg.MustRegister(app)
	k := repro.NewMachine("node0", reg)

	// Load the CRAK kernel module; it spawns the checkpoint kernel thread
	// and registers /dev/crak.
	m := repro.NewCRAK()
	if err := m.Install(k); err != nil {
		log.Fatal(err)
	}

	p, err := k.Spawn(app.Name())
	if err != nil {
		log.Fatal(err)
	}
	repro.SetIterations(p, 12)
	fmt.Printf("spawned pid %d running %s\n", p.PID, app.Name())

	// Run to the middle of the job.
	for p.Regs().PC < 6 {
		k.RunFor(repro.Millisecond)
	}
	fmt.Printf("t=%v: iteration %d — requesting checkpoint via ioctl(/dev/crak)\n", k.Now(), p.Regs().PC)

	disk := repro.NewLocalDisk("disk0")
	tk, err := repro.Checkpoint(m, k, p, disk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v: image %s — %.1f MB in %v (thread woke after %v)\n",
		k.Now(), tk.Img.ObjectName(), float64(tk.Stats.PayloadBytes)/1e6, tk.Total(), tk.InitiationDelay())

	// Disaster strikes.
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	fmt.Printf("t=%v: pid %d killed\n", k.Now(), p.PID)

	// cr_restart: load the chain and resume.
	chain, err := repro.LoadChain(disk, tk.Img.ObjectName())
	if err != nil {
		log.Fatal(err)
	}
	p2, err := m.Restart(k, chain, true)
	if err != nil {
		log.Fatal(err)
	}
	if !k.RunUntilExit(p2, k.Now().Add(repro.Minute)) {
		log.Fatal("restarted process did not finish")
	}
	fmt.Printf("t=%v: pid %d resumed from iteration %d and finished with exit %d\n",
		k.Now(), p2.PID, chain[len(chain)-1].Threads[0].Regs.PC, p2.ExitCode)
	fmt.Printf("result fingerprint: %#016x\n", repro.Fingerprint(p2))
}
