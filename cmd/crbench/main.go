// Command crbench runs the derived experiments E1–E20 (DESIGN.md §3) and
// prints their tables. Each experiment turns one of the paper's
// qualitative claims into a measured result on the simulated substrate.
//
// Usage:
//
//	crbench            # run every experiment
//	crbench -e 4       # run only E4
//	crbench -e 1,5,9   # run a subset
//	crbench -quick     # smaller parameters (CI-sized)
//	crbench -benchckpt BENCH_incremental.json
//	                   # write the E14 full-vs-delta summaries as JSON
//	crbench -bench5 BENCH_5.json
//	                   # write the E15 parallel-capture / pipelined-shipping
//	                   # bench (capture throughput, publish and restore
//	                   # latency) as JSON
//	crbench -bench6 BENCH_6.json
//	                   # write the E16 restore bench (chain depth × replay
//	                   # width sweep, compacted chain, failover-measured
//	                   # restore latency) as JSON
//	crbench -bench7 BENCH_7.json
//	                   # write the E17 replication bench (publish overhead
//	                   # per placement mode, degraded-restore latency with
//	                   # the owner's disk lost, failover-measured restore
//	                   # p50 under buddy and erasure placement) as JSON
//	crbench -bench8 BENCH_8.json
//	                   # write the E18 fleet-scale bench (events/sec,
//	                   # detection and failover latency at 1k and 10k
//	                   # nodes; gates the 1k→10k detect-p99 ratio at 2x)
//	                   # as JSON
//	crbench -bench9 BENCH_9.json
//	                   # write the E19 lazy-restore bench (time-to-first-
//	                   # instruction vs eager full restore of a 16-delta
//	                   # chain, drained-digest equivalence, lazy-vs-eager
//	                   # cluster failover twins; gates TTFI <= 0.25x eager
//	                   # with byte-identical memory) as JSON
//	crbench -bench10 BENCH_10.json
//	                   # write the E20 policy bench (Young/Daly cadence vs
//	                   # fixed twin on the same fault schedule, liveness
//	                   # delta chain vs tracker baseline; gates work-lost
//	                   # <= 0.8x fixed and delta bytes <= 0.9x baseline
//	                   # with the restored live state byte-identical) as
//	                   # JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	sel := flag.String("e", "", "comma-separated experiment numbers (default: all)")
	quick := flag.Bool("quick", false, "smaller parameters")
	benchCkpt := flag.String("benchckpt", "", "write the E14 incremental-shipping bench to this JSON file and exit")
	bench5 := flag.String("bench5", "", "write the E15 parallel-capture bench to this JSON file and exit")
	bench6 := flag.String("bench6", "", "write the E16 restore bench to this JSON file and exit")
	bench7 := flag.String("bench7", "", "write the E17 replication bench to this JSON file and exit")
	bench8 := flag.String("bench8", "", "write the E18 fleet-scale bench to this JSON file and exit")
	bench9 := flag.String("bench9", "", "write the E19 lazy-restore bench to this JSON file and exit")
	bench10 := flag.String("bench10", "", "write the E20 policy bench to this JSON file and exit")
	flag.Parse()

	if *bench10 != "" {
		s := experiments.E20Bench(*quick)
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*bench10, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		for _, c := range []experiments.E20CadenceSummary{s.Fixed, s.YoungDaly} {
			fmt.Printf("%-10s completed=%v failures=%d work-lost %.2f ms, %d ckpts, %d recomputes, final interval %.3f ms\n",
				c.Policy, c.Completed, c.Failures, c.WorkLostMs, c.Checkpoints, c.Recomputes, c.FinalIntervalMs)
		}
		fmt.Printf("work-lost ratio youngdaly/fixed %.2fx (gate <= 0.8x), fingerprints match=%v\n",
			s.WorkLostRatio, s.FingerprintsMatch)
		lv := s.Liveness
		fmt.Printf("liveness chain %d bytes vs baseline %d (%.2fx, gate <= 0.9x), excluded %d, live digest match=%v, fingerprints at reference=%v\n",
			lv.FilteredBytes, lv.BaselineBytes, lv.BytesRatio, lv.ExcludedBytes, lv.LiveDigestMatch, lv.FingerprintMatch)
		fmt.Println("wrote", *bench10)
		if !s.GatePass {
			os.Exit(1)
		}
		return
	}

	if *bench9 != "" {
		s := experiments.E19Bench(*quick)
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*bench9, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		for _, p := range s.Points {
			fmt.Printf("w=%d: eager %.2f ms, ttfi %.2f ms (%.2fx), drained %.2f ms, digest==eager %v\n",
				p.Workers, p.EagerMs, p.TTFIMs, p.VsEager, p.DrainedMs, p.DigestMatch)
		}
		fmt.Printf("cluster twins: eager restore p50 %.2f ms vs lazy first-instr p50 %.2f ms (%d lazy restores, %d faults served, %d prefetched); fingerprints match=%v\n",
			s.Eager.RestoreP50Ms, s.Lazy.FirstInstrP50Ms,
			s.Lazy.LazyRestores, s.Lazy.FaultsServed, s.Lazy.Prefetched, s.FingerprintsMatch)
		fmt.Println("wrote", *bench9)
		if !s.GatePass {
			os.Exit(1)
		}
		return
	}

	if *bench8 != "" {
		s := experiments.E18Bench(*quick)
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*bench8, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		for _, p := range s.Points {
			fmt.Printf("%-10s %5d nodes / %2d shards: %8.0f events/s, detect p99 %.2f ms, failover p99 %.2f ms, %d timers, pass=%v\n",
				p.Name, p.Nodes, p.Shards, p.EventsPerSec, p.DetectP99Ms, p.FailoverP99Ms, p.Timers, p.Pass)
		}
		fmt.Printf("1k→10k detect p99 ratio %.2fx (gate: <= 2x): %v\n", s.DetectRatio, s.RatioWithin2x)
		fmt.Println("wrote", *bench8)
		if !s.AllPass || !s.RatioWithin2x {
			os.Exit(1)
		}
		return
	}

	if *bench7 != "" {
		s := experiments.E17Bench(*quick)
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*bench7, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		for i, w := range s.Write {
			r := s.Restore[i]
			fmt.Printf("%-7s publish %.2f ms (%.2fx), stored %.2fx, restore healthy %.2f ms degraded %.2f ms\n",
				w.Mode, w.PublishMs, w.Overhead, w.Redundancy, r.HealthyMs, r.DegradedMs)
		}
		for _, c := range s.Clusters {
			fmt.Printf("cluster %-7s restore p50 %.2f ms p99 %.2f ms over %d failover(s); reads l/b/s/rc/r = %d/%d/%d/%d/%d\n",
				c.Mode, c.P50Ms, c.P99Ms, c.Restores,
				c.ReadLocal, c.ReadBuddy, c.ReadShards, c.ReadReconstruct, c.ReadRemote)
		}
		fmt.Printf("degraded restore within 2x of the BENCH_6-style baseline (%.2f ms): %v\n",
			s.BaselineP50Ms, s.DegradedWithin2x)
		fmt.Println("wrote", *bench7)
		if !s.DegradedWithin2x {
			os.Exit(1)
		}
		return
	}

	if *bench6 != "" {
		s := experiments.E16Bench(*quick)
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*bench6, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		fmt.Printf("full read baseline: %.2f ms\n", s.FullReadMs)
		for _, pt := range s.Points {
			fmt.Printf("restore %2d delta(s) × %d worker(s): %.2f ms (%.2fx vs full)\n",
				pt.Deltas, pt.Workers, pt.LatencyMs, pt.VsFull)
		}
		fmt.Printf("after fold (%d deltas → chain of %d): %.2f ms (%.2fx vs full)\n",
			s.Compacted.DeltasBefore, s.Compacted.ChainLen, s.Compacted.LatencyMs, s.Compacted.VsFull)
		fmt.Printf("cluster (CompactAfter=%d): restore p50 %.2f ms, p99 %.2f ms over %d failover(s); %d fold(s), %d delta(s) retired\n",
			s.Cluster.CompactAfter, s.Cluster.P50Ms, s.Cluster.P99Ms, s.Cluster.Restores,
			s.Cluster.Folds, s.Cluster.FoldedDeltas)
		fmt.Println("wrote", *bench6)
		return
	}

	if *bench5 != "" {
		s := experiments.E15Bench(*quick)
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*bench5, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		for _, pt := range s.Capture {
			fmt.Printf("capture %d worker(s): %.2f ms, %.1f MB/s (%.2fx)\n",
				pt.Workers, pt.LatencyMs, pt.ThroughputMBs, pt.Speedup)
		}
		fmt.Printf("publish latency: p50 %.2f ms, p99 %.2f ms over %d publishes (%d batched, %d stalls)\n",
			s.Publish.P50Ms, s.Publish.P99Ms, s.Publish.N, s.Publish.Batched, s.Publish.Stalls)
		fmt.Printf("restore: chain of %d read in %.2f ms\n", s.Restore.ChainLen, s.Restore.ReadMs)
		fmt.Println("wrote", *bench5)
		return
	}

	if *benchCkpt != "" {
		summaries := experiments.E14Bench(*quick)
		data, err := json.MarshalIndent(summaries, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchCkpt, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
		for _, s := range summaries {
			fmt.Printf("dirty %.2f: full %.1f KiB/ckpt, delta %.1f KiB/ckpt (reduction %.0f%%), restore %.2f ms vs %.2f ms\n",
				s.DirtyRate, s.FullBytesPerCkpt/1024, s.DeltaBytesPerCkpt/1024,
				100*s.Reduction, s.FullRestoreMs, s.DeltaRestoreMs)
		}
		fmt.Println("wrote", *benchCkpt)
		return
	}

	want := map[int]bool{}
	if *sel != "" {
		for _, part := range strings.Split(*sel, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 || n > 20 {
				fmt.Fprintf(os.Stderr, "crbench: bad experiment %q (want 1..20)\n", part)
				os.Exit(2)
			}
			want[n] = true
		}
	}
	run := func(n int) bool { return len(want) == 0 || want[n] }

	sizes := []int{1, 4, 16, 64}
	e2mib, e3mib, e7mib := 16, 8, 8
	loads := []int{0, 2, 4, 8, 16}
	mtbfs := []float64{2, 4, 8, 24, 72}
	ranks := []int{2, 4, 8, 16}
	losses := []float64{0, 0.05}
	chaosSeeds := 200
	if *quick {
		sizes = []int{1, 4}
		e2mib, e3mib, e7mib = 4, 2, 2
		loads = []int{0, 8}
		mtbfs = []float64{8, 24}
		ranks = []int{2, 8}
		losses = []float64{0.05}
		chaosSeeds = 25
	}

	tables := []struct {
		n  int
		fn func() *trace.Table
	}{
		{1, func() *trace.Table { return experiments.E1UserVsSystem(sizes) }},
		{2, func() *trace.Table { return experiments.E2Incremental(e2mib) }},
		{3, func() *trace.Table { return experiments.E3BlockSize(e3mib, []int{64, 128, 256, 512, 1024, 2048, 4096}) }},
		{4, func() *trace.Table { return experiments.E4Agents(loads) }},
		{5, func() *trace.Table { return experiments.E5Storage(mtbfs) }},
		{6, func() *trace.Table { return experiments.E6Interval(8) }},
		{7, func() *trace.Table { return experiments.E7Hardware(e7mib) }},
		{8, func() *trace.Table { return experiments.E8MPI(ranks, 4) }},
		{9, func() *trace.Table { return experiments.E9Matrix() }},
		{10, func() *trace.Table { return experiments.E10Extras() }},
		{11, func() *trace.Table { return experiments.E11StorageFaults(0.10) }},
		{12, func() *trace.Table { return experiments.E12Detection(losses) }},
		{13, func() *trace.Table { return experiments.E13ChaosSweep(1, chaosSeeds) }},
		{14, func() *trace.Table { return experiments.E14Incremental(*quick) }},
		{15, func() *trace.Table { return experiments.E15Parallel(*quick) }},
		{16, func() *trace.Table { return experiments.E16Restore(*quick) }},
		{17, func() *trace.Table { return experiments.E17Replication(*quick) }},
		{18, func() *trace.Table { return experiments.E18Scale(*quick) }},
		{19, func() *trace.Table { return experiments.E19Lazy(*quick) }},
		{20, func() *trace.Table { return experiments.E20Policy(*quick) }},
	}
	for _, t := range tables {
		if !run(t.n) {
			continue
		}
		fmt.Print(t.fn())
		fmt.Println()
	}
}
