// Command ckptctl is the interactive driver: it boots a simulated
// machine, runs a workload, checkpoints it with a chosen mechanism
// (the cr_checkpoint analogue), kills the process, restarts it (the
// cr_restart analogue), and verifies the result matches an untouched run.
//
// Usage:
//
//	ckptctl                          # defaults: CRAK + sparse 16 MiB
//	ckptctl -mech blcr -mib 64
//	ckptctl -mech tick -incremental-chain 4
//	ckptctl -workload stencil -kill-halfway=false
//	ckptctl -list                    # available mechanisms and workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/simos/proc"
)

var mechs = map[string]func() repro.Mechanism{
	"vmadump":  func() repro.Mechanism { return repro.NewVMADump(0, nil) },
	"epckpt":   func() repro.Mechanism { return repro.NewEPCKPT() },
	"crak":     func() repro.Mechanism { return repro.NewCRAK() },
	"uclik":    func() repro.Mechanism { return repro.NewUCLiK() },
	"chpox":    func() repro.Mechanism { return repro.NewCHPOX() },
	"blcr":     func() repro.Mechanism { return repro.NewBLCR() },
	"psncrc":   func() repro.Mechanism { return repro.NewPsncRC() },
	"ckptfork": func() repro.Mechanism { return repro.NewCheckpointFork(0, nil) },
	"tick":     func() repro.Mechanism { return repro.NewTICK() },
	"libckpt":  func() repro.Mechanism { return repro.NewLibCkpt(0, nil, false) },
	"condor":   func() repro.Mechanism { return repro.NewCondorStyle() },
	"libtckpt": func() repro.Mechanism { return repro.NewLibTckpt(0, nil) },
}

func workloadFor(name string, mib int) (repro.Program, error) {
	switch name {
	case "dense":
		return repro.Dense{MiB: mib}, nil
	case "sparse":
		return repro.Sparse{MiB: mib, WriteFrac: 0.1, Seed: 7}, nil
	case "stencil":
		return repro.Stencil{MiB: mib}, nil
	case "chase":
		return repro.PointerChase{MiB: mib, Seed: 7}, nil
	case "mt":
		return repro.MultiThreaded{MiB: mib, NThreads: 4}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (dense|sparse|stencil|chase|mt)", name)
	}
}

func main() {
	mechName := flag.String("mech", "crak", "mechanism to use")
	wlName := flag.String("workload", "sparse", "workload (dense|sparse|stencil|chase|mt)")
	mib := flag.Int("mib", 16, "workload size in MiB")
	iters := flag.Uint64("iters", 16, "workload iterations")
	chain := flag.Int("incremental-chain", 1, "number of checkpoints before the kill (TICK chains them)")
	list := flag.Bool("list", false, "list mechanisms and workloads")
	flag.Parse()

	if *list {
		fmt.Println("mechanisms:")
		for name := range mechs {
			fmt.Println("  " + name)
		}
		fmt.Println("workloads: dense sparse stencil chase mt")
		return
	}
	if err := drive(*mechName, *wlName, *mib, *iters, *chain); err != nil {
		fmt.Fprintln(os.Stderr, "ckptctl:", err)
		os.Exit(1)
	}
}

func drive(mechName, wlName string, mib int, iters uint64, chainLen int) error {
	mk, ok := mechs[mechName]
	if !ok {
		return fmt.Errorf("unknown mechanism %q (try -list)", mechName)
	}
	wl, err := workloadFor(wlName, mib)
	if err != nil {
		return err
	}

	// Reference run: the ground truth this session must reproduce.
	ref := mk()
	refProg := ref.Prepare(wl)
	regR := repro.NewRegistry()
	regR.MustRegister(refProg)
	kr := repro.NewMachine("ref", regR)
	if err := ref.Install(kr); err != nil {
		return err
	}
	pr, err := kr.Spawn(refProg.Name())
	if err != nil {
		return err
	}
	if err := ref.Setup(kr, pr); err != nil {
		return err
	}
	repro.SetIterations(pr, iters)
	if !kr.RunUntilExit(pr, kr.Now().Add(10*repro.Minute)) {
		return fmt.Errorf("reference run did not finish")
	}
	want := repro.Fingerprint(pr)
	fmt.Printf("reference run      : fingerprint %#016x in %v simulated\n", want, kr.Now())

	// Checkpointed run.
	m := mk()
	prog := m.Prepare(wl)
	reg := repro.NewRegistry()
	reg.MustRegister(prog)
	k := repro.NewMachine("node0", reg)
	if err := m.Install(k); err != nil {
		return err
	}
	p, err := k.Spawn(prog.Name())
	if err != nil {
		return err
	}
	if err := m.Setup(k, p); err != nil {
		return err
	}
	repro.SetIterations(p, iters)
	disk := repro.NewLocalDisk("disk0")

	var leaf string
	for c := 0; c < chainLen; c++ {
		target := p.Regs().PC + max(1, iters/uint64(chainLen+1))
		for p.Regs().PC < target && p.State != proc.StateZombie {
			k.RunFor(100 * repro.Microsecond)
		}
		if p.State == proc.StateZombie {
			return fmt.Errorf("workload finished before checkpoint %d", c+1)
		}
		tk, err := repro.Checkpoint(m, k, p, disk)
		if err != nil {
			return fmt.Errorf("checkpoint %d: %w", c+1, err)
		}
		leaf = tk.Img.ObjectName()
		fmt.Printf("checkpoint %-2d      : %s — %s, %.2f MB payload, %v total (init %v)\n",
			c+1, leaf, tk.Img.Mode, float64(tk.Stats.PayloadBytes)/1e6, tk.Total(), tk.InitiationDelay())
	}

	fmt.Printf("killing pid %d      : simulated failure at %v\n", p.PID, k.Now())
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)

	chain, err := repro.LoadChain(disk, leaf)
	if err != nil {
		return err
	}
	fmt.Printf("restart            : chain of %d image(s)\n", len(chain))
	p2, err := m.Restart(k, chain, true)
	if err != nil {
		return err
	}
	if !k.RunUntilExit(p2, k.Now().Add(10*repro.Minute)) {
		return fmt.Errorf("restarted process did not finish")
	}
	got := repro.Fingerprint(p2)
	fmt.Printf("restarted run      : fingerprint %#016x, exit %d\n", got, p2.ExitCode)
	if got != want {
		return fmt.Errorf("MISMATCH: restarted fingerprint differs from reference")
	}
	fmt.Println("verdict            : ✓ bit-exact resume (fingerprints match)")
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
