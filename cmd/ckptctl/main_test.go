package main

import "testing"

func TestDriveCRAKSparse(t *testing.T) {
	if err := drive("crak", "sparse", 4, 12, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDriveTICKChain(t *testing.T) {
	if err := drive("tick", "stencil", 4, 12, 3); err != nil {
		t.Fatal(err)
	}
}

func TestDriveBLCRMultithreaded(t *testing.T) {
	if err := drive("blcr", "mt", 2, 3000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDriveRejectsUnknown(t *testing.T) {
	if err := drive("nope", "sparse", 4, 12, 1); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if err := drive("crak", "nope", 4, 12, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
