// Command crsurvey regenerates the paper's two artifacts from the live
// implementations: Figure 1 (the classification of checkpoint/restart
// implementations) and Table 1 (the feature matrix of the twelve surveyed
// systems), and diffs the probed matrix against the published one.
//
// Usage:
//
//	crsurvey            # print both artifacts and the diff
//	crsurvey -figure1   # only the taxonomy tree
//	crsurvey -table1    # only the feature matrix
//	crsurvey -extended  # add the user-level schemes and TICK as extra rows
//
// The chaos subcommand drives the deterministic simulation-testing
// harness (the nightly sweep and the replay/shrink workflow for a
// failing seed):
//
//	crsurvey chaos -seeds 10000          # sweep seeds 1..10000, exit 1 on any violation
//	crsurvey chaos -start 5000 -seeds 10 # sweep a different block
//	crsurvey chaos -broken -seeds 100    # fencing disabled: prove the harness catches it
//	crsurvey chaos -incremental -seeds 1000 # delta chains forced on: chain-invariant sweep
//	crsurvey chaos -replication -seeds 200  # replicated placement forced on: buddy
//	                                        # mirrors everywhere, 2+1 erasure where the
//	                                        # cluster is wide enough (repl invariants)
//	crsurvey chaos -lazy -seeds 200         # lazy restart-before-read failover forced on
//	                                        # (digest must match eager restore at every seed)
//	crsurvey chaos -sharded -seeds 200      # sharded digest detection forced on wherever
//	                                        # the cluster is wide enough (aggregator
//	                                        # failover under chaos)
//	crsurvey chaos -policy -seeds 200       # Young/Daly cadence (and liveness content on
//	                                        # incremental specs) forced on, with the
//	                                        # work-lost economics invariant checked
//	                                        # against a fixed-cadence twin per seed
//	crsurvey chaos -replay 42            # re-run one seed, print its event log
//	crsurvey chaos -replay 42 -spec '{...}' -shrink
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/chaos"
	"repro/internal/simtime"
	"repro/internal/taxonomy"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		chaosMain(os.Args[2:])
		return
	}
	fig := flag.Bool("figure1", false, "print only Figure 1 (taxonomy tree)")
	tab := flag.Bool("table1", false, "print only Table 1 (feature matrix)")
	ext := flag.Bool("extended", false, "extend Table 1 with user-level schemes and TICK")
	flag.Parse()

	both := !*fig && !*tab

	if *fig || both {
		fmt.Println("Figure 1 — Classification of the checkpoint/restart implementations")
		fmt.Println()
		fmt.Print(repro.Figure1())
		fmt.Println()
	}
	if *tab || both {
		rows := repro.ProbeTable1()
		if *ext {
			extras := []repro.Mechanism{
				repro.NewLibCkpt(0, nil, false),
				repro.NewLibCkpt(0, nil, true),
				repro.NewCondorStyle(),
				repro.NewEskyStyle(simtime.Minute, nil),
				repro.NewPreloadShim(),
				repro.NewLibTckpt(0, nil),
				repro.NewTICK(),
			}
			for _, m := range extras {
				rows = append(rows, m.Features())
			}
		}
		fmt.Println("Table 1 — Feature matrix, probed from the live implementations")
		fmt.Println()
		fmt.Print(taxonomy.RenderTable(rows))
		fmt.Println()

		diffs := repro.Table1Diff()
		if len(diffs) == 0 {
			fmt.Println("✓ probed matrix matches the paper's Table 1 exactly")
		} else {
			fmt.Println("✗ mismatches against the paper's Table 1:")
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
			os.Exit(1)
		}
	}
}

// chaosMain is the chaos subcommand: seed sweeps for CI and the
// replay → confirm → shrink workflow for a failing seed.
func chaosMain(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seeds := fs.Int("seeds", 200, "number of consecutive seeds to sweep")
	start := fs.Int64("start", 1, "first seed of the sweep")
	broken := fs.Bool("broken", false, "disable epoch fencing (the deliberately broken build)")
	incremental := fs.Bool("incremental", false, "force delta-chain shipping on every spec (chain-invariant sweep)")
	replication := fs.Bool("replication", false, "force replicated placement on every spec (replication-invariant sweep)")
	sharded := fs.Bool("sharded", false, "force sharded digest detection on every spec wide enough for it")
	lazy := fs.Bool("lazy", false, "force lazy restart-before-read failover on every spec (digest-equivalence sweep)")
	policy := fs.Bool("policy", false, "force the youngdaly cadence policy (and liveness content on incremental specs) plus the work-lost economics checker on every spec")
	replay := fs.Int64("replay", 0, "replay one seed instead of sweeping")
	spec := fs.String("spec", "", "replay this spec JSON (from a printed replay line) instead of regenerating from the seed")
	shrink := fs.Bool("shrink", false, "shrink a violating replay to a minimal reproducer")
	fs.Parse(args)

	// -incremental forces every spec onto the delta-chain shipping path so
	// a sweep exercises the chain invariants on all seeds, not just the
	// roughly half the generator picks.
	force := func(sp *chaos.Spec) {
		if *incremental {
			sp.Incremental = true
			if sp.RebaseEvery == 0 {
				sp.RebaseEvery = 4
			}
		}
		// -replication forces a replicated placement onto every spec:
		// erasure 2+1 where the cluster can hold it under the generator's
		// own maskability constraint (see chaos.Generate), buddy mirrors
		// everywhere else — so a sweep exercises the repl-durability and
		// repl-converged invariants on all seeds, both modes.
		if *replication && sp.Replication == "" {
			if sp.Workers() >= 4 && len(sp.Failures) <= 1 && sp.Seed%2 == 0 {
				sp.Replication = "erasure"
				sp.DataShards, sp.ParityShards = 2, 1
			} else {
				sp.Replication = "buddy"
				sp.DataShards, sp.ParityShards = 0, 0
			}
		}
		// -sharded forces the digest detection path wherever the cluster is
		// wide enough (each of the two shards keeps a failover candidate
		// when its aggregator dies), so a sweep exercises aggregator
		// failover and digest loss on all eligible seeds.
		if *sharded && sp.Shards == 0 && sp.Workers() >= 4 {
			sp.Shards = 2
		}
		// -lazy forces restart-before-read failover on every spec, so a
		// sweep proves the digest invariant — post-restore state identical
		// to an eager restore — at every seed, not just the half the
		// generator picks.
		if *lazy {
			sp.LazyRestore = true
		}
		// -policy forces the Young/Daly cadence engine on every spec (and
		// the liveness content policy wherever deltas are in play), so a
		// sweep exercises MTBF estimation, live recompute, and dead-page
		// exclusion on all seeds — with the work-lost economics invariant
		// bounding the adaptive cadence against its fixed twin.
		if *policy {
			sp.Policy = "youngdaly"
			sp.Liveness = sp.Incremental
		}
	}

	// The work-lost economics checker reruns a fixed-cadence twin per
	// seed, so it is opt-in with the policy sweep rather than part of
	// every run.
	runOne := func(sp *chaos.Spec) *chaos.Result {
		if *policy {
			return chaos.RunChecked(sp, append(chaos.DefaultCheckers(), chaos.NewWorkLostChecker()))
		}
		return chaos.Run(sp)
	}

	if *replay != 0 || *spec != "" {
		sp := &chaos.Spec{}
		if *spec == "" {
			sp = chaos.Generate(*replay)
		} else {
			var err error
			if sp, err = chaos.ParseSpec(*spec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if *replay != 0 {
				sp.Seed = *replay
			}
		}
		sp.NoFencing = sp.NoFencing || *broken
		force(sp)
		r := runOne(sp)
		fmt.Println(r.Summary())
		fmt.Print(r.EventLog)
		if len(r.Violations) == 0 {
			return
		}
		for _, v := range r.Violations {
			fmt.Println("violation:", v)
		}
		if *shrink {
			min, evals := chaos.Shrink(r.Spec, r.Violations[0].Invariant)
			fmt.Printf("shrunk size %d -> %d in %d runs\n", r.Spec.Size(), min.Size(), evals)
			fmt.Println("reproduce:", min.ReplayLine())
		} else {
			fmt.Println("reproduce:", r.Spec.ReplayLine())
		}
		os.Exit(1)
	}

	bad := 0
	for i := 0; i < *seeds; i++ {
		sp := chaos.Generate(*start + int64(i))
		sp.NoFencing = *broken
		force(sp)
		r := runOne(sp)
		if len(r.Violations) == 0 {
			continue
		}
		bad++
		// Confirm determinism, then print a shrunken reproducer: the
		// exact lines a failing nightly run needs in its log.
		if ok, _, _ := chaos.Confirm(sp); !ok {
			fmt.Printf("seed %d: NONDETERMINISTIC (digests differ across identical runs)\n", sp.Seed)
			continue
		}
		fmt.Printf("seed %d: %s\n", sp.Seed, r.Summary())
		for _, v := range r.Violations {
			fmt.Println("  violation:", v)
		}
		min, _ := chaos.Shrink(sp, r.Violations[0].Invariant)
		fmt.Println("  reproduce:", min.ReplayLine())
	}
	fmt.Printf("chaos sweep: %d seeds starting at %d, %d with violations\n", *seeds, *start, bad)
	if bad > 0 {
		os.Exit(1)
	}
}
