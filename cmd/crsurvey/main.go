// Command crsurvey regenerates the paper's two artifacts from the live
// implementations: Figure 1 (the classification of checkpoint/restart
// implementations) and Table 1 (the feature matrix of the twelve surveyed
// systems), and diffs the probed matrix against the published one.
//
// Usage:
//
//	crsurvey            # print both artifacts and the diff
//	crsurvey -figure1   # only the taxonomy tree
//	crsurvey -table1    # only the feature matrix
//	crsurvey -extended  # add the user-level schemes and TICK as extra rows
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/simtime"
	"repro/internal/taxonomy"
)

func main() {
	fig := flag.Bool("figure1", false, "print only Figure 1 (taxonomy tree)")
	tab := flag.Bool("table1", false, "print only Table 1 (feature matrix)")
	ext := flag.Bool("extended", false, "extend Table 1 with user-level schemes and TICK")
	flag.Parse()

	both := !*fig && !*tab

	if *fig || both {
		fmt.Println("Figure 1 — Classification of the checkpoint/restart implementations")
		fmt.Println()
		fmt.Print(repro.Figure1())
		fmt.Println()
	}
	if *tab || both {
		rows := repro.ProbeTable1()
		if *ext {
			extras := []repro.Mechanism{
				repro.NewLibCkpt(0, nil, false),
				repro.NewLibCkpt(0, nil, true),
				repro.NewCondorStyle(),
				repro.NewEskyStyle(simtime.Minute, nil),
				repro.NewPreloadShim(),
				repro.NewLibTckpt(0, nil),
				repro.NewTICK(),
			}
			for _, m := range extras {
				rows = append(rows, m.Features())
			}
		}
		fmt.Println("Table 1 — Feature matrix, probed from the live implementations")
		fmt.Println()
		fmt.Print(taxonomy.RenderTable(rows))
		fmt.Println()

		diffs := repro.Table1Diff()
		if len(diffs) == 0 {
			fmt.Println("✓ probed matrix matches the paper's Table 1 exactly")
		} else {
			fmt.Println("✗ mismatches against the paper's Table 1:")
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
			os.Exit(1)
		}
	}
}
