// Package userlevel implements the user-level checkpointing schemes of §3:
// library-based checkpointing with compiled-in checkpoint calls (libckpt,
// libckp, Condor's link-time form), user-level signal handlers driven by
// SIGALRM timers (libckpt, Esky) or general-purpose signals (Condor:
// SIGUSR1/SIGUSR2/SIGUNUSED), LD_PRELOAD interposition, and libtckpt's
// multithreaded variant.
//
// They all share the user-level limitations the paper enumerates: every
// piece of state is extracted through system calls (paying the
// user↔kernel crossing), kernel-persistent state (sockets, shared memory,
// PIDs) is unreachable, handlers that use non-reentrant functions can
// deadlock the application, and the application must be modified,
// relinked, or at least launched specially.
package userlevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// userCore is the shared capture machinery.
type userCore struct {
	name string
	k    *kernel.Kernel
	seqs *mechanism.Seqs

	// incremental enables the user-level mprotect/SIGSEGV tracker
	// (libckpt's incremental mode [27]).
	incremental bool
	trackers    map[proc.PID]*checkpoint.UserWPTracker

	pending map[proc.PID]*pendingReq

	// every is the periodic self-checkpoint interval in iterations
	// (library mechanisms) — automatic initiation at user level.
	every      uint64
	defaultTgt storage.Target
	// multithreadOK marks libtckpt.
	multithreadOK bool
}

type pendingReq struct {
	tgt    storage.Target
	env    *storage.Env
	ticket *mechanism.Ticket
}

func (m *userCore) install(k *kernel.Kernel) error {
	if m.k != nil && m.k != k {
		return fmt.Errorf("userlevel: %s already installed on another kernel", m.name)
	}
	m.k = k
	if m.seqs == nil {
		m.seqs = mechanism.NewSeqs()
		m.pending = make(map[proc.PID]*pendingReq)
		m.trackers = make(map[proc.PID]*checkpoint.UserWPTracker)
	}
	return nil
}

// captureInProcess performs a user-level capture in the context of the
// checkpointed process itself (library call or signal handler).
func (m *userCore) captureInProcess(ctx *kernel.Context, req *pendingReq) {
	k := ctx.K
	ticket := req.ticket
	ticket.StartedAt = k.Now()
	finish := func(img *checkpoint.Image, st checkpoint.Stats, err error) {
		ticket.Img, ticket.Stats, ticket.Err = img, st, err
		ticket.CompletedAt = k.Now()
		ticket.Done = true
	}
	if ctx.P.Multithreaded() && !m.multithreadOK {
		finish(nil, checkpoint.Stats{}, fmt.Errorf("%w: %s checkpoints single-threaded processes only", mechanism.ErrUnsupported, m.name))
		return
	}
	if req.tgt != nil && !req.tgt.Available() {
		finish(nil, checkpoint.Stats{}, fmt.Errorf("userlevel: %s: storage: %w", m.name, storage.ErrUnavailable))
		return
	}

	var trk checkpoint.Tracker
	if m.incremental {
		t, ok := m.trackers[ctx.P.PID]
		if !ok {
			t = checkpoint.NewUserWPTracker(ctx)
			if err := t.Arm(); err != nil {
				finish(nil, checkpoint.Stats{}, err)
				return
			}
			m.trackers[ctx.P.PID] = t
		}
		trk = t
	}

	env := req.env
	if env == nil {
		env = mechanism.StorageEnvFor(ctx)
	}
	seq, parent := m.seqs.Next(ctx.P.PID)
	img, st, err := checkpoint.Capture(checkpoint.Request{
		Acc:       &checkpoint.UserAccessor{Ctx: ctx},
		Trk:       trk,
		Target:    req.tgt,
		Env:       env,
		Mechanism: m.name,
		Hostname:  k.Cfg.Hostname,
		Seq:       seq,
		Parent:    parent,
		Now:       k.Now(),
	})
	if err == nil {
		m.seqs.Commit(img)
	}
	finish(img, st, err)
}

// atPoint is the body of both compiled-in checkpoint calls and signal
// handlers: consume a pending request, or do a periodic checkpoint.
func (m *userCore) atPoint(ctx *kernel.Context) {
	req := m.pending[ctx.P.PID]
	if req != nil {
		delete(m.pending, ctx.P.PID)
	} else if m.defaultTgt != nil {
		req = &pendingReq{tgt: m.defaultTgt, ticket: &mechanism.Ticket{RequestedAt: ctx.K.Now()}}
	} else {
		return
	}
	m.captureInProcess(ctx, req)
}

func (m *userCore) newRequest(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if m.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	t := &mechanism.Ticket{RequestedAt: k.Now()}
	m.pending[p.PID] = &pendingReq{tgt: tgt, env: env, ticket: t}
	return t, nil
}

func (m *userCore) restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool, handlers map[string]*sig.Handler) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue, Handlers: handlers})
}

// LibCkpt models libckpt-class library checkpointing [27]: the
// application is modified and relinked against the checkpoint library,
// which checkpoints at the compiled-in calls. Incremental mode uses
// mprotect + SIGSEGV page tracking, the technique §3 describes.
type LibCkpt struct {
	userCore
}

// NewLibCkpt returns a libckpt instance checkpointing every `every`
// iterations to defaultTgt (automatic initiation); incremental selects
// page-granularity incremental checkpointing.
func NewLibCkpt(every uint64, defaultTgt storage.Target, incremental bool) *LibCkpt {
	return &LibCkpt{userCore{name: "libckpt", every: every, defaultTgt: defaultTgt, incremental: incremental}}
}

// Name implements mechanism.Mechanism.
func (m *LibCkpt) Name() string { return "libckpt" }

// Features implements mechanism.Mechanism.
func (m *LibCkpt) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "libckpt", Context: taxonomy.UserLevel, Agent: taxonomy.AgentLibrary,
		Incremental: m.incremental,
		Storage:     []storage.Kind{storage.KindLocal},
		Initiation:  taxonomy.InitAutomatic,
	}
}

// Install implements mechanism.Mechanism (nothing kernel-side).
func (m *LibCkpt) Install(k *kernel.Kernel) error { return m.install(k) }

// Prepare implements mechanism.Mechanism: relink against the library —
// checkpoint calls appear at iteration boundaries.
func (m *LibCkpt) Prepare(prog kernel.Program) kernel.Program {
	every := m.every
	if every == 0 {
		every = 1
	}
	return workload.Hooked{
		Inner: prog,
		Label: m.name,
		Every: every,
		Hook: func(ctx *kernel.Context) error {
			ctx.P.Registered[m.name] = true
			m.atPoint(ctx)
			return nil
		},
	}
}

// Setup implements mechanism.Mechanism.
func (m *LibCkpt) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism: honoured at the next
// compiled-in checkpoint call (the flexibility limitation of §3).
func (m *LibCkpt) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if !p.Registered[m.name] {
		return nil, fmt.Errorf("%w: libckpt: application not relinked against the checkpoint library", mechanism.ErrUnsupported)
	}
	return m.newRequest(k, p, tgt, env)
}

// Restart implements mechanism.Mechanism.
func (m *LibCkpt) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return m.restart(k, chain, enqueue, nil)
}

// LibTckpt models libtckpt [10]: libckpt-style library checkpointing that
// also handles LinuxThreads programs.
type LibTckpt struct {
	LibCkpt
}

// NewLibTckpt returns a libtckpt instance.
func NewLibTckpt(every uint64, defaultTgt storage.Target) *LibTckpt {
	lt := &LibTckpt{LibCkpt{userCore{name: "libtckpt", every: every, defaultTgt: defaultTgt, multithreadOK: true}}}
	return lt
}

// Name implements mechanism.Mechanism.
func (m *LibTckpt) Name() string { return "libtckpt" }

// Features implements mechanism.Mechanism.
func (m *LibTckpt) Features() taxonomy.Features {
	f := m.LibCkpt.Features()
	f.Name = "libtckpt"
	f.Multithreaded = true
	return f
}

// CondorStyle models Condor's signal-driven checkpointing [21]: a handler
// for a general-purpose signal (SIGUSR2 here; Condor also used SIGUSR1
// and SIGUNUSED) performs the checkpoint; user initiation via kill. The
// handler uses non-reentrant C-library functions — the §3 deadlock hazard
// is real and reproducible against malloc-heavy applications.
type CondorStyle struct {
	userCore
	// Signal is the checkpoint signal (default SIGUSR2).
	Signal sig.Signal
}

// NewCondorStyle returns a Condor-style instance.
func NewCondorStyle() *CondorStyle {
	return &CondorStyle{userCore: userCore{name: "condor"}, Signal: sig.SIGUSR2}
}

// Name implements mechanism.Mechanism.
func (m *CondorStyle) Name() string { return "condor" }

// Features implements mechanism.Mechanism.
func (m *CondorStyle) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "condor", Context: taxonomy.UserLevel, Agent: taxonomy.AgentUserSignal,
		Storage:    []storage.Kind{storage.KindLocal, storage.KindRemote},
		Initiation: taxonomy.InitUser,
	}
}

// Install implements mechanism.Mechanism.
func (m *CondorStyle) Install(k *kernel.Kernel) error { return m.install(k) }

// Prepare implements mechanism.Mechanism: relinking is required, but the
// program body is unchanged; the handler is installed by Setup (the
// library's startup code).
func (m *CondorStyle) Prepare(prog kernel.Program) kernel.Program { return prog }

// handler builds the checkpoint signal handler.
func (m *CondorStyle) handler() *sig.Handler {
	return &sig.Handler{
		Name:             m.name + "-handler",
		UsesNonReentrant: true,
		Fn: func(c any, s sig.Signal) {
			ctx, ok := c.(*kernel.Context)
			if !ok {
				return
			}
			m.atPoint(ctx)
		},
	}
}

// Setup implements mechanism.Mechanism: install the checkpoint handler
// (the relinked library does this from its constructor).
func (m *CondorStyle) Setup(k *kernel.Kernel, p *proc.Process) error {
	if m.k != k {
		return mechanism.ErrNotInstalled
	}
	k.Charge(k.CM.Syscall(), "sigaction")
	if err := p.Sig.SetHandler(m.Signal, m.handler()); err != nil {
		return err
	}
	p.Registered[m.name] = true
	return nil
}

// Request implements mechanism.Mechanism: kill -USR2 <pid>.
func (m *CondorStyle) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if !p.Registered[m.name] {
		return nil, fmt.Errorf("%w: condor: handler not installed (run Setup)", mechanism.ErrNotRegistered)
	}
	t, err := m.newRequest(k, p, tgt, env)
	if err != nil {
		return nil, err
	}
	if err := k.Kill(p.PID, m.Signal); err != nil {
		delete(m.pending, p.PID)
		return nil, err
	}
	return t, nil
}

// Restart implements mechanism.Mechanism: the restarted process gets the
// handler reinstalled by the library startup path.
func (m *CondorStyle) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return m.restart(k, chain, enqueue, map[string]*sig.Handler{
		m.name + "-handler": m.handler(),
	})
}

// EskyStyle models Esky [15]: a SIGALRM timer periodically interrupts the
// application and the handler checkpoints it — automatic initiation from
// user level.
type EskyStyle struct {
	userCore
	// Period is the timer period (renamed from the pre-policy Interval
	// field when cadence configuration moved to policy.Spec; this knob is
	// the mechanism's own alarm period, not a cluster cadence).
	Period simtime.Duration
}

// NewEskyStyle returns an Esky-style instance checkpointing every
// interval to defaultTgt.
func NewEskyStyle(interval simtime.Duration, defaultTgt storage.Target) *EskyStyle {
	return &EskyStyle{
		userCore: userCore{name: "esky", defaultTgt: defaultTgt},
		Period:   interval,
	}
}

// Name implements mechanism.Mechanism.
func (m *EskyStyle) Name() string { return "esky" }

// Features implements mechanism.Mechanism.
func (m *EskyStyle) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "esky", Context: taxonomy.UserLevel, Agent: taxonomy.AgentUserSignal,
		Storage:    []storage.Kind{storage.KindLocal},
		Initiation: taxonomy.InitAutomatic,
	}
}

// Install implements mechanism.Mechanism.
func (m *EskyStyle) Install(k *kernel.Kernel) error { return m.install(k) }

// Prepare implements mechanism.Mechanism.
func (m *EskyStyle) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism: install the SIGALRM handler and
// arm the periodic timer.
func (m *EskyStyle) Setup(k *kernel.Kernel, p *proc.Process) error {
	if m.k != k {
		return mechanism.ErrNotInstalled
	}
	h := &sig.Handler{
		Name:             m.name + "-alarm",
		UsesNonReentrant: true,
		Fn: func(c any, s sig.Signal) {
			ctx, ok := c.(*kernel.Context)
			if !ok {
				return
			}
			m.atPoint(ctx)
			ctx.Alarm(m.Period) // re-arm
		},
	}
	if err := p.Sig.SetHandler(sig.SIGALRM, h); err != nil {
		return err
	}
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	ctx.Alarm(m.Period)
	p.Registered[m.name] = true
	return nil
}

// Request implements mechanism.Mechanism: a user can force an early
// checkpoint by sending SIGALRM.
func (m *EskyStyle) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if !p.Registered[m.name] {
		return nil, fmt.Errorf("%w: esky: not set up", mechanism.ErrNotRegistered)
	}
	t, err := m.newRequest(k, p, tgt, env)
	if err != nil {
		return nil, err
	}
	if err := k.Kill(p.PID, sig.SIGALRM); err != nil {
		delete(m.pending, p.PID)
		return nil, err
	}
	return t, nil
}

// Restart implements mechanism.Mechanism.
func (m *EskyStyle) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return m.restart(k, chain, enqueue, nil)
}

// PreloadShim models the LD_PRELOAD approach of §2: the checkpoint
// library is injected at load time — no recompilation or relinking — and
// installs its signal handlers itself, but pays interposition overhead on
// every system call it wraps to shadow kernel state (mmap, open, dup...).
type PreloadShim struct {
	CondorStyle
	// OverheadNS is charged per intercepted syscall.
	OverheadNS int64
}

// NewPreloadShim returns an LD_PRELOAD-based instance.
func NewPreloadShim() *PreloadShim {
	s := &PreloadShim{OverheadNS: 400}
	s.userCore = userCore{name: "preload"}
	s.Signal = sig.SIGUSR2
	return s
}

// Name implements mechanism.Mechanism.
func (m *PreloadShim) Name() string { return "preload" }

// Features implements mechanism.Mechanism.
func (m *PreloadShim) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "preload", Context: taxonomy.UserLevel, Agent: taxonomy.AgentPreload,
		Transparent: true, // no recompile/relink; launched with LD_PRELOAD
		Storage:     []storage.Kind{storage.KindLocal},
		Initiation:  taxonomy.InitUser,
	}
}

// Prepare implements mechanism.Mechanism: the preloaded library wraps
// libc entry points, charging interposition cost per syscall.
func (m *PreloadShim) Prepare(prog kernel.Program) kernel.Program {
	return &interposer{inner: prog, overheadNS: m.OverheadNS}
}

type interposer struct {
	inner      kernel.Program
	overheadNS int64
}

// Name implements kernel.Program (identity preserved for restart).
func (s *interposer) Name() string { return s.inner.Name() }

// Init implements kernel.Program.
func (s *interposer) Init(ctx *kernel.Context) error { return s.inner.Init(ctx) }

// Step implements kernel.Program.
func (s *interposer) Step(ctx *kernel.Context) (kernel.Status, error) {
	before := ctx.K.SyscallCount
	st, err := s.inner.Step(ctx)
	if n := ctx.K.SyscallCount - before; n > 0 {
		ctx.K.Charge(simtime.Duration(int64(n)*s.overheadNS), "preload-intercept")
	}
	return st, err
}
