package userlevel

import (
	"errors"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

func newMachine(name string, progs ...kernel.Program) *kernel.Kernel {
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return kernel.New(kernel.DefaultConfig(name), costmodel.Default2005(), reg)
}

func localTarget() *storage.Local {
	return storage.NewLocal("disk0", costmodel.Default2005(), nil)
}

func lifecycle(t *testing.T, mk func() mechanism.Mechanism) {
	t.Helper()
	const iters = 20
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 17}

	// Reference run.
	ref := mk()
	refProg := ref.Prepare(prog)
	kr := newMachine("ref", refProg)
	if err := ref.Install(kr); err != nil {
		t.Fatal(err)
	}
	pr, err := kr.Spawn(refProg.Name())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Setup(kr, pr); err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(pr, iters)
	if !kr.RunUntilExit(pr, kr.Now().Add(10*simtime.Minute)) {
		t.Fatal("reference stuck")
	}
	want := workload.Fingerprint(pr)

	// Checkpointed run.
	m := mk()
	prepared := m.Prepare(prog)
	k := newMachine("src", prepared)
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(prepared.Name())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(k, p); err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	for p.Regs().PC < iters/2 && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	if p.State == proc.StateZombie {
		t.Fatal("finished early")
	}
	tgt := localTarget()
	tk, err := mechanism.Checkpoint(m, k, p, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Img.Mechanism != m.Name() {
		t.Fatalf("image mechanism %q", tk.Img.Mechanism)
	}
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	chain, err := checkpoint.LoadChain(tgt, nil, tk.Img.ObjectName())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Restart(k, chain, true)
	if err != nil {
		t.Fatal(err)
	}
	if !k.RunUntilExit(p2, k.Now().Add(10*simtime.Minute)) {
		t.Fatalf("restarted stuck (pc=%d)", p2.Regs().PC)
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("fingerprint %#x want %#x", got, want)
	}
}

func TestLifecycleUserMechanisms(t *testing.T) {
	cases := []struct {
		name string
		mk   func() mechanism.Mechanism
	}{
		{"libckpt", func() mechanism.Mechanism { return NewLibCkpt(0, nil, false) }},
		{"libckpt-incremental", func() mechanism.Mechanism { return NewLibCkpt(0, nil, true) }},
		{"condor", func() mechanism.Mechanism { return NewCondorStyle() }},
		{"esky", func() mechanism.Mechanism { return NewEskyStyle(50*simtime.Millisecond, nil) }},
		{"preload", func() mechanism.Mechanism { return NewPreloadShim() }},
		{"libtckpt", func() mechanism.Mechanism { return NewLibTckpt(0, nil) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { lifecycle(t, c.mk) })
	}
}

func TestLibCkptPeriodicAutomatic(t *testing.T) {
	tgt := localTarget()
	m := NewLibCkpt(3, tgt, false)
	prog := workload.Dense{MiB: 1}
	prepared := m.Prepare(prog)
	k := newMachine("k", prepared)
	m.Install(k)
	p, _ := k.Spawn(prepared.Name())
	workload.SetIterations(p, 12)
	if !k.RunUntilExit(p, k.Now().Add(simtime.Minute)) {
		t.Fatal("stuck")
	}
	// Checkpoint points at 3,6,9 (12 is the exit boundary; hook fires
	// before the step that exits).
	if got := len(tgt.List()); got < 3 {
		t.Fatalf("stored %d periodic checkpoints, want ≥3 (%v)", got, tgt.List())
	}
}

func TestLibCkptRefusesUnlinkedApp(t *testing.T) {
	m := NewLibCkpt(0, nil, false)
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog) // not prepared/relinked
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	if _, err := m.Request(k, p, localTarget(), nil); !errors.Is(err, mechanism.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestSingleThreadedOnlyRefusesThreads(t *testing.T) {
	prog := workload.MultiThreaded{MiB: 1, NThreads: 2, Iterations: 1 << 20}
	m := NewCondorStyle()
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	m.Setup(k, p)
	k.RunFor(simtime.Millisecond)
	tk, err := m.Request(k, p, localTarget(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mechanism.WaitTicket(k, tk, simtime.Minute)
	if !errors.Is(tk.Err, mechanism.ErrUnsupported) {
		t.Fatalf("ticket err = %v, want ErrUnsupported", tk.Err)
	}

	// libtckpt handles the same process.
	mt := NewLibTckpt(0, nil)
	prepared := mt.Prepare(prog)
	k2 := newMachine("k2", prepared)
	mt.Install(k2)
	p2, _ := k2.Spawn(prepared.Name())
	k2.RunFor(2 * simtime.Millisecond)
	tk2, err := mechanism.Checkpoint(mt, k2, p2, localTarget(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk2.Img.Threads) != 2 {
		t.Fatalf("libtckpt captured %d threads", len(tk2.Img.Threads))
	}
}

func TestCondorDeadlocksAgainstMallocHeavyApp(t *testing.T) {
	// §3: the Condor-style handler uses non-reentrant functions; if the
	// signal lands while the app is inside malloc, the process deadlocks.
	m := NewCondorStyle()
	prog := workload.Allocator{MiB: 1} // alternates non-reentrant sections
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	m.Setup(k, p)
	k.RunFor(simtime.Millisecond)

	// Force the hazard deterministically: the process is inside malloc.
	p.InNonReentrant = true
	if _, err := m.Request(k, p, localTarget(), nil); err != nil {
		t.Fatal(err)
	}
	k.RunFor(10 * simtime.Millisecond)
	if k.DeadlockCount != 1 {
		t.Fatalf("DeadlockCount = %d, want 1", k.DeadlockCount)
	}
	if p.State != proc.StateBlocked {
		t.Fatalf("process state %v, want deadlocked (blocked)", p.State)
	}
}

func TestEskyPeriodicTimerCheckpoints(t *testing.T) {
	tgt := localTarget()
	m := NewEskyStyle(5*simtime.Millisecond, tgt)
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	m.Setup(k, p)
	workload.SetIterations(p, 1<<30)
	k.RunFor(200 * simtime.Millisecond)
	if got := len(tgt.List()); got < 3 {
		t.Fatalf("SIGALRM checkpoints stored = %d, want ≥3", got)
	}
}

func TestUserLevelCannotCaptureKernelState(t *testing.T) {
	m := NewCondorStyle()
	prog := workload.ResourceUser{MiB: 1, Iterations: 0, UseSocket: true}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	m.Setup(k, p)
	k.RunFor(simtime.Millisecond)
	tk, err := mechanism.Checkpoint(m, k, p, localTarget(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.Img.Sockets) != 0 {
		t.Fatal("user-level capture reached kernel socket state")
	}
	// Restarting on a fresh machine: the socket is gone and the program
	// detects it (§3's limitation).
	dst := newMachine("dst", prog)
	p2, err := m.Restart(dst, []*checkpoint.Image{tk.Img}, true)
	if err != nil {
		t.Fatal(err)
	}
	dst.RunUntilExit(p2, dst.Now().Add(simtime.Minute))
	if p2.ExitCode != workload.ExitSocketLost {
		t.Fatalf("exit %d, want ExitSocketLost", p2.ExitCode)
	}
}

func TestUserVsKernelSyscallFootprint(t *testing.T) {
	// §3's efficiency argument, measured: a user-level checkpoint needs
	// dozens of syscalls (maps, sbrk, lseeks, sigpending, mprotects); the
	// kernel-side accessor needs none.
	prog := workload.Dense{MiB: 4}
	m := NewCondorStyle()
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	m.Setup(k, p)
	workload.SetIterations(p, 1<<30)
	k.RunFor(5 * simtime.Millisecond)

	before := k.SyscallCount
	tk, err := mechanism.Checkpoint(m, k, p, localTarget(), nil)
	if err != nil {
		t.Fatal(err)
	}
	used := k.SyscallCount - before
	if used < 5 {
		t.Fatalf("user-level checkpoint used only %d syscalls", used)
	}
	if tk.Stats.PayloadBytes == 0 {
		t.Fatal("no payload captured")
	}
}

func TestIncrementalLibCkptShrinksDeltas(t *testing.T) {
	tgt := localTarget()
	m := NewLibCkpt(2, tgt, true)
	prog := workload.Sparse{MiB: 4, WriteFrac: 0.05, Seed: 5}
	prepared := m.Prepare(prog)
	k := newMachine("k", prepared)
	m.Install(k)
	p, _ := k.Spawn(prepared.Name())
	workload.SetIterations(p, 11)
	if !k.RunUntilExit(p, k.Now().Add(simtime.Minute)) {
		t.Fatal("stuck")
	}
	objs := tgt.List()
	if len(objs) < 3 {
		t.Fatalf("objects: %v", objs)
	}
	first, _ := tgt.ObjectSize(objs[0])
	last, _ := tgt.ObjectSize(objs[len(objs)-1])
	if last >= first/2 {
		t.Fatalf("incremental delta %d not much smaller than full %d", last, first)
	}
}

func TestPreloadShimOverhead(t *testing.T) {
	prog := workload.Allocator{MiB: 1, Iterations: 500}
	run := func(wrap bool) simtime.Duration {
		m := NewPreloadShim()
		var pr kernel.Program = prog
		if wrap {
			pr = m.Prepare(prog)
		}
		k := newMachine("k", pr)
		p, _ := k.Spawn(pr.Name())
		if !k.RunUntilExit(p, k.Now().Add(simtime.Minute)) {
			t.Fatal("stuck")
		}
		return p.CPUTime
	}
	if plain, shim := run(false), run(true); shim <= plain {
		t.Fatalf("preload run (%v) should be slower than plain (%v)", shim, plain)
	}
}

func TestFeaturesClassification(t *testing.T) {
	for _, m := range []mechanism.Mechanism{
		NewLibCkpt(0, nil, false), NewCondorStyle(), NewEskyStyle(simtime.Second, nil),
		NewPreloadShim(), NewLibTckpt(0, nil),
	} {
		f := m.Features()
		if f.Context != taxonomy.UserLevel {
			t.Errorf("%s: context %v, want user-level", m.Name(), f.Context)
		}
		if f.KernelModule {
			t.Errorf("%s: user-level scheme claims a kernel module", m.Name())
		}
	}
	if !NewLibCkpt(0, nil, true).Features().Incremental {
		t.Error("incremental libckpt not flagged")
	}
	if NewPreloadShim().Features().Agent != taxonomy.AgentPreload {
		t.Error("preload agent misclassified")
	}
}
