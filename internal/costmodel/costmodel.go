// Package costmodel defines the explicit per-operation cost model that
// gives the simulation its notion of performance.
//
// The paper's performance arguments (user- vs system-level checkpointing,
// page- vs cache-line-granularity tracking, local vs remote storage) are
// relative: they depend on the *structure* of the costs — a syscall costs a
// mode switch plus register save/restore, a kernel-thread switch may flush
// the TLB, a page fault costs an exception plus handler — rather than the
// absolute numbers. The defaults below are calibrated to 2005-era hardware
// (the paper cites Lai & Baker [20] for syscall/context-switch costs and
// Sancho et al. [31] for I/O bus, disk, and interconnect bottlenecks).
package costmodel

import (
	"fmt"

	"repro/internal/simtime"
)

// Model holds every tunable cost used by the simulator. A zero Model is
// invalid; start from Default2005() and adjust.
type Model struct {
	// CPU work: one simulated "unit of computation" by an application step.
	CyclesPerSecond float64 // CPU frequency used to convert cycles→time

	// Kernel crossing costs (the paper, §3: "most CPU's registers must be
	// saved/restored every time a system call is performed").
	SyscallEntry    simtime.Duration // user→kernel trap + register save
	SyscallExit     simtime.Duration // kernel→user return + register restore
	ContextSwitch   simtime.Duration // scheduler switch between processes
	TLBFlush        simtime.Duration // full TLB invalidation (address-space switch)
	TLBRefillPer    simtime.Duration // cost to re-fill one TLB entry after a flush
	PageFault       simtime.Duration // exception entry + kernel fault handler
	SignalDeliver   simtime.Duration // set up user signal frame, switch to handler
	SignalReturn    simtime.Duration // sigreturn back to interrupted context
	MprotectBase    simtime.Duration // mprotect syscall fixed cost
	MprotectPerPage simtime.Duration // per-page PTE update inside mprotect
	ForkBase        simtime.Duration // fork fixed cost
	ForkPerPage     simtime.Duration // per-page cost (page-table copy, COW setup)
	InterruptEntry  simtime.Duration // hardware interrupt dispatch

	// Memory and hashing.
	MemCopyBytesPerSec float64          // memcpy bandwidth (bytes/s)
	HashBytesPerSec    float64          // checksum/hash bandwidth (bytes/s)
	MemTouchPerPage    simtime.Duration // cost to walk/inspect one PTE

	// Storage.
	DiskSeek        simtime.Duration // average seek+rotational latency
	DiskBytesPerSec float64          // sustained disk bandwidth
	SwapBytesPerSec float64          // swap partition bandwidth (hibernation)

	// Network (cluster interconnect, 2005: Quadrics/Myrinet class).
	NetLatency     simtime.Duration // one-way small-message latency
	NetBytesPerSec float64          // link bandwidth
	NetPerMessage  simtime.Duration // per-message software overhead

	// Hardware checkpointing (§4.2): logging one cache line.
	CacheLineLog  simtime.Duration // ReVive/SafetyNet per-line log cost
	CacheLineSize int              // bytes per cache line
}

// Default2005 returns the reference model calibrated to the hardware the
// paper discusses: ~2 GHz CPU, ~1 µs syscall round trip, ~5 µs context
// switch, 50 MB/s commodity disk, 4 µs / 250 MB/s interconnect.
func Default2005() *Model {
	return &Model{
		CyclesPerSecond: 2e9,

		SyscallEntry:    400 * simtime.Nanosecond,
		SyscallExit:     300 * simtime.Nanosecond,
		ContextSwitch:   5 * simtime.Microsecond,
		TLBFlush:        2 * simtime.Microsecond,
		TLBRefillPer:    40 * simtime.Nanosecond,
		PageFault:       3 * simtime.Microsecond,
		SignalDeliver:   4 * simtime.Microsecond,
		SignalReturn:    2 * simtime.Microsecond,
		MprotectBase:    1 * simtime.Microsecond,
		MprotectPerPage: 150 * simtime.Nanosecond,
		ForkBase:        80 * simtime.Microsecond,
		ForkPerPage:     200 * simtime.Nanosecond,
		InterruptEntry:  2 * simtime.Microsecond,

		MemCopyBytesPerSec: 1.2e9,
		HashBytesPerSec:    800e6,
		MemTouchPerPage:    60 * simtime.Nanosecond,

		DiskSeek:        8 * simtime.Millisecond,
		DiskBytesPerSec: 50e6,
		SwapBytesPerSec: 45e6,

		NetLatency:     4 * simtime.Microsecond,
		NetBytesPerSec: 250e6,
		NetPerMessage:  1 * simtime.Microsecond,

		CacheLineLog:  25 * simtime.Nanosecond,
		CacheLineSize: 64,
	}
}

// Validate reports an error if any rate or size that is divided by is
// non-positive.
func (m *Model) Validate() error {
	switch {
	case m.CyclesPerSecond <= 0:
		return fmt.Errorf("costmodel: CyclesPerSecond must be positive, got %g", m.CyclesPerSecond)
	case m.MemCopyBytesPerSec <= 0:
		return fmt.Errorf("costmodel: MemCopyBytesPerSec must be positive, got %g", m.MemCopyBytesPerSec)
	case m.HashBytesPerSec <= 0:
		return fmt.Errorf("costmodel: HashBytesPerSec must be positive, got %g", m.HashBytesPerSec)
	case m.DiskBytesPerSec <= 0:
		return fmt.Errorf("costmodel: DiskBytesPerSec must be positive, got %g", m.DiskBytesPerSec)
	case m.SwapBytesPerSec <= 0:
		return fmt.Errorf("costmodel: SwapBytesPerSec must be positive, got %g", m.SwapBytesPerSec)
	case m.NetBytesPerSec <= 0:
		return fmt.Errorf("costmodel: NetBytesPerSec must be positive, got %g", m.NetBytesPerSec)
	case m.CacheLineSize <= 0:
		return fmt.Errorf("costmodel: CacheLineSize must be positive, got %d", m.CacheLineSize)
	}
	return nil
}

// Cycles converts a cycle count to simulated time.
func (m *Model) Cycles(n int64) simtime.Duration {
	return simtime.Duration(float64(n) / m.CyclesPerSecond * float64(simtime.Second))
}

// Syscall returns the full round-trip cost of one system call, excluding
// any work done inside the kernel on its behalf.
func (m *Model) Syscall() simtime.Duration { return m.SyscallEntry + m.SyscallExit }

// MemCopy returns the time to copy n bytes.
func (m *Model) MemCopy(n int) simtime.Duration { return bytesAt(n, m.MemCopyBytesPerSec) }

// Hash returns the time to checksum n bytes.
func (m *Model) Hash(n int) simtime.Duration { return bytesAt(n, m.HashBytesPerSec) }

// DiskWrite returns the time to write n bytes after one seek.
func (m *Model) DiskWrite(n int) simtime.Duration {
	return m.DiskSeek + bytesAt(n, m.DiskBytesPerSec)
}

// DiskStream returns the time to stream n bytes without a seek (sequential
// continuation of an open transfer).
func (m *Model) DiskStream(n int) simtime.Duration { return bytesAt(n, m.DiskBytesPerSec) }

// NetTransfer returns the time to move one n-byte message across one link.
func (m *Model) NetTransfer(n int) simtime.Duration {
	return m.NetLatency + m.NetPerMessage + bytesAt(n, m.NetBytesPerSec)
}

// Mprotect returns the cost of an mprotect syscall covering nPages pages.
func (m *Model) Mprotect(nPages int) simtime.Duration {
	return m.Syscall() + m.MprotectBase + simtime.Duration(nPages)*m.MprotectPerPage
}

// Fork returns the cost of forking a process with nPages mapped pages.
func (m *Model) Fork(nPages int) simtime.Duration {
	return m.ForkBase + simtime.Duration(nPages)*m.ForkPerPage
}

func bytesAt(n int, bytesPerSec float64) simtime.Duration {
	if n <= 0 {
		return 0
	}
	return simtime.Duration(float64(n) / bytesPerSec * float64(simtime.Second))
}

// Biller is the accounting interface through which components charge
// simulated time (and attribute it to a category). The kernel implements
// Biller for the currently running process; coarse models implement it
// with a simple accumulator.
type Biller interface {
	// Charge advances simulated time by d, attributed to category what.
	Charge(d simtime.Duration, what string)
}

// Ledger is a Biller that accumulates charges by category. It is used by
// analytic models and by tests to assert on cost attribution.
type Ledger struct {
	Total      simtime.Duration
	ByCategory map[string]simtime.Duration
	Counts     map[string]int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		ByCategory: make(map[string]simtime.Duration),
		Counts:     make(map[string]int),
	}
}

// Charge implements Biller.
func (l *Ledger) Charge(d simtime.Duration, what string) {
	if d < 0 {
		panic(fmt.Sprintf("costmodel: negative charge %d (%s)", d, what))
	}
	l.Total += d
	l.ByCategory[what] += d
	l.Counts[what]++
}

// Reset zeroes the ledger in place.
func (l *Ledger) Reset() {
	l.Total = 0
	for k := range l.ByCategory {
		delete(l.ByCategory, k)
	}
	for k := range l.Counts {
		delete(l.Counts, k)
	}
}

// Discard is a Biller that drops all charges. Useful for probing
// mechanisms when time accounting is irrelevant.
type Discard struct{}

// Charge implements Biller.
func (Discard) Charge(simtime.Duration, string) {}
