package costmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestDefault2005Valid(t *testing.T) {
	if err := Default2005().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesZeroRates(t *testing.T) {
	fields := []func(*Model){
		func(m *Model) { m.CyclesPerSecond = 0 },
		func(m *Model) { m.MemCopyBytesPerSec = 0 },
		func(m *Model) { m.HashBytesPerSec = 0 },
		func(m *Model) { m.DiskBytesPerSec = 0 },
		func(m *Model) { m.SwapBytesPerSec = 0 },
		func(m *Model) { m.NetBytesPerSec = 0 },
		func(m *Model) { m.CacheLineSize = 0 },
	}
	for i, breakIt := range fields {
		m := Default2005()
		breakIt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken model", i)
		}
	}
}

func TestCyclesConversion(t *testing.T) {
	m := Default2005()
	// 2e9 cycles at 2 GHz is exactly one second.
	if got := m.Cycles(2e9); got != simtime.Second {
		t.Fatalf("Cycles(2e9) = %v, want 1s", got)
	}
	if got := m.Cycles(0); got != 0 {
		t.Fatalf("Cycles(0) = %v, want 0", got)
	}
}

func TestMemCopyScalesLinearly(t *testing.T) {
	m := Default2005()
	one := m.MemCopy(1 << 20)
	four := m.MemCopy(4 << 20)
	ratio := float64(four) / float64(one)
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("MemCopy not linear: 4MiB/1MiB = %.3f", ratio)
	}
}

func TestDiskWriteIncludesSeek(t *testing.T) {
	m := Default2005()
	if got, want := m.DiskWrite(0), m.DiskSeek; got != want {
		t.Fatalf("DiskWrite(0) = %v, want just seek %v", got, want)
	}
	if m.DiskWrite(1<<20) <= m.DiskStream(1<<20) {
		t.Fatal("DiskWrite should cost more than DiskStream for same size")
	}
}

func TestMprotectPerPage(t *testing.T) {
	m := Default2005()
	d1 := m.Mprotect(1)
	d100 := m.Mprotect(100)
	if d100-d1 != 99*m.MprotectPerPage {
		t.Fatalf("Mprotect per-page delta = %v, want %v", d100-d1, 99*m.MprotectPerPage)
	}
}

func TestNetTransferHasFloor(t *testing.T) {
	m := Default2005()
	if got := m.NetTransfer(0); got != m.NetLatency+m.NetPerMessage {
		t.Fatalf("NetTransfer(0) = %v, want latency+overhead", got)
	}
}

func TestLedgerAccumulates(t *testing.T) {
	l := NewLedger()
	l.Charge(10, "a")
	l.Charge(20, "a")
	l.Charge(5, "b")
	if l.Total != 35 {
		t.Fatalf("Total = %v, want 35", l.Total)
	}
	if l.ByCategory["a"] != 30 || l.Counts["a"] != 2 {
		t.Fatalf("category a = %v/%d, want 30/2", l.ByCategory["a"], l.Counts["a"])
	}
	l.Reset()
	if l.Total != 0 || len(l.ByCategory) != 0 || len(l.Counts) != 0 {
		t.Fatal("Reset did not clear ledger")
	}
}

func TestLedgerNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	NewLedger().Charge(-1, "x")
}

// Property: byte-rate costs are monotone in n and never negative.
func TestQuickByteCostsMonotone(t *testing.T) {
	m := Default2005()
	f := func(a, b uint16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		fns := []func(int) simtime.Duration{m.MemCopy, m.Hash, m.DiskStream, m.NetTransfer}
		for _, fn := range fns {
			if fn(lo) < 0 || fn(hi) < fn(lo) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
