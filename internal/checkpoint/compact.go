// Chain folding: collapse a verified restore chain into one full image
// that restores byte-identically to replaying the whole chain. This is
// the image-format half of background chain compaction — the storage
// layer owns the durability protocol (atomic replace under the leaf's
// name, GC only after the folded image is durable; see
// storage.CompactChain) but cannot decode images, so the fold itself
// lives here and is handed across as a callback.

package checkpoint

import (
	"fmt"

	"repro/internal/simos/mem"
)

// FoldChain merges chain (oldest-first) into a single full image with
// the leaf's identity and metadata. The folded image keeps the leaf's
// Epoch, PID and Seq, so its ObjectName is the leaf's own name: deltas
// later chained onto the leaf still find their parent, and a chain walk
// from them now terminates here. Memory contents are the chain's
// per-page last-writer-wins resolution restricted to the leaf's layout —
// exactly what Restore computes — so restoring the folded image is
// byte-identical to replaying the chain it replaces.
func FoldChain(chain []*Image) (*Image, error) {
	if err := VerifyChain(chain); err != nil {
		return nil, fmt.Errorf("checkpoint: fold: %w", err)
	}
	leaf := chain[len(chain)-1]
	folded := *leaf
	folded.Mode = ModeFull
	folded.Parent = ""

	plan, err := planReplay(chain)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: fold: %w", err)
	}

	// Materialize each touched page's final contents and its covered
	// byte intervals, then emit extents over exactly the covered bytes:
	// uncaptured bytes of a mapped page are zero after either restore
	// path, so covering more would change nothing and covering less
	// would lose a write.
	type run struct {
		addr mem.Addr
		data []byte
	}
	var runs []run
	for _, j := range plan.jobs {
		var content [mem.PageSize]byte
		type iv struct{ lo, hi int }
		var covered []iv
		for _, s := range j.spans {
			copy(content[s.off:], s.data)
			covered = append(covered, iv{s.off, s.off + len(s.data)})
		}
		// Merge the covered intervals (spans may overlap arbitrarily).
		for i := 1; i < len(covered); i++ {
			for k := 0; k < i; k++ {
				a, b := covered[i], covered[k]
				if a.lo <= b.hi && b.lo <= a.hi {
					if b.lo < a.lo {
						a.lo = b.lo
					}
					if b.hi > a.hi {
						a.hi = b.hi
					}
					covered[i] = a
					covered = append(covered[:k], covered[k+1:]...)
					i--
					break
				}
			}
		}
		base := j.page.Base()
		for _, c := range covered {
			runs = append(runs, run{addr: base + mem.Addr(c.lo), data: append([]byte(nil), content[c.lo:c.hi]...)})
		}
	}
	// Address order, then coalesce adjacent runs so page-granular chains
	// fold back into the long extents a full capture would produce.
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].addr < runs[j-1].addr; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}

	secs := make([]VMASection, len(leaf.VMAs))
	for i, v := range leaf.VMAs {
		secs[i] = v
		secs[i].Extents = nil
	}
	for _, r := range runs {
		si := -1
		for i := range secs {
			if r.addr >= secs[i].Start && r.addr < secs[i].Start+mem.Addr(secs[i].Length) {
				si = i
				break
			}
		}
		if si < 0 {
			// planReplay only plans pages mapped in the leaf layout.
			return nil, fmt.Errorf("checkpoint: fold: run %#x outside leaf layout", uint64(r.addr))
		}
		exts := secs[si].Extents
		if n := len(exts); n > 0 && exts[n-1].Addr+mem.Addr(len(exts[n-1].Data)) == r.addr {
			exts[n-1].Data = append(exts[n-1].Data, r.data...)
			secs[si].Extents = exts
			continue
		}
		secs[si].Extents = append(exts, Extent{Addr: r.addr, Data: r.data})
	}
	folded.VMAs = secs

	if err := folded.Verify(); err != nil {
		return nil, fmt.Errorf("checkpoint: fold: %w", err)
	}
	return &folded, nil
}

// FoldEncodedChain decodes an encoded chain (oldest-first), folds it,
// and re-encodes the result. It is storage.FoldFunc-shaped: the
// storage-side compactor works on opaque objects and takes the image
// knowledge it needs through this callback (the cluster wires the two
// together).
func FoldEncodedChain(blobs [][]byte) ([]byte, error) {
	chain := make([]*Image, len(blobs))
	for i, b := range blobs {
		img, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: fold link %d: %w", i, err)
		}
		chain[i] = img
	}
	folded, err := FoldChain(chain)
	if err != nil {
		return nil, err
	}
	return folded.EncodeBytes()
}
