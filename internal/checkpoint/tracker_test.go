package checkpoint

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// advanceIters runs p until its PC advances by n iterations.
func advanceIters(t *testing.T, k *kernel.Kernel, p *proc.Process, n uint64) {
	t.Helper()
	target := p.Regs().PC + n
	for p.Regs().PC < target && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	if p.State == proc.StateZombie {
		t.Fatal("workload finished during tracking epoch")
	}
}

func rangeBytes(rs []Range) int {
	n := 0
	for _, r := range rs {
		n += r.Length
	}
	return n
}

func TestKernelWPTrackerTracksExactDelta(t *testing.T) {
	prog := workload.Stencil{MiB: 2}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 100)
	advanceIters(t, k, p, 2) // populate both grids

	trk := NewKernelWPTracker(k, p)
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	// First collect = everything resident.
	first, err := trk.Collect()
	if err != nil {
		t.Fatal(err)
	}
	arena := p.AS.FindByName(workload.ArenaName)
	if rangeBytes(first) < arena.NumPages()*mem.PageSize {
		t.Fatalf("first collect %d bytes, want ≥ arena %d", rangeBytes(first), arena.NumPages()*mem.PageSize)
	}

	// One stencil iteration dirties exactly one grid (half the arena).
	advanceIters(t, k, p, 1)
	k.Stop(p)
	delta, err := trk.Collect()
	if err != nil {
		t.Fatal(err)
	}
	half := arena.NumPages() / 2 * mem.PageSize
	got := rangeBytes(delta)
	if got < half-2*mem.PageSize || got > half+2*mem.PageSize {
		t.Fatalf("delta %d bytes, want ≈ half arena %d", got, half)
	}
	if trk.Stats().Faults == 0 {
		t.Fatal("no tracking faults recorded")
	}
}

func TestUserWPTrackerMatchesKernelPagesButCostsMore(t *testing.T) {
	// Drive the workload by direct Step calls so both runs see byte-
	// identical write sequences between collections.
	run := func(useUser bool) (pages int, overhead simtime.Duration, syscalls uint64) {
		prog := workload.Sparse{MiB: 2, WriteFrac: 0.1, Seed: 7}
		k := newMachine("k", prog)
		p, _ := k.Spawn(prog.Name())
		workload.SetIterations(p, 100)
		ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
		stepIters := func(n uint64) {
			target := p.Regs().PC + n
			for p.Regs().PC < target {
				if _, err := prog.Step(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}
		stepIters(1)

		var trk Tracker
		if useUser {
			trk = NewUserWPTracker(ctx)
		} else {
			trk = NewKernelWPTracker(k, p)
		}
		if err := trk.Arm(); err != nil {
			t.Fatal(err)
		}
		defer trk.Close()
		if _, err := trk.Collect(); err != nil { // discard the full epoch
			t.Fatal(err)
		}
		sys0 := k.SyscallCount
		stepIters(1)
		rs, err := trk.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return rangeBytes(rs) / mem.PageSize, trk.Stats().RuntimeOverhead, k.SyscallCount - sys0
	}
	kPages, kOver, kSys := run(false)
	uPages, uOver, uSys := run(true)
	if kPages != uPages {
		t.Fatalf("page sets differ: kernel %d vs user %d", kPages, uPages)
	}
	if uOver <= kOver {
		t.Fatalf("user tracking overhead %v should exceed kernel %v", uOver, kOver)
	}
	if uSys <= kSys {
		t.Fatalf("user tracker syscalls %d should exceed kernel %d", uSys, kSys)
	}
}

func TestHashTrackerFindsSubPageChanges(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 100)
	advanceIters(t, k, p, 1)
	k.Stop(p)

	acc := &KernelAccessor{K: k, P: p}
	led := costmodel.NewLedger()
	trk, err := NewHashTracker(acc, led, k.CM, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}

	// Modify 10 bytes in one page directly: a page tracker would report
	// 4096 bytes; the 256-byte hash tracker must report exactly one block.
	if err := p.AS.WriteDirect(workload.ArenaBase+100, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	rs, err := trk.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Length != 256 {
		t.Fatalf("ranges = %+v, want one 256-byte block", rs)
	}
	if rs[0].Addr != workload.ArenaBase {
		t.Fatalf("block addr %#x", uint64(rs[0].Addr))
	}
	if trk.Stats().HashedBytes == 0 || led.Total == 0 {
		t.Fatal("hash cost not accounted")
	}
	// No change since: next collect is empty.
	rs, _ = trk.Collect()
	if len(rs) != 0 {
		t.Fatalf("idle collect returned %v", rs)
	}
}

func TestHashTrackerRejectsBadBlockSize(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	acc := &KernelAccessor{K: k, P: p}
	for _, bs := range []int{0, -8, 100, 8192} {
		if _, err := NewHashTracker(acc, costmodel.Discard{}, k.CM, bs, 64); err == nil {
			t.Fatalf("block size %d accepted", bs)
		}
	}
}

func TestHashTrackerMissProbability(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	acc := &KernelAccessor{K: k, P: p}
	trk, _ := NewHashTracker(acc, costmodel.Discard{}, k.CM, 1024, 16)
	if p0 := trk.MissProbability(0); p0 != 0 {
		t.Fatalf("MissProbability(0) = %v", p0)
	}
	p1 := trk.MissProbability(1)
	if p1 <= 0 || p1 >= 1e-3 {
		t.Fatalf("MissProbability(1) with 16 bits = %v, want ≈2^-16", p1)
	}
	if trk.MissProbability(1000) <= p1 {
		t.Fatal("miss probability not increasing in block count")
	}
	trk64, _ := NewHashTracker(acc, costmodel.Discard{}, k.CM, 1024, 64)
	if trk64.MissProbability(1) >= p1 {
		t.Fatal("wider hash should miss less")
	}
}

func TestAdaptiveTrackerShrinksBlocksForSparseWrites(t *testing.T) {
	prog := workload.PointerChase{MiB: 2, WriteEvery: 32, Seed: 5}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<40)
	advanceIters(t, k, p, 2048)
	k.Stop(p)

	acc := &KernelAccessor{K: k, P: p}
	trk, err := NewAdaptiveTracker(acc, costmodel.Discard{}, k.CM, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	startSize := trk.Granularity()

	k.Wake(p)
	for epoch := 0; epoch < 4; epoch++ {
		advanceIters(t, k, p, 1024)
		k.Stop(p)
		if _, err := trk.Collect(); err != nil {
			t.Fatal(err)
		}
		k.Wake(p)
	}
	if trk.Granularity() >= startSize {
		t.Fatalf("adaptive block size %d did not shrink from %d for sparse writes", trk.Granularity(), startSize)
	}
}

func TestAdaptiveTrackerKeepsCoarseBlocksForDenseWrites(t *testing.T) {
	prog := workload.Dense{MiB: 2}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	advanceIters(t, k, p, 1)
	k.Stop(p)

	acc := &KernelAccessor{K: k, P: p}
	trk, _ := NewAdaptiveTracker(acc, costmodel.Discard{}, k.CM, nil)
	defer trk.Close()
	trk.Arm()
	k.Wake(p)
	for epoch := 0; epoch < 3; epoch++ {
		advanceIters(t, k, p, 1)
		k.Stop(p)
		if _, err := trk.Collect(); err != nil {
			t.Fatal(err)
		}
		k.Wake(p)
	}
	if trk.Granularity() != 4096 {
		t.Fatalf("adaptive block size %d for dense writes, want to stay at 4096", trk.Granularity())
	}
}

func TestFullTrackerReturnsEverything(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 100)
	advanceIters(t, k, p, 1)
	trk := &FullTracker{AS: p.AS}
	trk.Arm()
	a, _ := trk.Collect()
	b, _ := trk.Collect()
	if rangeBytes(a) != rangeBytes(b) || rangeBytes(a) == 0 {
		t.Fatalf("full tracker inconsistent: %d vs %d", rangeBytes(a), rangeBytes(b))
	}
}

func TestCollectBeforeArmFails(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	if _, err := NewKernelWPTracker(k, p).Collect(); err == nil {
		t.Fatal("kernel tracker Collect before Arm succeeded")
	}
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	if _, err := NewUserWPTracker(ctx).Collect(); err == nil {
		t.Fatal("user tracker Collect before Arm succeeded")
	}
	acc := &KernelAccessor{K: k, P: p}
	ht, _ := NewHashTracker(acc, costmodel.Discard{}, k.CM, 512, 64)
	if _, err := ht.Collect(); err == nil {
		t.Fatal("hash tracker Collect before Arm succeeded")
	}
}

func TestTrackerCloseRestoresWritability(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	advanceIters(t, k, p, 1)
	trk := NewKernelWPTracker(k, p)
	trk.Arm()
	trk.Close()
	// After Close, writes take no tracking faults.
	f0 := p.AS.FaultCount()
	if err := p.AS.Write(workload.ArenaBase, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if p.AS.FaultCount() != f0 {
		t.Fatal("write faulted after tracker Close")
	}
}

func TestPagesToRangesCoalesces(t *testing.T) {
	rs := pagesToRanges([]mem.PageNum{5, 1, 2, 3, 9, 9, 10})
	want := []Range{
		{Addr: mem.PageNum(1).Base(), Length: 3 * mem.PageSize},
		{Addr: mem.PageNum(5).Base(), Length: mem.PageSize},
		{Addr: mem.PageNum(9).Base(), Length: 2 * mem.PageSize},
	}
	if len(rs) != len(want) {
		t.Fatalf("ranges = %+v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("range %d = %+v, want %+v", i, rs[i], want[i])
		}
	}
	if pagesToRanges(nil) != nil {
		t.Fatal("empty input")
	}
}
