// Package checkpoint is the core checkpoint/restart engine shared by every
// mechanism in the survey: the image format, state accessors (kernel-direct
// vs syscall-based — the §3/§4 divide), dirty trackers (full, kernel page
// fault, user mprotect+SIGSEGV, probabilistic block hashing, adaptive block
// sizing), the capture engine, and the restore engine with incremental-chain
// reconstruction.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"sort"

	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
)

// Mode distinguishes full images from incremental deltas.
type Mode uint8

// Image modes.
const (
	ModeFull Mode = iota
	ModeIncremental
)

func (m Mode) String() string {
	if m == ModeIncremental {
		return "incremental"
	}
	return "full"
}

// Extent is a run of captured memory contents.
type Extent struct {
	Addr mem.Addr
	Data []byte
}

// VMASection describes one mapped region and the extents captured from it.
type VMASection struct {
	Start   mem.Addr
	Length  uint64
	Kind    mem.VMAKind
	Name    string
	Prot    mem.Prot
	Extents []Extent // sorted by Addr
}

// ThreadRecord is one thread's register file.
type ThreadRecord struct {
	TID  proc.TID
	Regs proc.Regs
}

// FDRecord is one descriptor. Contents is non-nil only for deleted-but-open
// files captured by mechanisms that can reach the inode (UCLiK).
type FDRecord struct {
	FD       int
	Path     string
	Flags    fs.OpenFlags
	Offset   int64
	Deleted  bool
	Contents []byte
}

// Disposition kinds for SigDispRecord.
const (
	DispDefault uint8 = iota
	DispIgnore
	DispHandler
)

// SigDispRecord is one signal disposition. Handler code cannot be
// serialized; HandlerName keys a resolver at restore time, and the live
// pointer is carried in Image.handlers for same-process restores.
type SigDispRecord struct {
	Sig          sig.Signal
	Kind         uint8
	HandlerName  string
	NonReentrant bool
}

// SocketRecord describes a kernel socket owned by the process, captured
// only by virtualizing mechanisms (ZAP pods).
type SocketRecord struct {
	ID   int
	Peer string
}

// Image is one checkpoint of one process.
type Image struct {
	Mechanism string
	Hostname  string
	TakenAt   simtime.Time
	Seq       uint64
	Parent    string // object name of the previous image in the chain
	Mode      Mode
	// Epoch namespaces the chain's object names by incarnation (the
	// fencing epoch that admitted the process). Fresh kernels reuse PIDs
	// from 1, so without it a new incarnation's images would overwrite a
	// prior chain's ancestors while every parent link still matched.
	// Zero means un-namespaced (single-incarnation / legacy) names.
	Epoch uint64

	PID  proc.PID
	PPID proc.PID
	// VPID is the pod-virtualized PID (0 when not in a pod).
	VPID proc.PID
	Exe  string
	Args []string
	Brk  mem.Addr

	Threads    []ThreadRecord
	VMAs       []VMASection
	FDs        []FDRecord
	SigDisps   []SigDispRecord
	SigPending []sig.Signal
	SigBlocked []sig.Signal

	// Virtualized kernel state (ZAP-style pods only).
	Sockets []SocketRecord
	Shm     map[string][]byte

	// handlers carries live handler pointers for restores within the same
	// simulation; it does not survive Encode/Decode.
	handlers map[sig.Signal]*sig.Handler
}

// ObjectName returns the storage key for this image. Epoch-stamped
// images live under a per-incarnation prefix so chains from different
// incarnations can never collide on a reused PID.
func (img *Image) ObjectName() string {
	if img.Epoch != 0 {
		return fmt.Sprintf("ckpt/e%d/pid%d/seq%d", img.Epoch, img.PID, img.Seq)
	}
	return fmt.Sprintf("ckpt/pid%d/seq%d", img.PID, img.Seq)
}

// PayloadBytes returns the total captured memory bytes.
func (img *Image) PayloadBytes() int {
	n := 0
	for _, v := range img.VMAs {
		for _, e := range v.Extents {
			n += len(e.Data)
		}
	}
	return n
}

// NumExtents returns the total number of captured extents.
func (img *Image) NumExtents() int {
	n := 0
	for _, v := range img.VMAs {
		n += len(v.Extents)
	}
	return n
}

// Handlers returns the live handler map (same-simulation restores).
func (img *Image) Handlers() map[sig.Signal]*sig.Handler { return img.handlers }

// --- Binary codec ---

const (
	imageMagic = uint32(0xC4EC_4001)
	// imageVersion 2 added the Epoch field after Seq; version-1 images
	// (Epoch implicitly zero) still decode.
	imageVersion = uint16(2)
)

// ErrCorrupt reports a failed checksum or malformed image.
var ErrCorrupt = errors.New("checkpoint: corrupt image")

var crcTable = crc64.MakeTable(crc64.ECMA)

type cw struct {
	w   io.Writer
	crc uint64
	n   int
	err error
}

func (c *cw) write(p []byte) {
	if c.err != nil {
		return
	}
	c.crc = crc64.Update(c.crc, crcTable, p)
	n, err := c.w.Write(p)
	c.n += n
	c.err = err
}

func (c *cw) u8(v uint8)   { c.write([]byte{v}) }
func (c *cw) u16(v uint16) { var b [2]byte; binary.LittleEndian.PutUint16(b[:], v); c.write(b[:]) }
func (c *cw) u32(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); c.write(b[:]) }
func (c *cw) u64(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); c.write(b[:]) }
func (c *cw) i64(v int64)  { c.u64(uint64(v)) }
func (c *cw) str(s string) { c.u32(uint32(len(s))); c.write([]byte(s)) }
func (c *cw) blob(b []byte) {
	c.u32(uint32(len(b)))
	c.write(b)
}
func (c *cw) blobOpt(b []byte) {
	if b == nil {
		c.u8(0)
		return
	}
	c.u8(1)
	c.blob(b)
}

type cr struct {
	r   *bytes.Reader
	crc uint64
	err error
}

func (c *cr) read(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := io.ReadFull(c.r, p); err != nil {
		c.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return
	}
	c.crc = crc64.Update(c.crc, crcTable, p)
}

func (c *cr) u8() uint8   { var b [1]byte; c.read(b[:]); return b[0] }
func (c *cr) u16() uint16 { var b [2]byte; c.read(b[:]); return binary.LittleEndian.Uint16(b[:]) }
func (c *cr) u32() uint32 { var b [4]byte; c.read(b[:]); return binary.LittleEndian.Uint32(b[:]) }
func (c *cr) u64() uint64 { var b [8]byte; c.read(b[:]); return binary.LittleEndian.Uint64(b[:]) }
func (c *cr) i64() int64  { return int64(c.u64()) }
func (c *cr) str() string { return string(c.blob()) }
func (c *cr) blob() []byte {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	if int(n) > c.r.Len() {
		c.err = fmt.Errorf("%w: blob length %d exceeds remaining input", ErrCorrupt, n)
		return nil
	}
	b := make([]byte, n)
	c.read(b)
	return b
}
func (c *cr) blobOpt() []byte {
	if c.u8() == 0 {
		return nil
	}
	return c.blob()
}

// Encode writes the image in the sectioned binary format, ending with a
// CRC-64 trailer. The body is split into head / per-VMA sections / tail
// helpers shared with EncodeParallel, which encodes the same layout with
// sections sharded across workers — both paths produce identical bytes.
func (img *Image) Encode(w io.Writer) (int, error) {
	c := &cw{w: w}
	img.encodeHead(c)
	for i := range img.VMAs {
		encodeVMAHeader(c, &img.VMAs[i])
		encodeExtents(c, img.VMAs[i].Extents)
	}
	img.encodeTail(c)

	// CRC trailer (not itself CRC'd).
	if c.err == nil {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], c.crc)
		n, err := c.w.Write(b[:])
		c.n += n
		c.err = err
	}
	return c.n, c.err
}

// encodeHead writes everything before the VMA sections, up to and
// including the section count.
func (img *Image) encodeHead(c *cw) {
	c.u32(imageMagic)
	c.u16(imageVersion)
	c.str(img.Mechanism)
	c.str(img.Hostname)
	c.i64(int64(img.TakenAt))
	c.u64(img.Seq)
	c.u64(img.Epoch)
	c.str(img.Parent)
	c.u8(uint8(img.Mode))
	c.i64(int64(img.PID))
	c.i64(int64(img.PPID))
	c.i64(int64(img.VPID))
	c.str(img.Exe)
	c.u32(uint32(len(img.Args)))
	for _, a := range img.Args {
		c.str(a)
	}
	c.u64(uint64(img.Brk))

	c.u32(uint32(len(img.Threads)))
	for _, t := range img.Threads {
		c.i64(int64(t.TID))
		c.u64(t.Regs.PC)
		c.u64(t.Regs.SP)
		for _, g := range t.Regs.G {
			c.u64(g)
		}
	}

	c.u32(uint32(len(img.VMAs)))
}

// encodeVMAHeader writes one section's fixed fields and extent count.
func encodeVMAHeader(c *cw, v *VMASection) {
	c.u64(uint64(v.Start))
	c.u64(v.Length)
	c.u8(uint8(v.Kind))
	c.str(v.Name)
	c.u8(uint8(v.Prot))
	c.u32(uint32(len(v.Extents)))
}

// encodeExtents writes a run of extents (a shard boundary for the
// parallel encoder).
func encodeExtents(c *cw, exts []Extent) {
	for _, e := range exts {
		c.u64(uint64(e.Addr))
		c.blob(e.Data)
	}
}

// encodeTail writes everything after the VMA sections.
func (img *Image) encodeTail(c *cw) {
	c.u32(uint32(len(img.FDs)))
	for _, f := range img.FDs {
		c.i64(int64(f.FD))
		c.str(f.Path)
		c.u8(uint8(f.Flags))
		c.i64(f.Offset)
		if f.Deleted {
			c.u8(1)
		} else {
			c.u8(0)
		}
		c.blobOpt(f.Contents)
	}

	c.u32(uint32(len(img.SigDisps)))
	for _, d := range img.SigDisps {
		c.i64(int64(d.Sig))
		c.u8(d.Kind)
		c.str(d.HandlerName)
		if d.NonReentrant {
			c.u8(1)
		} else {
			c.u8(0)
		}
	}
	writeSigs := func(ss []sig.Signal) {
		c.u32(uint32(len(ss)))
		for _, s := range ss {
			c.i64(int64(s))
		}
	}
	writeSigs(img.SigPending)
	writeSigs(img.SigBlocked)

	c.u32(uint32(len(img.Sockets)))
	for _, s := range img.Sockets {
		c.i64(int64(s.ID))
		c.str(s.Peer)
	}

	keys := make([]string, 0, len(img.Shm))
	for k := range img.Shm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c.u32(uint32(len(keys)))
	for _, k := range keys {
		c.str(k)
		c.blob(img.Shm[k])
	}
}

// EncodeBytes returns the encoded image.
func (img *Image) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := img.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses an encoded image, verifying the CRC trailer.
func Decode(data []byte) (*Image, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	wantCRC := binary.LittleEndian.Uint64(trailer)
	if crc64.Checksum(body, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	c := &cr{r: bytes.NewReader(body)}
	if c.u32() != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v := c.u16()
	if v < 1 || v > imageVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	img := &Image{}
	img.Mechanism = c.str()
	img.Hostname = c.str()
	img.TakenAt = simtime.Time(c.i64())
	img.Seq = c.u64()
	if v >= 2 {
		img.Epoch = c.u64()
	}
	img.Parent = c.str()
	img.Mode = Mode(c.u8())
	img.PID = proc.PID(c.i64())
	img.PPID = proc.PID(c.i64())
	img.VPID = proc.PID(c.i64())
	img.Exe = c.str()
	nArgs := c.u32()
	for i := uint32(0); i < nArgs && c.err == nil; i++ {
		img.Args = append(img.Args, c.str())
	}
	img.Brk = mem.Addr(c.u64())

	nThr := c.u32()
	for i := uint32(0); i < nThr && c.err == nil; i++ {
		var t ThreadRecord
		t.TID = proc.TID(c.i64())
		t.Regs.PC = c.u64()
		t.Regs.SP = c.u64()
		for j := range t.Regs.G {
			t.Regs.G[j] = c.u64()
		}
		img.Threads = append(img.Threads, t)
	}

	nVMA := c.u32()
	for i := uint32(0); i < nVMA && c.err == nil; i++ {
		var v VMASection
		v.Start = mem.Addr(c.u64())
		v.Length = c.u64()
		v.Kind = mem.VMAKind(c.u8())
		v.Name = c.str()
		v.Prot = mem.Prot(c.u8())
		nExt := c.u32()
		for j := uint32(0); j < nExt && c.err == nil; j++ {
			var e Extent
			e.Addr = mem.Addr(c.u64())
			e.Data = c.blob()
			v.Extents = append(v.Extents, e)
		}
		img.VMAs = append(img.VMAs, v)
	}

	nFD := c.u32()
	for i := uint32(0); i < nFD && c.err == nil; i++ {
		var f FDRecord
		f.FD = int(c.i64())
		f.Path = c.str()
		f.Flags = fs.OpenFlags(c.u8())
		f.Offset = c.i64()
		f.Deleted = c.u8() == 1
		f.Contents = c.blobOpt()
		img.FDs = append(img.FDs, f)
	}

	nDisp := c.u32()
	for i := uint32(0); i < nDisp && c.err == nil; i++ {
		var d SigDispRecord
		d.Sig = sig.Signal(c.i64())
		d.Kind = c.u8()
		d.HandlerName = c.str()
		d.NonReentrant = c.u8() == 1
		img.SigDisps = append(img.SigDisps, d)
	}
	readSigs := func() []sig.Signal {
		n := c.u32()
		var out []sig.Signal
		for i := uint32(0); i < n && c.err == nil; i++ {
			out = append(out, sig.Signal(c.i64()))
		}
		return out
	}
	img.SigPending = readSigs()
	img.SigBlocked = readSigs()

	nSock := c.u32()
	for i := uint32(0); i < nSock && c.err == nil; i++ {
		var s SocketRecord
		s.ID = int(c.i64())
		s.Peer = c.str()
		img.Sockets = append(img.Sockets, s)
	}

	nShm := c.u32()
	if nShm > 0 {
		// Bound the bucket pre-allocation by what the remaining input
		// could possibly hold (each entry costs at least two u32 length
		// prefixes): a forged count must not allocate ahead of the bytes
		// backing it.
		hint := c.r.Len() / 8
		if int(nShm) < hint {
			hint = int(nShm)
		}
		img.Shm = make(map[string][]byte, hint)
	}
	for i := uint32(0); i < nShm && c.err == nil; i++ {
		k := c.str()
		img.Shm[k] = c.blob()
	}

	if c.err != nil {
		return nil, c.err
	}
	return img, nil
}
