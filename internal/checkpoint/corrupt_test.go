package checkpoint

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/storage"
)

// encodedSample returns a valid encoded image for corruption tests.
func encodedSample(t *testing.T) []byte {
	t.Helper()
	img := sampleImage(rand.New(rand.NewSource(7)))
	data, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("pristine image does not decode: %v", err)
	}
	return data
}

// TestDecodeRejectsCorruptImages flips bytes at the offsets a torn or
// bit-rotted write would plausibly damage — header, page data, CRC
// trailer — and requires Decode to fail loudly rather than half-restore.
func TestDecodeRejectsCorruptImages(t *testing.T) {
	data := encodedSample(t)
	offsets := map[string]int{
		"header":      0,
		"metadata":    24,
		"page-data":   len(data) / 2,
		"pre-trailer": len(data) - 9,
		"crc-trailer": len(data) - 4,
	}
	for name, off := range offsets {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s (offset %d): err = %v, want ErrCorrupt", name, off, err)
		}
	}
}

// TestDecodeRejectsTruncatedImages models torn writes: every prefix of a
// valid image must be rejected. (Exhaustive over a stride to keep the
// test fast; the CRC trailer guarantees the property for all lengths.)
func TestDecodeRejectsTruncatedImages(t *testing.T) {
	data := encodedSample(t)
	lengths := []int{0, 1, 7, 8, len(data) / 4, len(data) / 2, len(data) - 8, len(data) - 1}
	for i := 16; i < len(data); i += 97 {
		lengths = append(lengths, i)
	}
	for _, n := range lengths {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d of %d: err = %v, want ErrCorrupt", n, len(data), err)
		}
	}
	// Trailing garbage is corruption too, not ignorable padding.
	if _, err := Decode(append(append([]byte(nil), data...), 0xaa)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing garbage: want ErrCorrupt")
	}
}

// TestLoadChainSurfacesTornImages plants a torn image on a disk and
// requires the restore path (LoadChain) to report ErrCorrupt instead of
// returning a chain that would half-restore.
func TestLoadChainSurfacesTornImages(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(8)))
	img.Mode = ModeFull
	img.Parent = ""
	data, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewLocal("d", costmodel.Default2005(), nil)
	for _, tc := range []struct {
		name string
		keep int
	}{
		{"torn-at-header", 4},
		{"torn-mid-pages", len(data) / 2},
		{"torn-at-crc", len(data) - 3},
	} {
		if err := storage.Write(disk, tc.name, data[:tc.keep], storage.WriteOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadChain(disk, nil, tc.name); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: LoadChain err = %v, want ErrCorrupt", tc.name, err)
		}
	}
	// Sanity: the intact image loads.
	if err := storage.Write(disk, "good", data, storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	chain, err := LoadChain(disk, nil, "good")
	if err != nil || len(chain) != 1 {
		t.Fatalf("intact chain: %v (len %d)", err, len(chain))
	}
}

// TestAuditClassifiesObjects checks the integrity sweep used by E11.
func TestAuditClassifiesObjects(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(9)))
	data, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewLocal("d", costmodel.Default2005(), nil)
	if err := storage.Write(disk, "good1", data, storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if err := storage.Write(disk, "good2", data, storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if err := storage.Write(disk, "torn", data[:len(data)/3], storage.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := storage.Write(disk, storage.StagingName("inflight"), data[:8], storage.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	intact, torn, staging := Audit(disk)
	if intact != 2 || torn != 1 || staging != 1 {
		t.Fatalf("Audit = (%d, %d, %d), want (2, 1, 1)", intact, torn, staging)
	}
}
