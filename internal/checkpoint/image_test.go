package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
)

func sampleImage(rng *rand.Rand) *Image {
	img := &Image{
		Mechanism: "blcr",
		Hostname:  "node3",
		TakenAt:   12345678,
		Seq:       7,
		Parent:    "ckpt/pid4/seq6",
		Mode:      ModeIncremental,
		PID:       4,
		PPID:      1,
		Exe:       "dense[mib=8]",
		Args:      []string{"-x", "1"},
		Brk:       0x601000,
		Threads: []ThreadRecord{
			{TID: 1, Regs: proc.Regs{PC: 99, SP: 0x7ffeff00, G: [proc.NumGRegs]uint64{1, 2, 3, 4, 5, 6, 7, 8}}},
			{TID: 2, Regs: proc.Regs{PC: 5}},
		},
		FDs: []FDRecord{
			{FD: 0, Path: "/dev/null", Flags: fs.ORead, Offset: 0},
			{FD: 3, Path: "/out", Flags: fs.OWrite, Offset: 512, Deleted: true, Contents: []byte("gone but saved")},
		},
		SigDisps: []SigDispRecord{
			{Sig: sig.SIGUSR1, Kind: DispHandler, HandlerName: "ckpt-handler", NonReentrant: true},
			{Sig: sig.SIGALRM, Kind: DispIgnore},
		},
		SigPending: []sig.Signal{sig.SIGUSR2},
		SigBlocked: []sig.Signal{sig.SIGTERM},
		Sockets:    []SocketRecord{{ID: 2, Peer: "db:99"}},
		Shm:        map[string][]byte{"seg": {9, 8, 7}},
	}
	for v := 0; v < 2; v++ {
		sec := VMASection{
			Start:  mem.Addr(0x1000_0000 + v*0x100000),
			Length: 16 * mem.PageSize,
			Kind:   mem.KindAnon,
			Name:   "arena",
			Prot:   mem.ProtRW,
		}
		for e := 0; e < 3; e++ {
			data := make([]byte, 1+rng.Intn(2*mem.PageSize))
			rng.Read(data)
			sec.Extents = append(sec.Extents, Extent{
				Addr: sec.Start + mem.Addr(e*4*mem.PageSize),
				Data: data,
			})
		}
		img.VMAs = append(img.VMAs, sec)
	}
	return img
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(1)))
	data, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// handlers is in-memory only; clear for comparison.
	img.handlers = nil
	if !reflect.DeepEqual(img, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, img)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(2)))
	data, _ := img.EncodeBytes()
	for _, pos := range []int{0, 10, len(data) / 2, len(data) - 9} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xFF
		if _, err := Decode(mut); err == nil {
			t.Fatalf("corruption at byte %d not detected", pos)
		}
	}
	if _, err := Decode(data[:4]); err == nil {
		t.Fatal("truncated image accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestDecodeRejectsTruncatedTail(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(3)))
	data, _ := img.EncodeBytes()
	// Chop the middle out but keep length ≥ 8: CRC must fail.
	if _, err := Decode(data[:len(data)-20]); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestPayloadAccounting(t *testing.T) {
	img := &Image{
		VMAs: []VMASection{
			{Extents: []Extent{{Data: make([]byte, 100)}, {Data: make([]byte, 28)}}},
			{Extents: []Extent{{Data: make([]byte, 72)}}},
		},
	}
	if img.PayloadBytes() != 200 {
		t.Fatalf("PayloadBytes = %d", img.PayloadBytes())
	}
	if img.NumExtents() != 3 {
		t.Fatalf("NumExtents = %d", img.NumExtents())
	}
}

func TestObjectName(t *testing.T) {
	img := &Image{PID: 12, Seq: 3}
	if img.ObjectName() != "ckpt/pid12/seq3" {
		t.Fatalf("ObjectName = %q", img.ObjectName())
	}
}

func TestEncodeReportsBytes(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(4)))
	var buf bytes.Buffer
	n, err := img.Encode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("Encode returned %d, wrote %d", n, buf.Len())
	}
	if n <= img.PayloadBytes() {
		t.Fatal("encoded size should exceed payload (headers)")
	}
}

// Property: encode→decode is the identity on random well-formed images.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		img := sampleImage(rand.New(rand.NewSource(seed)))
		data, err := img.EncodeBytes()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		img.handlers = nil
		return reflect.DeepEqual(img, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-bit flip is detected.
func TestQuickCodecBitFlips(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(9)))
	data, _ := img.EncodeBytes()
	f := func(pos uint32, bit uint8) bool {
		mut := append([]byte(nil), data...)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		_, err := Decode(mut)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary input — malformed images are
// rejected with errors, not crashes.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %d bytes: %v", len(data), r)
			}
		}()
		img, err := Decode(data)
		// Either an error or a valid image; both are acceptable.
		return err != nil || img != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping the trailer to match a truncated body still fails
// the structural parse (belt and braces beyond the CRC).
func TestDecodeTruncatedWithFixedCRC(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(5)))
	data, _ := img.EncodeBytes()
	body := data[:len(data)/2]
	// Recompute a valid CRC for the truncated body.
	sum := crc64.Checksum(body, crcTable)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], sum)
	mut := append(append([]byte(nil), body...), trailer[:]...)
	if _, err := Decode(mut); err == nil {
		t.Fatal("structurally truncated image accepted")
	}
}
