package checkpoint

import (
	"fmt"
	"hash/fnv"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
)

// HybridTracker composes the two incremental techniques the paper
// discusses: kernel write-protection finds the dirty *pages* at one fault
// per first touch (§4.1), and block hashing then narrows each dirty page
// to its changed sub-page *blocks* (§3, [23]). Compared to a pure hash
// tracker it only hashes dirty pages (not the whole resident set);
// compared to a pure page tracker it ships less data for small scattered
// writes. This is the combination the adaptive scheme of [1] builds on.
type HybridTracker struct {
	K         *kernel.Kernel
	P         *proc.Process
	Bill      costmodel.Biller
	BlockSize int

	page      *KernelWPTracker
	prevHash  map[mem.Addr]uint64
	stats     TrackerStats
	armed     bool
	firstDone bool
}

// NewHybridTracker builds a hybrid tracker with the given sub-page block
// size.
func NewHybridTracker(k *kernel.Kernel, p *proc.Process, bill costmodel.Biller, blockSize int) (*HybridTracker, error) {
	if blockSize <= 0 || blockSize > mem.PageSize || mem.PageSize%blockSize != 0 {
		return nil, fmt.Errorf("checkpoint: hybrid block size %d must divide the page size", blockSize)
	}
	return &HybridTracker{
		K: k, P: p, Bill: bill, BlockSize: blockSize,
		page:     NewKernelWPTracker(k, p),
		prevHash: make(map[mem.Addr]uint64),
	}, nil
}

// Name implements Tracker.
func (t *HybridTracker) Name() string { return fmt.Sprintf("hybrid-%dB", t.BlockSize) }

// Granularity implements Tracker.
func (t *HybridTracker) Granularity() int { return t.BlockSize }

// Arm implements Tracker.
func (t *HybridTracker) Arm() error {
	if err := t.page.Arm(); err != nil {
		return err
	}
	t.armed = true
	return nil
}

// hashPage hashes one page's blocks into out, charging the hash cost.
func (t *HybridTracker) hashPage(base mem.Addr, out map[mem.Addr]uint64) error {
	buf := make([]byte, t.BlockSize)
	for off := 0; off < mem.PageSize; off += t.BlockSize {
		if err := t.P.AS.ReadDirect(base+mem.Addr(off), buf); err != nil {
			return err
		}
		h := fnv.New64a()
		h.Write(buf)
		out[base+mem.Addr(off)] = h.Sum64()
	}
	t.stats.HashedBytes += mem.PageSize
	t.Bill.Charge(t.K.CM.Hash(mem.PageSize), "hybrid-hash")
	return nil
}

// Collect implements Tracker: take the page tracker's dirty set, hash
// only those pages, and report the blocks whose hashes changed. Blocks of
// pages never seen before report in full.
func (t *HybridTracker) Collect() ([]Range, error) {
	if !t.armed {
		return nil, fmt.Errorf("checkpoint: %s: Collect before Arm", t.Name())
	}
	pageRanges, err := t.page.Collect()
	if err != nil {
		return nil, err
	}
	var out []Range
	for _, pr := range pageRanges {
		for off := 0; off < pr.Length; off += mem.PageSize {
			base := pr.Addr + mem.Addr(off)
			cur := make(map[mem.Addr]uint64, mem.PageSize/t.BlockSize)
			if err := t.hashPage(base, cur); err != nil {
				return nil, err
			}
			for a := base; a < base+mem.PageSize; a += mem.Addr(t.BlockSize) {
				h := cur[a]
				if ph, seen := t.prevHash[a]; !t.firstDone || !seen || ph != h {
					if n := len(out); n > 0 && out[n-1].Addr+mem.Addr(out[n-1].Length) == a {
						out[n-1].Length += t.BlockSize
					} else {
						out = append(out, Range{Addr: a, Length: t.BlockSize})
					}
				}
				t.prevHash[a] = h
			}
		}
	}
	t.firstDone = true
	return out, nil
}

// Stats implements Tracker, merging the page tracker's fault counters
// with the hashing counters.
func (t *HybridTracker) Stats() TrackerStats {
	s := t.page.Stats()
	s.HashedBytes += t.stats.HashedBytes
	return s
}

// Close implements Tracker.
func (t *HybridTracker) Close() {
	t.page.Close()
	t.prevHash = nil
	t.armed = false
}

var _ Tracker = (*HybridTracker)(nil)

// Coalesce merges a verified restore chain into a single equivalent full
// image: the leaf's metadata with the union of all extents, later deltas
// overwriting earlier data. Mechanisms use it to bound chain length (and
// so restart latency) without losing any state — restoring the coalesced
// image is equivalent to restoring the chain.
func Coalesce(chain []*Image) (*Image, error) {
	if err := VerifyChain(chain); err != nil {
		return nil, err
	}
	leaf := chain[len(chain)-1]

	// Materialize the chain into a scratch address space, replaying
	// extents oldest-first.
	as := mem.NewAddressSpace()
	for _, v := range leaf.VMAs {
		if _, err := as.Map(v.Start, v.Length, mem.ProtRW, v.Kind, v.Name); err != nil {
			return nil, fmt.Errorf("checkpoint: coalesce map: %w", err)
		}
	}
	for _, img := range chain {
		for _, v := range img.VMAs {
			for _, e := range v.Extents {
				if as.Find(e.Addr) == nil {
					continue // region unmapped by the time of the leaf
				}
				if err := as.WriteDirect(e.Addr, e.Data); err != nil {
					return nil, fmt.Errorf("checkpoint: coalesce write: %w", err)
				}
			}
		}
	}

	out := &Image{
		Mechanism:  leaf.Mechanism,
		Hostname:   leaf.Hostname,
		TakenAt:    leaf.TakenAt,
		Seq:        leaf.Seq,
		Parent:     "",
		Mode:       ModeFull,
		PID:        leaf.PID,
		PPID:       leaf.PPID,
		VPID:       leaf.VPID,
		Exe:        leaf.Exe,
		Args:       append([]string(nil), leaf.Args...),
		Brk:        leaf.Brk,
		Threads:    append([]ThreadRecord(nil), leaf.Threads...),
		FDs:        append([]FDRecord(nil), leaf.FDs...),
		SigDisps:   append([]SigDispRecord(nil), leaf.SigDisps...),
		SigPending: append([]sig.Signal(nil), leaf.SigPending...),
		SigBlocked: append([]sig.Signal(nil), leaf.SigBlocked...),
		Sockets:    append([]SocketRecord(nil), leaf.Sockets...),
		handlers:   leaf.handlers,
	}
	if leaf.Shm != nil {
		out.Shm = make(map[string][]byte, len(leaf.Shm))
		for k, v := range leaf.Shm {
			out.Shm[k] = append([]byte(nil), v...)
		}
	}
	for _, v := range leaf.VMAs {
		sec := VMASection{Start: v.Start, Length: v.Length, Kind: v.Kind, Name: v.Name, Prot: v.Prot}
		vma := as.Find(v.Start)
		var pages []mem.PageNum
		for _, pi := range as.ResidentPages() {
			if pi.VMA == vma && pi.Page.Data() != nil {
				pages = append(pages, pi.Num)
			}
		}
		for _, r := range pagesToRanges(pages) {
			data := make([]byte, r.Length)
			if err := as.ReadDirect(r.Addr, data); err != nil {
				return nil, err
			}
			sec.Extents = append(sec.Extents, Extent{Addr: r.Addr, Data: data})
		}
		out.VMAs = append(out.VMAs, sec)
	}
	return out, nil
}
