package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/simos/mem"
)

// ErrInvalidImage wraps all structural-verification failures.
var ErrInvalidImage = errors.New("checkpoint: invalid image")

// Verify checks an image's structural invariants without a kernel:
// page-aligned non-overlapping VMAs, extents inside their VMA and
// non-overlapping in address order, a valid brk, at least one thread with
// unique TIDs, and well-formed descriptor records. Every image produced
// by Capture satisfies Verify (a property test pins this); restore paths
// call it before touching kernel state.
func (img *Image) Verify() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrInvalidImage, img.ObjectName(), fmt.Sprintf(format, args...))
	}
	if img.Exe == "" {
		return bad("empty executable name")
	}
	if img.PID <= 0 {
		return bad("pid %d", img.PID)
	}
	if img.Mode == ModeIncremental && img.Parent == "" {
		return bad("incremental image without a parent")
	}
	if img.Mode == ModeFull && img.Parent != "" {
		return bad("full image claims parent %q", img.Parent)
	}

	if len(img.Threads) == 0 {
		return bad("no threads")
	}
	tids := make(map[int]bool, len(img.Threads))
	for _, t := range img.Threads {
		if tids[int(t.TID)] {
			return bad("duplicate tid %d", t.TID)
		}
		tids[int(t.TID)] = true
	}

	var prevEnd mem.Addr
	for i, v := range img.VMAs {
		if v.Start%mem.PageSize != 0 || v.Length == 0 || v.Length%mem.PageSize != 0 {
			return bad("vma %d (%s) unaligned: start %#x len %d", i, v.Name, uint64(v.Start), v.Length)
		}
		if i > 0 && v.Start < prevEnd {
			return bad("vma %d (%s) overlaps previous (starts %#x, prev ends %#x)",
				i, v.Name, uint64(v.Start), uint64(prevEnd))
		}
		prevEnd = v.Start + mem.Addr(v.Length)

		var extEnd mem.Addr
		for j, e := range v.Extents {
			if len(e.Data) == 0 {
				return bad("vma %d extent %d empty", i, j)
			}
			if e.Addr < v.Start || e.Addr+mem.Addr(len(e.Data)) > v.Start+mem.Addr(v.Length) {
				return bad("vma %d extent %d (%#x+%d) outside region", i, j, uint64(e.Addr), len(e.Data))
			}
			if j > 0 && e.Addr < extEnd {
				return bad("vma %d extent %d overlaps previous", i, j)
			}
			extEnd = e.Addr + mem.Addr(len(e.Data))
		}
	}

	seenFD := make(map[int]bool, len(img.FDs))
	for _, f := range img.FDs {
		if f.FD < 0 {
			return bad("negative fd %d", f.FD)
		}
		if seenFD[f.FD] {
			return bad("duplicate fd %d", f.FD)
		}
		seenFD[f.FD] = true
		if f.Path == "" {
			return bad("fd %d has no path", f.FD)
		}
	}
	return nil
}

// VerifyChain checks that chain is a well-formed restore chain: every
// image passes Verify, the head is full, every later image is incremental
// with a correct parent link, sequence numbers ascend, and all images
// describe the same executable and PID.
func VerifyChain(chain []*Image) error {
	if len(chain) == 0 {
		return fmt.Errorf("%w: empty chain", ErrInvalidImage)
	}
	for i, img := range chain {
		if err := img.Verify(); err != nil {
			return err
		}
		if i == 0 {
			if img.Mode != ModeFull {
				return fmt.Errorf("%w: chain head %s is %s", ErrInvalidImage, img.ObjectName(), img.Mode)
			}
			continue
		}
		prev := chain[i-1]
		if img.Mode != ModeIncremental {
			return fmt.Errorf("%w: interior image %s is %s", ErrInvalidImage, img.ObjectName(), img.Mode)
		}
		if img.Parent != prev.ObjectName() {
			return fmt.Errorf("%w: %s parent %q, want %q", ErrInvalidImage, img.ObjectName(), img.Parent, prev.ObjectName())
		}
		if img.Seq <= prev.Seq {
			return fmt.Errorf("%w: %s seq %d not after %d", ErrInvalidImage, img.ObjectName(), img.Seq, prev.Seq)
		}
		if img.Exe != prev.Exe || img.PID != prev.PID {
			return fmt.Errorf("%w: %s describes %s/pid %d, chain is %s/pid %d",
				ErrInvalidImage, img.ObjectName(), img.Exe, img.PID, prev.Exe, prev.PID)
		}
	}
	return nil
}
