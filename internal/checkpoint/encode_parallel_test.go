package checkpoint

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestEncodeParallelByteIdentical is the determinism contract: the
// sharded encoder must produce exactly the bytes the sequential encoder
// writes — trailer included — for every worker count.
func TestEncodeParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		img := sampleImage(rng)
		// Vary the shape: grow one VMA past several shard boundaries so
		// the split path runs, and strip extras on some trials.
		if trial%2 == 0 {
			big := make([]byte, 3*shardTargetBytes+1234)
			rng.Read(big)
			img.VMAs[0].Extents = append(img.VMAs[0].Extents, Extent{Addr: img.VMAs[0].Start + 0x40000, Data: big})
		}
		if trial%3 == 0 {
			img.Shm = nil
			img.Sockets = nil
		}
		want, err := img.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got, err := img.EncodeParallelBytes(workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d workers %d: %d bytes differ from sequential (%d)",
					trial, workers, len(got), len(want))
			}
		}
	}
}

func TestEncodeParallelEmptyVMAs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	img := sampleImage(rng)
	img.VMAs = nil
	want, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := img.EncodeParallelBytes(4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("empty-VMA image differs from sequential encode")
	}
}

// TestEncodeParallelDecodes closes the loop: a sharded encode must pass
// the CRC trailer check and decode to the same logical image.
func TestEncodeParallelDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	img := sampleImage(rng)
	data, err := img.EncodeParallelBytes(4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != img.Seq || back.PID != img.PID || len(back.VMAs) != len(img.VMAs) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.PayloadBytes() != img.PayloadBytes() {
		t.Fatalf("payload bytes %d != %d", back.PayloadBytes(), img.PayloadBytes())
	}
}

// TestEncodeParallelConcurrentImages encodes several images at once —
// the pattern the pipelined agents create — and is the -race check that
// the shared codec state (tables, helpers) is goroutine-safe.
func TestEncodeParallelConcurrentImages(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			img := sampleImage(rng)
			want, err := img.EncodeBytes()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 3; i++ {
				got, err := img.EncodeParallelBytes(3)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("goroutine %d iter %d: encode diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
