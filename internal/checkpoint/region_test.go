package checkpoint

import (
	"testing"

	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// TestRegionExcludeDropsScratch drives the declarative region API end
// to end: a Regions-enabled workload declares its scratch VMA
// RegionExclude at Init, every capture (full and delta) drops the
// scratch payload, and the restored process still reaches the reference
// fingerprint — scratch is recomputable by contract.
func TestRegionExcludeDropsScratch(t *testing.T) {
	const iters = 10
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.3, Seed: 13, Regions: true}
	want := referenceRun(t, prog, iters)

	d := newStepDriver(t, "src", prog, iters)
	d.stepIters(3) // dirty both arena and scratch

	img, st, err := Capture(Request{
		Acc:       &KernelAccessor{K: d.k, P: d.p},
		Mechanism: "region-test",
		Hostname:  "src",
		Seq:       1,
		Now:       d.k.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExcludedBytes == 0 {
		t.Fatal("full capture excluded nothing despite a RegionExclude scratch VMA")
	}
	for _, sec := range img.VMAs {
		if sec.Name == workload.ScratchName && len(sec.Extents) != 0 {
			t.Fatalf("scratch VMA captured %d extents, want 0", len(sec.Extents))
		}
	}

	// The exclusion applies to deltas too.
	trk := NewKernelWPTracker(d.k, d.p)
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	if _, err := trk.Collect(); err != nil {
		t.Fatal(err)
	}
	d.stepIters(2)
	delta, dst, err := Capture(Request{
		Acc:       &KernelAccessor{K: d.k, P: d.p},
		Trk:       trk,
		Mechanism: "region-test",
		Hostname:  "src",
		Seq:       2,
		Parent:    img.ObjectName(),
		Now:       d.k.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dst.ExcludedBytes == 0 {
		t.Fatal("delta capture excluded nothing; scratch is dirtied every step")
	}

	dstK := newMachine("dst", prog)
	p2, err := Restore(dstK, []*Image{img, delta}, RestoreOptions{Enqueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dstK.RunUntilExit(p2, dstK.Now().Add(10*simtime.Minute)) {
		t.Fatal("restored process did not finish")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("restored fingerprint %#x != reference %#x", got, want)
	}
}

// TestRegionProtectBlocksLivenessExclusion: the arena of a
// Regions-enabled workload is declared RegionProtect, so even a
// write-only access pattern — which the liveness tracker would
// otherwise classify dead — must keep shipping arena pages.
func TestRegionProtectBlocksLivenessExclusion(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.3, Seed: 13, Regions: true}
	d := newStepDriver(t, "src", prog, 1<<30)
	d.stepIters(1)
	trk := NewKernelLivenessTracker(d.k, d.p, DefaultDeadStreak)
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	if _, err := trk.Collect(); err != nil {
		t.Fatal(err)
	}
	arena := d.p.AS.FindByName(workload.ArenaName)
	for epoch := 0; epoch < 5; epoch++ {
		d.stepIters(1)
		if _, err := trk.Collect(); err != nil {
			t.Fatal(err)
		}
		for _, r := range trk.LastExcluded() {
			if r.Addr >= arena.Start && r.Addr < arena.End() {
				t.Fatalf("epoch %d: liveness excluded protected arena range %#x+%d",
					epoch, uint64(r.Addr), r.Length)
			}
		}
	}
}

// TestCheckpointRegionSyscall pins the kernel surface: declarations
// must be page-coherent and name mapped memory; clearing drops them.
func TestCheckpointRegionSyscall(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	p, _ := k.Spawn(prog.Name())
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}

	if err := ctx.CheckpointRegion(proc.CkptRegion{
		Start: workload.ArenaBase, Length: 2 * mem.PageSize, Policy: proc.RegionExclude,
	}); err != nil {
		t.Fatal(err)
	}
	if !p.RegionExcluded(workload.ArenaBase.Page()) {
		t.Fatal("declared page not reported excluded")
	}
	if p.RegionExcluded(workload.ArenaBase.Page() + 2) {
		t.Fatal("page past the region reported excluded")
	}

	if err := ctx.CheckpointRegion(proc.CkptRegion{Start: workload.ArenaBase, Length: 0}); err == nil {
		t.Fatal("zero-length region accepted")
	}
	if err := ctx.CheckpointRegion(proc.CkptRegion{Start: 0xdead0000, Length: mem.PageSize}); err == nil {
		t.Fatal("unmapped region accepted")
	}

	// Re-declaring the same start replaces the old policy.
	if err := ctx.CheckpointRegion(proc.CkptRegion{
		Start: workload.ArenaBase, Length: 2 * mem.PageSize, Policy: proc.RegionProtect,
	}); err != nil {
		t.Fatal(err)
	}
	if p.RegionExcluded(workload.ArenaBase.Page()) || !p.RegionProtected(workload.ArenaBase.Page()) {
		t.Fatal("re-declaration did not replace the region policy")
	}

	ctx.ClearCheckpointRegions()
	if p.RegionProtected(workload.ArenaBase.Page()) {
		t.Fatal("ClearCheckpointRegions left regions behind")
	}
}
