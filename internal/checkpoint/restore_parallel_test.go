package checkpoint

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/workload"
)

// buildTestChain captures a 3-link chain (full + 2 deltas) of a sparse
// workload onto the returned target and returns the leaf name.
func buildTestChain(t *testing.T) (storage.Target, string) {
	t.Helper()
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.15, Seed: 42}
	k := newMachine("src", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, 50)
	srv := storage.NewServer("srv", costmodel.Default2005())
	remote := storage.NewRemote("net", srv)
	env := storage.NopEnv()
	trk := NewKernelWPTracker(k, p)
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()

	var parent string
	for seq := uint64(1); seq <= 3; seq++ {
		target := p.Regs().PC + 3
		for p.Regs().PC < target && p.State != proc.StateZombie {
			k.RunFor(simtime.Millisecond)
		}
		k.Stop(p)
		img, _, err := Capture(Request{
			Acc: &KernelAccessor{K: k, P: p}, Trk: trk,
			Target: remote, Env: env,
			Mechanism: "test", Hostname: "src", Seq: seq, Parent: parent, Now: k.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
		parent = img.ObjectName()
		k.Wake(p)
	}
	return remote, parent
}

// TestParallelRestoreByteIdentical restores the same chain at worker
// widths 1, 2, 4 and 8 and demands byte-identical memory — the planner
// resolves last-writer-wins before any worker runs, so width may only
// change the simulated time, never a byte.
func TestParallelRestoreByteIdentical(t *testing.T) {
	remote, leaf := buildTestChain(t)
	chain, err := LoadChain(remote, storage.NopEnv(), leaf)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.15, Seed: 42}
	var want uint64
	for _, workers := range []int{1, 2, 4, 8} {
		dst := newMachine(fmt.Sprintf("dst%d", workers), prog)
		p, err := Restore(dst, chain, RestoreOptions{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := p.AS.Checksum()
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d restored checksum %#x != sequential %#x", workers, got, want)
		}
	}
}

// TestParallelRestoreCheaperThanSequential: the billed restore cost must
// shrink with added workers (up to the sharding overhead).
func TestParallelRestoreCheaperThanSequential(t *testing.T) {
	const n = 8 << 20
	seq := RestoreCost(n, 1)
	par := RestoreCost(n, 8)
	if par >= seq {
		t.Fatalf("RestoreCost(%d, 8) = %v, not cheaper than sequential %v", n, par, seq)
	}
}

// TestPlanReplayPrunesOverwrittenSpans: a full-page overwrite by a later
// delta must drop the earlier page write from the plan entirely.
func TestPlanReplayPrunesOverwrittenSpans(t *testing.T) {
	pageA := make([]byte, mem.PageSize)
	for i := range pageA {
		pageA[i] = 0xAA
	}
	pageB := make([]byte, mem.PageSize)
	for i := range pageB {
		pageB[i] = 0xBB
	}
	full := &Image{
		Mode: ModeFull, PID: 1, Seq: 1, Exe: "x",
		VMAs: []VMASection{{Start: 0x1000, Length: 0x2000, Kind: mem.KindHeap,
			Extents: []Extent{{Addr: 0x1000, Data: pageA}}}},
	}
	delta := &Image{
		Mode: ModeIncremental, PID: 1, Seq: 2, Exe: "x", Parent: full.ObjectName(),
		VMAs: []VMASection{{Start: 0x1000, Length: 0x2000, Kind: mem.KindHeap,
			Extents: []Extent{{Addr: 0x1000, Data: pageB}}}},
	}
	plan, err := planReplay([]*Image{full, delta})
	if err != nil {
		t.Fatal(err)
	}
	if plan.pruned != mem.PageSize {
		t.Fatalf("pruned %d bytes, want %d (the overwritten full page)", plan.pruned, mem.PageSize)
	}
	if plan.copied != mem.PageSize {
		t.Fatalf("copied %d bytes, want %d", plan.copied, mem.PageSize)
	}
	// And the surviving span is the later delta's.
	as := mem.NewAddressSpace()
	if _, err := as.Map(0x1000, 0x2000, mem.ProtRW, mem.KindHeap, ""); err != nil {
		t.Fatal(err)
	}
	if err := applyPlan(as, &plan, 2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := as.ReadDirect(0x1000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xBB {
		t.Fatalf("restored byte %#x, want 0xBB (last writer)", got[0])
	}
}

// TestPlanReplaySubPageOverlap: partially overlapping sub-page spans
// must resolve in chain order at every width.
func TestPlanReplaySubPageOverlap(t *testing.T) {
	full := &Image{
		Mode: ModeFull, PID: 1, Seq: 1, Exe: "x",
		VMAs: []VMASection{{Start: 0x1000, Length: 0x1000, Kind: mem.KindHeap,
			Extents: []Extent{{Addr: 0x1000, Data: []byte("aaaaaaaa")}}}},
	}
	delta := &Image{
		Mode: ModeIncremental, PID: 1, Seq: 2, Exe: "x", Parent: full.ObjectName(),
		VMAs: []VMASection{{Start: 0x1000, Length: 0x1000, Kind: mem.KindHeap,
			Extents: []Extent{{Addr: 0x1004, Data: []byte("bbbb")}}}},
	}
	for _, workers := range []int{1, 4} {
		plan, err := planReplay([]*Image{full, delta})
		if err != nil {
			t.Fatal(err)
		}
		as := mem.NewAddressSpace()
		if _, err := as.Map(0x1000, 0x1000, mem.ProtRW, mem.KindHeap, ""); err != nil {
			t.Fatal(err)
		}
		if err := applyPlan(as, &plan, workers); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		if err := as.ReadDirect(0x1000, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "aaaabbbb" {
			t.Fatalf("workers=%d restored %q, want aaaabbbb", workers, got)
		}
	}
}

// TestLoadChainEmptyLeaf: the empty object name must come back as a
// wrapped ErrNeedsChain error, not the storage layer's panic.
func TestLoadChainEmptyLeaf(t *testing.T) {
	srv := storage.NewServer("srv", costmodel.Default2005())
	remote := storage.NewRemote("net", srv)
	_, err := LoadChain(remote, nil, "")
	if !errors.Is(err, ErrNeedsChain) {
		t.Fatalf("LoadChain(\"\") err = %v, want ErrNeedsChain", err)
	}
}

// TestLoadChainCycleTerminates: parent links that cycle (corrupted or
// adversarial metadata) must fail cleanly instead of walking forever.
func TestLoadChainCycleTerminates(t *testing.T) {
	srv := storage.NewServer("srv", costmodel.Default2005())
	remote := storage.NewRemote("net", srv)
	a := &Image{Mode: ModeIncremental, PID: 1, Seq: 2, Exe: "x"}
	b := &Image{Mode: ModeIncremental, PID: 1, Seq: 3, Exe: "x"}
	a.Parent = b.ObjectName()
	b.Parent = a.ObjectName()
	for _, img := range []*Image{a, b} {
		data, err := img.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if err := storage.Write(remote, img.ObjectName(), data, storage.WriteOptions{Atomic: true}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := LoadChain(remote, nil, a.ObjectName())
	if !errors.Is(err, ErrNeedsChain) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("cyclic chain err = %v, want ErrNeedsChain wrapping ErrCorrupt", err)
	}
	// A self-parent is the tightest cycle.
	self := &Image{Mode: ModeIncremental, PID: 2, Seq: 1, Exe: "x"}
	self.Parent = self.ObjectName()
	data, _ := self.EncodeBytes()
	if err := storage.Write(remote, self.ObjectName(), data, storage.WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChain(remote, nil, self.ObjectName()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("self-parent err = %v, want ErrCorrupt", err)
	}
}

// FuzzLoadChainParents drives LoadChain over arbitrary parent-link
// topologies (cycles, dangling names, deep lines) and requires it to
// terminate with a verified chain or a clean error — never hang or
// panic, which is what the seen-set hardening guarantees.
func FuzzLoadChainParents(f *testing.F) {
	f.Add([]byte{0, 1, 2}, uint8(0))
	f.Add([]byte{1, 1, 1}, uint8(1)) // cycles
	f.Add([]byte{5, 4, 3, 2, 1, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, links []byte, leafIdx uint8) {
		if len(links) == 0 || len(links) > 24 {
			t.Skip()
		}
		srv := storage.NewServer("srv", costmodel.Default2005())
		remote := storage.NewRemote("net", srv)
		imgs := make([]*Image, len(links))
		for i := range links {
			imgs[i] = &Image{Mode: ModeIncremental, PID: 1, Seq: uint64(i + 1), Exe: "x"}
		}
		for i, l := range links {
			pi := int(l) % (len(links) + 1)
			if pi == len(links) {
				imgs[i].Mode = ModeFull // chain head
			} else {
				imgs[i].Parent = imgs[pi].ObjectName()
			}
		}
		for _, img := range imgs {
			data, err := img.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			if err := storage.Write(remote, img.ObjectName(), data, storage.WriteOptions{Atomic: true}); err != nil {
				t.Fatal(err)
			}
		}
		leaf := imgs[int(leafIdx)%len(imgs)].ObjectName()
		chain, err := LoadChain(remote, nil, leaf)
		if err != nil {
			return // clean failure is fine; hanging or panicking is not
		}
		if err := VerifyChain(chain); err != nil {
			t.Fatalf("LoadChain returned an unverified chain: %v", err)
		}
	})
}

// TestRestoreFDErrorsAreWrapped: a seek failure on a restored descriptor
// must name the fd, path and offset.
func TestRestoreFDErrorsAreWrapped(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	img := &Image{
		Mode: ModeFull, PID: 1, Seq: 1, Exe: prog.Name(),
		Threads: []ThreadRecord{{TID: 1}},
		FDs:     []FDRecord{{FD: 3, Path: "/missing", Offset: 7}},
	}
	dst := newMachine("dst", prog)
	_, err := Restore(dst, []*Image{img}, RestoreOptions{})
	if err == nil || !strings.Contains(err.Error(), "restore fd 3") {
		t.Fatalf("err = %v, want wrapped fd context", err)
	}
}
