package checkpoint

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// Stats summarizes one capture.
type Stats struct {
	Mode         Mode
	PayloadBytes int // memory contents captured
	EncodedBytes int // bytes written to storage
	Extents      int
	VMAs         int
	Workers      int // capture worker pool size actually used (1 = sequential)
	// ExcludedBytes counts payload dropped because it fell inside a
	// declared RegionExclude checkpoint region (scratch state the
	// application promised not to need across a restart).
	ExcludedBytes int
	Duration      simtime.Duration
	Object        string
}

// Request drives one capture.
type Request struct {
	// Acc extracts the state; Trk selects what memory to include
	// (nil = everything resident, a full checkpoint).
	Acc Accessor
	Trk Tracker

	// Target receives the encoded image; Env accounts the I/O. A nil
	// Target keeps the image in memory only (probing, migration pipes).
	Target storage.Target
	Env    *storage.Env

	Mechanism string
	Hostname  string
	Seq       uint64
	// Parent is the object name of the previous image for incremental
	// captures ("" for full).
	Parent string
	// Epoch namespaces the image's object name by incarnation (see
	// Image.Epoch). Zero keeps legacy single-incarnation names.
	Epoch uint64
	// Now is the capture timestamp.
	Now simtime.Time
	// Parallelism shards the payload read and the image encode across a
	// worker pool of that size. 0 or 1 keeps the sequential path; results
	// are byte-identical either way, only the simulated capture time
	// changes. Values above 1 take effect only when the accessor supports
	// concurrent reads (ParallelReader) — user-level accessors read
	// through syscalls and always capture sequentially. Callers that want
	// host-sized capture pass DefaultParallelism() explicitly; defaulting
	// to it here would make simulated results machine-dependent.
	Parallelism int
	// AsPID, when nonzero, overrides the PID recorded in the image (used
	// by fork-consistency captures: the frozen child is captured, but the
	// image belongs to the parent).
	AsPID proc.PID
	// KernelExtras, when non-nil, is invoked to record virtualized kernel
	// state (sockets, shm) into the image — ZAP-style pods.
	KernelExtras func(img *Image)
}

// Capture extracts the process state selected by the request and, if a
// target is given, writes the encoded image to stable storage. The
// returned image always carries the live handler map for same-simulation
// restores.
func Capture(req Request) (*Image, Stats, error) {
	acc := req.Acc
	p := acc.Process()
	env := req.Env
	if env == nil {
		env = storage.NopEnv()
	}

	mode := ModeFull
	parent := req.Parent
	if req.Trk != nil && req.Parent != "" {
		mode = ModeIncremental
	} else {
		// A full image stands alone: without a tracker every capture is
		// complete, so no parent link is recorded even when the mechanism
		// has checkpointed this process before.
		parent = ""
	}

	img := &Image{
		Mechanism: req.Mechanism,
		Hostname:  req.Hostname,
		TakenAt:   req.Now,
		Seq:       req.Seq,
		Parent:    parent,
		Mode:      mode,
		Epoch:     req.Epoch,
		PID:       p.PID,
		PPID:      p.PPID,
		VPID:      p.VPID,
		Exe:       p.Exe,
		Args:      append([]string(nil), p.Args...),
		Brk:       acc.Brk(),
		Threads:   acc.Threads(),
	}

	// Memory: section per VMA, extents from the tracker.
	var ranges []Range
	if req.Trk != nil {
		rs, err := req.Trk.Collect()
		if err != nil {
			return nil, Stats{}, fmt.Errorf("checkpoint: collect: %w", err)
		}
		ranges = rs
	}
	workers := req.Parallelism
	pr, canPar := acc.(ParallelReader)
	if workers <= 1 || !canPar {
		workers = 1
	}

	vmas := acc.VMAs()
	excludedBytes := 0
	for _, v := range vmas {
		sec := VMASection{Start: v.Start, Length: v.Length, Kind: v.Kind, Name: v.Name, Prot: v.Prot}
		var vranges []Range
		if req.Trk == nil {
			// Full capture: all resident pages of this VMA.
			for _, r := range residentRangesOf(p, v) {
				vranges = append(vranges, r)
			}
		} else {
			for _, r := range ranges {
				if r.Addr >= v.Start && r.Addr < v.End() {
					vranges = append(vranges, r)
				}
			}
		}
		var dropped int
		vranges, dropped = subtractExcludedRegions(p, vranges)
		excludedBytes += dropped
		for _, r := range vranges {
			if r.Length == 0 {
				// A zero-length tracker range would become an empty
				// extent, which Verify rejects — trackers shouldn't
				// produce them, but a capture must not turn one into an
				// unpublishable image.
				continue
			}
			if workers > 1 {
				// Sharded capture: allocate the extent now, fill it from a
				// worker after the section walk.
				sec.Extents = append(sec.Extents, Extent{Addr: r.Addr, Data: make([]byte, r.Length)})
				continue
			}
			data := make([]byte, r.Length)
			if err := acc.ReadRange(r.Addr, data); err != nil {
				return nil, Stats{}, fmt.Errorf("checkpoint: read %#x+%d: %w", uint64(r.Addr), r.Length, err)
			}
			sec.Extents = append(sec.Extents, Extent{Addr: r.Addr, Data: data})
		}
		img.VMAs = append(img.VMAs, sec)
	}
	if workers > 1 {
		if err := fillExtentsParallel(img, pr, workers); err != nil {
			return nil, Stats{}, err
		}
	}

	if req.AsPID != 0 {
		img.PID = req.AsPID
	}
	img.FDs = acc.FDs()
	disps, pending, blocked, handlers := acc.SignalState()
	img.SigDisps = disps
	img.SigPending = pending
	img.SigBlocked = blocked
	img.handlers = handlers

	if req.KernelExtras != nil && acc.KernelState() {
		req.KernelExtras(img)
	}

	st := Stats{
		Mode:          mode,
		PayloadBytes:  img.PayloadBytes(),
		Extents:       img.NumExtents(),
		VMAs:          len(img.VMAs),
		Workers:       workers,
		ExcludedBytes: excludedBytes,
		Object:        img.ObjectName(),
	}

	if req.Target != nil {
		encoded, err := img.EncodeParallelBytes(workers)
		if err != nil {
			return nil, Stats{}, err
		}
		// Encoding cost ≈ one memcpy of the image, divided across the
		// worker pool plus its fork/join overhead when sharded.
		env.Bill.Charge(encodeCost(len(encoded), workers), "encode")
		// Atomic commit by default: stage, sync, publish — a crash
		// mid-write can only tear the staging object, never a committed
		// image. A delta also names its parent so storage refuses to
		// publish onto an ancestry the target does not hold; Unsafe-wrapped
		// targets take the legacy in-place path (the torn-image contrast
		// for experiments). All three protocols live behind storage.Write.
		opts := storage.WriteOptions{Atomic: true, Env: env}
		if mode == ModeIncremental {
			opts.Parent = img.Parent
		}
		if err := storage.Write(req.Target, img.ObjectName(), encoded, opts); err != nil {
			return nil, Stats{}, err
		}
		st.EncodedBytes = len(encoded)
	}
	return img, st, nil
}

// EncodeCost estimates the simulated time to encode an n-byte image with
// a workers-wide pool — the charge Capture bills internally, exported for
// orchestration layers that encode images themselves (the pipelined
// cluster agents capture with a nil Target and encode on the node).
func EncodeCost(n, workers int) simtime.Duration { return encodeCost(n, workers) }

// encodeCost estimates encode time without forcing every caller to
// thread a cost model: ~1.2 GB/s, the Default2005 memcpy rate, divided
// across workers (plus fork/join overhead) when the encode is sharded.
func encodeCost(n, workers int) simtime.Duration {
	seq := simtime.Duration(float64(n) / 1.2e9 * float64(simtime.Second))
	if workers <= 1 {
		return seq
	}
	return seq/simtime.Duration(workers) + simtime.Duration(workers)*parallelWorkerOverhead
}

// readChunkBytes is the target payload of one parallel read job. Large
// extents are split at this granularity so a handful of big contiguous
// VMAs (the common Dense-workload shape) still spread across the pool.
const readChunkBytes = 256 << 10

// fillExtentsParallel reads every preallocated extent through a shared
// concurrent-safe reader, splitting big extents into chunk jobs so load
// balances across the pool. The cost is billed once, up-front, from the
// capturing goroutine (the simulated clock cannot be advanced from
// workers); the goroutines then only move bytes.
func fillExtentsParallel(img *Image, pr ParallelReader, workers int) error {
	type job struct {
		addr mem.Addr
		buf  []byte
	}
	var jobs []job
	total := 0
	for i := range img.VMAs {
		for j := range img.VMAs[i].Extents {
			e := &img.VMAs[i].Extents[j]
			total += len(e.Data)
			for off := 0; off < len(e.Data); off += readChunkBytes {
				end := off + readChunkBytes
				if end > len(e.Data) {
					end = len(e.Data)
				}
				jobs = append(jobs, job{addr: e.Addr + mem.Addr(off), buf: e.Data[off:end]})
			}
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	read := pr.PrepareParallelRead(total, workers)
	var next int64 = -1
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				if err := read(j.addr, j.buf); err != nil {
					errs[w] = fmt.Errorf("checkpoint: read %#x+%d: %w", uint64(j.addr), len(j.buf), err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DefaultParallelism returns the host's available parallelism — the
// right Parallelism for CLI tools and benches that want capture to run
// as wide as the machine. Library code must opt in explicitly so
// simulated results stay host-independent by default.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// subtractExcludedRegions removes the process's declared RegionExclude
// checkpoint regions from a capture range set and reports how many
// bytes were dropped. The region API is CRAFT-style: the application
// declares up front which address ranges are scratch (recomputable
// after restart), and every capture — full or delta — honours the
// declaration. Protect regions are the trackers' concern; here only
// exclusions apply.
func subtractExcludedRegions(p *proc.Process, rs []Range) ([]Range, int) {
	var regs []proc.CkptRegion
	for _, cr := range p.CkptRegions {
		if cr.Policy == proc.RegionExclude {
			regs = append(regs, cr)
		}
	}
	if len(regs) == 0 || len(rs) == 0 {
		return rs, 0
	}
	dropped := 0
	out := make([]Range, 0, len(rs))
	for _, r := range rs {
		segs := []Range{r}
		for _, cr := range regs {
			var next []Range
			for _, s := range segs {
				lo, hi := s.Addr, s.Addr+mem.Addr(s.Length)
				clo, chi := cr.Start, cr.End()
				if chi <= lo || clo >= hi {
					next = append(next, s)
					continue
				}
				if clo > lo {
					next = append(next, Range{Addr: lo, Length: int(clo - lo)})
				}
				if chi < hi {
					next = append(next, Range{Addr: chi, Length: int(hi - chi)})
				}
			}
			segs = next
		}
		kept := 0
		for _, s := range segs {
			kept += s.Length
			out = append(out, s)
		}
		dropped += r.Length - kept
	}
	return out, dropped
}

// residentRangesOf lists resident page ranges of a single VMA (text
// included for full captures: restart must reproduce the whole image).
func residentRangesOf(p *proc.Process, v *mem.VMA) []Range {
	var pages []mem.PageNum
	for _, pi := range p.AS.ResidentPages() {
		if pi.VMA == v {
			pages = append(pages, pi.Num)
		}
	}
	return pagesToRanges(pages)
}
