package checkpoint

import (
	"fmt"

	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// Stats summarizes one capture.
type Stats struct {
	Mode         Mode
	PayloadBytes int // memory contents captured
	EncodedBytes int // bytes written to storage
	Extents      int
	VMAs         int
	Duration     simtime.Duration
	Object       string
}

// Request drives one capture.
type Request struct {
	// Acc extracts the state; Trk selects what memory to include
	// (nil = everything resident, a full checkpoint).
	Acc Accessor
	Trk Tracker

	// Target receives the encoded image; Env accounts the I/O. A nil
	// Target keeps the image in memory only (probing, migration pipes).
	Target storage.Target
	Env    *storage.Env

	Mechanism string
	Hostname  string
	Seq       uint64
	// Parent is the object name of the previous image for incremental
	// captures ("" for full).
	Parent string
	// Epoch namespaces the image's object name by incarnation (see
	// Image.Epoch). Zero keeps legacy single-incarnation names.
	Epoch uint64
	// Now is the capture timestamp.
	Now simtime.Time
	// AsPID, when nonzero, overrides the PID recorded in the image (used
	// by fork-consistency captures: the frozen child is captured, but the
	// image belongs to the parent).
	AsPID proc.PID
	// KernelExtras, when non-nil, is invoked to record virtualized kernel
	// state (sockets, shm) into the image — ZAP-style pods.
	KernelExtras func(img *Image)
}

// Capture extracts the process state selected by the request and, if a
// target is given, writes the encoded image to stable storage. The
// returned image always carries the live handler map for same-simulation
// restores.
func Capture(req Request) (*Image, Stats, error) {
	acc := req.Acc
	p := acc.Process()
	env := req.Env
	if env == nil {
		env = storage.NopEnv()
	}

	mode := ModeFull
	parent := req.Parent
	if req.Trk != nil && req.Parent != "" {
		mode = ModeIncremental
	} else {
		// A full image stands alone: without a tracker every capture is
		// complete, so no parent link is recorded even when the mechanism
		// has checkpointed this process before.
		parent = ""
	}

	img := &Image{
		Mechanism: req.Mechanism,
		Hostname:  req.Hostname,
		TakenAt:   req.Now,
		Seq:       req.Seq,
		Parent:    parent,
		Mode:      mode,
		Epoch:     req.Epoch,
		PID:       p.PID,
		PPID:      p.PPID,
		VPID:      p.VPID,
		Exe:       p.Exe,
		Args:      append([]string(nil), p.Args...),
		Brk:       acc.Brk(),
		Threads:   acc.Threads(),
	}

	// Memory: section per VMA, extents from the tracker.
	var ranges []Range
	if req.Trk != nil {
		rs, err := req.Trk.Collect()
		if err != nil {
			return nil, Stats{}, fmt.Errorf("checkpoint: collect: %w", err)
		}
		ranges = rs
	}
	vmas := acc.VMAs()
	for _, v := range vmas {
		sec := VMASection{Start: v.Start, Length: v.Length, Kind: v.Kind, Name: v.Name, Prot: v.Prot}
		var vranges []Range
		if req.Trk == nil {
			// Full capture: all resident pages of this VMA.
			for _, r := range residentRangesOf(p, v) {
				vranges = append(vranges, r)
			}
		} else {
			for _, r := range ranges {
				if r.Addr >= v.Start && r.Addr < v.End() {
					vranges = append(vranges, r)
				}
			}
		}
		for _, r := range vranges {
			data := make([]byte, r.Length)
			if err := acc.ReadRange(r.Addr, data); err != nil {
				return nil, Stats{}, fmt.Errorf("checkpoint: read %#x+%d: %w", uint64(r.Addr), r.Length, err)
			}
			sec.Extents = append(sec.Extents, Extent{Addr: r.Addr, Data: data})
		}
		img.VMAs = append(img.VMAs, sec)
	}

	if req.AsPID != 0 {
		img.PID = req.AsPID
	}
	img.FDs = acc.FDs()
	disps, pending, blocked, handlers := acc.SignalState()
	img.SigDisps = disps
	img.SigPending = pending
	img.SigBlocked = blocked
	img.handlers = handlers

	if req.KernelExtras != nil && acc.KernelState() {
		req.KernelExtras(img)
	}

	st := Stats{
		Mode:         mode,
		PayloadBytes: img.PayloadBytes(),
		Extents:      img.NumExtents(),
		VMAs:         len(img.VMAs),
		Object:       img.ObjectName(),
	}

	if req.Target != nil {
		encoded, err := img.EncodeBytes()
		if err != nil {
			return nil, Stats{}, err
		}
		// Encoding cost ≈ one memcpy of the image.
		env.Bill.Charge(reqCMCopy(req, len(encoded)), "encode")
		// Atomic commit by default: stage, sync, publish — a crash
		// mid-write can only tear the staging object, never a committed
		// image. storage.Unsafe-wrapped targets take the legacy in-place
		// path (the torn-image contrast for experiments).
		switch {
		case storage.IsUnsafe(req.Target):
			err = storage.Put(req.Target, img.ObjectName(), encoded, env)
		case mode == ModeIncremental:
			// A delta is only durable if its whole ancestry is: refuse to
			// publish onto a parent the target does not hold.
			err = storage.PutChained(req.Target, img.ObjectName(), img.Parent, encoded, env)
		default:
			err = storage.PutAtomic(req.Target, img.ObjectName(), encoded, env)
		}
		if err != nil {
			return nil, Stats{}, err
		}
		st.EncodedBytes = len(encoded)
	}
	return img, st, nil
}

// reqCMCopy estimates encode cost without forcing every caller to thread a
// cost model: ~1.2 GB/s, the Default2005 memcpy rate.
func reqCMCopy(_ Request, n int) simtime.Duration {
	return simtime.Duration(float64(n) / 1.2e9 * float64(simtime.Second))
}

// residentRangesOf lists resident page ranges of a single VMA (text
// included for full captures: restart must reproduce the whole image).
func residentRangesOf(p *proc.Process, v *mem.VMA) []Range {
	var pages []mem.PageNum
	for _, pi := range p.AS.ResidentPages() {
		if pi.VMA == v {
			pages = append(pages, pi.Num)
		}
	}
	return pagesToRanges(pages)
}
