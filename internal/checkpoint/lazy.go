// Lazy page-granular restore: restart before read. Eager Restore pays
// for reading and replaying the whole chain before the first restored
// instruction runs; LazyRestore turns the replay planner's per-page jobs
// into a demand-fault service instead. Only the leaf image — registers,
// layout, and the tracker's last dirty set, the hot working set — is
// needed up front; control returns as soon as those pages are applied.
// Every other mapped page is registered as pending with the address
// space's demand-fill hook (internal/simos/mem), and materializes on
// first access: the first fill reads the ancestor images in one batched,
// fence-aware pass through storage.BatchReader, folds them with
// planReplay (the exact plan an eager restore would execute), and serves
// pages out of that plan from then on. A background prefetcher drains
// the remaining plan oldest-page-first so the fault rate decays even if
// the workload never touches cold pages.
//
// Failure semantics mirror eager restore run in reverse: a fence check
// runs before every fill, so a lazy restore superseded mid-recovery
// (its node died and a new incarnation was admitted elsewhere) aborts —
// every subsequent access of the stale process fails rather than
// serving state, the demand-fault service's form of self-fencing. The
// final memory image after a full drain is byte-identical to an eager
// restore of the same chain at every worker count, because both paths
// execute the same last-writer-wins plan.
package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// LazyOptions tune LazyRestore. The embedded RestoreOptions mean what
// they mean for eager Restore; the extra fields describe where the rest
// of the chain lives and when serving it must stop.
type LazyOptions struct {
	RestoreOptions
	// Source serves the deferred ancestor reads (demand faults and the
	// prefetcher). Required when Ancestors is non-empty. Targets that
	// implement storage.BatchReader serve the whole ancestor list in one
	// scheduled pass, like the manifest fast path.
	Source storage.Target
	// Ancestors are the object names of the chain older than the leaf,
	// oldest first (the head must be a full image). Empty means the leaf
	// is itself full and the plan needs no further reads.
	Ancestors []string
	// ReadEnv is billed for the deferred ancestor reads (nil = no
	// billing). The wait time is also accumulated in LazyStats.PlanWait
	// so orchestration layers can account the full restore latency.
	ReadEnv *storage.Env
	// Fenced, when non-nil, is consulted before every fill: returning
	// true aborts the session — a superseded incarnation must not keep
	// serving checkpoint state (self-fencing, the lazy analogue of a
	// stale publish being rejected).
	Fenced func() bool
}

// ErrLazyAborted is the error served to every access of a lazy-restored
// process whose session was aborted (fence advanced, or Abort called).
var ErrLazyAborted = errors.New("checkpoint: lazy restore aborted")

// LazyStats is a snapshot of a session's accounting.
type LazyStats struct {
	// HotPages/HotBytes is what was applied eagerly before control
	// returned (the time-to-first-instruction cost).
	HotPages int
	HotBytes int
	// PlanLoaded reports whether the deferred plan has been read.
	PlanLoaded bool
	// PlanBytes is the full chain's post-pruning replay payload — the
	// same count an eager restore of the chain would copy.
	PlanBytes int
	// PlanWait is the simulated wait spent reading the ancestors.
	PlanWait simtime.Duration
	// FaultsServed counts pages materialized by a demand fault,
	// Prefetched by the background drain; NoopFills are pending pages
	// the plan holds no bytes for (demand-zero either way).
	FaultsServed int
	Prefetched   int
	NoopFills    int
	// Pending is how many pages still await their first fill.
	Pending int
}

// LazySession is the demand-fault service behind one lazy-restored
// process. All methods are safe for concurrent use: the session mutex
// serializes plan loading and page materialization, so a background
// prefetcher goroutine can run against live demand faults.
type LazySession struct {
	mu      sync.Mutex
	as      *mem.AddressSpace
	leaf    *Image
	src     storage.Target
	objs    []string
	readEnv *storage.Env
	fenced  func() bool
	workers int
	metrics *traceMetrics

	planned bool
	jobs    map[mem.PageNum][]pageSpan
	hot     map[mem.PageNum]bool
	order   []mem.PageNum // pending pages ascending; prefetch cursor below
	next    int
	aborted error

	stats LazyStats
}

// traceMetrics narrows *trace.Metrics to what the session records,
// keeping the hot fill path free of nil checks.
type traceMetrics struct {
	inc func(name string, delta int64)
}

// LazyRestore rebuilds a process on k from the chain's leaf image alone
// and returns as soon as the hot working set — the pages the leaf's
// extents fully cover, which for a tracker-driven delta is exactly the
// last interval's dirty set — is applied. Remaining pages materialize on
// first access through the returned session; see the package comment
// for the full protocol. A full-image leaf with no ancestors works too
// (everything the image holds is hot, so only demand-zero pages stay
// pending).
func LazyRestore(k *kernel.Kernel, leaf *Image, opt LazyOptions) (*proc.Process, *LazySession, error) {
	if leaf == nil {
		return nil, nil, errors.New("checkpoint: lazy restore: nil leaf")
	}
	if leaf.Mode != ModeFull && len(opt.Ancestors) == 0 {
		return nil, nil, ErrNeedsChain
	}
	if len(opt.Ancestors) > 0 && opt.Source == nil {
		return nil, nil, errors.New("checkpoint: lazy restore: ancestors without a Source")
	}

	p, cleanup, err := restoreSkeleton(k, leaf, opt.RestoreOptions)
	if err != nil {
		return nil, nil, err
	}

	// The leaf resolved against its own layout: the hot plan. Pages whose
	// spans fully cover [0,PageSize) carry their final contents already —
	// the leaf is the chain's last writer, so the full chain's plan for
	// those pages prunes to these exact spans. Partially covered pages
	// stay pending (ancestor bytes share the page), applied later from
	// the full plan.
	leafPlan, err := planReplay([]*Image{leaf})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	workers := opt.Parallelism
	if workers <= 1 {
		workers = 1
	}
	hotPlan := replayPlan{}
	hot := make(map[mem.PageNum]bool, len(leafPlan.jobs))
	for _, j := range leafPlan.jobs {
		if !spansCoverPage(j.spans) {
			continue
		}
		hot[j.page] = true
		for _, sp := range j.spans {
			hotPlan.copied += len(sp.data)
		}
		hotPlan.jobs = append(hotPlan.jobs, j)
	}
	w := workers
	if w > len(hotPlan.jobs) && len(hotPlan.jobs) > 0 {
		w = len(hotPlan.jobs)
	}
	var bill costmodel.Biller = k
	if opt.Env != nil && opt.Env.Bill != nil {
		bill = opt.Env.Bill
	}
	bill.Charge(RestoreCost(hotPlan.copied, w), "restore-hot")
	if err := applyPlan(p.AS, &hotPlan, w); err != nil {
		cleanup()
		return nil, nil, err
	}

	// Everything else mapped is pending: pages the chain wrote fill from
	// the plan on first touch, pages it never wrote fill as no-ops (they
	// are demand-zero under eager restore too).
	var pending []mem.PageNum
	for _, v := range leaf.VMAs {
		for pn := v.Start.Page(); pn < (v.Start + mem.Addr(v.Length)).Page(); pn++ {
			if !hot[pn] {
				pending = append(pending, pn)
			}
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })

	s := &LazySession{
		as:      p.AS,
		leaf:    leaf,
		src:     opt.Source,
		objs:    append([]string(nil), opt.Ancestors...),
		readEnv: opt.ReadEnv,
		fenced:  opt.Fenced,
		workers: workers,
		hot:     hot,
		order:   pending,
	}
	s.stats.HotPages = len(hotPlan.jobs)
	s.stats.HotBytes = hotPlan.copied
	if opt.Metrics != nil {
		c := opt.Metrics.Counters
		s.metrics = &traceMetrics{inc: c.Inc}
		c.Inc("restore.lazy_hot_pages", int64(len(hotPlan.jobs)))
		c.Inc("restore.lazy_pending_pages", int64(len(pending)))
		c.Inc("restore.bytes_copied", int64(hotPlan.copied))
	}
	p.AS.SetDemandFill(pending, func(pn mem.PageNum) error { return s.serve(pn, false) })

	if err := finishRestore(k, p, leaf, opt.RestoreOptions); err != nil {
		p.AS.ClearDemandFill()
		cleanup()
		return nil, nil, err
	}
	return p, s, nil
}

// spansCoverPage reports whether spans cover every byte of the page.
func spansCoverPage(spans []pageSpan) bool {
	type iv struct{ lo, hi int }
	ivs := make([]iv, 0, len(spans))
	for _, sp := range spans {
		ivs = append(ivs, iv{sp.off, sp.off + len(sp.data)})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	covered := 0
	for _, v := range ivs {
		if v.lo > covered {
			return false
		}
		if v.hi > covered {
			covered = v.hi
		}
	}
	return covered >= mem.PageSize
}

// serve materializes one claimed page: loads the deferred plan on the
// first call, then applies the page's job (or nothing, for pages the
// chain never wrote). Invoked by the address space's demand-fill hook
// (prefetch=false) and by Prefetch/DrainAll (prefetch=true), in both
// cases with the page already removed from the pending set.
func (s *LazySession) serve(pn mem.PageNum, prefetch bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted != nil {
		return s.aborted
	}
	if s.fenced != nil && s.fenced() {
		s.aborted = fmt.Errorf("%w: fence advanced past this incarnation", ErrLazyAborted)
		return s.aborted
	}
	if err := s.ensurePlanLocked(); err != nil {
		return err
	}
	spans, ok := s.jobs[pn]
	if !ok {
		// Never written across the chain: demand-zero, exactly as eager
		// restore leaves it.
		s.stats.NoopFills++
		s.countServe(prefetch)
		return nil
	}
	buf, err := s.as.PageBuffer(pn)
	if err != nil {
		var f *mem.Fault
		if errors.As(err, &f) && f.VMA == nil {
			// Unmapped since the restore (heap shrink, unmap): the page's
			// contents are moot. Matches eager restore followed by the
			// same unmap.
			delete(s.jobs, pn)
			s.countServe(prefetch)
			return nil
		}
		return err
	}
	applySpans(buf, spans)
	delete(s.jobs, pn)
	s.countServe(prefetch)
	return nil
}

func (s *LazySession) countServe(prefetch bool) {
	if prefetch {
		s.stats.Prefetched++
		if s.metrics != nil {
			s.metrics.inc("restore.prefetched", 1)
		}
		return
	}
	s.stats.FaultsServed++
	if s.metrics != nil {
		s.metrics.inc("restore.fault_served", 1)
	}
}

// ensurePlanLocked loads and resolves the full chain on the first fill:
// one batched ancestor read, chain verification exactly as eager restore
// performs it, then planReplay — minus the hot pages already applied
// (pruning guarantees their plan entries equal what the leaf served).
func (s *LazySession) ensurePlanLocked() error {
	if s.planned {
		return nil
	}
	chain := []*Image{s.leaf}
	if len(s.objs) > 0 {
		env := &storage.Env{
			Bill: costmodel.Discard{},
			Wait: func(d simtime.Duration, what string) { s.stats.PlanWait += d },
		}
		if s.readEnv != nil {
			if s.readEnv.Bill != nil {
				env.Bill = s.readEnv.Bill
			}
			inner := s.readEnv.Wait
			if inner != nil {
				env.Wait = func(d simtime.Duration, what string) {
					s.stats.PlanWait += d
					inner(d, what)
				}
			}
		}
		var blobs [][]byte
		if br, ok := s.src.(storage.BatchReader); ok {
			b, err := br.ReadBatch(s.objs, env)
			if err != nil {
				return fmt.Errorf("checkpoint: lazy plan load: %w", err)
			}
			blobs = b
		} else {
			for _, name := range s.objs {
				data, err := s.src.ReadObject(name, env)
				if err != nil {
					return fmt.Errorf("checkpoint: lazy plan load %s: %w", name, err)
				}
				blobs = append(blobs, data)
			}
		}
		chain = make([]*Image, 0, len(blobs)+1)
		for i, data := range blobs {
			img, err := Decode(data)
			if err != nil {
				return fmt.Errorf("checkpoint: lazy plan decode %s: %w", s.objs[i], err)
			}
			chain = append(chain, img)
		}
		chain = append(chain, s.leaf)
	}
	if err := VerifyChain(chain); err != nil {
		return err
	}
	plan, err := planReplay(chain)
	if err != nil {
		return err
	}
	s.jobs = make(map[mem.PageNum][]pageSpan, len(plan.jobs))
	for _, j := range plan.jobs {
		if s.hot[j.page] {
			continue
		}
		s.jobs[j.page] = j.spans
	}
	s.planned = true
	s.stats.PlanLoaded = true
	s.stats.PlanBytes = plan.copied
	if s.metrics != nil {
		s.metrics.inc("restore.lazy_plan_loads", 1)
	}
	return nil
}

// Prefetch claims and materializes up to max pending pages in ascending
// page order (the plan's oldest-first drain). Returns how many pages it
// served; pages a demand fault claimed first are skipped without
// counting. Safe to call from a goroutine concurrent with demand faults.
func (s *LazySession) Prefetch(max int) (int, error) {
	served := 0
	for served < max {
		s.mu.Lock()
		if s.aborted != nil {
			err := s.aborted
			s.mu.Unlock()
			return served, err
		}
		var pn mem.PageNum
		found := false
		for s.next < len(s.order) {
			cand := s.order[s.next]
			s.next++
			if s.as.TakePendingFill(cand) {
				pn, found = cand, true
				break
			}
		}
		s.mu.Unlock()
		if !found {
			return served, nil
		}
		if err := s.serve(pn, true); err != nil {
			// Give the claimed page back and rescan from the top next
			// time — a transient plan-load failure must not leave the
			// page silently demand-zero or strand it past the cursor.
			s.as.ReturnPendingFill(pn)
			s.mu.Lock()
			s.next = 0
			s.mu.Unlock()
			return served, err
		}
		served++
	}
	return served, nil
}

// DrainAll materializes every remaining pending page. After a nil
// return the process's memory is byte-identical to an eager restore of
// the same chain.
func (s *LazySession) DrainAll() error {
	for {
		n, err := s.Prefetch(64)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
	}
}

// Pending returns how many pages still await their first fill.
func (s *LazySession) Pending() int { return s.as.PendingFillCount() }

// Done reports whether every page has been served (the session can be
// closed without losing state).
func (s *LazySession) Done() bool { return s.as.PendingFillCount() == 0 }

// Abort poisons the session: every subsequent access of a still-pending
// page fails with the given error (ErrLazyAborted when nil). Used when
// the restored incarnation is superseded mid-recovery.
func (s *LazySession) Abort(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted != nil {
		return
	}
	if err == nil {
		err = ErrLazyAborted
	}
	s.aborted = err
}

// Close disarms the demand-fill hook. Call only when Done (or after
// Abort): still-pending pages would silently read as zero afterwards.
func (s *LazySession) Close() { s.as.ClearDemandFill() }

// Stats returns a snapshot of the session's accounting.
func (s *LazySession) Stats() LazyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Pending = s.as.PendingFillCount()
	return st
}
