package checkpoint

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
)

// Range is a changed span of the tracked address space.
type Range struct {
	Addr   mem.Addr
	Length int
}

// TrackerStats accumulates the overhead a tracker imposed.
type TrackerStats struct {
	// Faults is the number of protection faults taken for tracking.
	Faults uint64
	// ProtectedPages is the cumulative number of PTEs write-protected.
	ProtectedPages uint64
	// HashedBytes is the cumulative bytes checksummed (hash trackers).
	HashedBytes uint64
	// RuntimeOverhead is tracking cost charged outside checkpoint time
	// (per-write faults), the overhead incremental schemes impose on the
	// application between checkpoints.
	RuntimeOverhead simtime.Duration
	// ExcludedBytes is the cumulative payload withheld from deltas by
	// liveness exclusion and declared exclude regions.
	ExcludedBytes uint64
}

// Tracker identifies the memory modified since the last collection — the
// heart of incremental checkpointing (§1, §3, §4).
type Tracker interface {
	// Name labels the tracker for experiment output.
	Name() string
	// Granularity is the tracking unit in bytes.
	Granularity() int
	// Arm starts the first epoch. Collect implicitly re-arms.
	Arm() error
	// Collect returns the ranges modified since Arm/the last Collect.
	Collect() ([]Range, error)
	// Stats returns cumulative overhead counters.
	Stats() TrackerStats
	// Close detaches the tracker from the process.
	Close()
}

// pagesToRanges converts a sorted page list to coalesced ranges.
func pagesToRanges(pages []mem.PageNum) []Range {
	if len(pages) == 0 {
		return nil
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var out []Range
	start := pages[0]
	prev := pages[0]
	for _, pn := range pages[1:] {
		if pn == prev {
			continue
		}
		if pn == prev+1 {
			prev = pn
			continue
		}
		out = append(out, Range{Addr: start.Base(), Length: int(prev-start+1) * mem.PageSize})
		start, prev = pn, pn
	}
	out = append(out, Range{Addr: start.Base(), Length: int(prev-start+1) * mem.PageSize})
	return out
}

// trackableVMAs returns the regions worth tracking (writable data).
func trackableVMAs(as *mem.AddressSpace) []*mem.VMA {
	var out []*mem.VMA
	for _, v := range as.VMAs() {
		if v.Kind == mem.KindText {
			continue // read-only code never dirties
		}
		out = append(out, v)
	}
	return out
}

// residentRanges returns every resident page of the trackable regions.
func residentRanges(as *mem.AddressSpace) []Range {
	var pages []mem.PageNum
	for _, v := range trackableVMAs(as) {
		for pn := v.Start.Page(); pn < v.End().Page(); pn++ {
			pages = append(pages, pn)
		}
	}
	// Resident filtering: include only pages with materialized content.
	var resident []mem.PageNum
	set := make(map[mem.PageNum]bool)
	for _, pi := range as.ResidentPages() {
		if pi.VMA.Kind != mem.KindText {
			set[pi.Num] = true
		}
	}
	for _, pn := range pages {
		if set[pn] {
			resident = append(resident, pn)
		}
	}
	return pagesToRanges(resident)
}

// FullTracker reports every resident page every time: the no-optimization
// baseline (PsncR/C "does not perform any data optimization").
type FullTracker struct {
	AS *mem.AddressSpace
}

// Name implements Tracker.
func (t *FullTracker) Name() string { return "full" }

// Granularity implements Tracker.
func (t *FullTracker) Granularity() int { return mem.PageSize }

// Arm implements Tracker.
func (t *FullTracker) Arm() error { return nil }

// Collect implements Tracker.
func (t *FullTracker) Collect() ([]Range, error) { return residentRanges(t.AS), nil }

// Stats implements Tracker.
func (t *FullTracker) Stats() TrackerStats { return TrackerStats{} }

// Close implements Tracker.
func (t *FullTracker) Close() {}

// KernelWPTracker is the system-level incremental tracker of §4: it
// write-protects the process's pages directly in the page tables (no
// syscall) and marks pages dirty in the kernel page-fault handler, then
// reopens them for writing. Per-write overhead is one kernel fault on the
// first touch of each page per epoch.
type KernelWPTracker struct {
	K *kernel.Kernel
	P *proc.Process

	dirty        map[mem.PageNum]bool
	prev         mem.FaultHandler
	stats        TrackerStats
	armed        bool
	firstCollect bool
}

// NewKernelWPTracker attaches a kernel write-protection tracker to p.
func NewKernelWPTracker(k *kernel.Kernel, p *proc.Process) *KernelWPTracker {
	return &KernelWPTracker{K: k, P: p, dirty: make(map[mem.PageNum]bool)}
}

// Name implements Tracker.
func (t *KernelWPTracker) Name() string { return "kernel-wp" }

// Granularity implements Tracker.
func (t *KernelWPTracker) Granularity() int { return mem.PageSize }

// Arm implements Tracker.
func (t *KernelWPTracker) Arm() error {
	if !t.armed {
		t.prev = t.P.AS.SetFaultHandler(t.onFault)
		t.armed = true
		t.firstCollect = true
	}
	t.protectAll()
	return nil
}

func (t *KernelWPTracker) protectAll() {
	n := 0
	for _, v := range trackableVMAs(t.P.AS) {
		n += t.P.AS.ProtectVMA(v, v.Prot&^mem.ProtWrite)
	}
	t.stats.ProtectedPages += uint64(n)
	// Direct PTE updates in kernel mode: no syscall, just per-page cost.
	t.K.Charge(simtime.Duration(n)*t.K.CM.MprotectPerPage, "kwp-protect")
}

func (t *KernelWPTracker) onFault(f *mem.Fault) mem.Disposition {
	if f.Access != mem.AccessWrite || f.VMA == nil || f.VMA.Kind == mem.KindText {
		if t.prev != nil {
			return t.prev(f)
		}
		return mem.FaultSignal
	}
	t.dirty[f.Addr.Page()] = true
	t.stats.Faults++
	d := t.K.CM.PageFault + t.K.CM.MprotectPerPage
	t.K.Charge(d, "kwp-fault")
	t.stats.RuntimeOverhead += d
	_, _ = t.P.AS.Protect(f.Addr.Page().Base(), mem.PageSize, f.VMA.Prot|mem.ProtWrite)
	return mem.FaultRetry
}

// Collect implements Tracker. The first collection after attaching returns
// everything resident (there is no prior epoch to diff against).
func (t *KernelWPTracker) Collect() ([]Range, error) {
	if !t.armed {
		return nil, fmt.Errorf("checkpoint: %s: Collect before Arm", t.Name())
	}
	var out []Range
	if t.firstCollect {
		t.firstCollect = false
		out = residentRanges(t.P.AS)
	} else {
		pages := make([]mem.PageNum, 0, len(t.dirty))
		for pn := range t.dirty {
			pages = append(pages, pn)
		}
		out = pagesToRanges(pages)
	}
	t.dirty = make(map[mem.PageNum]bool)
	t.protectAll()
	return out, nil
}

// Stats implements Tracker.
func (t *KernelWPTracker) Stats() TrackerStats { return t.stats }

// Close implements Tracker: restores protections and the fault handler.
func (t *KernelWPTracker) Close() {
	if !t.armed {
		return
	}
	for _, v := range trackableVMAs(t.P.AS) {
		t.P.AS.ProtectVMA(v, v.Prot|mem.ProtWrite)
	}
	t.P.AS.SetFaultHandler(t.prev)
	t.armed = false
}

// UserWPTracker is the user-level incremental tracker of §3: mprotect
// syscalls write-protect the address space, and each first touch costs a
// full SIGSEGV delivery to a user handler plus an mprotect syscall to
// reopen the page — the expensive path the paper contrasts with kernel
// fault handling.
type UserWPTracker struct {
	Ctx *kernel.Context

	dirty        map[mem.PageNum]bool
	prev         mem.FaultHandler
	stats        TrackerStats
	armed        bool
	firstCollect bool
}

// NewUserWPTracker attaches a user-level mprotect/SIGSEGV tracker.
func NewUserWPTracker(ctx *kernel.Context) *UserWPTracker {
	return &UserWPTracker{Ctx: ctx, dirty: make(map[mem.PageNum]bool)}
}

// Name implements Tracker.
func (t *UserWPTracker) Name() string { return "user-wp" }

// Granularity implements Tracker.
func (t *UserWPTracker) Granularity() int { return mem.PageSize }

// Arm implements Tracker.
func (t *UserWPTracker) Arm() error {
	if !t.armed {
		t.prev = t.Ctx.P.AS.SetFaultHandler(t.onFault)
		t.armed = true
		t.firstCollect = true
	}
	return t.protectAll()
}

func (t *UserWPTracker) protectAll() error {
	for _, v := range trackableVMAs(t.Ctx.P.AS) {
		if err := t.Ctx.Mprotect(v.Start, v.Length, v.Prot&^mem.ProtWrite); err != nil {
			return err
		}
		t.stats.ProtectedPages += uint64(v.NumPages())
	}
	return nil
}

func (t *UserWPTracker) onFault(f *mem.Fault) mem.Disposition {
	if f.Access != mem.AccessWrite || f.VMA == nil || f.VMA.Kind == mem.KindText {
		if t.prev != nil {
			return t.prev(f)
		}
		return mem.FaultSignal
	}
	t.dirty[f.Addr.Page()] = true
	t.stats.Faults++
	// Kernel fault → SIGSEGV frame → user handler → mprotect syscall →
	// sigreturn. This is the full §3 price per first touch.
	cm := t.Ctx.K.CM
	before := t.Ctx.K.Now()
	t.Ctx.K.Charge(cm.PageFault+cm.SignalDeliver, "uwp-sigsegv")
	_ = t.Ctx.Mprotect(f.Addr.Page().Base(), mem.PageSize, f.VMA.Prot|mem.ProtWrite)
	t.Ctx.K.Charge(cm.SignalReturn, "uwp-sigreturn")
	t.stats.RuntimeOverhead += t.Ctx.K.Now().Sub(before)
	return mem.FaultRetry
}

// Collect implements Tracker.
func (t *UserWPTracker) Collect() ([]Range, error) {
	if !t.armed {
		return nil, fmt.Errorf("checkpoint: %s: Collect before Arm", t.Name())
	}
	var out []Range
	if t.firstCollect {
		t.firstCollect = false
		out = residentRanges(t.Ctx.P.AS)
	} else {
		pages := make([]mem.PageNum, 0, len(t.dirty))
		for pn := range t.dirty {
			pages = append(pages, pn)
		}
		out = pagesToRanges(pages)
	}
	t.dirty = make(map[mem.PageNum]bool)
	if err := t.protectAll(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats implements Tracker.
func (t *UserWPTracker) Stats() TrackerStats { return t.stats }

// Close implements Tracker.
func (t *UserWPTracker) Close() {
	if !t.armed {
		return
	}
	for _, v := range trackableVMAs(t.Ctx.P.AS) {
		_ = t.Ctx.Mprotect(v.Start, v.Length, v.Prot|mem.ProtWrite)
	}
	t.Ctx.P.AS.SetFaultHandler(t.prev)
	t.armed = false
}

// HashTracker implements probabilistic checkpointing [23]: instead of
// write protection, memory is divided into fixed-size blocks whose
// checksums are compared against the previous epoch. There is no per-write
// overhead at all; the cost moves to hashing at checkpoint time, and
// correctness becomes probabilistic — a block whose change collides in the
// hash is silently missed. With HashBits b, the per-changed-block miss
// probability is 2^-b.
type HashTracker struct {
	Acc       Accessor
	Bill      costmodel.Biller
	CM        *costmodel.Model
	BlockSize int
	// HashBits models the checksum width of [23] (their implementation
	// used small checksums; we compute a full FNV-64 so simulation is
	// exact, and expose the analytic miss probability instead).
	HashBits int

	prevHash map[mem.Addr]uint64
	stats    TrackerStats
	armed    bool
}

// NewHashTracker builds a probabilistic tracker with the given block size.
func NewHashTracker(acc Accessor, bill costmodel.Biller, cm *costmodel.Model, blockSize, hashBits int) (*HashTracker, error) {
	if blockSize <= 0 || blockSize > mem.PageSize || mem.PageSize%blockSize != 0 {
		return nil, fmt.Errorf("checkpoint: block size %d must divide the page size", blockSize)
	}
	if hashBits <= 0 || hashBits > 64 {
		hashBits = 64
	}
	return &HashTracker{Acc: acc, Bill: bill, CM: cm, BlockSize: blockSize, HashBits: hashBits}, nil
}

// Name implements Tracker.
func (t *HashTracker) Name() string { return fmt.Sprintf("hash-%dB", t.BlockSize) }

// Granularity implements Tracker.
func (t *HashTracker) Granularity() int { return t.BlockSize }

// Arm implements Tracker: snapshot all block hashes.
func (t *HashTracker) Arm() error {
	t.prevHash = t.hashAll()
	t.armed = true
	return nil
}

func (t *HashTracker) hashAll() map[mem.Addr]uint64 {
	out := make(map[mem.Addr]uint64)
	buf := make([]byte, t.BlockSize)
	as := t.Acc.Process().AS
	for _, pi := range as.ResidentPages() {
		if pi.VMA.Kind == mem.KindText {
			continue
		}
		base := pi.Num.Base()
		for off := 0; off < mem.PageSize; off += t.BlockSize {
			n := t.BlockSize
			if n > mem.PageSize-off {
				n = mem.PageSize - off
			}
			if err := t.Acc.ReadRange(base+mem.Addr(off), buf[:n]); err != nil {
				continue
			}
			h := fnv.New64a()
			h.Write(buf[:n])
			out[base+mem.Addr(off)] = h.Sum64()
			t.stats.HashedBytes += uint64(n)
			t.Bill.Charge(t.CM.Hash(n), "block-hash")
		}
	}
	return out
}

// Collect implements Tracker: rehash, diff, re-arm.
func (t *HashTracker) Collect() ([]Range, error) {
	if !t.armed {
		return nil, fmt.Errorf("checkpoint: %s: Collect before Arm", t.Name())
	}
	cur := t.hashAll()
	var addrs []mem.Addr
	for a, h := range cur {
		if ph, ok := t.prevHash[a]; !ok || ph != h {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []Range
	for _, a := range addrs {
		if n := len(out); n > 0 && out[n-1].Addr+mem.Addr(out[n-1].Length) == a {
			out[n-1].Length += t.BlockSize
		} else {
			out = append(out, Range{Addr: a, Length: t.BlockSize})
		}
	}
	t.prevHash = cur
	return out, nil
}

// MissProbability returns the analytic probability that at least one of n
// changed blocks is missed with the configured hash width.
func (t *HashTracker) MissProbability(nChanged int) float64 {
	pMiss := math.Pow(2, -float64(t.HashBits))
	return 1 - math.Pow(1-pMiss, float64(nChanged))
}

// Stats implements Tracker.
func (t *HashTracker) Stats() TrackerStats { return t.stats }

// Close implements Tracker.
func (t *HashTracker) Close() { t.prevHash = nil; t.armed = false }

// AdaptiveTracker implements the adaptive-block-size refinement of [1]
// (Agarwal et al.): it runs a HashTracker but re-picks the block size each
// epoch to minimize modeled cost = hash time over the whole resident set +
// transfer time for the changed data, given the density observed in the
// previous epoch. Dense deltas push the block size up (less hashing per
// byte saved matters little when everything changed); sparse, scattered
// deltas pull it down (finer blocks save more transfer).
type AdaptiveTracker struct {
	Acc   Accessor
	Bill  costmodel.Biller
	CM    *costmodel.Model
	Sizes []int // candidate block sizes, ascending

	cur      *HashTracker
	lastSize int
	stats    TrackerStats
}

// NewAdaptiveTracker builds an adaptive tracker over the given candidate
// sizes (default 256 B–4 KiB).
func NewAdaptiveTracker(acc Accessor, bill costmodel.Biller, cm *costmodel.Model, sizes []int) (*AdaptiveTracker, error) {
	if len(sizes) == 0 {
		sizes = []int{256, 512, 1024, 2048, 4096}
	}
	sort.Ints(sizes)
	t := &AdaptiveTracker{Acc: acc, Bill: bill, CM: cm, Sizes: sizes}
	ht, err := NewHashTracker(acc, bill, cm, sizes[len(sizes)-1], 64)
	if err != nil {
		return nil, err
	}
	t.cur = ht
	t.lastSize = ht.BlockSize
	return t, nil
}

// Name implements Tracker.
func (t *AdaptiveTracker) Name() string { return "adaptive" }

// Granularity implements Tracker: the current block size.
func (t *AdaptiveTracker) Granularity() int { return t.cur.BlockSize }

// Arm implements Tracker.
func (t *AdaptiveTracker) Arm() error { return t.cur.Arm() }

// Collect implements Tracker: collect with the current size, then choose
// the size for the next epoch from the observed change density.
func (t *AdaptiveTracker) Collect() ([]Range, error) {
	out, err := t.cur.Collect()
	if err != nil {
		return nil, err
	}
	t.accumulate()
	changed := 0
	for _, r := range out {
		changed += r.Length
	}
	resident := int(t.Acc.Process().AS.ResidentBytes())
	best := t.pickSize(changed, resident)
	if best != t.cur.BlockSize {
		nt, err := NewHashTracker(t.Acc, t.Bill, t.CM, best, 64)
		if err != nil {
			return out, nil
		}
		t.cur = nt
		if err := t.cur.Arm(); err != nil {
			return out, err
		}
	}
	t.lastSize = t.cur.BlockSize
	return out, nil
}

// pickSize models, for each candidate block size, the cost of the next
// epoch: hashing the resident set (with a fixed per-block overhead, which
// penalizes very fine blocks) plus shipping the expected changed bytes.
// Shipping estimates from the density observed at the current granularity:
// coarser blocks drag more clean bytes along (changed runs inflate to the
// block size); finer blocks trim the clean tail of each dirty block, with
// a conservative floor (alpha) on how much of a dirty block is truly
// modified. When every block was dirty, finer granularity cannot help, so
// only coarser candidates are considered. A 5% hysteresis margin prevents
// oscillation.
func (t *AdaptiveTracker) pickSize(changedBytes, residentBytes int) int {
	if residentBytes == 0 || changedBytes == 0 {
		return t.cur.BlockSize
	}
	const (
		alpha        = 0.25 // assumed truly-dirty fraction of a dirty block
		perBlockSecs = 50e-9
		hysteresis   = 0.95
	)
	g := float64(t.cur.BlockSize)
	c := float64(changedBytes)
	density := c / float64(residentBytes)

	cost := func(s int) float64 {
		fs := float64(s)
		var ship float64
		if fs >= g {
			ship = math.Min(float64(residentBytes), c*fs/g)
		} else {
			ship = c * (alpha + (1-alpha)*fs/g)
		}
		blocks := float64(residentBytes) / fs
		return t.CM.Hash(residentBytes).Seconds() + blocks*perBlockSecs + t.CM.DiskStream(int(ship)).Seconds()
	}

	bestSize := t.cur.BlockSize
	bestCost := cost(bestSize)
	for _, s := range t.Sizes {
		if s == t.cur.BlockSize {
			continue
		}
		if density >= 0.9 && s < t.cur.BlockSize {
			continue // everything is dirty: finer blocks cannot win
		}
		if cs := cost(s); cs < hysteresis*bestCost {
			bestCost, bestSize = cs, s
		}
	}
	return bestSize
}

func (t *AdaptiveTracker) accumulate() {
	s := t.cur.Stats()
	t.stats.HashedBytes += s.HashedBytes
	t.cur.stats = TrackerStats{}
}

// Stats implements Tracker.
func (t *AdaptiveTracker) Stats() TrackerStats { return t.stats }

// Close implements Tracker.
func (t *AdaptiveTracker) Close() { t.cur.Close() }

// interface checks
var (
	_ Tracker = (*FullTracker)(nil)
	_ Tracker = (*KernelWPTracker)(nil)
	_ Tracker = (*UserWPTracker)(nil)
	_ Tracker = (*HashTracker)(nil)
	_ Tracker = (*AdaptiveTracker)(nil)
)
