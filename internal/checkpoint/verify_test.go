package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func validImage() *Image {
	return &Image{
		Mechanism: "t", Hostname: "h", PID: 3, Exe: "app", Mode: ModeFull, Seq: 1,
		Threads: []ThreadRecord{{TID: 1}},
		VMAs: []VMASection{
			{Start: 0x1000, Length: 2 * mem.PageSize, Kind: mem.KindAnon, Name: "a",
				Extents: []Extent{
					{Addr: 0x1000, Data: make([]byte, 64)},
					{Addr: 0x1100, Data: make([]byte, 64)},
				}},
			{Start: 0x10000, Length: mem.PageSize, Kind: mem.KindAnon, Name: "b"},
		},
		FDs: []FDRecord{{FD: 0, Path: "/x"}},
	}
}

func TestVerifyAcceptsValid(t *testing.T) {
	if err := validImage().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruptions(t *testing.T) {
	cases := map[string]func(*Image){
		"no-exe":           func(i *Image) { i.Exe = "" },
		"bad-pid":          func(i *Image) { i.PID = 0 },
		"incr-no-parent":   func(i *Image) { i.Mode = ModeIncremental },
		"full-with-parent": func(i *Image) { i.Parent = "x" },
		"no-threads":       func(i *Image) { i.Threads = nil },
		"dup-tid":          func(i *Image) { i.Threads = append(i.Threads, ThreadRecord{TID: 1}) },
		"unaligned-vma":    func(i *Image) { i.VMAs[0].Start = 0x1001 },
		"zero-len-vma":     func(i *Image) { i.VMAs[0].Length = 0 },
		"overlap-vma":      func(i *Image) { i.VMAs[1].Start = 0x1000 },
		"empty-extent":     func(i *Image) { i.VMAs[0].Extents[0].Data = nil },
		"extent-outside":   func(i *Image) { i.VMAs[0].Extents[1].Addr = 0x9000000 },
		"extent-overlap":   func(i *Image) { i.VMAs[0].Extents[1].Addr = 0x1020 },
		"neg-fd":           func(i *Image) { i.FDs[0].FD = -1 },
		"dup-fd":           func(i *Image) { i.FDs = append(i.FDs, FDRecord{FD: 0, Path: "/y"}) },
		"fd-no-path":       func(i *Image) { i.FDs[0].Path = "" },
	}
	for name, breakIt := range cases {
		img := validImage()
		breakIt(img)
		if err := img.Verify(); !errors.Is(err, ErrInvalidImage) {
			t.Errorf("%s: Verify = %v, want ErrInvalidImage", name, err)
		}
	}
}

func TestVerifyChain(t *testing.T) {
	full := validImage()
	delta := validImage()
	delta.Mode = ModeIncremental
	delta.Seq = 2
	delta.Parent = full.ObjectName()

	if err := VerifyChain([]*Image{full, delta}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if err := VerifyChain([]*Image{delta}); err == nil {
		t.Fatal("incremental head accepted")
	}

	badSeq := validImage()
	badSeq.Mode = ModeIncremental
	badSeq.Seq = 1
	badSeq.Parent = full.ObjectName()
	if err := VerifyChain([]*Image{full, badSeq}); err == nil {
		t.Fatal("non-ascending seq accepted")
	}

	otherExe := validImage()
	otherExe.Mode = ModeIncremental
	otherExe.Seq = 2
	otherExe.Parent = full.ObjectName()
	otherExe.Exe = "other"
	if err := VerifyChain([]*Image{full, otherExe}); err == nil {
		t.Fatal("cross-executable chain accepted")
	}

	wrongParent := validImage()
	wrongParent.Mode = ModeIncremental
	wrongParent.Seq = 2
	wrongParent.Parent = "ckpt/pid9/seq1"
	if err := VerifyChain([]*Image{full, wrongParent}); err == nil {
		t.Fatal("broken parent link accepted")
	}
}

// Property: every image Capture produces — full or incremental, any
// workload — passes Verify, and every chain passes VerifyChain.
func TestCapturedImagesAlwaysVerify(t *testing.T) {
	progs := []kernel.Program{
		workload.Dense{MiB: 1},
		workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 3},
		workload.Stencil{MiB: 2},
		workload.MultiThreaded{MiB: 1, NThreads: 3, Iterations: 1 << 20},
	}
	for _, prog := range progs {
		k := newMachine("v", prog)
		p, err := k.Spawn(prog.Name())
		if err != nil {
			t.Fatal(err)
		}
		workload.SetIterations(p, 1<<30)
		k.RunFor(2 * simtime.Millisecond)

		trk := NewKernelWPTracker(k, p)
		if err := trk.Arm(); err != nil {
			t.Fatal(err)
		}
		var chain []*Image
		parent := ""
		for i := 0; i < 3; i++ {
			k.RunFor(simtime.Millisecond)
			k.Stop(p)
			img, _, err := Capture(Request{
				Acc: &KernelAccessor{K: k, P: p}, Trk: trk,
				Mechanism: "verify-test", Hostname: "v",
				Seq: uint64(i + 1), Parent: parent, Now: k.Now(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := img.Verify(); err != nil {
				t.Fatalf("%s image %d: %v", prog.Name(), i, err)
			}
			chain = append(chain, img)
			parent = img.ObjectName()
			k.Wake(p)
		}
		if err := VerifyChain(chain); err != nil {
			t.Fatalf("%s chain: %v", prog.Name(), err)
		}
		trk.Close()
	}
}
