package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/simos/fs"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/storage"
	"repro/internal/trace"
)

// RestoreOptions tune the restore engine. The defaults reproduce the weak
// baseline most surveyed mechanisms share (new PID, no kernel-state
// virtualization); the flags correspond to the extra capabilities UCLiK
// (PreservePID, deleted-file recovery) and ZAP (kernel-state recreation)
// advertise.
type RestoreOptions struct {
	// PreservePID reinstates the original PID (UCLiK). Fails if taken.
	PreservePID bool
	// VirtualizePID gives the restored process a fresh real PID but sets
	// its pod-virtual PID to the checkpointed identity, so getpid() is
	// stable without any claim on the real PID space — ZAP's pod design,
	// which never collides. Ignored when PreservePID is set.
	VirtualizePID bool
	// RecreateKernelState restores sockets and shared-memory segments
	// from the image (ZAP pods).
	RecreateKernelState bool
	// RestoreDeletedFiles recreates unlinked files from image contents
	// (UCLiK); without it, a descriptor to a deleted file fails restore.
	RestoreDeletedFiles bool
	// Handlers resolves handler names after a Decode (cross-simulation
	// restore); live handler maps on the image take precedence.
	Handlers map[string]*sig.Handler
	// Enqueue makes the restored process runnable immediately.
	Enqueue bool
	// Env, when non-nil, is billed for the restore work (memory copies);
	// reading the images from storage is charged separately by LoadChain.
	Env *storage.Env
	// Parallelism shards chain replay across a worker pool of that size
	// (0 or 1 = sequential). Restored memory is byte-identical at any
	// width — the replay plan resolves per-page last-writer-wins before
	// any worker runs — only the simulated restore time changes. Like
	// capture, callers opt in explicitly; defaulting to the host's core
	// count would make simulated results machine-dependent.
	Parallelism int
	// Metrics, when non-nil, receives restore.* counters (pages, bytes
	// copied, bytes pruned, extents). Latency distributions are recorded
	// by the orchestration layer, which also sees the storage read time.
	Metrics *trace.Metrics
}

// ErrNeedsChain is returned when restoring an incremental image without
// its ancestors.
var ErrNeedsChain = errors.New("checkpoint: incremental image requires its parent chain")

// LoadChain reads the image named leaf from the target and follows Parent
// links until a full image, returning the chain oldest-first. The walk is
// bounded: an empty leaf name and a corrupted chain whose parent links
// cycle both return errors wrapping ErrNeedsChain instead of panicking or
// spinning forever — a restore must fail cleanly on the worst chain a
// faulty store can serve, because it runs at the worst possible time.
func LoadChain(t storage.Target, env *storage.Env, leaf string) ([]*Image, error) {
	if leaf == "" {
		return nil, fmt.Errorf("%w: empty leaf object name", ErrNeedsChain)
	}
	if env == nil {
		env = storage.NopEnv()
	}
	var rev []*Image
	seen := make(map[string]bool)
	name := leaf
	for name != "" {
		if seen[name] {
			return nil, fmt.Errorf("%w: %w: parent links cycle back to %s (chain of %d from %s)",
				ErrNeedsChain, ErrCorrupt, name, len(rev), leaf)
		}
		seen[name] = true
		data, err := t.ReadObject(name, env)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: load %s: %w", name, err)
		}
		img, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decode %s: %w", name, err)
		}
		rev = append(rev, img)
		if img.Mode == ModeFull {
			break
		}
		name = img.Parent
	}
	last := rev[len(rev)-1]
	if last.Mode != ModeFull {
		return nil, fmt.Errorf("%w: chain head %s is %s", ErrNeedsChain, last.ObjectName(), last.Mode)
	}
	// Reverse to oldest-first.
	out := make([]*Image, len(rev))
	for i, img := range rev {
		out[len(rev)-1-i] = img
	}
	if err := VerifyChain(out); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadChainManifest reads a chain whose object names are already known
// (oldest-first), the restore fast path a supervisor-held chain manifest
// enables: targets implementing storage.BatchReader serve the whole list
// in one scheduled pass — one positioning cost instead of one seek per
// link — where LoadChain's link-by-link walk must pay a round trip per
// ancestor to discover the next name. The loaded chain is verified
// exactly like a walked one; a manifest that has drifted from what the
// store holds (a hole, a stale name, a fold that changed ancestry) fails
// verification here and the caller falls back to the walk.
func LoadChainManifest(t storage.Target, env *storage.Env, objects []string) ([]*Image, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("%w: empty chain manifest", ErrNeedsChain)
	}
	if env == nil {
		env = storage.NopEnv()
	}
	var blobs [][]byte
	if br, ok := t.(storage.BatchReader); ok {
		b, err := br.ReadBatch(objects, env)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: load manifest: %w", err)
		}
		blobs = b
	} else {
		for _, name := range objects {
			data, err := t.ReadObject(name, env)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: load %s: %w", name, err)
			}
			blobs = append(blobs, data)
		}
	}
	chain := make([]*Image, len(blobs))
	for i, data := range blobs {
		img, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decode %s: %w", objects[i], err)
		}
		chain[i] = img
	}
	if err := VerifyChain(chain); err != nil {
		return nil, err
	}
	return chain, nil
}

// checkChainLinks verifies the parent links of an oldest-first chain.
func checkChainLinks(chain []*Image) error {
	for i := 1; i < len(chain); i++ {
		if chain[i].Parent != chain[i-1].ObjectName() {
			return fmt.Errorf("checkpoint: broken chain at %s (parent %q, want %q)",
				chain[i].ObjectName(), chain[i].Parent, chain[i-1].ObjectName())
		}
	}
	return nil
}

// restoreSkeleton rebuilds everything of a process except its memory
// contents from the leaf image: identity (PID mode), args, and the VMA
// layout. The returned cleanup undoes the process-table insertion;
// callers invoke it on any later failure. Shared between the eager
// Restore and LazyRestore, which differ only in when the contents of the
// mapped pages arrive.
func restoreSkeleton(k *kernel.Kernel, leaf *Image, opt RestoreOptions) (*proc.Process, func(), error) {
	// The program must exist on the target machine.
	if _, err := k.Registry.Lookup(leaf.Exe); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: restore: %w", err)
	}

	var p *proc.Process
	switch {
	case opt.PreservePID:
		p = proc.New(leaf.PID, leaf.PPID, leaf.Exe)
		if err := k.Procs.Insert(p); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: restore with original pid: %w", err)
		}
	case opt.VirtualizePID:
		p = k.Procs.Allocate(leaf.PPID, leaf.Exe)
		p.VPID = leaf.PID
		if leaf.VPID != 0 {
			p.VPID = leaf.VPID
		}
	default:
		p = k.Procs.Allocate(leaf.PPID, leaf.Exe)
	}
	p.Args = append([]string(nil), leaf.Args...)

	cleanup := func() { k.Procs.Remove(p.PID) }

	// Memory layout from the leaf image. A tracker may have left data
	// regions write-protected at capture time; the restored process gets
	// the region's natural protection back.
	for _, v := range leaf.VMAs {
		prot := v.Prot
		if v.Kind != mem.KindText {
			prot |= mem.ProtRW
		}
		if _, err := p.AS.Map(v.Start, v.Length, prot, v.Kind, v.Name); err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("checkpoint: restore map: %w", err)
		}
	}
	return p, cleanup, nil
}

// Restore rebuilds a process on k from an image chain (oldest-first; a
// single full image is a chain of one). The most recent image defines the
// memory layout, registers, descriptors and signal state; extents are
// applied oldest-first so later deltas overwrite earlier data.
func Restore(k *kernel.Kernel, chain []*Image, opt RestoreOptions) (*proc.Process, error) {
	if len(chain) == 0 {
		return nil, errors.New("checkpoint: empty image chain")
	}
	if chain[0].Mode != ModeFull {
		return nil, ErrNeedsChain
	}
	leaf := chain[len(chain)-1]
	if err := checkChainLinks(chain); err != nil {
		return nil, err
	}
	p, cleanup, err := restoreSkeleton(k, leaf, opt)
	if err != nil {
		return nil, err
	}
	// Contents oldest-first, resolved to per-page last-writer-wins jobs
	// before any byte moves. Extents of VMAs that no longer exist in the
	// leaf layout (unmapped since) are skipped. The same plan drives the
	// sequential and the sharded path, so restored memory is
	// byte-identical at every worker count.
	plan, err := planReplay(chain)
	if err != nil {
		cleanup()
		return nil, err
	}
	workers := opt.Parallelism
	if workers <= 1 {
		workers = 1
	}
	if workers > len(plan.jobs) && len(plan.jobs) > 0 {
		workers = len(plan.jobs)
	}
	// Copying the image back into memory costs real time on the target
	// machine: bill the provided Env, or the kernel itself by default.
	// Parallel replay divides the copy across the pool (plus its
	// fork/join overhead), exactly like the sharded capture's encode;
	// the cost is charged up-front from this goroutine because the
	// simulated clock cannot be advanced from workers.
	var bill costmodel.Biller = k
	if opt.Env != nil && opt.Env.Bill != nil {
		bill = opt.Env.Bill
	}
	bill.Charge(RestoreCost(plan.copied, workers), "restore-copy")
	if err := applyPlan(p.AS, &plan, workers); err != nil {
		cleanup()
		return nil, err
	}
	if opt.Metrics != nil {
		c := opt.Metrics.Counters
		c.Inc("restore.images", int64(len(chain)))
		c.Inc("restore.pages", int64(len(plan.jobs)))
		c.Inc("restore.bytes_copied", int64(plan.copied))
		c.Inc("restore.bytes_pruned", int64(plan.pruned))
		c.Inc("restore.workers", int64(workers))
	}
	if err := finishRestore(k, p, leaf, opt); err != nil {
		cleanup()
		return nil, err
	}
	return p, nil
}

// finishRestore completes a restore after the memory phase: heap break,
// threads and registers, kernel-persistent state, descriptors, signal
// state, and scheduling. Shared between Restore and LazyRestore; the
// caller runs its cleanup on error.
func finishRestore(k *kernel.Kernel, p *proc.Process, leaf *Image, opt RestoreOptions) error {
	if leaf.Brk != 0 {
		if err := p.AS.SetBrk(leaf.Brk); err != nil {
			return fmt.Errorf("checkpoint: restore brk: %w", err)
		}
	}

	// Threads and registers.
	p.Threads = nil
	for _, t := range leaf.Threads {
		p.Threads = append(p.Threads, &proc.Thread{TID: t.TID, Regs: t.Regs})
	}
	if len(p.Threads) == 0 {
		return errors.New("checkpoint: image has no threads")
	}

	// Kernel-persistent state first, so descriptor and segment recreation
	// can rely on it.
	if opt.RecreateKernelState {
		for _, s := range leaf.Sockets {
			if err := k.RecreateSocket(s.ID, p.PID, s.Peer); err != nil {
				return fmt.Errorf("checkpoint: restore socket: %w", err)
			}
		}
		for key, data := range leaf.Shm {
			k.RecreateShm(key, data)
		}
	}

	// Descriptors.
	for _, f := range leaf.FDs {
		if f.Deleted {
			if !opt.RestoreDeletedFiles || f.Contents == nil {
				return fmt.Errorf("checkpoint: fd %d refers to deleted %s and contents are not available", f.FD, f.Path)
			}
			// WriteFile itself cannot fail, but it would silently replace
			// whatever now lives at the path — recreating an unlinked
			// file over a device node is never what the image meant.
			if n, lerr := k.FS.Lookup(f.Path); lerr == nil && n.Kind != fs.KindRegular {
				return fmt.Errorf("checkpoint: restore fd %d: recreate deleted %s: path now holds a %s node",
					f.FD, f.Path, n.Kind)
			}
			k.FS.WriteFile(f.Path, f.Contents)
		}
		of, err := k.FS.Open(f.Path, f.Flags&^fs.OAppend)
		if err != nil {
			return fmt.Errorf("checkpoint: restore fd %d: %w", f.FD, err)
		}
		if err := of.SeekTo(f.Offset); err != nil {
			return fmt.Errorf("checkpoint: restore fd %d: seek %s to offset %d: %w", f.FD, f.Path, f.Offset, err)
		}
		p.InstallFDAt(f.FD, of)
	}

	// Signal state.
	for _, d := range leaf.SigDisps {
		switch d.Kind {
		case DispIgnore:
			if err := p.Sig.Ignore(d.Sig); err != nil {
				return err
			}
		case DispHandler:
			h := leaf.handlers[d.Sig]
			if h == nil && opt.Handlers != nil {
				h = opt.Handlers[d.HandlerName]
			}
			if h == nil {
				// Handler code not present on this machine: disposition
				// falls back to default, as a real restart of a process
				// whose library is missing would fail later.
				continue
			}
			if err := p.Sig.SetHandler(d.Sig, h); err != nil {
				return err
			}
		}
	}
	for _, s := range leaf.SigPending {
		p.Sig.Raise(s)
	}
	for _, s := range leaf.SigBlocked {
		p.Sig.Block(s)
	}

	p.State = proc.StateStopped
	if opt.Enqueue {
		p.State = proc.StateReady
		k.Sched.Enqueue(p)
	}
	return nil
}
