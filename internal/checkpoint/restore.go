package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/simos/fs"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// RestoreOptions tune the restore engine. The defaults reproduce the weak
// baseline most surveyed mechanisms share (new PID, no kernel-state
// virtualization); the flags correspond to the extra capabilities UCLiK
// (PreservePID, deleted-file recovery) and ZAP (kernel-state recreation)
// advertise.
type RestoreOptions struct {
	// PreservePID reinstates the original PID (UCLiK). Fails if taken.
	PreservePID bool
	// VirtualizePID gives the restored process a fresh real PID but sets
	// its pod-virtual PID to the checkpointed identity, so getpid() is
	// stable without any claim on the real PID space — ZAP's pod design,
	// which never collides. Ignored when PreservePID is set.
	VirtualizePID bool
	// RecreateKernelState restores sockets and shared-memory segments
	// from the image (ZAP pods).
	RecreateKernelState bool
	// RestoreDeletedFiles recreates unlinked files from image contents
	// (UCLiK); without it, a descriptor to a deleted file fails restore.
	RestoreDeletedFiles bool
	// Handlers resolves handler names after a Decode (cross-simulation
	// restore); live handler maps on the image take precedence.
	Handlers map[string]*sig.Handler
	// Enqueue makes the restored process runnable immediately.
	Enqueue bool
	// Env, when non-nil, is billed for the restore work (memory copies);
	// reading the images from storage is charged separately by LoadChain.
	Env *storage.Env
}

// ErrNeedsChain is returned when restoring an incremental image without
// its ancestors.
var ErrNeedsChain = errors.New("checkpoint: incremental image requires its parent chain")

// LoadChain reads the image named leaf from the target and follows Parent
// links until a full image, returning the chain oldest-first.
func LoadChain(t storage.Target, env *storage.Env, leaf string) ([]*Image, error) {
	if env == nil {
		env = storage.NopEnv()
	}
	var rev []*Image
	name := leaf
	for name != "" {
		data, err := t.ReadObject(name, env)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: load %s: %w", name, err)
		}
		img, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decode %s: %w", name, err)
		}
		rev = append(rev, img)
		if img.Mode == ModeFull {
			break
		}
		name = img.Parent
	}
	last := rev[len(rev)-1]
	if last.Mode != ModeFull {
		return nil, fmt.Errorf("%w: chain head %s is %s", ErrNeedsChain, last.ObjectName(), last.Mode)
	}
	// Reverse to oldest-first.
	out := make([]*Image, len(rev))
	for i, img := range rev {
		out[len(rev)-1-i] = img
	}
	if err := VerifyChain(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Restore rebuilds a process on k from an image chain (oldest-first; a
// single full image is a chain of one). The most recent image defines the
// memory layout, registers, descriptors and signal state; extents are
// applied oldest-first so later deltas overwrite earlier data.
func Restore(k *kernel.Kernel, chain []*Image, opt RestoreOptions) (*proc.Process, error) {
	if len(chain) == 0 {
		return nil, errors.New("checkpoint: empty image chain")
	}
	if chain[0].Mode != ModeFull {
		return nil, ErrNeedsChain
	}
	leaf := chain[len(chain)-1]
	for i := 1; i < len(chain); i++ {
		if chain[i].Parent != chain[i-1].ObjectName() {
			return nil, fmt.Errorf("checkpoint: broken chain at %s (parent %q, want %q)",
				chain[i].ObjectName(), chain[i].Parent, chain[i-1].ObjectName())
		}
	}

	// The program must exist on the target machine.
	if _, err := k.Registry.Lookup(leaf.Exe); err != nil {
		return nil, fmt.Errorf("checkpoint: restore: %w", err)
	}

	var p *proc.Process
	switch {
	case opt.PreservePID:
		p = proc.New(leaf.PID, leaf.PPID, leaf.Exe)
		if err := k.Procs.Insert(p); err != nil {
			return nil, fmt.Errorf("checkpoint: restore with original pid: %w", err)
		}
	case opt.VirtualizePID:
		p = k.Procs.Allocate(leaf.PPID, leaf.Exe)
		p.VPID = leaf.PID
		if leaf.VPID != 0 {
			p.VPID = leaf.VPID
		}
	default:
		p = k.Procs.Allocate(leaf.PPID, leaf.Exe)
	}
	p.Args = append([]string(nil), leaf.Args...)

	cleanup := func() { k.Procs.Remove(p.PID) }

	// Memory layout from the leaf image. A tracker may have left data
	// regions write-protected at capture time; the restored process gets
	// the region's natural protection back.
	for _, v := range leaf.VMAs {
		prot := v.Prot
		if v.Kind != mem.KindText {
			prot |= mem.ProtRW
		}
		if _, err := p.AS.Map(v.Start, v.Length, prot, v.Kind, v.Name); err != nil {
			cleanup()
			return nil, fmt.Errorf("checkpoint: restore map: %w", err)
		}
	}
	// Contents oldest-first. Extents of VMAs that no longer exist in the
	// leaf layout (unmapped since) are skipped.
	copied := 0
	for _, img := range chain {
		for _, v := range img.VMAs {
			for _, e := range v.Extents {
				if p.AS.Find(e.Addr) == nil {
					continue
				}
				if err := p.AS.WriteDirect(e.Addr, e.Data); err != nil {
					cleanup()
					return nil, fmt.Errorf("checkpoint: restore extent %#x: %w", uint64(e.Addr), err)
				}
				copied += len(e.Data)
			}
		}
	}
	// Copying the image back into memory costs real time on the target
	// machine: bill the provided Env, or the kernel itself by default.
	var bill costmodel.Biller = k
	if opt.Env != nil && opt.Env.Bill != nil {
		bill = opt.Env.Bill
	}
	bill.Charge(simtime.Duration(float64(copied)/1.2e9*float64(simtime.Second)), "restore-copy")
	if leaf.Brk != 0 {
		if err := p.AS.SetBrk(leaf.Brk); err != nil {
			cleanup()
			return nil, fmt.Errorf("checkpoint: restore brk: %w", err)
		}
	}

	// Threads and registers.
	p.Threads = nil
	for _, t := range leaf.Threads {
		p.Threads = append(p.Threads, &proc.Thread{TID: t.TID, Regs: t.Regs})
	}
	if len(p.Threads) == 0 {
		cleanup()
		return nil, errors.New("checkpoint: image has no threads")
	}

	// Kernel-persistent state first, so descriptor and segment recreation
	// can rely on it.
	if opt.RecreateKernelState {
		for _, s := range leaf.Sockets {
			if err := k.RecreateSocket(s.ID, p.PID, s.Peer); err != nil {
				cleanup()
				return nil, fmt.Errorf("checkpoint: restore socket: %w", err)
			}
		}
		for key, data := range leaf.Shm {
			k.RecreateShm(key, data)
		}
	}

	// Descriptors.
	for _, f := range leaf.FDs {
		if f.Deleted {
			if !opt.RestoreDeletedFiles || f.Contents == nil {
				cleanup()
				return nil, fmt.Errorf("checkpoint: fd %d refers to deleted %s and contents are not available", f.FD, f.Path)
			}
			k.FS.WriteFile(f.Path, f.Contents)
		}
		of, err := k.FS.Open(f.Path, f.Flags&^fs.OAppend)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("checkpoint: restore fd %d: %w", f.FD, err)
		}
		if err := of.SeekTo(f.Offset); err != nil {
			cleanup()
			return nil, err
		}
		p.InstallFDAt(f.FD, of)
	}

	// Signal state.
	for _, d := range leaf.SigDisps {
		switch d.Kind {
		case DispIgnore:
			if err := p.Sig.Ignore(d.Sig); err != nil {
				cleanup()
				return nil, err
			}
		case DispHandler:
			h := leaf.handlers[d.Sig]
			if h == nil && opt.Handlers != nil {
				h = opt.Handlers[d.HandlerName]
			}
			if h == nil {
				// Handler code not present on this machine: disposition
				// falls back to default, as a real restart of a process
				// whose library is missing would fail later.
				continue
			}
			if err := p.Sig.SetHandler(d.Sig, h); err != nil {
				cleanup()
				return nil, err
			}
		}
	}
	for _, s := range leaf.SigPending {
		p.Sig.Raise(s)
	}
	for _, s := range leaf.SigBlocked {
		p.Sig.Block(s)
	}

	p.State = proc.StateStopped
	if opt.Enqueue {
		p.State = proc.StateReady
		k.Sched.Enqueue(p)
	}
	return p, nil
}
