package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/simos/mem"
)

func TestObjectNameEpoch(t *testing.T) {
	img := &Image{PID: 2, Seq: 5, Epoch: 3}
	if got := img.ObjectName(); got != "ckpt/e3/pid2/seq5" {
		t.Fatalf("ObjectName = %q", got)
	}
	img.Epoch = 0
	if got := img.ObjectName(); got != "ckpt/pid2/seq5" {
		t.Fatalf("legacy ObjectName = %q", got)
	}
}

func TestCodecRoundTripEpoch(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(11)))
	img.Epoch = 42
	data, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 {
		t.Fatalf("Epoch = %d after round trip", got.Epoch)
	}
	img.handlers = nil
	if !reflect.DeepEqual(img, got) {
		t.Fatal("round trip mismatch with epoch set")
	}
}

// Pre-chain version-1 images (no Epoch field) must still decode, with
// Epoch zero. The fixture is built by surgery on a v2 encoding: patch
// the version word, splice out the 8 epoch bytes, recompute the CRC.
func TestDecodeLegacyV1(t *testing.T) {
	img := sampleImage(rand.New(rand.NewSource(12)))
	img.Epoch = 0
	data, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Header layout: magic u32, version u16, Mechanism str, Hostname str,
	// TakenAt i64, Seq u64, then the v2 Epoch u64.
	epochOff := 4 + 2 + (4 + len(img.Mechanism)) + (4 + len(img.Hostname)) + 8 + 8
	body := data[:len(data)-8]
	v1 := make([]byte, 0, len(body)-8)
	v1 = append(v1, body[:epochOff]...)
	v1 = append(v1, body[epochOff+8:]...)
	binary.LittleEndian.PutUint16(v1[4:6], 1)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc64.Checksum(v1, crcTable))
	v1 = append(v1, trailer[:]...)

	got, err := Decode(v1)
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if got.Epoch != 0 {
		t.Fatalf("v1 Epoch = %d, want 0", got.Epoch)
	}
	img.handlers = nil
	if !reflect.DeepEqual(img, got) {
		t.Fatal("v1 round trip mismatch")
	}

	// Versions beyond the current one stay rejected.
	binary.LittleEndian.PutUint16(data[4:6], imageVersion+1)
	binary.LittleEndian.PutUint64(data[len(data)-8:], crc64.Checksum(data[:len(data)-8], crcTable))
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version err = %v, want ErrCorrupt", err)
	}
}

// stubTracker hands out a scripted range set per Collect.
type stubTracker struct {
	rounds [][]Range
	calls  int
}

func (s *stubTracker) Name() string     { return "stub" }
func (s *stubTracker) Granularity() int { return mem.PageSize }
func (s *stubTracker) Arm() error       { return nil }
func (s *stubTracker) Stats() TrackerStats {
	return TrackerStats{}
}
func (s *stubTracker) Close() {}
func (s *stubTracker) Collect() ([]Range, error) {
	rs := s.rounds[s.calls%len(s.rounds)]
	s.calls++
	return rs, nil
}

// A collection whose capture fails must not vanish: CarryTracker folds
// it into the next Collect until a Commit marks a round durable.
func TestCarryTrackerCarriesFailedRounds(t *testing.T) {
	pg := func(n int) mem.Addr { return mem.Addr(n * mem.PageSize) }
	stub := &stubTracker{rounds: [][]Range{
		{{Addr: pg(1), Length: mem.PageSize}},
		{{Addr: pg(5), Length: mem.PageSize}},
		{{Addr: pg(9), Length: mem.PageSize}},
	}}
	trk := NewCarryTracker(stub)

	// Round 1 collected but its capture fails (no Commit).
	r1, err := trk.Collect()
	if err != nil || len(r1) != 1 {
		t.Fatalf("round 1: %v %v", r1, err)
	}

	// Round 2 must carry round 1's page alongside its own.
	r2, err := trk.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{
		{Addr: pg(1), Length: mem.PageSize},
		{Addr: pg(5), Length: mem.PageSize},
	}
	if !reflect.DeepEqual(r2, want) {
		t.Fatalf("round 2 = %v, want %v", r2, want)
	}
	trk.Commit() // round 2's capture published durably

	// Round 3 starts clean: only its own dirty page.
	r3, err := trk.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r3, []Range{{Addr: pg(9), Length: mem.PageSize}}) {
		t.Fatalf("round 3 = %v", r3)
	}
}

// mergeRanges coalesces adjacent pages and deduplicates overlap.
func TestMergeRanges(t *testing.T) {
	pg := func(n int) mem.Addr { return mem.Addr(n * mem.PageSize) }
	a := []Range{{Addr: pg(1), Length: 2 * mem.PageSize}}
	b := []Range{{Addr: pg(2), Length: 2 * mem.PageSize}, {Addr: pg(7), Length: mem.PageSize}}
	got := mergeRanges(a, b)
	want := []Range{
		{Addr: pg(1), Length: 3 * mem.PageSize},
		{Addr: pg(7), Length: mem.PageSize},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeRanges = %v, want %v", got, want)
	}
	if got := mergeRanges(nil, b); !reflect.DeepEqual(got, b) {
		t.Fatalf("mergeRanges(nil, b) = %v", got)
	}
}
