// Liveness-aware dirty tracking. The write-protection trackers in
// tracker.go answer "which pages changed since the last checkpoint?";
// this one also answers "which of those pages' contents will the
// application ever read again?". A page that is overwritten in full
// before being read, epoch after epoch, is scratch space: shipping its
// bytes protects state the application provably does not consume. The
// tracker removes read permission as well as write permission at the
// start of each epoch, so the *first* access to every page is observed
// and classified:
//
//   - first access is a read, or a store smaller than the page (which
//     merges with the old contents): the old contents were live;
//   - first access is a whole-page store: the old contents were dead.
//
// Pages whose dead streak reaches DeadStreak consecutive epochs are
// excluded from the collected delta. The prediction is heuristic, so it
// carries a repair path: an excluded page's next read-before-write
// faults (the page starts each epoch unreadable), which marks the page
// *forced* — its contents ship with the next collection even if it is
// never dirtied again, restoring the chain's completeness one epoch
// after the first misprediction. Application-declared protect regions
// (proc.CkptRegion) veto exclusion outright; declared exclude regions
// are dropped from every delta with no repair obligation.
package checkpoint

import (
	"fmt"

	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
)

// DefaultDeadStreak is how many consecutive overwritten-before-read
// epochs a page needs before exclusion. Two is the floor that keeps
// alternating access patterns (Stencil-style ping-pong grids read every
// other epoch) permanently safe from exclusion.
const DefaultDeadStreak = 2

// LivenessTracker is a page-granular dirty tracker that additionally
// classifies each page's first access per epoch and excludes
// persistently dead pages from the delta. The kernel flavor charges
// direct PTE costs; the user flavor pays the full SIGSEGV-plus-mprotect
// path of §3.
type LivenessTracker struct {
	p          *proc.Process
	name       string
	deadStreak int

	// bulkProtect reprotects a whole VMA; reopen fixes one page inside
	// the fault handler, returning the overhead charged. The two
	// constructors bind these to kernel- or user-level cost models.
	bulkProtect func(v *mem.VMA, prot mem.Prot) int
	reopen      func(base mem.Addr, prot mem.Prot) simtime.Duration

	orig      map[*mem.VMA]mem.Prot // protections before tracking
	dirty     map[mem.PageNum]bool  // written this epoch
	live      map[mem.PageNum]bool  // first access read/merged old data
	dead      map[mem.PageNum]bool  // first access overwrote whole page
	streak    map[mem.PageNum]int   // consecutive dead epochs
	unshipped map[mem.PageNum]bool  // excluded from the last delta
	forced    map[mem.PageNum]bool  // misprediction: must ship next

	prev         mem.FaultHandler
	stats        TrackerStats
	armed        bool
	firstCollect bool
	lastExcluded []Range
}

func newLivenessTracker(p *proc.Process, name string, deadStreak int) *LivenessTracker {
	if deadStreak <= 0 {
		deadStreak = DefaultDeadStreak
	}
	return &LivenessTracker{
		p:          p,
		name:       name,
		deadStreak: deadStreak,
		orig:       make(map[*mem.VMA]mem.Prot),
		dirty:      make(map[mem.PageNum]bool),
		live:       make(map[mem.PageNum]bool),
		dead:       make(map[mem.PageNum]bool),
		streak:     make(map[mem.PageNum]int),
		unshipped:  make(map[mem.PageNum]bool),
		forced:     make(map[mem.PageNum]bool),
	}
}

// NewKernelLivenessTracker attaches a kernel-level liveness tracker:
// protection changes are direct PTE updates, faults cost one kernel
// fault plus a PTE fix (§4).
func NewKernelLivenessTracker(k *kernel.Kernel, p *proc.Process, deadStreak int) *LivenessTracker {
	t := newLivenessTracker(p, "kernel-live", deadStreak)
	t.bulkProtect = func(v *mem.VMA, prot mem.Prot) int {
		n := p.AS.ProtectVMA(v, prot)
		k.Charge(simtime.Duration(n)*k.CM.MprotectPerPage, "live-protect")
		return n
	}
	t.reopen = func(base mem.Addr, prot mem.Prot) simtime.Duration {
		d := k.CM.PageFault + k.CM.MprotectPerPage
		k.Charge(d, "live-fault")
		_, _ = p.AS.Protect(base, mem.PageSize, prot)
		return d
	}
	return t
}

// NewUserLivenessTracker attaches a user-level liveness tracker: every
// first touch — reads now included — pays SIGSEGV delivery, an mprotect
// syscall, and sigreturn (§3), roughly doubling the per-epoch fault
// bill relative to write-only tracking.
func NewUserLivenessTracker(ctx *kernel.Context, deadStreak int) *LivenessTracker {
	t := newLivenessTracker(ctx.P, "user-live", deadStreak)
	t.bulkProtect = func(v *mem.VMA, prot mem.Prot) int {
		_ = ctx.Mprotect(v.Start, v.Length, prot)
		return v.NumPages()
	}
	t.reopen = func(base mem.Addr, prot mem.Prot) simtime.Duration {
		cm := ctx.K.CM
		before := ctx.K.Now()
		ctx.K.Charge(cm.PageFault+cm.SignalDeliver, "live-sigsegv")
		_ = ctx.Mprotect(base, mem.PageSize, prot)
		ctx.K.Charge(cm.SignalReturn, "live-sigreturn")
		return ctx.K.Now().Sub(before)
	}
	return t
}

// Name implements Tracker.
func (t *LivenessTracker) Name() string { return t.name }

// Granularity implements Tracker.
func (t *LivenessTracker) Granularity() int { return mem.PageSize }

// DeadStreak returns the exclusion threshold in epochs.
func (t *LivenessTracker) DeadStreak() int { return t.deadStreak }

// Arm implements Tracker.
func (t *LivenessTracker) Arm() error {
	if !t.armed {
		t.prev = t.p.AS.SetFaultHandler(t.onFault)
		t.armed = true
		t.firstCollect = true
	}
	t.protectAll()
	return nil
}

// protectAll removes both read and write permission from every
// trackable page, remembering each VMA's intended protection so fault
// fix-ups can restore it (the VMA's live Prot field is clobbered by
// whole-VMA reprotection).
func (t *LivenessTracker) protectAll() {
	for _, v := range trackableVMAs(t.p.AS) {
		if _, ok := t.orig[v]; !ok {
			t.orig[v] = v.Prot
		}
		n := t.bulkProtect(v, t.orig[v]&^(mem.ProtRead|mem.ProtWrite))
		t.stats.ProtectedPages += uint64(n)
	}
}

func (t *LivenessTracker) onFault(f *mem.Fault) mem.Disposition {
	if f.VMA == nil || f.VMA.Kind == mem.KindText ||
		(f.Access != mem.AccessRead && f.Access != mem.AccessWrite) {
		if t.prev != nil {
			return t.prev(f)
		}
		return mem.FaultSignal
	}
	orig, tracked := t.orig[f.VMA]
	if !tracked {
		// Mapped after arming; next protectAll will pick it up.
		if t.prev != nil {
			return t.prev(f)
		}
		return mem.FaultSignal
	}
	pn := f.Addr.Page()
	first := !t.live[pn] && !t.dead[pn]
	t.stats.Faults++
	if f.Access == mem.AccessRead {
		if first {
			t.classifyLive(pn)
		}
		// Readable again, but still write-protected so the first store
		// is still observed for dirty tracking.
		t.stats.RuntimeOverhead += t.reopen(pn.Base(), orig&^mem.ProtWrite)
		return mem.FaultRetry
	}
	if first {
		if f.Len >= mem.PageSize && f.Addr.Offset() == 0 {
			t.dead[pn] = true
		} else {
			t.classifyLive(pn) // partial store merges with old contents
		}
	}
	t.dirty[pn] = true
	t.stats.RuntimeOverhead += t.reopen(pn.Base(), orig)
	return mem.FaultRetry
}

// classifyLive records that pn's pre-epoch contents were consumed. If
// those contents were withheld from the last delta, the exclusion was a
// misprediction and the page must ship with the next collection.
func (t *LivenessTracker) classifyLive(pn mem.PageNum) {
	t.live[pn] = true
	t.streak[pn] = 0
	if t.unshipped[pn] {
		t.forced[pn] = true
	}
}

// Collect implements Tracker: the dirty set (or everything resident, on
// the first collection) minus dead-streak and declared-exclude pages,
// plus forced repairs.
func (t *LivenessTracker) Collect() ([]Range, error) {
	if !t.armed {
		return nil, fmt.Errorf("checkpoint: %s: Collect before Arm", t.name)
	}
	var pages []mem.PageNum
	if t.firstCollect {
		t.firstCollect = false
		for _, r := range residentRanges(t.p.AS) {
			for b := r.Addr; b < r.Addr+mem.Addr(r.Length); b += mem.PageSize {
				pages = append(pages, b.Page())
			}
		}
	} else {
		for pn := range t.dirty {
			pages = append(pages, pn)
		}
	}
	// Streak accounting: a whole-page overwrite before any read extends
	// the dead streak; any other write resets it (reads reset at fault
	// time, in classifyLive).
	for pn := range t.dirty {
		if t.dead[pn] {
			t.streak[pn]++
		} else {
			t.streak[pn] = 0
		}
	}
	var out, excluded []mem.PageNum
	for _, pn := range pages {
		switch {
		case t.p.RegionExcluded(pn):
			// Declared rebuildable: never ships, never repairs.
			excluded = append(excluded, pn)
		case t.streak[pn] >= t.deadStreak && !t.forced[pn] && !t.p.RegionProtected(pn):
			t.unshipped[pn] = true
			excluded = append(excluded, pn)
		default:
			out = append(out, pn)
		}
	}
	// Forced repairs ship even when the page was not dirtied again.
	inOut := make(map[mem.PageNum]bool, len(out))
	for _, pn := range out {
		inOut[pn] = true
	}
	for pn := range t.forced {
		if !inOut[pn] {
			out = append(out, pn)
		}
	}
	for _, pn := range out {
		delete(t.unshipped, pn)
	}
	t.forced = make(map[mem.PageNum]bool)
	t.live = make(map[mem.PageNum]bool)
	t.dead = make(map[mem.PageNum]bool)
	t.dirty = make(map[mem.PageNum]bool)
	t.lastExcluded = pagesToRanges(excluded)
	t.stats.ExcludedBytes += uint64(len(excluded)) * mem.PageSize
	t.protectAll()
	return pagesToRanges(out), nil
}

// LastExcluded returns the ranges the most recent Collect withheld
// (dead-streak exclusions plus declared exclude regions).
func (t *LivenessTracker) LastExcluded() []Range { return t.lastExcluded }

// Stats implements Tracker.
func (t *LivenessTracker) Stats() TrackerStats { return t.stats }

// Close implements Tracker: restores the pre-tracking protections and
// the fault handler.
func (t *LivenessTracker) Close() {
	if !t.armed {
		return
	}
	for v, orig := range t.orig {
		t.bulkProtect(v, orig)
	}
	t.p.AS.SetFaultHandler(t.prev)
	t.armed = false
}

var _ Tracker = (*LivenessTracker)(nil)
