package checkpoint

import "repro/internal/storage"

// Audit scans a storage target and classifies every object: committed
// images that decode cleanly, committed images that are torn (truncated
// or corrupt — the debris a non-atomic commit leaves after a mid-write
// crash or silent tail loss), and staging objects (in-flight or crashed
// writes that were never published; restore never reads them, so they are
// harmless). The target must be available.
func Audit(t storage.Target) (intact, torn, staging int) {
	for _, name := range t.List() {
		if storage.IsStaging(name) {
			staging++
			continue
		}
		data, err := t.ReadObject(name, nil)
		if err != nil {
			torn++
			continue
		}
		if _, err := Decode(data); err != nil {
			torn++
		} else {
			intact++
		}
	}
	return intact, torn, staging
}
