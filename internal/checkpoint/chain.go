package checkpoint

import (
	"sort"

	"repro/internal/simos/mem"
)

// CarryTracker wraps a Tracker for callers whose captures can fail after
// collection. A Tracker's Collect clears its dirty set, so a delta whose
// publish then fails (storage fault, fencing) would silently swallow
// those ranges: the next delta only covers writes since the failed
// collection, and the chain restores with a hole. CarryTracker keeps
// every collected-but-unacknowledged range pending and folds it into the
// next Collect; Commit marks the last collection durable and drops the
// pending set.
//
// Carrying is a superset, never a hole: a pending range re-ships page
// contents the chain may already hold, which is redundant but safe.
type CarryTracker struct {
	inner   Tracker
	pending []Range
}

// NewCarryTracker wraps t. The caller must Commit after each collection
// whose capture was durably published.
func NewCarryTracker(t Tracker) *CarryTracker { return &CarryTracker{inner: t} }

// Name implements Tracker.
func (t *CarryTracker) Name() string { return t.inner.Name() }

// Granularity implements Tracker.
func (t *CarryTracker) Granularity() int { return t.inner.Granularity() }

// Arm implements Tracker.
func (t *CarryTracker) Arm() error { return t.inner.Arm() }

// Collect returns the inner tracker's ranges merged with any pending
// ranges from earlier uncommitted collections, and holds the union
// pending until Commit.
func (t *CarryTracker) Collect() ([]Range, error) {
	rs, err := t.inner.Collect()
	if err != nil {
		return nil, err
	}
	rs = mergeRanges(rs, t.pending)
	t.pending = rs
	return rs, nil
}

// Commit records that the last collection's capture is durable: the
// pending ranges are covered by the chain and need not be carried.
func (t *CarryTracker) Commit() { t.pending = nil }

// Stats implements Tracker.
func (t *CarryTracker) Stats() TrackerStats { return t.inner.Stats() }

// Close implements Tracker.
func (t *CarryTracker) Close() {
	t.pending = nil
	t.inner.Close()
}

// mergeRanges returns the union of two page-granular range sets as
// sorted, coalesced, non-overlapping, non-empty ranges (the shape
// Capture expects). It coalesces intervals directly — the earlier
// implementation expanded every range to individual page numbers first,
// an O(bytes/page) allocation that made carrying a large failed delta
// (exactly the storage-fault retry path) far more expensive than
// shipping it.
//
// Zero-length ranges are dropped on every path: the earlier code's
// early returns passed one input through unfiltered and the merge loop
// absorbed empty ranges adjacent to real ones while keeping standalone
// ones, so whether an empty range survived depended on what it happened
// to sit next to. A surviving empty range became an empty image extent,
// which Verify rejects and the replay planner silently skips — the same
// chain accepted or refused depending on merge order.
func mergeRanges(a, b []Range) []Range {
	rs := make([]Range, 0, len(a)+len(b))
	for _, r := range a {
		if r.Length > 0 {
			rs = append(rs, r)
		}
	}
	for _, r := range b {
		if r.Length > 0 {
			rs = append(rs, r)
		}
	}
	if len(rs) == 0 {
		return nil
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Addr < rs[j].Addr })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		lastEnd := last.Addr + mem.Addr(last.Length)
		if r.Addr <= lastEnd {
			if end := r.Addr + mem.Addr(r.Length); end > lastEnd {
				last.Length += int(end - lastEnd)
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
