package checkpoint

import (
	"reflect"
	"testing"

	"repro/internal/simos/mem"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestFoldChainEquivalence: restoring the folded image must be
// byte-identical to replaying the chain it replaces, and the fold must
// keep the leaf's object identity so children and chain walks are
// unaffected.
func TestFoldChainEquivalence(t *testing.T) {
	remote, leaf := buildTestChain(t)
	chain, err := LoadChain(remote, storage.NopEnv(), leaf)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d, want 3", len(chain))
	}
	folded, err := FoldChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Mode != ModeFull || folded.Parent != "" {
		t.Fatalf("folded image Mode=%v Parent=%q, want full/orphan", folded.Mode, folded.Parent)
	}
	if folded.ObjectName() != chain[len(chain)-1].ObjectName() {
		t.Fatalf("folded name %s != leaf name %s", folded.ObjectName(), chain[len(chain)-1].ObjectName())
	}

	prog := workload.Sparse{MiB: 2, WriteFrac: 0.15, Seed: 42}
	viaChain := newMachine("via-chain", prog)
	p1, err := Restore(viaChain, chain, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaFold := newMachine("via-fold", prog)
	p2, err := Restore(viaFold, []*Image{folded}, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c1, c2 := p1.AS.Checksum(), p2.AS.Checksum(); c1 != c2 {
		t.Fatalf("folded restore checksum %#x != chain restore %#x", c2, c1)
	}

	// The encoded round trip used by the storage-side compactor.
	var blobs [][]byte
	for _, img := range chain {
		b, err := img.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	enc, err := FoldEncodedChain(blobs)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	viaEnc := newMachine("via-enc", prog)
	p3, err := Restore(viaEnc, []*Image{dec}, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c1, c3 := p1.AS.Checksum(), p3.AS.Checksum(); c1 != c3 {
		t.Fatalf("encoded-fold restore checksum %#x != chain restore %#x", c3, c1)
	}
}

// TestFoldChainCoalescesExtents: page-granular deltas over contiguous
// pages must fold back into one long extent, not one extent per page.
func TestFoldChainCoalescesExtents(t *testing.T) {
	page := func(fill byte) []byte {
		b := make([]byte, mem.PageSize)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	full := &Image{
		Mode: ModeFull, PID: 1, Seq: 1, Exe: "x",
		Threads: []ThreadRecord{{TID: 1}},
		VMAs: []VMASection{{Start: 0x1000, Length: 0x3000, Kind: mem.KindHeap,
			Extents: []Extent{{Addr: 0x1000, Data: page(1)}, {Addr: 0x2000, Data: page(2)}}}},
	}
	delta := &Image{
		Mode: ModeIncremental, PID: 1, Seq: 2, Exe: "x", Parent: full.ObjectName(),
		Threads: []ThreadRecord{{TID: 1}},
		VMAs: []VMASection{{Start: 0x1000, Length: 0x3000, Kind: mem.KindHeap,
			Extents: []Extent{{Addr: 0x2000, Data: page(3)}, {Addr: 0x3000, Data: page(4)}}}},
	}
	folded, err := FoldChain([]*Image{full, delta})
	if err != nil {
		t.Fatal(err)
	}
	if len(folded.VMAs) != 1 || len(folded.VMAs[0].Extents) != 1 {
		t.Fatalf("folded extents = %d, want 1 coalesced run", len(folded.VMAs[0].Extents))
	}
	e := folded.VMAs[0].Extents[0]
	if e.Addr != 0x1000 || len(e.Data) != 3*mem.PageSize {
		t.Fatalf("folded extent [%#x,+%d), want [0x1000,+%d)", uint64(e.Addr), len(e.Data), 3*mem.PageSize)
	}
	if e.Data[0] != 1 || e.Data[mem.PageSize] != 3 || e.Data[2*mem.PageSize] != 4 {
		t.Fatal("folded contents are not last-writer-wins")
	}
}

// TestFoldChainRejectsBrokenChain: folding goes through VerifyChain.
func TestFoldChainRejectsBrokenChain(t *testing.T) {
	full := &Image{Mode: ModeFull, PID: 1, Seq: 1, Exe: "x"}
	stranger := &Image{Mode: ModeIncremental, PID: 1, Seq: 5, Parent: "ckpt/pid1/seq4", Exe: "x"}
	if _, err := FoldChain([]*Image{full, stranger}); err == nil {
		t.Fatal("fold of a broken chain succeeded")
	}
	if _, err := FoldChain(nil); err == nil {
		t.Fatal("fold of an empty chain succeeded")
	}
}

// TestMergeRangesContainment covers the interval-coalescing rewrite on
// shapes the page-expansion implementation handled implicitly: exact
// duplicates, full containment, and sub-page range lengths.
func TestMergeRangesContainment(t *testing.T) {
	pg := func(n int) mem.Addr { return mem.Addr(n * mem.PageSize) }
	a := []Range{{Addr: pg(1), Length: 4 * mem.PageSize}}
	b := []Range{
		{Addr: pg(2), Length: mem.PageSize},     // contained
		{Addr: pg(1), Length: 4 * mem.PageSize}, // duplicate
	}
	got := mergeRanges(a, b)
	want := []Range{{Addr: pg(1), Length: 4 * mem.PageSize}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeRanges = %v, want %v", got, want)
	}
	// Adjacent-but-not-overlapping coalesces too.
	got = mergeRanges([]Range{{Addr: pg(1), Length: mem.PageSize}},
		[]Range{{Addr: pg(2), Length: mem.PageSize}})
	want = []Range{{Addr: pg(1), Length: 2 * mem.PageSize}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adjacent mergeRanges = %v, want %v", got, want)
	}
}
