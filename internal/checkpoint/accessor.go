package checkpoint

import (
	"repro/internal/simos/fs"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
)

// Accessor abstracts how process state is extracted. The two
// implementations embody the paper's central contrast:
//
//   - KernelAccessor reads the kernel's own data structures directly
//     ("in kernel space every data structure relevant to a process's state
//     is readily accessible", §4.1);
//   - UserAccessor extracts the same information through system calls
//     (sbrk(0), lseek, sigpending, /proc/self/maps), paying the
//     user↔kernel crossing for every item (§3), and simply cannot reach
//     kernel-persistent state (sockets, shm, deleted-file inodes).
type Accessor interface {
	// Source labels the accessor for stats ("kernel" or "syscall").
	Source() string
	// Process returns the target process.
	Process() *proc.Process
	// Threads captures all thread register files.
	Threads() []ThreadRecord
	// Brk returns the heap break.
	Brk() mem.Addr
	// VMAs returns the target's memory map.
	VMAs() []*mem.VMA
	// ReadRange copies memory contents into buf.
	ReadRange(addr mem.Addr, buf []byte) error
	// FDs captures the descriptor table.
	FDs() []FDRecord
	// SignalState captures dispositions, pending, and blocked sets, plus
	// live handler pointers for same-simulation restores.
	SignalState() (disps []SigDispRecord, pending, blocked []sig.Signal, handlers map[sig.Signal]*sig.Handler)
	// KernelState reports whether sockets/shm/deleted-inodes are reachable.
	KernelState() bool
}

// ParallelReader is implemented by accessors whose memory reads may be
// issued from worker goroutines once the copy cost is billed up-front.
// UserAccessor deliberately does not implement it: a user-level
// checkpointer reads through syscalls in its own context, so its capture
// stays sequential even when the request asks for parallelism — the
// kernel-level advantage the paper's §4.1 describes, restated for
// multicore capture.
type ParallelReader interface {
	// PrepareParallelRead bills the cost of reading total payload bytes
	// with workers concurrent readers and returns a read function that is
	// safe for concurrent use and performs no further accounting.
	PrepareParallelRead(total, workers int) func(addr mem.Addr, buf []byte) error
}

// parallelWorkerOverhead is the simulated fork/join cost charged per
// worker of a sharded capture (thread wake + join handshake).
const parallelWorkerOverhead = 500 * simtime.Nanosecond

func signalRecords(st *sig.State) (disps []SigDispRecord, handlers map[sig.Signal]*sig.Handler) {
	handlers = make(map[sig.Signal]*sig.Handler)
	for _, h := range st.Handlers() {
		disps = append(disps, SigDispRecord{
			Sig:          h.Sig,
			Kind:         DispHandler,
			HandlerName:  h.H.Name,
			NonReentrant: h.H.UsesNonReentrant,
		})
		handlers[h.Sig] = h.H
	}
	return disps, handlers
}

// KernelAccessor extracts state with direct kernel access, charging only
// per-page walk and memcpy costs.
type KernelAccessor struct {
	K *kernel.Kernel
	P *proc.Process
}

// Source implements Accessor.
func (a *KernelAccessor) Source() string { return "kernel" }

// Process implements Accessor.
func (a *KernelAccessor) Process() *proc.Process { return a.P }

// Threads implements Accessor.
func (a *KernelAccessor) Threads() []ThreadRecord {
	out := make([]ThreadRecord, 0, len(a.P.Threads))
	for _, t := range a.P.Threads {
		out = append(out, ThreadRecord{TID: t.TID, Regs: t.Regs})
	}
	return out
}

// Brk implements Accessor.
func (a *KernelAccessor) Brk() mem.Addr { return a.P.AS.Brk() }

// VMAs implements Accessor.
func (a *KernelAccessor) VMAs() []*mem.VMA {
	vmas := a.P.AS.VMAs()
	a.K.Charge(simtime.Duration(len(vmas))*a.K.CM.MemTouchPerPage, "walk-vmas")
	return vmas
}

// ReadRange implements Accessor. The kernel reads through the page tables
// directly; it must have the right address space loaded (TLB accounting).
func (a *KernelAccessor) ReadRange(addr mem.Addr, buf []byte) error {
	a.K.EnsureAS(a.P)
	a.K.Charge(a.K.CM.MemCopy(len(buf)), "kcopy")
	return a.P.AS.ReadDirect(addr, buf)
}

// PrepareParallelRead implements ParallelReader. The kernel loads the
// address space and bills the whole sharded copy up-front — the
// parallelizable cost divided across workers plus a per-worker fork/join
// charge — from the capturing goroutine, because the simulated clock is
// single-threaded. The returned reader goes straight through the page
// tables (a pure read) and is safe from worker goroutines.
func (a *KernelAccessor) PrepareParallelRead(total, workers int) func(addr mem.Addr, buf []byte) error {
	if workers < 1 {
		workers = 1
	}
	a.K.EnsureAS(a.P)
	cost := a.K.CM.MemCopy(total)/simtime.Duration(workers) +
		simtime.Duration(workers)*parallelWorkerOverhead
	a.K.Charge(cost, "kcopy-par")
	return a.P.AS.ReadDirect
}

// FDs implements Accessor: the kernel reaches the inode of deleted files,
// so their contents travel with the image (UCLiK).
func (a *KernelAccessor) FDs() []FDRecord {
	var out []FDRecord
	for _, fi := range a.P.FDs() {
		rec := FDRecord{FD: fi.FD, Path: fi.Path, Flags: fi.Flags, Offset: fi.Offset, Deleted: fi.Deleted}
		if fi.Deleted {
			if of, err := a.P.FD(fi.FD); err == nil && of.Node.Kind == fs.KindRegular {
				rec.Contents = of.Node.Inode().Snapshot()
				a.K.Charge(a.K.CM.MemCopy(len(rec.Contents)), "kcopy")
			}
		}
		out = append(out, rec)
	}
	return out
}

// SignalState implements Accessor.
func (a *KernelAccessor) SignalState() ([]SigDispRecord, []sig.Signal, []sig.Signal, map[sig.Signal]*sig.Handler) {
	disps, handlers := signalRecords(a.P.Sig)
	return disps, a.P.Sig.Pending(), a.P.Sig.BlockedSet(), handlers
}

// KernelState implements Accessor.
func (a *KernelAccessor) KernelState() bool { return true }

// UserAccessor extracts state from inside the process, through system
// calls only. It can only run in the context of the checkpointed process
// itself (a signal handler or a library call), which is why user-level
// mechanisms are structured that way.
type UserAccessor struct {
	Ctx *kernel.Context
}

// Source implements Accessor.
func (a *UserAccessor) Source() string { return "syscall" }

// Process implements Accessor.
func (a *UserAccessor) Process() *proc.Process { return a.Ctx.P }

// Threads implements Accessor: a user-level checkpointer walks its own
// thread list (libtckpt), paying a syscall per thread to collect contexts.
func (a *UserAccessor) Threads() []ThreadRecord {
	out := make([]ThreadRecord, 0, len(a.Ctx.P.Threads))
	for _, t := range a.Ctx.P.Threads {
		a.Ctx.Yield() // getcontext-class call per thread
		out = append(out, ThreadRecord{TID: t.TID, Regs: t.Regs})
	}
	return out
}

// Brk implements Accessor via sbrk(0).
func (a *UserAccessor) Brk() mem.Addr {
	b, _ := a.Ctx.Sbrk(0)
	return b
}

// VMAs implements Accessor by parsing /proc/self/maps.
func (a *UserAccessor) VMAs() []*mem.VMA { return a.Ctx.Maps() }

// ReadRange implements Accessor: the process reads its own memory (no
// kernel crossing, but ordinary protection applies).
func (a *UserAccessor) ReadRange(addr mem.Addr, buf []byte) error {
	return a.Ctx.Load(addr, buf)
}

// FDs implements Accessor: one lseek per descriptor; deleted-file contents
// are unreachable from user level.
func (a *UserAccessor) FDs() []FDRecord {
	var out []FDRecord
	for _, fi := range a.Ctx.P.FDs() {
		if _, err := a.Ctx.SeekCur(fi.FD); err != nil {
			continue
		}
		out = append(out, FDRecord{FD: fi.FD, Path: fi.Path, Flags: fi.Flags, Offset: fi.Offset, Deleted: fi.Deleted})
	}
	return out
}

// SignalState implements Accessor: sigpending() for the pending set and
// one sigaction query per handler.
func (a *UserAccessor) SignalState() ([]SigDispRecord, []sig.Signal, []sig.Signal, map[sig.Signal]*sig.Handler) {
	pending := a.Ctx.SigPending()
	disps, handlers := signalRecords(a.Ctx.P.Sig)
	for range disps {
		a.Ctx.Yield() // sigaction query per installed handler
	}
	return disps, pending, a.Ctx.P.Sig.BlockedSet(), handlers
}

// KernelState implements Accessor: user level cannot reach it (§3).
func (a *UserAccessor) KernelState() bool { return false }

// CaptureKernelExtras records sockets and shared memory into img; only
// meaningful for accessors with kernel access and mechanisms that
// virtualize (ZAP).
func CaptureKernelExtras(k *kernel.Kernel, p *proc.Process, img *Image) {
	for _, s := range k.Sockets(p.PID) {
		img.Sockets = append(img.Sockets, SocketRecord{ID: s.ID, Peer: s.Peer})
	}
	for _, v := range p.AS.VMAs() {
		if v.Kind != mem.KindShared {
			continue
		}
		key := v.Name
		if len(key) > 4 && key[:4] == "shm:" {
			key = key[4:]
		}
		if data, ok := k.ShmData(key); ok {
			if img.Shm == nil {
				img.Shm = make(map[string][]byte)
			}
			img.Shm[key] = data
		}
	}
}

// ensure interface compliance
var (
	_ Accessor = (*KernelAccessor)(nil)
	_ Accessor = (*UserAccessor)(nil)
)
