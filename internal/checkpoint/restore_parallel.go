// Parallel chain replay. Restore latency is the user-visible downtime
// checkpointing exists to bound, and the sequential extent loop made it
// ~190x slower than a sharded capture of the same state. The planner
// here resolves a whole chain into per-page write jobs up front —
// last-writer-wins computed before any byte moves — so a worker pool can
// apply pages concurrently without ever racing on overlapping extents:
// a page belongs to exactly one job, a job applies its spans in chain
// order, and jobs touch disjoint buffers. Restored memory is therefore
// byte-identical at any worker count, mirroring the parallel capture
// path's guarantee from the other direction.

package checkpoint

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/simos/mem"
	"repro/internal/simtime"
)

// pageSpan is one extent fragment destined for a single page. data
// aliases the image extent; spans are applied in chain order.
type pageSpan struct {
	off  int // byte offset within the page
	data []byte
}

// pageJob is all writes one page receives across the whole chain.
type pageJob struct {
	page  mem.PageNum
	spans []pageSpan
}

// replayPlan is a chain resolved against its leaf memory layout.
type replayPlan struct {
	jobs []pageJob
	// copied is what a replay of the plan moves; pruned counts bytes
	// dropped because a later delta fully overwrote them before any
	// worker was asked to copy them.
	copied int
	pruned int
}

// planReplay resolves chain (oldest-first, head full — the caller has
// verified this) into per-page jobs against the leaf image's layout.
// Extents whose start address is no longer mapped in the leaf are
// skipped, matching the sequential semantics; an extent that starts
// mapped but runs off the layout fails exactly like WriteDirect would.
func planReplay(chain []*Image) (replayPlan, error) {
	var plan replayPlan
	leaf := chain[len(chain)-1]
	secs := make([]VMASection, len(leaf.VMAs))
	copy(secs, leaf.VMAs)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Start < secs[j].Start })
	mapped := func(a mem.Addr) bool {
		i := sort.Search(len(secs), func(i int) bool { return secs[i].Start+mem.Addr(secs[i].Length) > a })
		return i < len(secs) && a >= secs[i].Start
	}

	byPage := make(map[mem.PageNum]*pageJob)
	for _, img := range chain {
		for _, v := range img.VMAs {
			for _, e := range v.Extents {
				if len(e.Data) == 0 {
					// Empty extents contribute no bytes. Skipping them
					// explicitly (rather than letting the span loop fall
					// through) keeps the planner consistent with
					// mergeRanges, which now drops zero-length ranges on
					// every path, and with Verify, which rejects them.
					continue
				}
				if !mapped(e.Addr) {
					continue // VMA unmapped since this delta: stale data
				}
				for off := 0; off < len(e.Data); {
					a := e.Addr + mem.Addr(off)
					if !mapped(a) {
						return plan, fmt.Errorf("checkpoint: restore extent %#x: %w",
							uint64(e.Addr), &mem.Fault{Addr: a, Access: mem.AccessWrite})
					}
					n := mem.PageSize - a.Offset()
					if rem := len(e.Data) - off; n > rem {
						n = rem
					}
					pn := a.Page()
					j := byPage[pn]
					if j == nil {
						j = &pageJob{page: pn}
						byPage[pn] = j
					}
					j.spans = append(j.spans, pageSpan{off: a.Offset(), data: e.Data[off : off+n]})
					off += n
				}
			}
		}
	}

	plan.jobs = make([]pageJob, 0, len(byPage))
	for _, j := range byPage {
		pruned := pruneSpans(j)
		plan.pruned += pruned
		for _, s := range j.spans {
			plan.copied += len(s.data)
		}
		plan.jobs = append(plan.jobs, *j)
	}
	sort.Slice(plan.jobs, func(i, j int) bool { return plan.jobs[i].page < plan.jobs[j].page })
	return plan, nil
}

// pruneSpans drops spans wholly covered by later spans of the same page
// (last writer wins, so they could never contribute a byte), returning
// the byte count dropped. Partially covered spans are kept whole:
// in-order application resolves the overlap, pruning is only the
// optimization for the common full-page-overwrite case.
func pruneSpans(j *pageJob) int {
	if len(j.spans) < 2 {
		return 0
	}
	type iv struct{ lo, hi int }
	var covered []iv
	keep := make([]bool, len(j.spans))
	pruned := 0
	for i := len(j.spans) - 1; i >= 0; i-- {
		s := j.spans[i]
		lo, hi := s.off, s.off+len(s.data)
		hidden := false
		for _, c := range covered {
			if c.lo <= lo && hi <= c.hi {
				hidden = true
				break
			}
		}
		if hidden {
			pruned += len(s.data)
			continue
		}
		keep[i] = true
		// Merge [lo,hi) into the covered set.
		merged := iv{lo, hi}
		out := covered[:0]
		for _, c := range covered {
			if c.hi < merged.lo || c.lo > merged.hi {
				out = append(out, c)
				continue
			}
			if c.lo < merged.lo {
				merged.lo = c.lo
			}
			if c.hi > merged.hi {
				merged.hi = c.hi
			}
		}
		covered = append(out, merged)
	}
	kept := j.spans[:0]
	for i, s := range j.spans {
		if keep[i] {
			kept = append(kept, s)
		}
	}
	j.spans = kept
	return pruned
}

// applyPlan writes every job's spans into the address space. Pages are
// materialized sequentially first — the address space's page maps and
// version clock are not goroutine-safe — and only the byte copies into
// the resulting disjoint buffers fan out across the pool. The simulated
// cost is billed by the caller; goroutines here only move bytes, like
// the capture path's fillExtentsParallel.
func applyPlan(as *mem.AddressSpace, plan *replayPlan, workers int) error {
	bufs := make([][]byte, len(plan.jobs))
	for i := range plan.jobs {
		buf, err := as.PageBuffer(plan.jobs[i].page)
		if err != nil {
			return fmt.Errorf("checkpoint: restore page %#x: %w", uint64(plan.jobs[i].page.Base()), err)
		}
		bufs[i] = buf
	}
	if workers > len(plan.jobs) {
		workers = len(plan.jobs)
	}
	if workers <= 1 {
		for i := range plan.jobs {
			applySpans(bufs[i], plan.jobs[i].spans)
		}
		return nil
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(plan.jobs) {
					return
				}
				applySpans(bufs[i], plan.jobs[i].spans)
			}
		}()
	}
	wg.Wait()
	return nil
}

// applySpans replays one page's writes in chain order.
func applySpans(buf []byte, spans []pageSpan) {
	for _, s := range spans {
		copy(buf[s.off:], s.data)
	}
}

// RestoreCost estimates the simulated time to copy n replayed bytes back
// into memory with a workers-wide pool — the restore-side mirror of
// EncodeCost, exported for orchestration layers that model recovery
// latency (the supervisor's restore.latency histogram).
func RestoreCost(n, workers int) simtime.Duration { return encodeCost(n, workers) }

// ReplayBytes returns the bytes a restore of chain will actually copy
// after per-page last-writer-wins pruning. The chain must begin with a
// full image.
func ReplayBytes(chain []*Image) (int, error) {
	if len(chain) == 0 {
		return 0, nil
	}
	plan, err := planReplay(chain)
	if err != nil {
		return 0, err
	}
	return plan.copied, nil
}
