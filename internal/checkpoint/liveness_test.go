package checkpoint

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// stepDriver drives a workload by direct Step calls so twin runs see
// byte-identical access sequences between collections (the clock plays
// no role in what is written when).
type stepDriver struct {
	t    *testing.T
	prog kernel.Program
	k    *kernel.Kernel
	p    *proc.Process
	ctx  *kernel.Context
}

func newStepDriver(t *testing.T, name string, prog kernel.Program, iters uint64) *stepDriver {
	t.Helper()
	k := newMachine(name, prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	return &stepDriver{t: t, prog: prog, k: k, p: p,
		ctx: &kernel.Context{K: k, P: p, T: p.MainThread()}}
}

func (d *stepDriver) stepIters(n uint64) {
	d.t.Helper()
	target := d.p.Regs().PC + n
	for d.p.Regs().PC < target && d.p.State != proc.StateZombie {
		if _, err := d.prog.Step(d.ctx); err != nil {
			d.t.Fatal(err)
		}
	}
	if d.p.State == proc.StateZombie {
		d.t.Fatal("workload finished mid-epoch")
	}
}

// captureEpoch takes one capture through trk and returns the image.
func (d *stepDriver) captureEpoch(trk Tracker, seq uint64, parent string, workers int) *Image {
	d.t.Helper()
	img, _, err := Capture(Request{
		Acc:         &KernelAccessor{K: d.k, P: d.p},
		Trk:         trk,
		Mechanism:   "liveness-test",
		Hostname:    "src",
		Seq:         seq,
		Parent:      parent,
		Now:         d.k.Now(),
		Parallelism: workers,
	})
	if err != nil {
		d.t.Fatal(err)
	}
	return img
}

func pageSetOf(rs []Range) map[mem.PageNum]bool {
	s := make(map[mem.PageNum]bool)
	for _, r := range rs {
		for a := r.Addr; a < r.Addr+mem.Addr(r.Length); a += mem.PageSize {
			s[a.Page()] = true
		}
	}
	return s
}

// TestLivenessTrackerExcludesDeadPages: a write-only workload (Sparse
// never reads its arena) is the canonical dead-page regime — after the
// dead streak matures, overwritten-before-read pages leave the delta.
func TestLivenessTrackerExcludesDeadPages(t *testing.T) {
	run := func(live bool) (deltaBytes int, excluded uint64) {
		d := newStepDriver(t, "src", workload.Sparse{MiB: 2, WriteFrac: 0.3, Seed: 21}, 1<<30)
		d.stepIters(1)
		var trk Tracker
		if live {
			trk = NewKernelLivenessTracker(d.k, d.p, DefaultDeadStreak)
		} else {
			trk = NewKernelWPTracker(d.k, d.p)
		}
		if err := trk.Arm(); err != nil {
			t.Fatal(err)
		}
		defer trk.Close()
		if _, err := trk.Collect(); err != nil { // discard the full epoch
			t.Fatal(err)
		}
		for epoch := 0; epoch < 5; epoch++ {
			d.stepIters(1)
			rs, err := trk.Collect()
			if err != nil {
				t.Fatal(err)
			}
			deltaBytes += rangeBytes(rs)
		}
		return deltaBytes, trk.Stats().ExcludedBytes
	}
	liveBytes, excluded := run(true)
	allBytes, baseExcluded := run(false)
	if baseExcluded != 0 {
		t.Fatalf("plain WP tracker reported %d excluded bytes", baseExcluded)
	}
	if excluded == 0 {
		t.Fatal("liveness tracker excluded nothing on a write-only workload")
	}
	if liveBytes >= allBytes {
		t.Fatalf("liveness deltas %d bytes not below tracker baseline %d", liveBytes, allBytes)
	}
	t.Logf("delta bytes: liveness %d vs baseline %d (excluded %d)", liveBytes, allBytes, excluded)
}

// TestLivenessTrackerProtectsAlternatingReads: the stencil reads one
// grid while writing the other, so every page alternates written-then-
// read across epochs. With the default dead streak of 2 no page may
// ever be excluded — an exclusion here would corrupt the next epoch's
// reads after a restore.
func TestLivenessTrackerProtectsAlternatingReads(t *testing.T) {
	d := newStepDriver(t, "src", workload.Stencil{MiB: 2}, 1<<30)
	d.stepIters(2) // populate both grids
	trk := NewKernelLivenessTracker(d.k, d.p, DefaultDeadStreak)
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	if _, err := trk.Collect(); err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 6; epoch++ {
		d.stepIters(1)
		if _, err := trk.Collect(); err != nil {
			t.Fatal(err)
		}
		if ex := trk.LastExcluded(); len(ex) != 0 {
			t.Fatalf("epoch %d excluded %d ranges from an alternating-read workload", epoch, len(ex))
		}
	}
	if got := trk.Stats().ExcludedBytes; got != 0 {
		t.Fatalf("ExcludedBytes = %d on stencil, want 0", got)
	}
}

// TestLivenessRestoreEquivalenceTable is the correctness table the
// content policy stands on: for every tracker kind × capture
// parallelism × workload, a delta chain captured with liveness
// exclusion must restore the live state byte-identically to the
// exclusion-free chain captured from an identical twin run — only
// pages the tracker explicitly declared dead may differ — and the
// restored process must run to the same fingerprint as an undisturbed
// reference.
func TestLivenessRestoreEquivalenceTable(t *testing.T) {
	const iters = 14
	const baseAt = 2
	const epochs = 5

	workloads := []kernel.Program{
		workload.Sparse{MiB: 2, WriteFrac: 0.3, Seed: 9},
		workload.Stencil{MiB: 2},
		workload.Phased{MiB: 1, Seed: 4},
	}
	kinds := []string{"kernel", "user"}
	widths := []int{1, 4}

	for _, prog := range workloads {
		want := referenceRun(t, prog, iters)
		for _, kind := range kinds {
			for _, width := range widths {
				name := fmt.Sprintf("%s/%s/w%d", prog.Name(), kind, width)
				t.Run(name, func(t *testing.T) {
					// Filtered run: liveness tracker.
					df := newStepDriver(t, "flt", prog, iters)
					df.stepIters(baseAt)
					var ftrk Tracker
					var lv *LivenessTracker
					if kind == "kernel" {
						lv = NewKernelLivenessTracker(df.k, df.p, DefaultDeadStreak)
					} else {
						lv = NewUserLivenessTracker(df.ctx, DefaultDeadStreak)
					}
					ftrk = lv
					if err := ftrk.Arm(); err != nil {
						t.Fatal(err)
					}
					defer ftrk.Close()

					// Baseline twin: identical schedule, plain WP tracker.
					db := newStepDriver(t, "all", prog, iters)
					db.stepIters(baseAt)
					btrk := NewKernelWPTracker(db.k, db.p)
					if err := btrk.Arm(); err != nil {
						t.Fatal(err)
					}
					defer btrk.Close()

					fchain := []*Image{df.captureEpoch(ftrk, 1, "", width)}
					bchain := []*Image{db.captureEpoch(btrk, 1, "", width)}
					excludedEver := make(map[mem.PageNum]bool)
					for e := 0; e < epochs; e++ {
						df.stepIters(1)
						db.stepIters(1)
						fchain = append(fchain, df.captureEpoch(ftrk, uint64(e+2), fchain[len(fchain)-1].ObjectName(), width))
						bchain = append(bchain, db.captureEpoch(btrk, uint64(e+2), bchain[len(bchain)-1].ObjectName(), width))
						for pn := range pageSetOf(lv.LastExcluded()) {
							excludedEver[pn] = true
						}
					}

					// Restore both chains on fresh machines.
					mf := newMachine("dst-flt", prog)
					pf, err := Restore(mf, fchain, RestoreOptions{Enqueue: true})
					if err != nil {
						t.Fatal(err)
					}
					mb := newMachine("dst-all", prog)
					pb, err := Restore(mb, bchain, RestoreOptions{Enqueue: true})
					if err != nil {
						t.Fatal(err)
					}

					// Live state byte-identity: every arena page outside the
					// declared-dead set must match the exclusion-free restore.
					arena := pf.AS.FindByName(workload.ArenaName)
					if arena == nil {
						t.Fatal("restored process has no arena")
					}
					bufF := make([]byte, mem.PageSize)
					bufB := make([]byte, mem.PageSize)
					diffs := 0
					for off := uint64(0); off < arena.Length; off += mem.PageSize {
						addr := arena.Start + mem.Addr(off)
						if excludedEver[addr.Page()] {
							continue
						}
						if err := pf.AS.ReadDirect(addr, bufF); err != nil {
							t.Fatal(err)
						}
						if err := pb.AS.ReadDirect(addr, bufB); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(bufF, bufB) {
							diffs++
						}
					}
					if diffs != 0 {
						t.Fatalf("%d live pages differ between liveness and exclusion-free restores", diffs)
					}

					// Payload discipline: the filtered chain never ships more
					// than the baseline.
					fb, bb := 0, 0
					for _, img := range fchain {
						fb += img.PayloadBytes()
					}
					for _, img := range bchain {
						bb += img.PayloadBytes()
					}
					if fb > bb {
						t.Fatalf("liveness chain %d bytes exceeds baseline %d", fb, bb)
					}

					// End-to-end: both restores must finish with the
					// reference fingerprint (dead pages are overwritten
					// before any read, so stale restored content is
					// unobservable by construction).
					if !mf.RunUntilExit(pf, mf.Now().Add(10*simtime.Minute)) {
						t.Fatal("liveness restore did not finish")
					}
					if !mb.RunUntilExit(pb, mb.Now().Add(10*simtime.Minute)) {
						t.Fatal("baseline restore did not finish")
					}
					if got := workload.Fingerprint(pf); got != want {
						t.Fatalf("liveness restore fingerprint %#x != reference %#x", got, want)
					}
					if got := workload.Fingerprint(pb); got != want {
						t.Fatalf("baseline restore fingerprint %#x != reference %#x", got, want)
					}
				})
			}
		}
	}
}
