package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/workload"
)

// stoppedProc runs a Dense workload long enough to fault in its arena,
// then stops it for a consistent capture.
func stoppedProc(t *testing.T, mib int) (*kernel.Kernel, *proc.Process) {
	t.Helper()
	prog := workload.Dense{MiB: mib}
	k := newMachine("src", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, 1<<20)
	k.RunFor(20 * simtime.Millisecond)
	k.Stop(p)
	return k, p
}

// TestShardedCaptureDigestIdentical is the acceptance check that
// parallelism is invisible in the artifact: the stored image bytes of a
// 4-worker capture equal the sequential capture's, trailer and all.
func TestShardedCaptureDigestIdentical(t *testing.T) {
	k, p := stoppedProc(t, 4)
	now := k.Now()
	seqTgt := storage.NewMemory("seq", nil)
	parTgt := storage.NewMemory("par", nil)

	imgSeq, stSeq, err := Capture(Request{
		Acc: &KernelAccessor{K: k, P: p}, Target: seqTgt, Env: storage.NopEnv(),
		Mechanism: "test", Hostname: "src", Seq: 1, Now: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	imgPar, stPar, err := Capture(Request{
		Acc: &KernelAccessor{K: k, P: p}, Target: parTgt, Env: storage.NopEnv(),
		Mechanism: "test", Hostname: "src", Seq: 1, Now: now, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stSeq.Workers != 1 || stPar.Workers != 4 {
		t.Fatalf("workers = %d/%d, want 1/4", stSeq.Workers, stPar.Workers)
	}
	if stSeq.PayloadBytes != stPar.PayloadBytes || stSeq.PayloadBytes == 0 {
		t.Fatalf("payload bytes differ: %d vs %d", stSeq.PayloadBytes, stPar.PayloadBytes)
	}
	bSeq, err := seqTgt.ReadObject(imgSeq.ObjectName(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bPar, err := parTgt.ReadObject(imgPar.ObjectName(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bSeq, bPar) {
		t.Fatalf("sharded capture bytes differ from sequential (%d vs %d bytes)", len(bPar), len(bSeq))
	}
}

// TestShardedCaptureSpeedup pins the simulated-time model: reading the
// payload with 4 workers must cost less than half the sequential read.
func TestShardedCaptureSpeedup(t *testing.T) {
	k, p := stoppedProc(t, 8)
	captureCost := func(workers int) simtime.Duration {
		t0 := k.Now()
		_, st, err := Capture(Request{
			Acc: &KernelAccessor{K: k, P: p},
			Mechanism: "test", Hostname: "src", Seq: 1, Now: t0, Parallelism: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.PayloadBytes == 0 {
			t.Fatal("empty capture")
		}
		return k.Now().Sub(t0)
	}
	seq := captureCost(1)
	par := captureCost(4)
	if par <= 0 || seq <= 0 {
		t.Fatalf("degenerate durations: seq=%v par=%v", seq, par)
	}
	if speedup := float64(seq) / float64(par); speedup < 2 {
		t.Fatalf("4-worker speedup %.2fx < 2x (seq=%v par=%v)", speedup, seq, par)
	}
}

// TestParallelCaptureRestores closes the loop at the capture level: an
// image captured with 4 workers restores and runs to the reference
// fingerprint.
func TestParallelCaptureRestores(t *testing.T) {
	prog := workload.Dense{MiB: 2}
	const iters = 6
	want := referenceRun(t, prog, iters)

	k := newMachine("src", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	for p.Regs().PC < iters/2 && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	k.Stop(p)
	img, _, err := Capture(Request{
		Acc: &KernelAccessor{K: k, P: p},
		Mechanism: "test", Hostname: "src", Seq: 1, Now: k.Now(), Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := newMachine("dst", prog)
	p2, err := Restore(dst, []*Image{img}, RestoreOptions{Enqueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute)) {
		t.Fatal("restored process did not finish")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("fingerprint %#x != reference %#x", got, want)
	}
}

// TestUserAccessorStaysSequential: syscall-based accessors cannot shard,
// so a parallel request silently degrades to one worker.
func TestUserAccessorStaysSequential(t *testing.T) {
	k, p := stoppedProc(t, 1)
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	_, st, err := Capture(Request{
		Acc: &UserAccessor{Ctx: ctx},
		Mechanism: "libckpt", Hostname: "src", Seq: 1, Now: k.Now(), Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 {
		t.Fatalf("user-level capture used %d workers", st.Workers)
	}
}
