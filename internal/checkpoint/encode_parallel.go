// Sharded image encoding. The hot half of a checkpoint's CPU cost is
// serializing memory extents; those sections are independent byte spans
// of known size, so the encoder precomputes every span's offset in the
// final buffer, lets a worker pool encode spans in place concurrently,
// and folds the per-span CRCs in order with crc64Combine. The output is
// byte-identical to Encode — same layout, same trailer — so restore,
// corruption audits, and chain verification cannot tell the paths apart.

package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// shardTargetBytes is the preferred payload size of one encoding shard:
// big enough that fork/join bookkeeping disappears in the noise, small
// enough that a handful of large VMAs still spread across the pool.
const shardTargetBytes = 256 << 10

// encPiece is one independently encodable byte span of the image body.
type encPiece struct {
	off, size int
	vma       int  // section index
	extLo     int  // first extent of the run
	extHi     int  // one past the last extent
	header    bool // the run is preceded by the section header
	crc       uint64
}

// vmaHeaderSize returns the encoded size of a section's fixed fields.
func vmaHeaderSize(v *VMASection) int {
	return 8 + 8 + 1 + (4 + len(v.Name)) + 1 + 4
}

// extentSize returns the encoded size of one extent.
func extentSize(e *Extent) int { return 8 + 4 + len(e.Data) }

// planPieces lays out every VMA section as one or more pieces starting
// at base, splitting long extent runs at shardTargetBytes boundaries.
func (img *Image) planPieces(base int) (pieces []encPiece, total int) {
	off := base
	for i := range img.VMAs {
		v := &img.VMAs[i]
		p := encPiece{off: off, size: vmaHeaderSize(v), vma: i, header: true}
		for j := range v.Extents {
			if p.size >= shardTargetBytes {
				p.extHi = j
				pieces = append(pieces, p)
				off += p.size
				p = encPiece{off: off, vma: i, extLo: j}
			}
			p.size += extentSize(&v.Extents[j])
		}
		p.extHi = len(v.Extents)
		pieces = append(pieces, p)
		off += p.size
	}
	return pieces, off - base
}

// encodePiece writes one piece into its span of buf and records its CRC.
func (img *Image) encodePiece(p *encPiece, buf []byte) error {
	sw := &sliceWriter{buf: buf[p.off : p.off+p.size]}
	c := &cw{w: sw}
	v := &img.VMAs[p.vma]
	if p.header {
		encodeVMAHeader(c, v)
	}
	encodeExtents(c, v.Extents[p.extLo:p.extHi])
	if c.err != nil {
		return c.err
	}
	if c.n != p.size {
		return fmt.Errorf("checkpoint: piece vma=%d [%d:%d) wrote %d bytes, planned %d",
			p.vma, p.extLo, p.extHi, c.n, p.size)
	}
	p.crc = c.crc
	return nil
}

// sliceWriter writes into a fixed preallocated span; overflow is a
// planning bug, reported rather than silently clobbering a neighbour.
type sliceWriter struct {
	buf []byte
	n   int
}

func (s *sliceWriter) Write(p []byte) (int, error) {
	if s.n+len(p) > len(s.buf) {
		return 0, errors.New("checkpoint: parallel encode span overflow")
	}
	copy(s.buf[s.n:], p)
	s.n += len(p)
	return len(p), nil
}

// EncodeParallelBytes encodes the image with section payloads sharded
// across workers goroutines, returning the same bytes Encode would
// write. workers <= 1 falls back to the sequential encoder.
func (img *Image) EncodeParallelBytes(workers int) ([]byte, error) {
	if workers <= 1 {
		return img.EncodeBytes()
	}

	// Head and tail are metadata-sized; encode them sequentially.
	headW := &growWriter{}
	hc := &cw{w: headW}
	img.encodeHead(hc)
	if hc.err != nil {
		return nil, hc.err
	}
	tailW := &growWriter{}
	tc := &cw{w: tailW}
	img.encodeTail(tc)
	if tc.err != nil {
		return nil, tc.err
	}

	pieces, bodySize := img.planPieces(len(headW.buf))
	total := len(headW.buf) + bodySize + len(tailW.buf) + 8
	buf := make([]byte, total)
	copy(buf, headW.buf)
	copy(buf[len(headW.buf)+bodySize:], tailW.buf)

	if workers > len(pieces) && len(pieces) > 0 {
		workers = len(pieces)
	}
	var next int64 = -1
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(pieces) {
					return
				}
				if err := img.encodePiece(&pieces[i], buf); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Fold the span CRCs in layout order; the seed 0 is the CRC of the
	// empty prefix, so the head folds like any other span.
	crc := crc64Combine(0, hc.crc, len(headW.buf))
	for i := range pieces {
		crc = crc64Combine(crc, pieces[i].crc, pieces[i].size)
	}
	crc = crc64Combine(crc, tc.crc, tailW.n)
	binary.LittleEndian.PutUint64(buf[total-8:], crc)
	return buf, nil
}

// growWriter is an appending writer that keeps its buffer accessible.
type growWriter struct {
	buf []byte
	n   int
}

func (g *growWriter) Write(p []byte) (int, error) {
	g.buf = append(g.buf, p...)
	g.n += len(p)
	return len(p), nil
}

