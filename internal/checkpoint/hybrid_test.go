package checkpoint

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func TestHybridTrackerNarrowsDirtyPages(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("h", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	k.RunFor(2 * simtime.Millisecond)
	k.Stop(p)

	led := costmodel.NewLedger()
	trk, err := NewHybridTracker(k, p, led, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	if _, err := trk.Collect(); err != nil { // baseline epoch
		t.Fatal(err)
	}

	// Touch 8 bytes in each of two pages: a page tracker reports 8192
	// bytes; the hybrid must report exactly two 256-byte blocks.
	if err := p.AS.Write(workload.ArenaBase+100, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if err := p.AS.Write(workload.ArenaBase+5*mem.PageSize+3000, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	rs, err := trk.Collect()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rs {
		total += r.Length
	}
	if len(rs) != 2 || total != 512 {
		t.Fatalf("ranges = %+v (total %d), want two 256B blocks", rs, total)
	}
	st := trk.Stats()
	if st.Faults == 0 {
		t.Fatal("no page faults recorded (page stage inactive)")
	}
	// Only the two dirty pages were hashed this epoch — far less than the
	// resident set a pure hash tracker would scan.
	if st.HashedBytes > 600*mem.PageSize {
		t.Fatalf("hashed %d bytes, expected only dirty pages + baseline", st.HashedBytes)
	}
}

func TestHybridTrackerHashesOnlyDirtyPages(t *testing.T) {
	// Compare hash volume: pure hash tracker scans the whole resident set
	// every epoch; hybrid scans only the dirty pages.
	prog := workload.PointerChase{MiB: 4, WriteEvery: 32, Seed: 5}
	mkRun := func(useHybrid bool) uint64 {
		k := newMachine("h", prog)
		p, _ := k.Spawn(prog.Name())
		workload.SetIterations(p, 1<<40)
		k.RunFor(2 * simtime.Millisecond)
		k.Stop(p)
		var trk Tracker
		if useHybrid {
			h, err := NewHybridTracker(k, p, costmodel.Discard{}, 256)
			if err != nil {
				t.Fatal(err)
			}
			trk = h
		} else {
			h, err := NewHashTracker(&KernelAccessor{K: k, P: p}, costmodel.Discard{}, k.CM, 256, 64)
			if err != nil {
				t.Fatal(err)
			}
			trk = h
		}
		defer trk.Close()
		trk.Arm()
		trk.Collect() // baseline
		base := trk.Stats().HashedBytes
		k.Wake(p)
		k.RunFor(2 * simtime.Millisecond)
		k.Stop(p)
		trk.Collect()
		return trk.Stats().HashedBytes - base
	}
	hybrid := mkRun(true)
	pure := mkRun(false)
	if hybrid >= pure/4 {
		t.Fatalf("hybrid hashed %d bytes, pure hash %d — expected ≥4× reduction", hybrid, pure)
	}
}

func TestHybridRejectsBadBlockSize(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("h", prog)
	p, _ := k.Spawn(prog.Name())
	for _, bs := range []int{0, 100, 8192} {
		if _, err := NewHybridTracker(k, p, costmodel.Discard{}, bs); err == nil {
			t.Fatalf("block size %d accepted", bs)
		}
	}
	trk, _ := NewHybridTracker(k, p, costmodel.Discard{}, 512)
	if _, err := trk.Collect(); err == nil {
		t.Fatal("Collect before Arm succeeded")
	}
}

func TestHybridCaptureRestoreEquivalence(t *testing.T) {
	prog := workload.PointerChase{MiB: 2, WriteEvery: 16, Seed: 12}
	const iters = 6000

	// Reference.
	kr := newMachine("ref", prog)
	pr, _ := kr.Spawn(prog.Name())
	workload.SetIterations(pr, iters)
	if !kr.RunUntilExit(pr, kr.Now().Add(simtime.Minute)) {
		t.Fatal("reference stuck")
	}
	want := workload.Fingerprint(pr)

	k := newMachine("src", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, iters)
	trk, err := NewHybridTracker(k, p, costmodel.Discard{}, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer trk.Close()
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}

	var chain []*Image
	parent := ""
	for i := 0; i < 3; i++ {
		target := p.Regs().PC + iters/5
		for p.Regs().PC < target && p.State != proc.StateZombie {
			k.RunFor(simtime.Millisecond)
		}
		k.Stop(p)
		img, _, err := Capture(Request{
			Acc: &KernelAccessor{K: k, P: p}, Trk: trk,
			Mechanism: "hybrid", Hostname: "src", Seq: uint64(i + 1), Parent: parent, Now: k.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, img)
		parent = img.ObjectName()
		k.Wake(p)
	}

	dst := newMachine("dst", prog)
	p2, err := Restore(dst, chain, RestoreOptions{Enqueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(simtime.Minute)) {
		t.Fatal("restored stuck")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("hybrid-chain fingerprint %#x, want %#x", got, want)
	}
}

func TestCoalesceEquivalentToChain(t *testing.T) {
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.1, Seed: 19}
	const iters = 24

	want := referenceRun(t, prog, iters)

	k := newMachine("src", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, iters)
	trk := NewKernelWPTracker(k, p)
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()

	var chain []*Image
	parent := ""
	for i := 0; i < 4; i++ {
		target := p.Regs().PC + 4
		for p.Regs().PC < target && p.State != proc.StateZombie {
			k.RunFor(simtime.Millisecond)
		}
		k.Stop(p)
		img, _, err := Capture(Request{
			Acc: &KernelAccessor{K: k, P: p}, Trk: trk,
			Mechanism: "t", Hostname: "src", Seq: uint64(i + 1), Parent: parent, Now: k.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, img)
		parent = img.ObjectName()
		k.Wake(p)
	}

	single, err := Coalesce(chain)
	if err != nil {
		t.Fatal(err)
	}
	if single.Mode != ModeFull || single.Parent != "" {
		t.Fatalf("coalesced image mode=%v parent=%q", single.Mode, single.Parent)
	}
	if err := single.Verify(); err != nil {
		t.Fatal(err)
	}
	// The coalesced image must carry at least the leaf's payload and no
	// more than the chain total.
	chainTotal := 0
	for _, img := range chain {
		chainTotal += img.PayloadBytes()
	}
	if single.PayloadBytes() > chainTotal {
		t.Fatalf("coalesced %d bytes > chain total %d", single.PayloadBytes(), chainTotal)
	}

	// Restoring the single image = restoring the chain.
	dst := newMachine("dst", prog)
	p2, err := Restore(dst, []*Image{single}, RestoreOptions{Enqueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(simtime.Minute)) {
		t.Fatal("restored stuck")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("coalesced fingerprint %#x, want %#x", got, want)
	}
}

func TestCoalesceRejectsBrokenChain(t *testing.T) {
	if _, err := Coalesce(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	bad := validImage()
	bad.Mode = ModeIncremental
	bad.Parent = "x"
	if _, err := Coalesce([]*Image{bad}); err == nil {
		t.Fatal("incremental-head chain accepted")
	}
}
