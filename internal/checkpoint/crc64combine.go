// CRC-64 combination, the piece of algebra that lets the parallel
// encoder shard an image across workers and still emit the exact trailer
// the sequential encoder would: each worker checksums only its own byte
// span, and the spans fold left-to-right with crc64Combine instead of a
// second sequential pass over the whole payload.
//
// A CRC is linear over GF(2): CRC(A || B) can be computed from CRC(A),
// CRC(B), and len(B) alone, by advancing CRC(A) through len(B) zero
// bytes (a matrix power, built by repeated squaring of the one-zero-bit
// operator) and XORing CRC(B). The pre/post inversion Go's hash/crc64
// applies (init ^0, xorout ^0) cancels out of the identity, so the fold
// works directly on Checksum-style values. This is the classic zlib
// crc32_combine construction lifted to 64 bits.

package checkpoint

import "hash/crc64"

// gf2MatrixTimes multiplies the 64x64 GF(2) matrix mat by the bit vector
// vec.
func gf2MatrixTimes(mat *[64]uint64, vec uint64) uint64 {
	var sum uint64
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// gf2MatrixSquare sets square = mat * mat.
func gf2MatrixSquare(square, mat *[64]uint64) {
	for n := 0; n < 64; n++ {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// crc64Combine returns the CRC of the concatenation A||B given
// crc1 = CRC(A), crc2 = CRC(B), and len2 = len(B), for the table the
// image codec uses (crc64.ECMA, reflected).
func crc64Combine(crc1, crc2 uint64, len2 int) uint64 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd [64]uint64

	// odd = the operator advancing a CRC by one zero *bit* (reflected
	// polynomial in row 0, shift in the rest).
	odd[0] = crc64.ECMA
	row := uint64(1)
	for n := 1; n < 64; n++ {
		odd[n] = row
		row <<= 1
	}
	gf2MatrixSquare(&even, &odd) // two zero bits
	gf2MatrixSquare(&odd, &even) // four zero bits

	// Square up to one zero byte, then apply operators for each set bit
	// of len2, squaring as the bit weight doubles.
	n := len2
	for {
		gf2MatrixSquare(&even, &odd)
		if n&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		n >>= 1
		if n == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if n&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		n >>= 1
		if n == 0 {
			break
		}
	}
	return crc1 ^ crc2
}
