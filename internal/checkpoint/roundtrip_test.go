package checkpoint

import (
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/fs"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/workload"
)

// newMachine builds a kernel with the standard workloads registered.
func newMachine(name string, progs ...kernel.Program) *kernel.Kernel {
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return kernel.New(kernel.DefaultConfig(name), costmodel.Default2005(), reg)
}

// referenceRun executes a workload to completion and returns its final
// fingerprint.
func referenceRun(t *testing.T, prog kernel.Program, iters uint64) uint64 {
	t.Helper()
	k := newMachine("ref", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	if !k.RunUntilExit(p, k.Now().Add(10*simtime.Minute)) {
		t.Fatalf("reference run did not finish (pc=%d)", p.Regs().PC)
	}
	if p.ExitCode != 0 {
		t.Fatalf("reference run exit %d", p.ExitCode)
	}
	return workload.Fingerprint(p)
}

// captureAt runs prog on a fresh kernel until roughly the given progress,
// captures a full image with a kernel accessor, and returns it.
func captureAt(t *testing.T, prog kernel.Program, iters uint64, storeTo storage.Target) (*kernel.Kernel, *proc.Process, *Image) {
	t.Helper()
	k := newMachine("src", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	// Run to somewhere in the middle.
	for p.Regs().PC < iters/2 && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	if p.State == proc.StateZombie {
		t.Fatal("workload finished before capture")
	}
	k.Stop(p) // consistency: stop the app (§4.1)
	img, _, err := Capture(Request{
		Acc:       &KernelAccessor{K: k, P: p},
		Target:    storeTo,
		Mechanism: "test",
		Hostname:  "src",
		Seq:       1,
		Now:       k.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, p, img
}

func TestRestartEquivalenceSameKernel(t *testing.T) {
	prog := workload.Dense{MiB: 2}
	const iters = 6
	want := referenceRun(t, prog, iters)

	k, orig, img := captureAt(t, prog, iters, nil)
	// Kill the original (failure), restore, run to completion.
	k.Exit(orig, 137)
	p2, err := Restore(k, []*Image{img}, RestoreOptions{Enqueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if p2.PID == orig.PID {
		t.Fatal("restore without PreservePID reused the PID")
	}
	if !k.RunUntilExit(p2, k.Now().Add(10*simtime.Minute)) {
		t.Fatal("restored process did not finish")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("restored fingerprint %#x != reference %#x", got, want)
	}
}

func TestRestartEquivalenceAcrossMachines(t *testing.T) {
	for _, prog := range []kernel.Program{
		workload.Dense{MiB: 1},
		workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 11},
		workload.Stencil{MiB: 2},
		workload.Phased{MiB: 1, Seed: 3},
	} {
		prog := prog
		t.Run(prog.Name(), func(t *testing.T) {
			const iters = 6
			want := referenceRun(t, prog, iters)
			_, _, img := captureAt(t, prog, iters, nil)

			// "Migrate": restore on a different machine that has the same
			// executable registered.
			dst := newMachine("dst", prog)
			p2, err := Restore(dst, []*Image{img}, RestoreOptions{Enqueue: true})
			if err != nil {
				t.Fatal(err)
			}
			if !dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute)) {
				t.Fatal("migrated process did not finish")
			}
			if got := workload.Fingerprint(p2); got != want {
				t.Fatalf("migrated fingerprint %#x != reference %#x", got, want)
			}
		})
	}
}

func TestRestoreRequiresProgram(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	_, _, img := captureAt(t, prog, 6, nil)
	empty := newMachine("empty")
	if _, err := Restore(empty, []*Image{img}, RestoreOptions{}); err == nil {
		t.Fatal("restore without the executable succeeded")
	}
}

func TestRestorePreservesPID(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	_, orig, img := captureAt(t, prog, 6, nil)
	dst := newMachine("dst", prog)
	p2, err := Restore(dst, []*Image{img}, RestoreOptions{PreservePID: true})
	if err != nil {
		t.Fatal(err)
	}
	if p2.PID != orig.PID {
		t.Fatalf("pid %d, want preserved %d", p2.PID, orig.PID)
	}
	// Restoring again with the same PID on the same machine must fail.
	if _, err := Restore(dst, []*Image{img}, RestoreOptions{PreservePID: true}); err == nil {
		t.Fatal("duplicate PID restore succeeded")
	}
}

func TestIncrementalChainEquivalence(t *testing.T) {
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.15, Seed: 42}
	const iters = 12
	want := referenceRun(t, prog, iters)

	k := newMachine("src", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	cm := costmodel.Default2005()
	srv := storage.NewServer("srv", cm)
	remote := storage.NewRemote("net", srv)
	env := storage.NopEnv()

	trk := NewKernelWPTracker(k, p)
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()

	var parent string
	var seq uint64
	var sizes []int
	for ckpt := 0; ckpt < 3; ckpt++ {
		// Advance a few iterations.
		target := p.Regs().PC + 3
		for p.Regs().PC < target && p.State != proc.StateZombie {
			k.RunFor(simtime.Millisecond)
		}
		if p.State == proc.StateZombie {
			t.Fatal("finished early")
		}
		k.Stop(p)
		seq++
		img, st, err := Capture(Request{
			Acc: &KernelAccessor{K: k, P: p}, Trk: trk,
			Target: remote, Env: env,
			Mechanism: "test", Hostname: "src", Seq: seq, Parent: parent, Now: k.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
		parent = img.ObjectName()
		sizes = append(sizes, st.PayloadBytes)
		k.Wake(p)
	}
	// First capture is full-sized; later ones are deltas and smaller.
	if sizes[1] >= sizes[0] || sizes[2] >= sizes[0] {
		t.Fatalf("incremental deltas not smaller: %v", sizes)
	}

	// Restore from the chain on a fresh machine.
	chain, err := LoadChain(remote, env, parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d", len(chain))
	}
	dst := newMachine("dst", prog)
	p2, err := Restore(dst, chain, RestoreOptions{Enqueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute)) {
		t.Fatal("restored process did not finish")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("chain-restored fingerprint %#x != reference %#x", got, want)
	}
}

func TestRestoreIncrementalWithoutChainFails(t *testing.T) {
	img := &Image{Mode: ModeIncremental, Parent: "ckpt/pid1/seq1"}
	k := newMachine("k")
	if _, err := Restore(k, []*Image{img}, RestoreOptions{}); err == nil {
		t.Fatal("incremental-only restore succeeded")
	}
	if _, err := Restore(k, nil, RestoreOptions{}); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestBrokenChainRejected(t *testing.T) {
	full := &Image{Mode: ModeFull, PID: 1, Seq: 1, Exe: "x"}
	delta := &Image{Mode: ModeIncremental, PID: 1, Seq: 5, Parent: "ckpt/pid1/seq4", Exe: "x"}
	k := newMachine("k")
	_, err := Restore(k, []*Image{full, delta}, RestoreOptions{})
	if err == nil || !strings.Contains(err.Error(), "broken chain") {
		t.Fatalf("err = %v, want broken chain", err)
	}
}

func TestDeletedFileRestore(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine("src", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, 1<<20)
	k.RunFor(simtime.Millisecond)
	// Open a scratch file, read some of it, delete it.
	k.FS.WriteFile("/scratch", []byte("0123456789"))
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	fd, err := ctx.Open("/scratch", fs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	ctx.ReadFD(fd, buf)
	k.FS.Unlink("/scratch")

	k.Stop(p)
	img, _, err := Capture(Request{
		Acc: &KernelAccessor{K: k, P: p}, Mechanism: "uclik", Hostname: "src", Seq: 1, Now: k.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}

	dst := newMachine("dst", prog)
	// Without deleted-file support the restore fails outright.
	if _, err := Restore(dst, []*Image{img}, RestoreOptions{}); err == nil {
		t.Fatal("restore with deleted fd succeeded without RestoreDeletedFiles")
	}
	p2, err := Restore(dst, []*Image{img}, RestoreOptions{RestoreDeletedFiles: true})
	if err != nil {
		t.Fatal(err)
	}
	of, err := p2.FD(fd)
	if err != nil {
		t.Fatal(err)
	}
	if of.Offset() != 4 {
		t.Fatalf("restored offset %d, want 4", of.Offset())
	}
	rest := make([]byte, 6)
	n, _ := of.Read(nil, rest)
	if string(rest[:n]) != "456789" {
		t.Fatalf("restored file read %q", rest[:n])
	}
}

func TestKernelStateVirtualization(t *testing.T) {
	prog := workload.ResourceUser{MiB: 1, Iterations: 200, UseSocket: true, UseShm: true, CheckPID: true}
	want := referenceRun(t, prog, 200)

	k := newMachine("src", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	for p.Regs().PC < 100 && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	k.Stop(p)
	img, _, err := Capture(Request{
		Acc: &KernelAccessor{K: k, P: p}, Mechanism: "zap", Hostname: "src", Seq: 1, Now: k.Now(),
		KernelExtras: func(img *Image) { CaptureKernelExtras(k, p, img) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Sockets) != 1 || img.Shm == nil {
		t.Fatalf("kernel extras not captured: %+v", img.Sockets)
	}

	// Restore on a different machine WITH virtualization: must finish OK.
	dst := newMachine("dst", prog)
	dst.Procs.Allocate(0, "occupant") // ensure the restored PID differs
	p2, err := Restore(dst, []*Image{img}, RestoreOptions{
		Enqueue:             true,
		PreservePID:         false, // PID differs...
		RecreateKernelState: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute))
	// PID changed, so the PID check fails — that is the point: full
	// transparency additionally needs PID virtualization.
	if p2.ExitCode != workload.ExitPIDChanged {
		t.Fatalf("exit %d, want ExitPIDChanged without PID preservation", p2.ExitCode)
	}

	// With PID preservation too, the run completes identically.
	dst2 := newMachine("dst2", prog)
	p3, err := Restore(dst2, []*Image{img}, RestoreOptions{
		Enqueue:             true,
		PreservePID:         true,
		RecreateKernelState: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dst2.RunUntilExit(p3, dst2.Now().Add(10*simtime.Minute)) {
		t.Fatal("virtualized restore did not finish")
	}
	if p3.ExitCode != workload.ExitOK {
		t.Fatalf("exit %d, want OK", p3.ExitCode)
	}
	if got := workload.Fingerprint(p3); got != want {
		t.Fatalf("fingerprint %#x != reference %#x", got, want)
	}

	// Restore WITHOUT virtualization on a third machine: socket lost.
	dst3 := newMachine("dst3", prog)
	p4, err := Restore(dst3, []*Image{img}, RestoreOptions{Enqueue: true, PreservePID: true})
	if err != nil {
		t.Fatal(err)
	}
	dst3.RunUntilExit(p4, dst3.Now().Add(10*simtime.Minute))
	if p4.ExitCode != workload.ExitSocketLost {
		t.Fatalf("exit %d, want ExitSocketLost", p4.ExitCode)
	}
}

func TestMultithreadedCaptureRestore(t *testing.T) {
	prog := workload.MultiThreaded{MiB: 1, NThreads: 3, Iterations: 40}
	want := referenceRun(t, prog, 40)

	k := newMachine("src", prog)
	p, _ := k.Spawn(prog.Name())
	for p.Threads[0].Regs.PC < 20 && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	k.Stop(p)
	img, _, err := Capture(Request{
		Acc: &KernelAccessor{K: k, P: p}, Mechanism: "blcr", Hostname: "src", Seq: 1, Now: k.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Threads) != 3 {
		t.Fatalf("captured %d threads", len(img.Threads))
	}
	dst := newMachine("dst", prog)
	p2, err := Restore(dst, []*Image{img}, RestoreOptions{Enqueue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute)) {
		t.Fatal("restored MT process did not finish")
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("MT fingerprint %#x != %#x", got, want)
	}
}

func TestUserAccessorCostsMoreSyscalls(t *testing.T) {
	prog := workload.Dense{MiB: 4}
	k := newMachine("src", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<20)
	k.RunFor(20 * simtime.Millisecond)
	k.Stop(p)

	before := k.SyscallCount
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	if _, _, err := Capture(Request{
		Acc: &UserAccessor{Ctx: ctx}, Mechanism: "libckpt", Hostname: "src", Seq: 1, Now: k.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	userSyscalls := k.SyscallCount - before

	before = k.SyscallCount
	if _, _, err := Capture(Request{
		Acc: &KernelAccessor{K: k, P: p}, Mechanism: "crak", Hostname: "src", Seq: 2, Now: k.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	kernSyscalls := k.SyscallCount - before

	if kernSyscalls != 0 {
		t.Fatalf("kernel accessor used %d syscalls", kernSyscalls)
	}
	if userSyscalls < 3 {
		t.Fatalf("user accessor used only %d syscalls", userSyscalls)
	}
}
