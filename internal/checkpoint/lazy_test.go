package checkpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/simos/mem"
	"repro/internal/storage"
	"repro/internal/workload"
)

// lazyFromChain loads the chain behind leaf, then performs a lazy
// restore of it on a fresh machine: the leaf applied eagerly, every
// ancestor byte deferred behind the demand-fill hook.
func lazyFromChain(t *testing.T, remote storage.Target, leafName string, workers int, fenced func() bool) (*LazySession, *memProc, []*Image) {
	t.Helper()
	chain, err := LoadChain(remote, storage.NopEnv(), leafName)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(chain))
	for i, img := range chain {
		names[i] = img.ObjectName()
	}
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.15, Seed: 42}
	dst := newMachine(fmt.Sprintf("lazy%d", workers), prog)
	p, sess, err := LazyRestore(dst, chain[len(chain)-1], LazyOptions{
		RestoreOptions: RestoreOptions{Parallelism: workers},
		Source:         remote,
		Ancestors:      names[:len(names)-1],
		Fenced:         fenced,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess, &memProc{p.AS}, chain
}

// memProc narrows the restored process to its address space.
type memProc struct{ AS *mem.AddressSpace }

// eagerChecksum restores the same chain eagerly and returns its digest.
func eagerChecksum(t *testing.T, remote storage.Target, leafName string, workers int) uint64 {
	t.Helper()
	chain, err := LoadChain(remote, storage.NopEnv(), leafName)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.15, Seed: 42}
	dst := newMachine(fmt.Sprintf("eager%d", workers), prog)
	p, err := Restore(dst, chain, RestoreOptions{Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	return p.AS.Checksum()
}

// TestLazyRestoreDigestMatchesEager drains a lazy restore at several
// worker widths and demands the settled memory image be byte-identical
// to an eager restore of the same chain — both paths execute the same
// last-writer-wins plan, so width and laziness may only change
// simulated time, never a byte.
func TestLazyRestoreDigestMatchesEager(t *testing.T) {
	remote, leaf := buildTestChain(t)
	want := eagerChecksum(t, remote, leaf, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		if got := eagerChecksum(t, remote, leaf, workers); got != want {
			t.Fatalf("eager workers=%d checksum %#x != %#x", workers, got, want)
		}
		sess, p, _ := lazyFromChain(t, remote, leaf, workers, nil)
		if err := sess.DrainAll(); err != nil {
			t.Fatalf("workers=%d: DrainAll: %v", workers, err)
		}
		if !sess.Done() {
			t.Fatalf("workers=%d: DrainAll left %d pending", workers, sess.Pending())
		}
		st := sess.Stats()
		if st.FaultsServed != 0 {
			t.Fatalf("workers=%d: %d faults on a pure drain", workers, st.FaultsServed)
		}
		sess.Close()
		if got := p.AS.Checksum(); got != want {
			t.Fatalf("workers=%d: drained lazy checksum %#x != eager %#x", workers, got, want)
		}
	}
}

// TestLazyDemandFaultsDrainViaAccess touches every mapped page through
// the kernel-mode read path instead of the prefetcher: each first touch
// must fault exactly once into the session, and the fully-touched image
// must again match the eager restore.
func TestLazyDemandFaultsDrainViaAccess(t *testing.T) {
	remote, leaf := buildTestChain(t)
	want := eagerChecksum(t, remote, leaf, 1)
	sess, p, chain := lazyFromChain(t, remote, leaf, 1, nil)
	pending := sess.Pending()
	if pending == 0 {
		t.Fatal("lazy restore deferred nothing; chain too shallow for the test")
	}

	buf := make([]byte, mem.PageSize)
	leafImg := chain[len(chain)-1]
	for _, v := range leafImg.VMAs {
		for off := 0; off < int(v.Length); off += mem.PageSize {
			if err := p.AS.ReadDirect(v.Start+mem.Addr(off), buf); err != nil {
				t.Fatalf("ReadDirect %#x: %v", uint64(v.Start)+uint64(off), err)
			}
		}
	}
	if !sess.Done() {
		t.Fatalf("touched every page but %d still pending", sess.Pending())
	}
	st := sess.Stats()
	if st.FaultsServed != pending {
		t.Fatalf("served %d faults, want %d (every pending page exactly once)", st.FaultsServed, pending)
	}
	if st.Prefetched != 0 {
		t.Fatalf("prefetched %d pages with no prefetcher running", st.Prefetched)
	}
	sess.Close()
	if got := p.AS.Checksum(); got != want {
		t.Fatalf("fault-drained checksum %#x != eager %#x", got, want)
	}
}

// TestLazyAbortSelfFences: an aborted session must fail every later
// access of a still-pending page instead of serving state — a stale
// incarnation faults, it does not silently read zeroes or stale bytes.
func TestLazyAbortSelfFences(t *testing.T) {
	remote, leaf := buildTestChain(t)
	sess, p, chain := lazyFromChain(t, remote, leaf, 1, nil)
	if sess.Pending() == 0 {
		t.Fatal("no pending pages to abort")
	}
	sess.Abort(nil)

	buf := make([]byte, mem.PageSize)
	leafImg := chain[len(chain)-1]
	var faulted bool
	for _, v := range leafImg.VMAs {
		for off := 0; off < int(v.Length); off += mem.PageSize {
			if err := p.AS.ReadDirect(v.Start+mem.Addr(off), buf); err != nil {
				if !errors.Is(err, ErrLazyAborted) {
					t.Fatalf("aborted access err = %v, want ErrLazyAborted", err)
				}
				faulted = true
			}
		}
	}
	if !faulted {
		t.Fatal("no access failed after Abort")
	}
	if _, err := sess.Prefetch(1); !errors.Is(err, ErrLazyAborted) {
		t.Fatalf("Prefetch after Abort err = %v, want ErrLazyAborted", err)
	}
}

// TestLazyFenceAdvanceAborts: the Fenced callback turning true
// mid-restore (the node's epoch was superseded) must poison the session
// on the next fill, and the poisoning must stick even after the fence
// reads false again — supersession is not transient.
func TestLazyFenceAdvanceAborts(t *testing.T) {
	var fenced atomic.Bool
	remote, leaf := buildTestChain(t)
	sess, _, _ := lazyFromChain(t, remote, leaf, 1, func() bool { return fenced.Load() })

	if _, err := sess.Prefetch(1); err != nil {
		t.Fatalf("prefetch before fence advance: %v", err)
	}
	fenced.Store(true)
	if _, err := sess.Prefetch(1); !errors.Is(err, ErrLazyAborted) {
		t.Fatalf("prefetch after fence advance err = %v, want ErrLazyAborted", err)
	}
	fenced.Store(false)
	if _, err := sess.Prefetch(1); !errors.Is(err, ErrLazyAborted) {
		t.Fatalf("abort did not stick after fence flapped back: %v", err)
	}
}

// TestLazyConcurrentDrainRace races background prefetchers against
// concurrent demand faults (claim-then-serve, exactly the hook's
// protocol) and a stats poller. Every pending page must be served
// exactly once — the pending-set claim is the only arbiter — and the
// drained image must still match the eager restore. Run with -race.
func TestLazyConcurrentDrainRace(t *testing.T) {
	remote, leaf := buildTestChain(t)
	want := eagerChecksum(t, remote, leaf, 1)
	sess, p, chain := lazyFromChain(t, remote, leaf, 4, nil)
	pending := sess.Pending()
	if pending == 0 {
		t.Fatal("nothing pending; race test is vacuous")
	}

	var pages []mem.PageNum
	leafImg := chain[len(chain)-1]
	for _, v := range leafImg.VMAs {
		for pn := v.Start.Page(); pn < (v.Start + mem.Addr(v.Length)).Page(); pn++ {
			pages = append(pages, pn)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n, err := sess.Prefetch(4)
				if err != nil {
					errs <- err
					return
				}
				if n == 0 {
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			order := rng.Perm(len(pages))
			// A demand fault's exact protocol: claim the page from the
			// pending set, then serve it through the session.
			for _, i := range order {
				pn := pages[i]
				if !p.AS.TakePendingFill(pn) {
					continue
				}
				if err := sess.serve(pn, false); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = sess.Stats()
			_ = sess.Pending()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := sess.DrainAll(); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if total := st.FaultsServed + st.Prefetched; total != pending {
		t.Fatalf("served %d pages (faults %d + prefetched %d), want exactly %d — a page was double-served or lost",
			total, st.FaultsServed, st.Prefetched, pending)
	}
	sess.Close()
	if got := p.AS.Checksum(); got != want {
		t.Fatalf("concurrently drained checksum %#x != eager %#x", got, want)
	}
}

// TestLazyConcurrentAbortRace aborts the session while prefetchers are
// mid-drain (the mid-restore node-failure analogue): every goroutine
// must stop with ErrLazyAborted or a clean batch end, never panic or
// serve past the abort. Run with -race.
func TestLazyConcurrentAbortRace(t *testing.T) {
	remote, leaf := buildTestChain(t)
	sess, _, _ := lazyFromChain(t, remote, leaf, 2, nil)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				n, err := sess.Prefetch(2)
				if err != nil {
					if !errors.Is(err, ErrLazyAborted) {
						t.Errorf("prefetch err = %v, want ErrLazyAborted", err)
					}
					return
				}
				if n == 0 {
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		sess.Abort(nil)
	}()
	close(start)
	wg.Wait()
	if _, err := sess.Prefetch(1); !errors.Is(err, ErrLazyAborted) {
		t.Fatalf("post-abort Prefetch err = %v, want ErrLazyAborted", err)
	}
}

// TestMergeRangesProperty fuzzes mergeRanges with random range sets —
// zero-length ranges mixed in on both sides — and checks the output
// contract Capture depends on: sorted, coalesced, non-overlapping,
// non-empty, and exactly the byte-union of the non-empty inputs. This
// is the merge half of the shared satellite audit: before the fix,
// whether an empty range survived depended on what it sat next to.
func TestMergeRangesProperty(t *testing.T) {
	const page = mem.PageSize
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		randSet := func() []Range {
			n := rng.Intn(6)
			rs := make([]Range, 0, n)
			for i := 0; i < n; i++ {
				length := rng.Intn(4) * page // 0 is a valid draw: empty range
				rs = append(rs, Range{
					Addr:   mem.Addr(rng.Intn(16) * page),
					Length: length,
				})
			}
			return rs
		}
		a, b := randSet(), randSet()
		got := mergeRanges(a, b)

		// Model: the byte union of all non-empty inputs.
		want := map[mem.Addr]bool{}
		for _, rs := range [][]Range{a, b} {
			for _, r := range rs {
				for o := 0; o < r.Length; o += page {
					want[r.Addr+mem.Addr(o)] = true
				}
			}
		}
		covered := map[mem.Addr]bool{}
		for i, r := range got {
			if r.Length <= 0 {
				t.Fatalf("seed %d: empty range %+v survived the merge", seed, r)
			}
			if i > 0 {
				prev := got[i-1]
				if r.Addr < prev.Addr+mem.Addr(prev.Length) {
					t.Fatalf("seed %d: ranges %+v and %+v overlap or are unsorted", seed, prev, r)
				}
				if r.Addr == prev.Addr+mem.Addr(prev.Length) {
					t.Fatalf("seed %d: adjacent ranges %+v and %+v not coalesced", seed, prev, r)
				}
			}
			for o := 0; o < r.Length; o += page {
				covered[r.Addr+mem.Addr(o)] = true
			}
		}
		if len(covered) != len(want) {
			t.Fatalf("seed %d: merged union has %d pages, want %d", seed, len(covered), len(want))
		}
		for a := range want {
			if !covered[a] {
				t.Fatalf("seed %d: page %#x lost in merge", seed, uint64(a))
			}
		}
	}
}

// TestReplayPlanMatchesEagerFold is the replay half of the shared
// satellite audit: random chains — overlapping sub-page extents,
// zero-length extents, full-page overwrites — resolved through
// planReplay and applied at several widths must reproduce the naive
// oldest-first fold byte for byte, and the planner's accounting must
// balance (copied + pruned == every mapped non-empty input byte).
func TestReplayPlanMatchesEagerFold(t *testing.T) {
	const (
		start = mem.Addr(0x10000)
		pages = 8
		size  = pages * mem.PageSize
	)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))

		// Random chain: one full head plus 1..4 deltas over one VMA.
		links := 2 + rng.Intn(4)
		chain := make([]*Image, 0, links)
		fold := make([]byte, size) // the eager model: apply oldest-first
		total := 0
		var parent string
		for li := 0; li < links; li++ {
			var exts []Extent
			for e := 0; e < 1+rng.Intn(5); e++ {
				var length int
				switch rng.Intn(4) {
				case 0:
					length = 0 // zero-length: must be skipped consistently
				case 1:
					length = mem.PageSize // exact page overwrite
				default:
					length = 1 + rng.Intn(2*mem.PageSize) // sub-page / straddling
				}
				off := rng.Intn(size - length + 1)
				data := make([]byte, length)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				exts = append(exts, Extent{Addr: start + mem.Addr(off), Data: data})
				copy(fold[off:], data)
				total += length
			}
			img := &Image{
				Mode: ModeIncremental, PID: 1, Seq: uint64(li + 1), Exe: "x",
				Parent: parent,
				VMAs: []VMASection{{Start: start, Length: size, Kind: mem.KindHeap,
					Extents: exts}},
			}
			if li == 0 {
				img.Mode = ModeFull
				img.Parent = ""
			}
			parent = img.ObjectName()
			chain = append(chain, img)
		}

		plan, err := planReplay(chain)
		if err != nil {
			t.Fatalf("seed %d: planReplay: %v", seed, err)
		}
		if plan.copied+plan.pruned != total {
			t.Fatalf("seed %d: copied %d + pruned %d != input bytes %d",
				seed, plan.copied, plan.pruned, total)
		}
		for _, workers := range []int{1, 4} {
			as := mem.NewAddressSpace()
			if _, err := as.Map(start, size, mem.ProtRW, mem.KindHeap, ""); err != nil {
				t.Fatal(err)
			}
			if err := applyPlan(as, &plan, workers); err != nil {
				t.Fatalf("seed %d workers %d: applyPlan: %v", seed, workers, err)
			}
			got := make([]byte, size)
			if err := as.ReadDirect(start, got); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != fold[i] {
					t.Fatalf("seed %d workers %d: byte %#x = %#x, eager fold has %#x",
						seed, workers, uint64(start)+uint64(i), got[i], fold[i])
				}
			}
		}
	}
}
