package checkpoint

import (
	"hash/crc64"
	"math/rand"
	"testing"
)

func TestCRC64Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 50; trial++ {
		a := make([]byte, rng.Intn(5000))
		b := make([]byte, rng.Intn(5000))
		rng.Read(a)
		rng.Read(b)
		crcA := crc64.Checksum(a, crcTable)
		crcB := crc64.Checksum(b, crcTable)
		want := crc64.Checksum(append(append([]byte(nil), a...), b...), crcTable)
		if got := crc64Combine(crcA, crcB, len(b)); got != want {
			t.Fatalf("trial %d (len %d+%d): combine = %#x, want %#x",
				trial, len(a), len(b), got, want)
		}
	}
	// Edge cases: empty halves.
	data := []byte("payload")
	crc := crc64.Checksum(data, crcTable)
	if got := crc64Combine(crc, crc64.Checksum(nil, crcTable), 0); got != crc {
		t.Fatalf("combine with empty B: %#x, want %#x", got, crc)
	}
	if got := crc64Combine(crc64.Checksum(nil, crcTable), crc, len(data)); got != crc {
		t.Fatalf("combine with empty A: %#x, want %#x", got, crc)
	}
}

func TestCRC64CombineFold(t *testing.T) {
	// Folding many shards left-to-right matches one sequential pass —
	// the exact reduction the parallel encoder performs.
	rng := rand.New(rand.NewSource(65))
	full := make([]byte, 1<<16)
	rng.Read(full)
	want := crc64.Checksum(full, crcTable)
	for _, shards := range []int{1, 2, 3, 7, 16} {
		crc := uint64(0)
		off := 0
		for s := 0; s < shards; s++ {
			end := (s + 1) * len(full) / shards
			part := full[off:end]
			crc = crc64Combine(crc, crc64.Checksum(part, crcTable), len(part))
			off = end
		}
		if crc != want {
			t.Fatalf("%d shards: folded crc %#x, want %#x", shards, crc, want)
		}
	}
}
