package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
)

// corpusImage exercises every section of the format: multiple threads,
// sparse extents, a deleted-but-open FD with contents, dispositions,
// pending/blocked signals, sockets, and shared memory.
func corpusImage() *Image {
	return &Image{
		Mechanism: "crak",
		Hostname:  "node0",
		TakenAt:   12345678,
		Seq:       3,
		Parent:    "ckpt/pid2/seq2",
		Mode:      ModeIncremental,
		PID:       2,
		PPID:      1,
		VPID:      7,
		Exe:       "/bin/sparse",
		Args:      []string{"sparse", "--mib", "8"},
		Brk:       0x40_0000,
		Threads: []ThreadRecord{
			{TID: 1, Regs: proc.Regs{PC: 41, SP: 0x7fff_0000, G: [proc.NumGRegs]uint64{1, 2, 3}}},
			{TID: 2, Regs: proc.Regs{PC: 9, SP: 0x7ffe_0000}},
		},
		VMAs: []VMASection{
			{Start: 0x1000, Length: 0x2000, Kind: mem.KindHeap, Name: "[heap]", Prot: mem.ProtRead | mem.ProtWrite,
				Extents: []Extent{{Addr: 0x1000, Data: []byte("abcd")}, {Addr: 0x1800, Data: []byte{0, 1, 2}}}},
			{Start: 0x9000, Length: 0x1000, Kind: mem.KindAnon, Name: "", Prot: mem.ProtRead},
		},
		FDs: []FDRecord{
			{FD: 0, Path: "/dev/null", Flags: fs.ORead, Offset: 0},
			{FD: 3, Path: "/tmp/scratch", Flags: fs.OWrite, Offset: 512, Deleted: true, Contents: []byte("orphaned")},
		},
		SigDisps: []SigDispRecord{
			{Sig: sig.SIGUSR1, Kind: DispHandler, HandlerName: "usr1", NonReentrant: true},
			{Sig: sig.SIGTERM, Kind: DispIgnore},
		},
		SigPending: []sig.Signal{sig.SIGUSR1},
		SigBlocked: []sig.Signal{sig.SIGTERM, sig.SIGUSR2},
		Sockets:    []SocketRecord{{ID: 4, Peer: "node1:9090"}},
		Shm:        map[string][]byte{"seg-a": []byte("shared"), "seg-b": nil},
	}
}

func corpusBytes(tb testing.TB) []byte {
	b, err := corpusImage().EncodeBytes()
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// FuzzImageDecode throws arbitrary bytes at the decoder: it must return
// an image or ErrCorrupt, never panic, and never let a forged length
// prefix allocate past the input that backs it.
func FuzzImageDecode(f *testing.F) {
	valid := corpusBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("short"))
	f.Add(valid[:len(valid)/2])                         // truncated mid-body
	f.Add(append([]byte(nil), valid[:len(valid)-1]...)) // truncated trailer
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0xff
	f.Add(flipped) // body corruption → CRC mismatch

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err == nil && img == nil {
			t.Fatal("Decode returned nil image with nil error")
		}
	})
}

// FuzzImageRoundTrip asserts the decode→encode→decode fixed point: any
// input the decoder accepts must re-encode to bytes that decode to the
// same image, and the second encoding must equal the first (canonical
// form).
func FuzzImageRoundTrip(f *testing.F) {
	f.Add(corpusBytes(f))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := img.EncodeBytes()
		if err != nil {
			t.Fatalf("re-encode of accepted image failed: %v", err)
		}
		img2, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if !reflect.DeepEqual(img, img2) {
			t.Fatalf("round trip changed image:\n %+v\n %+v", img, img2)
		}
		enc2, err := img2.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encoding is not a fixed point")
		}
	})
}

// TestDecodeBoundsShmAllocation pins the allocation-bound fix: a forged
// image claiming 2^32-1 shared-memory segments in a few hundred bytes
// must fail with ErrCorrupt without pre-allocating for the claim.
func TestDecodeBoundsShmAllocation(t *testing.T) {
	img := corpusImage()
	img.Shm = nil
	enc, err := img.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	// The Shm count is the last u32 before the 8-byte CRC trailer.
	forged := append([]byte(nil), enc...)
	off := len(forged) - 8 - 4
	forged[off], forged[off+1], forged[off+2], forged[off+3] = 0xff, 0xff, 0xff, 0xff
	rewriteCRC(forged)

	before := totalAlloc()
	if _, err := Decode(forged); err == nil {
		t.Fatal("forged Shm count decoded cleanly")
	}
	if grew := totalAlloc() - before; grew > 1<<20 {
		t.Fatalf("decoding a %d-byte forgery allocated %d bytes", len(forged), grew)
	}
}

// rewriteCRC recomputes the trailer after a test mutates the body.
func rewriteCRC(data []byte) {
	body := data[:len(data)-8]
	binary.LittleEndian.PutUint64(data[len(data)-8:], crc64.Checksum(body, crcTable))
}

// totalAlloc reads the monotonic cumulative allocation counter, so the
// difference across a call cannot go negative when GC runs in between.
func totalAlloc() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.TotalAlloc
}
