package mechanism

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
)

func TestTicketTimings(t *testing.T) {
	tk := &Ticket{RequestedAt: 100, StartedAt: 250, CompletedAt: 1000}
	if tk.InitiationDelay() != 150 {
		t.Fatalf("InitiationDelay = %v", tk.InitiationDelay())
	}
	if tk.CaptureTime() != 750 {
		t.Fatalf("CaptureTime = %v", tk.CaptureTime())
	}
	if tk.Total() != 900 {
		t.Fatalf("Total = %v", tk.Total())
	}
}

func TestSeqsChainBookkeeping(t *testing.T) {
	s := NewSeqs()
	seq, parent := s.Next(5)
	if seq != 1 || parent != "" {
		t.Fatalf("first Next = %d %q", seq, parent)
	}
	// Commit is keyed by the image; emulate one.
	img := fakeImage(5, 1)
	s.Commit(img)
	seq, parent = s.Next(5)
	if seq != 2 || parent != img.ObjectName() {
		t.Fatalf("second Next = %d %q", seq, parent)
	}
	// Another PID has its own chain.
	seq, parent = s.Next(9)
	if seq != 1 || parent != "" {
		t.Fatalf("other pid Next = %d %q", seq, parent)
	}
	s.Reset(5)
	seq, parent = s.Next(5)
	if seq != 1 || parent != "" {
		t.Fatalf("after Reset = %d %q", seq, parent)
	}
}

func TestWaitTicketTimesOut(t *testing.T) {
	k := kernel.New(kernel.DefaultConfig("k"), costmodel.Default2005(), kernel.NewRegistry())
	tk := &Ticket{}
	if err := WaitTicket(k, tk, 5*simtime.Millisecond); err == nil {
		t.Fatal("WaitTicket on a never-done ticket returned nil")
	}
	tk.Done = true
	if err := WaitTicket(k, tk, simtime.Millisecond); err != nil {
		t.Fatalf("done ticket: %v", err)
	}
}

func TestKernelEnvAdvancesTime(t *testing.T) {
	k := kernel.New(kernel.DefaultConfig("k"), costmodel.Default2005(), kernel.NewRegistry())
	env := KernelEnv(k, nil)
	before := k.Now()
	env.Wait(3*simtime.Millisecond, "disk")
	if k.Now().Sub(before) < 3*simtime.Millisecond {
		t.Fatal("Wait did not advance simulated time")
	}
	env.Bill.Charge(simtime.Millisecond, "x")
	if k.Now().Sub(before) < 4*simtime.Millisecond {
		t.Fatal("Bill did not advance simulated time")
	}
}
