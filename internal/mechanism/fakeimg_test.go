package mechanism

import (
	"repro/internal/checkpoint"
	"repro/internal/simos/proc"
)

// fakeImage builds a minimal image for bookkeeping tests.
func fakeImage(pid proc.PID, seq uint64) *checkpoint.Image {
	return &checkpoint.Image{PID: pid, Seq: seq}
}
