// Package mechanism defines the common shape of every checkpoint/restart
// implementation in the survey (packages userlevel and syslevel) and the
// helpers they share. A Mechanism bundles four things the paper's
// taxonomy separates:
//
//   - installation (static kernel change vs loadable module vs nothing),
//   - per-process preparation (the transparency question: does the
//     application need to be modified/wrapped/registered?),
//   - the initiation path (self-call, user signal, kernel signal, ioctl
//     to a kernel thread) through which a checkpoint request travels, and
//   - the restart path with its mechanism-specific capabilities
//     (PID preservation, deleted files, resource virtualization).
package mechanism

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

// Ticket tracks one asynchronous checkpoint request from initiation to
// completion. The RequestedAt→StartedAt gap is the initiation delay the
// paper discusses (deferred signal delivery, kernel-thread wakeup);
// StartedAt→CompletedAt is the capture itself.
type Ticket struct {
	Done        bool
	Err         error
	Img         *checkpoint.Image
	Stats       checkpoint.Stats
	RequestedAt simtime.Time
	StartedAt   simtime.Time
	CompletedAt simtime.Time
}

// InitiationDelay returns how long the request waited before capture began.
func (t *Ticket) InitiationDelay() simtime.Duration { return t.StartedAt.Sub(t.RequestedAt) }

// CaptureTime returns the duration of the capture itself.
func (t *Ticket) CaptureTime() simtime.Duration { return t.CompletedAt.Sub(t.StartedAt) }

// Total returns request-to-completion latency.
func (t *Ticket) Total() simtime.Duration { return t.CompletedAt.Sub(t.RequestedAt) }

// Mechanism is one checkpoint/restart implementation.
type Mechanism interface {
	// Name matches the system's name in the paper (and Table 1 where
	// applicable).
	Name() string
	// Features returns the probed Table 1 row / taxonomy position.
	Features() taxonomy.Features
	// Install puts the mechanism into the kernel: loads the module or
	// applies the static-kernel change (registers syscalls/signals/
	// devices). Idempotent per kernel.
	Install(k *kernel.Kernel) error
	// Prepare returns the program to spawn in place of prog. Transparent
	// mechanisms return prog unchanged; non-transparent ones wrap it
	// (the modify/recompile/relink step of §3).
	Prepare(prog kernel.Program) kernel.Program
	// Setup performs post-spawn registration for mechanisms that need it
	// (BLCR's init phase, CHPOX's /proc registration, EPCKPT's launch
	// tool). No-op where not required.
	Setup(k *kernel.Kernel, p *proc.Process) error
	// Request initiates a checkpoint of p to tgt through the mechanism's
	// native path. Completion is asynchronous; wait with WaitTicket.
	Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*Ticket, error)
	// Restart restores a process from an image chain on k.
	Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error)
}

// DeltaRequester is implemented by mechanisms whose initiation path can
// ship tracker-driven incremental deltas for an orchestration layer that
// owns the chain policy (the cluster's node-local agents).
type DeltaRequester interface {
	Mechanism
	// RequestDelta initiates a checkpoint of p to tgt chained onto the
	// mechanism's previous capture of p. trk supplies the dirty ranges;
	// nil captures everything resident. rebase forgets the existing chain
	// first, so the capture publishes a standalone full image — callers
	// must pass a nil (or fresh, never-collected) trk on rebase rounds,
	// since a full image built from one epoch's dirty set would be a
	// silent hole. epoch namespaces the chain's object names so chains
	// from different incarnations cannot collide on a reused PID.
	// Completion is asynchronous; wait with WaitTicket.
	RequestDelta(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env,
		trk checkpoint.Tracker, epoch uint64, rebase bool) (*Ticket, error)
}

// CaptureParallelizer is implemented by mechanisms whose capture path
// can shard the payload read and image encode across a worker pool (the
// kernel-thread family). Orchestration layers set the width once after
// Install; mechanisms without the method simply capture sequentially.
type CaptureParallelizer interface {
	// SetCaptureParallelism sets the worker-pool width for subsequent
	// captures (0 or 1 = sequential). Results are byte-identical at any
	// width; only the simulated capture time changes.
	SetCaptureParallelism(workers int)
}

// RestoreParallelizer is the restart-side mirror of CaptureParallelizer:
// mechanisms whose Restart can shard chain replay across a worker pool.
// Orchestration layers set the width once after Install; mechanisms
// without the method replay sequentially.
type RestoreParallelizer interface {
	// SetRestoreParallelism sets the worker-pool width for subsequent
	// restarts (0 or 1 = sequential). Restored memory is byte-identical
	// at any width; only the simulated restore time changes.
	SetRestoreParallelism(workers int)
}

// LazyRestarter is implemented by mechanisms whose restart path can
// resume a process before the full chain is read: the leaf's hot working
// set is applied eagerly, control returns, and the remaining pages are
// served on demand (and by a background prefetcher) from the returned
// session — checkpoint.LazyRestore's restart-before-read protocol.
// Mechanisms without the method restart eagerly via Restart.
type LazyRestarter interface {
	// RestartLazy restores a process from the chain's leaf image alone,
	// deferring ancestor reads to the returned session's demand-fault
	// service. The mechanism applies its configured restore parallelism.
	RestartLazy(k *kernel.Kernel, leaf *checkpoint.Image, opt checkpoint.LazyOptions) (*proc.Process, *checkpoint.LazySession, error)
}

// ErrUnsupported is returned when a mechanism cannot handle the process
// (e.g. a single-threaded-only checkpointer asked to capture threads).
var ErrUnsupported = errors.New("mechanism: unsupported process")

// ErrNotInstalled is returned by Request before Install.
var ErrNotInstalled = errors.New("mechanism: not installed in this kernel")

// ErrNotRegistered is returned when Setup was required but skipped.
var ErrNotRegistered = errors.New("mechanism: process not registered")

// WaitTicket runs the kernel until the ticket completes or the budget
// elapses.
func WaitTicket(k *kernel.Kernel, t *Ticket, budget simtime.Duration) error {
	deadline := k.Now().Add(budget)
	for !t.Done && k.Now() < deadline {
		k.RunFor(100 * simtime.Microsecond)
	}
	if !t.Done {
		return fmt.Errorf("mechanism: checkpoint did not complete within %v", budget)
	}
	return t.Err
}

// Checkpoint is the synchronous convenience wrapper: Request + WaitTicket.
func Checkpoint(m Mechanism, k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*Ticket, error) {
	t, err := m.Request(k, p, tgt, env)
	if err != nil {
		return nil, err
	}
	if err := WaitTicket(k, t, 5*simtime.Minute); err != nil {
		return t, err
	}
	return t, nil
}

// Seqs allocates monotone checkpoint sequence numbers per PID and
// remembers the previous image name for incremental chaining.
type Seqs struct {
	seq    map[proc.PID]uint64
	parent map[proc.PID]string
}

// NewSeqs returns an empty sequence tracker.
func NewSeqs() *Seqs {
	return &Seqs{seq: make(map[proc.PID]uint64), parent: make(map[proc.PID]string)}
}

// Next returns the next sequence number and the parent object name.
func (s *Seqs) Next(pid proc.PID) (uint64, string) {
	s.seq[pid]++
	return s.seq[pid], s.parent[pid]
}

// Commit records img as the latest image for its PID.
func (s *Seqs) Commit(img *checkpoint.Image) {
	s.parent[img.PID] = img.ObjectName()
}

// Reset forgets a PID's history (process exited or migrated away).
func (s *Seqs) Reset(pid proc.PID) {
	delete(s.seq, pid)
	delete(s.parent, pid)
}

// Rebase forgets only a PID's parent link, keeping the sequence counter
// monotonic: the next capture becomes a full image under a fresh object
// name. Resetting the counter instead would republish over names an
// earlier chain generation already used — fatal once GC retires those
// names while a later generation is reoccupying them.
func (s *Seqs) Rebase(pid proc.PID) {
	delete(s.parent, pid)
}

// StorageEnvFor builds a storage env that bills CPU to the kernel clock
// and spends I/O time with nested execution in process context (other
// processes keep running during disk/network waits).
func StorageEnvFor(ctx *kernel.Context) *storage.Env {
	return &storage.Env{
		Bill: ctx.K,
		Wait: func(d simtime.Duration, what string) { ctx.IO(d, what) },
	}
}

// KernelEnv bills CPU to the kernel clock and spends I/O by advancing the
// whole machine (used by kernel threads, which are themselves scheduled).
func KernelEnv(k *kernel.Kernel, self *proc.Process) *storage.Env {
	return &storage.Env{
		Bill: k,
		Wait: func(d simtime.Duration, what string) { k.RunWhile(d, self) },
	}
}
