package syslevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

// blcrHandlerName keys BLCR's user-space callback handler for restart
// resolution.
const blcrHandlerName = "blcr-callback"

// BLCR models Berkeley Lab's Linux Checkpoint/Restart [11]: a kernel
// module with a kernel thread reached through /dev ioctl that — unlike
// prior schemes — checkpoints multithreaded processes. It is *not*
// totally transparent: an initialization phase must load a shared library
// and register a signal handler for callbacks before a process can be
// checkpointed.
type BLCR struct {
	threadMech
}

// NewBLCR returns a BLCR instance.
func NewBLCR() *BLCR {
	m := &BLCR{threadMech{name: "BLCR", devPath: "/dev/blcr", policy: proc.SchedFIFO, rtprio: 50}}
	m.optsFor = func() captureOpts { return captureOpts{mech: "BLCR"} }
	return m
}

// Name implements mechanism.Mechanism.
func (m *BLCR) Name() string { return "BLCR" }

// Features implements mechanism.Mechanism (Table 1 row 8: transparency
// "no" because of the init phase).
func (m *BLCR) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "BLCR", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelThread,
		Storage:       []storage.Kind{storage.KindLocal, storage.KindRemote},
		Initiation:    taxonomy.InitUser,
		KernelModule:  true,
		Multithreaded: true,
	}
}

// ModuleName implements kernel.Module.
func (m *BLCR) ModuleName() string { return "blcr" }

// Load implements kernel.Module.
func (m *BLCR) Load(k *kernel.Kernel) error { return m.load(k) }

// Unload implements kernel.Module.
func (m *BLCR) Unload(k *kernel.Kernel) error { return m.unload(k) }

// Install implements mechanism.Mechanism.
func (m *BLCR) Install(k *kernel.Kernel) error {
	if k.ModuleLoaded(m.ModuleName()) {
		return nil
	}
	if err := k.LoadModule(m); err != nil {
		return err
	}
	// The callback runs just before capture; the handler's job in real
	// BLCR is to let the application quiesce resources.
	m.d.preCapture = func(req *ckptRequest) {
		k := m.threadMech.k
		if disp := req.target.Sig.Disposition(sig.SIGUSR1); disp.Handler != nil && disp.Handler.Name == blcrHandlerName {
			k.Charge(k.CM.SignalDeliver+k.CM.SignalReturn, "blcr-callback")
		}
	}
	return nil
}

// Prepare implements mechanism.Mechanism: the executable is unchanged
// (the library loads at run time), so Prepare is the identity...
func (m *BLCR) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism: ...but Setup is mandatory — the
// shared library must be loaded and a handler registered for a general
// purpose signal, which is why Table 1 scores BLCR non-transparent.
func (m *BLCR) Setup(k *kernel.Kernel, p *proc.Process) error {
	if m.threadMech.k != k {
		return mechanism.ErrNotInstalled
	}
	// dlopen of libcr plus handler registration.
	k.Charge(6*k.CM.Syscall(), "blcr-init")
	if err := p.Sig.SetHandler(sig.SIGUSR1, &sig.Handler{
		Name: blcrHandlerName,
		Fn:   func(ctx any, s sig.Signal) {}, // quiesce callback
	}); err != nil {
		return err
	}
	p.Registered["blcr"] = true
	return nil
}

// Request implements mechanism.Mechanism: cr_checkpoint's ioctl with the
// target pid; fails if the init phase was skipped.
func (m *BLCR) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if !p.Registered["blcr"] {
		return nil, fmt.Errorf("%w: BLCR: process did not run the initialization phase (library + handler)", mechanism.ErrNotRegistered)
	}
	return m.request(m, k, p, tgt, env)
}

// Restart implements mechanism.Mechanism: cr_restart re-resolves the
// callback handler from the reloaded library.
func (m *BLCR) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{
		Enqueue:     enqueue,
		Parallelism: m.restorePar,
		Handlers: map[string]*sig.Handler{
			blcrHandlerName: {Name: blcrHandlerName, Fn: func(ctx any, s sig.Signal) {}},
		},
	})
}

// LAMMPI models the LAM/MPI checkpoint/restart framework [32]: BLCR per
// process, coordinated across the ranks of an MPI job by the MPI layer
// (package mpi drives the coordination; this type carries the Table 1
// row and delegates single-process operations to BLCR). It is transparent
// to the application but not to the MPI library, whose functions had to
// be modified to automate BLCR's initialization phase.
type LAMMPI struct {
	*BLCR
}

// NewLAMMPI returns a LAM/MPI instance over a fresh BLCR.
func NewLAMMPI() *LAMMPI {
	m := &LAMMPI{BLCR: NewBLCR()}
	m.optsFor = func() captureOpts { return captureOpts{mech: "LAM/MPI"} }
	return m
}

// Name implements mechanism.Mechanism.
func (m *LAMMPI) Name() string { return "LAM/MPI" }

// Features implements mechanism.Mechanism (Table 1 row 9).
func (m *LAMMPI) Features() taxonomy.Features {
	f := m.BLCR.Features()
	f.Name = "LAM/MPI"
	f.ParallelApps = true
	return f
}

// Setup implements mechanism.Mechanism: the modified MPI library runs
// BLCR's init phase automatically at MPI_Init — the application itself
// is untouched.
func (m *LAMMPI) Setup(k *kernel.Kernel, p *proc.Process) error {
	return m.BLCR.Setup(k, p)
}
