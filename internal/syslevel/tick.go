package syslevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

// simtime helpers shared inside the package.
const (
	simtimeTick   = 100 * simtime.Microsecond
	simtimeSecond = simtime.Second
)

// TICK is the paper's "direction forward" made concrete: a Transparent
// Incremental Checkpointer at Kernel level. It combines everything §4.1
// and §5 argue for and that no surveyed package provides:
//
//   - a kernel thread in a loadable module (portability, SCHED_FIFO
//     priority, interrupt deferral during capture),
//   - full transparency (no source changes, no registration, no library),
//   - incremental checkpointing with kernel page-fault dirty tracking —
//     "there is no implementation of incremental checkpointing for Linux
//     up to now" (§4.1),
//   - automatic, system-level initiation: a kernel timer checkpoints
//     attached processes periodically, the self-managing behaviour
//     autonomic computing requires (§1), and
//   - local or remote stable storage.
//
// (The LANL authors later published exactly this system as "TICK".)
type TICK struct {
	threadMech
	// DeferInterrupts runs captures with device interrupts deferred —
	// the mechanism §4.1 says is needed; ablation switch for E4.
	DeferInterrupts bool
	// MaxChain bounds the incremental chain: after this many deltas the
	// next checkpoint is full again, bounding restart latency (the role
	// chain coalescing plays offline — see checkpoint.Coalesce).
	MaxChain int

	trackers map[proc.PID]*checkpoint.KernelWPTracker
	timers   map[proc.PID]*simtime.Event
	deltas   map[proc.PID]int
}

// NewTICK returns a TICK instance.
func NewTICK() *TICK {
	m := &TICK{
		threadMech:      threadMech{name: "TICK", devPath: "/dev/tick", policy: proc.SchedFIFO, rtprio: 60},
		DeferInterrupts: true,
		MaxChain:        16,
		trackers:        make(map[proc.PID]*checkpoint.KernelWPTracker),
		timers:          make(map[proc.PID]*simtime.Event),
		deltas:          make(map[proc.PID]int),
	}
	m.optsFor = func() captureOpts { return captureOpts{mech: "TICK", noInterrupts: m.DeferInterrupts} }
	return m
}

// Name implements mechanism.Mechanism.
func (m *TICK) Name() string { return "TICK" }

// Features implements mechanism.Mechanism: the extended Table 1 row for
// the proposed system.
func (m *TICK) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "TICK", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelThread,
		Incremental:   true,
		Transparent:   true,
		Storage:       []storage.Kind{storage.KindLocal, storage.KindRemote},
		Initiation:    taxonomy.InitAutomatic,
		KernelModule:  true,
		Multithreaded: true,
	}
}

// ModuleName implements kernel.Module.
func (m *TICK) ModuleName() string { return "tick" }

// Load implements kernel.Module.
func (m *TICK) Load(k *kernel.Kernel) error { return m.load(k) }

// Unload implements kernel.Module.
func (m *TICK) Unload(k *kernel.Kernel) error {
	for pid, t := range m.trackers {
		t.Close()
		delete(m.trackers, pid)
	}
	for pid, ev := range m.timers {
		ev.Cancel()
		delete(m.timers, pid)
	}
	return m.unload(k)
}

// Install implements mechanism.Mechanism.
func (m *TICK) Install(k *kernel.Kernel) error {
	if k.ModuleLoaded(m.ModuleName()) {
		return nil
	}
	return k.LoadModule(m)
}

// Prepare implements mechanism.Mechanism: fully transparent.
func (m *TICK) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism: nothing required — attachment
// happens either per Request (user-initiated) or via Attach (automatic).
func (m *TICK) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// tracker returns (arming on first use) the incremental tracker for p.
func (m *TICK) tracker(k *kernel.Kernel, p *proc.Process) (*checkpoint.KernelWPTracker, error) {
	if t, ok := m.trackers[p.PID]; ok {
		return t, nil
	}
	t := checkpoint.NewKernelWPTracker(k, p)
	if err := t.Arm(); err != nil {
		return nil, err
	}
	m.trackers[p.PID] = t
	return t, nil
}

// Request implements mechanism.Mechanism: one incremental checkpoint via
// the kernel thread.
func (m *TICK) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if m.threadMech.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	if err := checkStorageKind(m, tgt); err != nil {
		return nil, err
	}
	trk, err := m.tracker(k, p)
	if err != nil {
		return nil, err
	}
	// Chain bounding: after MaxChain deltas, start a fresh full image so
	// restart never replays an unbounded chain.
	rebase := false
	if m.MaxChain > 0 && m.deltas[p.PID] >= m.MaxChain {
		m.seqs.Rebase(p.PID)
		m.deltas[p.PID] = 0
		rebase = true
	}
	m.deltas[p.PID]++
	t := &mechanism.Ticket{RequestedAt: k.Now()}
	opts := m.optsFor()
	opts.seqs = m.seqs
	opts.parallelism = m.capturePar
	if !rebase {
		// A rebase round deliberately captures without the tracker: the
		// fresh full image must cover every resident page, and a Collect
		// here would return only this epoch's dirty set — a silent hole in
		// every chain hanging off the rebase. The uncollected dirty set
		// keeps accumulating, so the next delta ships a safe superset.
		opts.trk = trk
	}
	m.d.enqueue(&ckptRequest{target: p, tgt: tgt, env: env, opts: opts, ticket: t})
	return t, nil
}

// Attach starts automatic-initiated periodic checkpointing of p to tgt:
// a kernel timer enqueues capture work every interval without any user
// or application involvement — the autonomic behaviour of §1. The
// returned stop function detaches.
func (m *TICK) Attach(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env, interval simtime.Duration, onCkpt func(*mechanism.Ticket)) (func(), error) {
	if m.threadMech.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	if interval <= 0 {
		return nil, fmt.Errorf("syslevel: TICK: interval must be positive")
	}
	if _, err := m.tracker(k, p); err != nil {
		return nil, err
	}
	stopped := false
	var schedule func()
	schedule = func() {
		m.timers[p.PID] = k.Eng.After(interval, func() {
			if stopped || p.State == proc.StateZombie || p.State == proc.StateDead {
				return
			}
			t, err := m.Request(k, p, tgt, env)
			if err == nil && onCkpt != nil {
				origDone := t
				// Poll completion from a cheap follow-up event; a detach
				// cancels any in-flight notification.
				var watch func()
				watch = func() {
					if stopped {
						return
					}
					if origDone.Done {
						onCkpt(origDone)
						return
					}
					k.Eng.After(simtimeTick, watch)
				}
				k.Eng.After(simtimeTick, watch)
			}
			schedule()
		})
	}
	schedule()
	return func() {
		stopped = true
		if ev, ok := m.timers[p.PID]; ok {
			ev.Cancel()
			delete(m.timers, p.PID)
		}
		if trk, ok := m.trackers[p.PID]; ok {
			trk.Close()
			delete(m.trackers, p.PID)
		}
	}, nil
}

// Restart implements mechanism.Mechanism: chains restore oldest-first.
func (m *TICK) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue})
}
