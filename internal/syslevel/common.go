// Package syslevel implements the twelve system-level checkpoint/restart
// mechanisms the paper surveys (Table 1) — VMADump, BProc, EPCKPT, CRAK,
// ZAP, UCLiK, CHPOX, BLCR, LAM/MPI, PsncR/C, Software Suspend, and
// Checkpoint — plus TICK, the transparent incremental kernel-level
// checkpointer the paper argues for as the direction forward. Each
// mechanism is built strictly from the simulated-kernel facilities its
// real counterpart uses: system calls in the static kernel, new kernel
// signals, or kernel threads in loadable modules reached through /dev
// ioctl or /proc (§4.1).
package syslevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// captureOpts select the mechanism-specific capture behaviour.
type captureOpts struct {
	// mech is the mechanism name stamped into images.
	mech string
	// trk, when non-nil, provides incremental deltas (TICK, delta
	// requests from the cluster agents).
	trk checkpoint.Tracker
	// seqs provides sequence numbers and chaining.
	seqs *mechanism.Seqs
	// epoch namespaces image object names by incarnation (delta chains
	// shipped by fenced cluster agents); zero keeps legacy names.
	epoch uint64
	// kernelExtras captures sockets/shm (ZAP pods).
	kernelExtras bool
	// includeFileContents snapshots every open regular file into the
	// image (PsncR/C: "all of the code, shared libraries, and open files
	// are always included").
	includeFileContents bool
	// forkConsistency captures a forked frozen copy while the original
	// keeps running (Checkpoint [5]); otherwise the target is stopped.
	forkConsistency bool
	// noInterrupts runs the capture with device interrupts deferred
	// (the delay mechanism §4.1 calls for).
	noInterrupts bool
	// parallelism shards the payload read and image encode across a
	// worker pool (0 or 1 = sequential; see checkpoint.Request).
	parallelism int
}

// captureKernel performs one kernel-level capture of target with the
// given consistency strategy, charging all costs, and fills the ticket.
// self is the executing context's process (kernel thread or the target
// itself for syscall/signal agents).
func captureKernel(k *kernel.Kernel, self, target *proc.Process, tgt storage.Target, env *storage.Env, opts captureOpts, ticket *mechanism.Ticket) {
	ticket.StartedAt = k.Now()
	finish := func(img *checkpoint.Image, st checkpoint.Stats, err error) {
		ticket.Img, ticket.Stats, ticket.Err = img, st, err
		ticket.CompletedAt = k.Now()
		ticket.Done = true
	}

	if tgt != nil && !tgt.Available() {
		finish(nil, checkpoint.Stats{}, fmt.Errorf("syslevel: %s: storage: %w", opts.mech, storage.ErrUnavailable))
		return
	}

	if opts.noInterrupts {
		k.DisableInterrupts()
		defer k.EnableInterrupts()
	}

	// Consistency (§4.1): either freeze the target for the duration of
	// the capture, or fork a frozen copy and capture that while the
	// original runs on. When the target is executing the checkpoint code
	// itself (syscall or kernel-signal agents), its data cannot change
	// concurrently and no freeze is needed.
	captured := target
	wasRunnable := target.Runnable() || target.State == proc.StateRunning
	switch {
	case opts.forkConsistency:
		child, err := k.Fork(target, false)
		if err != nil {
			finish(nil, checkpoint.Stats{}, err)
			return
		}
		captured = child
		defer k.Procs.Remove(child.PID)
	case self == target:
		// In-context capture: nothing to do.
	default:
		prevState := target.State
		k.Stop(target)
		defer func() {
			switch {
			case prevState == proc.StateBlocked && target.WaitReason != "":
				// Still waiting for its event: return to the wait.
				target.State = proc.StateBlocked
			case prevState == proc.StateBlocked || wasRunnable:
				// The event fired while frozen (WaitReason cleared), or
				// the process was runnable: make it runnable again.
				k.Wake(target)
			}
		}()
	}

	// A kernel thread uses the page tables of the task it interrupted;
	// reaching a different process's memory costs an address-space
	// switch (EnsureAS charges the TLB flush only when needed).
	k.EnsureAS(captured)

	seq, parent := uint64(1), ""
	if opts.seqs != nil {
		seq, parent = opts.seqs.Next(target.PID)
	}
	req := checkpoint.Request{
		Acc:         &checkpoint.KernelAccessor{K: k, P: captured},
		Trk:         opts.trk,
		Target:      tgt,
		Env:         env,
		Mechanism:   opts.mech,
		Hostname:    k.Cfg.Hostname,
		Seq:         seq,
		Parent:      parent,
		Epoch:       opts.epoch,
		Now:         k.Now(),
		Parallelism: opts.parallelism,
	}
	if opts.forkConsistency {
		// The frozen fork is captured, but the image belongs to the parent.
		req.AsPID = target.PID
	}
	if opts.kernelExtras {
		req.KernelExtras = func(img *checkpoint.Image) {
			checkpoint.CaptureKernelExtras(k, target, img)
		}
	}
	img, st, err := checkpoint.Capture(req)
	// Interrupts that became due while the capture charged time intrude
	// on it now (extending the measured capture), unless the mechanism
	// deferred them — the §4.1 "mechanism to delay these events".
	k.Eng.RunUntil(k.Now())
	if err == nil && opts.includeFileContents {
		addFileContents(img, captured)
	}
	if err == nil && opts.seqs != nil {
		opts.seqs.Commit(img)
	}

	// Time-sharing stretch (§4.1): an agent in the SCHED_OTHER class —
	// whether a low-priority kernel thread or the application itself
	// running checkpoint code in a syscall or signal handler — shares the
	// CPU with every other runnable time-sharing process, so the capture
	// stretches by the competing load. A SCHED_FIFO kernel thread runs to
	// completion and skips this entirely.
	if self != nil && self.Policy == proc.SchedOther {
		others := 0
		for _, q := range k.Sched.Runnable() {
			if q != self && q != target && q.Policy == proc.SchedOther && q.Runnable() {
				others++
			}
		}
		if others > 0 {
			stretch := simtime.Duration(others) * k.Now().Sub(ticket.StartedAt)
			k.Sched.Dequeue(self)
			k.RunWhile(stretch, self)
			if self.Runnable() {
				k.Sched.Enqueue(self)
			}
		}
	}
	finish(img, st, err)
}

// addFileContents snapshots every open regular file into its FDRecord —
// PsncR/C's no-optimization behaviour.
func addFileContents(img *checkpoint.Image, p *proc.Process) {
	for i, rec := range img.FDs {
		if rec.Contents != nil {
			continue
		}
		if of, err := p.FD(rec.FD); err == nil {
			if ino := of.Node.Inode(); ino != nil {
				img.FDs[i].Contents = ino.Snapshot()
			}
		}
	}
}

// checkStorageKind rejects targets outside the mechanism's Table 1
// storage column (a local-only package cannot write to a remote server).
func checkStorageKind(m mechanism.Mechanism, tgt storage.Target) error {
	if tgt == nil {
		return nil
	}
	for _, k := range m.Features().Storage {
		if tgt.Kind() == k || tgt.Kind() == storage.KindMemory {
			return nil
		}
		// A replicated set fans out over the interconnect to buddy disks
		// and the server: any mechanism with a remote path can feed it.
		if tgt.Kind() == storage.KindReplicated && k == storage.KindRemote {
			return nil
		}
	}
	return fmt.Errorf("syslevel: %s supports storage %v, not %v", m.Name(), m.Features().Storage, tgt.Kind())
}

// ckptRequest is one unit of work for a checkpoint kernel thread.
type ckptRequest struct {
	target *proc.Process
	tgt    storage.Target
	env    *storage.Env
	opts   captureOpts
	ticket *mechanism.Ticket
}

// daemon is the checkpoint kernel thread shared by the CRAK family and
// BLCR: it sleeps until an ioctl enqueues work, then captures with kernel
// privileges. Kernel threads may hold Go state (they are never
// checkpointed), so this Program is deliberately stateful.
type daemon struct {
	name  string
	k     *kernel.Kernel
	self  *proc.Process
	queue []*ckptRequest
	// preCapture runs in thread context before the capture (BLCR uses it
	// to run the application's registered callback handler).
	preCapture func(req *ckptRequest)
}

// Name implements kernel.Program.
func (d *daemon) Name() string { return d.name }

// Init implements kernel.Program: daemons start blocked, waiting for work.
func (d *daemon) Init(ctx *kernel.Context) error {
	ctx.P.State = proc.StateBlocked
	ctx.P.WaitReason = "idle checkpoint thread"
	return nil
}

// Step implements kernel.Program.
func (d *daemon) Step(ctx *kernel.Context) (kernel.Status, error) {
	if len(d.queue) == 0 {
		ctx.P.State = proc.StateBlocked
		ctx.P.WaitReason = "idle checkpoint thread"
		return kernel.StatusBlocked, nil
	}
	req := d.queue[0]
	d.queue = d.queue[1:]
	if d.preCapture != nil {
		d.preCapture(req)
	}
	captureKernel(d.k, d.self, req.target, req.tgt, req.env, req.opts, req.ticket)
	return kernel.StatusRunning, nil
}

// enqueue adds work and wakes the thread.
func (d *daemon) enqueue(req *ckptRequest) {
	d.queue = append(d.queue, req)
	d.k.Wake(d.self)
}

// spawnDaemon creates and registers the kernel thread.
func spawnDaemon(k *kernel.Kernel, name string, rtprio int, policy proc.Policy) (*daemon, error) {
	d := &daemon{name: name, k: k}
	p, err := k.SpawnKernelThread(d, rtprio)
	if err != nil {
		return nil, err
	}
	p.Policy = policy
	d.self = p
	return d, nil
}
