package syslevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/fs"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

// ioctl request codes for the checkpoint device nodes.
const (
	IoctlCheckpoint uint = 0xC501
	IoctlRestart    uint = 0xC502
)

// threadMech is the shared core of the kernel-thread mechanisms (CRAK,
// ZAP, UCLiK, PsncR/C, BLCR): a loadable module that spawns a checkpoint
// kernel thread and exposes a device node whose ioctl interface receives
// the pid of the process to checkpoint (§4.1 "Kernel thread").
type threadMech struct {
	name    string
	devPath string
	k       *kernel.Kernel
	d       *daemon
	seqs    *mechanism.Seqs

	// Policy and rtprio configure the thread's scheduling class; the
	// paper's argument for SCHED_FIFO is an ablation axis (E4).
	policy proc.Policy
	rtprio int

	// capturePar is the sharded-capture worker-pool width (0 or 1 =
	// sequential), set through mechanism.CaptureParallelizer.
	capturePar int

	// restorePar is the sharded-replay worker-pool width for Restart (0
	// or 1 = sequential), set through mechanism.RestoreParallelizer.
	restorePar int

	// optsFor customizes the capture per concrete mechanism.
	optsFor func() captureOpts
}

func (m *threadMech) load(k *kernel.Kernel) error {
	if m.k != nil && m.k != k {
		return fmt.Errorf("syslevel: %s already installed on another kernel", m.name)
	}
	if m.k == k {
		return nil
	}
	d, err := spawnDaemon(k, m.name+"-kthread", m.rtprio, m.policy)
	if err != nil {
		return err
	}
	_, err = k.FS.RegisterDevice(m.devPath, &fs.DeviceOps{
		Ioctl: func(ctx any, request uint, arg any) error {
			if request != IoctlCheckpoint {
				return fmt.Errorf("%s: unknown ioctl %#x", m.name, request)
			}
			req, ok := arg.(*ckptRequest)
			if !ok {
				return fmt.Errorf("%s: bad ioctl argument", m.name)
			}
			d.enqueue(req)
			return nil
		},
	})
	if err != nil {
		return err
	}
	m.k, m.d = k, d
	m.seqs = mechanism.NewSeqs()
	return nil
}

func (m *threadMech) unload(k *kernel.Kernel) error {
	if m.k != k {
		return mechanism.ErrNotInstalled
	}
	k.Exit(m.d.self, 0)
	if err := k.FS.Remove(m.devPath); err != nil {
		return err
	}
	m.k, m.d = nil, nil
	return nil
}

// request opens the device node and issues the checkpoint ioctl, as the
// user-level control tool would, then returns the ticket that the kernel
// thread will complete.
func (m *threadMech) request(mech mechanism.Mechanism, k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if m.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	if err := checkStorageKind(mech, tgt); err != nil {
		return nil, err
	}
	if p.Multithreaded() && !mech.Features().Multithreaded {
		return nil, fmt.Errorf("%w: %s cannot checkpoint multithreaded processes", mechanism.ErrUnsupported, m.name)
	}
	// The tool's open+ioctl+close round trips.
	k.Charge(3*k.CM.Syscall(), "ioctl-tool")
	of, err := k.FS.Open(m.devPath, fs.ORead|fs.OWrite)
	if err != nil {
		return nil, err
	}
	defer of.Close()
	t := &mechanism.Ticket{RequestedAt: k.Now()}
	opts := m.optsFor()
	opts.seqs = m.seqs
	opts.parallelism = m.capturePar
	req := &ckptRequest{target: p, tgt: tgt, env: env, opts: opts, ticket: t}
	if err := of.Ioctl(nil, IoctlCheckpoint, req); err != nil {
		return nil, err
	}
	return t, nil
}

// SetCaptureParallelism implements mechanism.CaptureParallelizer for the
// whole kernel-thread family: the checkpoint thread forks that many
// workers for the payload read and image encode of every later capture.
func (m *threadMech) SetCaptureParallelism(workers int) { m.capturePar = workers }

// SetRestoreParallelism implements mechanism.RestoreParallelizer for the
// whole kernel-thread family: later Restarts shard chain replay across
// that many workers.
func (m *threadMech) SetRestoreParallelism(workers int) { m.restorePar = workers }

// RestartLazy implements mechanism.LazyRestarter for the whole
// kernel-thread family: restart before read, with the family's
// configured replay width applied to both the eager hot set and the
// deferred plan.
func (m *threadMech) RestartLazy(k *kernel.Kernel, leaf *checkpoint.Image, opt checkpoint.LazyOptions) (*proc.Process, *checkpoint.LazySession, error) {
	opt.Parallelism = m.restorePar
	return checkpoint.LazyRestore(k, leaf, opt)
}

// requestDelta is request with the chain knobs an orchestration layer
// needs for incremental shipping: the caller's tracker supplies the
// dirty ranges, epoch namespaces the object names by incarnation, and
// rebase forgets the PID's chain so the capture publishes a standalone
// full image. The rebase/tracker contract is the caller's (see
// mechanism.DeltaRequester): a rebase round must pass a nil or fresh
// tracker, never one whose collections are already on the wire.
func (m *threadMech) requestDelta(mech mechanism.Mechanism, k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env,
	trk checkpoint.Tracker, epoch uint64, rebase bool) (*mechanism.Ticket, error) {
	if m.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	if err := checkStorageKind(mech, tgt); err != nil {
		return nil, err
	}
	if p.Multithreaded() && !mech.Features().Multithreaded {
		return nil, fmt.Errorf("%w: %s cannot checkpoint multithreaded processes", mechanism.ErrUnsupported, m.name)
	}
	if rebase {
		m.seqs.Rebase(p.PID)
	}
	k.Charge(3*k.CM.Syscall(), "ioctl-tool")
	of, err := k.FS.Open(m.devPath, fs.ORead|fs.OWrite)
	if err != nil {
		return nil, err
	}
	defer of.Close()
	t := &mechanism.Ticket{RequestedAt: k.Now()}
	opts := m.optsFor()
	opts.seqs = m.seqs
	opts.parallelism = m.capturePar
	opts.trk = trk
	opts.epoch = epoch
	req := &ckptRequest{target: p, tgt: tgt, env: env, opts: opts, ticket: t}
	if err := of.Ioctl(nil, IoctlCheckpoint, req); err != nil {
		return nil, err
	}
	return t, nil
}

// CRAK models Zhong & Nieh's CRAK [40]: the first kernel-module
// checkpoint/restart for Linux, a kernel thread reached through a /dev
// node's ioctl interface; migration can be disabled to store the state
// locally or remotely instead.
type CRAK struct {
	threadMech
}

// NewCRAK returns a CRAK instance. The checkpoint thread runs SCHED_FIFO
// (see NewCRAKWithPolicy for the E4 ablation).
func NewCRAK() *CRAK { return NewCRAKWithPolicy(proc.SchedFIFO, 50) }

// NewCRAKWithPolicy returns a CRAK whose kernel thread uses the given
// scheduling class — the ablation axis of §4.1's priority discussion.
func NewCRAKWithPolicy(policy proc.Policy, rtprio int) *CRAK {
	m := &CRAK{threadMech{name: "CRAK", devPath: "/dev/crak", policy: policy, rtprio: rtprio}}
	m.optsFor = func() captureOpts { return captureOpts{mech: "CRAK"} }
	return m
}

// Name implements mechanism.Mechanism.
func (m *CRAK) Name() string { return "CRAK" }

// Features implements mechanism.Mechanism (Table 1 row 4).
func (m *CRAK) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "CRAK", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelThread,
		Transparent:  true,
		Storage:      []storage.Kind{storage.KindLocal, storage.KindRemote},
		Initiation:   taxonomy.InitUser,
		KernelModule: true,
	}
}

// ModuleName implements kernel.Module.
func (m *CRAK) ModuleName() string { return "crak" }

// Load implements kernel.Module.
func (m *CRAK) Load(k *kernel.Kernel) error { return m.load(k) }

// Unload implements kernel.Module.
func (m *CRAK) Unload(k *kernel.Kernel) error { return m.unload(k) }

// Install implements mechanism.Mechanism.
func (m *CRAK) Install(k *kernel.Kernel) error {
	if k.ModuleLoaded(m.ModuleName()) {
		return nil
	}
	return k.LoadModule(m)
}

// Prepare implements mechanism.Mechanism: fully transparent.
func (m *CRAK) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism: none required.
func (m *CRAK) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism.
func (m *CRAK) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	return m.request(m, k, p, tgt, env)
}

// RequestDelta implements mechanism.DeltaRequester: the same ioctl path
// as Request, shipping only the tracker's dirty ranges chained onto the
// previous capture.
func (m *CRAK) RequestDelta(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env,
	trk checkpoint.Tracker, epoch uint64, rebase bool) (*mechanism.Ticket, error) {
	return m.requestDelta(m, k, p, tgt, env, trk, epoch, rebase)
}

// Restart implements mechanism.Mechanism.
func (m *CRAK) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue, Parallelism: m.restorePar})
}

// UCLiK models Foster's UCLiK [13]: it "inherits much of the framework of
// CRAK" but restores the original process ID and the contents of deleted
// files; checkpoints are stored locally only.
type UCLiK struct {
	threadMech
}

// NewUCLiK returns a UCLiK instance.
func NewUCLiK() *UCLiK {
	m := &UCLiK{threadMech{name: "UCLiK", devPath: "/dev/uclik", policy: proc.SchedFIFO, rtprio: 50}}
	m.optsFor = func() captureOpts { return captureOpts{mech: "UCLiK"} }
	return m
}

// Name implements mechanism.Mechanism.
func (m *UCLiK) Name() string { return "UCLiK" }

// Features implements mechanism.Mechanism (Table 1 row 5).
func (m *UCLiK) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "UCLiK", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelThread,
		Transparent:  true,
		Storage:      []storage.Kind{storage.KindLocal},
		Initiation:   taxonomy.InitUser,
		KernelModule: true,
		PreservesPID: true, RestoresDeletedFiles: true,
	}
}

// ModuleName implements kernel.Module.
func (m *UCLiK) ModuleName() string { return "uclik" }

// Load implements kernel.Module.
func (m *UCLiK) Load(k *kernel.Kernel) error { return m.load(k) }

// Unload implements kernel.Module.
func (m *UCLiK) Unload(k *kernel.Kernel) error { return m.unload(k) }

// Install implements mechanism.Mechanism.
func (m *UCLiK) Install(k *kernel.Kernel) error {
	if k.ModuleLoaded(m.ModuleName()) {
		return nil
	}
	return k.LoadModule(m)
}

// Prepare implements mechanism.Mechanism.
func (m *UCLiK) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism.
func (m *UCLiK) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism.
func (m *UCLiK) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	return m.request(m, k, p, tgt, env)
}

// Restart implements mechanism.Mechanism: original PID and deleted files
// come back.
func (m *UCLiK) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{
		Enqueue:             enqueue,
		PreservePID:         true,
		RestoreDeletedFiles: true,
		Parallelism:         m.restorePar,
	})
}

// ZAP models Osman et al.'s ZAP [24]: CRAK's kernel-thread approach plus
// the pod (PrOcess Domain) abstraction that virtualizes PIDs, sockets and
// shared memory so migrated processes find consistent resources on the
// target machine — at the price of system-call interception overhead.
type ZAP struct {
	threadMech
	// InterceptOverhead is charged per intercepted system call.
	InterceptOverhead int // nanoseconds
}

// NewZAP returns a ZAP instance.
func NewZAP() *ZAP {
	m := &ZAP{
		threadMech:        threadMech{name: "ZAP", devPath: "/dev/zap", policy: proc.SchedFIFO, rtprio: 50},
		InterceptOverhead: 300,
	}
	m.optsFor = func() captureOpts { return captureOpts{mech: "ZAP", kernelExtras: true} }
	return m
}

// Name implements mechanism.Mechanism.
func (m *ZAP) Name() string { return "ZAP" }

// Features implements mechanism.Mechanism (Table 1 row 7).
func (m *ZAP) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "ZAP", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelThread,
		Transparent:          true,
		Initiation:           taxonomy.InitUser,
		KernelModule:         true,
		VirtualizesResources: true, PreservesPID: true,
	}
}

// ModuleName implements kernel.Module.
func (m *ZAP) ModuleName() string { return "zap" }

// Load implements kernel.Module.
func (m *ZAP) Load(k *kernel.Kernel) error { return m.load(k) }

// Unload implements kernel.Module.
func (m *ZAP) Unload(k *kernel.Kernel) error { return m.unload(k) }

// Install implements mechanism.Mechanism.
func (m *ZAP) Install(k *kernel.Kernel) error {
	if k.ModuleLoaded(m.ModuleName()) {
		return nil
	}
	return k.LoadModule(m)
}

// Prepare implements mechanism.Mechanism: pods intercept system calls at
// run time; the application itself is untouched (transparent), but every
// syscall pays the interception tax.
func (m *ZAP) Prepare(prog kernel.Program) kernel.Program {
	return &podShim{inner: prog, overheadNS: int64(m.InterceptOverhead)}
}

// podShim wraps a program inside a pod: per-syscall interception cost.
type podShim struct {
	inner      kernel.Program
	overheadNS int64
}

// Name implements kernel.Program. The pod does not change the program
// identity: migration targets look it up under the same name, so restart
// works whether or not the target kernel wraps it again.
func (s *podShim) Name() string { return s.inner.Name() }

// Init implements kernel.Program: entering the pod assigns the virtual
// PID under which the process will always know itself.
func (s *podShim) Init(ctx *kernel.Context) error {
	ctx.P.Registered["zap-pod"] = true
	ctx.P.VPID = ctx.P.PID
	return s.inner.Init(ctx)
}

// Step implements kernel.Program: run the inner step and charge the
// interception overhead for each system call it made.
func (s *podShim) Step(ctx *kernel.Context) (kernel.Status, error) {
	before := ctx.K.SyscallCount
	st, err := s.inner.Step(ctx)
	if n := ctx.K.SyscallCount - before; n > 0 {
		ctx.K.Charge(simtime.Duration(int64(n)*s.overheadNS), "zap-intercept")
	}
	return st, err
}

// Setup implements mechanism.Mechanism: pod creation for an already
// running process.
func (m *ZAP) Setup(k *kernel.Kernel, p *proc.Process) error {
	p.Registered["zap-pod"] = true
	if p.VPID == 0 {
		p.VPID = p.PID
	}
	return nil
}

// Request implements mechanism.Mechanism: ZAP is migration-oriented with
// no stable storage (Table 1: none); tgt must be nil and the image is
// returned in the ticket.
func (m *ZAP) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if tgt != nil {
		return nil, fmt.Errorf("syslevel: ZAP migrates process state directly (Table 1 storage: none)")
	}
	return m.request(m, k, p, nil, env)
}

// Restart implements mechanism.Mechanism: full pod restore — the
// process's identity (virtual PID) and its kernel resources come back,
// with no claim on the target machine's real PID space.
func (m *ZAP) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{
		Enqueue:             enqueue,
		VirtualizePID:       true,
		RecreateKernelState: true,
		Parallelism:         m.restorePar,
	})
}

// PsncRC models Meyer's PsncR/C [22] (ported from SUN platforms): a
// kernel thread in a module, a /proc entry, ioctl-driven, local disk
// only, and no data optimization — code, shared libraries and open files
// are always included in the checkpoint.
type PsncRC struct {
	threadMech
	procPath string
}

// NewPsncRC returns a PsncR/C instance.
func NewPsncRC() *PsncRC {
	m := &PsncRC{
		threadMech: threadMech{name: "PsncR/C", devPath: "/dev/psncrc", policy: proc.SchedFIFO, rtprio: 50},
		procPath:   "/proc/psncrc",
	}
	m.optsFor = func() captureOpts { return captureOpts{mech: "PsncR/C", includeFileContents: true} }
	return m
}

// Name implements mechanism.Mechanism.
func (m *PsncRC) Name() string { return "PsncR/C" }

// Features implements mechanism.Mechanism (Table 1 row 10).
func (m *PsncRC) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "PsncR/C", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelThread,
		Transparent:  true,
		Storage:      []storage.Kind{storage.KindLocal},
		Initiation:   taxonomy.InitUser,
		KernelModule: true,
	}
}

// ModuleName implements kernel.Module.
func (m *PsncRC) ModuleName() string { return "psncrc" }

// Load implements kernel.Module.
func (m *PsncRC) Load(k *kernel.Kernel) error {
	if err := m.load(k); err != nil {
		return err
	}
	_, err := k.FS.RegisterProc(m.procPath, &fs.ProcOps{
		Read: func(ctx any) ([]byte, error) { return []byte("psncrc ready\n"), nil },
	})
	return err
}

// Unload implements kernel.Module.
func (m *PsncRC) Unload(k *kernel.Kernel) error {
	if err := k.FS.Remove(m.procPath); err != nil {
		return err
	}
	return m.unload(k)
}

// Install implements mechanism.Mechanism.
func (m *PsncRC) Install(k *kernel.Kernel) error {
	if k.ModuleLoaded(m.ModuleName()) {
		return nil
	}
	return k.LoadModule(m)
}

// Prepare implements mechanism.Mechanism.
func (m *PsncRC) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism.
func (m *PsncRC) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism.
func (m *PsncRC) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	return m.request(m, k, p, tgt, env)
}

// Restart implements mechanism.Mechanism.
func (m *PsncRC) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue, Parallelism: m.restorePar})
}
