package syslevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// selfCheckpointer is the shared core of the syscall-agent mechanisms
// (VMADump, BProc, Checkpoint [5]): the application itself invokes a
// checkpoint system call at points compiled into it, so initiation is
// "automatic" and transparency is lost — the program must be modified
// (here: wrapped) before it can be checkpointed at all.
type selfCheckpointer struct {
	name string
	k    *kernel.Kernel
	seqs *mechanism.Seqs
	// every is the self-checkpoint period in app iterations; 0 means
	// only explicit Requests trigger captures.
	every uint64
	// defaultTgt receives periodic self-checkpoints.
	defaultTgt storage.Target
	// fork selects fork-consistency (Checkpoint [5]).
	fork bool

	pending map[proc.PID]*ckptRequest
}

func (m *selfCheckpointer) install(k *kernel.Kernel) error {
	if m.k != nil && m.k != k {
		return fmt.Errorf("syslevel: %s already installed on another kernel", m.name)
	}
	m.k = k
	if m.seqs == nil {
		m.seqs = mechanism.NewSeqs()
	}
	if m.pending == nil {
		m.pending = make(map[proc.PID]*ckptRequest)
	}
	return nil
}

// prepare wraps prog so that every `every` iterations (and whenever a
// request is pending) the app traps into the checkpoint syscall.
func (m *selfCheckpointer) prepare(prog kernel.Program) kernel.Program {
	every := m.every
	if every == 0 {
		every = 1 // check for pending requests at every iteration boundary
	}
	return workload.Hooked{
		Inner: prog,
		Label: m.name,
		Every: every,
		Hook: func(ctx *kernel.Context) error {
			ctx.P.Registered[m.name] = true
			return m.selfCheckpoint(ctx)
		},
	}
}

// selfCheckpoint runs in process context when the app reaches a
// checkpoint point: one syscall into the kernel, then a kernel-level
// capture of `current`.
func (m *selfCheckpointer) selfCheckpoint(ctx *kernel.Context) error {
	k := ctx.K
	req := m.pending[ctx.P.PID]
	switch {
	case req != nil:
		delete(m.pending, ctx.P.PID)
	case m.every > 0 && m.defaultTgt != nil:
		req = &ckptRequest{
			target: ctx.P,
			tgt:    m.defaultTgt,
			env:    mechanism.StorageEnvFor(ctx),
			ticket: &mechanism.Ticket{RequestedAt: k.Now()},
		}
	default:
		return nil
	}
	k.Charge(k.CM.Syscall(), "syscall:"+m.name)
	opts := captureOpts{mech: m.name, seqs: m.seqs, forkConsistency: m.fork}
	env := req.env
	if m.fork {
		// Checkpoint [5]: after the fork the parent returns to user code
		// while the frozen copy is saved; I/O waits therefore let every
		// process — including the parent — keep running.
		env = &storage.Env{Bill: k, Wait: func(d simtime.Duration, what string) { k.RunWhile(d, nil) }}
	}
	captureKernel(k, ctx.P, ctx.P, req.tgt, env, opts, req.ticket)
	return req.ticket.Err
}

func (m *selfCheckpointer) request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if m.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	if !p.Registered[m.name] {
		// The application was not modified to call the checkpoint
		// syscall: there is no way in (§4.1 "the application source code
		// is not available and so is not possible to change it").
		return nil, fmt.Errorf("%w: %s requires the application to invoke the checkpoint system call", mechanism.ErrUnsupported, m.name)
	}
	t := &mechanism.Ticket{RequestedAt: k.Now()}
	m.pending[p.PID] = &ckptRequest{target: p, tgt: tgt, env: env, ticket: t}
	return t, nil
}

// VMADump models the Virtual Memory Area Dumper [17]: checkpoint/restart
// system calls in the static kernel, invoked by the application on itself
// (the `current` macro), writing the process state to a file descriptor.
type VMADump struct {
	selfCheckpointer
}

// NewVMADump returns a VMADump instance. every/defaultTgt configure the
// application's compiled-in periodic self-checkpointing (0 = only
// explicit requests, honoured at the next checkpoint point).
func NewVMADump(every uint64, defaultTgt storage.Target) *VMADump {
	return &VMADump{selfCheckpointer{name: "VMADump", every: every, defaultTgt: defaultTgt}}
}

// Name implements mechanism.Mechanism.
func (m *VMADump) Name() string { return "VMADump" }

// Features implements mechanism.Mechanism (Table 1 row 1).
func (m *VMADump) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "VMADump", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentSyscall,
		Storage:    []storage.Kind{storage.KindLocal, storage.KindRemote},
		Initiation: taxonomy.InitAutomatic,
	}
}

// Install implements mechanism.Mechanism (static kernel: syscall added).
func (m *VMADump) Install(k *kernel.Kernel) error { return m.install(k) }

// Prepare implements mechanism.Mechanism: the application must be
// modified to call the syscall.
func (m *VMADump) Prepare(prog kernel.Program) kernel.Program { return m.prepare(prog) }

// Setup implements mechanism.Mechanism (none needed beyond Prepare).
func (m *VMADump) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism.
func (m *VMADump) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if err := checkStorageKind(m, tgt); err != nil {
		return nil, err
	}
	return m.request(k, p, tgt, env)
}

// Restart implements mechanism.Mechanism.
func (m *VMADump) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue})
}

// BProc models the Beowulf Distributed Process Space [18]: VMADump used
// for process migration inside a cluster, with no stable storage at all
// (Table 1: storage "none") — images move directly to the target node.
type BProc struct {
	selfCheckpointer
}

// NewBProc returns a BProc instance.
func NewBProc() *BProc {
	return &BProc{selfCheckpointer{name: "BPROC", every: 1}}
}

// Name implements mechanism.Mechanism.
func (m *BProc) Name() string { return "BPROC" }

// Features implements mechanism.Mechanism (Table 1 row 2).
func (m *BProc) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "BPROC", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentSyscall,
		Initiation: taxonomy.InitAutomatic,
	}
}

// Install implements mechanism.Mechanism.
func (m *BProc) Install(k *kernel.Kernel) error { return m.install(k) }

// Prepare implements mechanism.Mechanism.
func (m *BProc) Prepare(prog kernel.Program) kernel.Program { return m.prepare(prog) }

// Setup implements mechanism.Mechanism.
func (m *BProc) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism: BProc has no stable storage;
// requests capture in-memory images for immediate migration.
func (m *BProc) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if tgt != nil {
		return nil, fmt.Errorf("syslevel: BPROC has no stable storage (migration only)")
	}
	return m.request(k, p, nil, env)
}

// Restart implements mechanism.Mechanism.
func (m *BProc) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue})
}

// CheckpointFork models "Checkpoint" (Carothers & Szymanski [5]):
// checkpoint system calls in the static kernel whose innovation is
// consistency via fork — the application keeps running while a concurrent
// thread saves the frozen copy.
type CheckpointFork struct {
	selfCheckpointer
}

// NewCheckpointFork returns a Checkpoint [5] instance with compiled-in
// period every (iterations) writing to defaultTgt.
func NewCheckpointFork(every uint64, defaultTgt storage.Target) *CheckpointFork {
	return &CheckpointFork{selfCheckpointer{name: "Checkpoint", every: every, defaultTgt: defaultTgt, fork: true}}
}

// Name implements mechanism.Mechanism.
func (m *CheckpointFork) Name() string { return "Checkpoint" }

// Features implements mechanism.Mechanism (Table 1 row 12).
func (m *CheckpointFork) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "Checkpoint", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentSyscall,
		Storage:       []storage.Kind{storage.KindLocal},
		Initiation:    taxonomy.InitAutomatic,
		Multithreaded: true, ForkConsistency: true,
	}
}

// Install implements mechanism.Mechanism.
func (m *CheckpointFork) Install(k *kernel.Kernel) error { return m.install(k) }

// Prepare implements mechanism.Mechanism.
func (m *CheckpointFork) Prepare(prog kernel.Program) kernel.Program { return m.prepare(prog) }

// Setup implements mechanism.Mechanism.
func (m *CheckpointFork) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism.
func (m *CheckpointFork) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if err := checkStorageKind(m, tgt); err != nil {
		return nil, err
	}
	return m.request(k, p, tgt, env)
}

// Restart implements mechanism.Mechanism.
func (m *CheckpointFork) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue})
}
