package syslevel

import (
	"encoding/binary"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// runIterations advances the machine until p has executed n more
// workload iterations (or exited).
func runIterations(k *kernel.Kernel, p *proc.Process, n uint64) {
	target := p.Regs().PC + n
	for p.Regs().PC < target && p.State != proc.StateZombie {
		k.RunFor(100 * simtime.Microsecond)
	}
}

// arenaDigest hashes every resident arena page (number + contents). The
// workload's fingerprint register cannot see lost page CONTENTS — Sparse
// mixes only page numbers — so restore-completeness checks must compare
// memory itself.
func arenaDigest(t *testing.T, p *proc.Process) uint64 {
	t.Helper()
	h := fnv.New64a()
	var num [8]byte
	buf := make([]byte, mem.PageSize)
	for _, pi := range p.AS.ResidentPages() {
		if pi.VMA.Name != workload.ArenaName {
			continue
		}
		binary.LittleEndian.PutUint64(num[:], uint64(pi.Num))
		h.Write(num[:])
		if err := p.AS.ReadDirect(pi.Num.Base(), buf); err != nil {
			t.Fatalf("read page %d: %v", pi.Num, err)
		}
		h.Write(buf)
	}
	return h.Sum64()
}

// A rebase full image must cover every resident page, not just the pages
// dirtied since the last delta. Pages written early and never touched
// again are exactly what a dirty-only "full" would lose — and with
// MaxChain=2 the third checkpoint is a rebase, so restoring from it
// alone exposes any hole.
func TestTICKRebaseFullImageComplete(t *testing.T) {
	const iters = 30
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.05, Seed: 21}
	want := referenceFingerprint(t, NewTICK(), prog, iters)

	m := NewTICK()
	m.MaxChain = 2
	k := newMachine("src", prog)
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	tgt := localTarget()

	// ckpt 1: full (first collection), ckpt 2: delta, ckpt 3: rebase full.
	// The process is frozen before the last capture so its memory can be
	// compared against the restored copy afterwards.
	var leaf *checkpoint.Image
	for i := 0; i < 3; i++ {
		runIterations(k, p, 4)
		if i == 2 {
			k.Stop(p)
		}
		tk, err := mechanism.Checkpoint(m, k, p, tgt, nil)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
		leaf = tk.Img
	}
	if leaf.Mode != checkpoint.ModeFull || leaf.Parent != "" {
		t.Fatalf("third checkpoint mode=%v parent=%q, want standalone full", leaf.Mode, leaf.Parent)
	}

	// Restore from the rebase image ALONE on a fresh machine: every page
	// the process ever wrote must be in it, byte for byte.
	wantMem := arenaDigest(t, p)
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	dst := newMachine("dst", prog)
	p2, err := m.Restart(dst, []*checkpoint.Image{leaf}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := arenaDigest(t, p2); got != wantMem {
		t.Fatalf("restored memory digest %#x, want %#x: rebase full image has holes", got, wantMem)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute)) {
		t.Fatalf("restored process stuck (pc=%d)", p2.Regs().PC)
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("fingerprint %#x, want %#x", got, want)
	}
}

// TestCRAKDeltaChain drives the orchestration-facing delta path end to
// end: rebase full, chained deltas under an epoch namespace, a
// mid-stream rebase with a live tracker, restore by chain replay.
func TestCRAKDeltaChain(t *testing.T) {
	const iters = 40
	const epoch = 7
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.05, Seed: 22}
	want := referenceFingerprint(t, NewCRAK(), prog, iters)

	m := NewCRAK()
	k := newMachine("src", prog)
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	tgt := remoteTarget()

	trk := checkpoint.NewCarryTracker(checkpoint.NewKernelWPTracker(k, p))
	if err := trk.Arm(); err != nil {
		t.Fatal(err)
	}
	defer trk.Close()

	capture := func(passTrk checkpoint.Tracker, rebase bool) *mechanism.Ticket {
		t.Helper()
		tk, err := m.RequestDelta(k, p, tgt, nil, passTrk, epoch, rebase)
		if err != nil {
			t.Fatal(err)
		}
		if err := mechanism.WaitTicket(k, tk, simtime.Minute); err != nil {
			t.Fatal(err)
		}
		trk.Commit()
		return tk
	}

	// Round 1: initial rebase with the fresh tracker (first collection
	// returns everything resident → a complete full image).
	runIterations(k, p, 5)
	full := capture(trk, true)
	if full.Img.Mode != checkpoint.ModeFull {
		t.Fatalf("initial capture mode = %v", full.Img.Mode)
	}
	if !strings.HasPrefix(full.Img.ObjectName(), "ckpt/e7/") {
		t.Fatalf("epoch missing from object name %q", full.Img.ObjectName())
	}

	// Rounds 2..3: deltas chained onto the previous capture, each far
	// smaller than the full on this low-dirty-rate workload.
	var lastDelta *mechanism.Ticket
	for i := 0; i < 2; i++ {
		runIterations(k, p, 5)
		lastDelta = capture(trk, false)
		if lastDelta.Img.Mode != checkpoint.ModeIncremental {
			t.Fatalf("delta %d mode = %v", i, lastDelta.Img.Mode)
		}
		if lastDelta.Img.Parent == "" {
			t.Fatalf("delta %d has no parent", i)
		}
		if lastDelta.Stats.EncodedBytes >= full.Stats.EncodedBytes {
			t.Fatalf("delta %d shipped %d bytes, full shipped %d — no savings",
				i, lastDelta.Stats.EncodedBytes, full.Stats.EncodedBytes)
		}
	}

	// Mid-stream rebase with a LIVE tracker: per the DeltaRequester
	// contract the tracker must not be passed, and the following delta
	// still restores correctly (the uncollected dirty set carries over).
	runIterations(k, p, 5)
	re := capture(nil, true)
	if re.Img.Mode != checkpoint.ModeFull || re.Img.Parent != "" {
		t.Fatalf("rebase capture mode=%v parent=%q", re.Img.Mode, re.Img.Parent)
	}
	if re.Img.Seq <= lastDelta.Img.Seq {
		t.Fatalf("rebase seq %d reuses earlier names (≤ %d)", re.Img.Seq, lastDelta.Img.Seq)
	}
	runIterations(k, p, 5)
	k.Stop(p) // freeze so live memory matches the leaf image exactly
	leaf := capture(trk, false)

	// Kill and restore by chain replay on a fresh machine. Restart needs
	// no module state, so a fresh instance restores another's chain.
	wantMem := arenaDigest(t, p)
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	chain, err := checkpoint.LoadChain(tgt, nil, leaf.Img.ObjectName())
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain length %d, want 2 (rebase full + one delta)", len(chain))
	}
	dst := newMachine("dst", prog)
	p2, err := NewCRAK().Restart(dst, chain, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := arenaDigest(t, p2); got != wantMem {
		t.Fatalf("restored memory digest %#x, want %#x: chain replay lost pages", got, wantMem)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute)) {
		t.Fatalf("restored process stuck (pc=%d)", p2.Regs().PC)
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("fingerprint %#x, want %#x", got, want)
	}
}
