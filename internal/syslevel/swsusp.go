package syslevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

// SoftwareSuspend models swsusp [6]: the hibernation mechanism in the
// official kernel. A new kernel signal freezes every process in the
// system; the RAM image is then saved to the swap partition and the
// machine powers down. At start-up the image is restored and all
// processes resume. Saving to a memory target instead models the standby
// functionality.
type SoftwareSuspend struct {
	k        *kernel.Kernel
	seqs     *mechanism.Seqs
	freezeSg sig.Signal
}

// NewSoftwareSuspend returns a Software Suspend instance.
func NewSoftwareSuspend() *SoftwareSuspend { return &SoftwareSuspend{} }

// Name implements mechanism.Mechanism.
func (m *SoftwareSuspend) Name() string { return "Software Suspend" }

// Features implements mechanism.Mechanism (Table 1 row 11).
func (m *SoftwareSuspend) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "Software Suspend", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelSignal,
		Transparent:  true,
		Storage:      []storage.Kind{storage.KindLocal},
		Initiation:   taxonomy.InitUser,
		WholeMachine: true,
	}
}

// Install implements mechanism.Mechanism: swsusp lives in the static
// kernel ("implemented in the official kernel source code") and adds the
// freeze signal.
func (m *SoftwareSuspend) Install(k *kernel.Kernel) error {
	if m.k != nil && m.k != k {
		return fmt.Errorf("syslevel: Software Suspend already installed on another kernel")
	}
	if m.k == k {
		return nil
	}
	m.k = k
	m.seqs = mechanism.NewSeqs()
	m.freezeSg = k.SigTable.Register("SIGFREEZE(swsusp)", func(c any, s sig.Signal) {
		if ctx, ok := c.(*kernel.Context); ok {
			ctx.K.Stop(ctx.P)
		}
	})
	return nil
}

// Prepare implements mechanism.Mechanism: fully transparent.
func (m *SoftwareSuspend) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism.
func (m *SoftwareSuspend) Setup(k *kernel.Kernel, p *proc.Process) error { return nil }

// Request implements mechanism.Mechanism: checkpointing "one process"
// with swsusp means hibernating the machine it runs on; the ticket's
// image is the requested process's, but every process was saved.
func (m *SoftwareSuspend) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if err := checkStorageKind(m, tgt); err != nil {
		return nil, err
	}
	t := &mechanism.Ticket{RequestedAt: k.Now()}
	imgs, err := m.Suspend(k, tgt, env)
	if err != nil {
		t.Err, t.Done, t.CompletedAt = err, true, k.Now()
		return t, nil
	}
	for _, img := range imgs {
		if img.PID == p.PID {
			t.Img = img
			t.Stats = checkpoint.Stats{Mode: img.Mode, PayloadBytes: img.PayloadBytes(), Object: img.ObjectName()}
		}
	}
	t.StartedAt = t.RequestedAt
	t.CompletedAt = k.Now()
	t.Done = true
	return t, nil
}

// Suspend freezes all user processes, writes their images to the swap
// target, and powers the machine down. Returns the saved images.
func (m *SoftwareSuspend) Suspend(k *kernel.Kernel, tgt storage.Target, env *storage.Env) ([]*checkpoint.Image, error) {
	if m.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	if env == nil {
		env = storage.NopEnv()
	}
	// Deliver the freeze signal to every user process ("delivered to
	// every process in the system to freeze their execution").
	var victims []*proc.Process
	for _, p := range k.Procs.All() {
		if p.KernelThread || p.State == proc.StateZombie || p.State == proc.StateDead {
			continue
		}
		_ = k.SendSignal(p, m.freezeSg)
		victims = append(victims, p)
	}
	// Let the signals deliver (each process freezes at its next
	// kernel→user transition).
	deadline := k.Now().Add(simtimeSecond)
	for k.Now() < deadline {
		allStopped := true
		for _, p := range victims {
			if p.State != proc.StateStopped && p.State != proc.StateZombie {
				allStopped = false
			}
		}
		if allStopped {
			break
		}
		k.RunFor(simtimeTick)
	}

	var imgs []*checkpoint.Image
	for _, p := range victims {
		if p.State != proc.StateStopped {
			continue
		}
		seq, parent := m.seqs.Next(p.PID)
		img, _, err := checkpoint.Capture(checkpoint.Request{
			Acc:       &checkpoint.KernelAccessor{K: k, P: p},
			Target:    tgt,
			Env:       env,
			Mechanism: m.Name(),
			Hostname:  k.Cfg.Hostname,
			Seq:       seq,
			Parent:    parent,
			Now:       k.Now(),
		})
		if err != nil {
			return nil, fmt.Errorf("swsusp: saving pid %d: %w", p.PID, err)
		}
		m.seqs.Commit(img)
		imgs = append(imgs, img)
	}
	k.SetHalted(true) // power down
	return imgs, nil
}

// Resume powers the machine back up and restarts every image. The kernel
// may be the same one (reboot) or a fresh instance of the same machine.
func (m *SoftwareSuspend) Resume(k *kernel.Kernel, imgs []*checkpoint.Image) ([]*proc.Process, error) {
	k.SetHalted(false)
	var out []*proc.Process
	for _, img := range imgs {
		// On reboot the old process table is gone; on the same kernel the
		// frozen originals must be cleared first.
		if old, err := k.Procs.Lookup(img.PID); err == nil {
			k.Exit(old, 0)
			k.Procs.Remove(old.PID)
		}
		p, err := checkpoint.Restore(k, []*checkpoint.Image{img}, checkpoint.RestoreOptions{
			Enqueue:     true,
			PreservePID: true,
		})
		if err != nil {
			return out, fmt.Errorf("swsusp: resume pid %d: %w", img.PID, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// Restart implements mechanism.Mechanism for a single image.
func (m *SoftwareSuspend) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue, PreservePID: true})
}
