package syslevel

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mechanism"
	"repro/internal/simos/fs"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

// signalCheckpointer is the shared core of the kernel-mode-signal
// mechanisms (EPCKPT, CHPOX): a signal whose *default action, in kernel
// mode,* is to checkpoint the receiving process. Delivery is deferred to
// the next kernel→user transition in the target's context — the latency
// the paper criticizes, which E4 measures.
type signalCheckpointer struct {
	name string
	k    *kernel.Kernel
	seqs *mechanism.Seqs
	sg   sig.Signal

	pending map[proc.PID]*ckptRequest
	// needsRegistration gates the signal action on prior Setup (EPCKPT's
	// launch tool, CHPOX's /proc write).
	needsRegistration bool
}

func (m *signalCheckpointer) installSignal(k *kernel.Kernel, s sig.Signal, register func() sig.Signal) error {
	if m.k != nil && m.k != k {
		return fmt.Errorf("syslevel: %s already installed on another kernel", m.name)
	}
	if m.k == k {
		return nil
	}
	m.k = k
	m.seqs = mechanism.NewSeqs()
	m.pending = make(map[proc.PID]*ckptRequest)
	m.sg = register()
	return nil
}

// action is the kernel-mode default action: capture `current` in process
// context.
func (m *signalCheckpointer) action(c any, s sig.Signal) {
	ctx, ok := c.(*kernel.Context)
	if !ok {
		return
	}
	req := m.pending[ctx.P.PID]
	if req == nil {
		return // stray signal: no request outstanding
	}
	delete(m.pending, ctx.P.PID)
	if m.needsRegistration && !ctx.P.Registered[m.name] {
		req.ticket.Err = fmt.Errorf("%w: %s: pid %d was not registered", mechanism.ErrNotRegistered, m.name, ctx.P.PID)
		req.ticket.Done = true
		req.ticket.CompletedAt = ctx.K.Now()
		return
	}
	captureKernel(ctx.K, ctx.P, ctx.P, req.tgt, req.env, captureOpts{mech: m.name, seqs: m.seqs}, req.ticket)
}

func (m *signalCheckpointer) request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if m.k != k {
		return nil, mechanism.ErrNotInstalled
	}
	t := &mechanism.Ticket{RequestedAt: k.Now()}
	m.pending[p.PID] = &ckptRequest{target: p, tgt: tgt, env: env, ticket: t}
	// The signal can come from the kill command line or from updating the
	// process's signal structure directly (§4.1); either way it is now
	// pending and will act at the next return to user mode.
	if err := k.SendSignal(p, m.sg); err != nil {
		delete(m.pending, p.PID)
		return nil, err
	}
	return t, nil
}

// EPCKPT models Pinheiro's EPCKPT [26]: checkpoint syscalls in the static
// kernel, a new default kernel signal to invoke the checkpoint, and
// command-line tools — applications must be *launched* through the tool,
// which traces them during execution (runtime overhead), after which any
// process can be checkpointed by pid.
type EPCKPT struct {
	signalCheckpointer
}

// NewEPCKPT returns an EPCKPT instance.
func NewEPCKPT() *EPCKPT {
	return &EPCKPT{signalCheckpointer{name: "EPCKPT", needsRegistration: true}}
}

// Name implements mechanism.Mechanism.
func (m *EPCKPT) Name() string { return "EPCKPT" }

// Features implements mechanism.Mechanism (Table 1 row 3).
func (m *EPCKPT) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "EPCKPT", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentSyscall,
		Transparent: true,
		Storage:     []storage.Kind{storage.KindLocal, storage.KindRemote},
		Initiation:  taxonomy.InitUser,
	}
}

// Install implements mechanism.Mechanism: static kernel change adding the
// checkpoint signal.
func (m *EPCKPT) Install(k *kernel.Kernel) error {
	return m.installSignal(k, 0, func() sig.Signal {
		return k.SigTable.Register("SIGCKPT(epckpt)", m.action)
	})
}

// Prepare implements mechanism.Mechanism: no source modification —
// transparent (Table 1).
func (m *EPCKPT) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism: the launch tool registers the
// process and traces it (the paper: "thus incurring undesirable
// overhead" — modeled as a fixed trace charge at launch).
func (m *EPCKPT) Setup(k *kernel.Kernel, p *proc.Process) error {
	if m.k != k {
		return mechanism.ErrNotInstalled
	}
	p.Registered[m.name] = true
	k.Charge(k.CM.Syscall()*4, "epckpt-launch-trace")
	return nil
}

// Request implements mechanism.Mechanism: the user tool sends the
// checkpoint signal by pid.
func (m *EPCKPT) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if err := checkStorageKind(m, tgt); err != nil {
		return nil, err
	}
	if !p.Registered[m.name] {
		return nil, fmt.Errorf("%w: %s: launch the application via the epckpt tool first", mechanism.ErrNotRegistered, m.name)
	}
	return m.request(k, p, tgt, env)
}

// Restart implements mechanism.Mechanism.
func (m *EPCKPT) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue})
}

// CHPOX models Sudakov & Meshcheryakov's CHPOX [36]: a kernel module that
// creates a /proc entry for registration and repurposes SIGSYS as the
// checkpoint signal; checkpoints are stored locally.
type CHPOX struct {
	signalCheckpointer
	procPath string
}

// NewCHPOX returns a CHPOX instance.
func NewCHPOX() *CHPOX {
	return &CHPOX{
		signalCheckpointer: signalCheckpointer{name: "CHPOX", needsRegistration: true},
		procPath:           "/proc/chpox",
	}
}

// Name implements mechanism.Mechanism.
func (m *CHPOX) Name() string { return "CHPOX" }

// Features implements mechanism.Mechanism (Table 1 row 6).
func (m *CHPOX) Features() taxonomy.Features {
	return taxonomy.Features{
		Name: "CHPOX", Context: taxonomy.SystemLevel, Agent: taxonomy.AgentKernelSignal,
		Transparent:  true,
		Storage:      []storage.Kind{storage.KindLocal},
		Initiation:   taxonomy.InitUser,
		KernelModule: true,
	}
}

// ModuleName implements kernel.Module.
func (m *CHPOX) ModuleName() string { return "chpox" }

// Load implements kernel.Module.
func (m *CHPOX) Load(k *kernel.Kernel) error {
	err := m.installSignal(k, sig.SIGSYS, func() sig.Signal {
		k.SigTable.Override(sig.SIGSYS, "SIGSYS(chpox)", m.action)
		return sig.SIGSYS
	})
	if err != nil {
		return err
	}
	_, err = k.FS.RegisterProc(m.procPath, &fs.ProcOps{
		Read: func(ctx any) ([]byte, error) {
			return []byte(fmt.Sprintf("chpox: %d registered\n", m.registeredCount(k))), nil
		},
		Write: func(ctx any, data []byte) error {
			var pid int
			if _, err := fmt.Sscanf(string(data), "%d", &pid); err != nil {
				return fmt.Errorf("chpox: bad pid %q", data)
			}
			p, err := k.Procs.Lookup(proc.PID(pid))
			if err != nil {
				return err
			}
			p.Registered[m.name] = true
			return nil
		},
	})
	return err
}

func (m *CHPOX) registeredCount(k *kernel.Kernel) int {
	n := 0
	for _, p := range k.Procs.All() {
		if p.Registered[m.name] {
			n++
		}
	}
	return n
}

// Unload implements kernel.Module.
func (m *CHPOX) Unload(k *kernel.Kernel) error {
	k.SigTable.Unregister(sig.SIGSYS)
	return k.FS.Remove(m.procPath)
}

// Install implements mechanism.Mechanism (module load).
func (m *CHPOX) Install(k *kernel.Kernel) error {
	if k.ModuleLoaded(m.ModuleName()) {
		return nil
	}
	return k.LoadModule(m)
}

// Prepare implements mechanism.Mechanism: transparent.
func (m *CHPOX) Prepare(prog kernel.Program) kernel.Program { return prog }

// Setup implements mechanism.Mechanism: write the pid to /proc/chpox, as
// the real package requires before checkpointing.
func (m *CHPOX) Setup(k *kernel.Kernel, p *proc.Process) error {
	if m.k != k {
		return mechanism.ErrNotInstalled
	}
	of, err := k.FS.Open(m.procPath, fs.OWrite)
	if err != nil {
		return err
	}
	defer of.Close()
	k.Charge(k.CM.Syscall()*3, "chpox-register") // open+write+close from the tool
	_, err = of.Write(nil, []byte(fmt.Sprintf("%d", p.PID)))
	return err
}

// Request implements mechanism.Mechanism: send SIGSYS to the process.
func (m *CHPOX) Request(k *kernel.Kernel, p *proc.Process, tgt storage.Target, env *storage.Env) (*mechanism.Ticket, error) {
	if err := checkStorageKind(m, tgt); err != nil {
		return nil, err
	}
	if !p.Registered[m.name] {
		return nil, fmt.Errorf("%w: CHPOX: write the pid to %s first", mechanism.ErrNotRegistered, m.procPath)
	}
	return m.request(k, p, tgt, env)
}

// Restart implements mechanism.Mechanism.
func (m *CHPOX) Restart(k *kernel.Kernel, chain []*checkpoint.Image, enqueue bool) (*proc.Process, error) {
	return checkpoint.Restore(k, chain, checkpoint.RestoreOptions{Enqueue: enqueue})
}
