package syslevel

import (
	"errors"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

func newMachine(name string, progs ...kernel.Program) *kernel.Kernel {
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return kernel.New(kernel.DefaultConfig(name), costmodel.Default2005(), reg)
}

func localTarget() *storage.Local {
	return storage.NewLocal("disk0", costmodel.Default2005(), nil)
}

func remoteTarget() *storage.Remote {
	srv := storage.NewServer("srv", costmodel.Default2005())
	return storage.NewRemote("net0", srv)
}

// referenceFingerprint runs prog (possibly prepared by m) to completion on
// a fresh machine and returns the final fingerprint.
func referenceFingerprint(t *testing.T, m mechanism.Mechanism, prog kernel.Program, iters uint64) uint64 {
	t.Helper()
	prepared := m.Prepare(prog)
	k := newMachine("ref", prepared)
	if err := m.Install(k); err != nil {
		// Mechanisms are single-kernel; reference run uses a throwaway copy
		// when install fails. Tests pass fresh mechanism instances instead.
		t.Fatalf("install on ref: %v", err)
	}
	p, err := k.Spawn(prepared.Name())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(k, p); err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	if !k.RunUntilExit(p, k.Now().Add(10*simtime.Minute)) {
		t.Fatalf("reference run stuck (pc=%d)", p.Regs().PC)
	}
	if p.ExitCode != 0 {
		t.Fatalf("reference exit %d", p.ExitCode)
	}
	return workload.Fingerprint(p)
}

// exerciseMechanism runs the full lifecycle for one mechanism: install,
// prepare, spawn, run halfway, request checkpoint, kill, restart, run to
// completion, compare fingerprints.
func exerciseMechanism(t *testing.T, mkMech func() mechanism.Mechanism, tgt storage.Target) {
	t.Helper()
	const iters = 20
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 9}
	want := referenceFingerprint(t, mkMech(), prog, iters)

	m := mkMech()
	prepared := m.Prepare(prog)
	k := newMachine("src", prepared)
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(prepared.Name())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(k, p); err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, iters)
	for p.Regs().PC < iters/2 && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	if p.State == proc.StateZombie {
		t.Fatal("finished before checkpoint")
	}

	tk, err := mechanism.Checkpoint(m, k, p, tgt, nil)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if tk.Img == nil {
		t.Fatal("ticket has no image")
	}
	if tk.Img.Mechanism != m.Name() {
		t.Fatalf("image mechanism %q, want %q", tk.Img.Mechanism, m.Name())
	}
	if tk.Total() <= 0 {
		t.Fatalf("ticket total latency %v", tk.Total())
	}

	// The process dies and is reaped; restart from the image chain.
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	var chain []*checkpoint.Image
	if tgt != nil {
		chain, err = checkpoint.LoadChain(tgt, nil, tk.Img.ObjectName())
		if err != nil {
			t.Fatal(err)
		}
	} else {
		chain = []*checkpoint.Image{tk.Img}
	}
	p2, err := m.Restart(k, chain, true)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !k.RunUntilExit(p2, k.Now().Add(10*simtime.Minute)) {
		t.Fatalf("restarted process stuck (pc=%d state=%v)", p2.Regs().PC, p2.State)
	}
	if p2.ExitCode != 0 {
		t.Fatalf("restarted exit %d", p2.ExitCode)
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("fingerprint %#x, want %#x", got, want)
	}
}

func TestLifecycleAllMechanisms(t *testing.T) {
	cases := []struct {
		name string
		mk   func() mechanism.Mechanism
		tgt  func() storage.Target
	}{
		{"VMADump-local", func() mechanism.Mechanism { return NewVMADump(0, nil) }, func() storage.Target { return localTarget() }},
		{"VMADump-remote", func() mechanism.Mechanism { return NewVMADump(0, nil) }, func() storage.Target { return remoteTarget() }},
		{"BPROC", func() mechanism.Mechanism { return NewBProc() }, func() storage.Target { return nil }},
		{"EPCKPT", func() mechanism.Mechanism { return NewEPCKPT() }, func() storage.Target { return remoteTarget() }},
		{"CRAK", func() mechanism.Mechanism { return NewCRAK() }, func() storage.Target { return localTarget() }},
		{"UCLiK", func() mechanism.Mechanism { return NewUCLiK() }, func() storage.Target { return localTarget() }},
		{"CHPOX", func() mechanism.Mechanism { return NewCHPOX() }, func() storage.Target { return localTarget() }},
		{"ZAP", func() mechanism.Mechanism { return NewZAP() }, func() storage.Target { return nil }},
		{"BLCR", func() mechanism.Mechanism { return NewBLCR() }, func() storage.Target { return remoteTarget() }},
		{"LAM/MPI", func() mechanism.Mechanism { return NewLAMMPI() }, func() storage.Target { return localTarget() }},
		{"PsncR/C", func() mechanism.Mechanism { return NewPsncRC() }, func() storage.Target { return localTarget() }},
		{"Checkpoint", func() mechanism.Mechanism { return NewCheckpointFork(0, nil) }, func() storage.Target { return localTarget() }},
		{"TICK", func() mechanism.Mechanism { return NewTICK() }, func() storage.Target { return remoteTarget() }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { exerciseMechanism(t, c.mk, c.tgt()) })
	}
}

func TestVMADumpRequiresModifiedApplication(t *testing.T) {
	m := NewVMADump(0, nil)
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog) // NOT prepared
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	k.RunFor(simtime.Millisecond)
	_, err := m.Request(k, p, localTarget(), nil)
	if !errors.Is(err, mechanism.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported (no transparency)", err)
	}
}

func TestEPCKPTRequiresLaunchTool(t *testing.T) {
	m := NewEPCKPT()
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name()) // launched without the tool
	workload.SetIterations(p, 1<<30)
	k.RunFor(simtime.Millisecond)
	if _, err := m.Request(k, p, localTarget(), nil); !errors.Is(err, mechanism.ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered", err)
	}
}

func TestCHPOXRegistersViaProc(t *testing.T) {
	m := NewCHPOX()
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	if !k.FS.Exists("/proc/chpox") {
		t.Fatal("/proc/chpox missing after module load")
	}
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	if _, err := m.Request(k, p, localTarget(), nil); !errors.Is(err, mechanism.ErrNotRegistered) {
		t.Fatalf("unregistered request: %v", err)
	}
	if err := m.Setup(k, p); err != nil {
		t.Fatal(err)
	}
	if !p.Registered["CHPOX"] {
		t.Fatal("proc write did not register")
	}
	// Module unload removes the /proc entry and the signal override.
	if err := k.UnloadModule("chpox"); err != nil {
		t.Fatal(err)
	}
	if k.FS.Exists("/proc/chpox") {
		t.Fatal("/proc/chpox survives unload")
	}
}

func TestLocalOnlyMechanismsRejectRemote(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	for _, mk := range []func() mechanism.Mechanism{
		func() mechanism.Mechanism { return NewUCLiK() },
		func() mechanism.Mechanism { return NewCHPOX() },
		func() mechanism.Mechanism { return NewPsncRC() },
	} {
		m := mk()
		k := newMachine("k", prog)
		if err := m.Install(k); err != nil {
			t.Fatal(err)
		}
		p, _ := k.Spawn(prog.Name())
		m.Setup(k, p)
		if _, err := m.Request(k, p, remoteTarget(), nil); err == nil {
			t.Fatalf("%s accepted a remote target (Table 1 says local only)", m.Name())
		}
	}
}

func TestBLCRRequiresInitPhase(t *testing.T) {
	m := NewBLCR()
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	if _, err := m.Request(k, p, localTarget(), nil); !errors.Is(err, mechanism.ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered (init phase skipped)", err)
	}
}

func TestBLCRHandlesThreadsCRAKDoesNot(t *testing.T) {
	prog := workload.MultiThreaded{MiB: 1, NThreads: 3, Iterations: 1 << 20}

	crak := NewCRAK()
	k1 := newMachine("k1", prog)
	crak.Install(k1)
	p1, _ := k1.Spawn(prog.Name())
	k1.RunFor(simtime.Millisecond)
	if _, err := crak.Request(k1, p1, localTarget(), nil); !errors.Is(err, mechanism.ErrUnsupported) {
		t.Fatalf("CRAK on multithreaded: %v, want ErrUnsupported", err)
	}

	blcr := NewBLCR()
	k2 := newMachine("k2", prog)
	blcr.Install(k2)
	p2, _ := k2.Spawn(prog.Name())
	blcr.Setup(k2, p2)
	k2.RunFor(simtime.Millisecond)
	tk, err := mechanism.Checkpoint(blcr, k2, p2, localTarget(), nil)
	if err != nil {
		t.Fatalf("BLCR on multithreaded: %v", err)
	}
	if len(tk.Img.Threads) != 3 {
		t.Fatalf("BLCR captured %d threads", len(tk.Img.Threads))
	}
}

func TestUCLiKRestoresPIDAndDeletedFile(t *testing.T) {
	m := NewUCLiK()
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	k.RunFor(simtime.Millisecond)

	// Open + delete a file.
	k.FS.WriteFile("/data", []byte("important"))
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	fd, _ := ctx.Open("/data", 0x1) // fs.ORead
	k.FS.Unlink("/data")

	tgt := localTarget()
	tk, err := mechanism.Checkpoint(m, k, p, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Img.FDs[len(tk.Img.FDs)-1].Contents == nil {
		t.Fatal("deleted file contents not captured")
	}
	origPID := p.PID
	k.Exit(p, 137)
	k.Procs.Remove(p.PID)
	chain, _ := checkpoint.LoadChain(tgt, nil, tk.Img.ObjectName())
	p2, err := m.Restart(k, chain, false)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PID != origPID {
		t.Fatalf("pid %d, want original %d", p2.PID, origPID)
	}
	of, err := p2.FD(fd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := of.Read(nil, buf)
	if string(buf[:n]) != "important" {
		t.Fatalf("deleted file content %q", buf[:n])
	}
}

func TestZAPMigratesKernelResources(t *testing.T) {
	m := NewZAP()
	prog := workload.ResourceUser{MiB: 1, Iterations: 400, UseSocket: true, UseShm: true, CheckPID: true}
	want := referenceFingerprint(t, NewZAP(), prog, 400)

	prepared := m.Prepare(prog)
	k := newMachine("src", prepared)
	m.Install(k)
	p, _ := k.Spawn(prepared.Name())
	for p.Regs().PC < 200 && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
	tk, err := mechanism.Checkpoint(m, k, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.Img.Sockets) != 1 {
		t.Fatal("pod did not capture the socket")
	}

	// Migrate to a second machine running the same (pod-wrapped) binary.
	m2 := NewZAP()
	dst := newMachine("dst", m2.Prepare(prog))
	m2.Install(dst)
	p2, err := m.Restart(dst, []*checkpoint.Image{tk.Img}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !dst.RunUntilExit(p2, dst.Now().Add(10*simtime.Minute)) {
		t.Fatal("migrated process stuck")
	}
	if p2.ExitCode != workload.ExitOK {
		t.Fatalf("migrated exit %d, want OK (virtualization)", p2.ExitCode)
	}
	if got := workload.Fingerprint(p2); got != want {
		t.Fatalf("fingerprint %#x want %#x", got, want)
	}
}

func TestZAPInterceptionOverhead(t *testing.T) {
	prog := workload.Allocator{MiB: 1, Iterations: 500} // syscall-heavy
	run := func(wrap bool) simtime.Duration {
		m := NewZAP()
		var pr kernel.Program = prog
		if wrap {
			pr = m.Prepare(prog)
		}
		k := newMachine("k", pr)
		p, _ := k.Spawn(pr.Name())
		if !k.RunUntilExit(p, k.Now().Add(simtime.Minute)) {
			t.Fatal("stuck")
		}
		return p.CPUTime
	}
	plain := run(false)
	pod := run(true)
	if pod <= plain {
		t.Fatalf("pod run (%v) should be slower than plain (%v)", pod, plain)
	}
}

func TestPsncRCIncludesFileContents(t *testing.T) {
	m := NewPsncRC()
	prog := workload.Dense{MiB: 1}
	k := newMachine("k", prog)
	m.Install(k)
	if !k.FS.Exists("/proc/psncrc") {
		t.Fatal("/proc/psncrc missing")
	}
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	k.RunFor(simtime.Millisecond)
	k.FS.WriteFile("/big", make([]byte, 64<<10))
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	ctx.Open("/big", 0x1)

	tk, err := mechanism.Checkpoint(m, k, p, localTarget(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, f := range tk.Img.FDs {
		if f.Path == "/big" && len(f.Contents) == 64<<10 {
			found = true
		}
	}
	if !found {
		t.Fatal("PsncR/C did not include open file contents")
	}
}

func TestCheckpointForkParentRunsDuringSave(t *testing.T) {
	tgt := localTarget()
	m := NewCheckpointFork(0, nil)
	prog := workload.Dense{MiB: 8}
	prepared := m.Prepare(prog)
	k := newMachine("k", prepared)
	m.Install(k)
	p, _ := k.Spawn(prepared.Name())
	workload.SetIterations(p, 1<<30)
	for !p.Registered["Checkpoint"] { // first checkpoint point registers the app
		k.RunFor(simtime.Millisecond)
	}
	tk, err := m.Request(k, p, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mechanism.WaitTicket(k, tk, simtime.Minute); err != nil {
		t.Fatal(err)
	}
	// The captured image must be consistent (a frozen fork), yet the
	// parent should have made progress during the disk write.
	imgPC := tk.Img.Threads[0].Regs.PC*1000000 + tk.Img.Threads[0].Regs.G[4]
	livePC := p.Regs().PC*1000000 + p.Regs().G[4]
	if livePC <= imgPC {
		t.Fatalf("parent made no progress during save: img %d live %d", imgPC, livePC)
	}
	if tk.Img.PID != p.PID {
		t.Fatalf("image pid %d, want parent %d", tk.Img.PID, p.PID)
	}
}

func TestSoftwareSuspendHibernateResume(t *testing.T) {
	m := NewSoftwareSuspend()
	progA := workload.Dense{MiB: 1}
	progB := workload.Spin{Tag: "bg"}
	k := newMachine("laptop", progA, progB)
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	pa, _ := k.Spawn(progA.Name())
	pb, _ := k.Spawn(progB.Name())
	workload.SetIterations(pa, 12)
	workload.SetIterations(pb, 1<<30)
	wantA := referenceFingerprint(t, NewSoftwareSuspend(), progA, 12)
	k.RunFor(5 * simtime.Millisecond)
	if pa.State == proc.StateZombie {
		t.Fatal("finished too early")
	}

	swap := localTarget()
	imgs, err := m.Suspend(k, swap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 {
		t.Fatalf("saved %d images, want 2", len(imgs))
	}
	if !k.Halted() {
		t.Fatal("machine still powered on")
	}
	cpu := pa.CPUTime
	k.RunFor(10 * simtime.Millisecond)
	if pa.CPUTime != cpu {
		t.Fatal("work happened while powered down")
	}

	// Power up and resume everything.
	procs, err := m.Resume(k, imgs)
	if err != nil {
		t.Fatal(err)
	}
	var ra *proc.Process
	for _, p := range procs {
		if p.PID == pa.PID {
			ra = p
		}
	}
	if ra == nil {
		t.Fatal("process A not resumed")
	}
	if !k.RunUntilExit(ra, k.Now().Add(simtime.Minute)) {
		t.Fatal("resumed process stuck")
	}
	if got := workload.Fingerprint(ra); got != wantA {
		t.Fatalf("resumed fingerprint %#x want %#x", got, wantA)
	}
}

func TestTICKIncrementalChainsShrink(t *testing.T) {
	m := NewTICK()
	prog := workload.Sparse{MiB: 4, WriteFrac: 0.05, Seed: 21}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	tgt := remoteTarget()

	var sizes []int
	for i := 0; i < 3; i++ {
		target := p.Regs().PC + 2
		for p.Regs().PC < target {
			k.RunFor(100 * simtime.Microsecond)
		}
		tk, err := mechanism.Checkpoint(m, k, p, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, tk.Stats.PayloadBytes)
		if i == 0 && tk.Img.Mode != checkpoint.ModeFull {
			t.Fatal("first image not full")
		}
		if i > 0 && tk.Img.Mode != checkpoint.ModeIncremental {
			t.Fatal("later image not incremental")
		}
	}
	if sizes[1] >= sizes[0]/2 || sizes[2] >= sizes[0]/2 {
		t.Fatalf("deltas not much smaller than full: %v", sizes)
	}
}

func TestTICKAutomaticInitiation(t *testing.T) {
	m := NewTICK()
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.1, Seed: 33}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	tgt := localTarget()

	var completed int
	stop, err := m.Attach(k, p, tgt, nil, 10*simtime.Millisecond, func(tk *mechanism.Ticket) {
		if tk.Err == nil {
			completed++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunFor(55 * simtime.Millisecond)
	stop()
	if completed < 3 {
		t.Fatalf("automatic checkpoints completed = %d, want ≥3", completed)
	}
	n := completed
	k.RunFor(30 * simtime.Millisecond)
	if completed != n {
		t.Fatal("checkpoints continued after detach")
	}
	if len(tgt.List()) < 3 {
		t.Fatalf("stored objects: %v", tgt.List())
	}
}

func TestKernelThreadFIFOBeatsOtherUnderLoad(t *testing.T) {
	// E4's core claim: a SCHED_FIFO checkpoint thread's latency is
	// insensitive to background load; a SCHED_OTHER one degrades.
	latency := func(policy proc.Policy, load int) simtime.Duration {
		prio := 50
		if policy == proc.SchedOther {
			prio = 20 // ordinary time-sharing priority
		}
		m := NewCRAKWithPolicy(policy, prio)
		target := workload.Sparse{MiB: 2, WriteFrac: 0.2, Seed: 3}
		progs := []kernel.Program{target}
		for i := 0; i < load; i++ {
			progs = append(progs, workload.Spin{Tag: string(rune('a' + i))})
		}
		k := newMachine("k", progs...)
		m.Install(k)
		p, _ := k.Spawn(target.Name())
		workload.SetIterations(p, 1<<30)
		for i := 0; i < load; i++ {
			bg, _ := k.Spawn(workload.Spin{Tag: string(rune('a' + i))}.Name())
			workload.SetIterations(bg, 1<<30)
		}
		k.RunFor(5 * simtime.Millisecond)
		tk, err := mechanism.Checkpoint(m, k, p, localTarget(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return tk.Total()
	}
	fifoIdle := latency(proc.SchedFIFO, 0)
	fifoLoaded := latency(proc.SchedFIFO, 8)
	otherLoaded := latency(proc.SchedOther, 8)
	if otherLoaded <= fifoLoaded {
		t.Fatalf("SCHED_OTHER thread (%v) should be slower than FIFO (%v) under load", otherLoaded, fifoLoaded)
	}
	// FIFO latency should grow only mildly with load.
	if fifoLoaded > 3*fifoIdle {
		t.Fatalf("FIFO latency grew too much with load: %v vs %v", fifoLoaded, fifoIdle)
	}
}

func TestTable1Probe(t *testing.T) {
	// Features() of the twelve implementations must reproduce Table 1
	// exactly; see cmd/crsurvey for the rendered matrix.
	probed := []mechanism.Mechanism{
		NewVMADump(0, nil), NewBProc(), NewEPCKPT(), NewCRAK(), NewUCLiK(),
		NewCHPOX(), NewZAP(), NewBLCR(), NewLAMMPI(), NewPsncRC(),
		NewSoftwareSuspend(), NewCheckpointFork(0, nil),
	}
	features := make([]taxonomy.Features, 0, len(probed))
	for _, m := range probed {
		features = append(features, m.Features())
	}
	if diffs := taxonomy.DiffTable(features); len(diffs) != 0 {
		t.Fatalf("Table 1 mismatches:\n%v", diffs)
	}
}

func TestTICKChainBounded(t *testing.T) {
	m := NewTICK()
	m.MaxChain = 3
	prog := workload.Sparse{MiB: 2, WriteFrac: 0.05, Seed: 2}
	k := newMachine("k", prog)
	m.Install(k)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	tgt := localTarget()

	var leaf string
	for i := 0; i < 8; i++ {
		target := p.Regs().PC + 1
		for p.Regs().PC < target {
			k.RunFor(100 * simtime.Microsecond)
		}
		tk, err := mechanism.Checkpoint(m, k, p, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		leaf = tk.Img.ObjectName()
	}
	// With MaxChain=3, chains never exceed 3 images (full + 2 deltas).
	chain, err := checkpoint.LoadChain(tgt, nil, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) > 3 {
		t.Fatalf("chain length %d exceeds MaxChain", len(chain))
	}
	// Restart from the bounded chain still resumes correctly.
	dst := newMachine("dst", prog)
	p2, err := m.Restart(dst, chain, true)
	if err != nil {
		t.Fatal(err)
	}
	dst.RunFor(simtime.Millisecond)
	if p2.Regs().PC < 7 {
		t.Fatalf("restored at iteration %d, want ≥7", p2.Regs().PC)
	}
}
