package hardware

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func newMachine(progs ...kernel.Program) *kernel.Kernel {
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return kernel.New(kernel.DefaultConfig("hw"), costmodel.Default2005(), reg)
}

func spawn(t *testing.T, k *kernel.Kernel, prog kernel.Program) *proc.Process {
	t.Helper()
	p, err := k.Spawn(prog.Name())
	if err != nil {
		t.Fatal(err)
	}
	workload.SetIterations(p, 1<<30)
	return p
}

func TestReViveLogsFirstWritePerLine(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	rv := NewReVive()
	led := costmodel.NewLedger()
	if err := rv.Attach(p, k.CM, led); err != nil {
		t.Fatal(err)
	}
	// Write the same 64-byte region twice.
	if err := p.AS.Write(workload.ArenaBase, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := p.AS.Write(workload.ArenaBase, []byte("again")); err != nil {
		t.Fatal(err)
	}
	st := rv.Stats()
	if st.LinesLogged != 1 {
		t.Fatalf("LinesLogged = %d, want 1 (first write only)", st.LinesLogged)
	}
	if st.WritesSeen != 2 {
		t.Fatalf("WritesSeen = %d, want 2", st.WritesSeen)
	}
	if led.Total == 0 {
		t.Fatal("no log traffic charged")
	}
	// After the checkpoint the same line logs again.
	if err := rv.Checkpoint(k.Now()); err != nil {
		t.Fatal(err)
	}
	p.AS.Write(workload.ArenaBase, []byte("new epoch"))
	if rv.Stats().LinesLogged != 2 {
		t.Fatalf("LinesLogged = %d after new epoch, want 2", rv.Stats().LinesLogged)
	}
}

func TestReViveRollbackRestoresCheckpointState(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 4}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	rv := NewReVive()
	if err := rv.Attach(p, k.CM, costmodel.Discard{}); err != nil {
		t.Fatal(err)
	}
	k.RunFor(2 * simtime.Millisecond)
	if err := rv.Checkpoint(k.Now()); err != nil {
		t.Fatal(err)
	}
	sum := p.AS.Checksum()
	regs := *p.Regs()

	// Run on (a "fault window"), then roll back.
	k.RunFor(3 * simtime.Millisecond)
	if p.AS.Checksum() == sum {
		t.Fatal("no progress after checkpoint — test is vacuous")
	}
	if err := rv.Rollback(); err != nil {
		t.Fatal(err)
	}
	if p.AS.Checksum() != sum {
		t.Fatal("memory not restored to checkpoint")
	}
	if *p.Regs() != regs {
		t.Fatal("registers not restored to checkpoint")
	}

	// Re-execution after rollback reproduces the same trajectory: run the
	// same simulated span and compare against a straight-line run... the
	// restored process continues deterministically.
	k.RunFor(simtime.Millisecond)
	if p.AS.Checksum() == sum {
		t.Fatal("process did not resume after rollback")
	}
}

func TestReViveRollbackIsRepeatable(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	rv := NewReVive()
	rv.Attach(p, k.CM, costmodel.Discard{})
	k.RunFor(simtime.Millisecond)
	rv.Checkpoint(k.Now())
	sum := p.AS.Checksum()
	for i := 0; i < 3; i++ {
		k.RunFor(2 * simtime.Millisecond)
		if err := rv.Rollback(); err != nil {
			t.Fatal(err)
		}
		if p.AS.Checksum() != sum {
			t.Fatalf("rollback %d did not restore state", i)
		}
	}
}

func TestSafetyNetOverflowForcesCheckpoint(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	sn := NewSafetyNet(32) // tiny CLB
	forced := 0
	led := costmodel.NewLedger()
	if err := sn.Attach(p, k.CM, led, k.Now); err != nil {
		t.Fatal(err)
	}
	sn.OnOverflow(func() { forced++ })
	k.RunFor(2 * simtime.Millisecond) // dense writes overwhelm 32 lines fast
	st := sn.Stats()
	if st.Overflows == 0 || forced == 0 {
		t.Fatalf("no CLB overflow (logged %d lines)", st.LinesLogged)
	}
	if st.StallTime == 0 {
		t.Fatal("overflow did not stall")
	}
	if sn.Occupancy() < 0 || sn.Occupancy() > 1 {
		t.Fatalf("occupancy %v out of range", sn.Occupancy())
	}
}

func TestSafetyNetLargerCLBFewerOverflows(t *testing.T) {
	run := func(clb int) uint64 {
		prog := workload.Dense{MiB: 1}
		k := newMachine(prog)
		p := spawn(t, k, prog)
		sn := NewSafetyNet(clb)
		if err := sn.Attach(p, k.CM, costmodel.Discard{}, k.Now); err != nil {
			t.Fatal(err)
		}
		k.RunFor(2 * simtime.Millisecond)
		return sn.Stats().Overflows
	}
	small, big := run(64), run(4096)
	if big >= small {
		t.Fatalf("larger CLB overflowed as much: %d vs %d", big, small)
	}
}

func TestSafetyNetRollback(t *testing.T) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.1, Seed: 8}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	sn := NewSafetyNet(1 << 20) // large enough to never overflow here
	sn.Attach(p, k.CM, costmodel.Discard{}, k.Now)
	k.RunFor(simtime.Millisecond)
	sn.Checkpoint(k.Now())
	sum := p.AS.Checksum()
	k.RunFor(2 * simtime.Millisecond)
	if err := sn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if p.AS.Checksum() != sum {
		t.Fatal("SafetyNet rollback failed")
	}
}

func TestLineGranularityBeatsPageGranularity(t *testing.T) {
	// E7's core claim: for scattered small writes, cache-line logging
	// moves far fewer bytes than page-granularity tracking.
	prog := workload.PointerChase{MiB: 2, WriteEvery: 8, Seed: 6}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	rv := NewReVive()
	rv.Attach(p, k.CM, costmodel.Discard{})
	k.RunFor(5 * simtime.Millisecond)

	lineBytes := rv.PendingBytes()
	pageBytes := PageBytesFor(rv.LoggedLines())
	if lineBytes == 0 {
		t.Fatal("nothing logged")
	}
	ratio := float64(pageBytes) / float64(lineBytes)
	if ratio < 8 {
		t.Fatalf("page/line byte ratio = %.1f, want ≫1 for scattered writes", ratio)
	}
}

func TestDenseWritesCloseTheGranularityGap(t *testing.T) {
	// When whole pages are written, page granularity loses little.
	prog := workload.Dense{MiB: 1}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	rv := NewReVive()
	rv.Attach(p, k.CM, costmodel.Discard{})
	k.RunFor(2 * simtime.Millisecond)
	lineBytes := rv.PendingBytes()
	pageBytes := PageBytesFor(rv.LoggedLines())
	ratio := float64(pageBytes) / float64(lineBytes)
	if ratio > 1.01 {
		t.Fatalf("dense ratio = %.3f, want ≈1", ratio)
	}
}

func TestAttachValidation(t *testing.T) {
	prog := workload.Dense{MiB: 1}
	k := newMachine(prog)
	p := spawn(t, k, prog)
	rv := NewReVive()
	if err := rv.Attach(p, k.CM, costmodel.Discard{}); err != nil {
		t.Fatal(err)
	}
	if err := rv.Attach(p, k.CM, costmodel.Discard{}); err == nil {
		t.Fatal("double attach accepted")
	}
	sn := NewSafetyNet(0)
	if err := sn.Attach(p, k.CM, costmodel.Discard{}, k.Now); err == nil {
		t.Fatal("zero CLB accepted")
	}
	if err := NewReVive().Rollback(); err == nil {
		t.Fatal("rollback before attach accepted")
	}
	if err := NewReVive().Checkpoint(0); err == nil {
		t.Fatal("checkpoint before attach accepted")
	}
}

func TestPageBytesFor(t *testing.T) {
	lines := []mem.Addr{0, 64, 128, mem.PageSize, 3 * mem.PageSize}
	if got := PageBytesFor(lines); got != 3*mem.PageSize {
		t.Fatalf("PageBytesFor = %d, want 3 pages", got)
	}
	if PageBytesFor(nil) != 0 {
		t.Fatal("empty cover")
	}
}
