// Package hardware models the purpose-built checkpointing hardware of
// §4.2: ReVive (Prvulovic, Zhang & Torrellas [29]), which logs at the
// directory controller, and SafetyNet (Sorin, Martin, Hill & Wood [34]),
// which buffers checkpoint state in cache-attached Checkpoint Log Buffers
// (CLBs). Both trace modifications at *cache-line* granularity — far finer
// than the operating system's page granularity — by logging the old value
// of a line on its first write after a checkpoint, enabling rollback
// recovery.
//
// The models attach to a simulated process's address space through its
// cache-line write hooks, so they observe exactly the same write stream
// the page-granularity trackers see — which is what makes the E7
// granularity comparison meaningful. The paper's comparison point —
// "SafetyNet requires more hardware resources than ReVive" — shows up as
// the bounded CLB: overflow forces an early checkpoint (validation stall),
// while ReVive's memory log is unbounded but costs main-memory traffic on
// every logged line.
package hardware

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
)

// logEntry is one undo record: the pre-write contents of a line.
type logEntry struct {
	addr mem.Addr
	old  []byte
}

// Snapshot is one hardware checkpoint: the register state at the epoch
// boundary. Memory recovery comes from the undo log, not from a copy.
type Snapshot struct {
	Threads []proc.Regs
	TIDs    []proc.TID
	At      simtime.Time
}

// Stats accumulates logging activity.
type Stats struct {
	LinesLogged uint64 // first-write log events
	BytesLogged uint64 // line bytes written to the log
	WritesSeen  uint64 // total line-granularity writes observed
	Epochs      uint64
	Overflows   uint64 // SafetyNet: CLB overflows forcing early checkpoints
	StallTime   simtime.Duration
	LogTraffic  simtime.Duration // ReVive: memory-log write time
}

// errNotAttached is returned by operations before Attach.
var errNotAttached = errors.New("hardware: not attached to a process")

// logger is the shared first-write-per-epoch undo logging core.
type logger struct {
	p        *proc.Process
	lineSize int
	cm       *costmodel.Model
	bill     costmodel.Biller

	seen map[mem.Addr]bool
	log  []logEntry
	snap *Snapshot

	stats Stats
}

func (l *logger) attach(p *proc.Process, lineSize int, cm *costmodel.Model, bill costmodel.Biller, hook mem.WriteHook) error {
	if l.p != nil {
		return errors.New("hardware: already attached")
	}
	if lineSize <= 0 || mem.PageSize%lineSize != 0 {
		return fmt.Errorf("hardware: line size %d must divide the page size", lineSize)
	}
	l.p = p
	l.lineSize = lineSize
	l.cm = cm
	l.bill = bill
	l.seen = make(map[mem.Addr]bool)
	p.AS.SetLineSize(lineSize)
	p.AS.AddWriteHook(hook)
	l.takeSnapshot(0)
	return nil
}

func (l *logger) takeSnapshot(at simtime.Time) {
	s := &Snapshot{At: at}
	for _, t := range l.p.Threads {
		s.Threads = append(s.Threads, t.Regs)
		s.TIDs = append(s.TIDs, t.TID)
	}
	l.snap = s
}

// observe records the first write to each line per epoch.
// Returns true when the line was newly logged.
func (l *logger) observe(addr mem.Addr, old []byte) bool {
	l.stats.WritesSeen++
	if l.seen[addr] {
		return false
	}
	l.seen[addr] = true
	l.log = append(l.log, logEntry{addr: addr, old: append([]byte(nil), old...)})
	l.stats.LinesLogged++
	l.stats.BytesLogged += uint64(len(old))
	return true
}

// newEpoch discards the undo log and snapshots registers: the previous
// checkpoint is committed.
func (l *logger) newEpoch(at simtime.Time) {
	l.seen = make(map[mem.Addr]bool)
	l.log = l.log[:0]
	l.takeSnapshot(at)
	l.stats.Epochs++
}

// rollback applies the undo log in reverse and restores registers,
// returning execution to the last checkpoint.
func (l *logger) rollback() error {
	if l.p == nil {
		return errNotAttached
	}
	for i := len(l.log) - 1; i >= 0; i-- {
		e := l.log[i]
		if err := l.p.AS.WriteDirect(e.addr, e.old); err != nil {
			return fmt.Errorf("hardware: rollback at %#x: %w", uint64(e.addr), err)
		}
	}
	for i, tid := range l.snap.TIDs {
		for _, t := range l.p.Threads {
			if t.TID == tid {
				t.Regs = l.snap.Threads[i]
			}
		}
	}
	l.seen = make(map[mem.Addr]bool)
	l.log = l.log[:0]
	return nil
}

// pendingBytes returns the current epoch's logged bytes.
func (l *logger) pendingBytes() int {
	n := 0
	for _, e := range l.log {
		n += len(e.old)
	}
	return n
}

// loggedLines returns the logged line addresses of the current epoch in
// address order.
func (l *logger) loggedLines() []mem.Addr {
	out := make([]mem.Addr, 0, len(l.log))
	for _, e := range l.log {
		out = append(out, e.addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReVive models directory-controller logging [29]: on the first write to
// a line after a checkpoint, the directory writes the old value to a log
// in main memory. The log is unbounded; its cost is memory traffic per
// logged line.
type ReVive struct {
	logger
}

// NewReVive returns a detached ReVive model.
func NewReVive() *ReVive { return &ReVive{} }

// Attach wires the model to p's write stream.
func (r *ReVive) Attach(p *proc.Process, cm *costmodel.Model, bill costmodel.Biller) error {
	return r.attach(p, cm.CacheLineSize, cm, bill, func(addr mem.Addr, old, new []byte) {
		if r.observe(addr, old) {
			// Directory writes the old line to the memory log.
			d := r.cm.CacheLineLog + r.cm.MemCopy(len(old))
			r.bill.Charge(d, "revive-log")
			r.stats.LogTraffic += d
		}
	})
}

// Checkpoint commits the epoch (global synchronization plus log
// truncation) and starts a new one.
func (r *ReVive) Checkpoint(at simtime.Time) error {
	if r.p == nil {
		return errNotAttached
	}
	// Global barrier + cache flush of dirty lines, modeled as one log
	// traversal.
	r.bill.Charge(r.cm.MemCopy(r.pendingBytes()), "revive-commit")
	r.newEpoch(at)
	return nil
}

// Rollback restores the last checkpoint.
func (r *ReVive) Rollback() error { return r.rollback() }

// Stats returns accumulated counters.
func (r *ReVive) Stats() Stats { return r.stats }

// PendingBytes returns the undo bytes accumulated this epoch.
func (r *ReVive) PendingBytes() int { return r.pendingBytes() }

// LoggedLines exposes the epoch's logged lines (tests, E7).
func (r *ReVive) LoggedLines() []mem.Addr { return r.loggedLines() }

// SafetyNet models cache-attached Checkpoint Log Buffers [34]: old values
// go to a fast bounded CLB. More hardware than ReVive ("the processor's
// caches must be modified, and it also requires an additional buffer"),
// but logging is cheap — until the CLB fills, which forces an early
// checkpoint validation stall.
type SafetyNet struct {
	logger
	// CLBLines is the buffer capacity in lines.
	CLBLines int
	// onOverflow, if set, is called when the CLB fills (the model then
	// forces a checkpoint).
	onOverflow func()
	at         func() simtime.Time
}

// NewSafetyNet returns a detached SafetyNet model with the given CLB
// capacity in lines.
func NewSafetyNet(clbLines int) *SafetyNet { return &SafetyNet{CLBLines: clbLines} }

// Attach wires the model to p's write stream. now supplies timestamps for
// forced checkpoints (may be nil).
func (s *SafetyNet) Attach(p *proc.Process, cm *costmodel.Model, bill costmodel.Biller, now func() simtime.Time) error {
	if s.CLBLines <= 0 {
		return fmt.Errorf("hardware: CLB capacity %d must be positive", s.CLBLines)
	}
	if now == nil {
		now = func() simtime.Time { return 0 }
	}
	s.at = now
	return s.attach(p, cm.CacheLineSize, cm, bill, func(addr mem.Addr, old, new []byte) {
		if s.observe(addr, old) {
			s.bill.Charge(s.cm.CacheLineLog, "safetynet-clb")
			if len(s.log) >= s.CLBLines {
				// CLB full: validate and commit the epoch early.
				s.stats.Overflows++
				stall := s.cm.MemCopy(s.pendingBytes())
				s.bill.Charge(stall, "safetynet-overflow")
				s.stats.StallTime += stall
				s.newEpoch(s.at())
				if s.onOverflow != nil {
					s.onOverflow()
				}
			}
		}
	})
}

// OnOverflow registers a callback invoked when the CLB forces an early
// checkpoint.
func (s *SafetyNet) OnOverflow(fn func()) { s.onOverflow = fn }

// Checkpoint validates and commits the current epoch.
func (s *SafetyNet) Checkpoint(at simtime.Time) error {
	if s.p == nil {
		return errNotAttached
	}
	s.newEpoch(at)
	return nil
}

// Rollback restores the last checkpoint.
func (s *SafetyNet) Rollback() error { return s.rollback() }

// Stats returns accumulated counters.
func (s *SafetyNet) Stats() Stats { return s.stats }

// Occupancy returns the CLB fill fraction.
func (s *SafetyNet) Occupancy() float64 {
	if s.CLBLines == 0 {
		return 0
	}
	return float64(len(s.log)) / float64(s.CLBLines)
}

// PendingBytes returns the undo bytes accumulated this epoch.
func (s *SafetyNet) PendingBytes() int { return s.pendingBytes() }

// PageBytesFor returns the bytes a page-granularity tracker would save
// for the same logged line set: the size of the distinct-page cover. This
// is the E7 granularity comparison in one number.
func PageBytesFor(lines []mem.Addr) int {
	pages := make(map[mem.PageNum]bool)
	for _, a := range lines {
		pages[a.Page()] = true
	}
	return len(pages) * mem.PageSize
}
