package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
)

func policy(t *testing.T, seed int64, mutate func(*FaultPolicy)) *FaultPolicy {
	t.Helper()
	fp := &FaultPolicy{Rng: rand.New(rand.NewSource(seed))}
	mutate(fp)
	return fp
}

func payload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	return data
}

func TestPutCrashLeavesTornObjectUnderFinalName(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	l.SetFaults(policy(t, 1, func(fp *FaultPolicy) { fp.WriteFault = 1 }))

	data := payload(4096)
	err := Write(l, "img", data, WriteOptions{Env: NopEnv()})
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
	// The crash published whatever prefix had streamed — under the final
	// name, where a restore will find it.
	got, rerr := l.ReadObject("img", NopEnv())
	if rerr != nil {
		t.Fatalf("torn object missing: %v", rerr)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn object has %d bytes, want < %d", len(got), len(data))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("torn object is not a prefix of the payload")
	}
	if l.faults.Crashes != 1 {
		t.Fatalf("Crashes = %d", l.faults.Crashes)
	}
}

func TestPutAtomicCrashPreservesCommittedImage(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	v1 := payload(1024)
	if err := Write(l, "img", v1, WriteOptions{Atomic: true, Env: NopEnv()}); err != nil {
		t.Fatal(err)
	}

	l.SetFaults(policy(t, 2, func(fp *FaultPolicy) { fp.WriteFault = 1 }))
	err := Write(l, "img", payload(4096), WriteOptions{Atomic: true, Env: NopEnv()})
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
	// The committed image survived the failed overwrite untouched…
	got, rerr := l.ReadObject("img", NopEnv())
	if rerr != nil || !bytes.Equal(got, v1) {
		t.Fatalf("committed image damaged: err=%v len=%d", rerr, len(got))
	}
	// …and the crash debris is confined to the staging name.
	if _, err := l.ReadObject(StagingName("img"), NopEnv()); err != nil {
		t.Fatalf("staging debris missing: %v", err)
	}
	if !IsStaging(StagingName("img")) || IsStaging("img") {
		t.Fatal("staging-name classification broken")
	}
}

func TestSilentTearHitsOnlyNonDurableCommits(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	fp := policy(t, 3, func(fp *FaultPolicy) { fp.SilentTear = 1 })
	l.SetFaults(fp)
	data := payload(4096)

	// Legacy in-place Put: the commit "succeeds" but silently loses its
	// tail — the failure mode a missing durability barrier permits.
	if err := Write(l, "unsafe", data, WriteOptions{Env: NopEnv()}); err != nil {
		t.Fatal(err)
	}
	got, _ := l.ReadObject("unsafe", NopEnv())
	if len(got) >= len(data) {
		t.Fatalf("non-durable commit not torn: %d bytes", len(got))
	}
	if fp.Tears != 1 {
		t.Fatalf("Tears = %d", fp.Tears)
	}

	// PutAtomic commits behind the durability barrier: immune.
	if err := Write(l, "safe", data, WriteOptions{Atomic: true, Env: NopEnv()}); err != nil {
		t.Fatal(err)
	}
	got, _ = l.ReadObject("safe", NopEnv())
	if !bytes.Equal(got, data) {
		t.Fatalf("durable commit torn: %d of %d bytes", len(got), len(data))
	}
	if fp.Tears != 1 {
		t.Fatalf("Tears = %d after atomic put", fp.Tears)
	}
}

func TestRemoteWriteCrashCanEscalateToOutage(t *testing.T) {
	srv := NewServer("srv", costmodel.Default2005())
	outages := 0
	fp := policy(t, 4, func(fp *FaultPolicy) {
		fp.WriteFault = 1
		fp.OutageFrac = 1
		fp.OnOutage = func() { outages++ }
	})
	srv.SetFaults(fp)
	r := NewRemote("n0→srv", srv)

	err := Write(r, "img", payload(4096), WriteOptions{Env: NopEnv()})
	if !errors.Is(err, ErrFault) || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrFault and ErrUnavailable", err)
	}
	if r.Available() {
		t.Fatal("server still available after mid-transfer outage")
	}
	if outages != 1 || fp.Outages != 1 {
		t.Fatalf("outage hooks: cb=%d counter=%d", outages, fp.Outages)
	}
	// Down means down: new writes are refused until recovery.
	if _, err := r.Create("img2", NopEnv()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Create during outage: %v", err)
	}
	srv.Recover()
	srv.SetFaults(nil)
	if err := Write(r, "img2", payload(64), WriteOptions{Atomic: true, Env: NopEnv()}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

func TestPublishFaultIsCleanAndRetryable(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	fp := policy(t, 5, func(fp *FaultPolicy) { fp.PublishFault = 1 })
	l.SetFaults(fp)
	data := payload(512)

	err := Write(l, "img", data, WriteOptions{Atomic: true, Env: NopEnv()})
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
	if _, err := l.ReadObject("img", NopEnv()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("final name touched by failed publish: %v", err)
	}
	// The staged bytes are intact, so the retry needs no rewrite — and
	// once the fault clears, the same operation goes through.
	fp.PublishFault = 0
	if err := l.Publish(StagingName("img"), "img", NopEnv()); err != nil {
		t.Fatal(err)
	}
	got, err := l.ReadObject("img", NopEnv())
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("published image wrong: err=%v", err)
	}
	// Publishing a name that was never staged is an error, not a no-op.
	if err := l.Publish(StagingName("ghost"), "ghost", NopEnv()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("publish of missing staging: %v", err)
	}
}

func TestUnsafeWrapper(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	if Unsafe(nil) != nil {
		t.Fatal("Unsafe(nil) != nil")
	}
	u := Unsafe(l)
	if !IsUnsafe(u) || IsUnsafe(l) {
		t.Fatal("IsUnsafe misclassifies")
	}
	if Unsafe(u) != u {
		t.Fatal("Unsafe not idempotent")
	}
	// The wrapper changes the commit protocol, not the data path.
	if err := Write(u, "img", payload(64), WriteOptions{Atomic: true, Env: NopEnv()}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadObject("img", NopEnv()); err != nil {
		t.Fatal(err)
	}
}

func TestFaultSequenceIsDeterministic(t *testing.T) {
	run := func() (int, int, []int) {
		l := NewLocal("d", costmodel.Default2005(), nil)
		fp := policy(t, 42, func(fp *FaultPolicy) {
			fp.WriteFault = 0.3
			fp.SilentTear = 0.3
		})
		l.SetFaults(fp)
		var sizes []int
		for i := 0; i < 30; i++ {
			_ = Write(l, "img", payload(1000+i), WriteOptions{Env: NopEnv()})
			if n, err := l.ObjectSize("img"); err == nil {
				sizes = append(sizes, n)
			}
		}
		return fp.Crashes, fp.Tears, sizes
	}
	c1, t1, s1 := run()
	c2, t2, s2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("counters diverge: (%d,%d) vs (%d,%d)", c1, t1, c2, t2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("trajectories diverge: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("object sizes diverge at step %d: %d vs %d", i, s1[i], s2[i])
		}
	}
	if c1 == 0 {
		t.Fatal("no crashes injected at 30% over 30 writes — injection dead")
	}
}
