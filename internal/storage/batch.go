package storage

import "fmt"

// BatchReader is implemented by targets that can serve several objects
// in one scheduled pass. A chain restore that already holds the full
// object list (the supervisor's chain manifest) pays one positioning
// cost plus the streams, instead of one independent seek per link — the
// read-side half of making recovery as fast as capture. Checkpoint
// objects of one job are appended in capture order, so a store serving
// the whole list in a single pass is the physically honest model, not
// an optimistic one.
type BatchReader interface {
	// ReadBatch returns the objects' contents in input order. Any
	// missing object fails the whole batch — a chain with a hole is not
	// restorable, so there is no partial success to report.
	ReadBatch(objects []string, env *Env) ([][]byte, error)
}

// ReadBatch implements BatchReader: one disk seek, then every object
// streamed off the platter in sequence.
func (l *Local) ReadBatch(objects []string, env *Env) ([][]byte, error) {
	env = orNop(env)
	if !l.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, l.name)
	}
	out := make([][]byte, len(objects))
	for i, name := range objects {
		data, ok := l.store.get(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, l.name, name)
		}
		if i == 0 {
			env.Wait(l.cm.DiskSeek, "disk-seek")
		}
		env.Wait(l.cm.DiskStream(len(data)), "disk-read")
		out[i] = data
	}
	return out, nil
}

// ReadBatch implements BatchReader: one server-side seek, then every
// object streamed over the network in sequence.
func (r *Remote) ReadBatch(objects []string, env *Env) ([][]byte, error) {
	env = orNop(env)
	if !r.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, r.name)
	}
	out := make([][]byte, len(objects))
	for i, name := range objects {
		data, ok := r.srv.store.get(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, name)
		}
		if i == 0 {
			env.Wait(r.cm.DiskSeek, "server-seek")
		}
		for off := 0; off < len(data); off += chunk {
			n := len(data) - off
			if n > chunk {
				n = chunk
			}
			env.Wait(r.cm.NetTransfer(n)+r.cm.DiskStream(n), "net-read")
		}
		out[i] = data
	}
	return out, nil
}
