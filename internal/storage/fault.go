package storage

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrFault reports an injected storage fault: the transfer crashed
// mid-flight and whatever bytes were already streamed are left behind as
// a torn object. Callers distinguish it from ErrUnavailable because the
// target itself may still be up (a lone bad write, not an outage).
var ErrFault = errors.New("storage: injected write fault")

// FaultPolicy injects storage faults at per-operation granularity,
// extending the whole-server Fail/Recover hooks down to individual
// writes. It models the three failure shapes Skjellum et al. argue real
// C/R libraries must survive: an I/O error that tears the in-flight
// object, a silent tail loss on a commit that skipped the durability
// barrier, and a mid-transfer outage that takes the whole target down.
//
// All draws come from Rng, so a cluster-seeded policy makes every fault
// sequence reproducible. A nil *FaultPolicy injects nothing.
type FaultPolicy struct {
	// WriteFault is the per-Write probability that the transfer crashes
	// mid-flight. A uniform fraction of the payload still lands (the torn
	// prefix a real in-place writer leaves on disk) and the writer is
	// poisoned: the crash happened, nobody gets to Abort the debris.
	WriteFault float64
	// OutageFrac is the fraction of injected write crashes that escalate
	// to a whole-target outage (the checkpoint server dying mid-transfer).
	// Only targets with an outage notion (the remote Server) honour it.
	OutageFrac float64
	// SilentTear is the per-commit probability that a *non-durable*
	// commit silently loses a uniform tail of the object: the write call
	// chain reported success but the data never fully reached the
	// platters. Commits behind the durability barrier (PutAtomic's
	// sync-before-publish) are immune — that barrier is the fix.
	SilentTear float64
	// PublishFault is the per-Publish probability that the atomic rename
	// fails cleanly: the staging object stays, the final name is
	// untouched, and the caller sees an error it can retry.
	PublishFault float64

	// Rng drives every draw; seed it from the cluster RNG for
	// deterministic replay. Required when any probability is nonzero.
	Rng *rand.Rand

	// OnOutage is invoked (if set) when a write crash escalates to an
	// outage, after the target has been taken down — the cluster layer
	// uses it to schedule the server's recovery.
	OnOutage func()

	// Injection counts, for tests and experiment tables.
	Crashes      int
	Outages      int
	Tears        int
	PublishFails int

	// mu serialises draws and counter updates: one policy is shared by a
	// server and its concurrent replica writers.
	mu sync.Mutex
}

// crashWrite decides whether one Write call crashes. It returns the
// fraction of the payload that still lands and whether the crash
// escalates to an outage (only when outageOK).
func (fp *FaultPolicy) crashWrite(outageOK bool) (keepFrac float64, outage, crash bool) {
	if fp == nil || fp.WriteFault <= 0 {
		return 0, false, false
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.Rng.Float64() >= fp.WriteFault {
		return 0, false, false
	}
	fp.Crashes++
	keepFrac = fp.Rng.Float64()
	if outageOK && fp.Rng.Float64() < fp.OutageFrac {
		fp.Outages++
		outage = true
	}
	return keepFrac, outage, true
}

// tearCommit decides whether a non-durable commit silently loses its
// tail, returning the fraction of the object that survives.
func (fp *FaultPolicy) tearCommit() (keepFrac float64, tear bool) {
	if fp == nil || fp.SilentTear <= 0 {
		return 0, false
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.Rng.Float64() >= fp.SilentTear {
		return 0, false
	}
	fp.Tears++
	return fp.Rng.Float64(), true
}

// failPublish decides whether one Publish attempt fails.
func (fp *FaultPolicy) failPublish() bool {
	if fp == nil || fp.PublishFault <= 0 {
		return false
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.Rng.Float64() >= fp.PublishFault {
		return false
	}
	fp.PublishFails++
	return true
}
