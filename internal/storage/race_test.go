// Concurrency suite for the replicated path, meaningful under -race:
// several writers fan out to the same replica set while the fence
// domain's epoch advances underneath them. The properties checked are
// the fence contract's concurrent form — a writer that loses the epoch
// race is rejected on *every* replica, never on just some of them — and
// that the shared stores, fault policies, and counters survive the
// interleavings without data races.

package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/trace"
)

// TestRaceConcurrentReplicaWrites drives many goroutines writing
// distinct objects through one Replicated set concurrently; every
// acknowledged object must be fully mirrored on every replica.
func TestRaceConcurrentReplicaWrites(t *testing.T) {
	cm := costmodel.Default2005()
	d0 := NewLocal("self", cm, nil)
	d1 := NewLocal("buddy", cm, nil)
	srv := NewServer("srv", cm)
	reps := []Replica{
		{T: d0, Role: RoleLocal},
		{T: OverWire(d1, cm), Role: RoleBuddy},
		{T: NewRemote("net", srv), Role: RoleRemote},
	}
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 3})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				obj := fmt.Sprintf("w%d-img%d", g, i)
				if err := Write(r, obj, []byte(obj), WriteOptions{Atomic: true}); err != nil {
					t.Errorf("%s: %v", obj, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < writers; g++ {
		for i := 0; i < perWriter; i++ {
			obj := fmt.Sprintf("w%d-img%d", g, i)
			for ri, member := range []Target{d0, d1, reps[2].T} {
				data, err := member.ReadObject(obj, nil)
				if err != nil || string(data) != obj {
					t.Fatalf("replica %d missing %s: %v", ri, obj, err)
				}
			}
		}
	}
}

// TestRaceStaleWriterFencedOnEveryReplica bumps the fence epoch while
// stale-epoch writers keep publishing from other goroutines. Whenever a
// stale write is rejected, it must be absent from every replica; when a
// write was acknowledged before the bump, it must be present on every
// replica. No mixed outcomes — that is the split-brain the per-replica
// fence exists to prevent.
func TestRaceStaleWriterFencedOnEveryReplica(t *testing.T) {
	cm := costmodel.Default2005()
	d0 := NewLocal("self", cm, nil)
	d1 := NewLocal("buddy", cm, nil)
	srv := NewServer("srv", cm)
	ctr := trace.NewCounters()
	dom := NewFenceDomain("job", ctr)

	replicatedAt := func(epoch uint64) *Replicated {
		reps := []Replica{
			{T: FencedAt(d0, dom, epoch), Role: RoleLocal},
			{T: FencedAt(OverWire(d1, cm), dom, epoch), Role: RoleBuddy},
			{T: FencedAt(NewRemote("net", srv), dom, epoch), Role: RoleRemote},
		}
		r, err := NewReplicated(fmt.Sprintf("repl-e%d", epoch), reps, ReplicatedConfig{Quorum: 3, Counters: ctr})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	const writers, perWriter = 6, 15
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := make(map[string]bool) // object -> acknowledged
	rejected := make(map[string]bool)

	// One goroutine advances the epoch a few times mid-run.
	epochs := make(chan uint64, 8)
	epochs <- dom.Advance()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			epochs <- dom.Advance()
		}
		close(epochs)
	}()

	// Writers grab whatever epoch was current when they started a batch;
	// the advancer races them into staleness.
	var epochMu sync.Mutex
	current := uint64(1)
	go func() {
		for e := range epochs {
			epochMu.Lock()
			current = e
			epochMu.Unlock()
		}
	}()

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				epochMu.Lock()
				e := current
				epochMu.Unlock()
				r := replicatedAt(e)
				obj := fmt.Sprintf("w%d-img%d", g, i)
				err := Write(r, obj, []byte(obj), WriteOptions{Atomic: true})
				mu.Lock()
				switch {
				case err == nil:
					acked[obj] = true
				case errors.Is(err, ErrFenced):
					rejected[obj] = true
				default:
					t.Errorf("%s: unexpected error %v", obj, err)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	members := []Target{d0, d1, NewRemote("net", srv)}
	for obj := range acked {
		for ri, member := range members {
			if _, err := member.ReadObject(obj, nil); err != nil {
				t.Fatalf("acked %s missing on replica %d: %v", obj, ri, err)
			}
		}
	}
	for obj := range rejected {
		for ri, member := range members {
			if _, err := member.ReadObject(obj, nil); err == nil {
				t.Fatalf("fenced %s leaked onto replica %d", obj, ri)
			}
		}
	}
	if len(rejected) > 0 {
		if got := ctr.Get("fence.rejected"); got < int64(len(rejected)) {
			t.Fatalf("fence.rejected = %d for %d rejected writes", got, len(rejected))
		}
	}
}

// TestRaceFaultPolicySharedAcrossWriters hammers one fault policy from
// concurrent writers — the draws and counters must not race.
func TestRaceFaultPolicySharedAcrossWriters(t *testing.T) {
	cm := costmodel.Default2005()
	srv := NewServer("srv", cm)
	srv.SetFaults(&FaultPolicy{WriteFault: 0.2, PublishFault: 0.1,
		Rng: rand.New(rand.NewSource(42))})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rem := NewRemote(fmt.Sprintf("net%d", g), srv)
			for i := 0; i < 30; i++ {
				obj := fmt.Sprintf("w%d-%d", g, i)
				// Both outcomes are fine; the point is the interleaving.
				_ = Write(rem, obj, []byte(obj), WriteOptions{Atomic: true})
			}
		}(g)
	}
	wg.Wait()
}
