// Replicated storage: one logical Target fanning out to a placement set
// of real targets. This is the §4.1 answer to "node-local checkpoints
// die with the node" — Charm++'s double local-storage scheme generalised:
// mirror the object to self + buddies (plus optionally the remote
// server), or cut it into k-of-n erasure shards, and acknowledge only
// when a write quorum has durably published. Reads walk a degraded-read
// ladder — local, buddy, shards, reconstruct, remote — so a restore pays
// the nearest surviving replica's price, not the worst one's.
//
// The fence contract composes by construction: callers wrap each member
// target in FencedAt *before* handing it to NewReplicated, so the epoch
// check runs on every replica's commit point independently. A stale
// writer is rejected by all of them — there is no replica a zombie can
// sneak a publish onto.

package storage

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/simtime"
	"repro/internal/storage/erasure"
	"repro/internal/trace"
)

// ReplicaRole classifies a placement slot for read ordering and the
// repl.read_source histogram.
type ReplicaRole uint8

// Roles, in degraded-read preference order.
const (
	RoleLocal  ReplicaRole = iota // the owner node's own disk
	RoleBuddy                     // a buddy node's disk, reached over the wire
	RoleShard                     // one erasure-shard holder
	RoleRemote                    // the shared checkpoint server
)

func (r ReplicaRole) String() string {
	switch r {
	case RoleLocal:
		return "local"
	case RoleBuddy:
		return "buddy"
	case RoleShard:
		return "shard"
	case RoleRemote:
		return "remote"
	}
	return "?"
}

// Read-source classes observed into the repl.read_source histogram: the
// role that served a mirror read, or the two erasure outcomes.
const (
	ReadSourceLocal       = 0 // served from the owner's own disk
	ReadSourceBuddy       = 1 // served from a buddy replica
	ReadSourceShards      = 2 // erasure: all data shards present, no solve
	ReadSourceReconstruct = 3 // erasure: parity solve required
	ReadSourceRemote      = 4 // served from the shared server
)

// Replica is one placement slot.
type Replica struct {
	T    Target
	Role ReplicaRole
}

// ReplicatedConfig tunes a Replicated target.
type ReplicatedConfig struct {
	// Quorum is how many replicas must durably publish before the write
	// is acknowledged. 0 defaults to 2 for mirrors (self + one survivor)
	// and DataShards+1 for erasure sets (lose any one shard and still
	// decode), both capped at the replica count.
	Quorum int
	// DataShards/ParityShards select erasure mode: the object is cut
	// into DataShards+ParityShards shards, one per replica slot (the
	// replica count must equal the shard count). Both zero = mirror mode.
	DataShards   int
	ParityShards int
	// Counters receives repl.* counts (created when nil).
	Counters *trace.Counters
	// Metrics receives the repl.read_source histogram (created when nil).
	Metrics *trace.Metrics
}

// Replicated is a Target spanning a placement set. It implements
// BatchReader so chain-manifest restores keep their batched fast path.
type Replicated struct {
	name string
	reps []Replica
	cfg  ReplicatedConfig
}

// NewReplicated builds a replicated target over the placement set.
// Fence wrapping is the caller's job: pass each member through FencedAt
// first so stale-epoch rejection happens per replica.
func NewReplicated(name string, reps []Replica, cfg ReplicatedConfig) (*Replicated, error) {
	if len(reps) == 0 {
		return nil, errors.New("storage: replicated target needs at least one replica")
	}
	erasureMode := cfg.DataShards != 0 || cfg.ParityShards != 0
	if erasureMode {
		if cfg.DataShards < 1 || cfg.ParityShards < 1 {
			return nil, fmt.Errorf("storage: erasure geometry %d+%d needs k>=1, m>=1",
				cfg.DataShards, cfg.ParityShards)
		}
		if n := cfg.DataShards + cfg.ParityShards; n != len(reps) {
			return nil, fmt.Errorf("storage: erasure geometry %d+%d needs exactly %d replicas, have %d",
				cfg.DataShards, cfg.ParityShards, n, len(reps))
		}
	}
	if cfg.Quorum == 0 {
		if erasureMode {
			cfg.Quorum = cfg.DataShards + 1
		} else {
			cfg.Quorum = 2
		}
		if cfg.Quorum > len(reps) {
			cfg.Quorum = len(reps)
		}
	}
	if cfg.Quorum < 1 || cfg.Quorum > len(reps) {
		return nil, fmt.Errorf("storage: write quorum %d out of range 1..%d", cfg.Quorum, len(reps))
	}
	if erasureMode && cfg.Quorum < cfg.DataShards {
		return nil, fmt.Errorf("storage: erasure write quorum %d below k=%d cannot guarantee a decodable ack",
			cfg.Quorum, cfg.DataShards)
	}
	if cfg.Counters == nil {
		cfg.Counters = trace.NewCounters()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = trace.NewMetricsWith(cfg.Counters)
	}
	return &Replicated{name: name, reps: reps, cfg: cfg}, nil
}

// Erasure reports whether the target shards rather than mirrors, with
// its geometry.
func (r *Replicated) Erasure() (k, m int, on bool) {
	return r.cfg.DataShards, r.cfg.ParityShards, r.cfg.DataShards != 0
}

// Quorum returns the configured write quorum.
func (r *Replicated) Quorum() int { return r.cfg.Quorum }

// Replicas returns the placement set (shared slice; do not mutate).
func (r *Replicated) Replicas() []Replica { return r.reps }

// Name implements Target.
func (r *Replicated) Name() string { return r.name }

// Kind implements Target.
func (r *Replicated) Kind() Kind { return KindReplicated }

// Available implements Target: the set can take a quorum write.
func (r *Replicated) Available() bool {
	up := 0
	for _, rep := range r.reps {
		if rep.T.Available() {
			up++
		}
	}
	return up >= r.cfg.Quorum
}

// fanEnv gives one replica of a parallel fan-out its own wait
// accumulator; the caller charges the maximum across replicas — the
// fan-out completes when the slowest member does, not after the sum.
type fanEnv struct {
	env  *Env
	wait simtime.Duration
}

func newFanEnv(bill *Env) *fanEnv {
	f := &fanEnv{}
	f.env = &Env{Bill: orNop(bill).Bill, Wait: func(d simtime.Duration, _ string) { f.wait += d }}
	return f
}

// Create implements Target. The writer buffers everything and fans out
// at Commit: erasure coding needs the whole payload before it can cut
// shards, and deferring the member Creates keeps a crashed caller from
// littering every replica with empty staging objects. Quorum is judged
// at the durability points (Commit, Publish), not here — a set that
// degrades mid-write should fail with the quorum verdict, not a
// spurious availability error at open time.
func (r *Replicated) Create(object string, env *Env) (Writer, error) {
	return &replWriter{r: r, object: object, env: orNop(env)}, nil
}

type replWriter struct {
	r      *Replicated
	object string
	env    *Env
	buf    []byte
	done   bool
}

func (w *replWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("storage: write after commit")
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *replWriter) Abort() { w.done = true; w.buf = nil }

// Commit fans the buffered payload out to every available replica and
// succeeds when at least quorum of them committed durably. Replica
// writes are modeled as parallel: the caller waits for the slowest
// member, not the sum.
func (w *replWriter) Commit() error {
	if w.done {
		return errors.New("storage: double commit")
	}
	w.done = true
	r := w.r
	payloads, err := r.payloadsFor(w.buf)
	if err != nil {
		return err
	}
	committed := 0
	var maxWait simtime.Duration
	for i, rep := range r.reps {
		if !rep.T.Available() {
			r.cfg.Counters.Inc("repl.write_skipped", 1)
			continue
		}
		f := newFanEnv(w.env)
		if werr := writeMember(rep.T, w.object, payloads[i], f.env); werr != nil {
			r.cfg.Counters.Inc("repl.write_failed", 1)
			// An injected crash leaves whatever streamed so far on the
			// member under the staging name. Unlike a lone writer's crash,
			// the coordinator is alive and saw the error — scrub the torn
			// object now, or the fan-out Publish below would rename those
			// partial bytes into place on this member.
			_ = rep.T.Delete(w.object)
			continue
		}
		if f.wait > maxWait {
			maxWait = f.wait
		}
		committed++
	}
	w.env.Wait(maxWait, "repl-write")
	if committed < r.cfg.Quorum {
		return fmt.Errorf("%w: %s: %d/%d committed, quorum %d",
			ErrQuorum, r.name, committed, len(r.reps), r.cfg.Quorum)
	}
	return nil
}

// payloadsFor returns the per-replica payloads: the object itself for
// mirrors, or its erasure shards (slot i holds shard i).
func (r *Replicated) payloadsFor(data []byte) ([][]byte, error) {
	if k, m, on := r.Erasure(); on {
		return erasure.EncodeObject(data, k, m)
	}
	out := make([][]byte, len(r.reps))
	for i := range out {
		out[i] = data
	}
	return out, nil
}

// writeMember stages one replica's payload: create, write, commit. The
// member target applies its own cost model and fault policy.
func writeMember(t Target, object string, data []byte, env *Env) error {
	mw, err := t.Create(object, env)
	if err != nil {
		return err
	}
	if _, err := mw.Write(data); err != nil {
		mw.Abort()
		return err
	}
	return mw.Commit()
}

// Publish implements Target: the quorum commit point. Every replica
// attempts its atomic rename (fence-wrapped members enforce the epoch
// here); success needs at least quorum renames. Any fenced member wins
// over a numeric quorum — the write belongs to a superseded incarnation
// and must not be acknowledged, and looping every member first lets each
// fence clean its own stale staging object.
func (r *Replicated) Publish(staging, final string, env *Env) error {
	env = orNop(env)
	ok, fenced := 0, false
	var firstErr error
	var maxWait simtime.Duration
	for _, rep := range r.reps {
		f := newFanEnv(env)
		err := rep.T.Publish(staging, final, f.env)
		if f.wait > maxWait {
			maxWait = f.wait
		}
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrFenced):
			fenced = true
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	env.Wait(maxWait, "repl-publish")
	if fenced {
		r.cfg.Counters.Inc("repl.publish_fenced", 1)
		return fmt.Errorf("%w: %s", ErrFenced, r.name)
	}
	if ok < r.cfg.Quorum {
		r.cfg.Counters.Inc("repl.quorum_failed", 1)
		if firstErr != nil {
			return fmt.Errorf("%w: %s: %d/%d published, quorum %d (first failure: %v)",
				ErrQuorum, r.name, ok, len(r.reps), r.cfg.Quorum, firstErr)
		}
		return fmt.Errorf("%w: %s: %d/%d published, quorum %d",
			ErrQuorum, r.name, ok, len(r.reps), r.cfg.Quorum)
	}
	r.cfg.Counters.Inc("repl.publishes", 1)
	if ok < len(r.reps) {
		// Acknowledged but degraded: background re-replication owes the
		// missing members a copy.
		r.cfg.Counters.Inc("repl.partial_publish", 1)
	}
	return nil
}

// ReadObject implements Target: the degraded-read ladder. Mirrors walk
// the replicas in placement order (local, buddies, remote) and the first
// copy wins; erasure sets read all surviving shards in parallel and
// decode. Every read observes its source class into repl.read_source.
func (r *Replicated) ReadObject(object string, env *Env) ([]byte, error) {
	env = orNop(env)
	if _, _, on := r.Erasure(); on {
		return r.readErasure(object, env)
	}
	sawNotFound := false
	for _, rep := range r.reps {
		if !rep.T.Available() {
			continue
		}
		data, err := rep.T.ReadObject(object, env)
		if err == nil {
			r.observeRead(roleSource(rep.Role))
			return data, nil
		}
		if errors.Is(err, ErrNotFound) {
			sawNotFound = true
		}
	}
	r.cfg.Counters.Inc("repl.read_failed", 1)
	if sawNotFound {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
	}
	return nil, fmt.Errorf("%w: %s", ErrTargetUnavailable, r.name)
}

func roleSource(role ReplicaRole) int {
	switch role {
	case RoleLocal:
		return ReadSourceLocal
	case RoleBuddy:
		return ReadSourceBuddy
	case RoleRemote:
		return ReadSourceRemote
	}
	return ReadSourceShards
}

func (r *Replicated) observeRead(source int) {
	r.cfg.Metrics.Hist("repl.read_source").Observe(float64(source))
	switch source {
	case ReadSourceLocal:
		r.cfg.Counters.Inc("repl.read_local", 1)
	case ReadSourceBuddy:
		r.cfg.Counters.Inc("repl.read_buddy", 1)
	case ReadSourceShards:
		r.cfg.Counters.Inc("repl.read_shards", 1)
	case ReadSourceReconstruct:
		r.cfg.Counters.Inc("repl.read_reconstruct", 1)
	case ReadSourceRemote:
		r.cfg.Counters.Inc("repl.read_remote", 1)
	}
}

// readErasure gathers surviving shards in parallel (max-wait accounting)
// and decodes. "Shards" means every data shard answered and the decode
// is a straight concatenation; "reconstruct" means at least one parity
// solve happened.
func (r *Replicated) readErasure(object string, env *Env) ([]byte, error) {
	k, _, _ := r.Erasure()
	blobs := make([][]byte, len(r.reps))
	var maxWait simtime.Duration
	sawNotFound, sawDown := false, false
	for i, rep := range r.reps {
		if !rep.T.Available() {
			sawDown = true
			continue
		}
		f := newFanEnv(env)
		data, err := rep.T.ReadObject(object, f.env)
		if f.wait > maxWait {
			maxWait = f.wait
		}
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				sawNotFound = true
			}
			continue
		}
		blobs[i] = data
	}
	env.Wait(maxWait, "repl-shard-read")
	// DecodeAny, not DecodeObject: a partially-landed re-encode under
	// this name (a chain fold that missed a member) leaves one stale
	// shard in the gather, and the strict decode would refuse the k good
	// ones alongside it.
	data, err := erasure.DecodeAny(blobs)
	if err != nil {
		r.cfg.Counters.Inc("repl.read_failed", 1)
		if sawDown {
			return nil, fmt.Errorf("%w: %s (%v)", ErrTargetUnavailable, r.name, err)
		}
		if sawNotFound {
			return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
		}
		return nil, fmt.Errorf("storage: %s/%s: %w", r.name, object, err)
	}
	source := ReadSourceShards
	for i := 0; i < k; i++ {
		if s, perr := erasure.ParseShard(blobs[i]); perr != nil || s.Index != i {
			source = ReadSourceReconstruct
			break
		}
	}
	// The solve itself is in-memory; the time is the shard transfers,
	// already charged above.
	r.observeRead(source)
	return data, nil
}

// ReadBatch implements BatchReader. Mirrors forward the whole batch to
// the first replica that can serve it (keeping the one-seek fast path);
// erasure sets decode object by object.
func (r *Replicated) ReadBatch(objects []string, env *Env) ([][]byte, error) {
	env = orNop(env)
	if _, _, on := r.Erasure(); !on {
		for _, rep := range r.reps {
			br, ok := rep.T.(BatchReader)
			if !ok || !rep.T.Available() {
				continue
			}
			out, err := br.ReadBatch(objects, env)
			if err == nil {
				for range objects {
					r.observeRead(roleSource(rep.Role))
				}
				return out, nil
			}
		}
	}
	out := make([][]byte, len(objects))
	for i, name := range objects {
		data, err := r.ReadObject(name, env)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// List implements Target: the sorted union over reachable replicas.
func (r *Replicated) List() []string {
	seen := make(map[string]bool)
	for _, rep := range r.reps {
		if !rep.T.Available() {
			continue
		}
		for _, n := range rep.T.List() {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delete implements Target. The object is gone only when every replica
// agrees; an unreachable replica keeps the delete pending (typed
// ErrTargetUnavailable) so GC sweeps retry instead of stranding a copy
// that would resurface when the node returns. A fenced member vetoes the
// whole delete — a stale incarnation must not GC the live chain on any
// replica.
func (r *Replicated) Delete(object string) error {
	found, down, fenced := false, false, false
	for _, rep := range r.reps {
		err := rep.T.Delete(object)
		switch {
		case err == nil:
			found = true
		case errors.Is(err, ErrFenced):
			fenced = true
		case errors.Is(err, ErrTargetUnavailable):
			down = true
		}
	}
	switch {
	case fenced:
		return fmt.Errorf("%w: %s", ErrFenced, r.name)
	case down:
		return fmt.Errorf("%w: %s", ErrTargetUnavailable, r.name)
	case found:
		return nil
	}
	return fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
}

// ObjectSize implements Target. Mirrors report the first replica's
// answer. Erasure sets require a decodable object — at least k shard
// copies — and report the original length from a shard header, so the
// delta-chain parent check ("is my parent durable here?") means
// restorable, not merely present somewhere.
func (r *Replicated) ObjectSize(object string) (int, error) {
	k, _, on := r.Erasure()
	if !on {
		sawNotFound := false
		for _, rep := range r.reps {
			if !rep.T.Available() {
				continue
			}
			n, err := rep.T.ObjectSize(object)
			if err == nil {
				return n, nil
			}
			if errors.Is(err, ErrNotFound) {
				sawNotFound = true
			}
		}
		if sawNotFound {
			return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
		}
		return 0, fmt.Errorf("%w: %s", ErrTargetUnavailable, r.name)
	}
	copies, origLen, sawAny, sawDown := 0, 0, false, false
	for _, rep := range r.reps {
		if !rep.T.Available() {
			sawDown = true
			continue
		}
		data, err := rep.T.ReadObject(object, nil)
		if err != nil {
			continue
		}
		sawAny = true
		if s, perr := erasure.ParseShard(data); perr == nil {
			copies++
			origLen = s.OrigLen
		}
	}
	if copies >= k {
		return origLen, nil
	}
	if sawDown && !sawAny {
		return 0, fmt.Errorf("%w: %s", ErrTargetUnavailable, r.name)
	}
	return 0, fmt.Errorf("%w: %s/%s (%d/%d shards)", ErrNotFound, r.name, object, copies, k)
}

// Repair restores full redundancy for one object: mirrors copy the
// surviving version onto every reachable replica missing it; erasure
// sets reconstruct the full shard set and rewrite any missing or
// corrupt shard. Returns how many replicas were repaired. Repair runs
// through the same (fence-wrapped) members as writes, so a stale
// repairer is rejected at each replica's commit point.
func (r *Replicated) Repair(object string, env *Env) (int, error) {
	return r.RepairSized(object, 0, env)
}

// RepairSized is Repair with the authoritative encoded length, when the
// caller knows it (the supervisor records each live-chain object's size
// at ack and fold time). A non-zero want upgrades the sweep from
// presence to identity: a member holding the WRONG bytes under the name
// — the stale pre-fold leaf a quorum publish skipped past — is detected
// by its size and rewritten from a member holding the right ones.
// Without this, a fold that reached quorum but not every member leaves a
// divergent replica whose ancestry the GC has already reclaimed: a
// degraded restore through it would walk into deleted objects.
func (r *Replicated) RepairSized(object string, want int, env *Env) (int, error) {
	env = orNop(env)
	if _, _, on := r.Erasure(); on {
		return r.repairErasure(object, want, env)
	}
	data, err := r.readExact(object, want, env)
	if err != nil {
		return 0, err
	}
	repaired := 0
	for _, rep := range r.reps {
		if !rep.T.Available() {
			continue
		}
		if n, serr := rep.T.ObjectSize(object); serr == nil && (want <= 0 || n == want) {
			continue
		}
		if werr := Write(rep.T, object, data, WriteOptions{Atomic: true, Env: env}); werr != nil {
			return repaired, werr
		}
		repaired++
	}
	r.cfg.Counters.Inc("repl.repaired", int64(repaired))
	return repaired, nil
}

// readExact reads a mirror copy of the expected length — the repair
// source must be the current version, not whichever replica answers
// first. With no expectation it is the plain degraded-read ladder.
func (r *Replicated) readExact(object string, want int, env *Env) ([]byte, error) {
	if want <= 0 {
		return r.ReadObject(object, env)
	}
	sawAny := false
	for _, rep := range r.reps {
		if !rep.T.Available() {
			continue
		}
		data, err := rep.T.ReadObject(object, env)
		if err != nil {
			continue
		}
		sawAny = true
		if len(data) == want {
			r.observeRead(roleSource(rep.Role))
			return data, nil
		}
	}
	r.cfg.Counters.Inc("repl.read_failed", 1)
	if sawAny {
		return nil, fmt.Errorf("storage: %s/%s: no replica holds the expected %d bytes", r.name, object, want)
	}
	return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
}

func (r *Replicated) repairErasure(object string, want int, env *Env) (int, error) {
	healthy := func(b []byte, slot int) bool {
		s, perr := erasure.ParseShard(b)
		return perr == nil && s.Index == slot && (want <= 0 || s.OrigLen == want)
	}
	blobs := make([][]byte, len(r.reps))
	for i, rep := range r.reps {
		if !rep.T.Available() {
			continue
		}
		if data, err := rep.T.ReadObject(object, env); err == nil {
			// A stale shard (wrong original length) must not feed the
			// reconstruction: mixing encodings is exactly the divergence
			// this repair exists to erase.
			if s, perr := erasure.ParseShard(data); perr == nil && (want <= 0 || s.OrigLen == want) {
				blobs[i] = data
			}
		}
	}
	rebuilt, err := erasure.ReconstructShards(blobs)
	if err != nil {
		return 0, fmt.Errorf("storage: repair %s/%s: %w", r.name, object, err)
	}
	repaired := 0
	for i, rep := range r.reps {
		if !rep.T.Available() {
			continue
		}
		if blobs[i] != nil && healthy(blobs[i], i) {
			continue // current-version shard in the right slot
		}
		if werr := Write(rep.T, object, rebuilt[i], WriteOptions{Atomic: true, Env: env}); werr != nil {
			return repaired, werr
		}
		repaired++
	}
	r.cfg.Counters.Inc("repl.repaired", int64(repaired))
	return repaired, nil
}
