// Chain compaction: fold a long delta chain into a fresh full image so
// restore never replays more than a bounded number of deltas. The
// protocol is ordered for the failure that matters — a crash or fence
// mid-compaction: the folded image publishes atomically under the
// chain's own leaf name first, and only once that publish has returned
// (the image is durable and readable) are the folded ancestors
// garbage-collected. At every instant the leaf name resolves to a
// restorable image — the old delta with its ancestry intact, or the new
// full — and a stale incarnation's compactor is fenced off from both
// the publish and the GC exactly like any other writer.
//
// The storage layer cannot decode images, so what "fold" means is
// injected as a callback (checkpoint.FoldEncodedChain); this file owns
// only the durability ordering.

package storage

import (
	"errors"
	"fmt"
)

// FoldFunc merges an encoded chain (oldest-first, head full) into one
// encoded full image that restores identically. It must preserve the
// leaf's object identity: the result is published under the chain's
// leaf name, so children chained onto the leaf keep a durable parent.
type FoldFunc func(blobs [][]byte) ([]byte, error)

// CompactStats reports what one CompactChain call did.
type CompactStats struct {
	Folded   string   // leaf name the folded image was published under ("" if not durable)
	Deltas   int      // chain links folded away (len(objects)-1)
	BytesIn  int      // encoded bytes read across the chain
	BytesOut int      // encoded bytes of the folded image
	Deleted  []string // ancestors reclaimed after the publish
	Pending  []string // ancestors a failed GC left behind (retry later)
}

// CompactChain folds the chain objects (oldest-first, leaf last) into a
// single full image and publishes it atomically under the leaf's name,
// then retires the folded ancestors. A non-empty Folded in the returned
// stats means the fold is durable even if err is non-nil: GC failures
// (including ErrFenced) surface the error but the chain is already
// served by the folded image, so the caller's only obligation is to
// retry Pending later. An error with Folded=="" means nothing changed.
func CompactChain(t Target, objects []string, fold FoldFunc, env *Env) (CompactStats, error) {
	var st CompactStats
	if t == nil {
		return st, errors.New("storage: CompactChain on nil target")
	}
	if fold == nil {
		return st, errors.New("storage: CompactChain without fold func")
	}
	if len(objects) < 2 {
		return st, fmt.Errorf("storage: compact chain of %d: nothing to fold", len(objects))
	}
	blobs := make([][]byte, len(objects))
	for i, o := range objects {
		data, err := t.ReadObject(o, env)
		if err != nil {
			return st, fmt.Errorf("storage: compact read %s: %w", o, err)
		}
		blobs[i] = data
		st.BytesIn += len(data)
	}
	folded, err := fold(blobs)
	if err != nil {
		return st, fmt.Errorf("storage: compact fold: %w", err)
	}
	st.BytesOut = len(folded)
	st.Deltas = len(objects) - 1

	// Atomic replace under the leaf's own name: readers see either the
	// old delta (whose ancestry is still fully present — nothing has
	// been deleted yet) or the new full image, never a torn or orphaned
	// state. The epoch fence applies here as to any publish.
	leaf := objects[len(objects)-1]
	if err := Write(t, leaf, folded, WriteOptions{Atomic: true, Env: env}); err != nil {
		return st, fmt.Errorf("storage: compact publish %s: %w", leaf, err)
	}
	st.Folded = leaf

	// Only now — with the fold durable — reclaim the folded ancestors.
	deleted, pending, gerr := RetireChain(t, objects[:len(objects)-1])
	st.Deleted = deleted
	st.Pending = pending
	if gerr != nil {
		return st, fmt.Errorf("storage: compact gc after fold of %s: %w", leaf, gerr)
	}
	return st, nil
}
