// Package storage models stable storage for checkpoint data: node-local
// disk, a remote checkpoint server reached over the interconnect, and a
// memory target (Software Suspend's standby mode). Table 1's "Stable
// storage" column — local, remote, or none — is the Kind a mechanism
// writes to, and §4.1's fault-tolerance argument hinges on the difference:
// node-local checkpoints become unavailable when the node fails.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/costmodel"
	"repro/internal/simtime"
)

// Kind classifies a target for Table 1.
type Kind uint8

// Target kinds.
const (
	KindNone Kind = iota
	KindLocal
	KindRemote
	KindMemory
	KindReplicated
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindLocal:
		return "local"
	case KindRemote:
		return "remote"
	case KindMemory:
		return "memory"
	case KindReplicated:
		return "replicated"
	}
	return "?"
}

// Env carries the accounting hooks for storage operations. Bill charges
// CPU-attributed time; Wait spends I/O time, during which a kernel-backed
// Env lets other processes run.
type Env struct {
	Bill costmodel.Biller
	Wait func(d simtime.Duration, what string)
}

// NopEnv returns an Env that discards all accounting (probing, tests).
func NopEnv() *Env {
	return &Env{Bill: costmodel.Discard{}, Wait: func(simtime.Duration, string) {}}
}

// orNop substitutes a discarding Env for nil, so callers that do not care
// about accounting can pass nil everywhere.
func orNop(env *Env) *Env {
	if env == nil {
		return NopEnv()
	}
	return env
}

// LedgerEnv returns an Env accumulating both CPU and wait time in l.
func LedgerEnv(l *costmodel.Ledger) *Env {
	return &Env{Bill: l, Wait: func(d simtime.Duration, what string) { l.Charge(d, "wait:"+what) }}
}

// Errors.
var (
	// ErrTargetUnavailable means the target itself cannot be reached (a
	// failed node's disk, a server outage). Every Target method wraps it
	// with the target name, so replica-selection logic can tell "node
	// down" (try the next replica) from ErrNotFound "object missing"
	// (the replica is healthy but never got the object).
	ErrTargetUnavailable = errors.New("storage: target unavailable")
	ErrNotFound          = errors.New("storage: object not found")
	// ErrQuorum means a replicated write reached fewer replicas than its
	// configured write quorum; the object must not be acked.
	ErrQuorum = errors.New("storage: replica write quorum not met")
)

// ErrUnavailable is the historical name for ErrTargetUnavailable; the
// two are the same value, so errors.Is matches either way.
var ErrUnavailable = ErrTargetUnavailable

// Writer receives checkpoint bytes. Commit makes the object durable and
// visible; Abort discards it.
type Writer interface {
	Write(p []byte) (int, error)
	Commit() error
	Abort()
}

// Target is a place checkpoints are written to and restarted from.
type Target interface {
	Name() string
	Kind() Kind
	// Available reports whether the target's data can be reached now (a
	// failed node's local disk is not).
	Available() bool
	Create(object string, env *Env) (Writer, error)
	ReadObject(object string, env *Env) ([]byte, error)
	List() []string
	Delete(object string) error
	// ObjectSize returns the stored size of an object.
	ObjectSize(object string) (int, error)
	// Publish atomically renames a fully-written staging object to its
	// final name, replacing any previous object under that name. The
	// rename either happens completely or not at all (a failed Publish
	// leaves both names as they were), which is what PutAtomic builds
	// its all-or-nothing commit on.
	Publish(staging, final string, env *Env) error
}

// chunk is the transfer granularity for cost accounting.
const chunk = 64 << 10

// --- In-memory object store used by all targets ---

// objectStore is mutex-protected: replicated writes fan out from
// concurrent agents, and the -race suite drives several writers at one
// store at once.
type objectStore struct {
	mu      sync.Mutex
	objects map[string][]byte
}

func newObjectStore() *objectStore { return &objectStore{objects: make(map[string][]byte)} }

// get returns a copy of the object's bytes (callers may retain it).
func (s *objectStore) get(object string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[object]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

func (s *objectStore) put(object string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[object] = data
}

// remove deletes the object, reporting whether it existed.
func (s *objectStore) remove(object string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[object]; !ok {
		return false
	}
	delete(s.objects, object)
	return true
}

func (s *objectStore) size(object string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[object]
	return len(data), ok
}

func (s *objectStore) rename(old, new string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[old]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, old)
	}
	s.objects[new] = data
	delete(s.objects, old)
	return nil
}

// tear truncates a stored object to keepFrac of its bytes, deleting it
// outright when nothing survives (the lost-image case).
func (s *objectStore) tear(object string, keepFrac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[object]
	if !ok {
		return
	}
	keep := int(keepFrac * float64(len(data)))
	if keep <= 0 {
		delete(s.objects, object)
		return
	}
	s.objects[object] = data[:keep]
}

func (s *objectStore) list() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.objects))
	for n := range s.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- Local disk ---

// Local is a node-local disk target. Liveness is delegated to the owning
// node: when the node is down the checkpoints are unreachable, which is
// exactly why Table 1 flags local-only mechanisms as weak fault tolerance.
type Local struct {
	name   string
	cm     *costmodel.Model
	store  *objectStore
	alive  func() bool
	faults *FaultPolicy
}

// NewLocal creates a local-disk target; alive reports node liveness
// (nil = always alive).
func NewLocal(name string, cm *costmodel.Model, alive func() bool) *Local {
	if alive == nil {
		alive = func() bool { return true }
	}
	return &Local{name: name, cm: cm, store: newObjectStore(), alive: alive}
}

// SetFaults installs a per-operation fault-injection policy (nil
// disables injection).
func (l *Local) SetFaults(fp *FaultPolicy) { l.faults = fp }

func (l *Local) faultsOf() *FaultPolicy { return l.faults }

func (l *Local) tearObject(object string, keepFrac float64) { l.store.tear(object, keepFrac) }

// Wipe discards all contents — the blank disk of a replacement machine
// after a permanent node failure (§4.1's local-storage caveat).
func (l *Local) Wipe() { l.store = newObjectStore() }

// Name implements Target.
func (l *Local) Name() string { return l.name }

// Kind implements Target.
func (l *Local) Kind() Kind { return KindLocal }

// Available implements Target.
func (l *Local) Available() bool { return l.alive() }

// Create implements Target.
func (l *Local) Create(object string, env *Env) (Writer, error) {
	env = orNop(env)
	if !l.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, l.name)
	}
	// One seek to start the file.
	env.Wait(l.cm.DiskSeek, "disk-seek")
	return &localWriter{l: l, object: object, env: env}, nil
}

type localWriter struct {
	l       *Local
	object  string
	env     *Env
	buf     []byte
	done    bool
	crashed bool
}

func (w *localWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("storage: write after commit")
	}
	if !w.l.Available() {
		return 0, fmt.Errorf("%w: %s", ErrUnavailable, w.l.name)
	}
	if frac, _, crash := w.l.faults.crashWrite(false); crash {
		keep := int(frac * float64(len(p)))
		w.env.Wait(w.l.cm.DiskStream(keep), "disk-write")
		w.buf = append(w.buf, p[:keep]...)
		// The crash leaves whatever streamed so far on disk as a torn
		// object; nobody is alive to clean it up.
		w.l.store.put(w.object, append([]byte(nil), w.buf...))
		w.done, w.crashed = true, true
		return keep, fmt.Errorf("%w: %s/%s", ErrFault, w.l.name, w.object)
	}
	w.env.Wait(w.l.cm.DiskStream(len(p)), "disk-write")
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *localWriter) Commit() error {
	if w.done {
		return errors.New("storage: double commit")
	}
	if !w.l.Available() {
		return fmt.Errorf("%w: %s", ErrUnavailable, w.l.name)
	}
	w.done = true
	w.l.store.put(w.object, w.buf)
	return nil
}

func (w *localWriter) Abort() {
	w.done = true
	if w.crashed {
		return // the torn object is already on disk; a crash has no undo
	}
	w.buf = nil
}

// ReadObject implements Target.
func (l *Local) ReadObject(object string, env *Env) ([]byte, error) {
	env = orNop(env)
	if !l.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, l.name)
	}
	data, ok := l.store.get(object)
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, l.name, object)
	}
	env.Wait(l.cm.DiskWrite(len(data)), "disk-read") // seek + stream
	return data, nil
}

// List implements Target.
func (l *Local) List() []string { return l.store.list() }

// Delete implements Target. A dead node's disk cannot be mutated — the
// typed unavailability error lets GC sweeps keep the object pending
// instead of mistaking "node down" for "already gone".
func (l *Local) Delete(object string) error {
	if !l.Available() {
		return fmt.Errorf("%w: %s", ErrTargetUnavailable, l.name)
	}
	if !l.store.remove(object) {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, l.name, object)
	}
	return nil
}

// ObjectSize implements Target.
func (l *Local) ObjectSize(object string) (int, error) {
	if !l.Available() {
		return 0, fmt.Errorf("%w: %s", ErrTargetUnavailable, l.name)
	}
	n, ok := l.store.size(object)
	if !ok {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, l.name, object)
	}
	return n, nil
}

// Publish implements Target. The one seek covers the metadata write and
// the sync that makes the rename durable.
func (l *Local) Publish(staging, final string, env *Env) error {
	env = orNop(env)
	if !l.Available() {
		return fmt.Errorf("%w: %s", ErrUnavailable, l.name)
	}
	if l.faults.failPublish() {
		return fmt.Errorf("%w: publish %s/%s", ErrFault, l.name, final)
	}
	env.Wait(l.cm.DiskSeek, "publish")
	return l.store.rename(staging, final)
}

// --- Remote checkpoint server ---

// Server is the shared remote checkpoint store (e.g. a parallel
// filesystem or dedicated checkpoint server). It survives compute-node
// failures; Fail/Recover model server outages for failure-injection tests.
type Server struct {
	name   string
	cm     *costmodel.Model
	store  *objectStore
	failed atomic.Bool
	faults *FaultPolicy
}

// NewServer creates a remote checkpoint server.
func NewServer(name string, cm *costmodel.Model) *Server {
	return &Server{name: name, cm: cm, store: newObjectStore()}
}

// Fail takes the server down; Recover brings it back with data intact.
func (s *Server) Fail() { s.failed.Store(true) }

// Recover brings the server back.
func (s *Server) Recover() { s.failed.Store(false) }

// SetFaults installs a per-operation fault-injection policy, shared by
// every Remote client of this server (nil disables injection).
func (s *Server) SetFaults(fp *FaultPolicy) { s.faults = fp }

// Remote is a node's client view of a Server: every byte crosses the
// interconnect (charged per chunk) and then the server's disk.
type Remote struct {
	name string
	srv  *Server
	cm   *costmodel.Model
}

// NewRemote returns a client for srv, charging transfers with cm.
func NewRemote(name string, srv *Server) *Remote {
	return &Remote{name: name, srv: srv, cm: srv.cm}
}

// Name implements Target.
func (r *Remote) Name() string { return r.name }

// Kind implements Target.
func (r *Remote) Kind() Kind { return KindRemote }

// Available implements Target.
func (r *Remote) Available() bool { return !r.srv.failed.Load() }

// Create implements Target.
func (r *Remote) Create(object string, env *Env) (Writer, error) {
	env = orNop(env)
	if !r.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, r.name)
	}
	env.Wait(r.cm.DiskSeek, "server-seek")
	return &remoteWriter{r: r, object: object, env: env}, nil
}

type remoteWriter struct {
	r       *Remote
	object  string
	env     *Env
	buf     []byte
	done    bool
	crashed bool
}

func (w *remoteWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("storage: write after commit")
	}
	if !w.r.Available() {
		return 0, fmt.Errorf("%w: %s", ErrUnavailable, w.r.name)
	}
	srv := w.r.srv
	if frac, outage, crash := srv.faults.crashWrite(true); crash {
		keep := int(frac * float64(len(p)))
		w.chargeTransfer(keep)
		w.buf = append(w.buf, p[:keep]...)
		// The prefix that crossed the wire is on the server as a torn
		// object; the client's connection is gone.
		srv.store.put(w.object, append([]byte(nil), w.buf...))
		w.done, w.crashed = true, true
		if outage {
			// The crash was the server going down mid-transfer.
			srv.Fail()
			if srv.faults.OnOutage != nil {
				srv.faults.OnOutage()
			}
			return keep, fmt.Errorf("%w: %s/%s: %w", ErrFault, w.r.name, w.object, ErrUnavailable)
		}
		return keep, fmt.Errorf("%w: %s/%s", ErrFault, w.r.name, w.object)
	}
	w.chargeTransfer(len(p))
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// chargeTransfer bills n bytes of interconnect + server-disk time in
// chunk-sized transfers.
func (w *remoteWriter) chargeTransfer(n int) {
	for off := 0; off < n; off += chunk {
		c := n - off
		if c > chunk {
			c = chunk
		}
		w.env.Wait(w.r.cm.NetTransfer(c)+w.r.cm.DiskStream(c), "net-write")
	}
}

func (w *remoteWriter) Commit() error {
	if w.done {
		return errors.New("storage: double commit")
	}
	if !w.r.Available() {
		return fmt.Errorf("%w: %s", ErrUnavailable, w.r.name)
	}
	w.done = true
	w.r.srv.store.put(w.object, w.buf)
	return nil
}

func (w *remoteWriter) Abort() {
	w.done = true
	if w.crashed {
		return // the torn object already reached the server
	}
	w.buf = nil
}

// ReadObject implements Target.
func (r *Remote) ReadObject(object string, env *Env) ([]byte, error) {
	env = orNop(env)
	if !r.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, r.name)
	}
	data, ok := r.srv.store.get(object)
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
	}
	env.Wait(r.cm.DiskSeek, "server-seek")
	for off := 0; off < len(data); off += chunk {
		n := len(data) - off
		if n > chunk {
			n = chunk
		}
		env.Wait(r.cm.NetTransfer(n)+r.cm.DiskStream(n), "net-read")
	}
	return data, nil
}

// List implements Target.
func (r *Remote) List() []string { return r.srv.store.list() }

// Delete implements Target. During a server outage the object's fate is
// unknown, so the typed unavailability error keeps GC sweeps retrying.
func (r *Remote) Delete(object string) error {
	if !r.Available() {
		return fmt.Errorf("%w: %s", ErrTargetUnavailable, r.name)
	}
	if !r.srv.store.remove(object) {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
	}
	return nil
}

// ObjectSize implements Target.
func (r *Remote) ObjectSize(object string) (int, error) {
	if !r.Available() {
		return 0, fmt.Errorf("%w: %s", ErrTargetUnavailable, r.name)
	}
	n, ok := r.srv.store.size(object)
	if !ok {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, r.name, object)
	}
	return n, nil
}

// Publish implements Target: one server-side metadata round-trip.
func (r *Remote) Publish(staging, final string, env *Env) error {
	env = orNop(env)
	if !r.Available() {
		return fmt.Errorf("%w: %s", ErrUnavailable, r.name)
	}
	if r.srv.faults.failPublish() {
		return fmt.Errorf("%w: publish %s/%s", ErrFault, r.name, final)
	}
	env.Wait(r.cm.NetTransfer(64)+r.cm.DiskSeek, "publish")
	return r.srv.store.rename(staging, final)
}

func (r *Remote) faultsOf() *FaultPolicy { return r.srv.faults }

func (r *Remote) tearObject(object string, keepFrac float64) { r.srv.store.tear(object, keepFrac) }

// --- Memory target ---

// Memory is a zero-latency in-RAM target (Software Suspend's standby
// functionality: "saving the image to memory rather than to disk"). Its
// contents do not survive a node failure or power-down.
type Memory struct {
	name  string
	store *objectStore
	alive func() bool
}

// NewMemory creates a memory target; alive is the owning node's liveness.
func NewMemory(name string, alive func() bool) *Memory {
	if alive == nil {
		alive = func() bool { return true }
	}
	return &Memory{name: name, store: newObjectStore(), alive: alive}
}

// Name implements Target.
func (m *Memory) Name() string { return m.name }

// Kind implements Target.
func (m *Memory) Kind() Kind { return KindMemory }

// Available implements Target.
func (m *Memory) Available() bool { return m.alive() }

// Drop destroys all contents (power loss).
func (m *Memory) Drop() { m.store = newObjectStore() }

// Create implements Target.
func (m *Memory) Create(object string, env *Env) (Writer, error) {
	env = orNop(env)
	if !m.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, m.name)
	}
	return &memWriter{m: m, object: object, env: env}, nil
}

type memWriter struct {
	m      *Memory
	object string
	env    *Env
	buf    []byte
	done   bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("storage: write after commit")
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *memWriter) Commit() error {
	if w.done {
		return errors.New("storage: double commit")
	}
	w.done = true
	w.m.store.put(w.object, w.buf)
	return nil
}

func (w *memWriter) Abort() { w.done = true; w.buf = nil }

// ReadObject implements Target.
func (m *Memory) ReadObject(object string, env *Env) ([]byte, error) {
	env = orNop(env)
	if !m.Available() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, m.name)
	}
	data, ok := m.store.get(object)
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, object)
	}
	return data, nil
}

// List implements Target.
func (m *Memory) List() []string { return m.store.list() }

// Delete implements Target.
func (m *Memory) Delete(object string) error {
	if !m.Available() {
		return fmt.Errorf("%w: %s", ErrTargetUnavailable, m.name)
	}
	if !m.store.remove(object) {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, object)
	}
	return nil
}

// ObjectSize implements Target.
func (m *Memory) ObjectSize(object string) (int, error) {
	if !m.Available() {
		return 0, fmt.Errorf("%w: %s", ErrTargetUnavailable, m.name)
	}
	n, ok := m.store.size(object)
	if !ok {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, object)
	}
	return n, nil
}

// Publish implements Target. RAM renames are free and never faulted.
func (m *Memory) Publish(staging, final string, _ *Env) error {
	if !m.Available() {
		return fmt.Errorf("%w: %s", ErrUnavailable, m.name)
	}
	return m.store.rename(staging, final)
}
