// Atomic image commit: checkpoints are streamed to a staging name and
// published to their final name only after the full payload — including
// the CRC-64 trailer — is durably written. A crash mid-write can then
// only tear the staging object; the previously committed image under the
// final name survives the failed overwrite, and restore can never
// observe a partial image. This is the commit protocol CRAFT-style
// fault-tolerant C/R layers use, and the fix for the torn-image window
// of a plain in-place write.

package storage

import (
	"strings"
)

// stagingSuffix marks in-flight objects. Final object names never carry
// it, so a torn staging object can never be mistaken for an image.
const stagingSuffix = ".staging"

// StagingName returns the staging object name for a final object name.
func StagingName(object string) string { return object + stagingSuffix }

// IsStaging reports whether name is a staging object (an in-flight or
// crashed write that was never published).
func IsStaging(name string) bool { return strings.HasSuffix(name, stagingSuffix) }

// tearable is implemented by targets whose non-durable commits can be
// silently torn by their fault policy (the write chain reported success
// but the tail never became durable).
type tearable interface {
	faultsOf() *FaultPolicy
	tearObject(object string, keepFrac float64)
}

// unsafeTarget marks a target for legacy in-place commit (no staging, no
// durability barrier). It exists so the contrast experiment can disable
// atomic commit without threading a flag through every mechanism.
type unsafeTarget struct{ Target }

// Unsafe wraps t so captures write images in place under their final
// name with no durability barrier — the pre-atomic-commit behaviour,
// vulnerable to torn and silently truncated images. For experiments and
// regression tests only.
func Unsafe(t Target) Target {
	if t == nil {
		return nil
	}
	if _, ok := t.(unsafeTarget); ok {
		return t
	}
	return unsafeTarget{t}
}

// IsUnsafe reports whether t was wrapped by Unsafe.
func IsUnsafe(t Target) bool {
	_, ok := t.(unsafeTarget)
	return ok
}

// Put writes data under object with legacy in-place semantics: the bytes
// stream straight to the final name and the commit takes no durability
// barrier. A mid-write crash leaves a torn object under the final name,
// and the target's fault policy may silently truncate the object even
// after a successful return.
//
// Deprecated: use Write with a zero WriteOptions (in-place is the
// default only for contrast experiments; real callers want Atomic).
func Put(t Target, object string, data []byte, env *Env) error {
	return Write(t, object, data, WriteOptions{Env: env})
}

// PutAtomic writes data under a staging name and publishes it to object
// only after the full payload, CRC trailer included, is durable. Any
// failure — write crash, commit error, failed publish — leaves the
// previously committed object untouched, so the operation is all-or-
// nothing from a reader's point of view and safe to retry.
//
// Deprecated: use Write with WriteOptions{Atomic: true}.
func PutAtomic(t Target, object string, data []byte, env *Env) error {
	return Write(t, object, data, WriteOptions{Atomic: true, Env: env})
}
