package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// TestQuickFenceEpochMonotone: epochs advance by exactly one, never
// repeat, and Epoch always reflects the last Advance — over a random
// number of advances.
func TestQuickFenceEpochMonotone(t *testing.T) {
	prop := func(advances uint8) bool {
		dom := NewFenceDomain("q", nil)
		prev := dom.Epoch()
		if prev != 0 {
			return false
		}
		for i := 0; i < 1+int(advances)%128; i++ {
			e := dom.Advance()
			if e != prev+1 || dom.Epoch() != e {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFenceStaleWriterNeverCommits drives a random interleaving of
// writers admitted at successive epochs and checks the fencing contract
// after every publish attempt: only the current-epoch writer may change
// the committed object, ErrFenced is returned exactly when the writer is
// stale, a rejected publish leaves no staging debris, and the committed
// bytes always belong to the newest writer that ever published.
func TestQuickFenceStaleWriterNeverCommits(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		base := NewMemory("q", nil)
		ctr := trace.NewCounters()
		dom := NewFenceDomain("job", ctr)

		writers := []Target{FencedAt(base, dom, dom.Advance())}
		committedBy := -1 // index of the newest writer to publish successfully
		wantRejected := int64(0)
		for step := 0; step < 2+int(steps)%40; step++ {
			if rng.Intn(3) == 0 { // failover: admit a successor
				writers = append(writers, FencedAt(base, dom, dom.Advance()))
			}
			w := rng.Intn(len(writers)) // any incarnation may still be running
			payload := []byte(fmt.Sprintf("writer-%d-step-%d", w, step))
			err := Write(writers[w], "img", payload, WriteOptions{Atomic: true})
			current := w == len(writers)-1
			switch {
			case current:
				if err != nil {
					return false
				}
				if committedBy > w {
					return false // a newer writer cannot be overwritten by an older admit order
				}
				committedBy = w
				got, rerr := base.ReadObject("img", nil)
				if rerr != nil || !bytes.Equal(got, payload) {
					return false
				}
			default:
				if !errors.Is(err, ErrFenced) {
					return false
				}
				wantRejected++
			}
			// A fenced publish must garbage-collect its staging object:
			// the only object ever visible under final or staging names
			// is the committed image.
			if l := base.List(); len(l) > 1 || (len(l) == 1 && l[0] != "img") {
				return false
			}
		}
		// Accounting: every rejection was counted, nothing else was.
		return ctr.Get("fence.rejected") == wantRejected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
