package storage

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/trace"
)

// A stale-epoch writer stages freely but cannot commit: Publish is
// rejected, its staging object is garbage-collected, and the image the
// current writer committed under the same name is untouched.
func TestFenceRejectsStaleWriter(t *testing.T) {
	base := NewLocal("d", costmodel.Default2005(), nil)
	ctr := trace.NewCounters()
	dom := NewFenceDomain("job", ctr)

	e1 := dom.Advance() // first incarnation admitted
	w1 := FencedAt(base, dom, e1)
	if err := Write(w1, "img", []byte("incarnation-1"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}

	e2 := dom.Advance() // failover: second incarnation admitted
	w2 := FencedAt(base, dom, e2)
	if err := Write(w2, "img", []byte("incarnation-2"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}

	// The first incarnation is still running (false suspicion) and tries
	// to commit again: fenced.
	err := Write(w1, "img", []byte("stale"), WriteOptions{Atomic: true})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale publish err = %v, want ErrFenced", err)
	}
	if got := ctr.Get("fence.rejected"); got != 1 {
		t.Fatalf("fence.rejected = %d, want 1", got)
	}
	// The committed image is the live incarnation's, and the stale
	// staging debris is gone.
	data, err := base.ReadObject("img", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "incarnation-2" {
		t.Fatalf("committed image = %q, want incarnation-2", data)
	}
	for _, obj := range base.List() {
		if obj != "img" {
			t.Fatalf("staging debris survived: %q", obj)
		}
	}
}

// A writer at the current epoch passes through untouched, including
// reads (fencing guards only the commit point).
func TestFenceCurrentEpochPassesThrough(t *testing.T) {
	base := NewLocal("d", costmodel.Default2005(), nil)
	dom := NewFenceDomain("job", nil)
	w := FencedAt(base, dom, dom.Advance())
	if err := Write(w, "a", []byte("x"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	got, err := w.ReadObject("a", nil)
	if err != nil || string(got) != "x" {
		t.Fatalf("read through fence: %q, %v", got, err)
	}
	if dom.Counters().Get("fence.rejected") != 0 {
		t.Fatal("current-epoch writer was rejected")
	}
}
