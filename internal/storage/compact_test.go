package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/costmodel"
)

// concatFold is a stand-in FoldFunc: the storage protocol treats images
// as opaque, so a fold that just joins the blobs exercises everything
// CompactChain owns (ordering, atomicity, GC).
func concatFold(blobs [][]byte) ([]byte, error) {
	return bytes.Join(blobs, []byte("+")), nil
}

func seedChain(t *testing.T, tgt Target) []string {
	t.Helper()
	objects := []string{"ckpt/e1/pid1/seq1", "ckpt/e1/pid1/seq2", "ckpt/e1/pid1/seq3"}
	for _, o := range objects {
		if err := Write(tgt, o, []byte(o), WriteOptions{Atomic: true}); err != nil {
			t.Fatal(err)
		}
	}
	return objects
}

// TestCompactChainReplacesLeafThenGCs: the folded image lands under the
// leaf's own name, ancestors are deleted only afterwards, and the stats
// account for both directions.
func TestCompactChainReplacesLeafThenGCs(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	objects := seedChain(t, l)
	st, err := CompactChain(l, objects, concatFold, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Folded != objects[2] || st.Deltas != 2 {
		t.Fatalf("stats = %+v", st)
	}
	got, err := l.ReadObject(objects[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "ckpt/e1/pid1/seq1+ckpt/e1/pid1/seq2+ckpt/e1/pid1/seq3"
	if string(got) != want {
		t.Fatalf("leaf holds %q, want folded %q", got, want)
	}
	for _, o := range objects[:2] {
		if _, err := l.ReadObject(o, nil); !errors.Is(err, ErrNotFound) {
			t.Fatalf("ancestor %s survived GC (err=%v)", o, err)
		}
	}
	if len(st.Deleted) != 2 || len(st.Pending) != 0 {
		t.Fatalf("deleted=%v pending=%v", st.Deleted, st.Pending)
	}
	if st.BytesIn == 0 || st.BytesOut != len(want) {
		t.Fatalf("bytes in/out = %d/%d", st.BytesIn, st.BytesOut)
	}
}

// TestCompactChainFoldFailureChangesNothing: a failing fold must leave
// every chain object exactly as it was.
func TestCompactChainFoldFailureChangesNothing(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	objects := seedChain(t, l)
	boom := func([][]byte) ([]byte, error) { return nil, errors.New("boom") }
	st, err := CompactChain(l, objects, boom, nil)
	if err == nil || st.Folded != "" {
		t.Fatalf("err=%v folded=%q, want error with no durable fold", err, st.Folded)
	}
	for _, o := range objects {
		data, rerr := l.ReadObject(o, nil)
		if rerr != nil || string(data) != o {
			t.Fatalf("object %s disturbed by failed fold (data=%q err=%v)", o, data, rerr)
		}
	}
}

// TestCompactChainFencedPublish: a stale-epoch compactor's publish is
// rejected at the commit point and the chain survives intact — the same
// guarantee any stale writer gets.
func TestCompactChainFencedPublish(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	dom := NewFenceDomain("job", nil)
	stale := FencedAt(l, dom, dom.Advance())
	objects := seedChain(t, stale)
	dom.Advance() // supersede the compactor's incarnation
	st, err := CompactChain(stale, objects, concatFold, nil)
	if !errors.Is(err, ErrFenced) || st.Folded != "" {
		t.Fatalf("err=%v folded=%q, want ErrFenced with no durable fold", err, st.Folded)
	}
	for _, o := range objects {
		if data, rerr := l.ReadObject(o, nil); rerr != nil || string(data) != o {
			t.Fatalf("object %s disturbed by fenced compaction (data=%q err=%v)", o, data, rerr)
		}
	}
}

// gcFailTarget fails every Delete; publishes and reads pass through.
type gcFailTarget struct{ Target }

func (g gcFailTarget) Delete(string) error { return errors.New("disk trouble") }

// TestCompactChainGCErrorAfterDurableFold: when the fold is durable but
// GC fails, Folded still names the published image (the chain is served
// by it) and the undeleted ancestors come back as Pending for retry.
func TestCompactChainGCErrorAfterDurableFold(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	objects := seedChain(t, l)
	st, err := CompactChain(gcFailTarget{l}, objects, concatFold, nil)
	if err == nil {
		t.Fatal("GC failure not surfaced")
	}
	if st.Folded != objects[2] {
		t.Fatalf("folded = %q, want the durable leaf %s", st.Folded, objects[2])
	}
	if len(st.Pending) != 2 {
		t.Fatalf("pending = %v, want both ancestors", st.Pending)
	}
	// The fold really is durable despite the error.
	if data, rerr := l.ReadObject(objects[2], nil); rerr != nil || !bytes.Contains(data, []byte("+")) {
		t.Fatalf("leaf after GC failure: data=%q err=%v", data, rerr)
	}
}

// TestCompactChainRejectsDegenerateInput: nothing to fold is an error,
// not a silent no-op.
func TestCompactChainRejectsDegenerateInput(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	if _, err := CompactChain(l, []string{"only"}, concatFold, nil); err == nil {
		t.Fatal("single-object compaction accepted")
	}
	if _, err := CompactChain(l, nil, concatFold, nil); err == nil {
		t.Fatal("empty compaction accepted")
	}
	if _, err := CompactChain(nil, []string{"a", "b"}, concatFold, nil); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := CompactChain(l, []string{"a", "b"}, nil, nil); err == nil {
		t.Fatal("nil fold accepted")
	}
}
