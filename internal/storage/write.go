// Unified write entry point. The commit protocol grew up in three
// generations — Put (legacy in-place), PutAtomic (stage + durable commit
// + publish), PutChained (parent check + atomic) — and every caller had
// to pick the right one, which meant the dispatch logic ("unsafe target?
// incremental? parent durable?") was duplicated at each call site. Write
// collapses the three into one function with options, so optimizations
// like batched publishes land behind a single seam instead of touching
// every caller. The old three survive as thin deprecated wrappers.

package storage

import (
	"errors"
	"fmt"
)

// WriteOptions selects the commit protocol for one Write.
type WriteOptions struct {
	// Atomic stages the payload and publishes it only once durable, so a
	// reader can never observe a torn object under the final name. False
	// selects the legacy in-place write (torn-image window, silent tail
	// loss under fault injection) — for contrast experiments only.
	Atomic bool
	// Parent, when non-empty, requires that object to be durably present
	// on the target before publishing (delta-chain rule: an acknowledged
	// delta must have its whole ancestry intact). Implies Atomic.
	Parent string
	// Env carries the cost-accounting hooks; nil discards all accounting.
	Env *Env
}

// Write stores data under object on t with the commit protocol selected
// by opts. A target wrapped by Unsafe always takes the in-place path —
// that wrapper exists precisely to disable atomic commit without
// threading a flag through every caller.
func Write(t Target, object string, data []byte, opts WriteOptions) error {
	if t == nil {
		return errors.New("storage: Write to nil target")
	}
	if u, ok := t.(unsafeTarget); ok {
		return putInPlace(u.Target, object, data, opts.Env)
	}
	if opts.Parent != "" {
		if _, err := t.ObjectSize(opts.Parent); err != nil {
			return fmt.Errorf("%w: %s needs %s: %v", ErrBrokenChain, object, opts.Parent, err)
		}
		return putStaged(t, object, data, opts.Env)
	}
	if opts.Atomic {
		return putStaged(t, object, data, opts.Env)
	}
	return putInPlace(t, object, data, opts.Env)
}

// BatchItem is one object in a WriteBatch.
type BatchItem struct {
	Object string
	Parent string // optional delta parent; may be an earlier item in the batch
	Data   []byte
}

// WriteBatch atomically commits several small images in one operation:
// every item is staged durably first, then the batch publishes in order
// behind a single amortized metadata round-trip. A Parent may be
// satisfied either by an object already durable on t or by an earlier
// item of the same batch (publishes are ordered, so by the time a child
// publishes its in-batch parent is durable). Returns how many items
// published; on error the published prefix stays — each is a complete,
// chain-valid image — and the unpublished tail's staging objects are
// reclaimed best-effort.
func WriteBatch(t Target, items []BatchItem, env *Env) (published int, err error) {
	if t == nil {
		return 0, errors.New("storage: WriteBatch to nil target")
	}
	if u, ok := t.(unsafeTarget); ok {
		t = u.Target
	}
	staged := make([]string, 0, len(items))
	cleanup := func(from int) {
		for _, s := range staged[from:] {
			_ = t.Delete(s)
		}
	}
	for i, it := range items {
		w, cerr := t.Create(StagingName(it.Object), env)
		if cerr != nil {
			cleanup(0)
			return 0, cerr
		}
		if _, werr := w.Write(it.Data); werr != nil {
			w.Abort()
			// An injected crash leaves the current item's torn staging
			// object on the target, and it is not in staged[] yet (only
			// committed items are) — reclaim it with the rest so a failed
			// batch leaves no debris behind.
			_ = t.Delete(StagingName(it.Object))
			cleanup(0)
			return 0, fmt.Errorf("stage %s: %w", it.Object, werr)
		}
		if cerr := w.Commit(); cerr != nil {
			cleanup(0)
			return 0, cerr
		}
		staged = append(staged, StagingName(items[i].Object))
	}
	for i, it := range items {
		if it.Parent != "" {
			if _, perr := t.ObjectSize(it.Parent); perr != nil {
				cleanup(i)
				return published, fmt.Errorf("%w: %s needs %s: %v", ErrBrokenChain, it.Object, it.Parent, perr)
			}
		}
		// One metadata round-trip pays for the whole batch: later renames
		// ride the same commit record, so only the first publish charges.
		penv := env
		if i > 0 {
			penv = nil
		}
		if perr := t.Publish(StagingName(it.Object), it.Object, penv); perr != nil {
			cleanup(i)
			return published, perr
		}
		published++
	}
	return published, nil
}

// putInPlace is the legacy protocol: bytes stream straight to the final
// name, commit takes no durability barrier, and the target's fault
// policy may tear the object even after a successful return.
func putInPlace(t Target, object string, data []byte, env *Env) error {
	w, err := t.Create(object, env)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort() // no-op after an injected crash: the torn object stays
		return err
	}
	if err := w.Commit(); err != nil {
		return err
	}
	// No durability barrier: the commit may have silently lost its tail.
	if tt, ok := t.(tearable); ok {
		if frac, tear := tt.faultsOf().tearCommit(); tear {
			tt.tearObject(object, frac)
		}
	}
	return nil
}

// putStaged is the atomic protocol: stage, commit behind the durability
// barrier, publish. Any failure leaves the previously committed object
// untouched.
func putStaged(t Target, object string, data []byte, env *Env) error {
	staging := StagingName(object)
	w, err := t.Create(staging, env)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort() // a crash tears only the staging object
		return fmt.Errorf("stage %s: %w", object, err)
	}
	// Commit behind the durability barrier (the writer's sync), which is
	// what makes the subsequent rename safe: silent tail loss cannot
	// happen to a synced object.
	if err := w.Commit(); err != nil {
		return err
	}
	return t.Publish(staging, object, env)
}
