package storage

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
)

func TestWriteDispatch(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)

	// Atomic write: no staging debris, object durable.
	if err := Write(l, "a", []byte("aa"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ObjectSize(StagingName("a")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("staging object left behind: %v", err)
	}

	// Parent implies the chain rule even without Atomic set.
	err := Write(l, "b", []byte("bb"), WriteOptions{Parent: "missing"})
	if !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("missing parent: err = %v, want ErrBrokenChain", err)
	}
	if err := Write(l, "b", []byte("bb"), WriteOptions{Parent: "a"}); err != nil {
		t.Fatal(err)
	}

	// Unsafe wrapper forces the in-place path regardless of options.
	u := Unsafe(l)
	if err := Write(u, "c", []byte("cc"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ObjectSize("c"); err != nil {
		t.Fatalf("unsafe write missing: %v", err)
	}

	if err := Write(nil, "x", nil, WriteOptions{}); err == nil {
		t.Fatal("Write to nil target succeeded")
	}
}

// TestDeprecatedWrappers pins the legacy entry points to the unified
// implementation: same staging discipline, same chain rule.
func TestDeprecatedWrappers(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	if err := Put(l, "p", []byte("p"), nil); err != nil {
		t.Fatal(err)
	}
	if err := PutAtomic(l, "pa", []byte("pa"), nil); err != nil {
		t.Fatal(err)
	}
	if err := PutChained(l, "pc", "pa", []byte("pc"), nil); err != nil {
		t.Fatal(err)
	}
	if err := PutChained(l, "bad", "nope", []byte("x"), nil); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("PutChained missing parent: %v", err)
	}
	for _, o := range []string{"p", "pa", "pc"} {
		if _, err := l.ObjectSize(o); err != nil {
			t.Errorf("%s not stored: %v", o, err)
		}
	}
}

func TestWriteBatchPublishesInOrder(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	if err := Write(l, "full", []byte("full"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	// d1 chains onto the durable full; d2 chains onto d1 *within the
	// batch* — legal because publishes are ordered.
	n, err := WriteBatch(l, []BatchItem{
		{Object: "d1", Parent: "full", Data: []byte("d1")},
		{Object: "d2", Parent: "d1", Data: []byte("d2")},
	}, nil)
	if err != nil || n != 2 {
		t.Fatalf("WriteBatch = (%d, %v), want (2, nil)", n, err)
	}
	for _, o := range []string{"d1", "d2"} {
		if _, serr := l.ObjectSize(o); serr != nil {
			t.Errorf("%s not published: %v", o, serr)
		}
		if _, serr := l.ObjectSize(StagingName(o)); !errors.Is(serr, ErrNotFound) {
			t.Errorf("%s staging debris: %v", o, serr)
		}
	}
}

func TestWriteBatchBrokenChainKeepsPrefix(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	if err := Write(l, "full", []byte("full"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	n, err := WriteBatch(l, []BatchItem{
		{Object: "d1", Parent: "full", Data: []byte("d1")},
		{Object: "d2", Parent: "ghost", Data: []byte("d2")},
		{Object: "d3", Parent: "d2", Data: []byte("d3")},
	}, nil)
	if !errors.Is(err, ErrBrokenChain) || n != 1 {
		t.Fatalf("WriteBatch = (%d, %v), want (1, ErrBrokenChain)", n, err)
	}
	// The valid prefix survives; the failed tail left no debris.
	if _, serr := l.ObjectSize("d1"); serr != nil {
		t.Errorf("published prefix lost: %v", serr)
	}
	for _, o := range []string{"d2", "d3", StagingName("d2"), StagingName("d3")} {
		if _, serr := l.ObjectSize(o); !errors.Is(serr, ErrNotFound) {
			t.Errorf("%s present after failed batch: %v", o, serr)
		}
	}
}

func TestWriteBatchPublishFaultMidBatch(t *testing.T) {
	l := NewLocal("d", costmodel.Default2005(), nil)
	fp := &FaultPolicy{Rng: rand.New(rand.NewSource(7))}
	l.SetFaults(fp)
	if err := Write(l, "full", []byte("full"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	fp.PublishFault = 1 // every publish fails from here on
	n, err := WriteBatch(l, []BatchItem{
		{Object: "d1", Parent: "full", Data: []byte("d1")},
		{Object: "d2", Parent: "d1", Data: []byte("d2")},
	}, nil)
	if !errors.Is(err, ErrFault) || n != 0 {
		t.Fatalf("WriteBatch = (%d, %v), want (0, ErrFault)", n, err)
	}
	// All-or-nothing per item: nothing published, staging reclaimed.
	for _, o := range []string{"d1", "d2", StagingName("d1"), StagingName("d2")} {
		if _, serr := l.ObjectSize(o); !errors.Is(serr, ErrNotFound) {
			t.Errorf("%s present after publish fault: %v", o, serr)
		}
	}
	if fp.PublishFails == 0 {
		t.Errorf("no publish fault recorded")
	}
}
