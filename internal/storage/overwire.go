// OverWire models reaching another node's storage across the
// interconnect. A buddy replica is physically the buddy's local disk,
// but the owner's writes to it pay network transfer on top of the disk
// stream — the cost asymmetry that makes buddy checkpointing cheaper to
// read back (the buddy restores from its own disk) than to maintain.

package storage

import (
	"repro/internal/costmodel"
)

type overWire struct {
	Target
	cm *costmodel.Model
}

// OverWire wraps t so every data byte additionally crosses the
// interconnect, charged per chunk with cm; metadata operations pay one
// small message. Wrap before FencedAt so the fence guards the
// wire-priced commit point.
func OverWire(t Target, cm *costmodel.Model) Target {
	return &overWire{Target: t, cm: cm}
}

// chargeWire bills n bytes of interconnect time in chunk-sized
// transfers.
func (o *overWire) chargeWire(n int, env *Env, what string) {
	env = orNop(env)
	for off := 0; off < n; off += chunk {
		c := n - off
		if c > chunk {
			c = chunk
		}
		env.Wait(o.cm.NetTransfer(c), what)
	}
}

// Create implements Target: writes stream over the wire first.
func (o *overWire) Create(object string, env *Env) (Writer, error) {
	w, err := o.Target.Create(object, env)
	if err != nil {
		return nil, err
	}
	return &wireWriter{o: o, w: w, env: orNop(env)}, nil
}

type wireWriter struct {
	o   *overWire
	w   Writer
	env *Env
}

func (w *wireWriter) Write(p []byte) (int, error) {
	w.o.chargeWire(len(p), w.env, "wire-write")
	return w.w.Write(p)
}

func (w *wireWriter) Commit() error { return w.w.Commit() }
func (w *wireWriter) Abort()        { w.w.Abort() }

// ReadObject implements Target: the bytes come back over the wire.
func (o *overWire) ReadObject(object string, env *Env) ([]byte, error) {
	data, err := o.Target.ReadObject(object, env)
	if err != nil {
		return nil, err
	}
	o.chargeWire(len(data), env, "wire-read")
	return data, nil
}

// ReadBatch implements BatchReader, preserving the underlying batched
// pass when the wrapped target has one.
func (o *overWire) ReadBatch(objects []string, env *Env) ([][]byte, error) {
	if br, ok := o.Target.(BatchReader); ok {
		out, err := br.ReadBatch(objects, env)
		if err != nil {
			return nil, err
		}
		for _, data := range out {
			o.chargeWire(len(data), env, "wire-read")
		}
		return out, nil
	}
	out := make([][]byte, len(objects))
	for i, name := range objects {
		data, err := o.ReadObject(name, env)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// Publish implements Target: one control message plus the rename.
func (o *overWire) Publish(staging, final string, env *Env) error {
	orNop(env).Wait(o.cm.NetTransfer(64), "wire-publish")
	return o.Target.Publish(staging, final, env)
}
