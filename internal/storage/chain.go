// Chain-aware publish and garbage collection for incremental
// checkpoints. A delta image is only as durable as its whole ancestry:
// restore replays the chain from its full head, so an acknowledged delta
// whose parent was never published — or was later deleted — is a silent
// hole that only surfaces at the worst time, during failover. The two
// rules live here: a delta may only be published onto a durable parent
// (PutChained), and reclaiming a superseded chain goes through the same
// epoch fence as publishing (fencedTarget.Delete), so a stale
// incarnation can no more unlink the live chain's images than overwrite
// them.

package storage

import (
	"errors"
)

// ErrBrokenChain reports an attempt to publish a delta whose parent
// object is not durably present on the target.
var ErrBrokenChain = errors.New("storage: delta parent not durable")

// PutChained atomically publishes an incremental image after verifying
// its parent is durably committed on t. The parent check runs against
// the same target the delta lands on, so an acknowledged delta always
// had its full ancestry intact at publish time; combined with
// retire-after-rebase GC (RetireChain is only called on objects no
// acknowledged leaf can reach) that invariant holds for the chain's
// whole lifetime. An empty parent degenerates to an atomic write.
//
// Deprecated: use Write with WriteOptions{Atomic: true, Parent: parent}.
func PutChained(t Target, object, parent string, data []byte, env *Env) error {
	return Write(t, object, data, WriteOptions{Atomic: true, Parent: parent, Env: env})
}

// RetireChain garbage-collects a superseded chain, deleting objects in
// order. Deleting through a fenced target is deliberate: GC is a
// chain-head mutation, and a stale incarnation's retire list may name
// objects the live incarnation still depends on. Already-missing
// objects are skipped (GC is idempotent). On the first real error the
// sweep stops and the undeleted tail is returned so the caller can
// retry it after the next rebase; deleted holds what was reclaimed
// either way.
func RetireChain(t Target, objects []string) (deleted, pending []string, err error) {
	for i, o := range objects {
		if o == "" {
			continue
		}
		derr := t.Delete(o)
		switch {
		case derr == nil:
			deleted = append(deleted, o)
		case errors.Is(derr, ErrNotFound):
			// Already gone — a prior partial sweep got it.
		default:
			return deleted, append([]string(nil), objects[i:]...), derr
		}
	}
	return deleted, nil, nil
}
