// Epoch fencing: the storage-side half of split-brain protection. When
// an autonomic supervisor suspects a node and restarts the job
// elsewhere, the suspicion may be wrong — the "dead" incarnation can
// still be running and still trying to publish checkpoints. Generation
// fencing (the lease-recovery idea of GFS/HDFS) turns that split brain
// into a counted, recoverable event: every writer holds the epoch it was
// started under, the supervisor advances the domain epoch at each
// failover *before* starting the successor, and Publish rejects any
// writer whose epoch is stale. A stale incarnation therefore cannot
// replace a committed image, no matter how torn the control plane is —
// the storage server is the one authority both sides can still reach.

package storage

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/trace"
)

// ErrFenced reports a publish attempt by a stale-epoch writer. The
// staging object is discarded server-side; the committed image under the
// final name is untouched. A writer receiving it must consider itself
// superseded (self-fence) and stop.
var ErrFenced = errors.New("storage: writer fenced off (stale epoch)")

// FenceDomain is the authoritative epoch for one fencing scope (one
// job). It lives logically on the checkpoint server: advancing it is the
// supervisor's failover barrier, and comparing against it is how Publish
// tells a live incarnation from a zombie one.
type FenceDomain struct {
	name string
	// epoch is read concurrently by every fenced replica writer while the
	// supervisor advances it at failover; atomic keeps the -race suite's
	// concurrent-writer scenarios honest.
	epoch atomic.Uint64
	ctr   *trace.Counters
}

// NewFenceDomain creates a domain at epoch 0 (no writer admitted yet);
// fence.* counters land in ctr (created when nil).
func NewFenceDomain(name string, ctr *trace.Counters) *FenceDomain {
	if ctr == nil {
		ctr = trace.NewCounters()
	}
	return &FenceDomain{name: name, ctr: ctr}
}

// Advance bumps the epoch and returns the new value. Everything
// published under earlier epochs keeps its committed images; every
// writer still holding an earlier epoch is fenced off from here on.
func (d *FenceDomain) Advance() uint64 {
	e := d.epoch.Add(1)
	d.ctr.Inc("fence.epochs", 1)
	return e
}

// Epoch returns the current epoch.
func (d *FenceDomain) Epoch() uint64 { return d.epoch.Load() }

// Counters returns the domain's counter set.
func (d *FenceDomain) Counters() *trace.Counters { return d.ctr }

// fencedTarget wraps a Target so Publish enforces the domain epoch.
type fencedTarget struct {
	Target
	dom   *FenceDomain
	epoch uint64
}

// FencedAt wraps t for a writer admitted at the given epoch of dom.
// Reads, creates, and writes pass through (a stale writer can stage all
// the bytes it wants); only Publish — the commit point — is guarded.
func FencedAt(t Target, dom *FenceDomain, epoch uint64) Target {
	return fencedTarget{Target: t, dom: dom, epoch: epoch}
}

// Publish implements Target: the rename happens only if the writer's
// epoch is still current. A stale writer's staging object is deleted
// (the server GCs debris of fenced incarnations) and the attempt is
// counted under fence.rejected.
func (f fencedTarget) Publish(staging, final string, env *Env) error {
	if f.epoch < f.dom.Epoch() {
		f.dom.ctr.Inc("fence.rejected", 1)
		_ = f.Target.Delete(staging)
		return fmt.Errorf("%w: %s epoch %d, current %d", ErrFenced, f.dom.name, f.epoch, f.dom.Epoch())
	}
	return f.Target.Publish(staging, final, env)
}

// Delete implements Target: object deletion is the other commit-point
// mutation. Chain GC retires superseded images through its fenced
// target, and a stale incarnation's retire list may name objects the
// live chain still needs — fencing it here is what keeps a zombie's
// garbage collection from breaking a live chain.
func (f fencedTarget) Delete(object string) error {
	if f.epoch < f.dom.Epoch() {
		f.dom.ctr.Inc("fence.rejected", 1)
		return fmt.Errorf("%w: %s epoch %d, current %d", ErrFenced, f.dom.name, f.epoch, f.dom.Epoch())
	}
	return f.Target.Delete(object)
}
