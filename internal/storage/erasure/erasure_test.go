package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestGF256Axioms sanity-checks the field tables: multiplicative
// inverses and distributivity over a sample of the field.
func TestGF256Axioms(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gmul(byte(a), ginv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gmul(a, b^c) != gmul(a, b)^gmul(a, c) {
			t.Fatalf("distributivity fails at a=%d b=%d c=%d", a, b, c)
		}
		if gmul(a, b) != gmul(b, a) {
			t.Fatalf("commutativity fails at a=%d b=%d", a, b)
		}
	}
}

// TestRoundTripAllErasurePatterns encodes at several geometries and
// decodes from every subset of exactly k shards — the full strength
// claim: any n−k losses are survivable, not just the easy ones.
func TestRoundTripAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, geo := range []struct{ k, m int }{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 1}} {
		for _, size := range []int{0, 1, 7, 64, 1000, 4096} {
			data := make([]byte, size)
			rng.Read(data)
			shards, err := EncodeObject(data, geo.k, geo.m)
			if err != nil {
				t.Fatalf("encode k=%d m=%d size=%d: %v", geo.k, geo.m, size, err)
			}
			n := geo.k + geo.m
			forEachSubset(n, geo.k, func(keep []int) {
				subset := make([][]byte, 0, len(keep))
				for _, idx := range keep {
					subset = append(subset, shards[idx])
				}
				got, err := DecodeObject(subset)
				if err != nil {
					t.Fatalf("decode k=%d m=%d size=%d keep=%v: %v", geo.k, geo.m, size, keep, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("round trip mismatch k=%d m=%d size=%d keep=%v", geo.k, geo.m, size, keep)
				}
			})
		}
	}
}

// forEachSubset calls fn with every size-k subset of 0..n-1.
func forEachSubset(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == k {
			fn(idx)
			return
		}
		for i := start; i < n; i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
}

// TestDecodeTooFewShards asserts the typed failure when more than m
// shards are gone.
func TestDecodeTooFewShards(t *testing.T) {
	shards, err := EncodeObject([]byte("checkpoint image bytes"), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeObject(shards[:2]); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	if _, err := DecodeObject(nil); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient for empty input, got %v", err)
	}
}

// TestCorruptShardTreatedAsMissing flips payload bytes: the CRC must
// disqualify the shard, and the decode must still succeed off the
// survivors when enough remain.
func TestCorruptShardTreatedAsMissing(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB, 0x5C, 3}, 500)
	shards, err := EncodeObject(data, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards[0][headerLen] ^= 0xFF // tear a data shard's payload
	if _, err := ParseShard(shards[0]); !errors.Is(err, ErrBadShard) {
		t.Fatalf("corrupt shard parsed: %v", err)
	}
	got, err := DecodeObject(shards)
	if err != nil {
		t.Fatalf("decode around corrupt shard: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode around corrupt shard returned wrong bytes")
	}
	// Corrupt one more: only one valid shard remains, below k=2.
	shards[1][headerLen] ^= 0xFF
	if _, err := DecodeObject(shards); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient with two corrupt shards, got %v", err)
	}
}

// TestShardHeaderRoundTrip checks ParseShard recovers the geometry.
func TestShardHeaderRoundTrip(t *testing.T) {
	shards, err := EncodeObject(make([]byte, 100), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range shards {
		s, err := ParseShard(b)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if s.Index != i || s.K != 4 || s.M != 2 || s.OrigLen != 100 {
			t.Fatalf("shard %d header = %+v", i, s)
		}
	}
	if _, err := ParseShard([]byte("not a shard")); !errors.Is(err, ErrBadShard) {
		t.Fatalf("junk parsed: %v", err)
	}
}

// TestReconstructShards loses a shard, rebuilds the full set, and
// verifies the rebuilt shard is byte-identical to the original — the
// repair path must produce shards any future decode accepts.
func TestReconstructShards(t *testing.T) {
	data := make([]byte, 3000)
	rand.New(rand.NewSource(3)).Read(data)
	shards, err := EncodeObject(data, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	holed := make([][]byte, len(shards))
	copy(holed, shards)
	holed[1], holed[4] = nil, nil
	rebuilt, err := ReconstructShards(holed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(rebuilt[i], shards[i]) {
			t.Fatalf("rebuilt shard %d differs from original", i)
		}
	}
}

// TestEncodeBadParameters rejects impossible geometries.
func TestEncodeBadParameters(t *testing.T) {
	for _, geo := range []struct{ k, m int }{{0, 1}, {1, 0}, {-1, 2}, {2, -1}, {200, 100}} {
		if _, err := EncodeObject([]byte("x"), geo.k, geo.m); !errors.Is(err, ErrBadParameters) {
			t.Fatalf("k=%d m=%d accepted: %v", geo.k, geo.m, err)
		}
	}
}

// FuzzErasureRoundTrip is the shard encode/decode fuzz target: for any
// payload and geometry, dropping any m shards must still decode to the
// original bytes, and ParseShard must never panic on mutated blobs.
func FuzzErasureRoundTrip(f *testing.F) {
	f.Add([]byte("seed checkpoint bytes"), uint8(2), uint8(1), uint16(0))
	f.Add([]byte{}, uint8(1), uint8(2), uint16(1))
	f.Add(bytes.Repeat([]byte{7}, 700), uint8(4), uint8(3), uint16(0x5a5a))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, mRaw uint8, dropMask uint16) {
		k := int(kRaw)%6 + 1
		m := int(mRaw)%4 + 1
		shards, err := EncodeObject(data, k, m)
		if err != nil {
			t.Fatalf("encode k=%d m=%d: %v", k, m, err)
		}
		// Drop up to m shards chosen by the mask bits.
		dropped := 0
		subset := make([][]byte, len(shards))
		copy(subset, shards)
		for i := 0; i < len(shards) && dropped < m; i++ {
			if dropMask&(1<<i) != 0 {
				subset[i] = nil
				dropped++
			}
		}
		got, err := DecodeObject(subset)
		if err != nil {
			t.Fatalf("decode with %d dropped: %v", dropped, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch k=%d m=%d len=%d", k, m, len(data))
		}
		// ParseShard must be total on arbitrary mutations.
		if len(shards[0]) > 0 {
			mut := append([]byte(nil), shards[0]...)
			mut[int(dropMask)%len(mut)] ^= 0x40
			_, _ = ParseShard(mut)
		}
	})
}

// TestDecodeAnyMixedEncodings: a gather holding shards of two different
// encodings under one name — the residue of a re-encode that missed a
// replica — defeats the strict decoder but not DecodeAny, which must
// pick the consistent group that can actually decode. When both groups
// are decodable, the larger original length wins (re-encodes under one
// name only ever fold deltas into fuller images).
func TestDecodeAnyMixedEncodings(t *testing.T) {
	old := bytes.Repeat([]byte("old delta "), 30)
	cur := bytes.Repeat([]byte("folded full image "), 50)
	oldShards, err := EncodeObject(old, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	curShards, err := EncodeObject(cur, 2, 1)
	if err != nil {
		t.Fatal(err)
	}

	// One stale shard alongside a full current set: strict decode refuses
	// the mix when the stale shard arrives first, DecodeAny recovers.
	mixed := [][]byte{oldShards[2], curShards[0], curShards[1], curShards[2]}
	if _, err := DecodeObject(mixed); err == nil {
		t.Fatal("strict decode accepted mixed encodings")
	}
	got, err := DecodeAny(mixed)
	if err != nil || !bytes.Equal(got, cur) {
		t.Fatalf("DecodeAny on mixed gather: %v", err)
	}

	// Both groups decodable: the larger origLen wins deterministically.
	both := [][]byte{oldShards[0], oldShards[1], curShards[0], curShards[1]}
	got, err = DecodeAny(both)
	if err != nil || !bytes.Equal(got, cur) {
		t.Fatalf("DecodeAny did not prefer the larger encoding: %v", err)
	}

	// Only the stale group reaches k: it still decodes (better a stale
	// restorable image than none).
	staleOnly := [][]byte{oldShards[0], oldShards[1], curShards[2]}
	got, err = DecodeAny(staleOnly)
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("DecodeAny with only the stale group decodable: %v", err)
	}

	if _, err := DecodeAny(nil); err == nil {
		t.Fatal("DecodeAny on empty gather succeeded")
	}
}
