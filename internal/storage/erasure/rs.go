package erasure

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Codec errors.
var (
	ErrBadShard      = errors.New("erasure: not a valid shard")
	ErrInsufficient  = errors.New("erasure: fewer than k valid shards")
	ErrInconsistent  = errors.New("erasure: shards from different encodings")
	ErrBadParameters = errors.New("erasure: invalid k/m parameters")
)

// MaxShards bounds k+m: GF(256) Vandermonde rows must be distinct field
// elements, and shard indices are stored in one byte.
const MaxShards = 255

// Shard header: magic "RS", format version, shard index, k, m, original
// object length, and a CRC of the payload so a torn shard is detected
// and treated as missing rather than silently corrupting the decode.
const (
	shardMagic0  = 'R'
	shardMagic1  = 'S'
	shardVersion = 1
	headerLen    = 2 + 1 + 1 + 1 + 1 + 4 + 4
)

// Shard is one parsed shard: its position in the code, the code
// geometry, the original object length, and the payload bytes.
type Shard struct {
	Index   int
	K, M    int
	OrigLen int
	Payload []byte
}

// codingMatrix returns the n×k systematic generator matrix: the top k
// rows are the identity (data shards are plain slices of the object),
// the bottom m rows are the parity combinations. Built as V·inv(V_top)
// from an n×k Vandermonde V (rows are powers of distinct field
// elements), which keeps every k×k submatrix invertible at the shard
// counts this package is used at.
func codingMatrix(k, m int) matrix {
	n := k + m
	v := newMatrix(n, k)
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			v[r][c] = gpow(byte(r), c)
		}
	}
	top := newMatrix(k, k)
	for r := 0; r < k; r++ {
		copy(top[r], v[r])
	}
	inv, err := top.invert()
	if err != nil {
		// Cannot happen: the top k rows form a Vandermonde matrix over
		// distinct elements, which is always invertible.
		panic("erasure: singular Vandermonde top")
	}
	return v.mul(inv)
}

// EncodeObject splits data into k equal data shards (zero-padded) plus m
// parity shards. Each returned shard is self-describing (header + CRC),
// so a reader holding an arbitrary subset can validate and decode.
func EncodeObject(data []byte, k, m int) ([][]byte, error) {
	if k < 1 || m < 0 || k+m > MaxShards || k+m < 2 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrBadParameters, k, m)
	}
	shardLen := (len(data) + k - 1) / k
	shards := make([][]byte, k+m)
	planes := make([][]byte, k)
	for i := 0; i < k; i++ {
		p := make([]byte, shardLen)
		lo := i * shardLen
		if lo < len(data) {
			copy(p, data[lo:])
		}
		planes[i] = p
	}
	mat := codingMatrix(k, m)
	for r := 0; r < k+m; r++ {
		var payload []byte
		if r < k {
			payload = planes[r]
		} else {
			payload = make([]byte, shardLen)
			for c := 0; c < k; c++ {
				coef := mat[r][c]
				if coef == 0 {
					continue
				}
				src := planes[c]
				for i := range payload {
					payload[i] ^= gmul(coef, src[i])
				}
			}
		}
		shards[r] = sealShard(r, k, m, len(data), payload)
	}
	return shards, nil
}

// ShardLen returns the stored blob length of one shard of an origLen-
// byte object cut k ways — header plus the zero-padded payload plane.
// Callers use it to judge, from a bare ObjectSize probe, whether a
// replica's shard belongs to the expected encoding.
func ShardLen(origLen, k int) int {
	if k < 1 {
		return 0
	}
	return headerLen + (origLen+k-1)/k
}

func sealShard(idx, k, m, origLen int, payload []byte) []byte {
	b := make([]byte, headerLen+len(payload))
	b[0], b[1], b[2] = shardMagic0, shardMagic1, shardVersion
	b[3], b[4], b[5] = byte(idx), byte(k), byte(m)
	binary.BigEndian.PutUint32(b[6:], uint32(origLen))
	binary.BigEndian.PutUint32(b[10:], crc32.ChecksumIEEE(payload))
	copy(b[headerLen:], payload)
	return b
}

// ParseShard validates a shard blob. A short, mismagicked, or
// CRC-failing blob returns ErrBadShard — callers treat that shard as
// missing, which is what makes a torn replica write harmless.
func ParseShard(b []byte) (Shard, error) {
	if len(b) < headerLen || b[0] != shardMagic0 || b[1] != shardMagic1 || b[2] != shardVersion {
		return Shard{}, ErrBadShard
	}
	s := Shard{
		Index:   int(b[3]),
		K:       int(b[4]),
		M:       int(b[5]),
		OrigLen: int(binary.BigEndian.Uint32(b[6:])),
		Payload: b[headerLen:],
	}
	if s.K < 1 || s.K+s.M > MaxShards || s.Index >= s.K+s.M {
		return Shard{}, ErrBadShard
	}
	if crc32.ChecksumIEEE(s.Payload) != binary.BigEndian.Uint32(b[10:]) {
		return Shard{}, ErrBadShard
	}
	if want := (s.OrigLen + s.K - 1) / s.K; len(s.Payload) != want {
		return Shard{}, ErrBadShard
	}
	return s, nil
}

// DecodeObject reconstructs the original object from any k valid shards
// of one encoding. Nil entries and blobs that fail ParseShard are
// treated as missing; extra valid shards beyond k are ignored. The
// shards may arrive in any order — each carries its own index.
func DecodeObject(blobs [][]byte) ([]byte, error) {
	var got []Shard
	seen := make(map[int]bool)
	for _, b := range blobs {
		if b == nil {
			continue
		}
		s, err := ParseShard(b)
		if err != nil {
			continue
		}
		if len(got) > 0 {
			ref := got[0]
			if s.K != ref.K || s.M != ref.M || s.OrigLen != ref.OrigLen || len(s.Payload) != len(ref.Payload) {
				return nil, ErrInconsistent
			}
		}
		if seen[s.Index] {
			continue
		}
		seen[s.Index] = true
		got = append(got, s)
		if len(got) == s.K {
			break
		}
	}
	if len(got) == 0 {
		return nil, ErrInsufficient
	}
	k, origLen, shardLen := got[0].K, got[0].OrigLen, len(got[0].Payload)
	if len(got) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficient, len(got), k)
	}
	planes, err := solvePlanes(got, k, shardLen)
	if err != nil {
		return nil, err
	}
	out := make([]byte, k*shardLen)
	for i, p := range planes {
		copy(out[i*shardLen:], p)
	}
	return out[:origLen], nil
}

// DecodeAny decodes in the presence of stale shards: when a same-named
// object was re-encoded (a chain fold republishing under the leaf's
// name) and the overwrite missed a replica, a gather mixes shards of two
// encodings and the strict DecodeObject refuses the lot. DecodeAny
// partitions the blobs into consistent encoding groups by header and
// decodes the best one — most distinct shard indices first, ties broken
// toward the larger original length (re-encodes under one name only
// ever fold deltas into fuller images), then the larger geometry, all
// deterministic. Fails only when no group reaches its own k.
func DecodeAny(blobs [][]byte) ([]byte, error) {
	type groupKey struct{ k, m, origLen, shardLen int }
	groups := make(map[groupKey][][]byte)
	seen := make(map[groupKey]map[int]bool)
	for _, b := range blobs {
		if b == nil {
			continue
		}
		s, err := ParseShard(b)
		if err != nil {
			continue
		}
		key := groupKey{s.K, s.M, s.OrigLen, len(s.Payload)}
		if seen[key] == nil {
			seen[key] = make(map[int]bool)
		}
		if seen[key][s.Index] {
			continue
		}
		seen[key][s.Index] = true
		groups[key] = append(groups[key], b)
	}
	var best groupKey
	found := false
	better := func(key, cur groupKey) bool {
		a, b := groups[key], groups[cur]
		ad, bd := len(a) >= key.k, len(b) >= cur.k
		switch {
		case ad != bd:
			return ad // a decodable group always beats an undecodable one
		case len(a) != len(b):
			return len(a) > len(b)
		case key.origLen != cur.origLen:
			return key.origLen > cur.origLen
		case key.k != cur.k:
			return key.k > cur.k
		}
		return key.m > cur.m
	}
	for key := range groups {
		if !found || better(key, best) {
			best, found = key, true
		}
	}
	if !found {
		return nil, ErrInsufficient
	}
	return DecodeObject(groups[best])
}

// ReconstructShards returns a full, freshly sealed shard set from any k
// valid shards — the repair path when a replica holding one shard is
// lost. The decode solves for the data planes, then re-encodes.
func ReconstructShards(blobs [][]byte) ([][]byte, error) {
	data, err := DecodeObject(blobs)
	if err != nil {
		return nil, err
	}
	for _, b := range blobs {
		if b == nil {
			continue
		}
		if s, perr := ParseShard(b); perr == nil {
			return EncodeObject(data, s.K, s.M)
		}
	}
	return nil, ErrInsufficient
}

// solvePlanes recovers the k data planes from k shards of mixed
// data/parity rows: take the k generator-matrix rows the shards
// correspond to, invert that k×k system, and apply it to the payloads.
func solvePlanes(got []Shard, k, shardLen int) ([][]byte, error) {
	m := got[0].M
	full := codingMatrix(k, m)
	sub := newMatrix(k, k)
	for r, s := range got[:k] {
		copy(sub[r], full[s.Index])
	}
	inv, err := sub.invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: unsolvable shard set: %w", err)
	}
	planes := make([][]byte, k)
	for r := 0; r < k; r++ {
		p := make([]byte, shardLen)
		for c := 0; c < k; c++ {
			coef := inv[r][c]
			if coef == 0 {
				continue
			}
			src := got[c].Payload
			for i := range p {
				p[i] ^= gmul(coef, src[i])
			}
		}
		planes[r] = p
	}
	return planes, nil
}

// --- dense GF(256) matrices ---

type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	for i := range m {
		m[i] = make([]byte, cols)
	}
	return m
}

func (a matrix) mul(b matrix) matrix {
	out := newMatrix(len(a), len(b[0]))
	for r := range a {
		for c := range b[0] {
			var acc byte
			for i := range b {
				acc ^= gmul(a[r][i], b[i][c])
			}
			out[r][c] = acc
		}
	}
	return out
}

// invert returns the inverse via Gauss–Jordan elimination with partial
// pivoting (any nonzero pivot works in a field).
func (a matrix) invert() (matrix, error) {
	n := len(a)
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work[r], a[r])
		work[r][n+r] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("erasure: singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		if inv := ginv(work[col][col]); inv != 1 {
			for c := 0; c < 2*n; c++ {
				work[col][c] = gmul(work[col][c], inv)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			coef := work[r][col]
			for c := 0; c < 2*n; c++ {
				work[r][c] ^= gmul(coef, work[col][c])
			}
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out[r], work[r][n:])
	}
	return out, nil
}
