// Package erasure implements a small, pure-Go Reed–Solomon erasure
// codec over GF(256) for checkpoint shard placement: an object is split
// into k data shards plus m parity shards such that any k of the k+m
// shards reconstruct the original bytes. This is the k-of-n alternative
// to full buddy mirroring — the same single-node-loss tolerance at a
// fraction of the write amplification (n/k instead of the mirror's
// replica count), at the price of a matrix solve on degraded reads.
package erasure

// GF(256) arithmetic under the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d, the classic Reed–Solomon field). Multiplication goes through
// log/antilog tables built once at init; the antilog table is doubled so
// gmul never reduces mod 255.

var (
	expTable [512]byte
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x >= 256 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

func gmul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// ginv returns the multiplicative inverse; a must be nonzero.
func ginv(a byte) byte {
	if a == 0 {
		panic("erasure: inverse of zero in GF(256)")
	}
	return expTable[255-int(logTable[a])]
}

// gpow returns base^exp in the field.
func gpow(base byte, exp int) byte {
	if exp == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	return expTable[(int(logTable[base])*exp)%255]
}
