package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/storage/erasure"
	"repro/internal/trace"
)

// mirrorSet builds a buddy-style placement: owner disk, one buddy disk
// over the wire, and the shared server — each with its own liveness
// switch.
func mirrorSet(t *testing.T) (reps []Replica, disks []*Local, up []*bool) {
	t.Helper()
	cm := costmodel.Default2005()
	up = make([]*bool, 3)
	for i := range up {
		b := true
		up[i] = &b
	}
	d0 := NewLocal("self", cm, func() bool { return *up[0] })
	d1 := NewLocal("buddy", cm, func() bool { return *up[1] })
	srv := NewServer("srv", cm)
	disks = []*Local{d0, d1}
	reps = []Replica{
		{T: d0, Role: RoleLocal},
		{T: OverWire(d1, cm), Role: RoleBuddy},
		{T: NewRemote("net", srv), Role: RoleRemote},
	}
	return reps, disks, up
}

// TestReplicatedMirrorWriteLandsEverywhere: a healthy quorum-2 write
// publishes the identical object on every replica.
func TestReplicatedMirrorWriteLandsEverywhere(t *testing.T) {
	reps, disks, _ := mirrorSet(t)
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("checkpoint image")
	if err := Write(r, "img", payload, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	for i, d := range disks {
		got, err := d.ReadObject("img", nil)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("disk %d: %v %q", i, err, got)
		}
	}
	got, err := reps[2].T.ReadObject("img", nil)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("server copy: %v", err)
	}
	if n := r.cfg.Counters.Get("repl.publishes"); n != 1 {
		t.Fatalf("repl.publishes = %d", n)
	}
}

// TestReplicatedQuorumAckWithOneReplicaDown: losing one member still
// acks at quorum 2 and counts the degraded publish; losing two drops
// below quorum and the write must fail typed.
func TestReplicatedQuorumAckWithOneReplicaDown(t *testing.T) {
	reps, _, up := mirrorSet(t)
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	*up[1] = false // buddy down
	if err := Write(r, "img", []byte("x"), WriteOptions{Atomic: true}); err != nil {
		t.Fatalf("quorum-2 write with one member down: %v", err)
	}
	if n := r.cfg.Counters.Get("repl.partial_publish"); n != 1 {
		t.Fatalf("repl.partial_publish = %d", n)
	}
	srv := reps[2].T.(*Remote).srv
	srv.Fail() // server down too: only the owner disk remains
	err = Write(r, "img2", []byte("y"), WriteOptions{Atomic: true})
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("below-quorum write err = %v, want ErrQuorum", err)
	}
	if _, rerr := r.reps[0].T.ReadObject("img2", nil); !errors.Is(rerr, ErrNotFound) {
		t.Fatalf("below-quorum write must not publish anywhere: %v", rerr)
	}
}

// TestReplicatedDegradedReadLadder: reads prefer local, fall to the
// buddy when the owner disk dies, and to the server when both disks are
// gone — each step observed in the read-source histogram.
func TestReplicatedDegradedReadLadder(t *testing.T) {
	reps, _, up := mirrorSet(t)
	m := trace.NewMetrics()
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2, Counters: m.Counters, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("ladder")
	if err := Write(r, "img", payload, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		kill int // index into up, -1 = nothing
		ctr  string
	}{
		{-1, "repl.read_local"},
		{0, "repl.read_buddy"},
		{1, "repl.read_remote"},
	}
	for _, st := range steps {
		if st.kill >= 0 {
			*up[st.kill] = false
		}
		got, err := r.ReadObject("img", nil)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("%s: %v", st.ctr, err)
		}
		if n := m.Counters.Get(st.ctr); n != 1 {
			t.Fatalf("%s = %d, want 1", st.ctr, n)
		}
	}
	if n := m.Hist("repl.read_source").N(); n != 3 {
		t.Fatalf("read_source observations = %d, want 3", n)
	}
}

// TestReplicatedErasureReadAndReconstruct: a 2+1 erasure set decodes
// without a solve while the data shards live, reconstructs from parity
// when one dies, and fails typed when two are gone.
func TestReplicatedErasureReadAndReconstruct(t *testing.T) {
	cm := costmodel.Default2005()
	up := []bool{true, true, true}
	var reps []Replica
	var disks []*Local
	for i := range up {
		i := i
		d := NewLocal(fmt.Sprintf("d%d", i), cm, func() bool { return up[i] })
		disks = append(disks, d)
		reps = append(reps, Replica{T: d, Role: RoleShard})
	}
	m := trace.NewMetrics()
	r, err := NewReplicated("ec", reps, ReplicatedConfig{
		DataShards: 2, ParityShards: 1, Counters: m.Counters, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if q := r.Quorum(); q != 3 {
		t.Fatalf("default erasure quorum = %d, want k+1=3", q)
	}
	payload := bytes.Repeat([]byte("erasure checkpoint "), 100)
	if err := Write(r, "img", payload, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	// Every slot holds its own shard, not the object.
	for i, d := range disks {
		blob, err := d.ReadObject("img", nil)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		s, err := erasure.ParseShard(blob)
		if err != nil || s.Index != i {
			t.Fatalf("slot %d holds shard %+v err=%v", i, s, err)
		}
	}
	got, err := r.ReadObject("img", nil)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("healthy decode: %v", err)
	}
	if n := m.Counters.Get("repl.read_shards"); n != 1 {
		t.Fatalf("repl.read_shards = %d", n)
	}
	up[0] = false // lose a data shard: parity solve
	got, err = r.ReadObject("img", nil)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("degraded decode: %v", err)
	}
	if n := m.Counters.Get("repl.read_reconstruct"); n != 1 {
		t.Fatalf("repl.read_reconstruct = %d", n)
	}
	up[1] = false // below k survivors
	if _, err := r.ReadObject("img", nil); !errors.Is(err, ErrTargetUnavailable) {
		t.Fatalf("sub-k read err = %v, want ErrTargetUnavailable", err)
	}
}

// TestReplicatedObjectSizeErasure: the parent-durability probe reports
// the original length and requires a decodable (>= k shards) object.
func TestReplicatedObjectSizeErasure(t *testing.T) {
	cm := costmodel.Default2005()
	var reps []Replica
	var disks []*Local
	for i := 0; i < 3; i++ {
		d := NewLocal(fmt.Sprintf("d%d", i), cm, nil)
		disks = append(disks, d)
		reps = append(reps, Replica{T: d, Role: RoleShard})
	}
	r, err := NewReplicated("ec", reps, ReplicatedConfig{DataShards: 2, ParityShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 999)
	if err := Write(r, "img", payload, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	n, err := r.ObjectSize("img")
	if err != nil || n != len(payload) {
		t.Fatalf("ObjectSize = %d, %v", n, err)
	}
	// Strip shards below k: the object is no longer durable here.
	_ = disks[0].Delete("img")
	_ = disks[1].Delete("img")
	if _, err := r.ObjectSize("img"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("sub-k ObjectSize err = %v, want ErrNotFound", err)
	}
}

// TestReplicatedDeleteSemantics: deletes with a member down stay
// pending (typed unavailable), so GC retries; with all members up the
// object disappears everywhere.
func TestReplicatedDeleteSemantics(t *testing.T) {
	reps, disks, up := mirrorSet(t)
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(r, "img", []byte("x"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	*up[1] = false
	if err := r.Delete("img"); !errors.Is(err, ErrTargetUnavailable) {
		t.Fatalf("delete with member down = %v, want ErrTargetUnavailable", err)
	}
	*up[1] = true
	if err := r.Delete("img"); err != nil {
		t.Fatalf("retried delete: %v", err)
	}
	for i, d := range disks {
		if _, err := d.ReadObject("img", nil); !errors.Is(err, ErrNotFound) {
			t.Fatalf("disk %d still has img: %v", i, err)
		}
	}
	if err := r.Delete("img"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
}

// TestReplicatedRepairMirror: after losing and replacing a buddy disk,
// Repair re-mirrors the object and counts it.
func TestReplicatedRepairMirror(t *testing.T) {
	reps, disks, _ := mirrorSet(t)
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("keep me redundant")
	if err := Write(r, "img", payload, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	disks[1].Wipe() // replacement buddy arrives blank
	n, err := r.Repair("img", nil)
	if err != nil || n != 1 {
		t.Fatalf("Repair = %d, %v", n, err)
	}
	got, err := disks[1].ReadObject("img", nil)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("buddy after repair: %v", err)
	}
	if c := r.cfg.Counters.Get("repl.repaired"); c != 1 {
		t.Fatalf("repl.repaired = %d", c)
	}
	// Nothing left to do: repair is idempotent.
	if n, err := r.Repair("img", nil); err != nil || n != 0 {
		t.Fatalf("idempotent Repair = %d, %v", n, err)
	}
}

// TestReplicatedRepairErasure: a wiped shard slot is rebuilt from the
// survivors with a byte-identical shard.
func TestReplicatedRepairErasure(t *testing.T) {
	cm := costmodel.Default2005()
	var reps []Replica
	var disks []*Local
	for i := 0; i < 4; i++ {
		d := NewLocal(fmt.Sprintf("d%d", i), cm, nil)
		disks = append(disks, d)
		reps = append(reps, Replica{T: d, Role: RoleShard})
	}
	r, err := NewReplicated("ec", reps, ReplicatedConfig{DataShards: 2, ParityShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9, 8, 7}, 1000)
	if err := Write(r, "img", payload, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	want, err := disks[3].ReadObject("img", nil)
	if err != nil {
		t.Fatal(err)
	}
	disks[3].Wipe()
	n, err := r.Repair("img", nil)
	if err != nil || n != 1 {
		t.Fatalf("Repair = %d, %v", n, err)
	}
	got, err := disks[3].ReadObject("img", nil)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("rebuilt shard differs: %v", err)
	}
}

// TestReplicatedFencedOnEveryReplica: a stale writer's publish is
// rejected by each fence-wrapped member — none of the replicas keeps the
// stale bytes, and the error surfaces as ErrFenced, not a quorum miss.
func TestReplicatedFencedOnEveryReplica(t *testing.T) {
	reps, disks, _ := mirrorSet(t)
	ctr := trace.NewCounters()
	dom := NewFenceDomain("job", ctr)

	fenceAll := func(epoch uint64) []Replica {
		out := make([]Replica, len(reps))
		for i, rep := range reps {
			out[i] = Replica{T: FencedAt(rep.T, dom, epoch), Role: rep.Role}
		}
		return out
	}
	e1 := dom.Advance()
	r1, err := NewReplicated("repl-e1", fenceAll(e1), ReplicatedConfig{Quorum: 2, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(r1, "img", []byte("epoch-1"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}

	e2 := dom.Advance()
	r2, err := NewReplicated("repl-e2", fenceAll(e2), ReplicatedConfig{Quorum: 2, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(r2, "img", []byte("epoch-2"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}

	// The zombie incarnation tries again: every member fences it.
	err = Write(r1, "img", []byte("stale"), WriteOptions{Atomic: true})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale replicated publish = %v, want ErrFenced", err)
	}
	if got := ctr.Get("fence.rejected"); got != int64(len(reps)) {
		t.Fatalf("fence.rejected = %d, want %d (one per replica)", got, len(reps))
	}
	for i, d := range disks {
		data, err := d.ReadObject("img", nil)
		if err != nil || string(data) != "epoch-2" {
			t.Fatalf("disk %d after stale publish: %q %v", i, data, err)
		}
		for _, obj := range d.List() {
			if IsStaging(obj) {
				t.Fatalf("disk %d kept stale staging debris %q", i, obj)
			}
		}
	}
}

// TestReplicatedReadBatchMirror: the chain-manifest fast path forwards
// the whole batch to one surviving replica.
func TestReplicatedReadBatchMirror(t *testing.T) {
	reps, _, up := mirrorSet(t)
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 3; i++ {
		n := fmt.Sprintf("img-%d", i)
		if err := Write(r, n, []byte{byte(i)}, WriteOptions{Atomic: true}); err != nil {
			t.Fatal(err)
		}
		names = append(names, n)
	}
	*up[0] = false // owner gone: batch must come off the buddy
	out, err := r.ReadBatch(names, nil)
	if err != nil || len(out) != 3 {
		t.Fatalf("ReadBatch: %v", err)
	}
	for i, b := range out {
		if len(b) != 1 || b[0] != byte(i) {
			t.Fatalf("batch[%d] = %v", i, b)
		}
	}
}

// TestWriteBatchCrashLeavesNoDebris is the partial-failure accounting
// satellite: when a mid-batch staging write crashes, the returned count
// must match what is actually readable and no staging debris may stay
// behind (the crashed item's torn staging object included).
func TestWriteBatchCrashLeavesNoDebris(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		l := NewLocal("d", costmodel.Default2005(), nil)
		l.SetFaults(&FaultPolicy{WriteFault: 0.4, Rng: rand.New(rand.NewSource(seed))})
		items := []BatchItem{
			{Object: "a", Data: bytes.Repeat([]byte{1}, 100)},
			{Object: "b", Parent: "a", Data: bytes.Repeat([]byte{2}, 100)},
			{Object: "c", Parent: "b", Data: bytes.Repeat([]byte{3}, 100)},
		}
		published, err := WriteBatch(l, items, nil)
		if err == nil {
			continue // no fault drawn this seed
		}
		readable := 0
		for _, it := range items {
			if _, rerr := l.ReadObject(it.Object, nil); rerr == nil {
				readable++
			}
		}
		if readable != published {
			t.Fatalf("seed %d: published=%d but %d readable", seed, published, readable)
		}
		for _, obj := range l.List() {
			if IsStaging(obj) {
				t.Fatalf("seed %d: staging debris %q after failed batch", seed, obj)
			}
		}
	}
}

// TestWriteBatchPublishFaultCountsPrefix: an injected publish fault
// mid-batch returns exactly the published prefix.
func TestWriteBatchPublishFaultCountsPrefix(t *testing.T) {
	hit := false
	for seed := int64(0); seed < 200 && !hit; seed++ {
		l := NewLocal("d", costmodel.Default2005(), nil)
		l.SetFaults(&FaultPolicy{PublishFault: 0.5, Rng: rand.New(rand.NewSource(seed))})
		items := []BatchItem{
			{Object: "a", Data: []byte("aa")},
			{Object: "b", Data: []byte("bb")},
			{Object: "c", Data: []byte("cc")},
		}
		published, err := WriteBatch(l, items, nil)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrFault) {
			t.Fatalf("seed %d: err = %v", seed, err)
		}
		if published > 0 {
			hit = true
		}
		readable := 0
		for _, it := range items {
			if _, rerr := l.ReadObject(it.Object, nil); rerr == nil {
				readable++
			}
		}
		if readable != published {
			t.Fatalf("seed %d: published=%d but %d readable", seed, published, readable)
		}
		for _, obj := range l.List() {
			if IsStaging(obj) {
				t.Fatalf("seed %d: staging debris %q", seed, obj)
			}
		}
	}
	if !hit {
		t.Fatal("no seed produced a mid-batch publish fault with a nonzero prefix")
	}
}

// TestReplicatedCrashedMemberNeverPublishesTornBytes: a member whose
// commit crashes mid-stream leaves torn bytes under the staging name;
// the coordinator must scrub them so the fan-out Publish cannot rename
// partial data into place. Regression: chaos seed 14 surfaced a buddy
// disk holding a checksum-failing copy under an acked final name.
func TestReplicatedCrashedMemberNeverPublishesTornBytes(t *testing.T) {
	reps, disks, _ := mirrorSet(t)
	// Rig the buddy disk to crash every write; owner and server stay
	// healthy, so quorum 2 still acks.
	disks[1].SetFaults(&FaultPolicy{WriteFault: 1.0, Rng: rand.New(rand.NewSource(1))})
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("intact checkpoint image "), 64)
	if err := Write(r, "img", payload, WriteOptions{Atomic: true}); err != nil {
		t.Fatalf("quorum write should survive one crashing member: %v", err)
	}
	if got, err := disks[1].ReadObject("img", nil); err == nil {
		if !bytes.Equal(got, payload) {
			t.Fatalf("buddy published torn bytes: %d of %d", len(got), len(payload))
		}
		t.Fatalf("buddy committed despite a rigged crash")
	}
	// Nothing torn lingers in staging either.
	for _, name := range disks[1].List() {
		t.Fatalf("buddy disk not scrubbed: %s", name)
	}
	if n := r.cfg.Counters.Get("repl.write_failed"); n != 1 {
		t.Fatalf("repl.write_failed = %d", n)
	}
}

// TestRepairSizedHealsStaleMirrorLeaf reproduces the divergence a chain
// fold leaves when its quorum publish misses one member: that member
// keeps the OLD bytes under the leaf's name (the coordinator scrubbed
// its torn staging, so the prior version survives), while GC has already
// reclaimed the old version's ancestors everywhere. A bare presence
// probe calls the slot healthy; RepairSized with the authoritative
// post-fold length sees the size mismatch and rewrites the member from a
// size-matching survivor.
func TestRepairSizedHealsStaleMirrorLeaf(t *testing.T) {
	reps, disks, _ := mirrorSet(t)
	r, err := NewReplicated("repl", reps, ReplicatedConfig{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	stale := []byte("delta: the pre-fold leaf")
	folded := []byte("folded full image, strictly larger than the delta it replaced")
	if err := Write(r, "leaf", folded, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	// Diverge the buddy behind the coordinator's back.
	if err := Write(disks[1], "leaf", stale, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	// Presence-only repair is blind to the divergence.
	if n, err := r.Repair("leaf", nil); err != nil || n != 0 {
		t.Fatalf("presence-only repair: n=%d err=%v", n, err)
	}
	if got, _ := disks[1].ReadObject("leaf", nil); !bytes.Equal(got, stale) {
		t.Fatal("presence-only repair unexpectedly rewrote the buddy")
	}
	// Size-aware repair heals it.
	n, err := r.RepairSized("leaf", len(folded), nil)
	if err != nil || n != 1 {
		t.Fatalf("RepairSized: n=%d err=%v", n, err)
	}
	for i, d := range disks {
		if got, rerr := d.ReadObject("leaf", nil); rerr != nil || !bytes.Equal(got, folded) {
			t.Fatalf("disk %d after repair: %v %q", i, rerr, got)
		}
	}
	// No size-matching source anywhere: the repair must fail loudly (the
	// sweep turns that into repl.repair_failed, which excuses the audit).
	if _, err := r.RepairSized("leaf", len(folded)+7, nil); err == nil {
		t.Fatal("RepairSized with an impossible size succeeded")
	}
}

// TestRepairSizedHealsStaleErasureShard: same divergence in shard form —
// one slot still holds a shard of the superseded encoding. The stale
// shard must not feed the reconstruction, and the slot must be rewritten
// with its shard of the current encoding.
func TestRepairSizedHealsStaleErasureShard(t *testing.T) {
	cm := costmodel.Default2005()
	var reps []Replica
	var disks []*Local
	for i := 0; i < 3; i++ {
		d := NewLocal(fmt.Sprintf("n%d", i), cm, nil)
		disks = append(disks, d)
		reps = append(reps, Replica{T: d, Role: RoleShard})
	}
	r, err := NewReplicated("repl", reps, ReplicatedConfig{DataShards: 2, ParityShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte("pre-fold delta "), 40)
	folded := bytes.Repeat([]byte("post-fold full image "), 90)
	if err := Write(r, "leaf", folded, WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	oldShards, err := erasure.EncodeObject(old, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(disks[2], "leaf", oldShards[2], WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	n, err := r.RepairSized("leaf", len(folded), nil)
	if err != nil || n != 1 {
		t.Fatalf("RepairSized: n=%d err=%v", n, err)
	}
	for i, d := range disks {
		blob, rerr := d.ReadObject("leaf", nil)
		if rerr != nil {
			t.Fatalf("disk %d: %v", i, rerr)
		}
		s, perr := erasure.ParseShard(blob)
		if perr != nil || s.Index != i || s.OrigLen != len(folded) {
			t.Fatalf("disk %d holds wrong shard: idx=%d origLen=%d err=%v", i, s.Index, s.OrigLen, perr)
		}
	}
	if got, err := r.ReadObject("leaf", nil); err != nil || !bytes.Equal(got, folded) {
		t.Fatalf("decode after repair: %v", err)
	}
}
