package storage

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
)

func targets(t *testing.T) map[string]Target {
	t.Helper()
	cm := costmodel.Default2005()
	srv := NewServer("ckpt-srv", cm)
	return map[string]Target{
		"local":  NewLocal("disk0", cm, nil),
		"remote": NewRemote("net0", srv),
		"memory": NewMemory("ram0", nil),
	}
}

func writeObject(t *testing.T, tgt Target, name string, data []byte, env *Env) {
	t.Helper()
	w, err := tgt.Create(name, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripAllTargets(t *testing.T) {
	for kind, tgt := range targets(t) {
		data := []byte("checkpoint image " + kind)
		writeObject(t, tgt, "obj1", data, NopEnv())
		got, err := tgt.ReadObject("obj1", NopEnv())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if string(got) != string(data) {
			t.Fatalf("%s: got %q", kind, got)
		}
		if sz, err := tgt.ObjectSize("obj1"); err != nil || sz != len(data) {
			t.Fatalf("%s: size %d %v", kind, sz, err)
		}
		if lst := tgt.List(); len(lst) != 1 || lst[0] != "obj1" {
			t.Fatalf("%s: list %v", kind, lst)
		}
		if err := tgt.Delete("obj1"); err != nil {
			t.Fatal(err)
		}
		if _, err := tgt.ReadObject("obj1", NopEnv()); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: read after delete: %v", kind, err)
		}
		if err := tgt.Delete("obj1"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: double delete: %v", kind, err)
		}
	}
}

func TestAbortDiscards(t *testing.T) {
	for kind, tgt := range targets(t) {
		w, _ := tgt.Create("x", NopEnv())
		w.Write([]byte("partial"))
		w.Abort()
		if _, err := tgt.ReadObject("x", NopEnv()); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: aborted object visible: %v", kind, err)
		}
	}
}

func TestCommitIsAtomic(t *testing.T) {
	tgt := NewLocal("d", costmodel.Default2005(), nil)
	w, _ := tgt.Create("obj", NopEnv())
	w.Write([]byte("half"))
	// Not yet committed: invisible.
	if _, err := tgt.ReadObject("obj", NopEnv()); !errors.Is(err, ErrNotFound) {
		t.Fatal("uncommitted object visible")
	}
	w.Commit()
	if err := w.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	if _, err := w.Write([]byte("more")); err == nil {
		t.Fatal("write after commit accepted")
	}
}

func TestLocalDiesWithNode(t *testing.T) {
	alive := true
	tgt := NewLocal("disk0", costmodel.Default2005(), func() bool { return alive })
	writeObject(t, tgt, "ck", []byte("data"), NopEnv())
	alive = false
	if tgt.Available() {
		t.Fatal("dead node's disk available")
	}
	if _, err := tgt.ReadObject("ck", NopEnv()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("read from dead node: %v", err)
	}
	if _, err := tgt.Create("new", NopEnv()); !errors.Is(err, ErrUnavailable) {
		t.Fatal("create on dead node accepted")
	}
	// Node comes back (reboot): data intact — restart after power outage,
	// the limited FT case the paper concedes to local storage.
	alive = true
	got, err := tgt.ReadObject("ck", NopEnv())
	if err != nil || string(got) != "data" {
		t.Fatalf("after reboot: %q %v", got, err)
	}
}

func TestRemoteSurvivesWriterDeath(t *testing.T) {
	cm := costmodel.Default2005()
	srv := NewServer("s", cm)
	nodeA := NewRemote("a", srv)
	writeObject(t, nodeA, "ck", []byte("img"), NopEnv())
	// Node A is gone; node B can still read the checkpoint.
	nodeB := NewRemote("b", srv)
	got, err := nodeB.ReadObject("ck", NopEnv())
	if err != nil || string(got) != "img" {
		t.Fatalf("remote read from other node: %q %v", got, err)
	}
	srv.Fail()
	if nodeB.Available() {
		t.Fatal("failed server available")
	}
	srv.Recover()
	if _, err := nodeB.ReadObject("ck", NopEnv()); err != nil {
		t.Fatal("server data lost across recovery")
	}
}

func TestMemoryDropsOnPowerLoss(t *testing.T) {
	m := NewMemory("ram", nil)
	writeObject(t, m, "standby", []byte("x"), NopEnv())
	m.Drop()
	if _, err := m.ReadObject("standby", NopEnv()); !errors.Is(err, ErrNotFound) {
		t.Fatal("memory target survived power loss")
	}
}

func TestCostAccounting(t *testing.T) {
	cm := costmodel.Default2005()
	led := costmodel.NewLedger()
	env := LedgerEnv(led)

	local := NewLocal("d", cm, nil)
	writeObject(t, local, "o", make([]byte, 1<<20), env)
	localTime := led.Total
	if localTime < cm.DiskSeek {
		t.Fatalf("local write cost %v < one seek", localTime)
	}

	led.Reset()
	srv := NewServer("s", cm)
	remote := NewRemote("r", srv)
	writeObject(t, remote, "o", make([]byte, 1<<20), env)
	remoteTime := led.Total
	if remoteTime <= localTime {
		t.Fatalf("remote (%v) should cost more than local (%v) for same bytes", remoteTime, localTime)
	}

	led.Reset()
	memT := NewMemory("m", nil)
	writeObject(t, memT, "o", make([]byte, 1<<20), env)
	if led.Total != 0 {
		t.Fatalf("memory target charged %v", led.Total)
	}
}

func TestCostScalesWithSize(t *testing.T) {
	cm := costmodel.Default2005()
	led := costmodel.NewLedger()
	env := LedgerEnv(led)
	local := NewLocal("d", cm, nil)
	writeObject(t, local, "small", make([]byte, 1<<20), env)
	small := led.Total
	led.Reset()
	writeObject(t, local, "big", make([]byte, 16<<20), env)
	big := led.Total
	if big < 8*small {
		t.Fatalf("16× data cost only %v vs %v", big, small)
	}
}
