package storage

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/trace"
)

// A delta may only be published onto a durable parent; with the parent
// present the publish is atomic like any other.
func TestPutChainedRequiresDurableParent(t *testing.T) {
	base := NewLocal("d", costmodel.Default2005(), nil)

	err := Write(base, "ckpt/pid1/seq2", []byte("delta"), WriteOptions{Atomic: true, Parent: "ckpt/pid1/seq1"})
	if !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("publish onto missing parent err = %v, want ErrBrokenChain", err)
	}
	if _, rerr := base.ReadObject("ckpt/pid1/seq2", nil); rerr == nil {
		t.Fatal("orphan delta was committed despite the broken chain")
	}

	if err := Write(base, "ckpt/pid1/seq1", []byte("full"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}
	if err := Write(base, "ckpt/pid1/seq2", []byte("delta"), WriteOptions{Atomic: true, Parent: "ckpt/pid1/seq1"}); err != nil {
		t.Fatal(err)
	}
	data, err := base.ReadObject("ckpt/pid1/seq2", nil)
	if err != nil || string(data) != "delta" {
		t.Fatalf("chained publish landed as %q, %v", data, err)
	}

	// An empty parent is a full image: plain atomic publish.
	if err := Write(base, "ckpt/pid1/seq3", []byte("full2"), WriteOptions{Atomic: true, Parent: ""}); err != nil {
		t.Fatal(err)
	}
}

// GC goes through the same epoch fence as publishing: a superseded
// incarnation's deletes bounce, so a zombie can never unlink images the
// live chain still needs.
func TestFenceRejectsStaleDelete(t *testing.T) {
	base := NewLocal("d", costmodel.Default2005(), nil)
	ctr := trace.NewCounters()
	dom := NewFenceDomain("job", ctr)

	e1 := dom.Advance()
	w1 := FencedAt(base, dom, e1)
	if err := Write(w1, "ckpt/pid1/seq1", []byte("live"), WriteOptions{Atomic: true}); err != nil {
		t.Fatal(err)
	}

	w2 := FencedAt(base, dom, dom.Advance())
	err := w1.Delete("ckpt/pid1/seq1")
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale delete err = %v, want ErrFenced", err)
	}
	if got := ctr.Get("fence.rejected"); got != 1 {
		t.Fatalf("fence.rejected = %d, want 1", got)
	}
	if data, rerr := base.ReadObject("ckpt/pid1/seq1", nil); rerr != nil || string(data) != "live" {
		t.Fatalf("fenced delete mutated the image: %q, %v", data, rerr)
	}
	// The live incarnation's delete passes through.
	if err := w2.Delete("ckpt/pid1/seq1"); err != nil {
		t.Fatal(err)
	}
}

// RetireChain is idempotent over already-missing objects and, on a real
// error, returns the undeleted tail for a later retry.
func TestRetireChainPartialSweep(t *testing.T) {
	base := NewLocal("d", costmodel.Default2005(), nil)
	for _, o := range []string{"a", "c"} {
		if err := Write(base, o, []byte(o), WriteOptions{Atomic: true}); err != nil {
			t.Fatal(err)
		}
	}
	// "b" is already gone: the sweep must skip it, not stop.
	deleted, pending, err := RetireChain(base, []string{"a", "b", "c"})
	if err != nil || len(pending) != 0 {
		t.Fatalf("sweep err=%v pending=%v, want clean", err, pending)
	}
	if len(deleted) != 2 || deleted[0] != "a" || deleted[1] != "c" {
		t.Fatalf("deleted = %v, want [a c]", deleted)
	}

	// A fence rejection mid-sweep stops it and hands back the tail.
	ctr := trace.NewCounters()
	dom := NewFenceDomain("job", ctr)
	stale := FencedAt(base, dom, dom.Advance())
	for _, o := range []string{"x", "y"} {
		if err := Write(base, o, []byte(o), WriteOptions{Atomic: true}); err != nil {
			t.Fatal(err)
		}
	}
	dom.Advance()
	deleted, pending, err = RetireChain(stale, []string{"x", "y"})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale sweep err = %v, want ErrFenced", err)
	}
	if len(deleted) != 0 {
		t.Fatalf("stale sweep deleted %v", deleted)
	}
	if len(pending) != 2 || pending[0] != "x" {
		t.Fatalf("pending = %v, want [x y]", pending)
	}
}
