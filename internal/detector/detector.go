// Package detector implements message-based failure detection — the
// piece the paper's "direction forward" (§5, autonomic C/R) needs that a
// fail-stop oracle hides. Every node emits periodic heartbeats over the
// (lossy, delayable, partitionable) cluster network to an observer node;
// a Detector turns the arrival stream into per-node suspicion. Two
// detectors are provided: a fixed timeout, and the phi-accrual detector
// of Hayashibara et al., which adapts its tolerance to the observed
// inter-arrival distribution. Suspicion can be wrong in both directions,
// and the Monitor counts exactly how wrong: detection latency for real
// failures, false positives for slow-but-alive nodes.
package detector

import (
	"math"

	"repro/internal/simtime"
)

// Heartbeat is the on-wire payload: "node Node was alive at SentAt".
type Heartbeat struct {
	Node   int
	Seq    uint64
	SentAt simtime.Time
}

// Detector turns heartbeat arrivals into per-node suspicion.
type Detector interface {
	// Name labels the detector in experiment tables.
	Name() string
	// Prime establishes t as the moment observation of node began (the
	// baseline before the first heartbeat arrives).
	Prime(node int, t simtime.Time)
	// Observe records a heartbeat arrival from node at time t.
	Observe(node int, t simtime.Time)
	// Suspected reports whether node is suspected dead as of now.
	Suspected(node int, now simtime.Time) bool
}

// --- Fixed-timeout detector ---

// Timeout suspects a node once no heartbeat has arrived for After. It is
// the classic fixed-bound detector: cheap and predictable, but its
// single knob trades detection latency directly against false positives
// under loss and jitter.
type Timeout struct {
	After simtime.Duration
	last  map[int]simtime.Time
}

// NewTimeout returns a fixed-timeout detector.
func NewTimeout(after simtime.Duration) *Timeout {
	return &Timeout{After: after, last: make(map[int]simtime.Time)}
}

// Name implements Detector.
func (d *Timeout) Name() string { return "timeout" }

// Prime implements Detector.
func (d *Timeout) Prime(node int, t simtime.Time) {
	if _, ok := d.last[node]; !ok {
		d.last[node] = t
	}
}

// Observe implements Detector.
func (d *Timeout) Observe(node int, t simtime.Time) {
	if t > d.last[node] {
		d.last[node] = t
	}
}

// Suspected implements Detector.
func (d *Timeout) Suspected(node int, now simtime.Time) bool {
	return now.Sub(d.last[node]) > d.After
}

// --- Phi-accrual detector ---

// phiState is the per-node arrival history of the phi-accrual detector.
type phiState struct {
	last      simtime.Time
	intervals []simtime.Duration // ring buffer of inter-arrival times
	next      int
	n         int
}

// PhiAccrual is the adaptive accrual detector: instead of a binary
// timeout it maintains a suspicion level
//
//	phi(t) = -log10( P(heartbeat still arrives after silence t) )
//
// with the inter-arrival distribution estimated as a normal over a
// sliding window. phi ≈ 1 means "90% sure", phi ≈ 8 "1 - 10^-8 sure".
// Jitter and loss widen the observed distribution, so the detector
// automatically becomes more patient on a bad network — the property a
// fixed timeout lacks.
type PhiAccrual struct {
	// Threshold is the phi level at which a node becomes suspected.
	Threshold float64
	// Window is how many inter-arrival samples are kept (default 64).
	Window int
	// MinStddev floors the estimated deviation so a perfectly regular
	// heartbeat stream does not make the detector infinitely confident
	// (one lost heartbeat would then look like certain death).
	MinStddev simtime.Duration

	nodes map[int]*phiState
}

// NewPhiAccrual returns a phi-accrual detector. minStddev should be on
// the order of half the heartbeat period.
func NewPhiAccrual(threshold float64, window int, minStddev simtime.Duration) *PhiAccrual {
	if window <= 0 {
		window = 64
	}
	return &PhiAccrual{Threshold: threshold, Window: window, MinStddev: minStddev,
		nodes: make(map[int]*phiState)}
}

// Name implements Detector.
func (d *PhiAccrual) Name() string { return "phi-accrual" }

func (d *PhiAccrual) state(node int) *phiState {
	st, ok := d.nodes[node]
	if !ok {
		st = &phiState{intervals: make([]simtime.Duration, d.Window)}
		d.nodes[node] = st
	}
	return st
}

// Prime implements Detector.
func (d *PhiAccrual) Prime(node int, t simtime.Time) {
	st := d.state(node)
	if st.last == 0 && st.n == 0 {
		st.last = t
	}
}

// Observe implements Detector.
func (d *PhiAccrual) Observe(node int, t simtime.Time) {
	st := d.state(node)
	if t <= st.last {
		return // duplicate or reordered heartbeat: no new information
	}
	st.intervals[st.next] = t.Sub(st.last)
	st.next = (st.next + 1) % d.Window
	if st.n < d.Window {
		st.n++
	}
	st.last = t
}

// Phi returns the current suspicion level for node (0 when the window is
// still warming up).
func (d *PhiAccrual) Phi(node int, now simtime.Time) float64 {
	st := d.state(node)
	if st.n < 3 {
		return 0 // not enough history to accrue suspicion
	}
	var sum, sq float64
	for i := 0; i < st.n; i++ {
		v := float64(st.intervals[i])
		sum += v
		sq += v * v
	}
	mean := sum / float64(st.n)
	variance := sq/float64(st.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if floor := float64(d.MinStddev); std < floor {
		std = floor
	}
	if std == 0 {
		std = 1
	}
	t := float64(now.Sub(st.last))
	x := (t - mean) / std
	// P(later heartbeat) = Q(x) = erfc(x/√2)/2; phi = -log10 Q.
	q := 0.5 * math.Erfc(x/math.Sqrt2)
	if q < 1e-300 {
		q = 1e-300 // clamp: beyond ~phi 300 the verdict is unambiguous
	}
	return -math.Log10(q)
}

// Suspected implements Detector.
func (d *PhiAccrual) Suspected(node int, now simtime.Time) bool {
	return d.Phi(node, now) >= d.Threshold
}
