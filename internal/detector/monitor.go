package detector

import (
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Transport is the slice of the cluster the monitor needs: heartbeat
// carriage over the real (faulty) network plus step/lifecycle hooks.
// *cluster.Cluster implements it; keeping it an interface here avoids an
// import cycle and keeps the detector honest — it sees nodes only
// through messages and hooks, never through the process table.
type Transport interface {
	Now() simtime.Time
	NumNodes() int
	// NodeAlive gates node-local code (a dead machine emits nothing) and
	// feeds metrics ground truth; the suspicion verdict never reads it.
	NodeAlive(i int) bool
	Send(from, to int, payload any, size int) error
	OnStep(fn func())
	OnDeliver(i int, fn func(payload any))
	Handler(i int) func(payload any)
	OnNodeDown(fn func(node int))
}

// Event is one suspicion transition in the monitor's log.
type Event struct {
	Node int
	At   simtime.Time
	// Suspected true: the node crossed into suspicion; false: a
	// heartbeat rehabilitated it.
	Suspected bool
	// FalsePositive marks a suspicion of a node that was in fact alive
	// (ground truth, recorded for accounting only).
	FalsePositive bool
}

// Config tunes a Monitor.
type Config struct {
	// Period is the heartbeat emission period (default 500µs).
	Period simtime.Duration
	// Observer is the node the detector runs on; heartbeats of every
	// node are sent to it over the real network. The observer is the
	// control-plane machine, so PickHealthy never offers it as a spare.
	Observer int
	// HBBytes is the heartbeat payload size for transfer-cost modeling
	// (default 64).
	HBBytes int
}

// Monitor wires heartbeat emission, the network, and a Detector into a
// per-node suspicion service, with honest accounting: detection latency
// against ground-truth failure times, false positives, false negatives
// (failures healed before ever being suspected), and wasted restarts.
type Monitor struct {
	T   Transport
	D   Detector
	Cfg Config
	// Counters receives det.* counters; Latency accumulates detection
	// latency (simulated milliseconds) for true failures.
	Counters *trace.Counters
	Latency  *trace.Series

	seq       []uint64
	nextEmit  []simtime.Time
	suspected []bool
	lastSent  []simtime.Time // latest SentAt over received heartbeats
	lastDown  []simtime.Time // ground truth: most recent down event (metrics only)
	credited  []bool         // the outage at lastDown has been classified
	falseSus  []bool         // current suspicion was classified false
	events    []Event
}

// NewMonitor builds a monitor, installs its heartbeat handler on the
// observer (chaining to any existing handler) and its emission/eval pump
// on the cluster step, and primes the detector at the current time.
func NewMonitor(t Transport, d Detector, cfg Config, ctr *trace.Counters) *Monitor {
	if cfg.Period <= 0 {
		cfg.Period = 500 * simtime.Microsecond
	}
	if cfg.HBBytes <= 0 {
		cfg.HBBytes = 64
	}
	if ctr == nil {
		ctr = trace.NewCounters()
	}
	n := t.NumNodes()
	m := &Monitor{
		T: t, D: d, Cfg: cfg, Counters: ctr, Latency: &trace.Series{},
		seq:       make([]uint64, n),
		nextEmit:  make([]simtime.Time, n),
		suspected: make([]bool, n),
		lastSent:  make([]simtime.Time, n),
		lastDown:  make([]simtime.Time, n),
		credited:  make([]bool, n),
		falseSus:  make([]bool, n),
	}
	now := t.Now()
	for i := 0; i < n; i++ {
		d.Prime(i, now)
		m.nextEmit[i] = now.Add(cfg.Period)
	}
	prev := t.Handler(cfg.Observer)
	t.OnDeliver(cfg.Observer, func(payload any) {
		if hb, ok := payload.(Heartbeat); ok {
			m.onHeartbeat(hb)
			return
		}
		if prev != nil {
			prev(payload)
		}
	})
	t.OnNodeDown(func(node int) {
		m.lastDown[node] = t.Now()
		m.credited[node] = false
	})
	t.OnStep(m.pump)
	return m
}

// outageInSilence reports whether node's current heartbeat silence
// contains an uncredited real outage: the node went down after the last
// heartbeat it managed to SEND, so the silence is genuinely
// failure-caused (whether or not the node has since rebooted).
// Comparing against send time, not arrival, keeps in-flight stragglers
// emitted just before death from masking the outage. Ground truth,
// metrics only.
func (m *Monitor) outageInSilence(node int) bool {
	return m.lastDown[node] > m.lastSent[node] && !m.credited[node]
}

// onHeartbeat feeds an arrival to the detector.
func (m *Monitor) onHeartbeat(hb Heartbeat) {
	m.Counters.Inc("det.heartbeats", 1)
	if m.outageInSilence(hb.Node) && !m.suspected[hb.Node] && hb.SentAt > m.lastDown[hb.Node] {
		// A post-reboot heartbeat arrived before the outage was ever
		// suspected: the failure came and went undetected — a false
		// negative.
		m.Counters.Inc("det.missed", 1)
		m.credited[hb.Node] = true
	}
	if hb.SentAt > m.lastSent[hb.Node] {
		m.lastSent[hb.Node] = hb.SentAt
	}
	m.D.Observe(hb.Node, m.T.Now())
}

// pump runs once per cluster step: emit due heartbeats from live nodes,
// then re-evaluate every node's suspicion.
func (m *Monitor) pump() {
	now := m.T.Now()
	for i := range m.nextEmit {
		// Emission is node-local code: it runs only while the machine
		// does. A dead node falls silent — that silence is the signal.
		for m.T.NodeAlive(i) && now >= m.nextEmit[i] {
			m.seq[i]++
			_ = m.T.Send(i, m.Cfg.Observer, Heartbeat{Node: i, Seq: m.seq[i], SentAt: now}, m.Cfg.HBBytes)
			m.nextEmit[i] = m.nextEmit[i].Add(m.Cfg.Period)
		}
		if !m.T.NodeAlive(i) && now >= m.nextEmit[i] {
			// Keep the schedule moving so a rebooted node resumes at the
			// period, not with a burst of back heartbeats.
			m.nextEmit[i] = now.Add(m.Cfg.Period)
		}
	}
	for i := range m.suspected {
		s := m.D.Suspected(i, now)
		if s == m.suspected[i] {
			continue
		}
		m.suspected[i] = s
		if s {
			m.Counters.Inc("det.suspicions", 1)
			// Classification keys on whether the silence that triggered
			// suspicion was caused by a real outage — not on whether the
			// node happens to be back up at this instant (a repair faster
			// than the detector must not turn a true positive false).
			fp := !m.outageInSilence(i)
			m.falseSus[i] = fp
			if fp {
				m.Counters.Inc("det.false_positives", 1)
			} else {
				m.Counters.Inc("det.detections", 1)
				m.credited[i] = true
				m.Latency.Add(now.Sub(m.lastDown[i]).Millis())
			}
			m.events = append(m.events, Event{Node: i, At: now, Suspected: true, FalsePositive: fp})
		} else {
			m.Counters.Inc("det.recoveries", 1)
			m.events = append(m.events, Event{Node: i, At: now})
		}
	}
}

// Suspected reports the current verdict for node — derived purely from
// the heartbeat stream (this is the supervisor's only failure signal).
func (m *Monitor) Suspected(node int) bool { return m.suspected[node] }

// PickHealthy returns the lowest-numbered node that is neither except,
// the observer, nor currently suspected; -1 when none qualifies.
func (m *Monitor) PickHealthy(except int) int {
	for i := 0; i < m.T.NumNodes(); i++ {
		if i == except || i == m.Cfg.Observer || m.suspected[i] {
			continue
		}
		return i
	}
	return -1
}

// Failover records that the supervisor acted on a suspicion of node —
// restarted the job elsewhere. If the suspicion was a false positive the
// job was still running and the restart was wasted work (counted
// det.wasted_restarts).
func (m *Monitor) Failover(node int) {
	m.Counters.Inc("det.failovers", 1)
	if m.falseSus[node] {
		m.Counters.Inc("det.wasted_restarts", 1)
	}
}

// Events returns the suspicion transition log.
func (m *Monitor) Events() []Event { return m.events }
