// Heartbeat digests: the fleet-scale aggregation path. With per-node
// heartbeats the observer receives N messages per period and the
// control plane arms N emission schedules — at 10,000 nodes that is the
// dominant message and timer load in the whole system. A Digest
// collapses one shard's liveness into a single message per tick: a
// bitmap of members that heartbeated since the last digest plus their
// newest send times for accounting. DigestIngest folds arriving digests
// into any Detector (timeout, phi-accrual) so the suspicion machinery
// is unchanged; ShardMonitor is the cluster-facing monitor that runs
// member heartbeats to a per-shard aggregator node and digests to the
// observer over the real (lossy, delayable, partitionable) network,
// with observer-driven aggregator failover so a dead aggregator does
// not blind its shard forever.

package detector

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Digest is one shard's aggregated heartbeat: "these members of shard
// Shard were alive since the previous digest". Member identity is
// positional — member i is node Base+i — so the payload is a bitmap
// plus send times, not a list of per-node messages.
type Digest struct {
	// Shard identifies the emitting shard; Agg is the aggregator node
	// that built the digest and Gen the assignment generation it holds
	// (zero in contexts without aggregator failover).
	Shard int
	Agg   int
	Gen   uint64
	// Seq increases per digest per aggregator; SentAt is the emission
	// time. (Agg, Seq) lets the ingest side drop exact duplicates —
	// something raw heartbeat streams cannot do soundly.
	Seq    uint64
	SentAt simtime.Time
	// Members are nodes Base..Base+N-1.
	Base int
	N    int
	// Present bit i set means member Base+i heartbeated this tick;
	// LastSent[i] is that heartbeat's send time (accounting ground for
	// false-negative classification; zero when absent).
	Present  []uint64
	LastSent []simtime.Time
}

// NewDigest returns an empty digest for a shard of n members starting
// at node base.
func NewDigest(shard, base, n int) *Digest {
	return &Digest{
		Shard:    shard,
		Base:     base,
		N:        n,
		Present:  make([]uint64, (n+63)/64),
		LastSent: make([]simtime.Time, n),
	}
}

// MarkPresent records that member i (node Base+i) heartbeated, with the
// heartbeat's send time.
func (d *Digest) MarkPresent(i int, sentAt simtime.Time) {
	d.Present[i/64] |= 1 << uint(i%64)
	if sentAt > d.LastSent[i] {
		d.LastSent[i] = sentAt
	}
}

// IsPresent reports whether member i heartbeated in this digest.
func (d *Digest) IsPresent(i int) bool {
	if i < 0 || i >= d.N {
		return false
	}
	return d.Present[i/64]&(1<<uint(i%64)) != 0
}

// Count returns how many members are present.
func (d *Digest) Count() int {
	n := 0
	for i := 0; i < d.N; i++ {
		if d.IsPresent(i) {
			n++
		}
	}
	return n
}

// Bytes models the wire size: a fixed header, the bitmap, and one send
// time per present member.
func (d *Digest) Bytes() int {
	return 48 + 8*len(d.Present) + 8*d.Count()
}

// digestKey identifies one digest emission for deduplication.
type digestKey struct {
	shard, agg int
	seq        uint64
}

// DigestIngest folds digest arrivals into a Detector. Exact duplicates
// (same shard, aggregator, and sequence number — network duplication or
// a replayed message) are dropped and counted det.digest_dup: a
// duplicate carries no new liveness information and must not extend a
// node's observed liveness past its real last heartbeat. Out-of-order
// digests ARE applied (their member heartbeats really happened) and
// counted det.digest_late; the per-node detectors already guard against
// observation time going backwards. Members first seen inside a digest
// (a node that joined mid-run) are primed on sight.
type DigestIngest struct {
	D        Detector
	Counters *trace.Counters

	lastSeq map[int]uint64 // per shard: highest applied seq
	applied map[digestKey]bool
	primed  map[int]bool
	inserts int
}

// NewDigestIngest wraps d with digest ingestion. ctr may be nil.
func NewDigestIngest(d Detector, ctr *trace.Counters) *DigestIngest {
	if ctr == nil {
		ctr = trace.NewCounters()
	}
	return &DigestIngest{
		D: d, Counters: ctr,
		lastSeq: make(map[int]uint64),
		applied: make(map[digestKey]bool),
		primed:  make(map[int]bool),
	}
}

// Prime establishes t as the observation baseline for node (used at
// construction, before any digest has arrived).
func (di *DigestIngest) Prime(node int, t simtime.Time) {
	di.primed[node] = true
	di.D.Prime(node, t)
}

// Observe folds one digest arrival at time now into the detector.
// Returns false when the digest was dropped as a duplicate.
func (di *DigestIngest) Observe(d *Digest, now simtime.Time) bool {
	di.Counters.Inc("det.digests", 1)
	k := digestKey{d.Shard, d.Agg, d.Seq}
	if di.applied[k] {
		di.Counters.Inc("det.digest_dup", 1)
		return false
	}
	di.applied[k] = true
	di.inserts++
	if d.Seq < di.lastSeq[d.Shard] {
		di.Counters.Inc("det.digest_late", 1)
	} else {
		di.lastSeq[d.Shard] = d.Seq
	}
	for i := 0; i < d.N; i++ {
		if !d.IsPresent(i) {
			continue
		}
		node := d.Base + i
		if !di.primed[node] {
			di.primed[node] = true
			di.Counters.Inc("det.digest_joins", 1)
			di.D.Prime(node, now)
		}
		di.D.Observe(node, now)
		di.Counters.Inc("det.digest_hb", 1)
	}
	di.prune()
	return true
}

// prune bounds the dedup memory: every 1024 inserts, forget digests far
// behind their shard's high-water sequence (a duplicate that stale
// would at worst be re-applied, which the detectors' time guards make
// harmless).
func (di *DigestIngest) prune() {
	if di.inserts < 1024 {
		return
	}
	di.inserts = 0
	for k := range di.applied {
		if hw := di.lastSeq[k.shard]; hw > 512 && k.seq < hw-512 {
			delete(di.applied, k)
		}
	}
}

// AssignAgg is the observer's control message appointing Agg as shard
// Shard's aggregator. Gen totally orders assignments per shard so a
// stale appointment arriving late (or a rebooted ex-aggregator) cannot
// win over a newer one.
type AssignAgg struct {
	Shard int
	Agg   int
	Gen   uint64
}

// assignResend is how many consecutive periods the observer
// rebroadcasts a new aggregator assignment to the shard's members: the
// assignment travels the same faulty network as everything else, so one
// send is not enough, and forever is the per-node message load digests
// exist to avoid.
const assignResend = 8

// ShardConfig tunes a ShardMonitor.
type ShardConfig struct {
	// Shards is the number of heartbeat-aggregation shards the workers
	// are split into (contiguous ranges).
	Shards int
	// Period is both the member heartbeat period and the aggregator's
	// digest tick (default 500µs).
	Period simtime.Duration
	// Observer is the control-plane node the digests feed. It must be
	// the highest-numbered node: digests address members positionally
	// as Base+i, so the worker range has to be contiguous.
	Observer int
	// HBBytes is the member heartbeat payload size (default 64).
	HBBytes int
}

// ShardMonitor is the digest-based counterpart of Monitor: members
// heartbeat to their shard's aggregator node, the aggregator emits one
// digest per tick to the observer, and the observer's detector judges
// every member from the digest stream. The observer also supervises the
// aggregators themselves: when a shard's aggregator is suspected, the
// lowest unsuspected member is appointed in its place (AssignAgg,
// rebroadcast a bounded number of periods), so an aggregator death
// costs one detection delay rather than blinding the shard forever.
// The accounting mirrors Monitor exactly — detection latency against
// ground-truth failure times, false positives, false negatives — so
// experiment tables compare the two paths directly.
type ShardMonitor struct {
	T        Transport
	D        Detector
	Cfg      ShardConfig
	Counters *trace.Counters
	Latency  *trace.Series

	ingest *DigestIngest

	// Shard geometry: shard s covers nodes [base[s], base[s]+cnt[s]).
	base []int
	cnt  []int

	// Observer-side aggregator supervision.
	want    []int
	gen     []uint64
	resend  []int
	obsNext simtime.Time

	// Member-local state (indexed by node). The aim/acting state is
	// node-local knowledge installed by AssignAgg deliveries; it
	// survives reboots the same way Monitor's emission schedule does.
	aim      []int
	aimGen   []uint64
	acting   []bool
	seq      []uint64
	nextEmit []simtime.Time
	aggSeq   []uint64
	aggNext  []simtime.Time
	pending  []*Digest

	// Observer-side verdicts and ground-truth accounting.
	suspected []bool
	credited  []bool
	falseSus  []bool
	lastSent  []simtime.Time
	lastDown  []simtime.Time
	events    []Event
}

// NewShardMonitor builds a sharded monitor over t, splits the workers
// (every node but the observer) into cfg.Shards contiguous shards,
// installs handlers on the aggregators and the observer, and primes the
// detector. The observer must be the highest-numbered node.
func NewShardMonitor(t Transport, d Detector, cfg ShardConfig, ctr *trace.Counters) *ShardMonitor {
	if cfg.Period <= 0 {
		cfg.Period = 500 * simtime.Microsecond
	}
	if cfg.HBBytes <= 0 {
		cfg.HBBytes = 64
	}
	if ctr == nil {
		ctr = trace.NewCounters()
	}
	n := t.NumNodes()
	if cfg.Observer != n-1 {
		panic(fmt.Sprintf("detector: ShardMonitor needs the observer as the last node (got observer %d of %d nodes)", cfg.Observer, n))
	}
	workers := n - 1
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > workers {
		cfg.Shards = workers
	}
	m := &ShardMonitor{
		T: t, D: d, Cfg: cfg, Counters: ctr, Latency: &trace.Series{},
		ingest:    NewDigestIngest(d, ctr),
		base:      make([]int, cfg.Shards),
		cnt:       make([]int, cfg.Shards),
		want:      make([]int, cfg.Shards),
		gen:       make([]uint64, cfg.Shards),
		resend:    make([]int, cfg.Shards),
		aim:       make([]int, n),
		aimGen:    make([]uint64, n),
		acting:    make([]bool, n),
		seq:       make([]uint64, n),
		nextEmit:  make([]simtime.Time, n),
		aggSeq:    make([]uint64, n),
		aggNext:   make([]simtime.Time, n),
		pending:   make([]*Digest, n),
		suspected: make([]bool, n),
		credited:  make([]bool, n),
		falseSus:  make([]bool, n),
		lastSent:  make([]simtime.Time, n),
		lastDown:  make([]simtime.Time, n),
	}
	chunk := (workers + cfg.Shards - 1) / cfg.Shards
	for s := 0; s < cfg.Shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > workers {
			hi = workers
		}
		if lo > hi {
			lo = hi
		}
		m.base[s], m.cnt[s] = lo, hi-lo
	}
	now := t.Now()
	for s := 0; s < cfg.Shards; s++ {
		if m.cnt[s] == 0 {
			continue
		}
		// The initial assignment is boot configuration: every member
		// knows its shard's first node is the aggregator, the same way
		// Monitor's members know the observer's address.
		m.want[s], m.gen[s] = m.base[s], 1
		for i := 0; i < m.cnt[s]; i++ {
			node := m.base[s] + i
			m.aim[node], m.aimGen[node] = m.base[s], 1
			m.nextEmit[node] = now.Add(cfg.Period)
			m.ingest.Prime(node, now)
		}
		agg := m.base[s]
		m.acting[agg] = true
		m.aggNext[agg] = now.Add(cfg.Period)
	}
	m.obsNext = now.Add(cfg.Period)

	for node := 0; node < workers; node++ {
		node := node
		prev := t.Handler(node)
		t.OnDeliver(node, func(payload any) {
			switch msg := payload.(type) {
			case Heartbeat:
				m.foldHeartbeat(node, msg)
			case AssignAgg:
				m.onAssign(node, msg)
			default:
				if prev != nil {
					prev(payload)
				}
			}
		})
	}
	prev := t.Handler(cfg.Observer)
	t.OnDeliver(cfg.Observer, func(payload any) {
		if dg, ok := payload.(*Digest); ok {
			m.onDigest(dg)
			return
		}
		if prev != nil {
			prev(payload)
		}
	})
	t.OnNodeDown(func(node int) {
		m.lastDown[node] = t.Now()
		m.credited[node] = false
	})
	t.OnStep(m.pump)
	return m
}

// shardOf returns the shard covering node, or -1.
func (m *ShardMonitor) shardOf(node int) int {
	for s := 0; s < m.Cfg.Shards; s++ {
		if node >= m.base[s] && node < m.base[s]+m.cnt[s] {
			return s
		}
	}
	return -1
}

// foldHeartbeat runs on a member node receiving a heartbeat: if it
// believes itself the shard's aggregator it folds the heartbeat into
// the digest under construction, otherwise the sender aimed at a
// superseded aggregator and the heartbeat is dropped (counted — the
// resent assignment will re-aim the sender).
func (m *ShardMonitor) foldHeartbeat(node int, hb Heartbeat) {
	if !m.acting[node] {
		m.Counters.Inc("det.hb_misaimed", 1)
		return
	}
	m.Counters.Inc("det.heartbeats", 1)
	s := m.shardOf(node)
	if s < 0 {
		return
	}
	off := hb.Node - m.base[s]
	if off < 0 || off >= m.cnt[s] {
		m.Counters.Inc("det.hb_foreign", 1)
		return // a member of another shard aimed here: stale assignment
	}
	if m.pending[node] == nil {
		m.pending[node] = NewDigest(s, m.base[s], m.cnt[s])
	}
	m.pending[node].MarkPresent(off, hb.SentAt)
}

// onAssign runs on a member node receiving an aggregator appointment.
func (m *ShardMonitor) onAssign(node int, a AssignAgg) {
	if a.Gen < m.aimGen[node] {
		return // stale assignment lost the race
	}
	if a.Gen == m.aimGen[node] && a.Agg == m.aim[node] {
		return // rebroadcast of what this member already knows
	}
	m.aimGen[node] = a.Gen
	m.aim[node] = a.Agg
	wasActing := m.acting[node]
	m.acting[node] = a.Agg == node
	if m.acting[node] && !wasActing {
		m.pending[node] = nil
		m.aggNext[node] = m.T.Now().Add(m.Cfg.Period)
	}
	if wasActing && !m.acting[node] {
		m.pending[node] = nil
	}
}

// onDigest runs on the observer: dedup + detector feed via the ingest,
// then the same ground-truth accounting Monitor does per heartbeat —
// send times advance, and a member whose outage came and went inside
// its digest silence is a false negative.
func (m *ShardMonitor) onDigest(d *Digest) {
	now := m.T.Now()
	if d.Gen < m.gen[d.Shard] {
		// A superseded aggregator is still emitting (it rebooted, or the
		// reassignment never reached it). Its liveness info is real —
		// ingest it — but nudge the assignment out again so it stands
		// down.
		m.Counters.Inc("det.digest_stale_agg", 1)
		if m.resend[d.Shard] == 0 {
			m.resend[d.Shard] = 1
		}
	}
	if !m.ingest.Observe(d, now) {
		return // exact duplicate
	}
	for i := 0; i < d.N; i++ {
		if !d.IsPresent(i) {
			continue
		}
		node := d.Base + i
		sent := d.LastSent[i]
		if m.outageInSilence(node) && !m.suspected[node] && sent > m.lastDown[node] {
			m.Counters.Inc("det.missed", 1)
			m.credited[node] = true
		}
		if sent > m.lastSent[node] {
			m.lastSent[node] = sent
		}
	}
}

// outageInSilence mirrors Monitor: the node's current silence contains
// an uncredited real outage. Ground truth, metrics only.
func (m *ShardMonitor) outageInSilence(node int) bool {
	return m.lastDown[node] > m.lastSent[node] && !m.credited[node]
}

// pump runs once per cluster step: member heartbeat emission,
// aggregator digest ticks, the observer's aggregator supervision, and
// suspicion evaluation.
func (m *ShardMonitor) pump() {
	now := m.T.Now()
	workers := m.T.NumNodes() - 1

	// Member heartbeat emission — node-local code, runs only on live
	// machines. A member whose aim is itself is the aggregator: its
	// "heartbeat" folds straight into the pending digest.
	for node := 0; node < workers; node++ {
		for m.T.NodeAlive(node) && now >= m.nextEmit[node] {
			m.seq[node]++
			hb := Heartbeat{Node: node, Seq: m.seq[node], SentAt: now}
			if m.aim[node] == node {
				m.foldHeartbeat(node, hb)
			} else {
				_ = m.T.Send(node, m.aim[node], hb, m.Cfg.HBBytes)
			}
			m.nextEmit[node] = m.nextEmit[node].Add(m.Cfg.Period)
		}
		if !m.T.NodeAlive(node) && now >= m.nextEmit[node] {
			m.nextEmit[node] = now.Add(m.Cfg.Period)
		}
	}

	// Aggregator digest ticks.
	for node := 0; node < workers; node++ {
		if !m.acting[node] {
			continue
		}
		for m.T.NodeAlive(node) && now >= m.aggNext[node] {
			s := m.shardOf(node)
			d := m.pending[node]
			if d == nil {
				d = NewDigest(s, m.base[s], m.cnt[s])
			}
			m.pending[node] = nil
			m.aggSeq[node]++
			d.Agg, d.Gen, d.Seq, d.SentAt = node, m.aimGen[node], m.aggSeq[node], now
			// The aggregator is alive to run this code: it is its own
			// heartbeat witness.
			d.MarkPresent(node-m.base[s], now)
			_ = m.T.Send(node, m.Cfg.Observer, d, d.Bytes())
			m.Counters.Inc("det.digest_sent", 1)
			m.aggNext[node] = m.aggNext[node].Add(m.Cfg.Period)
		}
		if !m.T.NodeAlive(node) && now >= m.aggNext[node] {
			// The machine is down: whatever it had aggregated is lost
			// with it, and the schedule moves on for its reboot.
			m.pending[node] = nil
			m.aggNext[node] = now.Add(m.Cfg.Period)
		}
	}

	// Observer: supervise the aggregators and rebroadcast fresh
	// assignments for a bounded number of periods.
	for now >= m.obsNext {
		m.observerTick()
		m.obsNext = m.obsNext.Add(m.Cfg.Period)
	}

	// Suspicion evaluation over the workers (the observer is the
	// control plane and is never judged).
	for node := 0; node < workers; node++ {
		s := m.D.Suspected(node, now)
		if s == m.suspected[node] {
			continue
		}
		m.suspected[node] = s
		if s {
			m.Counters.Inc("det.suspicions", 1)
			fp := !m.outageInSilence(node)
			m.falseSus[node] = fp
			if fp {
				m.Counters.Inc("det.false_positives", 1)
			} else {
				m.Counters.Inc("det.detections", 1)
				m.credited[node] = true
				m.Latency.Add(now.Sub(m.lastDown[node]).Millis())
			}
			m.events = append(m.events, Event{Node: node, At: now, Suspected: true, FalsePositive: fp})
		} else {
			m.Counters.Inc("det.recoveries", 1)
			m.events = append(m.events, Event{Node: node, At: now})
		}
	}
}

// observerTick reassigns suspected aggregators and drains the resend
// budget.
func (m *ShardMonitor) observerTick() {
	for s := 0; s < m.Cfg.Shards; s++ {
		if m.cnt[s] == 0 {
			continue
		}
		if m.suspected[m.want[s]] {
			cand := -1
			for i := 0; i < m.cnt[s]; i++ {
				if node := m.base[s] + i; !m.suspected[node] {
					cand = node
					break
				}
			}
			switch {
			case cand >= 0 && cand != m.want[s]:
				m.gen[s]++
				m.want[s] = cand
				m.resend[s] = assignResend
				m.Counters.Inc("det.agg_failover", 1)
			case cand < 0 && m.resend[s] == 0:
				// The whole shard is dark — a dead aggregator silences every
				// member, so by the time the observer acts there may be no
				// unsuspected candidate left. Probe the members in turn,
				// giving each appointee a resend budget's worth of periods to
				// start digesting; the first live one rehabilitates the
				// shard.
				next := m.want[s] + 1
				if next >= m.base[s]+m.cnt[s] {
					next = m.base[s]
				}
				m.gen[s]++
				m.want[s] = next
				m.resend[s] = assignResend
				m.Counters.Inc("det.agg_probe", 1)
			}
		}
		if m.resend[s] > 0 {
			m.resend[s]--
			for i := 0; i < m.cnt[s]; i++ {
				node := m.base[s] + i
				_ = m.T.Send(m.Cfg.Observer, node, AssignAgg{Shard: s, Agg: m.want[s], Gen: m.gen[s]}, 24)
			}
			m.Counters.Inc("det.assign_bcast", 1)
		}
	}
}

// Suspected reports the current digest-derived verdict for node.
func (m *ShardMonitor) Suspected(node int) bool { return m.suspected[node] }

// PickHealthy returns the lowest-numbered node that is neither except,
// the observer, nor currently suspected; -1 when none qualifies.
func (m *ShardMonitor) PickHealthy(except int) int {
	for i := 0; i < m.T.NumNodes(); i++ {
		if i == except || i == m.Cfg.Observer || m.suspected[i] {
			continue
		}
		return i
	}
	return -1
}

// Failover records that the supervisor acted on a suspicion of node.
func (m *ShardMonitor) Failover(node int) {
	m.Counters.Inc("det.failovers", 1)
	if m.falseSus[node] {
		m.Counters.Inc("det.wasted_restarts", 1)
	}
}

// Events returns the suspicion transition log.
func (m *ShardMonitor) Events() []Event { return m.events }

// Aggregator returns shard s's currently appointed aggregator node (the
// observer's view), for tests and telemetry.
func (m *ShardMonitor) Aggregator(s int) int { return m.want[s] }
