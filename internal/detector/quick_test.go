package detector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

// TestQuickPhiMonotoneInSilence is the accrual detector's core safety
// property, checked over random heartbeat histories: once the window has
// warmed up, suspicion never decreases as the silence since the last
// heartbeat grows. A dip would let a node slip back below threshold
// without any new evidence of life.
func TestQuickPhiMonotoneInSilence(t *testing.T) {
	prop := func(seed int64, beats uint8, gap1, gap2 uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewPhiAccrual(8, 64, 100*simtime.Microsecond)
		now := simtime.Time(simtime.Millisecond)
		d.Prime(0, now)
		n := 3 + int(beats)%64
		for i := 0; i < n; i++ {
			now = now.Add(simtime.Duration(100+rng.Intn(400)) * simtime.Microsecond)
			d.Observe(0, now)
		}
		t1 := now.Add(simtime.Duration(gap1 % 2_000_000)) // up to 2ms of silence
		t2 := t1.Add(simtime.Duration(gap2 % 2_000_000))
		p0, p1, p2 := d.Phi(0, now), d.Phi(0, t1), d.Phi(0, t2)
		return p0 >= 0 && p0 <= p1 && p1 <= p2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPhiDuplicatesAddNoInformation: replaying an old heartbeat
// (duplication and reordering are squarely inside the network fault
// model) must not change the suspicion level.
func TestQuickPhiDuplicatesAddNoInformation(t *testing.T) {
	prop := func(seed int64, beats uint8, back uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewPhiAccrual(8, 64, 100*simtime.Microsecond)
		now := simtime.Time(simtime.Millisecond)
		d.Prime(0, now)
		n := 3 + int(beats)%64
		for i := 0; i < n; i++ {
			now = now.Add(simtime.Duration(100+rng.Intn(400)) * simtime.Microsecond)
			d.Observe(0, now)
		}
		probe := now.Add(simtime.Millisecond)
		before := d.Phi(0, probe)
		d.Observe(0, now.Add(-simtime.Duration(back%1_000_000))) // stale replay
		return d.Phi(0, probe) == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
