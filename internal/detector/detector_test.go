package detector

import (
	"testing"

	"repro/internal/simtime"
)

func ms(n int) simtime.Time        { return simtime.Time(n) * simtime.Time(simtime.Millisecond) }
func msDur(n int) simtime.Duration { return simtime.Duration(n) * simtime.Millisecond }
func feed(d Detector, node, n int, period simtime.Duration, from simtime.Time) simtime.Time {
	t := from
	for i := 0; i < n; i++ {
		t = t.Add(period)
		d.Observe(node, t)
	}
	return t
}

func TestTimeoutDetectsSilenceAndRehabilitates(t *testing.T) {
	d := NewTimeout(msDur(2))
	d.Prime(0, 0)
	last := feed(d, 0, 5, msDur(1), 0)
	if d.Suspected(0, last.Add(msDur(1))) {
		t.Fatal("suspected within the timeout")
	}
	if !d.Suspected(0, last.Add(msDur(3))) {
		t.Fatal("not suspected after silence > After")
	}
	// A late heartbeat rehabilitates.
	d.Observe(0, last.Add(msDur(4)))
	if d.Suspected(0, last.Add(msDur(5))) {
		t.Fatal("still suspected after heartbeat resumed")
	}
}

func TestPhiAccruesWithSilence(t *testing.T) {
	d := NewPhiAccrual(8, 64, msDur(1)/2)
	d.Prime(0, 0)
	last := feed(d, 0, 20, msDur(1), 0)
	if phi := d.Phi(0, last.Add(msDur(1))); phi > 1 {
		t.Fatalf("phi %v right after a heartbeat, want small", phi)
	}
	if !d.Suspected(0, last.Add(msDur(20))) {
		t.Fatal("not suspected after 20 periods of silence")
	}
	// Phi is monotone in silence.
	p1 := d.Phi(0, last.Add(msDur(5)))
	p2 := d.Phi(0, last.Add(msDur(10)))
	if p2 <= p1 {
		t.Fatalf("phi not increasing with silence: %v then %v", p1, p2)
	}
	// Rehabilitation: heartbeats resume, suspicion drops.
	last = feed(d, 0, 5, msDur(1), last.Add(msDur(20)))
	if d.Suspected(0, last.Add(msDur(1))) {
		t.Fatal("still suspected after heartbeats resumed")
	}
}

// Jitter widens the estimated distribution, so the phi detector is more
// patient on a noisy network than on a quiet one — the adaptivity a
// fixed timeout lacks.
func TestPhiAdaptsToJitter(t *testing.T) {
	quiet := NewPhiAccrual(8, 64, 0)
	noisy := NewPhiAccrual(8, 64, 0)
	quiet.Prime(0, 0)
	noisy.Prime(0, 0)
	lastQ := feed(quiet, 0, 30, msDur(1), 0)
	// Noisy stream alternates 1ms and 3ms gaps (same node, own detector).
	tn := simtime.Time(0)
	for i := 0; i < 30; i++ {
		gap := msDur(1)
		if i%2 == 1 {
			gap = msDur(3)
		}
		tn = tn.Add(gap)
		noisy.Observe(0, tn)
	}
	silence := msDur(4)
	if qp, np := quiet.Phi(0, lastQ.Add(silence)), noisy.Phi(0, tn.Add(silence)); np >= qp {
		t.Fatalf("noisy phi %v >= quiet phi %v after equal silence", np, qp)
	}
}

func TestPhiIgnoresDuplicatesAndReorders(t *testing.T) {
	d := NewPhiAccrual(8, 8, msDur(1)/2)
	d.Prime(0, 0)
	last := feed(d, 0, 10, msDur(1), 0)
	before := d.Phi(0, last.Add(msDur(2)))
	d.Observe(0, last)                // duplicate
	d.Observe(0, last.Add(-msDur(1))) // reordered
	if after := d.Phi(0, last.Add(msDur(2))); after != before {
		t.Fatalf("duplicate/reordered heartbeat changed phi: %v -> %v", before, after)
	}
}

func TestPhiWarmupIsNotSuspicious(t *testing.T) {
	d := NewPhiAccrual(1, 64, msDur(1)/2)
	d.Prime(0, 0)
	if d.Suspected(0, ms(100)) {
		t.Fatal("suspected with no samples (warm-up must be lenient)")
	}
}
