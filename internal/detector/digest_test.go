package detector

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestDigestBitmapAcrossWordBoundary(t *testing.T) {
	d := NewDigest(0, 100, 70) // spans two 64-bit words
	for _, i := range []int{0, 63, 64, 69} {
		d.MarkPresent(i, ms(5))
	}
	if got := d.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for _, i := range []int{0, 63, 64, 69} {
		if !d.IsPresent(i) {
			t.Fatalf("member %d lost", i)
		}
	}
	for _, i := range []int{1, 62, 65, 70, -1} {
		if d.IsPresent(i) {
			t.Fatalf("member %d spuriously present", i)
		}
	}
	// MarkPresent keeps the NEWEST send time.
	d.MarkPresent(0, ms(3))
	if d.LastSent[0] != ms(5) {
		t.Fatalf("LastSent regressed to %v", d.LastSent[0])
	}
	if d.Bytes() != 48+2*8+4*8 {
		t.Fatalf("Bytes = %d", d.Bytes())
	}
}

func TestDigestIngestDropsExactDuplicates(t *testing.T) {
	ctr := trace.NewCounters()
	det := NewTimeout(msDur(4))
	di := NewDigestIngest(det, ctr)
	di.Prime(0, 0)

	d := NewDigest(0, 0, 2)
	d.Agg, d.Seq = 0, 1
	d.MarkPresent(0, ms(1))

	if !di.Observe(d, ms(1)) {
		t.Fatal("first delivery dropped")
	}
	// A network-duplicated copy arrives later; it must NOT extend node
	// 0's observed liveness to the later arrival time.
	if di.Observe(d, ms(5)) {
		t.Fatal("duplicate applied")
	}
	if ctr.Get("det.digest_dup") != 1 {
		t.Fatalf("det.digest_dup = %d, want 1", ctr.Get("det.digest_dup"))
	}
	if !det.Suspected(0, ms(6)) {
		t.Fatal("duplicate refreshed liveness: node unsuspected past its timeout")
	}
}

func TestDigestIngestAppliesLateDigests(t *testing.T) {
	ctr := trace.NewCounters()
	det := NewTimeout(msDur(4))
	di := NewDigestIngest(det, ctr)
	di.Prime(0, 0)
	di.Prime(1, 0)

	d2 := NewDigest(0, 0, 2)
	d2.Agg, d2.Seq = 0, 2
	d2.MarkPresent(0, ms(2))
	d1 := NewDigest(0, 0, 2)
	d1.Agg, d1.Seq = 0, 1
	d1.MarkPresent(1, ms(1)) // only the late digest saw node 1

	if !di.Observe(d2, ms(2)) {
		t.Fatal("in-order digest dropped")
	}
	// Seq 1 arrives after seq 2 (jittery path): its heartbeats really
	// happened, so it must be applied, and counted as late.
	if !di.Observe(d1, ms(3)) {
		t.Fatal("late digest dropped")
	}
	if ctr.Get("det.digest_late") != 1 {
		t.Fatalf("det.digest_late = %d, want 1", ctr.Get("det.digest_late"))
	}
	if det.Suspected(1, ms(6)) {
		t.Fatal("late digest's heartbeat discarded: node 1 suspected")
	}
}

func TestDigestIngestPrimesJoiners(t *testing.T) {
	ctr := trace.NewCounters()
	det := NewTimeout(msDur(4))
	di := NewDigestIngest(det, ctr)
	// Node 1 exists but was never primed — it joined mid-run and first
	// appears inside a digest.
	d := NewDigest(0, 0, 2)
	d.Agg, d.Seq = 0, 1
	d.MarkPresent(1, ms(10))
	di.Observe(d, ms(10))
	if ctr.Get("det.digest_joins") != 1 {
		t.Fatalf("det.digest_joins = %d, want 1", ctr.Get("det.digest_joins"))
	}
	if det.Suspected(1, ms(12)) {
		t.Fatal("joiner suspected immediately after its first digest")
	}
	if !det.Suspected(1, ms(20)) {
		t.Fatal("joiner never times out")
	}
}

func TestDigestIngestEmptyShard(t *testing.T) {
	ctr := trace.NewCounters()
	di := NewDigestIngest(NewTimeout(msDur(4)), ctr)
	d := NewDigest(3, 10, 0) // a shard with zero members
	d.Agg, d.Seq = 10, 1
	if !di.Observe(d, ms(1)) {
		t.Fatal("empty digest dropped")
	}
	if d.Count() != 0 || d.Bytes() != 48 {
		t.Fatalf("empty digest Count=%d Bytes=%d", d.Count(), d.Bytes())
	}
	if ctr.Get("det.digest_hb") != 0 {
		t.Fatal("empty digest produced member heartbeats")
	}
}

func TestDigestIngestPrunesDedupMemory(t *testing.T) {
	di := NewDigestIngest(NewTimeout(msDur(4)), nil)
	for seq := uint64(1); seq <= 3000; seq++ {
		d := NewDigest(0, 0, 1)
		d.Agg, d.Seq = 0, seq
		di.Observe(d, ms(int(seq)))
	}
	if len(di.applied) > 1600 {
		t.Fatalf("dedup memory unbounded: %d entries after 3000 digests", len(di.applied))
	}
}

// The equivalence property: a detector fed per-tick digests must reach
// the same per-node verdicts as one fed the identical heartbeat stream
// node by node. Table-driven over heartbeat timelines.
func TestDigestVsPerNodeEquivalence(t *testing.T) {
	type tick struct {
		at    simtime.Time
		beats []int // members that heartbeated this tick
	}
	mk := func(beats ...[]int) []tick {
		var ts []tick
		for i, b := range beats {
			ts = append(ts, tick{at: ms(i + 1), beats: b})
		}
		return ts
	}
	const n = 4
	cases := []struct {
		name  string
		ticks []tick
	}{
		{"all alive", mk([]int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{0, 1, 2, 3})},
		{"node 2 dies", mk([]int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{0, 1, 3}, []int{0, 1, 3}, []int{0, 1, 3}, []int{0, 1, 3}, []int{0, 1, 3}, []int{0, 1, 3}, []int{0, 1, 3}, []int{0, 1, 3})},
		{"node 1 flaps", mk([]int{0, 1, 2, 3}, []int{0, 2, 3}, []int{0, 1, 2, 3}, []int{0, 2, 3}, []int{0, 1, 2, 3}, []int{0, 2, 3}, []int{0, 1, 2, 3}, []int{0, 2, 3})},
		{"two die, one returns", mk([]int{0, 1, 2, 3}, []int{0, 1}, []int{0, 1}, []int{0, 1}, []int{0, 1}, []int{0, 1, 2}, []int{0, 1, 2}, []int{0, 1, 2}, []int{0, 1, 2})},
		{"total silence", mk([]int{0, 1, 2, 3}, []int{}, []int{}, []int{}, []int{}, []int{}, []int{})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			perNode := NewTimeout(msDur(3))
			digested := NewTimeout(msDur(3))
			di := NewDigestIngest(digested, nil)
			for i := 0; i < n; i++ {
				perNode.Prime(i, 0)
				di.Prime(i, 0)
			}
			var seq uint64
			for _, tk := range tc.ticks {
				d := NewDigest(0, 0, n)
				for _, b := range tk.beats {
					perNode.Observe(b, tk.at)
					d.MarkPresent(b, tk.at)
				}
				seq++
				d.Agg, d.Seq, d.SentAt = 0, seq, tk.at
				di.Observe(d, tk.at)
				for i := 0; i < n; i++ {
					if got, want := digested.Suspected(i, tk.at), perNode.Suspected(i, tk.at); got != want {
						t.Fatalf("at %v node %d: digest verdict %v, per-node verdict %v", tk.at, i, got, want)
					}
				}
			}
			// Verdicts also agree well past the last heartbeat.
			end := tc.ticks[len(tc.ticks)-1].at.Add(msDur(10))
			for i := 0; i < n; i++ {
				if got, want := digested.Suspected(i, end), perNode.Suspected(i, end); got != want {
					t.Fatalf("final: node %d digest %v per-node %v", i, got, want)
				}
			}
		})
	}
}
