package detector

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// fakeNet is a minimal Transport for driving ShardMonitor without the
// full cluster: messages are delivered after a fixed delay, nodes can be
// killed and revived, and per-message drop/duplicate hooks model the
// faulty network.
type fakeNet struct {
	now      simtime.Time
	n        int
	alive    []bool
	handlers []func(any)
	steps    []func()
	downFns  []func(int)
	delay    simtime.Duration
	queue    []fakeMsg
	drop     func(from, to int, payload any) bool
	dup      func(payload any) bool
}

type fakeMsg struct {
	at      simtime.Time
	to      int
	payload any
}

func newFakeNet(n int, delay simtime.Duration) *fakeNet {
	f := &fakeNet{n: n, alive: make([]bool, n), handlers: make([]func(any), n), delay: delay}
	for i := range f.alive {
		f.alive[i] = true
	}
	return f
}

func (f *fakeNet) Now() simtime.Time            { return f.now }
func (f *fakeNet) NumNodes() int                { return f.n }
func (f *fakeNet) NodeAlive(i int) bool         { return f.alive[i] }
func (f *fakeNet) OnStep(fn func())             { f.steps = append(f.steps, fn) }
func (f *fakeNet) OnDeliver(i int, fn func(payload any)) {
	f.handlers[i] = fn
}
func (f *fakeNet) Handler(i int) func(payload any) { return f.handlers[i] }
func (f *fakeNet) OnNodeDown(fn func(node int))    { f.downFns = append(f.downFns, fn) }

func (f *fakeNet) Send(from, to int, payload any, size int) error {
	if f.drop != nil && f.drop(from, to, payload) {
		return nil
	}
	f.queue = append(f.queue, fakeMsg{at: f.now.Add(f.delay), to: to, payload: payload})
	if f.dup != nil && f.dup(payload) {
		f.queue = append(f.queue, fakeMsg{at: f.now.Add(f.delay), to: to, payload: payload})
	}
	return nil
}

func (f *fakeNet) kill(node int) {
	f.alive[node] = false
	for _, fn := range f.downFns {
		fn(node)
	}
}

func (f *fakeNet) revive(node int) { f.alive[node] = true }

// step advances time in fixed increments, delivering due messages to
// live recipients and running the pump, up to deadline.
func (f *fakeNet) step(until simtime.Time, inc simtime.Duration) {
	for f.now < until {
		f.now = f.now.Add(inc)
		kept := f.queue[:0]
		for _, m := range f.queue {
			if m.at > f.now {
				kept = append(kept, m)
				continue
			}
			if f.alive[m.to] && f.handlers[m.to] != nil {
				f.handlers[m.to](m.payload)
			}
		}
		f.queue = kept
		for _, fn := range f.steps {
			fn()
		}
	}
}

func shardMonCfg(shards int, n int) ShardConfig {
	return ShardConfig{Shards: shards, Period: msDur(1), Observer: n - 1}
}

// A non-aggregator worker failure is detected through the digest path
// with no collateral suspicion.
func TestShardMonitorDetectsWorkerFailure(t *testing.T) {
	net := newFakeNet(9, 200*simtime.Microsecond) // 8 workers in 2 shards + observer
	ctr := trace.NewCounters()
	m := NewShardMonitor(net, NewTimeout(msDur(4)), shardMonCfg(2, 9), ctr)

	// Kill off the emission grid so the outage classifier sees the last
	// heartbeat strictly before the down time.
	net.step(ms(10).Add(50*simtime.Microsecond), 100*simtime.Microsecond)
	net.kill(3)
	net.step(ms(30), 100*simtime.Microsecond)

	if !m.Suspected(3) {
		t.Fatal("dead worker never suspected")
	}
	for i := 0; i < 8; i++ {
		if i != 3 && m.Suspected(i) {
			t.Fatalf("live worker %d suspected", i)
		}
	}
	if ctr.Get("det.detections") != 1 {
		t.Fatalf("det.detections = %d, want 1\n%s", ctr.Get("det.detections"), ctr)
	}
	if ctr.Get("det.false_positives") != 0 {
		t.Fatalf("false positives: %d\n%s", ctr.Get("det.false_positives"), ctr)
	}
	if m.Latency.N() != 1 {
		t.Fatalf("latency samples = %d, want 1", m.Latency.N())
	}
}

// Killing a shard's aggregator silences the whole shard; the observer
// must appoint a replacement and the surviving members must be
// rehabilitated once digests resume — an aggregator death costs a
// detection delay, not permanent blindness.
func TestShardMonitorAggregatorFailover(t *testing.T) {
	net := newFakeNet(9, 200*simtime.Microsecond)
	ctr := trace.NewCounters()
	m := NewShardMonitor(net, NewTimeout(msDur(4)), shardMonCfg(2, 9), ctr)

	if m.Aggregator(0) != 0 {
		t.Fatalf("boot aggregator of shard 0 is %d, want 0", m.Aggregator(0))
	}
	net.step(ms(10).Add(50*simtime.Microsecond), 100*simtime.Microsecond)
	net.kill(0)
	net.step(ms(60), 100*simtime.Microsecond)

	if agg := m.Aggregator(0); agg == 0 {
		t.Fatal("observer never reassigned shard 0's aggregator")
	} else if net.alive[agg] != true {
		t.Fatalf("appointed aggregator %d is dead", agg)
	}
	if !m.Suspected(0) {
		t.Fatal("dead ex-aggregator not suspected")
	}
	for i := 1; i < 4; i++ {
		if m.Suspected(i) {
			t.Fatalf("shard 0 member %d still suspected after aggregator failover", i)
		}
	}
	// Shard 1 must have been untouched throughout.
	for i := 4; i < 8; i++ {
		if m.Suspected(i) {
			t.Fatalf("shard 1 member %d suspected by shard 0's outage", i)
		}
	}
	if ctr.Get("det.agg_failover")+ctr.Get("det.agg_probe") == 0 {
		t.Fatalf("no aggregator reassignment counted\n%s", ctr)
	}
	if ctr.Get("det.recoveries") == 0 {
		t.Fatal("silenced members never rehabilitated")
	}
}

// Network-duplicated digests are deduplicated by (shard, agg, seq) and
// cause no false suspicion; a duplicate must not refresh liveness either
// (covered at the ingest layer, exercised here end to end).
func TestShardMonitorSurvivesDuplicatedDigests(t *testing.T) {
	net := newFakeNet(9, 200*simtime.Microsecond)
	net.dup = func(p any) bool { _, ok := p.(*Digest); return ok }
	ctr := trace.NewCounters()
	m := NewShardMonitor(net, NewTimeout(msDur(4)), shardMonCfg(2, 9), ctr)

	net.step(ms(30), 100*simtime.Microsecond)
	for i := 0; i < 8; i++ {
		if m.Suspected(i) {
			t.Fatalf("worker %d suspected under digest duplication", i)
		}
	}
	if ctr.Get("det.digest_dup") == 0 {
		t.Fatal("duplicates were not exercised")
	}
	if ctr.Get("det.false_positives") != 0 {
		t.Fatalf("false positives under duplication\n%s", ctr)
	}
}

// Digest loss delays detection but the monitor keeps its accounting
// straight: a rebooted node is rehabilitated, and a failure that comes
// and goes inside the silence is counted missed, exactly like Monitor.
func TestShardMonitorTransientFailureAccounting(t *testing.T) {
	net := newFakeNet(5, 200*simtime.Microsecond) // one shard of 4 + observer
	ctr := trace.NewCounters()
	m := NewShardMonitor(net, NewTimeout(msDur(4)), shardMonCfg(1, 5), ctr)

	net.step(ms(10).Add(50*simtime.Microsecond), 100*simtime.Microsecond)
	net.kill(2)
	net.step(ms(20), 100*simtime.Microsecond)
	if !m.Suspected(2) {
		t.Fatal("transient failure undetected")
	}
	net.revive(2)
	net.step(ms(40), 100*simtime.Microsecond)
	if m.Suspected(2) {
		t.Fatal("rebooted node never rehabilitated")
	}
	if ctr.Get("det.detections") != 1 || ctr.Get("det.recoveries") == 0 {
		t.Fatalf("accounting off:\n%s", ctr)
	}
}

// Heartbeats aimed at a superseded aggregator are dropped and counted,
// not folded into a stale digest.
func TestShardMonitorMisaimedHeartbeats(t *testing.T) {
	net := newFakeNet(5, 200*simtime.Microsecond)
	ctr := trace.NewCounters()
	m := NewShardMonitor(net, NewTimeout(msDur(4)), shardMonCfg(1, 5), ctr)

	net.step(ms(10), 100*simtime.Microsecond)
	// Deliver a heartbeat to node 1, which is not the aggregator.
	m.foldHeartbeat(1, Heartbeat{Node: 2, Seq: 1, SentAt: net.now})
	if ctr.Get("det.hb_misaimed") != 1 {
		t.Fatalf("det.hb_misaimed = %d, want 1", ctr.Get("det.hb_misaimed"))
	}
}
