package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Stddev()-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", s.Stddev())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stddev() != 0 || s.N() != 0 {
		t.Fatal("empty series stats not zero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1", "mechanism", "size", "latency")
	tb.Row("CRAK", 64, 1.5)
	tb.Row("libckpt", 64, 3.25)
	tb.Note("sizes in MiB")
	out := tb.String()
	for _, want := range []string{"E1", "mechanism", "CRAK", "3.250", "sizes in MiB", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if tb.Cell(0, 0) != "CRAK" || tb.Cell(5, 5) != "" {
		t.Fatal("Cell accessor wrong")
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Row("xxxxxxxx", 1)
	tb.Row("y", 2)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// Column b must start at the same offset in both data rows.
	r1, r2 := lines[2], lines[3]
	if strings.Index(r1, "1") != strings.Index(r2, "2") {
		t.Fatalf("columns misaligned:\n%s", tb)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		3:        "3",
		3.5:      "3.500",
		12345.6:  "1.23e+04",
		0.000012: "1.2e-05",
		0:        "0",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("b", 2)
	c.Inc("a", 1)
	c.Inc("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("z") != 0 {
		t.Fatal("counter values")
	}
	if names := c.Names(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
	if !strings.Contains(c.String(), "b=5") {
		t.Fatalf("String = %q", c.String())
	}
}

// Property: Series.Mean is always within [Min, Max].
func TestQuickSeriesBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		any := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue // avoid float64 overflow in the running sums
			}
			s.Add(v)
			any = true
		}
		if !any {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("shared", 1)
				_ = c.Get("shared")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
}
