package trace

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.N != 100 {
		t.Fatalf("N = %d, want 100", s.N)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if s.P50 != 51 { // nearest-rank: index 50 of sorted 1..100
		t.Errorf("P50 = %v, want 51", s.P50)
	}
	if s.P99 != 100 {
		t.Errorf("P99 = %v, want 100", s.P99)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("Min/Max = %v/%v, want 1/100", s.Min, s.Max)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.N != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on empty = %v, want 0", q)
	}
}

// TestHistogramConcurrent exercises Observe/Snapshot/Quantile from many
// goroutines; run under -race this is the concurrency-safety check the
// pipelined shipping path relies on.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i))
				if i%50 == 0 {
					_ = h.Snapshot()
					_ = h.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := h.N(); n != workers*per {
		t.Fatalf("N = %d, want %d", n, workers*per)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Counters.Inc("acks", 3)
	m.Hist("publish_ms").Observe(2)
	m.Hist("publish_ms").Observe(4)

	snap := m.Snapshot()
	if snap.Counters["acks"] != 3 {
		t.Errorf("counter acks = %d, want 3", snap.Counters["acks"])
	}
	hs, ok := snap.Hists["publish_ms"]
	if !ok {
		t.Fatalf("missing publish_ms histogram in snapshot")
	}
	if hs.N != 2 || hs.Mean != 3 || hs.Max != 4 {
		t.Errorf("publish_ms snapshot = %+v, want N=2 Mean=3 Max=4", hs)
	}
	// Same name returns the same histogram.
	if m.Hist("publish_ms") != m.Hist("publish_ms") {
		t.Errorf("Hist not idempotent for the same name")
	}
	if s := snap.String(); s == "" {
		t.Errorf("snapshot String empty")
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	c := NewCounters()
	c.Inc("x", 1)
	snap := c.Snapshot()
	snap["x"] = 99
	if got := c.Get("x"); got != 1 {
		t.Fatalf("snapshot mutated live counters: x = %d, want 1", got)
	}
}
