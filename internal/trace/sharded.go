// Sharded counters: the fleet-scale control plane runs one event loop
// per shard, and a single mutex-protected Counters instance would
// serialize every loop on one lock (and make counter cache lines the
// hottest memory in the process). ShardedCounters gives each shard its
// own Counters so a shard loop only ever touches shard-local state;
// readers merge on demand. The merged view is deterministic: summing is
// order-independent, and Counters renders names sorted.

package trace

import "fmt"

// ShardedCounters is a set of per-shard Counters with a merged read
// side. Writers use Shard(i) (no cross-shard contention); readers use
// Get/Merged/String, which sum across shards.
type ShardedCounters struct {
	shards []*Counters
}

// NewShardedCounters returns n independent counter shards.
func NewShardedCounters(n int) *ShardedCounters {
	if n <= 0 {
		panic(fmt.Sprintf("trace: ShardedCounters needs n >= 1, got %d", n))
	}
	s := &ShardedCounters{shards: make([]*Counters, n)}
	for i := range s.shards {
		s.shards[i] = NewCounters()
	}
	return s
}

// NumShards returns the shard count.
func (s *ShardedCounters) NumShards() int { return len(s.shards) }

// Shard returns shard i's private Counters. Each shard loop must only
// write through its own slot.
func (s *ShardedCounters) Shard(i int) *Counters { return s.shards[i] }

// Get returns the value of name summed across all shards.
func (s *ShardedCounters) Get(name string) int64 {
	var total int64
	for _, c := range s.shards {
		total += c.Get(name)
	}
	return total
}

// Merged returns a fresh Counters holding the per-name sums across all
// shards — a consistent snapshot for digests and reports.
func (s *ShardedCounters) Merged() *Counters {
	out := NewCounters()
	for _, c := range s.shards {
		for name, v := range c.Snapshot() {
			out.Inc(name, v)
		}
	}
	return out
}

// String renders the merged view (sorted by name, one per line).
func (s *ShardedCounters) String() string { return s.Merged().String() }
