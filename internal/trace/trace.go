// Package trace provides the experiment-output plumbing: counters,
// simple online statistics, and aligned text tables in the style of the
// paper's Table 1, used by cmd/crbench and the bench harness to print
// reproducible rows.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Series accumulates scalar observations with online mean/min/max.
type Series struct {
	n        int
	sum, sq  float64
	min, max float64
}

// Add records one observation.
func (s *Series) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sq += v * v
}

// N returns the observation count.
func (s *Series) N() int { return s.n }

// Mean returns the mean (0 when empty).
func (s *Series) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation.
func (s *Series) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Series) Max() float64 { return s.max }

// Stddev returns the population standard deviation.
func (s *Series) Stddev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Table renders aligned columns with a header rule, matching the visual
// style of the paper's Table 1.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends one row; values are rendered with %v, floats compactly.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (math.Abs(v) < 0.001 && v != 0):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	for i, h := range t.headers {
		width[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if n := len([]rune(c)); n > width[i] {
				width[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			pad := width[i] - len([]rune(c))
			b.WriteString(c)
			if i < ncol-1 {
				b.WriteString(strings.Repeat(" ", pad+2))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns a rendered cell (row, col), empty when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// Counters is an ordered string→int64 counter map. It is safe for
// concurrent use: one counter set is shared across the supervisor,
// storage, network, and detector paths, and parallel tests (and the race
// detector) exercise it from multiple goroutines.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns a counter's value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns the counter names sorted.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a point-in-time copy of every counter.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders "name=value" lines.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%s=%d\n", n, c.Get(n))
	}
	return b.String()
}
