// Histograms for latency-shaped observations. Counters answer "how
// often"; the bench and the pipelined shipping path also need "how slow
// at the tail", which a mean cannot show — a publish path that is fast
// at p50 and terrible at p99 is exactly the behaviour a bounded
// in-flight queue exists to expose. Histogram stores raw observations
// (runs here are small enough that a reservoir would only add noise) and
// computes quantiles on demand; Snapshot gives experiments and crbench a
// stable struct to read instead of poking rendered counter strings.

package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Histogram accumulates float64 observations and reports quantiles.
// It is safe for concurrent use.
type Histogram struct {
	mu   sync.Mutex
	vals []float64
	sum  float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.vals = append(h.vals, v)
	h.sum += v
	h.mu.Unlock()
}

// N returns the observation count.
func (h *Histogram) N() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank on the
// sorted observations, or 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileLocked(h.vals, q)
}

func quantileLocked(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Snapshot returns a consistent point-in-time summary.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistSnapshot{N: len(h.vals)}
	if snap.N == 0 {
		return snap
	}
	snap.Mean = h.sum / float64(snap.N)
	snap.P50 = quantileLocked(h.vals, 0.50)
	snap.P99 = quantileLocked(h.vals, 0.99)
	snap.Min = quantileLocked(h.vals, 0)
	snap.Max = quantileLocked(h.vals, 1)
	return snap
}

// HistSnapshot is a point-in-time histogram summary.
type HistSnapshot struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		s.N, formatFloat(s.Mean), formatFloat(s.P50), formatFloat(s.P99), formatFloat(s.Max))
}

// Metrics bundles one Counters set with named histograms, so a subsystem
// can hand a single handle to both its event counts and its latency
// distributions. The zero value is not usable; use NewMetrics.
type Metrics struct {
	Counters *Counters

	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewMetrics returns an empty metrics bundle.
func NewMetrics() *Metrics {
	return &Metrics{Counters: NewCounters(), hists: make(map[string]*Histogram)}
}

// NewMetricsWith returns a bundle whose counters are the given (shared)
// set — for subsystems that already publish counts somewhere and only
// need histograms layered on top. A nil c gets a fresh set.
func NewMetricsWith(c *Counters) *Metrics {
	if c == nil {
		c = NewCounters()
	}
	return &Metrics{Counters: c, hists: make(map[string]*Histogram)}
}

// Hist returns the named histogram, creating it on first use.
func (m *Metrics) Hist(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = NewHistogram()
		m.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time view of a Metrics bundle: every
// counter value and every histogram summary, keyed by name.
type MetricsSnapshot struct {
	Counters map[string]int64        `json:"counters"`
	Hists    map[string]HistSnapshot `json:"hists"`
}

// Snapshot captures every counter and histogram at once.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{Counters: m.Counters.Snapshot(), Hists: make(map[string]HistSnapshot)}
	m.mu.Lock()
	names := make([]string, 0, len(m.hists))
	for n := range m.hists {
		names = append(names, n)
	}
	hs := make([]*Histogram, 0, len(names))
	for _, n := range names {
		hs = append(hs, m.hists[n])
	}
	m.mu.Unlock()
	for i, n := range names {
		snap.Hists[n] = hs[i].Snapshot()
	}
	return snap
}

// String renders the snapshot with sorted keys (stable for logs).
func (s MetricsSnapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s: %s\n", n, s.Hists[n])
	}
	return b.String()
}
