// Package workload provides the simulated applications the experiments
// checkpoint: synthetic programs spanning the write-density and locality
// space that determines incremental-checkpointing effectiveness (the paper
// cites [31]: "the reduction in the size of the checkpoint data depends
// strongly on the application").
//
// Every workload obeys the kernel.Program contract: the Program value is
// stateless and all mutable state lives in simulated registers and memory.
// Pseudo-random access patterns are derived by hashing (seed, counter), so
// a restarted process replays exactly the same accesses — this is what
// makes restart-equivalence testable.
//
// Register conventions (proc.Regs.G):
//
//	PC   iteration counter
//	G[1] iteration limit (0 = run forever)
//	G[3] running result checksum (the workload's observable output)
//	G[4] phase / program-specific scratch
package workload

import (
	"fmt"

	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
)

// ArenaBase is where every workload maps its working set.
const ArenaBase = mem.Addr(0x1000_0000)

// ArenaName is the VMA name of the working set.
const ArenaName = "arena"

// ScratchBase is where region-annotated workloads map their scratch
// buffer — per-iteration temporaries the program recomputes from the
// arena after any restart, declared RegionExclude so captures skip them.
const ScratchBase = mem.Addr(0x2000_0000)

// ScratchName is the VMA name of the scratch buffer.
const ScratchName = "scratch"

// ScratchBytes is the scratch buffer size (16 pages).
const ScratchBytes = 16 << mem.PageShift

// Fingerprint returns the workload's observable result: the running
// checksum register. Two executions are equivalent iff their fingerprints
// (and exit codes) match.
func Fingerprint(p *proc.Process) uint64 { return p.Regs().G[3] }

// SetIterations overrides the iteration limit of a freshly spawned
// workload process.
func SetIterations(p *proc.Process, n uint64) { p.Regs().G[1] = n }

// splitmix64 is the stateless PRNG used to derive access patterns from
// (seed, counter) without any hidden mutable state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mixChecksum folds v into the running checksum register.
func mixChecksum(r *proc.Regs, v uint64) { r.G[3] = splitmix64(r.G[3] ^ v) }

// mapArena maps the working set and returns it.
func mapArena(ctx *kernel.Context, bytes uint64) error {
	if bytes == 0 || bytes%mem.PageSize != 0 {
		return fmt.Errorf("workload: arena size %d not page-aligned", bytes)
	}
	_, err := ctx.P.AS.Map(ArenaBase, bytes, mem.ProtRW, mem.KindAnon, ArenaName)
	return err
}

// declareRegions maps the scratch VMA and files the CRAFT-style region
// declarations with the kernel: the arena is RegionProtect (results live
// here — never liveness-excluded), the scratch buffer RegionExclude
// (recomputable — captures drop it entirely). Workloads opt in via
// their Regions flag; without it nothing here runs and behaviour is
// byte-identical to the pre-region workloads.
func declareRegions(ctx *kernel.Context, arenaBytes uint64) error {
	if _, err := ctx.P.AS.Map(ScratchBase, ScratchBytes, mem.ProtRW, mem.KindAnon, ScratchName); err != nil {
		return err
	}
	if err := ctx.CheckpointRegion(proc.CkptRegion{
		Start: ArenaBase, Length: int(arenaBytes), Policy: proc.RegionProtect,
	}); err != nil {
		return err
	}
	return ctx.CheckpointRegion(proc.CkptRegion{
		Start: ScratchBase, Length: ScratchBytes, Policy: proc.RegionExclude,
	})
}

// scratchStep dirties one scratch page. The content is derived from the
// tag but deliberately not folded into the checksum: scratch is
// recomputable state, so the observable output — and therefore the
// fingerprint — is identical whether or not regions are enabled.
func scratchStep(ctx *kernel.Context, tag uint64) error {
	var buf [mem.PageSize]byte
	pageBuf(buf[:], tag)
	pg := tag % (ScratchBytes >> mem.PageShift)
	return ctx.Store(ScratchBase+mem.Addr(pg<<mem.PageShift), buf[:])
}

// pageBuf fills a page-sized buffer with content derived from tag, so
// that pages written in different iterations differ.
func pageBuf(buf []byte, tag uint64) {
	v := splitmix64(tag)
	for i := 0; i < len(buf); i += 8 {
		v = splitmix64(v)
		for j := 0; j < 8 && i+j < len(buf); j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
}

// cyclesPerPage is the simulated compute cost per page processed,
// approximating a memory-bound scientific kernel (~2.5 GB/s touch rate on
// the 2005 reference CPU).
const cyclesPerPage = 3000

// Dense sweeps the whole arena every iteration, writing every page: the
// worst case for incremental checkpointing (delta ≈ full size).
type Dense struct {
	MiB          int    // working-set size
	Iterations   uint64 // default iteration limit (0 = forever)
	PagesPerStep int    // pages processed per Step (default 64)
	// Regions opts into the declarative checkpoint-region API: a scratch
	// VMA is mapped and declared RegionExclude, the arena RegionProtect.
	Regions bool
}

// Name implements kernel.Program.
func (d Dense) Name() string {
	if d.Regions {
		return fmt.Sprintf("dense[mib=%d,regions]", d.MiB)
	}
	return fmt.Sprintf("dense[mib=%d]", d.MiB)
}

func (d Dense) pagesPerStep() int {
	if d.PagesPerStep <= 0 {
		return 64
	}
	return d.PagesPerStep
}

// Init implements kernel.Program.
func (d Dense) Init(ctx *kernel.Context) error {
	ctx.Regs().G[1] = d.Iterations
	if err := mapArena(ctx, uint64(d.MiB)<<20); err != nil {
		return err
	}
	if d.Regions {
		return declareRegions(ctx, uint64(d.MiB)<<20)
	}
	return nil
}

// Step implements kernel.Program. G[4] holds the sweep position (page
// index); PC counts completed sweeps.
func (d Dense) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	totalPages := uint64(d.MiB) << 20 >> mem.PageShift
	var buf [mem.PageSize]byte
	n := d.pagesPerStep()
	for i := 0; i < n; i++ {
		pg := r.G[4]
		pageBuf(buf[:], r.PC<<32|pg)
		if err := ctx.Store(ArenaBase+mem.Addr(pg<<mem.PageShift), buf[:]); err != nil {
			return kernel.StatusExited, err
		}
		ctx.Compute(cyclesPerPage)
		mixChecksum(r, r.PC<<32|pg)
		r.G[4]++
		if r.G[4] >= totalPages {
			r.G[4] = 0
			r.PC++
			break
		}
	}
	if d.Regions {
		if err := scratchStep(ctx, r.PC<<32|r.G[4]); err != nil {
			return kernel.StatusExited, err
		}
	}
	return kernel.StatusRunning, nil
}

// Sparse writes a pseudo-random fraction of the arena's pages per
// iteration: the regime where incremental checkpointing wins.
type Sparse struct {
	MiB          int
	WriteFrac    float64 // fraction of pages written per iteration (0..1]
	Seed         uint64
	Iterations   uint64
	PagesPerStep int
	// Regions opts into the declarative checkpoint-region API (see Dense).
	Regions bool
}

// Name implements kernel.Program.
func (s Sparse) Name() string {
	if s.Regions {
		return fmt.Sprintf("sparse[mib=%d,frac=%.3f,seed=%d,regions]", s.MiB, s.WriteFrac, s.Seed)
	}
	return fmt.Sprintf("sparse[mib=%d,frac=%.3f,seed=%d]", s.MiB, s.WriteFrac, s.Seed)
}

func (s Sparse) pagesPerStep() int {
	if s.PagesPerStep <= 0 {
		return 64
	}
	return s.PagesPerStep
}

// Init implements kernel.Program.
func (s Sparse) Init(ctx *kernel.Context) error {
	if s.WriteFrac <= 0 || s.WriteFrac > 1 {
		return fmt.Errorf("workload: WriteFrac %v out of (0,1]", s.WriteFrac)
	}
	ctx.Regs().G[1] = s.Iterations
	if err := mapArena(ctx, uint64(s.MiB)<<20); err != nil {
		return err
	}
	if s.Regions {
		return declareRegions(ctx, uint64(s.MiB)<<20)
	}
	return nil
}

// Step implements kernel.Program. G[4] counts writes within the current
// iteration; target pages derive from splitmix64(seed, PC, G[4]).
func (s Sparse) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	totalPages := uint64(s.MiB) << 20 >> mem.PageShift
	writesPerIter := uint64(float64(totalPages) * s.WriteFrac)
	if writesPerIter == 0 {
		writesPerIter = 1
	}
	var buf [mem.PageSize]byte
	for i := 0; i < s.pagesPerStep(); i++ {
		if r.G[4] >= writesPerIter {
			r.G[4] = 0
			r.PC++
			return kernel.StatusRunning, nil
		}
		pg := splitmix64(s.Seed^r.PC<<20^r.G[4]) % totalPages
		pageBuf(buf[:], r.PC<<32|pg)
		if err := ctx.Store(ArenaBase+mem.Addr(pg<<mem.PageShift), buf[:]); err != nil {
			return kernel.StatusExited, err
		}
		ctx.Compute(cyclesPerPage)
		mixChecksum(r, pg)
		r.G[4]++
	}
	if s.Regions {
		if err := scratchStep(ctx, r.PC<<32|r.G[4]); err != nil {
			return kernel.StatusExited, err
		}
	}
	return kernel.StatusRunning, nil
}

// Stencil models a 2-D Jacobi iteration: two grids, reads one, writes the
// other, alternating — per-iteration delta is exactly half the arena, with
// strong spatial locality. This approximates the SAGE/Sweep3D-class codes
// of [31].
type Stencil struct {
	MiB          int // total arena (two grids of MiB/2 each)
	Iterations   uint64
	PagesPerStep int
}

// Name implements kernel.Program.
func (s Stencil) Name() string { return fmt.Sprintf("stencil[mib=%d]", s.MiB) }

func (s Stencil) pagesPerStep() int {
	if s.PagesPerStep <= 0 {
		return 64
	}
	return s.PagesPerStep
}

// Init implements kernel.Program.
func (s Stencil) Init(ctx *kernel.Context) error {
	ctx.Regs().G[1] = s.Iterations
	return mapArena(ctx, uint64(s.MiB)<<20)
}

// Step implements kernel.Program. Even PC writes grid B (second half)
// reading grid A; odd PC writes grid A. G[4] is the page cursor within
// the destination grid.
func (s Stencil) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	gridPages := (uint64(s.MiB) << 20 >> mem.PageShift) / 2
	if gridPages == 0 {
		gridPages = 1
	}
	srcBase, dstBase := ArenaBase, ArenaBase+mem.Addr(gridPages<<mem.PageShift)
	if r.PC%2 == 1 {
		srcBase, dstBase = dstBase, srcBase
	}
	var in, out [mem.PageSize]byte
	for i := 0; i < s.pagesPerStep(); i++ {
		pg := r.G[4]
		if err := ctx.Load(srcBase+mem.Addr(pg<<mem.PageShift), in[:]); err != nil {
			return kernel.StatusExited, err
		}
		// "Relax": derive output from input plus iteration tag.
		for j := 0; j < mem.PageSize; j += 8 {
			out[j] = in[j] + byte(r.PC)
		}
		if err := ctx.Store(dstBase+mem.Addr(pg<<mem.PageShift), out[:]); err != nil {
			return kernel.StatusExited, err
		}
		ctx.Compute(2 * cyclesPerPage)
		mixChecksum(r, uint64(out[0])<<32|pg)
		r.G[4]++
		if r.G[4] >= gridPages {
			r.G[4] = 0
			r.PC++
			break
		}
	}
	return kernel.StatusRunning, nil
}

// PointerChase reads pseudo-randomly across the arena and writes rarely:
// the best case for incremental checkpointing (tiny deltas), with poor
// locality for hardware line-logging.
type PointerChase struct {
	MiB          int
	WriteEvery   uint64 // one write per this many reads (default 64)
	Seed         uint64
	Iterations   uint64
	ReadsPerStep int
}

// Name implements kernel.Program.
func (p PointerChase) Name() string {
	return fmt.Sprintf("chase[mib=%d,we=%d,seed=%d]", p.MiB, p.writeEvery(), p.Seed)
}

func (p PointerChase) writeEvery() uint64 {
	if p.WriteEvery == 0 {
		return 64
	}
	return p.WriteEvery
}

func (p PointerChase) readsPerStep() int {
	if p.ReadsPerStep <= 0 {
		return 256
	}
	return p.ReadsPerStep
}

// Init implements kernel.Program.
func (p PointerChase) Init(ctx *kernel.Context) error {
	ctx.Regs().G[1] = p.Iterations
	return mapArena(ctx, uint64(p.MiB)<<20)
}

// Step implements kernel.Program; one iteration = one read (plus an
// occasional write), so limits here are counts of accesses.
func (p PointerChase) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	size := uint64(p.MiB) << 20
	for i := 0; i < p.readsPerStep(); i++ {
		if r.G[1] != 0 && r.PC >= r.G[1] {
			ctx.Exit(0)
			return kernel.StatusExited, nil
		}
		addr := ArenaBase + mem.Addr(splitmix64(p.Seed^r.PC)%(size-8))
		v, err := ctx.Load8(addr)
		if err != nil {
			return kernel.StatusExited, err
		}
		mixChecksum(r, v^r.PC)
		if r.PC%p.writeEvery() == 0 {
			if err := ctx.Store8(addr, r.G[3]); err != nil {
				return kernel.StatusExited, err
			}
		}
		ctx.Compute(400)
		r.PC++
	}
	return kernel.StatusRunning, nil
}

// Phased alternates between a dense write phase and a read-mostly phase,
// exercising adaptive-interval and adaptive-block-size policies with
// time-varying deltas.
type Phased struct {
	MiB          int
	PhaseIters   uint64 // iterations per phase (default 4)
	Seed         uint64
	Iterations   uint64
	PagesPerStep int
	// Regions opts into the declarative checkpoint-region API (see Dense).
	Regions bool
}

// Name implements kernel.Program.
func (p Phased) Name() string {
	if p.Regions {
		return fmt.Sprintf("phased[mib=%d,seed=%d,regions]", p.MiB, p.Seed)
	}
	return fmt.Sprintf("phased[mib=%d,seed=%d]", p.MiB, p.Seed)
}

func (p Phased) phaseIters() uint64 {
	if p.PhaseIters == 0 {
		return 4
	}
	return p.PhaseIters
}

// Init implements kernel.Program.
func (p Phased) Init(ctx *kernel.Context) error {
	ctx.Regs().G[1] = p.Iterations
	if err := mapArena(ctx, uint64(p.MiB)<<20); err != nil {
		return err
	}
	if p.Regions {
		return declareRegions(ctx, uint64(p.MiB)<<20)
	}
	return nil
}

// Step implements kernel.Program by delegating to Dense- or Sparse-like
// behaviour depending on the phase.
func (p Phased) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	phase := (r.PC / p.phaseIters()) % 2
	totalPages := uint64(p.MiB) << 20 >> mem.PageShift
	var buf [mem.PageSize]byte
	n := p.PagesPerStep
	if n <= 0 {
		n = 64
	}
	for i := 0; i < n; i++ {
		var pg uint64
		if phase == 0 { // dense phase: sequential full sweep
			pg = r.G[4]
		} else { // quiet phase: touch 1/32 of pages
			pg = splitmix64(p.Seed^r.PC<<20^r.G[4]) % totalPages
		}
		pageBuf(buf[:], r.PC<<32|pg)
		if err := ctx.Store(ArenaBase+mem.Addr(pg<<mem.PageShift), buf[:]); err != nil {
			return kernel.StatusExited, err
		}
		ctx.Compute(cyclesPerPage)
		mixChecksum(r, pg^phase)
		r.G[4]++
		limit := totalPages
		if phase == 1 {
			limit = totalPages / 32
			if limit == 0 {
				limit = 1
			}
		}
		if r.G[4] >= limit {
			r.G[4] = 0
			r.PC++
			break
		}
	}
	if p.Regions {
		if err := scratchStep(ctx, r.PC<<32|r.G[4]); err != nil {
			return kernel.StatusExited, err
		}
	}
	return kernel.StatusRunning, nil
}
