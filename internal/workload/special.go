package workload

import (
	"fmt"

	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
)

// Spin is a pure-CPU background load generator (E4's competing processes).
type Spin struct {
	Tag        string
	Iterations uint64
}

// Name implements kernel.Program.
func (s Spin) Name() string { return "spin[" + s.Tag + "]" }

// Init implements kernel.Program.
func (s Spin) Init(ctx *kernel.Context) error {
	ctx.Regs().G[1] = s.Iterations
	return nil
}

// Step implements kernel.Program.
func (s Spin) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	ctx.Compute(100_000)
	mixChecksum(r, r.PC)
	r.PC++
	return kernel.StatusRunning, nil
}

// Hooked wraps a workload with a cooperative checkpoint point invoked
// every Every iterations of the inner program — the structure of
// library-based user-level checkpointing (libckpt's ckpt_here()) and of
// VMADump's self-invoked checkpoint system call.
type Hooked struct {
	Inner kernel.Program
	Label string
	Every uint64
	// Hook runs in process context at each checkpoint point.
	Hook func(ctx *kernel.Context) error
}

// Name implements kernel.Program.
func (h Hooked) Name() string { return h.Inner.Name() + "+hook:" + h.Label }

// Init implements kernel.Program.
func (h Hooked) Init(ctx *kernel.Context) error { return h.Inner.Init(ctx) }

// Step implements kernel.Program: it steps the inner program and fires
// the hook whenever the iteration counter crosses a multiple of Every.
// G[7] remembers the last iteration at which the hook fired.
func (h Hooked) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	every := h.Every
	if every == 0 {
		every = 10
	}
	if r.PC > 0 && r.PC%every == 0 && r.G[7] != r.PC && h.Hook != nil {
		r.G[7] = r.PC
		if err := h.Hook(ctx); err != nil {
			return kernel.StatusExited, err
		}
	}
	return h.Inner.Step(ctx)
}

// MultiThreaded runs N threads, each sweeping a private slice of the
// arena. The program round-robins threads internally (G[5] is the thread
// cursor); every thread's registers live in proc.Threads, so mechanisms
// that capture all threads (libtckpt, BLCR) restore it exactly, while
// single-threaded-only mechanisms must refuse it.
type MultiThreaded struct {
	MiB        int
	NThreads   int
	Iterations uint64 // per-thread sweep count
}

// Name implements kernel.Program.
func (m MultiThreaded) Name() string {
	return fmt.Sprintf("mt[mib=%d,threads=%d]", m.MiB, m.NThreads)
}

// Init implements kernel.Program.
func (m MultiThreaded) Init(ctx *kernel.Context) error {
	if m.NThreads < 2 {
		return fmt.Errorf("workload: MultiThreaded needs ≥2 threads, got %d", m.NThreads)
	}
	ctx.Regs().G[1] = m.Iterations
	for i := 1; i < m.NThreads; i++ {
		ctx.P.AddThread()
	}
	return mapArena(ctx, uint64(m.MiB)<<20)
}

// Step implements kernel.Program. Each call advances one thread by one
// page write. A thread's Regs.PC counts its completed pages; the main
// thread's G[1] is the per-thread page quota.
func (m MultiThreaded) Step(ctx *kernel.Context) (kernel.Status, error) {
	main := ctx.P.MainThread()
	quota := main.Regs.G[1]
	slicePages := (uint64(m.MiB) << 20 >> mem.PageShift) / uint64(m.NThreads)
	if slicePages == 0 {
		slicePages = 1
	}
	cursor := &main.Regs.G[5]
	allDone := true
	var buf [mem.PageSize]byte
	for range ctx.P.Threads {
		ti := *cursor % uint64(len(ctx.P.Threads))
		*cursor++
		th := ctx.P.Threads[ti]
		if quota != 0 && th.Regs.PC >= quota {
			continue
		}
		allDone = false
		pg := uint64(ti)*slicePages + th.Regs.PC%slicePages
		pageBuf(buf[:], th.Regs.PC<<32|pg)
		if err := ctx.Store(ArenaBase+mem.Addr(pg<<mem.PageShift), buf[:]); err != nil {
			return kernel.StatusExited, err
		}
		ctx.Compute(cyclesPerPage)
		// Fold per-thread progress into the shared checksum register.
		mixChecksum(&main.Regs, uint64(ti)<<48|th.Regs.PC<<12|pg)
		th.Regs.PC++
		break
	}
	if allDone && quota != 0 {
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	return kernel.StatusRunning, nil
}

// Exit codes ResourceUser uses to report which kernel-persistent resource
// was lost across a restart (the E9 matrix reads these).
const (
	ExitOK         = 0
	ExitSocketLost = 42
	ExitPIDChanged = 43
	ExitShmLost    = 44
)

// ResourceUser exercises the kernel-persistent state of §3: it opens a
// socket, attaches a shared-memory segment, and records its PID in
// memory, then periodically validates all three. A restart that fails to
// virtualize these resources makes the program exit with the matching
// code above.
type ResourceUser struct {
	MiB        int
	Iterations uint64
	UseSocket  bool
	UseShm     bool
	CheckPID   bool
}

// Name implements kernel.Program.
func (u ResourceUser) Name() string {
	return fmt.Sprintf("resuser[sock=%t,shm=%t,pid=%t]", u.UseSocket, u.UseShm, u.CheckPID)
}

// Init implements kernel.Program. G[5] = socket id, G[6] = shm address;
// the PID is stored at the start of the arena.
func (u ResourceUser) Init(ctx *kernel.Context) error {
	mib := u.MiB
	if mib == 0 {
		mib = 1
	}
	if err := mapArena(ctx, uint64(mib)<<20); err != nil {
		return err
	}
	r := ctx.Regs()
	r.G[1] = u.Iterations
	if u.UseSocket {
		r.G[5] = uint64(ctx.SocketOpen("server:9000"))
	}
	if u.UseShm {
		addr, err := ctx.ShmAttach("resuser-seg", 4*mem.PageSize)
		if err != nil {
			return err
		}
		r.G[6] = uint64(addr)
	}
	if u.CheckPID {
		if err := ctx.Store8(ArenaBase, uint64(ctx.GetPID())); err != nil {
			return err
		}
	}
	return nil
}

// Step implements kernel.Program: compute, write a page, validate
// resources every 8 iterations.
func (u ResourceUser) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.Exit(ExitOK)
		return kernel.StatusExited, nil
	}
	var buf [mem.PageSize]byte
	pageBuf(buf[:], r.PC)
	mib := u.MiB
	if mib == 0 {
		mib = 1
	}
	// Page 0 holds the stored PID; the write loop cycles over the rest.
	totalPages := uint64(mib) << 20 >> mem.PageShift
	pg := 1 + r.PC%(totalPages-1)
	if err := ctx.Store(ArenaBase+mem.Addr(pg<<mem.PageShift), buf[:]); err != nil {
		return kernel.StatusExited, err
	}
	ctx.Compute(cyclesPerPage)
	mixChecksum(r, r.PC)
	if r.PC%8 == 7 {
		if u.UseSocket {
			if err := ctx.SocketPing(int(r.G[5])); err != nil {
				ctx.Exit(ExitSocketLost)
				return kernel.StatusExited, nil
			}
		}
		if u.CheckPID {
			stored, err := ctx.Load8(ArenaBase)
			if err != nil {
				return kernel.StatusExited, err
			}
			if stored != uint64(ctx.GetPID()) {
				ctx.Exit(ExitPIDChanged)
				return kernel.StatusExited, nil
			}
		}
		if u.UseShm {
			if !ctx.K.ShmExists("resuser-seg") {
				ctx.Exit(ExitShmLost)
				return kernel.StatusExited, nil
			}
		}
	}
	r.PC++
	return kernel.StatusRunning, nil
}

// Allocator spends alternate steps inside a non-reentrant heap function
// (the process's InNonReentrant flag stays set across the step boundary),
// modeling a malloc-heavy application. Signal-handler checkpointers whose
// handlers also use malloc deadlock against it (§3).
type Allocator struct {
	MiB        int
	Iterations uint64
}

// Name implements kernel.Program.
func (a Allocator) Name() string { return fmt.Sprintf("alloc[mib=%d]", a.MiB) }

// Init implements kernel.Program.
func (a Allocator) Init(ctx *kernel.Context) error {
	ctx.Regs().G[1] = a.Iterations
	mib := a.MiB
	if mib == 0 {
		mib = 1
	}
	return mapArena(ctx, uint64(mib)<<20)
}

// Step implements kernel.Program. Even iterations run inside the
// non-reentrant section; the flag is cleared at the start of the next
// step, so a signal delivered between steps observes it.
func (a Allocator) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.NonReentrantExit()
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	if r.PC%2 == 0 {
		ctx.NonReentrantEnter()
		// Heap work: grow and shrink the break.
		if _, err := ctx.Sbrk(mem.PageSize); err != nil {
			return kernel.StatusExited, err
		}
		if _, err := ctx.Sbrk(-mem.PageSize); err != nil {
			return kernel.StatusExited, err
		}
	} else {
		ctx.NonReentrantExit()
	}
	var buf [512]byte
	pageBuf(buf[:], r.PC)
	mib := a.MiB
	if mib == 0 {
		mib = 1
	}
	pg := r.PC % (uint64(mib) << 20 >> mem.PageShift)
	if err := ctx.Store(ArenaBase+mem.Addr(pg<<mem.PageShift), buf[:]); err != nil {
		return kernel.StatusExited, err
	}
	ctx.Compute(20_000)
	mixChecksum(r, r.PC)
	r.PC++
	return kernel.StatusRunning, nil
}
