package workload

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
)

func runKernel(t *testing.T, progs ...kernel.Program) *kernel.Kernel {
	t.Helper()
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return kernel.New(kernel.DefaultConfig("w0"), costmodel.Default2005(), reg)
}

func spawnAndFinish(t *testing.T, k *kernel.Kernel, name string, budget simtime.Duration) *proc.Process {
	t.Helper()
	p, err := k.Spawn(name)
	if err != nil {
		t.Fatal(err)
	}
	if !k.RunUntilExit(p, k.Now().Add(budget)) {
		t.Fatalf("%s did not finish in %v (state %v, pc %d)", name, budget, p.State, p.Regs().PC)
	}
	return p
}

func TestDenseCompletesAndDirtiesWholeArena(t *testing.T) {
	w := Dense{MiB: 1, Iterations: 2}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	if p.ExitCode != 0 {
		t.Fatalf("exit %d", p.ExitCode)
	}
	arena := p.AS.FindByName(ArenaName)
	if arena == nil {
		t.Fatal("no arena")
	}
	if got, want := arena.ResidentPages(), 256; got != want {
		t.Fatalf("resident pages %d, want %d (1 MiB)", got, want)
	}
	if Fingerprint(p) == 0 {
		t.Fatal("zero fingerprint")
	}
}

func TestDenseDeterministicFingerprint(t *testing.T) {
	w := Dense{MiB: 1, Iterations: 3}
	k1 := runKernel(t, w)
	k2 := runKernel(t, w)
	p1 := spawnAndFinish(t, k1, w.Name(), simtime.Minute)
	p2 := spawnAndFinish(t, k2, w.Name(), simtime.Minute)
	if Fingerprint(p1) != Fingerprint(p2) {
		t.Fatal("fingerprints differ across identical runs")
	}
	if p1.AS.Checksum() != p2.AS.Checksum() {
		t.Fatal("memory images differ across identical runs")
	}
}

func TestSparseDirtyFraction(t *testing.T) {
	w := Sparse{MiB: 4, WriteFrac: 0.1, Seed: 1, Iterations: 1}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	arena := p.AS.FindByName(ArenaName)
	total := arena.NumPages()
	resident := arena.ResidentPages()
	// ~10% of pages written (collisions allowed), never more than requested.
	if resident > total/10+1 || resident < total/20 {
		t.Fatalf("resident %d of %d pages, want ≈10%%", resident, total)
	}
}

func TestSparseRejectsBadFrac(t *testing.T) {
	for _, frac := range []float64{0, -0.5, 1.5} {
		w := Sparse{MiB: 1, WriteFrac: frac, Iterations: 1}
		reg := kernel.NewRegistry()
		reg.MustRegister(w)
		k := kernel.New(kernel.DefaultConfig("w"), costmodel.Default2005(), reg)
		if _, err := k.Spawn(w.Name()); err == nil {
			t.Fatalf("WriteFrac %v accepted", frac)
		}
	}
}

func TestStencilAlternatesGrids(t *testing.T) {
	w := Stencil{MiB: 2, Iterations: 2}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	arena := p.AS.FindByName(ArenaName)
	// After two iterations both grids were written once each.
	if arena.ResidentPages() != arena.NumPages() {
		t.Fatalf("resident %d of %d", arena.ResidentPages(), arena.NumPages())
	}
	// Per-iteration dirty set is one grid = half the arena.
	p.AS.ClearDirty()
	p2, _ := k.Spawn(w.Name())
	_ = p2
}

func TestStencilPerIterationDelta(t *testing.T) {
	w := Stencil{MiB: 2, Iterations: 4}
	k := runKernel(t, w)
	p, err := k.Spawn(w.Name())
	if err != nil {
		t.Fatal(err)
	}
	// Run until iteration 1 completes, then measure iteration 2's dirty set.
	for p.Regs().PC < 1 && p.State != proc.StateZombie {
		k.RunFor(100 * simtime.Microsecond)
	}
	p.AS.ClearDirty()
	start := p.Regs().PC
	for p.Regs().PC == start && p.State != proc.StateZombie {
		k.RunFor(100 * simtime.Microsecond)
	}
	if p.State == proc.StateZombie {
		t.Fatal("workload finished before the measurement window")
	}
	dirty := len(p.AS.DirtyPages(false))
	arena := p.AS.FindByName(ArenaName)
	half := arena.NumPages() / 2
	if dirty < half-2 || dirty > half+2 {
		t.Fatalf("per-iteration dirty = %d pages, want ≈%d (one grid)", dirty, half)
	}
}

func TestPointerChaseWritesRarely(t *testing.T) {
	w := PointerChase{MiB: 2, WriteEvery: 128, Seed: 3, Iterations: 2048}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	dirty := len(p.AS.DirtyPages(false))
	// 2048 accesses / 128 = 16 writes max (some may collide on a page).
	if dirty > 17 {
		t.Fatalf("dirty = %d pages, want ≤17", dirty)
	}
	if dirty == 0 {
		t.Fatal("no writes at all")
	}
}

func TestPhasedVariesDelta(t *testing.T) {
	w := Phased{MiB: 2, PhaseIters: 2, Seed: 5, Iterations: 8}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	if p.ExitCode != 0 || Fingerprint(p) == 0 {
		t.Fatalf("exit %d fp %d", p.ExitCode, Fingerprint(p))
	}
}

func TestSpinPureCompute(t *testing.T) {
	w := Spin{Tag: "t", Iterations: 100}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	// Only the text-stamp page the kernel wrote at exec time is resident.
	if p.AS.ResidentBytes() > mem.PageSize {
		t.Fatalf("spin touched memory: %d resident bytes", p.AS.ResidentBytes())
	}
	if p.CPUTime == 0 {
		t.Fatal("spin burned no CPU")
	}
}

func TestHookedFiresAtBoundaries(t *testing.T) {
	var fired []uint64
	w := Hooked{
		Inner: Dense{MiB: 1, Iterations: 9},
		Label: "test",
		Every: 3,
		Hook: func(ctx *kernel.Context) error {
			fired = append(fired, ctx.Regs().PC)
			return nil
		},
	}
	k := runKernel(t, w)
	spawnAndFinish(t, k, w.Name(), simtime.Minute)
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("hook fired at %v, want [3 6 9]", fired)
	}
}

func TestMultiThreadedProgress(t *testing.T) {
	w := MultiThreaded{MiB: 1, NThreads: 4, Iterations: 32}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	if len(p.Threads) != 4 {
		t.Fatalf("threads = %d", len(p.Threads))
	}
	for i, th := range p.Threads {
		if th.Regs.PC != 32 {
			t.Fatalf("thread %d pc = %d, want 32", i, th.Regs.PC)
		}
	}
	if !p.Multithreaded() {
		t.Fatal("not flagged multithreaded")
	}
}

func TestMultiThreadedRequiresTwoThreads(t *testing.T) {
	w := MultiThreaded{MiB: 1, NThreads: 1}
	reg := kernel.NewRegistry()
	reg.MustRegister(w)
	k := kernel.New(kernel.DefaultConfig("w"), costmodel.Default2005(), reg)
	if _, err := k.Spawn(w.Name()); err == nil {
		t.Fatal("1-thread MultiThreaded accepted")
	}
}

func TestResourceUserHappyPath(t *testing.T) {
	w := ResourceUser{MiB: 1, Iterations: 40, UseSocket: true, UseShm: true, CheckPID: true}
	k := runKernel(t, w)
	p := spawnAndFinish(t, k, w.Name(), simtime.Minute)
	if p.ExitCode != ExitOK {
		t.Fatalf("exit %d, want OK", p.ExitCode)
	}
}

func TestResourceUserDetectsLostSocket(t *testing.T) {
	w := ResourceUser{MiB: 1, Iterations: 0, UseSocket: true}
	k := runKernel(t, w)
	p, _ := k.Spawn(w.Name())
	k.RunFor(100 * simtime.Microsecond)
	// Sever the connection behind the program's back.
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	ctx.SocketClose(int(p.Regs().G[5]))
	k.RunUntilExit(p, k.Now().Add(simtime.Minute))
	if p.ExitCode != ExitSocketLost {
		t.Fatalf("exit %d, want ExitSocketLost", p.ExitCode)
	}
}

func TestResourceUserDetectsPIDChange(t *testing.T) {
	w := ResourceUser{MiB: 1, Iterations: 0, CheckPID: true}
	k := runKernel(t, w)
	p, _ := k.Spawn(w.Name())
	k.RunFor(100 * simtime.Microsecond)
	// Simulate a restart that did not preserve the PID: the stored value
	// no longer matches getpid().
	if err := p.AS.WriteDirect(ArenaBase, []byte{0xFF, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilExit(p, k.Now().Add(simtime.Minute))
	if p.ExitCode != ExitPIDChanged {
		t.Fatalf("exit %d, want ExitPIDChanged", p.ExitCode)
	}
}

func TestAllocatorTogglesNonReentrant(t *testing.T) {
	// Drive steps directly so the flag is observable at exact boundaries:
	// after an even-PC step the process is inside the non-reentrant
	// section; the next (odd-PC) step clears it on entry.
	w := Allocator{MiB: 1, Iterations: 0}
	k := runKernel(t, w)
	p, _ := k.Spawn(w.Name())
	ctx := &kernel.Context{K: k, P: p, T: p.MainThread()}
	if _, err := w.Step(ctx); err != nil { // PC 0 (even)
		t.Fatal(err)
	}
	if !p.InNonReentrant {
		t.Fatal("flag not set after even step")
	}
	if _, err := w.Step(ctx); err != nil { // PC 1 (odd)
		t.Fatal(err)
	}
	if p.InNonReentrant {
		t.Fatal("flag not cleared after odd step")
	}
}

func TestSplitmixIsStateless(t *testing.T) {
	if splitmix64(42) != splitmix64(42) {
		t.Fatal("splitmix64 not a function")
	}
	if splitmix64(1) == splitmix64(2) {
		t.Fatal("suspicious collision")
	}
}

func TestPageBufVariesWithTag(t *testing.T) {
	a := make([]byte, mem.PageSize)
	b := make([]byte, mem.PageSize)
	pageBuf(a, 1)
	pageBuf(b, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pageBuf identical for different tags")
	}
}

func TestSuiteProfiles(t *testing.T) {
	progs := Suite(4)
	if len(progs) != 5 {
		t.Fatalf("suite has %d programs", len(progs))
	}
	names := map[string]bool{}
	for _, prog := range progs {
		if names[prog.Name()] {
			t.Fatalf("duplicate suite name %s", prog.Name())
		}
		names[prog.Name()] = true
	}
	// Every suite member runs and produces a fingerprint.
	for _, prog := range progs {
		k := runKernel(t, prog)
		p, err := k.Spawn(prog.Name())
		if err != nil {
			t.Fatal(err)
		}
		SetIterations(p, 4)
		if !k.RunUntilExit(p, k.Now().Add(simtime.Minute)) {
			t.Fatalf("%s stuck", prog.Name())
		}
		if Fingerprint(p) == 0 {
			t.Fatalf("%s produced no fingerprint", prog.Name())
		}
	}
}

func TestSuiteWriteDensityOrdering(t *testing.T) {
	// The suite's defining property: per-iteration dirty footprint orders
	// SAGE > Sweep3D > SP > NBody.
	dirtyFrac := func(prog kernel.Program) float64 {
		k := runKernel(t, prog)
		p, _ := k.Spawn(prog.Name())
		SetIterations(p, 1<<30)
		// Warm up one iteration, then measure one.
		for p.Regs().PC < 1 {
			k.RunFor(100 * simtime.Microsecond)
		}
		p.AS.ClearDirty()
		start := p.Regs().PC
		for p.Regs().PC == start {
			k.RunFor(100 * simtime.Microsecond)
		}
		arena := p.AS.FindByName(ArenaName)
		return float64(len(p.AS.DirtyPages(false))) / float64(arena.NumPages())
	}
	sage := dirtyFrac(SAGE(2))
	sweep := dirtyFrac(Sweep3D(2))
	sp := dirtyFrac(SP(2))
	nbody := dirtyFrac(NBodyClass(2))
	if !(sage > sweep && sweep > sp && sp > nbody) {
		t.Fatalf("density ordering broken: sage %.3f sweep %.3f sp %.3f nbody %.3f",
			sage, sweep, sp, nbody)
	}
}
