package workload

import "repro/internal/simos/kernel"

// Suite returns the named application profiles used throughout the
// experiments, modeled after the scientific codes of Sancho et al. [31]
// (the paper's own feasibility study): each is one of this package's
// synthetic kernels with parameters chosen to match the published
// write-footprint character of the real code.
//
//   - SAGE (hydro, adaptive mesh): large footprint, high write density —
//     incremental checkpointing saves little.
//   - Sweep3D (Sn transport): sweeping writes over half the working set
//     per iteration with strong locality.
//   - SP (NAS scalar penta-diagonal): moderate, scattered writes.
//   - FFT-class: phased — dense transform phases alternate with quiet
//     ones.
//   - N-body-class: large read-mostly structure, tiny deltas — the best
//     case for incremental checkpointing.
func Suite(mib int) []kernel.Program {
	if mib <= 0 {
		mib = 16
	}
	return []kernel.Program{
		SAGE(mib), Sweep3D(mib), SP(mib), FFTClass(mib), NBodyClass(mib),
	}
}

// SAGE models the adaptive-mesh hydro code's near-total per-iteration
// write footprint.
func SAGE(mib int) Dense { return Dense{MiB: mib} }

// Sweep3D models the Sn-transport sweep: half the arena rewritten per
// iteration with sequential locality.
func Sweep3D(mib int) Stencil { return Stencil{MiB: mib} }

// SP models the NAS SP-class solver: roughly a tenth of the pages
// rewritten per iteration, scattered.
func SP(mib int) Sparse { return Sparse{MiB: mib, WriteFrac: 0.1, Seed: 0x5B} }

// FFTClass models transform codes: bursts of dense writes separated by
// quiet phases.
func FFTClass(mib int) Phased { return Phased{MiB: mib, Seed: 0xFF7, PhaseIters: 2} }

// NBodyClass models tree-walk codes: wide reads, rare small writes.
func NBodyClass(mib int) PointerChase {
	return PointerChase{MiB: mib, WriteEvery: 128, Seed: 0xB0D7}
}
