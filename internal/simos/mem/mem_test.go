package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestAS(t *testing.T) *AddressSpace {
	t.Helper()
	as := NewAddressSpace()
	mustMap(t, as, 0x400000, 4*PageSize, ProtRX, KindText, "a.out")
	mustMap(t, as, 0x600000, 16*PageSize, ProtRW, KindHeap, "[heap]")
	mustMap(t, as, 0x7ff00000, 8*PageSize, ProtRW, KindStack, "[stack]")
	return as
}

func mustMap(t *testing.T, as *AddressSpace, start Addr, length uint64, prot Prot, kind VMAKind, name string) *VMA {
	t.Helper()
	v, err := as.Map(start, length, prot, kind, name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMapRejectsUnaligned(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(100, PageSize, ProtRW, KindAnon, ""); err == nil {
		t.Fatal("unaligned start accepted")
	}
	if _, err := as.Map(0, 100, ProtRW, KindAnon, ""); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if _, err := as.Map(0, 0, ProtRW, KindAnon, ""); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestMapRejectsOverlap(t *testing.T) {
	as := newTestAS(t)
	if _, err := as.Map(0x600000, PageSize, ProtRW, KindAnon, ""); err == nil {
		t.Fatal("exact overlap accepted")
	}
	if _, err := as.Map(0x5ff000, 2*PageSize, ProtRW, KindAnon, ""); err == nil {
		t.Fatal("partial overlap accepted")
	}
}

func TestMapAnywhereSkipsExisting(t *testing.T) {
	as := newTestAS(t)
	v, err := as.MapAnywhere(0x600000, 2*PageSize, ProtRW, KindAnon, "mmap")
	if err != nil {
		t.Fatal(err)
	}
	if v.Start != 0x600000+16*PageSize {
		t.Fatalf("MapAnywhere landed at %#x, want just after heap", uint64(v.Start))
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	as := newTestAS(t)
	msg := []byte("the quick brown fox")
	if err := as.Write(0x600010, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(0x600010, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

func TestWriteSpanningPages(t *testing.T) {
	as := newTestAS(t)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	addr := Addr(0x600000 + PageSize - 100) // crosses three pages
	if err := as.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestDemandZeroRead(t *testing.T) {
	as := newTestAS(t)
	buf := []byte{1, 2, 3, 4}
	if err := as.Read(0x600000, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want demand-zero 0", i, b)
		}
	}
	if as.ResidentBytes() != 0 {
		// Reads materialize the Page struct but not its data; data stays nil.
		// ResidentBytes counts Page structs, so one page is resident.
		t.Logf("resident after read: %d bytes", as.ResidentBytes())
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	as := newTestAS(t)
	err := as.Write(0x100, []byte{1})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %v", err)
	}
	if f.VMA != nil || f.Access != AccessWrite {
		t.Fatalf("fault = %+v", f)
	}
}

func TestWriteProtectedFaultsWithoutHandler(t *testing.T) {
	as := newTestAS(t)
	err := as.Write(0x400000, []byte{1}) // text is r-x
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %v", err)
	}
	if f.VMA == nil || f.VMA.Kind != KindText {
		t.Fatalf("fault VMA = %v", f.VMA)
	}
}

func TestFaultRetryTracksDirty(t *testing.T) {
	as := newTestAS(t)
	heap := as.FindByName("[heap]")
	as.ProtectVMA(heap, ProtRead) // write-protect for tracking
	var tracked []PageNum
	as.SetFaultHandler(func(f *Fault) Disposition {
		if f.Access != AccessWrite {
			return FaultFatal
		}
		tracked = append(tracked, f.Addr.Page())
		// Unprotect the single page and retry, as a kernel tracker would.
		if _, err := as.Protect(f.Addr.Page().Base(), PageSize, ProtRW); err != nil {
			t.Fatal(err)
		}
		return FaultRetry
	})
	if err := as.Write(0x600000, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(0x600001, []byte("y")); err != nil {
		t.Fatal(err) // second write to same page: no fault
	}
	if err := as.Write(0x600000+PageSize, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if len(tracked) != 2 {
		t.Fatalf("tracked %d pages, want 2 (one fault per first touch)", len(tracked))
	}
	if as.FaultCount() != 2 {
		t.Fatalf("FaultCount = %d, want 2", as.FaultCount())
	}
}

func TestFaultSignalAborts(t *testing.T) {
	as := newTestAS(t)
	heap := as.FindByName("[heap]")
	as.ProtectVMA(heap, ProtRead)
	as.SetFaultHandler(func(f *Fault) Disposition { return FaultSignal })
	err := as.Write(0x600000, []byte("x"))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault error, got %v", err)
	}
}

func TestFaultHandlerLoopGuard(t *testing.T) {
	as := newTestAS(t)
	heap := as.FindByName("[heap]")
	as.ProtectVMA(heap, ProtRead)
	as.SetFaultHandler(func(f *Fault) Disposition { return FaultRetry }) // never fixes
	err := as.Write(0x600000, []byte("x"))
	if err == nil {
		t.Fatal("looping handler not detected")
	}
}

func TestDirtyPagesAndClear(t *testing.T) {
	as := newTestAS(t)
	as.Write(0x600000, []byte("a"))
	as.Write(0x600000+2*PageSize, []byte("b"))
	dirty := as.DirtyPages(true)
	if len(dirty) != 2 {
		t.Fatalf("dirty = %d pages, want 2", len(dirty))
	}
	if len(as.DirtyPages(false)) != 0 {
		t.Fatal("dirty bits not cleared")
	}
	as.Write(0x600000, []byte("c"))
	if len(as.DirtyPages(false)) != 1 {
		t.Fatal("rewrite did not set dirty bit again")
	}
}

func TestBrkGrowShrink(t *testing.T) {
	as := newTestAS(t)
	heap := as.FindByName("[heap]")
	origLen := heap.Length
	if err := as.SetBrk(heap.Start + Addr(origLen) + 3*PageSize + 5); err != nil {
		t.Fatal(err)
	}
	if heap.Length != origLen+4*PageSize { // rounded up
		t.Fatalf("heap length = %d, want %d", heap.Length, origLen+4*PageSize)
	}
	// Write into the new space, then shrink and verify pages dropped.
	if err := as.Write(heap.Start+Addr(origLen), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	before := heap.ResidentPages()
	if err := as.SetBrk(heap.Start + Addr(origLen)); err != nil {
		t.Fatal(err)
	}
	if heap.ResidentPages() != before-1 {
		t.Fatalf("shrink kept pages: %d, want %d", heap.ResidentPages(), before-1)
	}
	if err := as.SetBrk(heap.Start - PageSize); err == nil {
		t.Fatal("SetBrk below base accepted")
	}
}

func TestProtectCounting(t *testing.T) {
	as := newTestAS(t)
	heap := as.FindByName("[heap]")
	n := as.ProtectVMA(heap, ProtRead)
	if n != heap.NumPages() {
		t.Fatalf("Protect changed %d PTEs, want %d", n, heap.NumPages())
	}
	// Protecting again with the same protection changes nothing.
	if n := as.ProtectVMA(heap, ProtRead); n != 0 {
		t.Fatalf("re-Protect changed %d PTEs, want 0", n)
	}
}

func TestWriteHooksFireAtLineGranularity(t *testing.T) {
	as := newTestAS(t)
	var lines []Addr
	as.AddWriteHook(func(addr Addr, old, new []byte) {
		if len(new) != 64 {
			t.Fatalf("hook got %d-byte line, want 64", len(new))
		}
		lines = append(lines, addr)
	})
	// A 100-byte write starting at offset 10 touches lines 0 and 64 (and 96..109 → line 96).
	if err := as.Write(0x600000+10, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("hook fired %d times, want 2 (lines 0,64)", len(lines))
	}
	if lines[0] != 0x600000 || lines[1] != 0x600040 {
		t.Fatalf("line addrs = %#x,%#x", uint64(lines[0]), uint64(lines[1]))
	}
}

func TestWriteHookSeesOldAndNew(t *testing.T) {
	as := newTestAS(t)
	as.Write(0x600000, []byte{1, 2, 3, 4})
	var old0, new0 byte
	as.AddWriteHook(func(addr Addr, old, new []byte) {
		old0, new0 = old[0], new[0]
	})
	as.Write(0x600000, []byte{9})
	if old0 != 1 || new0 != 9 {
		t.Fatalf("hook old=%d new=%d, want 1/9", old0, new0)
	}
}

func TestReadWriteDirectBypassProtection(t *testing.T) {
	as := newTestAS(t)
	text := as.FindByName("a.out")
	if err := as.WriteDirect(text.Start, []byte("ELF")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := as.ReadDirect(text.Start, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ELF" {
		t.Fatalf("ReadDirect = %q", buf)
	}
	if as.FaultCount() != 0 {
		t.Fatal("direct access took faults")
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	as := newTestAS(t)
	as.Write(0x600000, []byte("state"))
	cl := as.Clone()
	if !as.Equal(cl) || !cl.Equal(as) {
		t.Fatal("clone not Equal to original")
	}
	if as.Checksum() != cl.Checksum() {
		t.Fatal("clone checksum differs")
	}
	// Mutating the clone must not affect the original.
	cl.Write(0x600000, []byte("XXXXX"))
	buf := make([]byte, 5)
	as.Read(0x600000, buf)
	if string(buf) != "state" {
		t.Fatalf("original mutated through clone: %q", buf)
	}
	if as.Equal(cl) {
		t.Fatal("Equal missed a difference")
	}
}

func TestEqualTreatsZeroPagesAsNil(t *testing.T) {
	a := NewAddressSpace()
	b := NewAddressSpace()
	for _, as := range []*AddressSpace{a, b} {
		if _, err := as.Map(0, 2*PageSize, ProtRW, KindAnon, ""); err != nil {
			t.Fatal(err)
		}
	}
	// Materialize an all-zero page in a only.
	a.Write(0, []byte{0})
	if !a.Equal(b) {
		t.Fatal("explicit zero page should equal demand-zero page")
	}
	a.Write(0, []byte{7})
	if a.Equal(b) {
		t.Fatal("differing page not detected")
	}
}

func TestUnmap(t *testing.T) {
	as := newTestAS(t)
	if err := as.Unmap(0x400000); err != nil {
		t.Fatal(err)
	}
	if as.Find(0x400000) != nil {
		t.Fatal("VMA still present after Unmap")
	}
	if err := as.Unmap(0x400000); err == nil {
		t.Fatal("double Unmap accepted")
	}
}

func TestProtString(t *testing.T) {
	if ProtRW.String() != "rw-" || ProtRX.String() != "r-x" || ProtNone.String() != "---" {
		t.Fatal("Prot.String wrong")
	}
}

func TestSetLineSizeValidation(t *testing.T) {
	as := NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("bad line size accepted")
		}
	}()
	as.SetLineSize(100) // does not divide 4096
}

// Property: any sequence of writes followed by reads returns the written
// data (last-writer-wins), within a single VMA.
func TestQuickLastWriterWins(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		as := NewAddressSpace()
		if _, err := as.Map(0, 32*PageSize, ProtRW, KindAnon, ""); err != nil {
			return false
		}
		shadow := make([]byte, 32*PageSize)
		for _, op := range ops {
			if len(op.Data) == 0 {
				continue
			}
			off := int(op.Off) % (len(shadow) - len(op.Data))
			if off < 0 {
				continue
			}
			if err := as.Write(Addr(off), op.Data); err != nil {
				return false
			}
			copy(shadow[off:], op.Data)
		}
		got := make([]byte, len(shadow))
		if err := as.Read(0, got); err != nil {
			return false
		}
		for i := range shadow {
			if got[i] != shadow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone always Equals the original and has the same checksum,
// for random write patterns.
func TestQuickCloneEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		as := NewAddressSpace()
		if _, err := as.Map(0, 16*PageSize, ProtRW, KindHeap, "[heap]"); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 20; w++ {
			buf := make([]byte, 1+rng.Intn(200))
			rng.Read(buf)
			off := rng.Intn(16*PageSize - len(buf))
			if err := as.Write(Addr(off), buf); err != nil {
				t.Fatal(err)
			}
		}
		cl := as.Clone()
		if !as.Equal(cl) || as.Checksum() != cl.Checksum() {
			t.Fatalf("iter %d: clone differs", iter)
		}
	}
}

// Property: number of tracked pages from write-protect tracking equals the
// number of distinct pages written in the epoch.
func TestQuickTrackingCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		as := NewAddressSpace()
		v, err := as.Map(0, 64*PageSize, ProtRW, KindHeap, "[heap]")
		if err != nil {
			t.Fatal(err)
		}
		as.ProtectVMA(v, ProtRead)
		tracked := map[PageNum]bool{}
		as.SetFaultHandler(func(f *Fault) Disposition {
			tracked[f.Addr.Page()] = true
			as.Protect(f.Addr.Page().Base(), PageSize, ProtRW)
			return FaultRetry
		})
		want := map[PageNum]bool{}
		for w := 0; w < 50; w++ {
			off := rng.Intn(64*PageSize - 8)
			if err := as.Write(Addr(off), []byte("12345678")); err != nil {
				t.Fatal(err)
			}
			want[Addr(off).Page()] = true
			if Addr(off+7).Page() != Addr(off).Page() {
				want[Addr(off+7).Page()] = true
			}
		}
		if len(tracked) != len(want) {
			t.Fatalf("iter %d: tracked %d pages, want %d", iter, len(tracked), len(want))
		}
		for pn := range want {
			if !tracked[pn] {
				t.Fatalf("iter %d: page %d written but not tracked", iter, pn)
			}
		}
	}
}

func BenchmarkWrite4K(b *testing.B) {
	as := NewAddressSpace()
	as.Map(0, 1024*PageSize, ProtRW, KindAnon, "")
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Write(Addr((i%1024)*PageSize), buf)
	}
}

func BenchmarkChecksum64MiB(b *testing.B) {
	as := NewAddressSpace()
	as.Map(0, 16384*PageSize, ProtRW, KindAnon, "")
	buf := make([]byte, PageSize)
	for i := 0; i < 16384; i++ {
		buf[0] = byte(i)
		as.Write(Addr(i*PageSize), buf)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Checksum()
	}
}
