// Lazy-restore support: the demand-fill hook. A lazy restore maps the
// checkpointed layout and resumes execution before the image contents
// have been read back; every page that eager restore would have
// materialized up front is instead registered here as *pending*, and the
// first access to a pending page — workload loads and stores through
// access(), kernel-mode reads and writes through ReadDirect/WriteDirect,
// and replay writes through PageBuffer — invokes the DemandFiller to
// materialize the checkpointed contents before the access proceeds.
//
// This is deliberately a separate channel from FaultHandler: the fault
// handler models protection-violation dispatch (dirty tracking, SIGSEGV
// delivery) and runs only on protection mismatches, while the demand
// fill must intercept *every* first touch, including kernel-mode paths
// that bypass protection entirely.
//
// The pending set has its own mutex so a background prefetcher can claim
// pages (TakePendingFill) concurrently with demand faults; the page maps
// themselves stay single-writer — the filler implementation serializes
// page materialization behind its own lock.
package mem

import "sync"

// DemandFiller materializes the checkpointed contents of one pending
// page. It is invoked with the page already removed from the pending set
// (so a fill that re-enters the address space — PageBuffer on the same
// page — does not recurse). A non-nil error aborts the access that
// triggered the fill; the page is returned to the pending set so a
// later retry can try again.
type DemandFiller func(pn PageNum) error

// lazyFill is the pending-page bookkeeping, guarded by its own mutex so
// prefetchers on other goroutines can claim pages concurrently with the
// simulation goroutine's demand faults.
type lazyFill struct {
	mu      sync.Mutex
	pending map[PageNum]struct{}
	fill    DemandFiller
}

// SetDemandFill arms the demand-fill hook: pages lists every page whose
// contents are still on storage, fill is called on the first access to
// each. Replaces any previous hook.
func (as *AddressSpace) SetDemandFill(pages []PageNum, fill DemandFiller) {
	lf := &lazyFill{pending: make(map[PageNum]struct{}, len(pages)), fill: fill}
	for _, pn := range pages {
		lf.pending[pn] = struct{}{}
	}
	as.lazy = lf
}

// ClearDemandFill disarms the hook and forgets any still-pending pages
// (they stay demand-zero, as if never checkpointed). Callers that need
// the checkpointed contents must drain the pending set first.
func (as *AddressSpace) ClearDemandFill() { as.lazy = nil }

// PendingFillCount returns how many pages still await their first fill.
func (as *AddressSpace) PendingFillCount() int {
	lf := as.lazy
	if lf == nil {
		return 0
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return len(lf.pending)
}

// TakePendingFill atomically claims pn from the pending set, reporting
// whether it was still pending. A prefetcher claims pages through here
// and then materializes them itself, so a demand fault racing on the
// same page finds it already gone and proceeds without a second fill.
func (as *AddressSpace) TakePendingFill(pn PageNum) bool {
	lf := as.lazy
	if lf == nil {
		return false
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if _, ok := lf.pending[pn]; !ok {
		return false
	}
	delete(lf.pending, pn)
	return true
}

// ReturnPendingFill puts a claimed page back in the pending set — a
// prefetcher that claimed the page but failed to materialize it must
// not leave it silently demand-zero.
func (as *AddressSpace) ReturnPendingFill(pn PageNum) {
	lf := as.lazy
	if lf == nil {
		return
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.pending != nil {
		lf.pending[pn] = struct{}{}
	}
}

// fillPending runs the demand fill for pn if it is still pending. Called
// from every access path before the page's contents are observed or
// overwritten. The page is removed from the pending set before the
// filler runs (recursion guard) and restored on error.
func (as *AddressSpace) fillPending(pn PageNum) error {
	lf := as.lazy
	if lf == nil {
		return nil
	}
	lf.mu.Lock()
	if _, ok := lf.pending[pn]; !ok {
		lf.mu.Unlock()
		return nil
	}
	delete(lf.pending, pn)
	fill := lf.fill
	lf.mu.Unlock()
	if fill == nil {
		return nil
	}
	if err := fill(pn); err != nil {
		lf.mu.Lock()
		if lf.pending != nil {
			lf.pending[pn] = struct{}{}
		}
		lf.mu.Unlock()
		return err
	}
	return nil
}

// dropPendingFill forgets pending pages in [start,end) — called when the
// range is unmapped (Unmap, SetBrk shrink), so a later remap sees fresh
// demand-zero pages instead of resurrected checkpoint contents, exactly
// as an eager restore followed by the same unmap would.
func (as *AddressSpace) dropPendingFill(start, end Addr) {
	lf := as.lazy
	if lf == nil {
		return
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	for pn := range lf.pending {
		if pn.Base() >= start && pn.Base() < end {
			delete(lf.pending, pn)
		}
	}
}
