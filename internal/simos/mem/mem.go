// Package mem models per-process virtual memory: VMAs (virtual memory
// areas), demand-zero 4 KiB pages, page protection, dirty/accessed bits,
// and the page-fault hook on which every incremental-checkpointing
// technique in the paper is built.
//
// Two observation channels are exposed:
//
//   - FaultHandler: invoked on protection violations. The kernel's
//     system-level incremental tracker marks the page dirty and retries
//     (§4: "the exception handler can keep track of the dirty page");
//     user-level trackers instead deliver SIGSEGV to the process (§3).
//   - WriteHook: invoked on every committed store at cache-line spans;
//     this is the attachment point for the hardware schemes of §4.2
//     (ReVive, SafetyNet), which trace writes at cache-line granularity.
package mem

import (
	"errors"
	"fmt"
	"hash/crc64"
	"sort"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a simulated virtual address.
type Addr uint64

// PageNum identifies a virtual page (Addr >> PageShift).
type PageNum uint64

// Page returns the page containing a.
func (a Addr) Page() PageNum { return PageNum(a >> PageShift) }

// Offset returns the offset of a within its page.
func (a Addr) Offset() int { return int(a & (PageSize - 1)) }

// Base returns the first address of page p.
func (p PageNum) Base() Addr { return Addr(p) << PageShift }

// Prot is a page-protection bit set.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// Common protection combinations.
const (
	ProtNone Prot = 0
	ProtRW        = ProtRead | ProtWrite
	ProtRX        = ProtRead | ProtExec
	ProtRWX       = ProtRead | ProtWrite | ProtExec
)

// Can reports whether p includes all bits of want.
func (p Prot) Can(want Prot) bool { return p&want == want }

// String renders p in ls -l style, e.g. "rw-".
func (p Prot) String() string {
	b := []byte("---")
	if p.Can(ProtRead) {
		b[0] = 'r'
	}
	if p.Can(ProtWrite) {
		b[1] = 'w'
	}
	if p.Can(ProtExec) {
		b[2] = 'x'
	}
	return string(b)
}

// Access is the kind of memory access that faulted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "?"
}

// VMAKind classifies a memory region, mirroring /proc/<pid>/maps.
type VMAKind uint8

// Region kinds.
const (
	KindText VMAKind = iota
	KindData
	KindHeap
	KindStack
	KindAnon
	KindFile
	KindShared // System V style shared memory: kernel-persistent state (§3)
)

func (k VMAKind) String() string {
	switch k {
	case KindText:
		return "text"
	case KindData:
		return "data"
	case KindHeap:
		return "heap"
	case KindStack:
		return "stack"
	case KindAnon:
		return "anon"
	case KindFile:
		return "file"
	case KindShared:
		return "shared"
	}
	return "?"
}

// Page is one resident simulated page.
type Page struct {
	data     []byte // nil until first write (demand-zero)
	prot     Prot
	dirty    bool // set on write, cleared by ClearDirty (kernel tracker)
	accessed bool
	version  uint64 // bumped on every committed write
}

// Prot returns the page's current protection.
func (p *Page) Prot() Prot { return p.prot }

// Dirty reports the kernel-maintained dirty bit.
func (p *Page) Dirty() bool { return p.dirty }

// Version returns the page's write-version counter.
func (p *Page) Version() uint64 { return p.version }

// Data returns the page contents; the returned slice must not be modified.
// A nil return means the page is still demand-zero.
func (p *Page) Data() []byte { return p.data }

// VMA is one contiguous mapped region.
type VMA struct {
	Start  Addr
	Length uint64 // bytes, page-aligned
	Kind   VMAKind
	Name   string // file path for KindFile, shm key for KindShared
	Prot   Prot   // default protection for pages not yet materialized

	pages map[PageNum]*Page
}

// End returns one past the last mapped address.
func (v *VMA) End() Addr { return v.Start + Addr(v.Length) }

// Contains reports whether a falls inside the region.
func (v *VMA) Contains(a Addr) bool { return a >= v.Start && a < v.End() }

// NumPages returns the region's page count.
func (v *VMA) NumPages() int { return int(v.Length / PageSize) }

// ResidentPages returns how many pages have been materialized.
func (v *VMA) ResidentPages() int { return len(v.pages) }

func (v *VMA) String() string {
	return fmt.Sprintf("%08x-%08x %s %s %s", uint64(v.Start), uint64(v.End()), v.Prot, v.Kind, v.Name)
}

// page returns the page struct for pn, materializing it on demand.
func (v *VMA) page(pn PageNum) *Page {
	pg, ok := v.pages[pn]
	if !ok {
		pg = &Page{prot: v.Prot}
		v.pages[pn] = pg
	}
	return pg
}

// peek returns the page struct for pn if resident, else nil.
func (v *VMA) peek(pn PageNum) *Page { return v.pages[pn] }

// Fault describes a failed memory access.
type Fault struct {
	Addr   Addr
	Access Access
	VMA    *VMA // nil when the address is unmapped
	// Len is the length of the faulting access's span within the page
	// (zero when unknown, e.g. unmapped addresses). Liveness trackers use
	// it to distinguish a whole-page overwrite — which makes the page's
	// prior contents dead — from a partial store that merges with them.
	Len int
}

func (f *Fault) Error() string {
	where := "unmapped"
	if f.VMA != nil {
		where = f.VMA.String()
	}
	return fmt.Sprintf("fault: %s at %#x (%s)", f.Access, uint64(f.Addr), where)
}

// Disposition is a fault handler's verdict.
type Disposition uint8

// Dispositions.
const (
	// FaultRetry re-attempts the access; the handler is expected to have
	// fixed the protection (dirty-bit tracking does exactly this).
	FaultRetry Disposition = iota
	// FaultSignal aborts the access and reports the fault to the caller,
	// which in the kernel turns it into SIGSEGV delivery (§3 user-level
	// incremental checkpointing).
	FaultSignal
	// FaultFatal aborts the access; the process should be killed.
	FaultFatal
)

// FaultHandler decides what happens on a protection violation.
// At most maxFaultRetries retries are allowed per access, so a handler
// that never fixes the protection cannot hang the simulation.
type FaultHandler func(*Fault) Disposition

// WriteHook observes every committed store, invoked once per cache-line
// span. oldData is the line's previous contents (nil if the page was
// demand-zero); it must not be retained.
type WriteHook func(addr Addr, oldData, newData []byte)

const maxFaultRetries = 4

// ErrUnmapped is returned (wrapped in *Fault via errors.As) for accesses
// to unmapped addresses.
var ErrUnmapped = errors.New("mem: unmapped address")

// AddressSpace is one process's memory map.
type AddressSpace struct {
	vmas []*VMA // sorted by Start, non-overlapping

	brk      Addr // current heap break (end of heap VMA in use)
	heapBase Addr

	faultHandler FaultHandler
	writeHooks   []WriteHook
	lineSize     int
	faultCount   uint64
	writeCount   uint64
	bytesWritten uint64
	versionClock uint64

	lazy *lazyFill // demand-fill state for lazy restore (nil when eager)
}

// NewAddressSpace returns an empty address space with 64-byte line hooks.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{lineSize: 64}
}

// SetFaultHandler installs h as the protection-violation handler,
// returning the previous handler.
func (as *AddressSpace) SetFaultHandler(h FaultHandler) FaultHandler {
	old := as.faultHandler
	as.faultHandler = h
	return old
}

// AddWriteHook registers a cache-line-granularity write observer.
func (as *AddressSpace) AddWriteHook(h WriteHook) { as.writeHooks = append(as.writeHooks, h) }

// ClearWriteHooks removes all write observers.
func (as *AddressSpace) ClearWriteHooks() { as.writeHooks = nil }

// SetLineSize sets the granularity at which write hooks fire.
func (as *AddressSpace) SetLineSize(n int) {
	if n <= 0 || PageSize%n != 0 {
		panic(fmt.Sprintf("mem: line size %d must divide page size", n))
	}
	as.lineSize = n
}

// FaultCount returns the number of protection faults taken so far.
func (as *AddressSpace) FaultCount() uint64 { return as.faultCount }

// WriteCount returns the number of Write calls committed.
func (as *AddressSpace) WriteCount() uint64 { return as.writeCount }

// BytesWritten returns the total bytes stored.
func (as *AddressSpace) BytesWritten() uint64 { return as.bytesWritten }

// Map creates a new VMA. start and length must be page-aligned, length
// positive, and the range must not overlap an existing mapping.
func (as *AddressSpace) Map(start Addr, length uint64, prot Prot, kind VMAKind, name string) (*VMA, error) {
	if start%PageSize != 0 || length == 0 || length%PageSize != 0 {
		return nil, fmt.Errorf("mem: Map(%#x,%d): unaligned", uint64(start), length)
	}
	end := start + Addr(length)
	if end < start {
		return nil, fmt.Errorf("mem: Map(%#x,%d): wraps address space", uint64(start), length)
	}
	for _, v := range as.vmas {
		if start < v.End() && v.Start < end {
			return nil, fmt.Errorf("mem: Map(%#x,%d): overlaps %s", uint64(start), length, v)
		}
	}
	v := &VMA{
		Start:  start,
		Length: length,
		Kind:   kind,
		Name:   name,
		Prot:   prot,
		pages:  make(map[PageNum]*Page),
	}
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	if kind == KindHeap {
		as.heapBase = start
		as.brk = start
	}
	return v, nil
}

// MapAnywhere maps length bytes at the lowest gap at or above hint.
func (as *AddressSpace) MapAnywhere(hint Addr, length uint64, prot Prot, kind VMAKind, name string) (*VMA, error) {
	if hint%PageSize != 0 {
		hint = (hint + PageSize - 1) &^ (PageSize - 1)
	}
	start := hint
	for _, v := range as.vmas {
		if v.End() <= start {
			continue
		}
		if v.Start >= start+Addr(length) {
			break
		}
		start = v.End()
	}
	return as.Map(start, length, prot, kind, name)
}

// Unmap removes the VMA starting exactly at start.
func (as *AddressSpace) Unmap(start Addr) error {
	for i, v := range as.vmas {
		if v.Start == start {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			as.dropPendingFill(v.Start, v.End())
			return nil
		}
	}
	return fmt.Errorf("mem: Unmap(%#x): no VMA at that address", uint64(start))
}

// VMAs returns the mappings in address order. The returned slice is a copy;
// the *VMA values are live.
func (as *AddressSpace) VMAs() []*VMA {
	out := make([]*VMA, len(as.vmas))
	copy(out, as.vmas)
	return out
}

// Find returns the VMA containing a, or nil.
func (as *AddressSpace) Find(a Addr) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End() > a })
	if i < len(as.vmas) && as.vmas[i].Contains(a) {
		return as.vmas[i]
	}
	return nil
}

// FindByName returns the first VMA with the given name, or nil.
func (as *AddressSpace) FindByName(name string) *VMA {
	for _, v := range as.vmas {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Brk returns the current heap break.
func (as *AddressSpace) Brk() Addr { return as.brk }

// SetBrk grows or shrinks the heap VMA to end at newBrk (rounded up to a
// page). It mirrors the sbrk/brk syscalls the paper cites as the way
// user-level checkpointers discover heap boundaries.
func (as *AddressSpace) SetBrk(newBrk Addr) error {
	heap := as.heapVMA()
	if heap == nil {
		return errors.New("mem: SetBrk: no heap VMA")
	}
	if newBrk < heap.Start {
		return fmt.Errorf("mem: SetBrk(%#x): below heap base %#x", uint64(newBrk), uint64(heap.Start))
	}
	newEnd := (newBrk + PageSize - 1) &^ (PageSize - 1)
	// The heap VMA always keeps at least one page, so its mapping never
	// degenerates to zero length (which could not be re-created on
	// restart).
	if newEnd < heap.Start+PageSize {
		newEnd = heap.Start + PageSize
	}
	// Check the grown heap does not collide with the next VMA.
	for _, v := range as.vmas {
		if v != heap && v.Start >= heap.Start && v.Start < newEnd {
			return fmt.Errorf("mem: SetBrk(%#x): collides with %s", uint64(newBrk), v)
		}
	}
	if newEnd < heap.End() {
		// Shrink: drop pages beyond the new end, including ones a lazy
		// restore has not materialized yet — a later re-grow must see
		// demand-zero pages, not resurrected checkpoint contents.
		for pn := range heap.pages {
			if pn.Base() >= newEnd {
				delete(heap.pages, pn)
			}
		}
		as.dropPendingFill(newEnd, heap.End())
	}
	heap.Length = uint64(newEnd - heap.Start)
	as.brk = newBrk
	return nil
}

func (as *AddressSpace) heapVMA() *VMA {
	for _, v := range as.vmas {
		if v.Kind == KindHeap {
			return v
		}
	}
	return nil
}

// Protect changes protection for all pages overlapping [start,start+length),
// mirroring mprotect. It affects both resident and future pages of fully
// covered VMAs; for partially covered VMAs only the covered resident and
// demanded pages change (future pages materialize with the VMA default, as
// on Linux after a partial mprotect is ignored for simplicity—our trackers
// always protect whole VMAs). Returns the number of pages whose PTE changed.
func (as *AddressSpace) Protect(start Addr, length uint64, prot Prot) (int, error) {
	if start%PageSize != 0 || length%PageSize != 0 {
		return 0, fmt.Errorf("mem: Protect(%#x,%d): unaligned", uint64(start), length)
	}
	end := start + Addr(length)
	n := 0
	for _, v := range as.vmas {
		if v.End() <= start || v.Start >= end {
			continue
		}
		lo, hi := v.Start, v.End()
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		for pn := lo.Page(); pn < hi.Page(); pn++ {
			pg := v.page(pn)
			if pg.prot != prot {
				pg.prot = prot
				n++
			}
		}
		if lo == v.Start && hi == v.End() {
			v.Prot = prot
		}
	}
	return n, nil
}

// ProtectVMA sets protection on a whole VMA.
func (as *AddressSpace) ProtectVMA(v *VMA, prot Prot) int {
	n, _ := as.Protect(v.Start, v.Length, prot)
	return n
}

// Read copies len(buf) bytes starting at addr into buf.
func (as *AddressSpace) Read(addr Addr, buf []byte) error {
	return as.access(addr, buf, AccessRead)
}

// Write stores data at addr, honoring page protection: protection
// violations invoke the fault handler, which may fix up and retry
// (kernel dirty tracking) or convert the fault to an error for signal
// delivery (user-level tracking).
func (as *AddressSpace) Write(addr Addr, data []byte) error {
	return as.access(addr, data, AccessWrite)
}

func (as *AddressSpace) access(addr Addr, buf []byte, acc Access) error {
	off := 0
	for off < len(buf) {
		a := addr + Addr(off)
		v := as.Find(a)
		if v == nil {
			f := &Fault{Addr: a, Access: acc}
			as.faultCount++
			return f
		}
		pn := a.Page()
		// Chunk within this page.
		n := PageSize - a.Offset()
		if rem := len(buf) - off; n > rem {
			n = rem
		}
		if err := as.fillPending(pn); err != nil {
			return err
		}
		pg := v.page(pn)
		want := ProtRead
		if acc == AccessWrite {
			want = ProtWrite
		}
		retries := 0
		for !pg.prot.Can(want) {
			f := &Fault{Addr: a, Access: acc, VMA: v, Len: n}
			as.faultCount++
			if as.faultHandler == nil {
				return f
			}
			switch as.faultHandler(f) {
			case FaultRetry:
				retries++
				if retries > maxFaultRetries {
					return fmt.Errorf("mem: fault handler looping at %#x: %w", uint64(a), f)
				}
			case FaultSignal, FaultFatal:
				return f
			}
		}
		pg.accessed = true
		if acc == AccessRead {
			if pg.data == nil {
				zero(buf[off : off+n])
			} else {
				copy(buf[off:off+n], pg.data[a.Offset():a.Offset()+n])
			}
		} else {
			as.store(v, pg, a, buf[off:off+n])
		}
		off += n
	}
	if acc == AccessWrite {
		as.writeCount++
		as.bytesWritten += uint64(len(buf))
	}
	return nil
}

// store commits a write entirely within one page, firing line hooks.
func (as *AddressSpace) store(v *VMA, pg *Page, a Addr, data []byte) {
	if pg.data == nil {
		pg.data = make([]byte, PageSize)
	}
	po := a.Offset()
	if len(as.writeHooks) > 0 {
		// Fire once per cache-line span covered by the store.
		start := po &^ (as.lineSize - 1)
		for ls := start; ls < po+len(data); ls += as.lineSize {
			le := ls + as.lineSize
			lineAddr := a - Addr(po) + Addr(ls)
			old := append([]byte(nil), pg.data[ls:le]...)
			// Compute the new line image after this store.
			newLine := append([]byte(nil), pg.data[ls:le]...)
			for i := ls; i < le; i++ {
				di := i - po
				if di >= 0 && di < len(data) {
					newLine[i-ls] = data[di]
				}
			}
			for _, h := range as.writeHooks {
				h(lineAddr, old, newLine)
			}
		}
	}
	copy(pg.data[po:], data)
	pg.dirty = true
	as.versionClock++
	pg.version = as.versionClock
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// ReadDirect copies memory without protection checks or fault handling;
// this models kernel-mode access to the process image (§4.1: "in kernel
// space every data structure relevant to a process's state is readily
// accessible").
func (as *AddressSpace) ReadDirect(addr Addr, buf []byte) error {
	off := 0
	for off < len(buf) {
		a := addr + Addr(off)
		v := as.Find(a)
		if v == nil {
			return &Fault{Addr: a, Access: AccessRead}
		}
		n := PageSize - a.Offset()
		if rem := len(buf) - off; n > rem {
			n = rem
		}
		if err := as.fillPending(a.Page()); err != nil {
			return err
		}
		pg := v.peek(a.Page())
		if pg == nil || pg.data == nil {
			zero(buf[off : off+n])
		} else {
			copy(buf[off:off+n], pg.data[a.Offset():a.Offset()+n])
		}
		off += n
	}
	return nil
}

// WriteDirect stores without protection checks (kernel-mode restore path).
func (as *AddressSpace) WriteDirect(addr Addr, data []byte) error {
	off := 0
	for off < len(data) {
		a := addr + Addr(off)
		v := as.Find(a)
		if v == nil {
			return &Fault{Addr: a, Access: AccessWrite}
		}
		n := PageSize - a.Offset()
		if rem := len(data) - off; n > rem {
			n = rem
		}
		if err := as.fillPending(a.Page()); err != nil {
			return err
		}
		pg := v.page(a.Page())
		if pg.data == nil {
			pg.data = make([]byte, PageSize)
		}
		copy(pg.data[a.Offset():], data[off:off+n])
		pg.dirty = true
		as.versionClock++
		pg.version = as.versionClock
		off += n
	}
	return nil
}

// PageBuffer materializes the page pn and returns its backing buffer for
// direct kernel-mode writes, marking it dirty and bumping the version
// clock once. This is the parallel-restore seam: WriteDirect mutates the
// per-VMA page map and the shared version clock and is therefore not
// safe from worker goroutines, so a parallel replay materializes every
// target page through this method first (sequentially) and then lets
// workers copy into the disjoint buffers it returned.
func (as *AddressSpace) PageBuffer(pn PageNum) ([]byte, error) {
	a := pn.Base()
	v := as.Find(a)
	if v == nil {
		return nil, &Fault{Addr: a, Access: AccessWrite}
	}
	if err := as.fillPending(pn); err != nil {
		return nil, err
	}
	pg := v.page(pn)
	if pg.data == nil {
		pg.data = make([]byte, PageSize)
	}
	pg.dirty = true
	as.versionClock++
	pg.version = as.versionClock
	return pg.data, nil
}

// PageInfo describes one resident page for iteration.
type PageInfo struct {
	VMA  *VMA
	Num  PageNum
	Page *Page
}

// ResidentPages returns all materialized pages in address order.
func (as *AddressSpace) ResidentPages() []PageInfo {
	var out []PageInfo
	for _, v := range as.vmas {
		nums := make([]PageNum, 0, len(v.pages))
		for pn := range v.pages {
			nums = append(nums, pn)
		}
		sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
		for _, pn := range nums {
			out = append(out, PageInfo{VMA: v, Num: pn, Page: v.pages[pn]})
		}
	}
	return out
}

// DirtyPages returns resident pages with the dirty bit set, in address
// order, optionally clearing the bit (the kernel tracker's epoch reset).
func (as *AddressSpace) DirtyPages(clear bool) []PageInfo {
	var out []PageInfo
	for _, pi := range as.ResidentPages() {
		if pi.Page.dirty {
			out = append(out, pi)
			if clear {
				pi.Page.dirty = false
			}
		}
	}
	return out
}

// ClearDirty clears all dirty bits (start of a tracking epoch).
func (as *AddressSpace) ClearDirty() {
	for _, v := range as.vmas {
		for _, pg := range v.pages {
			pg.dirty = false
		}
	}
}

// ResidentBytes returns the total bytes of materialized pages.
func (as *AddressSpace) ResidentBytes() uint64 {
	var n uint64
	for _, v := range as.vmas {
		n += uint64(len(v.pages)) * PageSize
	}
	return n
}

// MappedBytes returns the total bytes of all VMAs (resident or not).
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, v := range as.vmas {
		n += v.Length
	}
	return n
}

// Checksum returns a CRC-64 over the mapped image (VMAs and page contents),
// used by restart-equivalence tests.
func (as *AddressSpace) Checksum() uint64 {
	tab := crc64.MakeTable(crc64.ECMA)
	var sum uint64
	var hdr [16]byte
	for _, pi := range as.ResidentPages() {
		// All-zero pages hash identically to absent (demand-zero) pages,
		// matching Equal's semantics.
		if pi.Page.data == nil || isZero(pi.Page.data) {
			continue
		}
		put64(hdr[0:8], uint64(pi.Num))
		put64(hdr[8:16], uint64(pi.VMA.Start))
		sum = crc64.Update(sum, tab, hdr[:])
		sum = crc64.Update(sum, tab, pi.Page.data)
	}
	return sum
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Clone deep-copies the address space (fork, or fork-based consistent
// checkpointing per the "Checkpoint" system [5]). Fault handlers, write
// hooks, and any armed demand-fill state are not inherited.
func (as *AddressSpace) Clone() *AddressSpace {
	n := NewAddressSpace()
	n.brk = as.brk
	n.heapBase = as.heapBase
	n.lineSize = as.lineSize
	for _, v := range as.vmas {
		nv := &VMA{
			Start:  v.Start,
			Length: v.Length,
			Kind:   v.Kind,
			Name:   v.Name,
			Prot:   v.Prot,
			pages:  make(map[PageNum]*Page, len(v.pages)),
		}
		for pn, pg := range v.pages {
			np := &Page{prot: pg.prot, dirty: pg.dirty, accessed: pg.accessed, version: pg.version}
			if pg.data != nil {
				np.data = append([]byte(nil), pg.data...)
			}
			nv.pages[pn] = np
		}
		n.vmas = append(n.vmas, nv)
	}
	return n
}

// Equal reports whether the two address spaces have identical mappings and
// page contents (ignoring dirty/accessed bookkeeping and protection, which
// trackers mutate).
func (as *AddressSpace) Equal(other *AddressSpace) bool {
	if len(as.vmas) != len(other.vmas) || as.brk != other.brk {
		return false
	}
	for i, v := range as.vmas {
		o := other.vmas[i]
		if v.Start != o.Start || v.Length != o.Length || v.Kind != o.Kind || v.Name != o.Name {
			return false
		}
		for pn := v.Start.Page(); pn < v.End().Page(); pn++ {
			a, b := v.peek(pn), o.peek(pn)
			ad, bd := pageBytes(a), pageBytes(b)
			if !bytesEqualZeroExtended(ad, bd) {
				return false
			}
		}
	}
	return true
}

func pageBytes(p *Page) []byte {
	if p == nil {
		return nil
	}
	return p.data
}

// bytesEqualZeroExtended treats nil as all-zero.
func bytesEqualZeroExtended(a, b []byte) bool {
	switch {
	case a == nil && b == nil:
		return true
	case a == nil:
		return isZero(b)
	case b == nil:
		return isZero(a)
	default:
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
}
