package kernel

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
)

func ctxFor(t *testing.T, k *Kernel, p *proc.Process) *Context {
	t.Helper()
	return &Context{K: k, P: p, T: p.MainThread()}
}

func TestLoad8Store8RoundTrip(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := ctxFor(t, k, p)
	if err := ctx.Store8(heapBase, 0xDEADBEEF12345678); err != nil {
		t.Fatal(err)
	}
	v, err := ctx.Load8(heapBase)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF12345678 {
		t.Fatalf("Load8 = %#x", v)
	}
	if _, err := ctx.Load8(0x10); err == nil {
		t.Fatal("Load8 of unmapped address succeeded")
	}
}

func TestSigBlockUnblockPending(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := ctxFor(t, k, p)
	ctx.SigBlock(sig.SIGUSR1)
	if !p.Sig.Blocked(sig.SIGUSR1) {
		t.Fatal("not blocked")
	}
	k.RunFor(simtime.Millisecond)
	k.Kill(p.PID, sig.SIGUSR1)
	k.RunFor(5 * simtime.Millisecond)
	if p.Regs().G[2] != 0 {
		t.Fatal("blocked signal was delivered")
	}
	if pend := ctx.SigPending(); len(pend) != 1 || pend[0] != sig.SIGUSR1 {
		t.Fatalf("SigPending = %v", pend)
	}
	ctx.SigUnblock(sig.SIGUSR1)
	k.RunFor(5 * simtime.Millisecond)
	if p.Regs().G[2] == 0 {
		t.Fatal("unblocked signal never delivered")
	}
}

func TestSigIgnore(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := ctxFor(t, k, p)
	if err := ctx.SigIgnore(sig.SIGTERM); err != nil {
		t.Fatal(err)
	}
	k.RunFor(simtime.Millisecond)
	k.Kill(p.PID, sig.SIGTERM)
	k.RunFor(5 * simtime.Millisecond)
	if p.State == proc.StateZombie {
		t.Fatal("ignored SIGTERM killed the process")
	}
}

func TestWriteFDChargesDiskTime(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := ctxFor(t, k, p)
	fd, err := ctx.Open("/out", fs.OWrite|fs.OCreate)
	if err != nil {
		t.Fatal(err)
	}
	before := k.Now()
	n, err := ctx.WriteFD(fd, make([]byte, 1<<20))
	if err != nil || n != 1<<20 {
		t.Fatalf("WriteFD: %d %v", n, err)
	}
	// 1 MiB at 50 MB/s ≈ 21 ms of disk streaming must have elapsed.
	if k.Now().Sub(before) < 15*simtime.Millisecond {
		t.Fatalf("disk write cost only %v", k.Now().Sub(before))
	}
	if _, err := ctx.WriteFD(99, []byte("x")); err == nil {
		t.Fatal("write to bad fd succeeded")
	}
	if _, err := ctx.ReadFD(99, make([]byte, 1)); err == nil {
		t.Fatal("read from bad fd succeeded")
	}
	if err := ctx.SeekSet(fd, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.SeekCur(99); err == nil {
		t.Fatal("lseek on bad fd succeeded")
	}
}

func TestMmapMunmapAndIoctlErrors(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := ctxFor(t, k, p)
	addr, err := ctx.Mmap(4*mem.PageSize, mem.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Store8(addr, 7); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Munmap(addr); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Munmap(addr); err == nil {
		t.Fatal("double munmap succeeded")
	}
	if err := ctx.Ioctl(99, 1, nil); err == nil {
		t.Fatal("ioctl on bad fd succeeded")
	}
}

func TestKillErrors(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := ctxFor(t, k, p)
	if err := ctx.Kill(999, sig.SIGTERM); err == nil {
		t.Fatal("kill of missing pid succeeded")
	}
	k.Exit(p, 0)
	if err := k.SendSignal(p, sig.SIGTERM); err == nil {
		t.Fatal("signal to zombie succeeded")
	}
}

func TestForkRunnableChildExecutes(t *testing.T) {
	k := newTestKernel(t, counter{"count"})
	p, _ := k.Spawn("count")
	p.Regs().G[1] = 1 << 30
	k.RunFor(2 * simtime.Millisecond)
	ctx := ctxFor(t, k, p)
	child, err := ctx.Fork(true)
	if err != nil {
		t.Fatal(err)
	}
	if child.State != proc.StateReady {
		t.Fatalf("runnable child state %v", child.State)
	}
	pcAt := child.Regs().PC
	k.RunFor(5 * simtime.Millisecond)
	if child.Regs().PC <= pcAt {
		t.Fatal("runnable fork child made no progress")
	}
	if child.CPUTime == 0 {
		t.Fatal("child accumulated no CPU time")
	}
}

func TestRunWhileDepthGuard(t *testing.T) {
	k := newTestKernel(t)
	var recurse func(d int)
	recurse = func(d int) {
		if d == 0 {
			return
		}
		k.RunWhile(simtime.Microsecond, nil)
		recurse(d - 1)
	}
	// Deep nesting must not panic or hang; the guard degrades to plain
	// clock advancement.
	before := k.Now()
	k.nestDepth = 20
	k.RunWhile(simtime.Millisecond, nil)
	k.nestDepth = 0
	if k.Now().Sub(before) < simtime.Millisecond {
		t.Fatal("guarded RunWhile did not advance time")
	}
	recurse(3)
}

func TestContextStringAndGetPIDVirtualization(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := ctxFor(t, k, p)
	if ctx.String() == "" {
		t.Fatal("empty context string")
	}
	if got := ctx.GetPID(); got != p.PID {
		t.Fatalf("GetPID = %d", got)
	}
	p.VPID = 42
	if got := ctx.GetPID(); got != 42 {
		t.Fatalf("virtualized GetPID = %d, want 42", got)
	}
}

func TestSpawnArgsPreserved(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, err := k.Spawn("handler", "-x", "7")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Args) != 2 || p.Args[0] != "-x" {
		t.Fatalf("Args = %v", p.Args)
	}
}

func TestRunUntilExitDeadline(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler") // runs forever
	if k.RunUntilExit(p, k.Now().Add(2*simtime.Millisecond)) {
		t.Fatal("RunUntilExit claimed an infinite process exited")
	}
}

func TestChargeIgnoresNonPositive(t *testing.T) {
	k := newTestKernel(t)
	before := k.Now()
	k.Charge(0, "x")
	k.Charge(-5, "x")
	if k.Now() != before {
		t.Fatal("non-positive charge advanced time")
	}
}

func TestLedgerEnvIntegration(t *testing.T) {
	// Kernel as Biller: charging attributes to the ledger too.
	k := newTestKernel(t)
	var bill costmodel.Biller = k
	bill.Charge(simtime.Millisecond, "test-cat")
	if k.Ledger.ByCategory["test-cat"] != simtime.Millisecond {
		t.Fatal("ledger attribution missing")
	}
}
