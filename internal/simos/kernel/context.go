package kernel

import (
	"fmt"

	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
)

// Context is the execution context handed to Program.Step: the syscall
// API plus direct (user-mode) memory access. Every syscall charges the
// mode-switch cost the paper highlights as the user-level checkpointing
// tax (§3), and bumps the kernel's syscall counter so experiments can
// report syscalls-per-checkpoint.
type Context struct {
	K *Kernel
	P *proc.Process
	T *proc.Thread
}

// Regs returns the current thread's register file.
func (c *Context) Regs() *proc.Regs { return &c.T.Regs }

// Compute charges n cycles of pure CPU work.
func (c *Context) Compute(n int64) { c.K.Charge(c.K.CM.Cycles(n), "compute") }

// syscall charges the fixed syscall cost and counts it.
func (c *Context) syscall(name string) {
	c.K.SyscallCount++
	c.K.Charge(c.K.CM.Syscall(), "syscall:"+name)
}

// --- Memory access (user mode: protection enforced, faults handled) ---

// Load reads user memory with protection checks; the memcpy cost scales
// with size.
func (c *Context) Load(addr mem.Addr, buf []byte) error {
	c.K.Charge(c.K.CM.MemCopy(len(buf)), "mem-read")
	return c.P.AS.Read(addr, buf)
}

// Store writes user memory with protection checks; protection faults go
// through the installed fault handler (dirty tracking) or surface as
// errors (→ SIGSEGV).
func (c *Context) Store(addr mem.Addr, data []byte) error {
	c.K.Charge(c.K.CM.MemCopy(len(data)), "mem-write")
	return c.P.AS.Write(addr, data)
}

// Load8/Store8 are register-width conveniences.
func (c *Context) Load8(addr mem.Addr) (uint64, error) {
	var b [8]byte
	if err := c.Load(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

func (c *Context) Store8(addr mem.Addr, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return c.Store(addr, b[:])
}

// NonReentrantEnter marks the process as inside a malloc/free-class
// function (the §3 signal-handler deadlock hazard); NonReentrantExit
// clears it.
func (c *Context) NonReentrantEnter() { c.P.InNonReentrant = true }

// NonReentrantExit ends the non-reentrant section.
func (c *Context) NonReentrantExit() { c.P.InNonReentrant = false }

// --- Process control syscalls ---

// GetPID returns the caller's process ID — the virtualized one when the
// process runs inside a pod (ZAP's PID virtualization).
func (c *Context) GetPID() proc.PID {
	c.syscall("getpid")
	if c.P.VPID != 0 {
		return c.P.VPID
	}
	return c.P.PID
}

// Exit terminates the calling process. The program should return
// StatusExited after calling this.
func (c *Context) Exit(code int) {
	c.syscall("exit")
	c.P.ExitCode = code
	c.K.Exit(c.P, code)
}

// Kill sends a signal to another process (kill(2)), the user-initiation
// path for signal-driven checkpointers.
func (c *Context) Kill(pid proc.PID, s sig.Signal) error {
	c.syscall("kill")
	return c.K.Kill(pid, s)
}

// Fork clones the calling process. The child is created stopped (not
// enqueued); pass runnable=true to start it. The paper's "Checkpoint"
// system [5] forks so a concurrent thread can save the frozen copy while
// the parent keeps running.
func (c *Context) Fork(runnable bool) (*proc.Process, error) {
	c.syscall("fork")
	return c.K.Fork(c.P, runnable)
}

// Fork clones p: address space (deep copy, charged per page), signal
// state, fd table (fresh descriptions with the same nodes and offsets),
// registers, args. The child starts stopped unless runnable.
func (k *Kernel) Fork(p *proc.Process, runnable bool) (*proc.Process, error) {
	nPages := int(p.AS.ResidentBytes() / mem.PageSize)
	k.Charge(k.CM.Fork(nPages), "fork")
	child := k.Procs.Allocate(p.PID, p.Exe)
	child.Args = append([]string(nil), p.Args...)
	child.AS = p.AS.Clone()
	child.Sig = p.Sig.Clone()
	child.Policy = p.Policy
	child.StaticPrio = p.StaticPrio
	child.Threads = nil
	for _, t := range p.Threads {
		child.Threads = append(child.Threads, &proc.Thread{TID: t.TID, Regs: t.Regs})
	}
	for fd, of := range p.OpenFDs() {
		nof, err := k.FS.Open(of.Node.Path, of.Flags&^fs.OAppend)
		if err != nil {
			// Deleted-but-open files cannot be reopened by path; share the
			// description (good enough for the fork-save-discard pattern).
			child.InstallFDAt(fd, of)
			continue
		}
		_ = nof.SeekTo(of.Offset())
		child.InstallFDAt(fd, nof)
	}
	if runnable {
		child.State = proc.StateReady
		k.Sched.Enqueue(child)
	} else {
		child.State = proc.StateStopped
	}
	return child, nil
}

// Yield gives up the CPU voluntarily (sched_yield).
func (c *Context) Yield() { c.syscall("sched_yield") }

// BlockFor blocks the process for d of simulated time, arranging its own
// wakeup (nanosleep). The program must return StatusBlocked after this.
func (c *Context) BlockFor(d simtime.Duration, reason string) {
	c.syscall("nanosleep")
	p := c.P
	p.WaitReason = reason
	p.State = proc.StateBlocked
	c.K.Sched.Dequeue(p)
	c.K.Eng.After(d, func() {
		// The wait is over even if the process was frozen meanwhile (a
		// checkpoint stop): clearing WaitReason records that, so whoever
		// unfreezes it knows not to put it back to sleep.
		p.WaitReason = ""
		if p.State == proc.StateBlocked {
			c.K.Wake(p)
		}
	})
}

// IO performs a blocking operation of duration d while other processes
// run (nested execution). Use for disk and network waits.
func (c *Context) IO(d simtime.Duration, what string) {
	c.K.Ledger.Charge(0, "io:"+what) // count the op even if duration is 0
	if d <= 0 {
		return
	}
	c.P.WaitReason = what
	st := c.P.State
	c.P.State = proc.StateBlocked
	c.K.Sched.Dequeue(c.P)
	c.K.RunWhile(d, c.P)
	c.P.WaitReason = ""
	c.P.State = st
	if c.P.Runnable() {
		c.K.Sched.Enqueue(c.P)
	}
	// I/O wait is attributed to the ledger but not to process CPU time.
	c.K.Ledger.Charge(d, "io:"+what)
}

// --- Memory management syscalls ---

// Sbrk adjusts the heap break by delta and returns the new break.
// Sbrk(0) is the paper's example of extracting the heap boundary from
// user level.
func (c *Context) Sbrk(delta int64) (mem.Addr, error) {
	c.syscall("sbrk")
	cur := c.P.AS.Brk()
	if delta == 0 {
		return cur, nil
	}
	nb := mem.Addr(int64(cur) + delta)
	if err := c.P.AS.SetBrk(nb); err != nil {
		return cur, err
	}
	return c.P.AS.Brk(), nil
}

// Mmap maps length bytes of anonymous memory and returns the address.
func (c *Context) Mmap(length uint64, prot mem.Prot) (mem.Addr, error) {
	c.syscall("mmap")
	v, err := c.P.AS.MapAnywhere(mmapBase, length, prot, mem.KindAnon, "[mmap]")
	if err != nil {
		return 0, err
	}
	return v.Start, nil
}

// Munmap unmaps the region starting at addr.
func (c *Context) Munmap(addr mem.Addr) error {
	c.syscall("munmap")
	return c.P.AS.Unmap(addr)
}

// Mprotect changes protection on a range, charging the per-page PTE cost;
// this is the user-level incremental tracker's main expense.
func (c *Context) Mprotect(addr mem.Addr, length uint64, prot mem.Prot) error {
	nPages := int(length / mem.PageSize)
	c.K.SyscallCount++
	c.K.Charge(c.K.CM.Mprotect(nPages), "syscall:mprotect")
	_, err := c.P.AS.Protect(addr, length, prot)
	return err
}

// CheckpointRegion declares a checkpoint-region annotation for the
// calling process (CRAFT-style protect/exclude hints consumed by capture
// and by liveness trackers). One syscall per declaration; redeclaring a
// start address replaces the earlier annotation.
func (c *Context) CheckpointRegion(r proc.CkptRegion) error {
	c.syscall("ckpt_region")
	if r.Length <= 0 {
		return fmt.Errorf("kernel: CheckpointRegion: non-positive length %d", r.Length)
	}
	if c.P.AS.Find(r.Start) == nil {
		return fmt.Errorf("kernel: CheckpointRegion: %#x not mapped", uint64(r.Start))
	}
	c.P.AddCkptRegion(r)
	return nil
}

// ClearCheckpointRegions drops every region annotation (one syscall).
func (c *Context) ClearCheckpointRegions() {
	c.syscall("ckpt_region")
	c.P.CkptRegions = nil
}

// Maps returns the process's memory map, as user code would read it from
// /proc/self/maps (one syscall plus a per-VMA parse cost).
func (c *Context) Maps() []*mem.VMA {
	c.syscall("read:/proc/self/maps")
	vmas := c.P.AS.VMAs()
	c.K.Charge(simtime.Duration(len(vmas))*500*simtime.Nanosecond, "parse-maps")
	return vmas
}

// --- File syscalls ---

// Open opens a path, returning a descriptor.
func (c *Context) Open(path string, flags fs.OpenFlags) (int, error) {
	c.syscall("open")
	of, err := c.K.FS.Open(path, flags)
	if err != nil {
		return -1, err
	}
	return c.P.InstallFD(of), nil
}

// Close closes a descriptor.
func (c *Context) Close(fd int) error {
	c.syscall("close")
	return c.P.CloseFD(fd)
}

// ReadFD reads from a descriptor at its current offset. Disk time is
// modeled for regular files via IO.
func (c *Context) ReadFD(fd int, buf []byte) (int, error) {
	c.syscall("read")
	of, err := c.P.FD(fd)
	if err != nil {
		return 0, err
	}
	n, err := of.Read(c, buf)
	if err == nil && of.Node.Kind == fs.KindRegular && n > 0 {
		c.IO(c.K.CM.DiskStream(n), "disk-read")
	}
	return n, err
}

// WriteFD writes to a descriptor at its current offset.
func (c *Context) WriteFD(fd int, data []byte) (int, error) {
	c.syscall("write")
	of, err := c.P.FD(fd)
	if err != nil {
		return 0, err
	}
	n, err := of.Write(c, data)
	if err == nil && of.Node.Kind == fs.KindRegular && n > 0 {
		c.IO(c.K.CM.DiskStream(n), "disk-write")
	}
	return n, err
}

// SeekCur returns the current offset of fd — lseek(fd, 0, SEEK_CUR), the
// paper's example of extracting file positions from user level.
func (c *Context) SeekCur(fd int) (int64, error) {
	c.syscall("lseek")
	of, err := c.P.FD(fd)
	if err != nil {
		return 0, err
	}
	return of.Offset(), nil
}

// SeekSet sets the offset of fd.
func (c *Context) SeekSet(fd int, off int64) error {
	c.syscall("lseek")
	of, err := c.P.FD(fd)
	if err != nil {
		return err
	}
	return of.SeekTo(off)
}

// Ioctl issues a device control request on fd (the CRAK/BLCR interface).
func (c *Context) Ioctl(fd int, request uint, arg any) error {
	c.syscall("ioctl")
	of, err := c.P.FD(fd)
	if err != nil {
		return err
	}
	return of.Ioctl(c, request, arg)
}

// --- Signal syscalls ---

// SigAction installs a user handler.
func (c *Context) SigAction(s sig.Signal, h *sig.Handler) error {
	c.syscall("sigaction")
	return c.P.Sig.SetHandler(s, h)
}

// SigIgnore sets SIG_IGN.
func (c *Context) SigIgnore(s sig.Signal) error {
	c.syscall("sigaction")
	return c.P.Sig.Ignore(s)
}

// SigBlock/SigUnblock adjust the blocked mask (sigprocmask).
func (c *Context) SigBlock(s sig.Signal) {
	c.syscall("sigprocmask")
	c.P.Sig.Block(s)
}

// SigUnblock removes s from the blocked mask.
func (c *Context) SigUnblock(s sig.Signal) {
	c.syscall("sigprocmask")
	c.P.Sig.Unblock(s)
}

// SigPending returns the pending set — the sigispending() extraction the
// paper cites.
func (c *Context) SigPending() []sig.Signal {
	c.syscall("sigpending")
	return c.P.Sig.Pending()
}

// Alarm schedules SIGALRM for the caller after d (setitimer-style). A
// zero d cancels nothing (we keep it one-shot; periodic timers re-arm in
// the handler, as libckpt/Esky do).
func (c *Context) Alarm(d simtime.Duration) {
	c.syscall("alarm")
	p := c.P
	c.K.Eng.After(d, func() {
		if p.State != proc.StateZombie && p.State != proc.StateDead {
			_ = c.K.SendSignal(p, sig.SIGALRM)
		}
	})
}

func (c *Context) String() string {
	return fmt.Sprintf("ctx(pid %d %s @%v)", c.P.PID, c.P.Exe, c.K.Now())
}
