package kernel

import (
	"fmt"

	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
)

// Socket is a kernel-persistent communication endpoint. Its state lives in
// the kernel, not the process image — exactly the class of resource the
// paper says user-level checkpointing cannot capture and that system-level
// virtualization (ZAP pods) can recreate transparently (§3).
type Socket struct {
	ID    int
	Owner proc.PID
	Peer  string // endpoint descriptor, e.g. "server:9000"
	buf   []byte
}

// SocketOpen creates a connected socket to peer and returns its id.
func (c *Context) SocketOpen(peer string) int {
	c.syscall("socket+connect")
	k := c.K
	k.nextSock++
	s := &Socket{ID: k.nextSock, Owner: c.P.PID, Peer: peer}
	k.sockets[s.ID] = s
	return s.ID
}

// SocketSend queues data on the socket.
func (c *Context) SocketSend(id int, data []byte) error {
	c.syscall("send")
	s, ok := c.K.sockets[id]
	if !ok {
		return fmt.Errorf("kernel: pid %d: no socket %d (connection lost)", c.P.PID, id)
	}
	s.buf = append(s.buf, data...)
	return nil
}

// SocketPing verifies the connection is still alive — the restart
// validation probe used by the E9 resource matrix.
func (c *Context) SocketPing(id int) error {
	c.syscall("send")
	if _, ok := c.K.sockets[id]; !ok {
		return fmt.Errorf("kernel: pid %d: no socket %d (connection lost)", c.P.PID, id)
	}
	return nil
}

// SocketClose destroys the socket.
func (c *Context) SocketClose(id int) {
	c.syscall("close")
	delete(c.K.sockets, id)
}

// Sockets returns the socket table entries owned by pid (kernel-side
// inspection used by virtualizing mechanisms).
func (k *Kernel) Sockets(pid proc.PID) []*Socket {
	var out []*Socket
	for _, s := range k.sockets {
		if s.Owner == pid {
			out = append(out, s)
		}
	}
	return out
}

// RecreateSocket installs a socket with a specific id for pid — the pod
// virtualization restore path (ZAP). It fails if the id is taken.
func (k *Kernel) RecreateSocket(id int, pid proc.PID, peer string) error {
	if _, ok := k.sockets[id]; ok {
		return fmt.Errorf("kernel: socket id %d already in use", id)
	}
	k.sockets[id] = &Socket{ID: id, Owner: pid, Peer: peer}
	if id > k.nextSock {
		k.nextSock = id
	}
	return nil
}

// ShmAttach attaches (creating on first use) a named shared-memory
// segment of the given size, returning its address. The segment registry
// is kernel state; its *existence* does not travel with a process image.
func (c *Context) ShmAttach(key string, size uint64) (mem.Addr, error) {
	c.syscall("shmat")
	k := c.K
	if _, ok := k.shmData[key]; !ok {
		k.shmData[key] = make([]byte, size)
	}
	v, err := c.P.AS.MapAnywhere(mmapBase, size, mem.ProtRW, mem.KindShared, "shm:"+key)
	if err != nil {
		return 0, err
	}
	// Materialize the segment's current contents into the mapping.
	if data := k.shmData[key]; len(data) > 0 {
		if err := c.P.AS.WriteDirect(v.Start, data); err != nil {
			return 0, err
		}
	}
	return v.Start, nil
}

// ShmExists reports whether the named segment exists on this kernel —
// restart on a different machine without virtualization finds it missing.
func (k *Kernel) ShmExists(key string) bool {
	_, ok := k.shmData[key]
	return ok
}

// RecreateShm installs a segment with specific contents (virtualized
// restore path).
func (k *Kernel) RecreateShm(key string, data []byte) {
	k.shmData[key] = append([]byte(nil), data...)
}

// ShmData returns a copy of a segment's kernel-side contents.
func (k *Kernel) ShmData(key string) ([]byte, bool) {
	d, ok := k.shmData[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}
