package kernel

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
)

// counter is a minimal well-behaved program: each step does some compute,
// stores its iteration count into the heap, and exits after G[1] steps.
// All state lives in registers + memory, per the Program contract.
type counter struct{ name string }

func (c counter) Name() string { return c.name }

func (c counter) Init(ctx *Context) error {
	ctx.Regs().G[1] = 50 // default iterations
	return nil
}

func (c counter) Step(ctx *Context) (Status, error) {
	r := ctx.Regs()
	if r.PC >= r.G[1] {
		ctx.Exit(0)
		return StatusExited, nil
	}
	ctx.Compute(100_000) // 50µs at 2 GHz
	if err := ctx.Store8(heapBase+mem.Addr(8*(r.PC%16)), r.PC); err != nil {
		return StatusExited, err
	}
	r.PC++
	return StatusRunning, nil
}

// sleeper blocks for a fixed duration once, then exits.
type sleeper struct{}

func (sleeper) Name() string            { return "sleeper" }
func (sleeper) Init(ctx *Context) error { return nil }
func (sleeper) Step(ctx *Context) (Status, error) {
	r := ctx.Regs()
	switch r.PC {
	case 0:
		r.PC = 1
		ctx.BlockFor(10*simtime.Millisecond, "nap")
		return StatusBlocked, nil
	default:
		ctx.Exit(7)
		return StatusExited, nil
	}
}

// wild writes to unmapped memory.
type wild struct{}

func (wild) Name() string            { return "wild" }
func (wild) Init(ctx *Context) error { return nil }
func (wild) Step(ctx *Context) (Status, error) {
	return StatusRunning, ctx.Store8(0x10, 1)
}

func newTestKernel(t *testing.T, progs ...Program) *Kernel {
	t.Helper()
	reg := NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return New(DefaultConfig("node0"), costmodel.Default2005(), reg)
}

func TestSpawnRunExit(t *testing.T) {
	k := newTestKernel(t, counter{"count"})
	p, err := k.Spawn("count")
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 1 || p.State != proc.StateReady {
		t.Fatalf("spawned %v", p)
	}
	if !k.RunUntilExit(p, k.Now().Add(simtime.Minute)) {
		t.Fatalf("process did not exit; state=%v", p.State)
	}
	if p.ExitCode != 0 {
		t.Fatalf("exit code %d", p.ExitCode)
	}
	// The counter stored its final values in the heap.
	var buf [8]byte
	if err := p.AS.ReadDirect(heapBase, buf[:]); err != nil {
		t.Fatal(err)
	}
	if p.CPUTime == 0 {
		t.Fatal("no CPU time accounted")
	}
}

func TestSpawnUnknownProgram(t *testing.T) {
	k := newTestKernel(t)
	if _, err := k.Spawn("nope"); err == nil {
		t.Fatal("unknown program spawned")
	}
}

func TestRegistryDuplicate(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(counter{"x"})
	if err := reg.Register(counter{"x"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestSleeperBlocksAndWakes(t *testing.T) {
	k := newTestKernel(t, sleeper{})
	p, _ := k.Spawn("sleeper")
	k.RunFor(5 * simtime.Millisecond)
	if p.State != proc.StateBlocked {
		t.Fatalf("state = %v, want blocked", p.State)
	}
	k.RunFor(10 * simtime.Millisecond)
	if p.State != proc.StateZombie || p.ExitCode != 7 {
		t.Fatalf("state=%v code=%d, want zombie/7", p.State, p.ExitCode)
	}
}

func TestWildWriteKillsProcess(t *testing.T) {
	k := newTestKernel(t, wild{})
	p, _ := k.Spawn("wild")
	k.RunFor(10 * simtime.Millisecond)
	if p.State != proc.StateZombie || p.ExitCode != 139 {
		t.Fatalf("state=%v code=%d, want SIGSEGV kill (139)", p.State, p.ExitCode)
	}
}

// handlerProg installs a SIGUSR1 handler that records delivery time in
// G[2]; the main loop spins forever.
type handlerProg struct{ nonReentrant bool }

func (handlerProg) Name() string { return "handler" }
func (h handlerProg) Init(ctx *Context) error {
	return ctx.P.Sig.SetHandler(sig.SIGUSR1, &sig.Handler{
		Name:             "test",
		UsesNonReentrant: h.nonReentrant,
		Fn: func(c any, s sig.Signal) {
			ctx2 := c.(*Context)
			ctx2.Regs().G[2] = uint64(ctx2.K.Now())
		},
	})
}
func (handlerProg) Step(ctx *Context) (Status, error) {
	ctx.Compute(50_000)
	return StatusRunning, nil
}

func TestSignalHandlerDelivery(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	k.RunFor(2 * simtime.Millisecond)
	if err := k.Kill(p.PID, sig.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	k.RunFor(5 * simtime.Millisecond)
	if p.Regs().G[2] == 0 {
		t.Fatal("handler never ran")
	}
	if k.SignalCount == 0 {
		t.Fatal("signal not counted")
	}
}

func TestSignalDeliveryDeferredUnderLoad(t *testing.T) {
	// The paper: kernel-mode signal delivery waits for the next
	// kernel→user transition in the *target's* context, so delivery delay
	// grows with the number of competing processes.
	delayWithLoad := func(load int) simtime.Duration {
		progs := []Program{handlerProg{}}
		for i := 0; i < load; i++ {
			progs = append(progs, counter{name: "bg" + string(rune('a'+i))})
		}
		k := newTestKernel(t, progs...)
		p, _ := k.Spawn("handler")
		for i := 0; i < load; i++ {
			bg, _ := k.Spawn("bg" + string(rune('a'+i)))
			bg.Regs().G[1] = 1 << 30 // effectively infinite
		}
		k.RunFor(2 * simtime.Millisecond)
		sent := k.Now()
		k.Kill(p.PID, sig.SIGUSR1)
		k.RunFor(200 * simtime.Millisecond)
		if p.Regs().G[2] == 0 {
			t.Fatalf("load %d: handler never ran", load)
		}
		return simtime.Time(p.Regs().G[2]).Sub(sent)
	}
	d0 := delayWithLoad(0)
	d8 := delayWithLoad(8)
	if d8 <= d0 {
		t.Fatalf("delivery delay did not grow with load: %v vs %v", d0, d8)
	}
}

func TestSIGKILLDefaultAction(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	k.RunFor(time1ms())
	k.Kill(p.PID, sig.SIGKILL)
	k.RunFor(time1ms())
	if p.State != proc.StateZombie {
		t.Fatalf("state after SIGKILL = %v", p.State)
	}
}

func TestSIGSTOPAndCONT(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	k.RunFor(time1ms())
	k.Kill(p.PID, sig.SIGSTOP)
	k.RunFor(5 * simtime.Millisecond)
	if p.State != proc.StateStopped {
		t.Fatalf("state = %v, want stopped", p.State)
	}
	cpu := p.CPUTime
	k.RunFor(5 * simtime.Millisecond)
	if p.CPUTime != cpu {
		t.Fatal("stopped process accumulated CPU time")
	}
	k.Kill(p.PID, sig.SIGCONT)
	k.RunFor(5 * simtime.Millisecond)
	if p.CPUTime == cpu {
		t.Fatal("SIGCONT did not resume the process")
	}
}

func TestNonReentrantDeadlock(t *testing.T) {
	k := newTestKernel(t, handlerProg{nonReentrant: true})
	p, _ := k.Spawn("handler")
	k.RunFor(time1ms())
	p.InNonReentrant = true // process is inside malloc
	k.Kill(p.PID, sig.SIGUSR1)
	k.RunFor(5 * simtime.Millisecond)
	if k.DeadlockCount != 1 {
		t.Fatalf("DeadlockCount = %d, want 1", k.DeadlockCount)
	}
	if p.State != proc.StateBlocked {
		t.Fatalf("deadlocked process state = %v", p.State)
	}
}

func TestKernelSignalAction(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	var ran bool
	ckptSig := k.SigTable.Register("SIGCKPT", func(c any, s sig.Signal) { ran = true })
	p, _ := k.Spawn("handler")
	k.RunFor(time1ms())
	k.Kill(p.PID, ckptSig)
	k.RunFor(5 * simtime.Millisecond)
	if !ran {
		t.Fatal("kernel signal action did not run")
	}
	if p.State == proc.StateZombie {
		t.Fatal("kernel-action signal killed the process")
	}
}

func TestAlarm(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	k.RunFor(time1ms())
	// Install SIGALRM handler reusing the USR1 handler body.
	p.Sig.SetHandler(sig.SIGALRM, p.Sig.Disposition(sig.SIGUSR1).Handler)
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	ctx.Alarm(20 * simtime.Millisecond)
	k.RunFor(10 * simtime.Millisecond)
	if p.Regs().G[2] != 0 {
		t.Fatal("alarm fired early")
	}
	k.RunFor(15 * simtime.Millisecond)
	if p.Regs().G[2] == 0 {
		t.Fatal("alarm never fired")
	}
}

func TestFileSyscalls(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	k.FS.WriteFile("/input", []byte("abcdefgh"))
	p, _ := k.Spawn("handler")
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	fd, err := ctx.Open("/input", fs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := ctx.ReadFD(fd, buf)
	if err != nil || n != 4 || string(buf) != "abcd" {
		t.Fatalf("read %d %q %v", n, buf, err)
	}
	off, _ := ctx.SeekCur(fd)
	if off != 4 {
		t.Fatalf("offset %d", off)
	}
	if err := ctx.Close(fd); err != nil {
		t.Fatal(err)
	}
	before := k.SyscallCount
	ctx.GetPID()
	if k.SyscallCount != before+1 {
		t.Fatal("syscall not counted")
	}
}

func TestSbrkAndMmap(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	base, err := ctx.Sbrk(0)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ctx.Sbrk(3 * mem.PageSize)
	if err != nil || nb != base+3*mem.PageSize {
		t.Fatalf("sbrk: %v %v", nb, err)
	}
	addr, err := ctx.Mmap(4*mem.PageSize, mem.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Store8(addr, 42); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Munmap(addr); err != nil {
		t.Fatal(err)
	}
}

func TestForkClonesState(t *testing.T) {
	k := newTestKernel(t, counter{"count"})
	p, _ := k.Spawn("count")
	k.RunFor(2 * simtime.Millisecond)
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	child, err := ctx.Fork(false)
	if err != nil {
		t.Fatal(err)
	}
	if child.State != proc.StateStopped {
		t.Fatalf("child state = %v, want stopped", child.State)
	}
	if !child.AS.Equal(p.AS) {
		t.Fatal("child memory differs from parent")
	}
	if child.Regs().PC != p.Regs().PC {
		t.Fatal("child registers differ")
	}
	// Parent keeps running; child stays frozen — the fork-consistency
	// property the "Checkpoint" system exploits.
	sum := child.AS.Checksum()
	k.RunFor(5 * simtime.Millisecond)
	if child.AS.Checksum() != sum {
		t.Fatal("frozen child image changed while parent ran")
	}
}

func TestIORunsOthersWhileBlocked(t *testing.T) {
	k := newTestKernel(t, counter{"count"}, handlerProg{})
	bg, _ := k.Spawn("count")
	bg.Regs().G[1] = 1 << 30
	p, _ := k.Spawn("handler")
	k.RunFor(time1ms())
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	before := bg.CPUTime
	ctx.IO(50*simtime.Millisecond, "disk")
	if bg.CPUTime <= before {
		t.Fatal("background process made no progress during IO")
	}
}

func TestEnsureASChargesTLB(t *testing.T) {
	k := newTestKernel(t, counter{"a"}, counter{"b"})
	pa, _ := k.Spawn("a")
	pb, _ := k.Spawn("b")
	k.EnsureAS(pa)
	n := k.TLBFlushCount
	k.EnsureAS(pa) // same AS: free
	if k.TLBFlushCount != n {
		t.Fatal("redundant AS switch charged")
	}
	k.EnsureAS(pb)
	if k.TLBFlushCount != n+1 {
		t.Fatal("AS switch not charged")
	}
}

func TestInterruptsFireAndDefer(t *testing.T) {
	cfg := DefaultConfig("n")
	cfg.InterruptRate = 1000 // 1k/s
	reg := NewRegistry()
	reg.MustRegister(counter{"c"})
	k := New(cfg, costmodel.Default2005(), reg)
	p, _ := k.Spawn("c")
	p.Regs().G[1] = 1 << 30
	k.RunFor(100 * simtime.Millisecond)
	if k.InterruptCount == 0 {
		t.Fatal("no interrupts fired")
	}
	n := k.InterruptCount
	k.DisableInterrupts()
	k.RunFor(100 * simtime.Millisecond)
	if k.InterruptCount != n {
		t.Fatal("interrupts fired while disabled")
	}
	k.EnableInterrupts()
	if k.InterruptCount == n {
		t.Fatal("deferred interrupts were dropped")
	}
}

func TestSocketsArePerKernel(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	id := ctx.SocketOpen("db:5432")
	if err := ctx.SocketPing(id); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SocketSend(id, []byte("q")); err != nil {
		t.Fatal(err)
	}
	socks := k.Sockets(p.PID)
	if len(socks) != 1 || socks[0].Peer != "db:5432" {
		t.Fatalf("Sockets = %v", socks)
	}
	ctx.SocketClose(id)
	if err := ctx.SocketPing(id); err == nil {
		t.Fatal("ping after close succeeded")
	}
	// Recreate (virtualized restore).
	if err := k.RecreateSocket(id, p.PID, "db:5432"); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SocketPing(id); err != nil {
		t.Fatal("recreated socket not alive")
	}
	if err := k.RecreateSocket(id, p.PID, "x"); err == nil {
		t.Fatal("duplicate socket id accepted")
	}
}

func TestShm(t *testing.T) {
	k := newTestKernel(t, handlerProg{})
	p, _ := k.Spawn("handler")
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	addr, err := ctx.ShmAttach("seg1", 2*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !k.ShmExists("seg1") {
		t.Fatal("segment not registered")
	}
	if err := ctx.Store8(addr, 99); err != nil {
		t.Fatal(err)
	}
	k.RecreateShm("seg2", []byte{1, 2, 3})
	if d, ok := k.ShmData("seg2"); !ok || len(d) != 3 {
		t.Fatal("RecreateShm/ShmData failed")
	}
}

func TestModuleLoadUnload(t *testing.T) {
	k := newTestKernel(t)
	m := &testModule{}
	if err := k.LoadModule(m); err != nil {
		t.Fatal(err)
	}
	if !k.ModuleLoaded("testmod") || !m.loaded {
		t.Fatal("module not loaded")
	}
	if err := k.LoadModule(m); err == nil {
		t.Fatal("double load accepted")
	}
	if err := k.UnloadModule("testmod"); err != nil {
		t.Fatal(err)
	}
	if k.ModuleLoaded("testmod") || m.loaded {
		t.Fatal("module not unloaded")
	}
	if err := k.UnloadModule("testmod"); err == nil {
		t.Fatal("double unload accepted")
	}
}

type testModule struct{ loaded bool }

func (m *testModule) ModuleName() string     { return "testmod" }
func (m *testModule) Load(k *Kernel) error   { m.loaded = true; return nil }
func (m *testModule) Unload(k *Kernel) error { m.loaded = false; return nil }

func TestHaltStopsExecution(t *testing.T) {
	k := newTestKernel(t, counter{"c"})
	p, _ := k.Spawn("c")
	p.Regs().G[1] = 1 << 30
	k.RunFor(time1ms())
	cpu := p.CPUTime
	k.SetHalted(true)
	k.RunFor(10 * simtime.Millisecond)
	if p.CPUTime != cpu {
		t.Fatal("halted machine executed work")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (simtime.Time, uint64, simtime.Duration) {
		k := newTestKernel(t, counter{"a"}, counter{"b"}, sleeper{})
		pa, _ := k.Spawn("a")
		pb, _ := k.Spawn("b")
		k.Spawn("sleeper")
		pa.Regs().G[1] = 2000
		pb.Regs().G[1] = 1500
		k.RunFor(2 * simtime.Second)
		return k.Now(), k.SyscallCount, pa.CPUTime
	}
	n1, s1, c1 := run()
	n2, s2, c2 := run()
	if n1 != n2 || s1 != s2 || c1 != c2 {
		t.Fatalf("nondeterministic run: (%v,%d,%v) vs (%v,%d,%v)", n1, s1, c1, n2, s2, c2)
	}
}

func time1ms() simtime.Duration { return simtime.Millisecond }
