// Package kernel ties the simulated OS together: the run loop, syscall
// layer, signal delivery at the kernel→user boundary, kernel threads,
// loadable modules, interrupts, and the accounting (Biller) that charges
// every operation to simulated time.
//
// Execution model. Programs (package workload and mechanism helpers) are
// stateless Go values registered by name; all mutable program state lives
// in the process's simulated registers and memory, so a restored
// register+memory image resumes execution exactly. The kernel runs one
// simulated CPU: it picks a process, runs Program.Step calls until the
// time slice expires or the process blocks, delivers signals on each
// return to user mode, and processes timer/device events in between.
//
// Nested execution. An operation that spans simulated time while other
// processes should keep running (a disk write, a kernel thread saving a
// forked image) calls Context.IO or Kernel.RunWhile, which recursively
// runs the scheduler loop for that span. This gives blocking semantics to
// straight-line Go code while keeping the simulation deterministic and
// single-threaded.
package kernel

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/costmodel"
	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simos/sched"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
)

// Status is the result of one Program.Step call.
type Status uint8

// Step results.
const (
	// StatusRunning means the program has more work; the kernel may call
	// Step again in this slice.
	StatusRunning Status = iota
	// StatusYield gives up the rest of the slice voluntarily.
	StatusYield
	// StatusBlocked means the program arranged its own wakeup (timer,
	// message arrival) and must not be stepped until state is Ready.
	StatusBlocked
	// StatusExited means the program is done; the exit code was set via
	// Context.Exit or defaults to 0.
	StatusExited
)

// Program is simulated executable code. Implementations must be stateless:
// a single Program value serves every process executing it, with all
// per-process state in registers and simulated memory (that is what makes
// checkpoint/restart exact).
type Program interface {
	// Name is the registry key, the analogue of the executable path.
	Name() string
	// Init builds the initial address space and registers at exec time.
	// It is NOT called on restart — restart restores memory and registers
	// from the image instead.
	Init(ctx *Context) error
	// Step runs a bounded unit of work (well under one scheduler tick).
	Step(ctx *Context) (Status, error)
}

// Registry maps program names to Program values, playing the role of the
// filesystem holding executables: restart looks the program up by name on
// the target machine.
type Registry struct {
	programs map[string]Program
}

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry { return &Registry{programs: make(map[string]Program)} }

// Register adds a program; duplicate names are an error.
func (r *Registry) Register(p Program) error {
	if _, ok := r.programs[p.Name()]; ok {
		return fmt.Errorf("kernel: program %q already registered", p.Name())
	}
	r.programs[p.Name()] = p
	return nil
}

// MustRegister is Register that panics on error (init-time wiring).
func (r *Registry) MustRegister(p Program) {
	if err := r.Register(p); err != nil {
		panic(err)
	}
}

// Lookup finds a program by name.
func (r *Registry) Lookup(name string) (Program, error) {
	p, ok := r.programs[name]
	if !ok {
		return nil, fmt.Errorf("kernel: no program %q", name)
	}
	return p, nil
}

// Module is a loadable kernel module (CRAK, BLCR, CHPOX...). Load
// registers devices, /proc entries, signals or kernel threads; Unload
// must undo them. The paper: "often it is possible to write most of the
// code as kernel module. This will provide portability and modularity."
type Module interface {
	ModuleName() string
	Load(k *Kernel) error
	Unload(k *Kernel) error
}

// Config tunes a kernel instance.
type Config struct {
	Hostname string
	// TickLen is the scheduler tick (time-slice granularity).
	TickLen simtime.Duration
	// InterruptRate is the mean device-interrupt rate in interrupts per
	// simulated second (Poisson); zero disables background interrupts.
	InterruptRate float64
	// InterruptHandler is the simulated time each device interrupt burns.
	InterruptHandler simtime.Duration
	// Seed drives all kernel-local randomness.
	Seed int64
}

// DefaultConfig returns the standard configuration.
func DefaultConfig(hostname string) Config {
	return Config{
		Hostname:         hostname,
		TickLen:          1 * simtime.Millisecond,
		InterruptRate:    0,
		InterruptHandler: 20 * simtime.Microsecond,
		Seed:             1,
	}
}

// Kernel is one simulated machine image.
type Kernel struct {
	Cfg      Config
	Eng      *simtime.Engine
	CM       *costmodel.Model
	FS       *fs.FS
	Procs    *proc.Table
	Sched    *sched.Scheduler
	SigTable *sig.Table
	Registry *Registry

	rng *rand.Rand

	current *proc.Process
	// lastAS tracks whose page tables are loaded, for TLB accounting.
	lastAS *mem.AddressSpace

	modules map[string]Module

	// Kernel-persistent resources (§3: state user-level schemes cannot
	// reach): sockets and shared-memory segments.
	sockets   map[int]*Socket
	nextSock  int
	shm       map[string]*mem.VMA
	shmData   map[string][]byte
	halted    bool
	intsOff   bool
	deferred  int
	nestDepth int

	// Ledger accumulates global cost attribution for experiments.
	Ledger *costmodel.Ledger

	// Stats
	SyscallCount   uint64
	SwitchCount    uint64
	TLBFlushCount  uint64
	SignalCount    uint64
	InterruptCount uint64
	DeadlockCount  uint64
}

// New builds a kernel on a fresh engine.
func New(cfg Config, cm *costmodel.Model, reg *Registry) *Kernel {
	return NewOnEngine(cfg, cm, reg, &simtime.Engine{})
}

// NewOnEngine builds a kernel sharing an existing engine (cluster use).
func NewOnEngine(cfg Config, cm *costmodel.Model, reg *Registry, eng *simtime.Engine) *Kernel {
	if cfg.TickLen <= 0 {
		cfg.TickLen = 1 * simtime.Millisecond
	}
	k := &Kernel{
		Cfg:      cfg,
		Eng:      eng,
		CM:       cm,
		FS:       fs.New(),
		Procs:    proc.NewTable(),
		Sched:    sched.New(),
		SigTable: sig.NewTable(),
		Registry: reg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		modules:  make(map[string]Module),
		sockets:  make(map[int]*Socket),
		shm:      make(map[string]*mem.VMA),
		shmData:  make(map[string][]byte),
		Ledger:   costmodel.NewLedger(),
	}
	if cfg.InterruptRate > 0 {
		k.scheduleNextInterrupt()
	}
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() simtime.Time { return k.Eng.Now() }

// Rand returns the kernel's deterministic RNG.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Charge implements costmodel.Biller: advances simulated time and
// attributes the cost. CPU time is billed to the current process.
func (k *Kernel) Charge(d simtime.Duration, what string) {
	if d <= 0 {
		return
	}
	k.Eng.Clock.Advance(d)
	k.Ledger.Charge(d, what)
	if k.current != nil {
		k.current.CPUTime += d
	}
}

// Current returns the running process (the `current` macro of §4.1), or
// nil when the kernel is idle.
func (k *Kernel) Current() *proc.Process { return k.current }

// Halted reports whether the machine is powered down (Software Suspend)
// or failed.
func (k *Kernel) Halted() bool { return k.halted }

// SetHalted powers the machine down or up.
func (k *Kernel) SetHalted(h bool) { k.halted = h }

// LoadModule loads a kernel module.
func (k *Kernel) LoadModule(m Module) error {
	if _, ok := k.modules[m.ModuleName()]; ok {
		return fmt.Errorf("kernel: module %q already loaded", m.ModuleName())
	}
	if err := m.Load(k); err != nil {
		return err
	}
	k.modules[m.ModuleName()] = m
	return nil
}

// UnloadModule unloads a module by name.
func (k *Kernel) UnloadModule(name string) error {
	m, ok := k.modules[name]
	if !ok {
		return fmt.Errorf("kernel: module %q not loaded", name)
	}
	if err := m.Unload(k); err != nil {
		return err
	}
	delete(k.modules, name)
	return nil
}

// ModuleLoaded reports whether the named module is loaded.
func (k *Kernel) ModuleLoaded(name string) bool {
	_, ok := k.modules[name]
	return ok
}

// Standard layout constants for Spawn.
const (
	textBase  = mem.Addr(0x0040_0000)
	heapBase  = mem.Addr(0x0060_0000)
	stackTop  = mem.Addr(0x7fff_0000)
	stackSize = 16 * mem.PageSize
	mmapBase  = mem.Addr(0x2000_0000)
)

// Spawn creates a process running the named program and enqueues it.
func (k *Kernel) Spawn(progName string, args ...string) (*proc.Process, error) {
	prog, err := k.Registry.Lookup(progName)
	if err != nil {
		return nil, err
	}
	p := k.Procs.Allocate(0, progName)
	p.Args = args
	if err := k.buildLayout(p); err != nil {
		return nil, err
	}
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	if err := prog.Init(ctx); err != nil {
		k.Procs.Remove(p.PID)
		return nil, fmt.Errorf("kernel: init %s: %w", progName, err)
	}
	p.State = proc.StateReady
	k.Sched.Enqueue(p)
	return p, nil
}

// SpawnKernelThread creates a kernel thread running prog with SCHED_FIFO
// priority rtprio. Kernel threads get no user address space.
func (k *Kernel) SpawnKernelThread(prog Program, rtprio int) (*proc.Process, error) {
	p := k.Procs.Allocate(0, prog.Name())
	p.KernelThread = true
	p.KProg = prog
	p.Policy = proc.SchedFIFO
	p.StaticPrio = rtprio
	ctx := &Context{K: k, P: p, T: p.MainThread()}
	if err := prog.Init(ctx); err != nil {
		k.Procs.Remove(p.PID)
		return nil, err
	}
	// Kernel threads usually start blocked, waiting for work.
	if p.State == proc.StateReady {
		k.Sched.Enqueue(p)
	}
	return p, nil
}

func (k *Kernel) buildLayout(p *proc.Process) error {
	if _, err := p.AS.Map(textBase, 4*mem.PageSize, mem.ProtRX, mem.KindText, p.Exe); err != nil {
		return err
	}
	if _, err := p.AS.Map(heapBase, mem.PageSize, mem.ProtRW, mem.KindHeap, "[heap]"); err != nil {
		return err
	}
	if _, err := p.AS.Map(stackTop-mem.Addr(stackSize), uint64(stackSize), mem.ProtRW, mem.KindStack, "[stack]"); err != nil {
		return err
	}
	p.Regs().SP = uint64(stackTop) - 64
	// Stamp the text region with the program name so text pages have
	// deterministic, program-specific content.
	name := []byte(p.Exe)
	if len(name) > mem.PageSize {
		name = name[:mem.PageSize]
	}
	return p.AS.WriteDirect(textBase, name)
}

// Exit terminates p with the given code.
func (k *Kernel) Exit(p *proc.Process, code int) {
	p.ExitCode = code
	p.State = proc.StateZombie
	k.Sched.Dequeue(p)
	for fd := range p.OpenFDs() {
		_ = p.CloseFD(fd)
	}
	if k.current == p {
		k.current = nil
	}
}

// Kill sends a signal to pid (the kill(2) path, also reachable from the
// simulated `kill` command line). Raising a signal makes a blocked-on-
// nothing process eligible again only if it is Ready/Running; stopped
// processes wake for SIGCONT/SIGKILL.
func (k *Kernel) Kill(pid proc.PID, s sig.Signal) error {
	p, err := k.Procs.Lookup(pid)
	if err != nil {
		return err
	}
	return k.SendSignal(p, s)
}

// SendSignal raises s on p directly ("directly updating the data structure
// of the process ... to represent that the checkpoint signal has been
// sent", §4.1).
func (k *Kernel) SendSignal(p *proc.Process, s sig.Signal) error {
	if p.State == proc.StateZombie || p.State == proc.StateDead {
		return fmt.Errorf("kernel: pid %d is %s", p.PID, p.State)
	}
	p.Sig.Raise(s)
	k.SignalCount++
	switch s {
	case sig.SIGCONT:
		if p.State == proc.StateStopped {
			p.State = proc.StateReady
			k.Sched.Enqueue(p)
		}
	case sig.SIGKILL:
		if p.State != proc.StateRunning {
			// Deliver immediately for non-running processes.
			k.deliverSignals(p)
		}
	}
	return nil
}

// Wake moves a blocked process to the ready queue.
func (k *Kernel) Wake(p *proc.Process) {
	if p.State == proc.StateBlocked || p.State == proc.StateStopped {
		p.State = proc.StateReady
	}
	if p.Runnable() {
		k.Sched.Enqueue(p)
	}
}

// Stop freezes a process (checkpoint freeze, SIGSTOP, hibernation).
func (k *Kernel) Stop(p *proc.Process) {
	if p.State == proc.StateZombie || p.State == proc.StateDead {
		return
	}
	p.State = proc.StateStopped
	k.Sched.Dequeue(p)
}

// DisableInterrupts defers background device interrupts until enabled
// again — the mechanism the paper says is "needed in order to be sure the
// kernel thread will never be interrupted".
func (k *Kernel) DisableInterrupts() { k.intsOff = true }

// EnableInterrupts re-enables interrupts and fires any deferred ones.
func (k *Kernel) EnableInterrupts() {
	k.intsOff = false
	for k.deferred > 0 {
		k.deferred--
		k.handleInterrupt()
	}
}

func (k *Kernel) scheduleNextInterrupt() {
	if k.Cfg.InterruptRate <= 0 {
		return
	}
	mean := float64(simtime.Second) / k.Cfg.InterruptRate
	gap := simtime.Duration(k.rng.ExpFloat64() * mean)
	if gap < simtime.Microsecond {
		gap = simtime.Microsecond
	}
	k.Eng.After(gap, func() {
		if !k.halted {
			if k.intsOff {
				k.deferred++
			} else {
				k.handleInterrupt()
			}
		}
		k.scheduleNextInterrupt()
	})
}

func (k *Kernel) handleInterrupt() {
	k.InterruptCount++
	k.Charge(k.CM.InterruptEntry+k.Cfg.InterruptHandler, "interrupt")
}

// EnsureAS models loading p's page tables: if another address space is
// live, charge a TLB flush plus refill costs. Kernel threads calling this
// on a target process pay exactly the switch the paper describes (§4.1);
// if the target was the interrupted (= last run) task, it is free.
func (k *Kernel) EnsureAS(p *proc.Process) {
	if p.KernelThread || p.AS == k.lastAS {
		return
	}
	k.TLBFlushCount++
	k.Charge(k.CM.TLBFlush+64*k.CM.TLBRefillPer, "tlb-switch")
	k.lastAS = p.AS
}

// RunFor advances the whole machine by d of simulated time.
func (k *Kernel) RunFor(d simtime.Duration) {
	k.runLoop(k.Now().Add(d), nil)
}

// RunUntilExit runs until p exits or the deadline passes; reports whether
// the process exited.
func (k *Kernel) RunUntilExit(p *proc.Process, deadline simtime.Time) bool {
	k.runLoop(deadline, func() bool { return p.State == proc.StateZombie || p.State == proc.StateDead })
	return p.State == proc.StateZombie || p.State == proc.StateDead
}

// RunWhile lets other processes run for a span of simulated time while the
// named process (may be nil) stays blocked: this is the nested-execution
// primitive behind Context.IO. It returns when the span has elapsed.
func (k *Kernel) RunWhile(d simtime.Duration, exclude *proc.Process) {
	if k.nestDepth > 16 {
		// Give up on nesting and just advance the clock; prevents
		// pathological recursion in adversarial tests.
		k.Eng.Clock.Advance(d)
		return
	}
	k.nestDepth++
	saved := k.current
	k.current = nil
	deadline := k.Now().Add(d)
	k.runLoop(deadline, nil)
	if k.Now() < deadline {
		k.Eng.Clock.AdvanceTo(deadline)
	}
	k.current = saved
	k.nestDepth--
}

// runLoop is the scheduler core: process events, pick, run a slice.
func (k *Kernel) runLoop(deadline simtime.Time, stop func() bool) {
	for k.Now() < deadline {
		if stop != nil && stop() {
			return
		}
		if k.halted {
			return
		}
		k.Eng.RunUntil(min(k.nextEventAt(deadline), k.Now()))
		p := k.Sched.Pick()
		if p == nil {
			// Idle: advance to the next event or the deadline.
			at, ok := k.Eng.Queue.NextAt()
			if !ok || at > deadline {
				k.Eng.Clock.AdvanceTo(deadline)
				return
			}
			k.Eng.RunUntil(at)
			continue
		}
		k.runSlice(p, deadline, stop)
	}
}

func (k *Kernel) nextEventAt(deadline simtime.Time) simtime.Time {
	at, ok := k.Eng.Queue.NextAt()
	if !ok || at > deadline {
		return deadline
	}
	return at
}

// runSlice runs p until its slice expires, it blocks/stops/exits, or the
// deadline passes.
func (k *Kernel) runSlice(p *proc.Process, deadline simtime.Time, stop func() bool) {
	prev := k.current
	if prev != p {
		k.SwitchCount++
		k.Sched.NoteSwitch()
		k.Charge(k.CM.ContextSwitch, "context-switch")
		if !p.KernelThread {
			k.EnsureAS(p)
		}
	}
	k.current = p
	p.State = proc.StateRunning

	prog, ok := p.KProg.(Program)
	if !ok {
		var err error
		prog, err = k.Registry.Lookup(p.Exe)
		if err != nil {
			k.Exit(p, 127)
			k.current = nil
			return
		}
	}

	sliceEnd := k.Now().Add(k.Cfg.TickLen)
	for k.Now() < sliceEnd && k.Now() < deadline {
		if stop != nil && stop() {
			break
		}
		// Kernel→user transition: deliver pending signals now.
		if !k.deliverSignals(p) {
			break // process no longer runnable (stopped, killed)
		}
		if p.State != proc.StateRunning {
			break
		}
		ctx := &Context{K: k, P: p, T: p.MainThread()}
		st, err := prog.Step(ctx)
		if err != nil {
			var f *mem.Fault
			if errors.As(err, &f) {
				// Unhandled memory fault: SIGSEGV default action = kill.
				k.Exit(p, 139)
			} else {
				k.Exit(p, 1)
			}
			break
		}
		// Run any events that became due while the step charged time.
		k.Eng.RunUntil(k.Now())
		switch st {
		case StatusExited:
			k.Exit(p, p.ExitCode)
		case StatusBlocked:
			if p.State == proc.StateRunning {
				p.State = proc.StateBlocked
			}
			// The step may have blocked and then been woken again within
			// the same call (barrier release); only a still-blocked
			// process leaves the runqueue.
			if p.State == proc.StateBlocked {
				k.Sched.Dequeue(p)
			}
		case StatusYield:
			p.State = proc.StateReady
		}
		if p.State != proc.StateRunning {
			break
		}
		// Preemption check: a FIFO task waking up takes the CPU now.
		if cand := k.Sched.Pick(); cand != nil && cand != p && sched.Preempts(cand, p) {
			k.Sched.NotePreemption()
			p.State = proc.StateReady
			break
		}
	}
	if p.State == proc.StateRunning {
		p.State = proc.StateReady
		if k.Sched.Tick(p) {
			k.Sched.NotePreemption()
		}
	}
	if k.current == p {
		k.current = nil
	}
	if !p.KernelThread {
		k.lastAS = p.AS
	}
}

// deliverSignals drains deliverable signals for p at the kernel→user
// boundary. Returns false if the process was stopped or killed.
func (k *Kernel) deliverSignals(p *proc.Process) bool {
	for {
		s, ok := p.Sig.NextDeliverable()
		if !ok {
			return p.State == proc.StateRunning || p.Runnable()
		}
		// Kernel-registered actions run first in kernel mode (§4.1).
		if act, ok := k.SigTable.Action(s); ok {
			disp := p.Sig.Disposition(s)
			if disp.Handler == nil && !disp.Ignored {
				ctx := &Context{K: k, P: p, T: p.MainThread()}
				act(ctx, s)
				if p.State != proc.StateRunning && !p.Runnable() {
					return false
				}
				continue
			}
		}
		disp := p.Sig.Disposition(s)
		switch {
		case disp.Ignored:
			continue
		case disp.Handler != nil:
			// The §3 reentrancy hazard: a handler that uses malloc/free
			// while the process is inside such a function deadlocks.
			if disp.Handler.UsesNonReentrant && p.InNonReentrant {
				k.DeadlockCount++
				p.WaitReason = "deadlock: non-reentrant function in signal context"
				p.State = proc.StateBlocked
				k.Sched.Dequeue(p)
				return false
			}
			k.Charge(k.CM.SignalDeliver, "signal-deliver")
			ctx := &Context{K: k, P: p, T: p.MainThread()}
			disp.Handler.Fn(ctx, s)
			k.Charge(k.CM.SignalReturn, "signal-return")
			if p.State != proc.StateRunning && !p.Runnable() {
				return false
			}
		default:
			if !k.defaultAction(p, s) {
				return false
			}
		}
	}
}

// defaultAction applies the POSIX default for s. Returns false if the
// process stopped running.
func (k *Kernel) defaultAction(p *proc.Process, s sig.Signal) bool {
	switch s {
	case sig.SIGCHLD, sig.SIGCONT:
		return true // ignore
	case sig.SIGSTOP:
		k.Stop(p)
		return false
	case sig.SIGKILL, sig.SIGTERM, sig.SIGINT, sig.SIGHUP, sig.SIGQUIT, sig.SIGSEGV, sig.SIGALRM, sig.SIGUSR1, sig.SIGUSR2, sig.SIGSYS:
		k.Exit(p, 128+int(s))
		return false
	default:
		// Unknown (dynamically numbered) signal without a kernel action:
		// terminate, like Linux does for unhandled RT signals.
		k.Exit(p, 128+int(s))
		return false
	}
}

func min(a, b simtime.Time) simtime.Time {
	if a < b {
		return a
	}
	return b
}
