package fs

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCreateReadWrite(t *testing.T) {
	f := New()
	f.WriteFile("/data/input", []byte("hello"))
	got, err := f.ReadFile("/data/input")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("ReadFile = %q", got)
	}
	// Create truncates.
	f.Create("/data/input")
	got, _ = f.ReadFile("/data/input")
	if len(got) != 0 {
		t.Fatalf("Create did not truncate: %q", got)
	}
}

func TestOpenReadWriteOffsets(t *testing.T) {
	f := New()
	f.WriteFile("/f", []byte("0123456789"))
	of, err := f.Open("/f", ORead|OWrite)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := of.Read(nil, buf)
	if err != nil || n != 4 || string(buf) != "0123" {
		t.Fatalf("Read = %d %q %v", n, buf, err)
	}
	if of.Offset() != 4 {
		t.Fatalf("Offset = %d, want 4", of.Offset())
	}
	if _, err := of.Write(nil, []byte("AB")); err != nil {
		t.Fatal(err)
	}
	data, _ := f.ReadFile("/f")
	if string(data) != "0123AB6789" {
		t.Fatalf("after write: %q", data)
	}
	if err := of.SeekTo(-1); !errors.Is(err, ErrBadOffset) {
		t.Fatal("negative seek accepted")
	}
	if err := of.SeekTo(100); err != nil {
		t.Fatal(err)
	}
	// Write past EOF extends with zero gap.
	of.Write(nil, []byte("Z"))
	data, _ = f.ReadFile("/f")
	if len(data) != 101 || data[100] != 'Z' || data[50] != 0 {
		t.Fatalf("sparse extension wrong: len=%d", len(data))
	}
}

func TestOpenAppendStartsAtEOF(t *testing.T) {
	f := New()
	f.WriteFile("/log", []byte("abc"))
	of, err := f.Open("/log", OWrite|OAppend)
	if err != nil {
		t.Fatal(err)
	}
	if of.Offset() != 3 {
		t.Fatalf("append offset = %d", of.Offset())
	}
}

func TestOpenCreate(t *testing.T) {
	f := New()
	if _, err := f.Open("/missing", ORead); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	of, err := f.Open("/new", OWrite|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	of.Write(nil, []byte("x"))
	if !f.Exists("/new") {
		t.Fatal("OCreate did not create")
	}
}

func TestUnlinkKeepsOpenInode(t *testing.T) {
	f := New()
	f.WriteFile("/tmp/scratch", []byte("precious"))
	of, _ := f.Open("/tmp/scratch", ORead)
	if err := f.Unlink("/tmp/scratch"); err != nil {
		t.Fatal(err)
	}
	if f.Exists("/tmp/scratch") {
		t.Fatal("path still visible after unlink")
	}
	// Content still readable through the open description — this is what a
	// checkpoint of an fd to a deleted file must capture (UCLiK).
	buf := make([]byte, 8)
	n, err := of.Read(nil, buf)
	if err != nil || string(buf[:n]) != "precious" {
		t.Fatalf("read after unlink: %q %v", buf[:n], err)
	}
	if !of.Node.ino.Deleted() {
		t.Fatal("inode not marked deleted")
	}
}

func TestDeviceNodeIoctl(t *testing.T) {
	f := New()
	var gotReq uint
	var gotArg any
	_, err := f.RegisterDevice("/dev/crak", &DeviceOps{
		Ioctl: func(ctx any, req uint, arg any) error {
			gotReq, gotArg = req, arg
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RegisterDevice("/dev/crak", &DeviceOps{}); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate device accepted")
	}
	of, err := f.Open("/dev/crak", ORead|OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := of.Ioctl(nil, 42, 123); err != nil {
		t.Fatal(err)
	}
	if gotReq != 42 || gotArg != 123 {
		t.Fatalf("ioctl saw %d %v", gotReq, gotArg)
	}
	// Ioctl on a regular file is rejected.
	f.WriteFile("/plain", nil)
	pf, _ := f.Open("/plain", ORead)
	if err := pf.Ioctl(nil, 1, nil); !errors.Is(err, ErrNotDevice) {
		t.Fatal("ioctl on regular file accepted")
	}
}

func TestProcEntryReadWrite(t *testing.T) {
	f := New()
	var registered []byte
	_, err := f.RegisterProc("/proc/chpox", &ProcOps{
		Read:  func(ctx any) ([]byte, error) { return []byte("registered: 2\n"), nil },
		Write: func(ctx any, data []byte) error { registered = append([]byte(nil), data...); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	of, _ := f.Open("/proc/chpox", ORead|OWrite)
	if _, err := of.Write(nil, []byte("1234")); err != nil {
		t.Fatal(err)
	}
	if string(registered) != "1234" {
		t.Fatalf("proc write handler saw %q", registered)
	}
	buf := make([]byte, 64)
	n, err := of.Read(nil, buf)
	if err != nil || string(buf[:n]) != "registered: 2\n" {
		t.Fatalf("proc read = %q %v", buf[:n], err)
	}
}

func TestRemoveModuleNodes(t *testing.T) {
	f := New()
	f.RegisterDevice("/dev/blcr", &DeviceOps{})
	if err := f.Remove("/dev/blcr"); err != nil {
		t.Fatal(err)
	}
	if f.Exists("/dev/blcr") {
		t.Fatal("device survives Remove")
	}
	if err := f.Remove("/dev/blcr"); !errors.Is(err, ErrNotFound) {
		t.Fatal("double Remove accepted")
	}
}

func TestListPrefix(t *testing.T) {
	f := New()
	f.WriteFile("/ckpt/a", nil)
	f.WriteFile("/ckpt/b", nil)
	f.WriteFile("/other", nil)
	got := f.List("/ckpt/")
	if len(got) != 2 || got[0] != "/ckpt/a" || got[1] != "/ckpt/b" {
		t.Fatalf("List = %v", got)
	}
}

func TestPathNormalization(t *testing.T) {
	f := New()
	f.WriteFile("noslash", []byte("x"))
	if _, err := f.ReadFile("/noslash"); err != nil {
		t.Fatal("path not normalized on create")
	}
}

func TestOpenFlagsString(t *testing.T) {
	if (ORead | OWrite).String() != "rw" {
		t.Fatalf("flags = %s", ORead|OWrite)
	}
	if OpenFlags(0).String() != "-" {
		t.Fatal("zero flags")
	}
}

// Property: sequential writes then a full read through an OpenFile always
// reproduce the concatenation.
func TestQuickSequentialWriteRead(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fsys := New()
		of, err := fsys.Open("/q", OWrite|OCreate)
		if err != nil {
			return false
		}
		var want []byte
		for _, c := range chunks {
			of.Write(nil, c)
			want = append(want, c...)
		}
		got, err := fsys.ReadFile("/q")
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupAndNodeKinds(t *testing.T) {
	f := New()
	f.WriteFile("/r", []byte("x"))
	f.RegisterDevice("/dev/d", &DeviceOps{})
	f.RegisterProc("/proc/p", &ProcOps{})
	for path, kind := range map[string]NodeKind{
		"/r": KindRegular, "/dev/d": KindDevice, "/proc/p": KindProc,
	} {
		n, err := f.Lookup(path)
		if err != nil || n.Kind != kind {
			t.Fatalf("Lookup(%s) = %v/%v", path, n, err)
		}
		if n.Kind.String() == "?" {
			t.Fatal("kind string")
		}
	}
	if _, err := f.Lookup("/missing"); err == nil {
		t.Fatal("missing lookup succeeded")
	}
}

func TestDeviceReadWriteHandlers(t *testing.T) {
	f := New()
	var wrote []byte
	f.RegisterDevice("/dev/x", &DeviceOps{
		Read:  func(ctx any, buf []byte) (int, error) { return copy(buf, "dev-data"), nil },
		Write: func(ctx any, data []byte) (int, error) { wrote = append([]byte(nil), data...); return len(data), nil },
	})
	of, _ := f.Open("/dev/x", ORead|OWrite)
	buf := make([]byte, 8)
	n, err := of.Read(nil, buf)
	if err != nil || string(buf[:n]) != "dev-data" {
		t.Fatalf("device read: %q %v", buf[:n], err)
	}
	if _, err := of.Write(nil, []byte("cmd")); err != nil || string(wrote) != "cmd" {
		t.Fatalf("device write: %q %v", wrote, err)
	}
	// A device without handlers rejects the ops.
	f.RegisterDevice("/dev/null0", &DeviceOps{})
	nf, _ := f.Open("/dev/null0", ORead|OWrite)
	if _, err := nf.Read(nil, buf); err == nil {
		t.Fatal("read on handlerless device succeeded")
	}
	if _, err := nf.Write(nil, buf); err == nil {
		t.Fatal("write on handlerless device succeeded")
	}
	if err := nf.Ioctl(nil, 1, nil); err == nil {
		t.Fatal("ioctl on handlerless device succeeded")
	}
}

func TestProcWithoutHandlers(t *testing.T) {
	f := New()
	f.RegisterProc("/proc/empty", &ProcOps{})
	of, _ := f.Open("/proc/empty", ORead|OWrite)
	if _, err := of.Read(nil, make([]byte, 4)); err == nil {
		t.Fatal("read on handlerless proc entry succeeded")
	}
	if _, err := of.Write(nil, []byte("x")); err == nil {
		t.Fatal("write on handlerless proc entry succeeded")
	}
}

func TestProcReadRespectsOffset(t *testing.T) {
	f := New()
	f.RegisterProc("/proc/info", &ProcOps{
		Read: func(ctx any) ([]byte, error) { return []byte("0123456789"), nil },
	})
	of, _ := f.Open("/proc/info", ORead)
	buf := make([]byte, 4)
	of.Read(nil, buf)
	n, _ := of.Read(nil, buf)
	if string(buf[:n]) != "4567" {
		t.Fatalf("second proc read %q", buf[:n])
	}
	of.Read(nil, buf)
	if n, _ := of.Read(nil, buf); n != 0 {
		t.Fatalf("read past proc EOF returned %d", n)
	}
}

func TestInodeBookkeeping(t *testing.T) {
	f := New()
	n := f.WriteFile("/f", []byte("abc"))
	if n.Inode().Size() != 3 {
		t.Fatal("size")
	}
	snap := n.Inode().Snapshot()
	snap[0] = 'X'
	if data, _ := f.ReadFile("/f"); data[0] != 'a' {
		t.Fatal("snapshot aliased inode data")
	}
	of, _ := f.Open("/f", ORead)
	of.Close()
	of.Close() // double close is harmless
	if _, err := f.ReadFile("/dev/null0"); err == nil {
		_ = err
	}
}
