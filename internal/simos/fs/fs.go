// Package fs is the simulated filesystem: regular files, the Unix
// unlink-with-open-descriptors semantics that UCLiK's restart handles
// ("identifies deleted files during restart" and restores their contents),
// and the two pseudo namespaces kernel modules extend — /dev device nodes
// with an ioctl interface (CRAK, BLCR, PsncR/C) and /proc entries with
// read/write handlers (CHPOX, PsncR/C).
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors returned by filesystem operations.
var (
	ErrNotFound  = errors.New("fs: no such file")
	ErrExists    = errors.New("fs: file exists")
	ErrIsDevice  = errors.New("fs: operation not valid on device node")
	ErrNotDevice = errors.New("fs: not a device node")
	ErrNotProc   = errors.New("fs: not a /proc entry")
	ErrBadOffset = errors.New("fs: negative offset")
)

// NodeKind classifies namespace entries.
type NodeKind uint8

// Node kinds.
const (
	KindRegular NodeKind = iota
	KindDevice
	KindProc
)

func (k NodeKind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindDevice:
		return "device"
	case KindProc:
		return "proc"
	}
	return "?"
}

// Inode holds file contents. It outlives its directory entry while open
// descriptors reference it (POSIX unlink semantics).
type Inode struct {
	data    []byte
	nlink   int
	opens   int
	deleted bool // true once the last link is gone
}

// Size returns the file length in bytes.
func (ino *Inode) Size() int64 { return int64(len(ino.data)) }

// Deleted reports whether the inode has no remaining directory entries.
func (ino *Inode) Deleted() bool { return ino.deleted }

// Snapshot returns a copy of the contents (checkpointing open files).
func (ino *Inode) Snapshot() []byte { return append([]byte(nil), ino.data...) }

// DeviceOps are the operations a kernel module attaches to a /dev node.
// ctx is opaque kernel-supplied context (the calling process).
type DeviceOps struct {
	Read  func(ctx any, buf []byte) (int, error)
	Write func(ctx any, data []byte) (int, error)
	// Ioctl is the control interface CRAK/BLCR/PsncR/C use to pass the
	// pid of the process to checkpoint.
	Ioctl func(ctx any, request uint, arg any) error
}

// ProcOps are the handlers behind a /proc entry.
type ProcOps struct {
	Read  func(ctx any) ([]byte, error)
	Write func(ctx any, data []byte) error
}

// Node is one namespace entry.
type Node struct {
	Path string
	Kind NodeKind

	ino  *Inode
	dev  *DeviceOps
	proc *ProcOps
}

// Inode returns the node's inode (nil for device and proc nodes). It is
// how kernel-level checkpointers reach file contents directly — e.g. to
// save the contents of deleted-but-open files.
func (n *Node) Inode() *Inode { return n.ino }

// FS is a flat-namespace filesystem (paths are opaque keys; directories
// are implied by prefixes, which is all the mechanisms need).
type FS struct {
	nodes map[string]*Node
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{nodes: make(map[string]*Node)}
}

func cleanPath(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return p
}

// Create makes (or truncates) a regular file and returns its node.
func (f *FS) Create(path string) *Node {
	path = cleanPath(path)
	n, ok := f.nodes[path]
	if ok && n.Kind == KindRegular {
		n.ino.data = nil
		return n
	}
	n = &Node{Path: path, Kind: KindRegular, ino: &Inode{nlink: 1}}
	f.nodes[path] = n
	return n
}

// WriteFile creates path with the given contents.
func (f *FS) WriteFile(path string, data []byte) *Node {
	n := f.Create(path)
	n.ino.data = append([]byte(nil), data...)
	return n
}

// ReadFile returns a copy of a regular file's contents.
func (f *FS) ReadFile(path string) ([]byte, error) {
	n, ok := f.nodes[cleanPath(path)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if n.Kind != KindRegular {
		return nil, ErrIsDevice
	}
	return n.ino.Snapshot(), nil
}

// Lookup returns the node at path.
func (f *FS) Lookup(path string) (*Node, error) {
	n, ok := f.nodes[cleanPath(path)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return n, nil
}

// Exists reports whether path names a node.
func (f *FS) Exists(path string) bool {
	_, ok := f.nodes[cleanPath(path)]
	return ok
}

// Unlink removes the directory entry. Content survives while open
// descriptors reference the inode; the inode is marked deleted, which is
// the condition UCLiK detects at restart.
func (f *FS) Unlink(path string) error {
	path = cleanPath(path)
	n, ok := f.nodes[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(f.nodes, path)
	if n.Kind == KindRegular {
		n.ino.nlink--
		if n.ino.nlink <= 0 {
			n.ino.deleted = true
		}
	}
	return nil
}

// List returns all paths with the given prefix, sorted.
func (f *FS) List(prefix string) []string {
	prefix = cleanPath(prefix)
	var out []string
	for p := range f.nodes {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// RegisterDevice creates a /dev node backed by ops (kernel-module load).
func (f *FS) RegisterDevice(path string, ops *DeviceOps) (*Node, error) {
	path = cleanPath(path)
	if _, ok := f.nodes[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	n := &Node{Path: path, Kind: KindDevice, dev: ops}
	f.nodes[path] = n
	return n, nil
}

// RegisterProc creates a /proc entry backed by ops.
func (f *FS) RegisterProc(path string, ops *ProcOps) (*Node, error) {
	path = cleanPath(path)
	if _, ok := f.nodes[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	n := &Node{Path: path, Kind: KindProc, proc: ops}
	f.nodes[path] = n
	return n, nil
}

// Remove deletes a device or proc node (kernel-module unload).
func (f *FS) Remove(path string) error {
	path = cleanPath(path)
	if _, ok := f.nodes[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(f.nodes, path)
	return nil
}

// OpenFlags mirror the bits a checkpoint must record per descriptor.
type OpenFlags uint8

// Open flags.
const (
	ORead OpenFlags = 1 << iota
	OWrite
	OAppend
	OCreate
)

func (o OpenFlags) String() string {
	var parts []string
	if o&ORead != 0 {
		parts = append(parts, "r")
	}
	if o&OWrite != 0 {
		parts = append(parts, "w")
	}
	if o&OAppend != 0 {
		parts = append(parts, "a")
	}
	if o&OCreate != 0 {
		parts = append(parts, "c")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "")
}

// OpenFile is an open file description: node + offset + flags. The offset
// is exactly what user-level checkpointers must extract with lseek() and
// what a restart must restore.
type OpenFile struct {
	Node   *Node
	Flags  OpenFlags
	offset int64
}

// Open opens path, creating it if OCreate is set.
func (f *FS) Open(path string, flags OpenFlags) (*OpenFile, error) {
	path = cleanPath(path)
	n, ok := f.nodes[path]
	if !ok {
		if flags&OCreate == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		n = f.Create(path)
	}
	if n.Kind == KindRegular {
		n.ino.opens++
	}
	of := &OpenFile{Node: n, Flags: flags}
	if flags&OAppend != 0 && n.Kind == KindRegular {
		of.offset = n.ino.Size()
	}
	return of, nil
}

// Close releases the description.
func (of *OpenFile) Close() {
	if of.Node.Kind == KindRegular && of.Node.ino.opens > 0 {
		of.Node.ino.opens--
	}
}

// Offset returns the current file position (lseek(fd, 0, SEEK_CUR)).
func (of *OpenFile) Offset() int64 { return of.offset }

// SeekTo sets the absolute file position (lseek(fd, off, SEEK_SET)).
func (of *OpenFile) SeekTo(off int64) error {
	if off < 0 {
		return ErrBadOffset
	}
	of.offset = off
	return nil
}

// Read reads from the current offset, advancing it.
func (of *OpenFile) Read(ctx any, buf []byte) (int, error) {
	switch of.Node.Kind {
	case KindDevice:
		if of.Node.dev.Read == nil {
			return 0, ErrIsDevice
		}
		return of.Node.dev.Read(ctx, buf)
	case KindProc:
		if of.Node.proc.Read == nil {
			return 0, ErrNotProc
		}
		data, err := of.Node.proc.Read(ctx)
		if err != nil {
			return 0, err
		}
		if of.offset >= int64(len(data)) {
			return 0, nil
		}
		n := copy(buf, data[of.offset:])
		of.offset += int64(n)
		return n, nil
	default:
		ino := of.Node.ino
		if of.offset >= ino.Size() {
			return 0, nil
		}
		n := copy(buf, ino.data[of.offset:])
		of.offset += int64(n)
		return n, nil
	}
}

// Write writes at the current offset, extending the file as needed.
func (of *OpenFile) Write(ctx any, data []byte) (int, error) {
	switch of.Node.Kind {
	case KindDevice:
		if of.Node.dev.Write == nil {
			return 0, ErrIsDevice
		}
		return of.Node.dev.Write(ctx, data)
	case KindProc:
		if of.Node.proc.Write == nil {
			return 0, ErrNotProc
		}
		if err := of.Node.proc.Write(ctx, data); err != nil {
			return 0, err
		}
		return len(data), nil
	default:
		ino := of.Node.ino
		end := of.offset + int64(len(data))
		if end > int64(len(ino.data)) {
			grown := make([]byte, end)
			copy(grown, ino.data)
			ino.data = grown
		}
		copy(ino.data[of.offset:], data)
		of.offset = end
		return len(data), nil
	}
}

// Ioctl issues a device control request (the CRAK/BLCR interface).
func (of *OpenFile) Ioctl(ctx any, request uint, arg any) error {
	if of.Node.Kind != KindDevice {
		return ErrNotDevice
	}
	if of.Node.dev.Ioctl == nil {
		return ErrNotDevice
	}
	return of.Node.dev.Ioctl(ctx, request, arg)
}
