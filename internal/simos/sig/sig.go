// Package sig models per-process POSIX-style signal state: numbers,
// dispositions, handler registration, pending and blocked sets, and the
// kernel facility — used by EPCKPT, CHPOX and Software Suspend — of adding
// a brand-new kernel signal whose default action checkpoints (or freezes)
// the process (§4.1 "Kernel-mode signal handler").
//
// It also models the reentrancy hazard the paper raises for user-level
// schemes (§3): a handler that calls non-reentrant C library functions
// (malloc/free) can deadlock if it interrupts the process inside one.
package sig

import (
	"fmt"
	"sort"
)

// Signal is a signal number.
type Signal int

// The standard signals the simulator knows about. Values follow Linux
// x86 numbering where it matters to the mechanisms being modeled.
const (
	SIGHUP    Signal = 1
	SIGINT    Signal = 2
	SIGQUIT   Signal = 3
	SIGKILL   Signal = 9
	SIGUSR1   Signal = 10
	SIGSEGV   Signal = 11
	SIGUSR2   Signal = 12
	SIGALRM   Signal = 14
	SIGTERM   Signal = 15
	SIGCHLD   Signal = 17
	SIGCONT   Signal = 18
	SIGSTOP   Signal = 19
	SIGSYS    Signal = 31 // repurposed by CHPOX as its checkpoint signal
	SIGUNUSED Signal = 31 // historical alias, as used by Condor

	// NumStandard is the first number available for new kernel signals
	// (EPCKPT's checkpoint signal, Software Suspend's freeze signal).
	NumStandard Signal = 32
)

var names = map[Signal]string{
	SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGQUIT: "SIGQUIT", SIGKILL: "SIGKILL",
	SIGUSR1: "SIGUSR1", SIGSEGV: "SIGSEGV", SIGUSR2: "SIGUSR2", SIGALRM: "SIGALRM",
	SIGTERM: "SIGTERM", SIGCHLD: "SIGCHLD", SIGCONT: "SIGCONT", SIGSTOP: "SIGSTOP",
	SIGSYS: "SIGSYS",
}

// String returns the conventional name, or SIG<n> for dynamic signals.
func (s Signal) String() string {
	if n, ok := names[s]; ok {
		return n
	}
	return fmt.Sprintf("SIG%d", int(s))
}

// DefaultAction is what the kernel does when no handler is installed.
type DefaultAction uint8

// Default actions.
const (
	ActTerm DefaultAction = iota // terminate the process
	ActIgn                       // ignore
	ActStop                      // stop (freeze) the process
	ActCont                      // continue a stopped process
	ActCore                      // terminate with core (treated as ActTerm)
	// ActKernel runs a kernel-registered function in kernel mode: this is
	// the "new specific signal added to the kernel ... default action is
	// checkpoint the application" mechanism of §4.1.
	ActKernel
)

// Handler is a user-level signal handler. It runs in process context when
// the kernel delivers the signal at a kernel→user transition.
type Handler struct {
	// Fn is the handler body. The argument is opaque process context
	// supplied by the kernel at delivery time.
	Fn func(ctx any, s Signal)
	// UsesNonReentrant marks handlers that call malloc/free-class
	// functions; delivering one while the process is inside such a
	// function models the deadlock hazard of §3.
	UsesNonReentrant bool
	// Name identifies the installer, for diagnostics.
	Name string
}

// Disposition is a process's configured response to one signal.
type Disposition struct {
	// Handler, if non-nil, is the installed user handler (overrides default).
	Handler *Handler
	// Ignored, if true, discards the signal (SIG_IGN).
	Ignored bool
}

// State is the complete per-process signal state; it is part of what a
// checkpoint must capture (the paper notes user-level schemes must call
// sigispending()/sigaction() repeatedly to extract it, while the kernel
// reads it directly).
type State struct {
	dispositions map[Signal]Disposition
	pending      []Signal // FIFO within equal priority; SIGKILL/SIGSTOP first
	blocked      map[Signal]bool
}

// NewState returns an empty signal state (all defaults, nothing pending).
func NewState() *State {
	return &State{
		dispositions: make(map[Signal]Disposition),
		blocked:      make(map[Signal]bool),
	}
}

// Clone deep-copies the state (fork and checkpoint both need this).
func (st *State) Clone() *State {
	n := NewState()
	for s, d := range st.dispositions {
		n.dispositions[s] = d
	}
	n.pending = append([]Signal(nil), st.pending...)
	for s, b := range st.blocked {
		n.blocked[s] = b
	}
	return n
}

// SetHandler installs a user handler for s. SIGKILL and SIGSTOP cannot be
// caught, matching POSIX.
func (st *State) SetHandler(s Signal, h *Handler) error {
	if s == SIGKILL || s == SIGSTOP {
		return fmt.Errorf("sig: %v cannot be caught", s)
	}
	st.dispositions[s] = Disposition{Handler: h}
	return nil
}

// Ignore sets SIG_IGN for s.
func (st *State) Ignore(s Signal) error {
	if s == SIGKILL || s == SIGSTOP {
		return fmt.Errorf("sig: %v cannot be ignored", s)
	}
	st.dispositions[s] = Disposition{Ignored: true}
	return nil
}

// ResetToDefault restores SIG_DFL for s.
func (st *State) ResetToDefault(s Signal) { delete(st.dispositions, s) }

// Disposition returns the configured response for s.
func (st *State) Disposition(s Signal) Disposition { return st.dispositions[s] }

// Handlers returns the installed handlers, keyed by signal, in stable order.
func (st *State) Handlers() []struct {
	Sig Signal
	H   *Handler
} {
	var out []struct {
		Sig Signal
		H   *Handler
	}
	sigs := make([]Signal, 0, len(st.dispositions))
	for s := range st.dispositions {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	for _, s := range sigs {
		if d := st.dispositions[s]; d.Handler != nil {
			out = append(out, struct {
				Sig Signal
				H   *Handler
			}{s, d.Handler})
		}
	}
	return out
}

// Block adds s to the blocked mask (sigprocmask). SIGKILL/SIGSTOP cannot
// be blocked.
func (st *State) Block(s Signal) {
	if s == SIGKILL || s == SIGSTOP {
		return
	}
	st.blocked[s] = true
}

// Unblock removes s from the blocked mask.
func (st *State) Unblock(s Signal) { delete(st.blocked, s) }

// Blocked reports whether s is currently blocked.
func (st *State) Blocked(s Signal) bool { return st.blocked[s] }

// BlockedSet returns the blocked signals in ascending order.
func (st *State) BlockedSet() []Signal {
	out := make([]Signal, 0, len(st.blocked))
	for s := range st.blocked {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Raise marks s pending. Duplicate standard signals coalesce, as on Linux.
func (st *State) Raise(s Signal) {
	for _, p := range st.pending {
		if p == s {
			return
		}
	}
	st.pending = append(st.pending, s)
}

// Pending returns the pending set in delivery order without consuming it
// (what sigispending() exposes to user level).
func (st *State) Pending() []Signal {
	return append([]Signal(nil), st.pending...)
}

// HasPending reports whether s is pending.
func (st *State) HasPending(s Signal) bool {
	for _, p := range st.pending {
		if p == s {
			return true
		}
	}
	return false
}

// NextDeliverable dequeues the next pending signal that is not blocked.
// SIGKILL and SIGSTOP always deliver first. Returns false when nothing is
// deliverable.
func (st *State) NextDeliverable() (Signal, bool) {
	// Priority pass for unblockable signals.
	for i, s := range st.pending {
		if s == SIGKILL || s == SIGSTOP {
			st.pending = append(st.pending[:i], st.pending[i+1:]...)
			return s, true
		}
	}
	for i, s := range st.pending {
		if !st.blocked[s] {
			st.pending = append(st.pending[:i], st.pending[i+1:]...)
			return s, true
		}
	}
	return 0, false
}

// Table is the system-wide signal table: maps dynamically registered
// kernel signals to their kernel-mode actions. It models the kernel
// modification EPCKPT, CHPOX, and Software Suspend each make: "a new
// specific signal is added to the kernel" whose default action runs in
// kernel mode.
type Table struct {
	next    Signal
	actions map[Signal]KernelAction
	names   map[Signal]string
}

// KernelAction is a kernel-mode default action bound to a registered
// signal. It runs with full kernel privileges in the context of the
// receiving process.
type KernelAction func(ctx any, s Signal)

// NewTable returns a table with no registered kernel signals.
func NewTable() *Table {
	return &Table{
		next:    NumStandard,
		actions: make(map[Signal]KernelAction),
		names:   make(map[Signal]string),
	}
}

// Register allocates a new kernel signal with the given kernel-mode
// default action (e.g. "checkpoint the application").
func (t *Table) Register(name string, act KernelAction) Signal {
	s := t.next
	t.next++
	t.actions[s] = act
	t.names[s] = name
	return s
}

// Override binds a kernel action to an existing standard signal number,
// as CHPOX does by repurposing SIGSYS.
func (t *Table) Override(s Signal, name string, act KernelAction) {
	t.actions[s] = act
	t.names[s] = name
}

// Unregister removes a kernel action (module unload).
func (t *Table) Unregister(s Signal) {
	delete(t.actions, s)
	delete(t.names, s)
}

// Action returns the kernel action for s, if any.
func (t *Table) Action(s Signal) (KernelAction, bool) {
	a, ok := t.actions[s]
	return a, ok
}

// Name returns the registered name for a kernel signal.
func (t *Table) Name(s Signal) string {
	if n, ok := t.names[s]; ok {
		return n
	}
	return s.String()
}
