package sig

import (
	"testing"
	"testing/quick"
)

func TestSignalNames(t *testing.T) {
	if SIGKILL.String() != "SIGKILL" {
		t.Fatal("SIGKILL name")
	}
	if Signal(40).String() != "SIG40" {
		t.Fatalf("dynamic signal name = %s", Signal(40))
	}
}

func TestSetHandlerRejectsKillStop(t *testing.T) {
	st := NewState()
	h := &Handler{Fn: func(any, Signal) {}}
	if err := st.SetHandler(SIGKILL, h); err == nil {
		t.Fatal("SIGKILL handler accepted")
	}
	if err := st.SetHandler(SIGSTOP, h); err == nil {
		t.Fatal("SIGSTOP handler accepted")
	}
	if err := st.Ignore(SIGKILL); err == nil {
		t.Fatal("SIGKILL ignore accepted")
	}
	if err := st.SetHandler(SIGUSR1, h); err != nil {
		t.Fatal(err)
	}
	if st.Disposition(SIGUSR1).Handler != h {
		t.Fatal("handler not installed")
	}
}

func TestPendingCoalesces(t *testing.T) {
	st := NewState()
	st.Raise(SIGUSR1)
	st.Raise(SIGUSR1)
	st.Raise(SIGUSR2)
	if p := st.Pending(); len(p) != 2 {
		t.Fatalf("pending = %v, want coalesced 2", p)
	}
	if !st.HasPending(SIGUSR1) || st.HasPending(SIGTERM) {
		t.Fatal("HasPending wrong")
	}
}

func TestDeliveryOrderAndBlocking(t *testing.T) {
	st := NewState()
	st.Raise(SIGUSR1)
	st.Raise(SIGTERM)
	st.Block(SIGUSR1)
	s, ok := st.NextDeliverable()
	if !ok || s != SIGTERM {
		t.Fatalf("delivered %v, want SIGTERM (USR1 blocked)", s)
	}
	if _, ok := st.NextDeliverable(); ok {
		t.Fatal("blocked signal delivered")
	}
	st.Unblock(SIGUSR1)
	s, ok = st.NextDeliverable()
	if !ok || s != SIGUSR1 {
		t.Fatalf("delivered %v after unblock, want SIGUSR1", s)
	}
}

func TestKillDeliversFirstAndUnblockable(t *testing.T) {
	st := NewState()
	st.Block(SIGKILL) // must be a no-op
	st.Raise(SIGUSR1)
	st.Raise(SIGKILL)
	s, ok := st.NextDeliverable()
	if !ok || s != SIGKILL {
		t.Fatalf("delivered %v, want SIGKILL first", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	st := NewState()
	st.SetHandler(SIGUSR1, &Handler{Name: "ckpt"})
	st.Raise(SIGALRM)
	st.Block(SIGUSR2)
	cl := st.Clone()
	if cl.Disposition(SIGUSR1).Handler == nil || !cl.HasPending(SIGALRM) || !cl.Blocked(SIGUSR2) {
		t.Fatal("clone lost state")
	}
	cl.Raise(SIGTERM)
	cl.ResetToDefault(SIGUSR1)
	if st.HasPending(SIGTERM) || st.Disposition(SIGUSR1).Handler == nil {
		t.Fatal("clone shares state with original")
	}
}

func TestHandlersEnumeration(t *testing.T) {
	st := NewState()
	st.SetHandler(SIGUSR2, &Handler{Name: "b"})
	st.SetHandler(SIGUSR1, &Handler{Name: "a"})
	st.Ignore(SIGALRM)
	hs := st.Handlers()
	if len(hs) != 2 || hs[0].Sig != SIGUSR1 || hs[1].Sig != SIGUSR2 {
		t.Fatalf("Handlers() = %v", hs)
	}
}

func TestTableRegisterAndOverride(t *testing.T) {
	tb := NewTable()
	var got Signal
	s1 := tb.Register("ckpt", func(_ any, s Signal) { got = s })
	s2 := tb.Register("freeze", nil)
	if s1 == s2 || s1 < NumStandard {
		t.Fatalf("allocated %v, %v", s1, s2)
	}
	act, ok := tb.Action(s1)
	if !ok {
		t.Fatal("action not registered")
	}
	act(nil, s1)
	if got != s1 {
		t.Fatal("action did not run")
	}
	if tb.Name(s1) != "ckpt" {
		t.Fatalf("Name = %q", tb.Name(s1))
	}

	tb.Override(SIGSYS, "chpox", func(any, Signal) {})
	if _, ok := tb.Action(SIGSYS); !ok {
		t.Fatal("override not visible")
	}
	tb.Unregister(SIGSYS)
	if _, ok := tb.Action(SIGSYS); ok {
		t.Fatal("unregister failed")
	}
}

// Property: every raised (unblocked) signal is eventually delivered exactly
// once, and delivery never invents signals.
func TestQuickRaiseDeliverConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		st := NewState()
		want := map[Signal]int{}
		for _, r := range raw {
			s := Signal(1 + int(r)%30)
			if s == SIGKILL || s == SIGSTOP {
				continue
			}
			st.Raise(s)
			want[s] = 1 // coalesced
		}
		got := map[Signal]int{}
		for {
			s, ok := st.NextDeliverable()
			if !ok {
				break
			}
			got[s]++
		}
		if len(got) != len(want) {
			return false
		}
		for s, n := range want {
			if got[s] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
