package proc

import (
	"testing"

	"repro/internal/simos/fs"
)

func TestTableAllocatesSequentialPIDs(t *testing.T) {
	tb := NewTable()
	a := tb.Allocate(0, "a")
	b := tb.Allocate(a.PID, "b")
	if a.PID != 1 || b.PID != 2 {
		t.Fatalf("pids = %d,%d", a.PID, b.PID)
	}
	if b.PPID != a.PID {
		t.Fatalf("ppid = %d", b.PPID)
	}
	got, err := tb.Lookup(2)
	if err != nil || got != b {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if _, err := tb.Lookup(99); err == nil {
		t.Fatal("Lookup of missing pid succeeded")
	}
}

func TestTableInsertRestoredPID(t *testing.T) {
	tb := NewTable()
	tb.Allocate(0, "a") // pid 1
	restored := New(7, 1, "restored")
	if err := tb.Insert(restored); err != nil {
		t.Fatal(err)
	}
	// Next allocation must not collide with the restored PID.
	n := tb.Allocate(0, "next")
	if n.PID != 8 {
		t.Fatalf("next pid = %d, want 8", n.PID)
	}
	if err := tb.Insert(New(7, 0, "dup")); err == nil {
		t.Fatal("duplicate PID insert accepted")
	}
}

func TestTableAllOrder(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 5; i++ {
		tb.Allocate(0, "p")
	}
	tb.Remove(3)
	all := tb.All()
	if len(all) != 4 || tb.Len() != 4 {
		t.Fatalf("All len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].PID <= all[i-1].PID {
			t.Fatal("All not sorted by PID")
		}
	}
}

func TestFDTable(t *testing.T) {
	fsys := fs.New()
	fsys.WriteFile("/data", []byte("0123456789"))
	p := New(1, 0, "app")
	of, _ := fsys.Open("/data", fs.ORead)
	fd0 := p.InstallFD(of)
	of2, _ := fsys.Open("/data", fs.OWrite)
	fd1 := p.InstallFD(of2)
	if fd0 != 0 || fd1 != 1 {
		t.Fatalf("fds = %d,%d", fd0, fd1)
	}
	if err := p.CloseFD(fd0); err != nil {
		t.Fatal(err)
	}
	// Lowest free descriptor is reused.
	of3, _ := fsys.Open("/data", fs.ORead)
	if fd := p.InstallFD(of3); fd != 0 {
		t.Fatalf("reused fd = %d, want 0", fd)
	}
	if _, err := p.FD(9); err == nil {
		t.Fatal("bad fd lookup succeeded")
	}
	if err := p.CloseFD(9); err == nil {
		t.Fatal("bad fd close succeeded")
	}
}

func TestFDsMetadata(t *testing.T) {
	fsys := fs.New()
	fsys.WriteFile("/in", []byte("abcdef"))
	p := New(1, 0, "app")
	of, _ := fsys.Open("/in", fs.ORead)
	buf := make([]byte, 3)
	of.Read(nil, buf)
	p.InstallFD(of)
	// Unlink while open: FDInfo must mark it deleted.
	fsys.Unlink("/in")
	infos := p.FDs()
	if len(infos) != 1 {
		t.Fatalf("FDs = %v", infos)
	}
	fi := infos[0]
	if fi.Path != "/in" || fi.Offset != 3 || !fi.Deleted || fi.Flags != fs.ORead {
		t.Fatalf("FDInfo = %+v", fi)
	}
}

func TestThreads(t *testing.T) {
	p := New(1, 0, "mt")
	if p.Multithreaded() {
		t.Fatal("fresh process multithreaded")
	}
	th := p.AddThread()
	if th.TID != 2 || !p.Multithreaded() {
		t.Fatalf("AddThread tid=%d", th.TID)
	}
	p.Regs().G[0] = 42
	if p.MainThread().Regs.G[0] != 42 {
		t.Fatal("Regs not aliased to main thread")
	}
}

func TestRunnable(t *testing.T) {
	p := New(1, 0, "x")
	for st, want := range map[State]bool{
		StateReady: true, StateRunning: true,
		StateBlocked: false, StateStopped: false, StateZombie: false, StateDead: false,
	} {
		p.State = st
		if p.Runnable() != want {
			t.Errorf("Runnable(%v) = %v", st, !want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	if StateStopped.String() != "stopped" || SchedFIFO.String() != "SCHED_FIFO" {
		t.Fatal("string forms")
	}
}
