// Declarative checkpoint regions (CRAFT-style): the application tells
// the checkpointer which parts of its address space matter. A protect
// region pins pages into every capture regardless of what liveness
// tracking concludes; an exclude region declares state the application
// can rebuild (scratch buffers, caches), which capture drops entirely.
package proc

import "repro/internal/simos/mem"

// CkptRegionPolicy is what the application asserts about a region.
type CkptRegionPolicy uint8

// Region policies.
const (
	// RegionProtect: always capture these pages; liveness heuristics must
	// never exclude them (irreplaceable state behind unusual access
	// patterns).
	RegionProtect CkptRegionPolicy = iota
	// RegionExclude: never capture these pages; the application promises
	// to reconstruct them after a restart (scratch space, caches).
	RegionExclude
)

func (p CkptRegionPolicy) String() string {
	if p == RegionExclude {
		return "exclude"
	}
	return "protect"
}

// CkptRegion is one application-declared span with its policy.
type CkptRegion struct {
	Start  mem.Addr
	Length int
	Policy CkptRegionPolicy
}

// End returns the first address past the region.
func (r CkptRegion) End() mem.Addr { return r.Start + mem.Addr(r.Length) }

// ContainsPage reports whether the region covers any byte of page pn.
func (r CkptRegion) ContainsPage(pn mem.PageNum) bool {
	base := pn.Base()
	return base < r.End() && base+mem.PageSize > r.Start
}

// AddCkptRegion records a region declaration, replacing any previous
// declaration with the same start address.
func (p *Process) AddCkptRegion(r CkptRegion) {
	for i, old := range p.CkptRegions {
		if old.Start == r.Start {
			p.CkptRegions[i] = r
			return
		}
	}
	p.CkptRegions = append(p.CkptRegions, r)
}

// RegionProtected reports whether pn lies in a protect region.
func (p *Process) RegionProtected(pn mem.PageNum) bool {
	for _, r := range p.CkptRegions {
		if r.Policy == RegionProtect && r.ContainsPage(pn) {
			return true
		}
	}
	return false
}

// RegionExcluded reports whether pn lies in an exclude region.
func (p *Process) RegionExcluded(pn mem.PageNum) bool {
	for _, r := range p.CkptRegions {
		if r.Policy == RegionExclude && r.ContainsPage(pn) {
			return true
		}
	}
	return false
}
