// Package proc models processes and threads: PIDs, simulated registers,
// file-descriptor tables, signal state, scheduling class, and the process
// table. Everything a checkpoint must capture hangs off Process; the
// design keeps all mutable program state in Regs + the address space so
// that restart is exact (DESIGN.md §4).
package proc

import (
	"fmt"
	"sort"

	"repro/internal/simos/fs"
	"repro/internal/simos/mem"
	"repro/internal/simos/sig"
	"repro/internal/simtime"
)

// PID identifies a process.
type PID int

// TID identifies a thread within a process.
type TID int

// State is a process's life-cycle state.
type State uint8

// Process states.
const (
	StateReady State = iota
	StateRunning
	StateBlocked // waiting for an external event (I/O, message, timer)
	StateStopped // frozen (SIGSTOP / checkpoint freeze / hibernation)
	StateZombie  // exited, not yet reaped
	StateDead
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateStopped:
		return "stopped"
	case StateZombie:
		return "zombie"
	case StateDead:
		return "dead"
	}
	return "?"
}

// Policy is the scheduling class.
type Policy uint8

// Scheduling classes. The paper (§4.1) contrasts ordinary time-sharing
// (dynamic priority, checkpoint code can be preempted) with SCHED_FIFO
// kernel threads that run to completion once started.
const (
	SchedOther Policy = iota
	SchedFIFO
)

func (p Policy) String() string {
	if p == SchedFIFO {
		return "SCHED_FIFO"
	}
	return "SCHED_OTHER"
}

// NumGRegs is the number of simulated general-purpose registers.
const NumGRegs = 8

// Regs is the simulated register file. Programs keep every scalar they
// need across steps here, so that saving Regs + memory captures the whole
// execution state.
type Regs struct {
	PC uint64 // program counter: the program's step/phase counter
	SP uint64 // stack pointer
	G  [NumGRegs]uint64
}

// Thread is one schedulable context of a process.
type Thread struct {
	TID   TID
	Regs  Regs
	State State
}

// FDInfo is the checkpointable description of one descriptor.
type FDInfo struct {
	FD     int
	Path   string
	Flags  fs.OpenFlags
	Offset int64
	// Deleted marks descriptors whose file was unlinked; their contents
	// must travel with the checkpoint (UCLiK).
	Deleted bool
}

// Process is one simulated process.
type Process struct {
	PID  PID
	PPID PID
	// VPID, when nonzero, is the virtualized process ID a pod exposes to
	// the process itself (ZAP [24]): getpid() returns VPID, so a restart
	// can preserve the process's identity without claiming the real PID.
	VPID PID
	Exe  string // program registry key, the moral equivalent of the executable path
	Args []string

	AS      *mem.AddressSpace
	Sig     *sig.State
	fds     map[int]*fs.OpenFile
	Threads []*Thread

	State  State
	Policy Policy
	// StaticPrio is the nice-derived base priority for SchedOther (higher
	// is better here, range 0..39) or the real-time priority for SchedFIFO.
	StaticPrio int
	// Counter is the remaining time-slice credit (Linux 2.4-style
	// goodness); the scheduler decays and replenishes it.
	Counter int

	// KernelThread marks kernel daemons: they have no user address space
	// of their own and borrow the page tables of the task they interrupt
	// (§4.1), which is what makes their address-space-switch cost model
	// interesting.
	KernelThread bool

	// KProg holds a kernel thread's program value directly (kernel
	// threads are never checkpointed, so they may carry Go state and
	// need not live in the exec registry). Interpreted by the kernel.
	KProg any

	// InNonReentrant is set by programs while inside a malloc/free-class
	// function; delivering a non-reentrant signal handler now models the
	// deadlock hazard of §3.
	InNonReentrant bool

	// Registered tracks per-mechanism registration (BLCR's init phase,
	// CHPOX's /proc registration, EPCKPT's launch-tool tracing).
	Registered map[string]bool

	// CkptRegions are the application's declarative checkpoint-region
	// annotations (see region.go): protect pins pages into every capture,
	// exclude drops them. Declared via the CheckpointRegion syscall.
	CkptRegions []CkptRegion

	CPUTime  simtime.Duration
	ExitCode int

	// WaitReason describes why the process is blocked, for diagnostics
	// and for the paper's "invalid state" discussion (waiting on an
	// external event that a checkpoint cannot capture).
	WaitReason string
}

// New returns a process with one thread, an empty fd table and default
// signal state.
func New(pid, ppid PID, exe string) *Process {
	return &Process{
		PID:        pid,
		PPID:       ppid,
		Exe:        exe,
		AS:         mem.NewAddressSpace(),
		Sig:        sig.NewState(),
		fds:        make(map[int]*fs.OpenFile),
		Threads:    []*Thread{{TID: 1}},
		State:      StateReady,
		StaticPrio: 20,
		Counter:    defaultQuantumCredits,
		Registered: make(map[string]bool),
	}
}

// defaultQuantumCredits is the fresh time-slice credit for SchedOther.
const defaultQuantumCredits = 6

// MainThread returns the first thread.
func (p *Process) MainThread() *Thread { return p.Threads[0] }

// Regs returns the main thread's registers (single-threaded convenience).
func (p *Process) Regs() *Regs { return &p.MainThread().Regs }

// AddThread creates a new thread and returns it.
func (p *Process) AddThread() *Thread {
	t := &Thread{TID: TID(len(p.Threads) + 1)}
	p.Threads = append(p.Threads, t)
	return t
}

// Multithreaded reports whether the process has more than one thread.
// Several surveyed mechanisms checkpoint only single-threaded processes.
func (p *Process) Multithreaded() bool { return len(p.Threads) > 1 }

// InstallFD places of at the lowest free descriptor ≥ 0 and returns it.
func (p *Process) InstallFD(of *fs.OpenFile) int {
	fd := 0
	for {
		if _, used := p.fds[fd]; !used {
			p.fds[fd] = of
			return fd
		}
		fd++
	}
}

// InstallFDAt places of at a specific descriptor (restart path).
func (p *Process) InstallFDAt(fd int, of *fs.OpenFile) { p.fds[fd] = of }

// FD returns the open file at fd.
func (p *Process) FD(fd int) (*fs.OpenFile, error) {
	of, ok := p.fds[fd]
	if !ok {
		return nil, fmt.Errorf("proc: pid %d: bad fd %d", p.PID, fd)
	}
	return of, nil
}

// CloseFD removes and closes fd.
func (p *Process) CloseFD(fd int) error {
	of, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("proc: pid %d: bad fd %d", p.PID, fd)
	}
	of.Close()
	delete(p.fds, fd)
	return nil
}

// FDs returns the descriptor table as checkpointable metadata, in fd order.
func (p *Process) FDs() []FDInfo {
	fds := make([]int, 0, len(p.fds))
	for fd := range p.fds {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	out := make([]FDInfo, 0, len(fds))
	for _, fd := range fds {
		of := p.fds[fd]
		info := FDInfo{FD: fd, Path: of.Node.Path, Flags: of.Flags, Offset: of.Offset()}
		if of.Node.Kind == fs.KindRegular {
			info.Deleted = of.Node.Inode().Deleted()
		}
		out = append(out, info)
	}
	return out
}

// OpenFDs returns the live open-file descriptions keyed by fd.
func (p *Process) OpenFDs() map[int]*fs.OpenFile {
	out := make(map[int]*fs.OpenFile, len(p.fds))
	for fd, of := range p.fds {
		out[fd] = of
	}
	return out
}

// Runnable reports whether the scheduler may pick the process.
func (p *Process) Runnable() bool { return p.State == StateReady || p.State == StateRunning }

func (p *Process) String() string {
	return fmt.Sprintf("pid %d (%s) %s", p.PID, p.Exe, p.State)
}

// Table is the system process table.
type Table struct {
	nextPID PID
	procs   map[PID]*Process
}

// NewTable returns a table that allocates PIDs from 1.
func NewTable() *Table {
	return &Table{nextPID: 1, procs: make(map[PID]*Process)}
}

// Allocate creates a process with a fresh PID.
func (t *Table) Allocate(ppid PID, exe string) *Process {
	pid := t.nextPID
	t.nextPID++
	p := New(pid, ppid, exe)
	t.procs[pid] = p
	return p
}

// Insert places an existing process (restart with restored PID, UCLiK) at
// its recorded PID. Fails if the PID is taken.
func (t *Table) Insert(p *Process) error {
	if _, ok := t.procs[p.PID]; ok {
		return fmt.Errorf("proc: pid %d already in use", p.PID)
	}
	t.procs[p.PID] = p
	if p.PID >= t.nextPID {
		t.nextPID = p.PID + 1
	}
	return nil
}

// Lookup returns the process with the given pid.
func (t *Table) Lookup(pid PID) (*Process, error) {
	p, ok := t.procs[pid]
	if !ok {
		return nil, fmt.Errorf("proc: no such pid %d", pid)
	}
	return p, nil
}

// Remove deletes a process from the table.
func (t *Table) Remove(pid PID) { delete(t.procs, pid) }

// All returns every process in PID order.
func (t *Table) All() []*Process {
	pids := make([]PID, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	out := make([]*Process, 0, len(pids))
	for _, pid := range pids {
		out = append(out, t.procs[pid])
	}
	return out
}

// Len returns the number of processes.
func (t *Table) Len() int { return len(t.procs) }
