package sched

import (
	"testing"

	"repro/internal/simos/proc"
)

func mkProc(pid int, pol proc.Policy, prio int) *proc.Process {
	p := proc.New(proc.PID(pid), 0, "test")
	p.Policy = pol
	p.StaticPrio = prio
	return p
}

func TestEnqueueIdempotent(t *testing.T) {
	s := New()
	p := mkProc(1, proc.SchedOther, 20)
	s.Enqueue(p)
	s.Enqueue(p)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Dequeue(p)
	if s.Len() != 0 {
		t.Fatal("Dequeue failed")
	}
	s.Dequeue(p) // no-op
}

func TestFIFOBeatsTimeSharing(t *testing.T) {
	s := New()
	ts := mkProc(1, proc.SchedOther, 39)
	rt := mkProc(2, proc.SchedFIFO, 1)
	s.Enqueue(ts)
	s.Enqueue(rt)
	if got := s.Pick(); got != rt {
		t.Fatalf("Pick = %v, want FIFO task", got)
	}
}

func TestFIFOPriorityOrdering(t *testing.T) {
	s := New()
	lo := mkProc(1, proc.SchedFIFO, 1)
	hi := mkProc(2, proc.SchedFIFO, 50)
	s.Enqueue(lo)
	s.Enqueue(hi)
	if got := s.Pick(); got != hi {
		t.Fatalf("Pick = %v, want high-prio FIFO", got)
	}
}

func TestCounterDecayAndReplenish(t *testing.T) {
	s := New()
	p := mkProc(1, proc.SchedOther, 0)
	s.Enqueue(p)
	start := p.Counter
	for i := 0; i < start-1; i++ {
		if s.Tick(p) {
			t.Fatalf("slice expired early at tick %d", i)
		}
	}
	if !s.Tick(p) {
		t.Fatal("slice did not expire after counter ticks")
	}
	// With the counter at zero, Pick must replenish (epoch) and still
	// return the process.
	if got := s.Pick(); got != p {
		t.Fatalf("Pick after exhaustion = %v", got)
	}
	if p.Counter == 0 {
		t.Fatal("epoch did not replenish counter")
	}
	_, epochs, _ := s.Stats()
	if epochs != 1 {
		t.Fatalf("epochs = %d, want 1", epochs)
	}
}

func TestFIFONeverExpires(t *testing.T) {
	s := New()
	p := mkProc(1, proc.SchedFIFO, 10)
	for i := 0; i < 1000; i++ {
		if s.Tick(p) {
			t.Fatal("FIFO task expired")
		}
	}
}

func TestHigherCounterWins(t *testing.T) {
	s := New()
	a := mkProc(1, proc.SchedOther, 20)
	b := mkProc(2, proc.SchedOther, 20)
	a.Counter = 2
	b.Counter = 6
	s.Enqueue(a)
	s.Enqueue(b)
	if got := s.Pick(); got != b {
		t.Fatalf("Pick = %v, want the fresher task", got)
	}
}

func TestPickSkipsNonRunnable(t *testing.T) {
	s := New()
	a := mkProc(1, proc.SchedOther, 20)
	b := mkProc(2, proc.SchedOther, 20)
	a.State = proc.StateBlocked
	s.Enqueue(a)
	s.Enqueue(b)
	if got := s.Pick(); got != b {
		t.Fatalf("Pick = %v, want runnable task", got)
	}
	b.State = proc.StateStopped
	if got := s.Pick(); got != nil {
		t.Fatalf("Pick = %v, want nil with nothing runnable", got)
	}
}

func TestPreempts(t *testing.T) {
	ts := mkProc(1, proc.SchedOther, 39)
	rtLo := mkProc(2, proc.SchedFIFO, 1)
	rtHi := mkProc(3, proc.SchedFIFO, 50)
	if !Preempts(rtLo, ts) {
		t.Fatal("FIFO should preempt time-sharing")
	}
	if Preempts(ts, rtLo) {
		t.Fatal("time-sharing must not preempt FIFO")
	}
	if !Preempts(rtHi, rtLo) {
		t.Fatal("higher FIFO prio should preempt lower")
	}
	if Preempts(rtLo, rtHi) {
		t.Fatal("lower FIFO prio must not preempt higher")
	}
	if Preempts(rtLo, rtLo) {
		t.Fatal("equal priority must not preempt")
	}
	if !Preempts(ts, nil) {
		t.Fatal("anything preempts idle")
	}
}

func TestEmptyPick(t *testing.T) {
	s := New()
	if s.Pick() != nil {
		t.Fatal("Pick on empty scheduler")
	}
}

// The paper's argument: a checkpointing agent running as a SCHED_OTHER
// process is repeatedly preempted as system load grows, while a FIFO
// kernel thread is not. Model a run-to-completion race.
func TestFIFOChkptThreadUnaffectedByLoad(t *testing.T) {
	for _, load := range []int{0, 4, 16} {
		s := New()
		ckpt := mkProc(100, proc.SchedFIFO, 50)
		s.Enqueue(ckpt)
		for i := 0; i < load; i++ {
			s.Enqueue(mkProc(i+1, proc.SchedOther, 20))
		}
		// The FIFO task must win every pick until it blocks or exits.
		for i := 0; i < 50; i++ {
			if got := s.Pick(); got != ckpt {
				t.Fatalf("load %d: pick %v, want ckpt thread", load, got)
			}
			s.Tick(ckpt)
		}
	}
}
