// Package sched implements the simulated scheduler: a Linux-2.4-flavored
// time-sharing class (dynamic priority that decays as processes run — the
// paper: "the priority is dynamic so it decreases with the time") plus a
// SCHED_FIFO real-time class whose tasks, once runnable, run to completion
// unless an equal-or-higher-priority task exists. The FIFO class is what
// lets a checkpointing kernel thread avoid preemption (§4.1).
package sched

import (
	"repro/internal/simos/proc"
)

// Scheduler selects the next process to run.
type Scheduler struct {
	// Quantum is the fresh time-slice credit granted at each epoch to
	// SchedOther tasks, scaled by static priority.
	Quantum int

	run []*proc.Process // runnable set, in enqueue order (stable)

	switches    int
	epochs      int
	preemptions int
}

// New returns a scheduler with the default quantum.
func New() *Scheduler { return &Scheduler{Quantum: 6} }

// Enqueue adds p to the runnable set (idempotent).
func (s *Scheduler) Enqueue(p *proc.Process) {
	for _, q := range s.run {
		if q == p {
			return
		}
	}
	s.run = append(s.run, p)
}

// Dequeue removes p from the runnable set. This is exactly the "removing
// the application from its runqueue list" consistency mechanism the paper
// describes for kernel-thread checkpointing.
func (s *Scheduler) Dequeue(p *proc.Process) {
	for i, q := range s.run {
		if q == p {
			s.run = append(s.run[:i], s.run[i+1:]...)
			return
		}
	}
}

// Runnable returns the current runnable set (live slice copy).
func (s *Scheduler) Runnable() []*proc.Process {
	return append([]*proc.Process(nil), s.run...)
}

// Len returns the number of runnable processes.
func (s *Scheduler) Len() int { return len(s.run) }

// goodness is the selection key for a runnable process. FIFO tasks always
// beat time-sharing tasks; among FIFO, higher StaticPrio wins; among
// time-sharing, higher Counter+StaticPrio wins (decaying dynamic priority).
func goodness(p *proc.Process) int {
	if p.Policy == proc.SchedFIFO {
		return 1<<20 + p.StaticPrio // far above any SchedOther value
	}
	if p.Counter == 0 {
		return 0
	}
	return p.Counter + p.StaticPrio
}

// Pick returns the best runnable process, or nil. When every SchedOther
// task has exhausted its counter (and no FIFO task is runnable), a new
// epoch starts: counters are replenished as counter/2 + quantum.
func (s *Scheduler) Pick() *proc.Process {
	if len(s.run) == 0 {
		return nil
	}
	best := s.pickOnce()
	if best != nil {
		return best
	}
	// All time-sharing counters exhausted: replenish (epoch boundary).
	s.epochs++
	for _, p := range s.run {
		if p.Policy == proc.SchedOther {
			p.Counter = p.Counter/2 + s.Quantum
		}
	}
	return s.pickOnce()
}

func (s *Scheduler) pickOnce() *proc.Process {
	var best *proc.Process
	bestG := 0
	for _, p := range s.run {
		if !p.Runnable() {
			continue
		}
		if g := goodness(p); g > bestG {
			best, bestG = p, g
		}
	}
	return best
}

// Tick consumes one tick of p's time slice and reports whether the slice
// is exhausted (time-sharing preemption point). FIFO tasks never expire.
func (s *Scheduler) Tick(p *proc.Process) (expired bool) {
	if p.Policy == proc.SchedFIFO {
		return false
	}
	if p.Counter > 0 {
		p.Counter--
	}
	return p.Counter == 0
}

// Preempts reports whether candidate should preempt current immediately
// (a FIFO task waking up preempts any time-sharing task; a higher-priority
// FIFO task preempts a lower-priority one; the paper: "Processes can not
// interrupt a kernel thread with this schedule priority if they do not
// have the same priority").
func Preempts(candidate, current *proc.Process) bool {
	if current == nil {
		return true
	}
	if candidate.Policy == proc.SchedFIFO {
		return current.Policy != proc.SchedFIFO || candidate.StaticPrio > current.StaticPrio
	}
	return false
}

// NoteSwitch records a context switch for statistics.
func (s *Scheduler) NoteSwitch() { s.switches++ }

// NotePreemption records an involuntary preemption.
func (s *Scheduler) NotePreemption() { s.preemptions++ }

// Stats returns (context switches, replenish epochs, preemptions).
func (s *Scheduler) Stats() (switches, epochs, preemptions int) {
	return s.switches, s.epochs, s.preemptions
}
