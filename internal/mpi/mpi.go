// Package mpi provides the message-passing substrate and the coordinated
// checkpointing protocol of the LAM/MPI framework [32] and CoCheck [28]:
// a parallel job's ranks exchange halo messages across the simulated
// cluster; a checkpoint request picks a coordination point (an iteration
// boundary beyond every rank's current progress), all ranks drain their
// in-flight traffic and quiesce there, each rank is captured through a
// per-node kernel mechanism, and the whole job can be restarted — on the
// same or different nodes — bit-exactly.
//
// The paper's observation that LAM/MPI is "completely transparent to the
// application [but] not transparent to the MPI library" is structural
// here too: the application kernel (HaloRing's compute) knows nothing of
// checkpointing; the coordination lives in the Job (the MPI library).
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// envelope is one rank-to-rank message.
type envelope struct {
	From, To int
	Iter     uint64
	Data     []byte
}

// rankState is the job's bookkeeping for one rank.
type rankState struct {
	node      int
	pid       proc.PID
	mailbox   []envelope
	waiting   bool // blocked in recv
	atBarrier bool
}

// Job is one parallel application: N ranks placed on cluster nodes.
type Job struct {
	C      *cluster.Cluster
	NRanks int
	// MkMech builds the per-node checkpoint mechanism (default LAM/MPI
	// semantics: one BLCR-class mechanism per node, coordinated here).
	MkMech func() mechanism.Mechanism

	ranks []*rankState
	mechs map[int]mechanism.Mechanism

	// Coordination state.
	ckptAtIter  uint64 // 0 = no checkpoint requested
	arrived     int
	ckptDone    func([]*checkpoint.Image)
	ckptTgt     storage.Target
	requestedAt simtime.Time
	drainedAt   simtime.Time

	// Stats.
	MessagesSent  int
	BytesSent     int
	Checkpoints   int
	LastDrainTime simtime.Duration
}

// NewJob creates a job shell; Launch places and starts the ranks.
func NewJob(c *cluster.Cluster, nRanks int, mk func() mechanism.Mechanism) *Job {
	return &Job{C: c, NRanks: nRanks, MkMech: mk, mechs: make(map[int]mechanism.Mechanism)}
}

// Launch registers the rank programs (one per rank, parameterized by the
// template) and spawns them round-robin across the cluster's nodes. The
// template's Rank and Job fields are filled in per rank.
func (j *Job) Launch(template HaloRing) error {
	if j.ranks != nil {
		return errors.New("mpi: job already launched")
	}
	nNodes := len(j.C.Nodes())
	for r := 0; r < j.NRanks; r++ {
		prog := template
		prog.Job = j
		prog.Rank = r
		if err := j.C.Registry.Register(prog); err != nil {
			return err
		}
		node := r % nNodes
		j.ranks = append(j.ranks, &rankState{node: node})
	}
	for r := 0; r < j.NRanks; r++ {
		node := j.ranks[r].node
		name := (HaloRing{Job: j, Rank: r, MiB: template.MiB}).Name()
		p, err := j.C.Node(node).K.Spawn(name)
		if err != nil {
			return err
		}
		if m, err := j.mech(node); err == nil {
			if err := m.Setup(j.C.Node(node).K, p); err != nil {
				return err
			}
		}
		j.ranks[r].pid = p.PID
	}
	for i := range j.C.Nodes() {
		i := i
		j.C.OnDeliver(i, func(payload any) { j.deliver(payload) })
	}
	return nil
}

func (j *Job) mech(node int) (mechanism.Mechanism, error) {
	if m, ok := j.mechs[node]; ok {
		return m, nil
	}
	if j.MkMech == nil {
		return nil, errors.New("mpi: no mechanism factory")
	}
	m := j.MkMech()
	if err := m.Install(j.C.Node(node).K); err != nil {
		return nil, err
	}
	j.mechs[node] = m
	return m, nil
}

// proc returns the live process of rank r.
func (j *Job) proc(r int) (*proc.Process, error) {
	rs := j.ranks[r]
	return j.C.Node(rs.node).K.Procs.Lookup(rs.pid)
}

// send transmits an envelope; same-node delivery is immediate.
func (j *Job) send(ctx *kernel.Context, env envelope) {
	from := j.ranks[env.From]
	to := j.ranks[env.To]
	j.MessagesSent++
	j.BytesSent += len(env.Data)
	// MPI library send path: syscall + copy.
	ctx.K.Charge(ctx.K.CM.Syscall()+ctx.K.CM.MemCopy(len(env.Data)), "mpi-send")
	if from.node == to.node {
		j.deliver(env)
		return
	}
	_ = j.C.Send(from.node, to.node, env, len(env.Data))
}

// deliver routes an arrived envelope into its rank's mailbox and wakes a
// blocked receiver.
func (j *Job) deliver(payload any) {
	env, ok := payload.(envelope)
	if !ok {
		return
	}
	rs := j.ranks[env.To]
	rs.mailbox = append(rs.mailbox, env)
	if rs.waiting {
		rs.waiting = false
		if p, err := j.proc(env.To); err == nil {
			j.C.Node(rs.node).K.Wake(p)
		}
	}
}

// tryRecvFrom removes the message for rank r matching (iter, from), or
// reports nothing available. Matching the sender as well as the iteration
// makes receives immune to duplicate or reordered traffic.
func (j *Job) tryRecvFrom(r, from int, iter uint64) (envelope, bool) {
	rs := j.ranks[r]
	for i, env := range rs.mailbox {
		if env.Iter == iter && env.From == from {
			rs.mailbox = append(rs.mailbox[:i], rs.mailbox[i+1:]...)
			return env, true
		}
	}
	return envelope{}, false
}

// RequestCheckpoint starts a coordinated checkpoint to tgt: the
// coordination point is two iterations past the furthest rank, which
// every rank can still reach (the lock-step exchange bounds skew), so the
// protocol is deadlock-free and the network is provably drained when the
// last rank arrives. done (optional) receives the images.
func (j *Job) RequestCheckpoint(tgt storage.Target, done func([]*checkpoint.Image)) error {
	if j.ckptAtIter != 0 {
		return errors.New("mpi: checkpoint already in progress")
	}
	var maxIter uint64
	for r := range j.ranks {
		p, err := j.proc(r)
		if err != nil {
			return err
		}
		if p.Regs().PC > maxIter {
			maxIter = p.Regs().PC
		}
	}
	j.ckptAtIter = maxIter + 2
	j.arrived = 0
	j.ckptTgt = tgt
	j.ckptDone = done
	j.requestedAt = j.C.Now()
	return nil
}

// CheckpointInProgress reports whether coordination is under way.
func (j *Job) CheckpointInProgress() bool { return j.ckptAtIter != 0 }

// shouldPause reports whether rank r must stop at the coordination point.
func (j *Job) shouldPause(iter uint64) bool {
	return j.ckptAtIter != 0 && iter >= j.ckptAtIter
}

// enterBarrier marks rank r arrived; the last arrival performs the
// captures and releases everyone.
func (j *Job) enterBarrier(ctx *kernel.Context, r int) {
	rs := j.ranks[r]
	if rs.atBarrier {
		return
	}
	rs.atBarrier = true
	j.arrived++
	p := ctx.P
	p.WaitReason = "mpi checkpoint barrier"
	p.State = proc.StateBlocked
	ctx.K.Sched.Dequeue(p)
	if j.arrived == j.NRanks {
		j.drainedAt = j.C.Now()
		j.LastDrainTime = j.drainedAt.Sub(j.requestedAt)
		j.captureAll()
	}
}

// captureAll checkpoints every (quiescent) rank and releases the barrier.
func (j *Job) captureAll() {
	var imgs []*checkpoint.Image
	ok := true
	for r := range j.ranks {
		rs := j.ranks[r]
		if len(rs.mailbox) != 0 {
			// Cannot happen when the coordination invariant holds; guard
			// anyway rather than persist an inconsistent global state.
			ok = false
			break
		}
		m, err := j.mech(rs.node)
		if err != nil {
			ok = false
			break
		}
		p, err := j.proc(r)
		if err != nil {
			ok = false
			break
		}
		tk, err := mechanism.Checkpoint(m, j.C.Node(rs.node).K, p, j.ckptTgt, nil)
		if err != nil {
			ok = false
			break
		}
		imgs = append(imgs, tk.Img)
	}
	if ok {
		j.Checkpoints++
	}
	// Release the barrier.
	j.ckptAtIter = 0
	for r := range j.ranks {
		rs := j.ranks[r]
		rs.atBarrier = false
		if p, err := j.proc(r); err == nil {
			j.C.Node(rs.node).K.Wake(p)
		}
	}
	if j.ckptDone != nil && ok {
		j.ckptDone(imgs)
	}
	j.ckptDone = nil
}

// WaitCheckpoint drives the cluster until the in-progress checkpoint
// finishes.
func (j *Job) WaitCheckpoint(budget simtime.Duration) error {
	if !j.C.RunUntil(func() bool { return j.ckptAtIter == 0 }, budget) {
		return fmt.Errorf("mpi: coordinated checkpoint did not finish within %v", budget)
	}
	return nil
}

// Restart rebuilds the whole job from per-rank images on the given node
// assignment (nil = keep each rank's recorded node). Any surviving
// original rank processes are killed first; mailboxes reset (the images
// were taken at a drained barrier, so empty is exact).
func (j *Job) Restart(imgs []*checkpoint.Image, nodes []int) error {
	if len(imgs) != j.NRanks {
		return fmt.Errorf("mpi: %d images for %d ranks", len(imgs), j.NRanks)
	}
	for r := range j.ranks {
		rs := j.ranks[r]
		if p, err := j.proc(r); err == nil {
			j.C.Node(rs.node).K.Exit(p, 0)
			j.C.Node(rs.node).K.Procs.Remove(p.PID)
		}
		rs.mailbox = nil
		rs.waiting = false
		rs.atBarrier = false
	}
	// Tear down the network: packets from the dead execution must never
	// reach the restored one (they would duplicate replayed messages).
	j.C.DropMail(func(payload any) bool {
		_, ok := payload.(envelope)
		return ok
	})
	for r := range j.ranks {
		node := j.ranks[r].node
		if nodes != nil {
			node = nodes[r]
		}
		if !j.C.Node(node).Alive() {
			return fmt.Errorf("mpi: restart target node%d is down", node)
		}
		m, err := j.mech(node)
		if err != nil {
			return err
		}
		p, err := m.Restart(j.C.Node(node).K, []*checkpoint.Image{imgs[r]}, true)
		if err != nil {
			return fmt.Errorf("mpi: restart rank %d: %w", r, err)
		}
		// The modified MPI library re-runs the mechanism's init phase on
		// restart, exactly as it did at MPI_Init.
		if err := m.Setup(j.C.Node(node).K, p); err != nil {
			return err
		}
		j.ranks[r].node = node
		j.ranks[r].pid = p.PID
	}
	return nil
}

// Fingerprints returns each rank's result checksum.
func (j *Job) Fingerprints() ([]uint64, error) {
	out := make([]uint64, j.NRanks)
	for r := range j.ranks {
		p, err := j.proc(r)
		if err != nil {
			return nil, err
		}
		out[r] = p.Regs().G[3]
	}
	return out, nil
}

// Done reports whether every rank has exited cleanly.
func (j *Job) Done() bool {
	for r := range j.ranks {
		p, err := j.proc(r)
		if err != nil || p.State != proc.StateZombie {
			return false
		}
	}
	return true
}

// RunUntilDone drives the cluster until the job completes.
func (j *Job) RunUntilDone(budget simtime.Duration) bool {
	return j.C.RunUntil(j.Done, budget)
}
