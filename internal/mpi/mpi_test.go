package mpi

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
	"repro/internal/syslevel"
)

func newCluster(nodes int, seed int64) *cluster.Cluster {
	return cluster.New(
		cluster.Config{Nodes: nodes, Seed: seed, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), kernel.NewRegistry())
}

func mkLAM() mechanism.Mechanism { return syslevel.NewLAMMPI() }

func launch(t *testing.T, c *cluster.Cluster, nRanks int, iters uint64) *Job {
	t.Helper()
	j := NewJob(c, nRanks, mkLAM)
	if err := j.Launch(HaloRing{MiB: 1, Iterations: iters, PagesPerIter: 16, HaloBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	return j
}

// referenceFingerprints runs an identical job to completion untouched.
func referenceFingerprints(t *testing.T, nRanks, nodes int, iters uint64) []uint64 {
	t.Helper()
	c := newCluster(nodes, 1)
	j := launch(t, c, nRanks, iters)
	if !j.RunUntilDone(10 * simtime.Minute) {
		t.Fatal("reference job stuck")
	}
	fps, err := j.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	return fps
}

func TestJobRunsToCompletion(t *testing.T) {
	c := newCluster(2, 1)
	j := launch(t, c, 4, 10)
	if !j.RunUntilDone(10 * simtime.Minute) {
		t.Fatal("job stuck")
	}
	if j.MessagesSent != 4*10*2 {
		t.Fatalf("messages sent = %d, want 80", j.MessagesSent)
	}
	fps, _ := j.Fingerprints()
	for r, fp := range fps {
		if fp == 0 {
			t.Fatalf("rank %d fingerprint zero", r)
		}
	}
}

func TestRanksProgressInLockStep(t *testing.T) {
	c := newCluster(3, 1)
	j := launch(t, c, 6, 1<<30)
	c.RunFor(20 * simtime.Millisecond)
	var minPC, maxPC uint64 = 1 << 62, 0
	for r := 0; r < j.NRanks; r++ {
		p, err := j.proc(r)
		if err != nil {
			t.Fatal(err)
		}
		pc := p.Regs().PC
		if pc < minPC {
			minPC = pc
		}
		if pc > maxPC {
			maxPC = pc
		}
	}
	if minPC == 0 {
		t.Fatal("a rank made no progress")
	}
	if maxPC-minPC > 1 {
		t.Fatalf("rank skew %d, lock-step bound is 1", maxPC-minPC)
	}
}

func TestCoordinatedCheckpointDrainsAndCaptures(t *testing.T) {
	c := newCluster(2, 1)
	j := launch(t, c, 4, 1<<30)
	c.RunFor(5 * simtime.Millisecond)

	srv := c.Node(0).Remote()
	var imgs []*checkpoint.Image
	if err := j.RequestCheckpoint(srv, func(got []*checkpoint.Image) { imgs = got }); err != nil {
		t.Fatal(err)
	}
	if err := j.RequestCheckpoint(srv, nil); err == nil {
		t.Fatal("concurrent checkpoint accepted")
	}
	if err := j.WaitCheckpoint(simtime.Minute); err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 4 {
		t.Fatalf("captured %d images", len(imgs))
	}
	if j.LastDrainTime <= 0 {
		t.Fatal("no drain time recorded")
	}
	// All ranks at the same iteration in their images (global consistency).
	iter := imgs[0].Threads[0].Regs.PC
	for r, img := range imgs {
		if img.Threads[0].Regs.PC != iter {
			t.Fatalf("rank %d captured at iter %d, rank 0 at %d", r, img.Threads[0].Regs.PC, iter)
		}
	}
	// The job keeps running after the checkpoint.
	before, _ := j.Fingerprints()
	c.RunFor(5 * simtime.Millisecond)
	after, _ := j.Fingerprints()
	if before[0] == after[0] {
		t.Fatal("job frozen after checkpoint")
	}
}

func TestRestartReproducesResult(t *testing.T) {
	const nRanks, iters = 4, 80
	want := referenceFingerprints(t, nRanks, 2, iters)

	c := newCluster(2, 1)
	j := launch(t, c, nRanks, iters)
	c.RunFor(4 * simtime.Millisecond)

	var imgs []*checkpoint.Image
	if err := j.RequestCheckpoint(nil, func(got []*checkpoint.Image) { imgs = got }); err != nil {
		t.Fatal(err)
	}
	if err := j.WaitCheckpoint(simtime.Minute); err != nil {
		t.Fatal(err)
	}
	if imgs == nil {
		t.Fatal("no images")
	}

	// Let the job run on a bit, then "fail": kill everything and restart
	// from the images on the same nodes.
	c.RunFor(3 * simtime.Millisecond)
	if err := j.Restart(imgs, nil); err != nil {
		t.Fatal(err)
	}
	if !j.RunUntilDone(10 * simtime.Minute) {
		t.Fatal("restarted job stuck")
	}
	got, err := j.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("rank %d fingerprint %#x, want %#x", r, got[r], want[r])
		}
	}
}

func TestRestartOnDifferentNodes(t *testing.T) {
	const nRanks, iters = 2, 80
	want := referenceFingerprints(t, nRanks, 4, iters)

	c := newCluster(4, 1)
	j := launch(t, c, nRanks, iters)
	c.RunFor(4 * simtime.Millisecond)
	var imgs []*checkpoint.Image
	j.RequestCheckpoint(nil, func(got []*checkpoint.Image) { imgs = got })
	if err := j.WaitCheckpoint(simtime.Minute); err != nil {
		t.Fatal(err)
	}

	// Node 0 fails; move its rank to node 2 (rank 1 stays on node 1).
	c.Fail(0)
	if err := j.Restart(imgs, []int{2, 1}); err != nil {
		t.Fatal(err)
	}
	if !j.RunUntilDone(10 * simtime.Minute) {
		t.Fatal("migrated job stuck")
	}
	got, _ := j.Fingerprints()
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("rank %d fingerprint %#x, want %#x", r, got[r], want[r])
		}
	}
}

func TestRestartRejectsDeadTarget(t *testing.T) {
	c := newCluster(2, 1)
	j := launch(t, c, 2, 1<<30)
	c.RunFor(3 * simtime.Millisecond)
	var imgs []*checkpoint.Image
	j.RequestCheckpoint(nil, func(got []*checkpoint.Image) { imgs = got })
	if err := j.WaitCheckpoint(simtime.Minute); err != nil {
		t.Fatal(err)
	}
	c.Fail(1)
	if err := j.Restart(imgs, []int{0, 1}); err == nil {
		t.Fatal("restart onto a dead node accepted")
	}
}

func TestDrainTimeGrowsWithRanks(t *testing.T) {
	drain := func(nRanks int) simtime.Duration {
		c := newCluster(4, 1)
		j := NewJob(c, nRanks, mkLAM)
		if err := j.Launch(HaloRing{MiB: 2, Iterations: 1 << 30, PagesPerIter: 64, HaloBytes: 8192}); err != nil {
			t.Fatal(err)
		}
		c.RunFor(5 * simtime.Millisecond)
		if err := j.RequestCheckpoint(nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := j.WaitCheckpoint(simtime.Minute); err != nil {
			t.Fatal(err)
		}
		return j.LastDrainTime
	}
	d2 := drain(2)
	d8 := drain(8)
	if d8 <= 0 || d2 <= 0 {
		t.Fatal("no drain measured")
	}
	// With more ranks sharing 4 nodes, reaching the global barrier takes
	// longer (each node time-slices more ranks per iteration).
	if d8 < d2 {
		t.Fatalf("drain(8 ranks)=%v < drain(2 ranks)=%v", d8, d2)
	}
}

func TestLaunchTwiceFails(t *testing.T) {
	c := newCluster(2, 1)
	j := launch(t, c, 2, 10)
	if err := j.Launch(HaloRing{MiB: 1}); err == nil {
		t.Fatal("double launch accepted")
	}
}
