package mpi

import (
	"fmt"

	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
)

// HaloRing is the parallel workload: ranks arranged in a ring exchange
// fixed-size halo messages with both neighbours each iteration, then
// relax their local grid — the communication structure of the domain-decomposed
// scientific codes the paper's introduction motivates (SAGE, Sweep3D).
//
// Per the kernel.Program contract all mutable state lives in registers
// and simulated memory; the Job pointer is "the MPI library" (code, not
// state). Register map: PC = iteration; G[4] = phase (0 send, 1 recv,
// 2 compute); G[5] = halo messages received this iteration; G[6] = page
// cursor for the compute phase.
type HaloRing struct {
	Job  *Job
	Rank int

	MiB        int
	HaloBytes  int
	Iterations uint64
	// PagesPerIter is the compute footprint per iteration (default:
	// whole arena).
	PagesPerIter int
}

// Phases.
const (
	phaseSend = iota
	phaseRecv
	phaseCompute
)

// Name implements kernel.Program.
func (h HaloRing) Name() string {
	return fmt.Sprintf("haloring[rank=%d,mib=%d]", h.Rank, h.MiB)
}

func (h HaloRing) haloBytes() int {
	if h.HaloBytes <= 0 {
		return 8 << 10
	}
	return h.HaloBytes
}

// Init implements kernel.Program.
func (h HaloRing) Init(ctx *kernel.Context) error {
	ctx.Regs().G[1] = h.Iterations
	_, err := ctx.P.AS.Map(0x1000_0000, uint64(h.MiB)<<20, mem.ProtRW, mem.KindAnon, "arena")
	return err
}

// left and right neighbours on the ring.
func (h HaloRing) neighbours() (int, int) {
	n := h.Job.NRanks
	return (h.Rank + n - 1) % n, (h.Rank + 1) % n
}

// Step implements kernel.Program.
func (h HaloRing) Step(ctx *kernel.Context) (kernel.Status, error) {
	r := ctx.Regs()
	if r.G[1] != 0 && r.PC >= r.G[1] {
		ctx.Exit(0)
		return kernel.StatusExited, nil
	}
	switch r.G[4] {
	case phaseSend:
		// Coordination point: pause here when a checkpoint is pending
		// and this iteration is at/past the agreed boundary.
		if h.Job.shouldPause(r.PC) {
			h.Job.enterBarrier(ctx, h.Rank)
			return kernel.StatusBlocked, nil
		}
		left, right := h.neighbours()
		payload := make([]byte, h.haloBytes())
		// Halo contents derive from rank, iteration and checksum so that
		// received data feeds the fingerprint deterministically.
		seed := r.G[3] ^ uint64(h.Rank)<<32 ^ r.PC
		for i := range payload {
			seed = seed*6364136223846793005 + 1442695040888963407
			payload[i] = byte(seed >> 56)
		}
		h.Job.send(ctx, envelope{From: h.Rank, To: left, Iter: r.PC, Data: payload})
		h.Job.send(ctx, envelope{From: h.Rank, To: right, Iter: r.PC, Data: payload})
		r.G[4] = phaseRecv
		r.G[5] = 0
		return kernel.StatusRunning, nil

	case phaseRecv:
		left, right := h.neighbours()
		for r.G[5] < 2 {
			from := left
			if r.G[5] == 1 {
				from = right
			}
			env, ok := h.Job.tryRecvFrom(h.Rank, from, r.PC)
			if !ok {
				// Block until a message arrives; the Job wakes us.
				rs := h.Job.ranks[h.Rank]
				rs.waiting = true
				ctx.P.WaitReason = "mpi recv"
				return kernel.StatusBlocked, nil
			}
			// Digest the halo. The XOR accumulation in G[2] is
			// commutative, so the fingerprint is independent of message
			// arrival order (which checkpointing perturbs).
			var acc uint64
			for i, b := range env.Data {
				acc = acc*131 + uint64(b) + uint64(i)
			}
			r.G[2] ^= splitmix(acc ^ uint64(env.From)<<1)
			// Store the halo row into a sender-specific edge page so it
			// is part of the checkpointable image.
			edgeIdx := 1
			if env.From == left {
				edgeIdx = 0
			}
			edge := mem.Addr(0x1000_0000) + mem.Addr(edgeIdx*mem.PageSize)
			n := h.haloBytes()
			if n > mem.PageSize {
				n = mem.PageSize
			}
			if err := ctx.Store(edge, env.Data[:n]); err != nil {
				return kernel.StatusExited, err
			}
			r.G[5]++
		}
		// Fold the iteration's combined digest into the fingerprint.
		r.G[3] = splitmix(r.G[3] ^ r.G[2])
		r.G[2] = 0
		r.G[4] = phaseCompute
		r.G[6] = 0
		return kernel.StatusRunning, nil

	default: // phaseCompute
		total := uint64(h.MiB) << 20 >> mem.PageShift
		quota := total
		if h.PagesPerIter > 0 && uint64(h.PagesPerIter) < total {
			quota = uint64(h.PagesPerIter)
		}
		var buf [mem.PageSize]byte
		for i := 0; i < 32; i++ {
			if r.G[6] >= quota {
				r.G[6] = 0
				r.G[4] = phaseSend
				r.PC++
				return kernel.StatusRunning, nil
			}
			pg := r.G[6] % total
			buf[0] = byte(r.PC)
			buf[1] = byte(pg)
			if err := ctx.Store(mem.Addr(0x1000_0000)+mem.Addr(pg<<mem.PageShift), buf[:]); err != nil {
				return kernel.StatusExited, err
			}
			ctx.Compute(3000)
			r.G[3] = splitmix(r.G[3] ^ pg<<16 ^ r.PC)
			r.G[6]++
		}
		return kernel.StatusRunning, nil
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
