package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E17Replication measures what checkpoint replication costs and what it
// buys, against the BENCH_6 single-server baseline: the healthy-path
// publish overhead of fanning a capture out to a buddy pair or a 2+1
// erasure set, the restore latency when the owner's disk is gone and the
// read ladder falls back to the nearest surviving replica (or a parity
// reconstruction), and the failover-measured restore.latency p50 of a
// full autonomic run under each placement mode. The acceptance line is
// the last column: degraded-restore p50 within 2x of the unreplicated
// healthy restore.
func E17Replication(quick bool) *trace.Table {
	s := E17Bench(quick)
	tb := trace.NewTable(
		fmt.Sprintf("E17 — replication write overhead and degraded restore (sparse %d MiB)", s.MiB),
		"mode", "publish(ms)", "overhead", "stored", "healthy restore(ms)", "degraded restore(ms)")
	for i, w := range s.Write {
		r := s.Restore[i]
		deg := "—"
		if r.DegradedMs > 0 {
			deg = fmt.Sprintf("%.2f (%.2fx)", r.DegradedMs, r.VsBaseline)
		}
		tb.Row(w.Mode, fmt.Sprintf("%.2f", w.PublishMs), fmt.Sprintf("%.2fx", w.Overhead),
			fmt.Sprintf("%.2fx", w.Redundancy), fmt.Sprintf("%.2f", r.HealthyMs), deg)
	}
	tb.Note("overhead = publish wait vs the unreplicated server write; stored = total bytes on disk vs object size")
	tb.Note("degraded = owner disk lost: buddy reads the mirror over the wire, erasure reconstructs from k survivors")
	for _, c := range s.Clusters {
		tb.Note(fmt.Sprintf("cluster %s: restore p50 %.2f ms over %d failover(s) (baseline %.2f ms, %.2fx; within 2x: %v); reads local/buddy/shards/reconstruct/remote = %d/%d/%d/%d/%d",
			c.Mode, c.P50Ms, c.Restores, s.BaselineP50Ms, c.P50Ms/s.BaselineP50Ms, c.P50Ms <= 2*s.BaselineP50Ms,
			c.ReadLocal, c.ReadBuddy, c.ReadShards, c.ReadReconstruct, c.ReadRemote))
	}
	return tb
}

// E17WritePoint is the healthy-path publish cost of one placement mode.
type E17WritePoint struct {
	Mode        string  `json:"mode"`
	PublishMs   float64 `json:"publish_ms"`
	Overhead    float64 `json:"overhead_vs_none"`
	StoredBytes int     `json:"stored_bytes"`
	Redundancy  float64 `json:"redundancy"`
}

// E17RestorePoint is the restore cost of one placement mode, healthy and
// with the owner's disk masked. VsBaseline compares the degraded read to
// the unreplicated healthy restore — the BENCH_6 comparison the
// acceptance criterion names.
type E17RestorePoint struct {
	Mode       string  `json:"mode"`
	HealthyMs  float64 `json:"healthy_ms"`
	DegradedMs float64 `json:"degraded_ms"`
	VsBaseline float64 `json:"degraded_vs_baseline"`
}

// E17ClusterSummary is one autonomic run's failover-measured restore
// distribution plus the replication counters that explain it.
type E17ClusterSummary struct {
	Mode            string  `json:"mode"`
	Completed       bool    `json:"completed"`
	Restores        int     `json:"restores"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	Repaired        int64   `json:"repl_repaired"`
	Rebuddies       int64   `json:"repl_rebuddy"`
	ReadLocal       int64   `json:"read_local"`
	ReadBuddy       int64   `json:"read_buddy"`
	ReadShards      int64   `json:"read_shards"`
	ReadReconstruct int64   `json:"read_reconstruct"`
	ReadRemote      int64   `json:"read_remote"`
}

// E17Summary is the payload of BENCH_7.json.
type E17Summary struct {
	MiB              int                 `json:"mib"`
	Write            []E17WritePoint     `json:"write_overhead"`
	Restore          []E17RestorePoint   `json:"restore"`
	BaselineP50Ms    float64             `json:"baseline_p50_ms"`
	Clusters         []E17ClusterSummary `json:"clusters"`
	DegradedWithin2x bool                `json:"degraded_within_2x"`
}

// E17Bench runs the micro write/restore sweep and the three cluster
// variants (none / buddy / erasure) and returns the machine-readable
// summary (the bench-replication make target).
func E17Bench(quick bool) E17Summary {
	mib := 4
	if quick {
		mib = 2
	}
	out := E17Summary{MiB: mib}

	// Micro bench: one full-image capture through each placement, publish
	// wait measured; then the restore with every holder up and with the
	// owner's disk dead. The unreplicated server write is both the write
	// and restore baseline.
	base := e17Capture(mib, "none")
	for _, mode := range []string{"none", "buddy", "erasure"} {
		m := base
		if mode != "none" {
			m = e17Capture(mib, mode)
		}
		out.Write = append(out.Write, E17WritePoint{
			Mode: mode, PublishMs: m.publishMs,
			Overhead:    m.publishMs / base.publishMs,
			StoredBytes: m.storedBytes,
			Redundancy:  float64(m.storedBytes) / float64(base.objectBytes),
		})
		rp := E17RestorePoint{Mode: mode, HealthyMs: m.restoreMs(false)}
		if mode != "none" {
			rp.DegradedMs = m.restoreMs(true)
			rp.VsBaseline = rp.DegradedMs / base.restoreMs(false)
		}
		out.Restore = append(out.Restore, rp)
	}

	// Cluster bench: the BENCH_6 scenario (incremental shipping, scripted
	// failovers, background compaction) re-run under each placement mode.
	// The no-replication run IS the BENCH_6 methodology; its p50 anchors
	// the 2x acceptance bound for the replicated (degraded-read) runs.
	baseline := e17Cluster(quick, "none", nil)
	out.BaselineP50Ms = baseline.P50Ms
	out.Clusters = append(out.Clusters, baseline)
	out.DegradedWithin2x = true
	for _, mode := range []string{"buddy", "erasure"} {
		var rc *cluster.ReplicationConfig
		if mode == "buddy" {
			rc = &cluster.ReplicationConfig{Mode: cluster.ReplBuddy}
		} else {
			rc = &cluster.ReplicationConfig{Mode: cluster.ReplErasure, DataShards: 2, ParityShards: 1}
		}
		cs := e17Cluster(quick, mode, rc)
		out.Clusters = append(out.Clusters, cs)
		if !cs.Completed || cs.Restores == 0 || cs.P50Ms > 2*out.BaselineP50Ms {
			out.DegradedWithin2x = false
		}
	}
	return out
}

// e17Capture captures one full image of a sparse workload through the
// given placement mode and measures the modeled publish wait, the bytes
// stored across all replicas, and the restore wait with and without the
// owner's disk.
type e17Result struct {
	mode        string
	tgt         storage.Target
	members     []storage.Target
	ownerUp     *bool
	leaf        string
	objectBytes int
	storedBytes int
	publishMs   float64
}

func e17Capture(mib int, mode string) *e17Result {
	cm := costmodel.Default2005()
	res := &e17Result{mode: mode}
	up := true
	res.ownerUp = &up
	srv := storage.NewServer("e17-srv", cm)
	switch mode {
	case "none":
		res.tgt = storage.NewRemote("e17-net", srv)
		res.members = []storage.Target{res.tgt}
	case "buddy":
		owner := storage.NewLocal("e17-n0", cm, func() bool { return up })
		buddy := storage.NewLocal("e17-n1", cm, nil)
		res.members = []storage.Target{owner, buddy, storage.NewRemote("e17-net", srv)}
		r, err := storage.NewReplicated("e17-repl", []storage.Replica{
			{T: owner, Role: storage.RoleLocal},
			{T: storage.OverWire(buddy, cm), Role: storage.RoleBuddy},
			{T: storage.NewRemote("e17-net", srv), Role: storage.RoleRemote},
		}, storage.ReplicatedConfig{Quorum: 2})
		if err != nil {
			panic(err)
		}
		res.tgt = r
	case "erasure":
		var reps []storage.Replica
		for i := 0; i < 3; i++ {
			i := i
			d := storage.NewLocal(fmt.Sprintf("e17-n%d", i), cm, func() bool { return i != 0 || up })
			res.members = append(res.members, d)
			t := storage.Target(d)
			if i != 0 {
				t = storage.OverWire(d, cm)
			}
			reps = append(reps, storage.Replica{T: t, Role: storage.RoleShard})
		}
		r, err := storage.NewReplicated("e17-repl", reps, storage.ReplicatedConfig{DataShards: 2, ParityShards: 1})
		if err != nil {
			panic(err)
		}
		res.tgt = r
	}

	prog := workload.Sparse{MiB: mib, WriteFrac: 0.02, Seed: 17}
	k := newMachine("e17", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		panic(err)
	}
	workload.SetIterations(p, 1<<30)
	k.RunFor(50 * simtime.Microsecond)
	k.Stop(p)
	if p.State == proc.StateZombie {
		panic("e17: workload exited before capture")
	}
	var wait simtime.Duration
	env := &storage.Env{Bill: costmodel.Discard{},
		Wait: func(d simtime.Duration, _ string) { wait += d }}
	img, _, err := checkpoint.Capture(checkpoint.Request{
		Acc:    &checkpoint.KernelAccessor{K: k, P: p},
		Target: res.tgt, Env: env,
		Mechanism: "e17", Hostname: "e17", Seq: 1, Now: k.Now(),
	})
	if err != nil {
		panic(err)
	}
	res.leaf = img.ObjectName()
	res.publishMs = wait.Millis()
	if n, err := res.tgt.ObjectSize(res.leaf); err == nil {
		res.objectBytes = n
	}
	for _, m := range res.members {
		if n, err := m.ObjectSize(res.leaf); err == nil {
			res.storedBytes += n
		}
	}
	return res
}

// restoreMs loads the captured chain back through the replica ladder and
// returns the modeled read wait; degraded masks the owner's disk first
// (and restores it after), so the read comes from the nearest surviving
// replica — the mirror over the wire, or a k-of-n reconstruction.
func (res *e17Result) restoreMs(degraded bool) float64 {
	if degraded {
		*res.ownerUp = false
		defer func() { *res.ownerUp = true }()
	}
	var wait simtime.Duration
	env := &storage.Env{Bill: costmodel.Discard{},
		Wait: func(d simtime.Duration, _ string) { wait += d }}
	if _, err := checkpoint.LoadChain(res.tgt, env, res.leaf); err != nil {
		return 0
	}
	return wait.Millis()
}

// e17Cluster is the BENCH_6 autonomic scenario (e16Cluster) re-run under
// a placement mode: incremental shipping, background compaction, and two
// scripted kills of the job's node, so every measured restore after the
// first failover is a real degraded read from the surviving replicas.
func e17Cluster(quick bool, mode string, repl *cluster.ReplicationConfig) E17ClusterSummary {
	iters := 2000
	if quick {
		iters = 500
	}
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.1, Seed: 17}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 17, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	sup := cluster.MustNewSupervisor(cluster.SupervisorConfig{
		C:            c,
		MkMech:       func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:         prog,
		Iterations:   uint64(iters),
		Policy:       policy.Fixed(simtime.Millisecond),
		Detector:     mon,
		ControlNode:  3,
		Incremental:  true,
		RebaseEvery:  64,
		CompactAfter: 4,
		Replication:  repl,
	})

	jobNode := 0
	acks := 0
	sup.OnEvent = func(ev cluster.Event) {
		switch ev.Kind {
		case cluster.EvAdmit:
			jobNode = ev.Node
		case cluster.EvAck:
			acks++
		}
	}
	fails := 0
	var nextFail simtime.Time
	rebootNode, rebootAt := -1, simtime.Time(0)
	c.OnStep(func() {
		if rebootNode >= 0 && c.Now() >= rebootAt {
			c.Reboot(rebootNode)
			rebootNode = -1
		}
		// Kill the owner only after a few acks, so the restore measures a
		// replicated chain read rather than a from-scratch restart.
		armed := (fails == 0 && acks >= 3) || (fails == 1 && c.Now() >= nextFail)
		if fails < 2 && armed && c.NodeAlive(jobNode) {
			fails++
			c.Fail(jobNode)
			rebootNode, rebootAt = jobNode, c.Now().Add(2*simtime.Millisecond)
			nextFail = c.Now().Add(15 * simtime.Millisecond)
		}
	})
	err := sup.Run(10 * simtime.Second)

	snap := sup.Metrics.Hist("restore.latency").Snapshot()
	return E17ClusterSummary{
		Mode:            mode,
		Completed:       err == nil && sup.Completed,
		Restores:        snap.N,
		P50Ms:           snap.P50,
		P99Ms:           snap.P99,
		Repaired:        c.Counters.Get("repl.repaired"),
		Rebuddies:       c.Counters.Get("repl.rebuddy"),
		ReadLocal:       c.Counters.Get("repl.read_local"),
		ReadBuddy:       c.Counters.Get("repl.read_buddy"),
		ReadShards:      c.Counters.Get("repl.read_shards"),
		ReadReconstruct: c.Counters.Get("repl.read_reconstruct"),
		ReadRemote:      c.Counters.Get("repl.read_remote"),
	}
}
