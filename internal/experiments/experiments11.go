package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E19Lazy measures lazy page-granular restore (restart-before-read):
// time-to-first-instruction versus the eager full restore of the same
// 16-delta chain across replay widths, with the fully drained memory
// checksummed against the eager restore's — the byte-equivalence claim.
// The cluster pair runs the same scripted failover schedule eagerly and
// lazily and compares completion fingerprints plus the new
// restore.first_instr_latency distribution.
func E19Lazy(quick bool) *trace.Table {
	s := E19Bench(quick)
	tb := trace.NewTable(
		fmt.Sprintf("E19 — lazy restore: TTFI vs eager full restore (sparse %d MiB, %d deltas)", s.MiB, s.Deltas),
		"workers", "eager(ms)", "ttfi(ms)", "ttfi/eager", "drained(ms)", "digest==eager")
	for _, pt := range s.Points {
		tb.Row(pt.Workers, fmt.Sprintf("%.2f", pt.EagerMs), fmt.Sprintf("%.2f", pt.TTFIMs),
			fmt.Sprintf("%.2fx", pt.VsEager), fmt.Sprintf("%.2f", pt.DrainedMs), pt.DigestMatch)
	}
	tb.Note("ttfi = leaf read + hot-set replay; drained = leaf + deferred ancestor reads + full plan replay")
	tb.Note(fmt.Sprintf("gate: ttfi <= 0.25x eager at every width, digests byte-identical: pass=%v", s.GatePass))
	if s.Lazy.Completed {
		tb.Note(fmt.Sprintf("cluster lazy run: %d lazy restore(s), first-instr p50 %.2f ms vs eager restore p50 %.2f ms; %d fault(s) served, %d prefetched; fingerprints match=%v",
			s.Lazy.LazyRestores, s.Lazy.FirstInstrP50Ms, s.Eager.RestoreP50Ms,
			s.Lazy.FaultsServed, s.Lazy.Prefetched, s.FingerprintsMatch))
	}
	return tb
}

// E19Point is one replay-width sample of the lazy-vs-eager comparison.
type E19Point struct {
	Workers     int     `json:"workers"`
	EagerMs     float64 `json:"eager_ms"`
	TTFIMs      float64 `json:"ttfi_ms"`
	VsEager     float64 `json:"vs_eager"`
	DrainedMs   float64 `json:"drained_ms"`
	HotPages    int     `json:"hot_pages"`
	PlanBytes   int     `json:"plan_bytes"`
	DigestMatch bool    `json:"digest_match"`
}

// E19ClusterSummary is one autonomic run of the scripted-failover
// schedule (eager or lazy failover path).
type E19ClusterSummary struct {
	Completed       bool    `json:"completed"`
	Fingerprint     uint64  `json:"fingerprint"`
	Restores        int     `json:"restores"`
	LazyRestores    int64   `json:"lazy_restores"`
	FaultsServed    int64   `json:"faults_served"`
	Prefetched      int64   `json:"prefetched"`
	FirstInstrP50Ms float64 `json:"first_instr_p50_ms,omitempty"`
	RestoreP50Ms    float64 `json:"restore_p50_ms"`
}

// E19Summary is the payload of BENCH_9.json.
type E19Summary struct {
	MiB               int               `json:"mib"`
	Deltas            int               `json:"deltas"`
	Points            []E19Point        `json:"points"`
	Eager             E19ClusterSummary `json:"cluster_eager"`
	Lazy              E19ClusterSummary `json:"cluster_lazy"`
	FingerprintsMatch bool              `json:"fingerprints_match"`
	GatePass          bool              `json:"gate_pass"`
}

// E19Bench runs the lazy-restore comparison and returns the
// machine-readable summary (the bench-lazy make target). GatePass
// asserts the acceptance line: 16-delta-chain TTFI at or below 0.25x
// the eager full restore, with the drained memory image byte-identical
// to the eager restore's, at every measured width.
func E19Bench(quick bool) E19Summary {
	mib := 4
	if quick {
		mib = 2
	}
	const deltas = 16
	out := E19Summary{MiB: mib, Deltas: deltas, GatePass: true}

	ch, err := e16Chain(mib, deltas)
	if err != nil {
		out.GatePass = false
		return out
	}
	prog := workload.Sparse{MiB: mib, WriteFrac: 0.02, Seed: 16}
	for _, w := range []int{1, 4, 8} {
		pt, ok := e19Compare(ch, prog, w)
		if !ok {
			out.GatePass = false
			continue
		}
		out.Points = append(out.Points, pt)
		if !pt.DigestMatch || pt.VsEager > 0.25 {
			out.GatePass = false
		}
	}

	out.Eager = e19Cluster(quick, false)
	out.Lazy = e19Cluster(quick, true)
	out.FingerprintsMatch = out.Eager.Completed && out.Lazy.Completed &&
		out.Eager.Fingerprint == out.Lazy.Fingerprint
	if !out.FingerprintsMatch || out.Lazy.LazyRestores == 0 {
		out.GatePass = false
	}
	return out
}

// e19Compare restores ch's chain both ways at one replay width: eagerly
// on one fresh machine, lazily (leaf only, then a full drain) on
// another, and checksums the two memory images against each other.
func e19Compare(ch e16ChainResult, prog kernel.Program, workers int) (E19Point, bool) {
	pt := E19Point{Workers: workers}

	// Eager: batched chain read + full replay before control returns.
	var eagerWait simtime.Duration
	env := &storage.Env{Bill: costmodel.Discard{},
		Wait: func(d simtime.Duration, _ string) { eagerWait += d }}
	chain, err := checkpoint.LoadChainManifest(ch.tgt, env, ch.objects)
	if err != nil {
		return pt, false
	}
	ke := newMachine("e19-eager", prog)
	pe, err := checkpoint.Restore(ke, chain, checkpoint.RestoreOptions{Parallelism: workers})
	if err != nil {
		return pt, false
	}
	eagerLat := eagerWait
	if n, err := checkpoint.ReplayBytes(chain); err == nil {
		eagerLat += checkpoint.RestoreCost(n, workers)
	}
	pt.EagerMs = eagerLat.Millis()

	// Lazy: only the leaf is read before control returns.
	var leafWait simtime.Duration
	lenv := &storage.Env{Bill: costmodel.Discard{},
		Wait: func(d simtime.Duration, _ string) { leafWait += d }}
	blob, err := ch.tgt.ReadObject(ch.leaf, lenv)
	if err != nil {
		return pt, false
	}
	leaf, err := checkpoint.Decode(blob)
	if err != nil {
		return pt, false
	}
	kl := newMachine("e19-lazy", prog)
	pl, sess, err := checkpoint.LazyRestore(kl, leaf, checkpoint.LazyOptions{
		RestoreOptions: checkpoint.RestoreOptions{Parallelism: workers},
		Source:         ch.tgt,
		Ancestors:      ch.objects[:len(ch.objects)-1],
	})
	if err != nil {
		return pt, false
	}
	st := sess.Stats()
	pt.HotPages = st.HotPages
	pt.TTFIMs = (leafWait + checkpoint.RestoreCost(st.HotBytes, workers)).Millis()
	pt.VsEager = pt.TTFIMs / pt.EagerMs

	if err := sess.DrainAll(); err != nil {
		return pt, false
	}
	st = sess.Stats()
	pt.PlanBytes = st.PlanBytes
	pt.DrainedMs = (leafWait + st.PlanWait + checkpoint.RestoreCost(st.PlanBytes, workers)).Millis()
	sess.Close()
	pt.DigestMatch = pl.AS.Checksum() == pe.AS.Checksum()
	return pt, true
}

// e19Cluster drives one autonomic job with incremental shipping and two
// scripted transient failures — the same schedule either way — and
// reads back the failover restore telemetry. With lazy set, failover
// takes the restart-before-read path and the run must still complete
// with the same workload fingerprint as the eager twin.
func e19Cluster(quick, lazy bool) E19ClusterSummary {
	iters := 2000
	if quick {
		iters = 500
	}
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.1, Seed: 19}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 19, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	sup := cluster.MustNewSupervisor(cluster.SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  uint64(iters),
		Policy:      policy.Fixed(simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
		Incremental: true,
		RebaseEvery: 8,
		LazyRestore: lazy,
	})

	// Scripted failures so both runs measure real failover restores of
	// delta chains: kill the job's node once a few checkpoints have
	// acked, and again 15ms later (cf. e16Cluster's schedule).
	jobNode := 0
	acks := 0
	sup.OnEvent = func(ev cluster.Event) {
		switch ev.Kind {
		case cluster.EvAdmit:
			jobNode = ev.Node
		case cluster.EvAck:
			acks++
		}
	}
	fails := 0
	var nextFail simtime.Time
	rebootNode, rebootAt := -1, simtime.Time(0)
	c.OnStep(func() {
		if rebootNode >= 0 && c.Now() >= rebootAt {
			c.Reboot(rebootNode)
			rebootNode = -1
		}
		armed := (fails == 0 && acks >= 3) || (fails == 1 && c.Now() >= nextFail)
		if fails < 2 && armed && c.NodeAlive(jobNode) {
			fails++
			c.Fail(jobNode)
			rebootNode, rebootAt = jobNode, c.Now().Add(2*simtime.Millisecond)
			nextFail = c.Now().Add(15 * simtime.Millisecond)
		}
	})
	err := sup.Run(10 * simtime.Second)

	lat := sup.Metrics.Hist("restore.latency").Snapshot()
	s := E19ClusterSummary{
		Completed:    err == nil && sup.Completed,
		Fingerprint:  sup.Fingerprint,
		Restores:     lat.N,
		LazyRestores: c.Counters.Get("restore.lazy"),
		FaultsServed: c.Counters.Get("restore.fault_served"),
		Prefetched:   c.Counters.Get("restore.prefetched"),
		RestoreP50Ms: lat.P50,
	}
	if lazy {
		s.FirstInstrP50Ms = sup.Metrics.Hist("restore.first_instr_latency").Snapshot().P50
	}
	return s
}
