package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E14Incremental measures what delta-chain shipping buys the cluster
// path: the same autonomic job — identical seeds, failure schedule, and
// detector — run at several dirty rates, once shipping full images every
// interval and once shipping delta chains at two rebase cadences. The
// two costs that trade against each other are bytes over the wire per
// checkpoint (deltas win, and win hardest at low dirty rates) and the
// storage read time a recovery pays to load the chain (fulls win: their
// chain is one image long).
func E14Incremental(quick bool) *trace.Table {
	dirty := []float64{0.02, 0.1, 0.4}
	iters := 500
	if quick {
		dirty = []float64{0.02, 0.4}
		iters = 250
	}
	tb := trace.NewTable(
		"E14 — incremental shipping vs full images: bytes shipped and restore latency across dirty rates",
		"config", "dirty", "completed", "ckpts", "restarts", "shipped(KiB)",
		"KiB/ckpt", "deltas", "fulls", "retired", "chain-len", "restore-read(ms)")
	for _, d := range dirty {
		for _, cfg := range []struct {
			name        string
			incremental bool
			rebase      int
		}{
			{"full", false, 0},
			{"delta/rebase=4", true, 4},
			{"delta/rebase=16", true, 16},
		} {
			r := e14Run(d, cfg.incremental, cfg.rebase, iters)
			tb.Row(cfg.name, d, r.completed, r.ckpts, r.restarts,
				fmt.Sprintf("%.1f", r.bytesShipped/1024),
				fmt.Sprintf("%.1f", r.bytesPerCkpt()/1024),
				r.deltaAcks, r.fullAcks, r.retired, r.chainLen,
				fmt.Sprintf("%.3f", r.restoreMs))
		}
	}
	tb.Note("identical seeds and failure schedule per dirty rate: the only delta is the shipping policy")
	tb.Note("interval scales with the dirty rate (floor 1ms) so each checkpoint covers comparable progress:")
	tb.Note("  Sparse's iteration cost scales with its writes, so a fixed wall-clock interval sees the")
	tb.Note("  same page flux at every WriteFrac and would hide the rate")
	tb.Note("shipped = ckpt.bytes_shipped (encoded image bytes acknowledged by the server)")
	tb.Note("chain-len / restore-read = length and storage read time of the final recovery chain")
	tb.Note("longer rebase periods ship fewer bytes but leave longer chains for recovery to replay")
	return tb
}

// e14Result is one E14 cell: the counters and recovery-chain costs of a
// single supervised run.
type e14Result struct {
	completed    bool
	ckpts        int
	restarts     int
	bytesShipped float64
	deltaAcks    int64
	fullAcks     int64
	retired      int64
	chainLen     int
	restoreMs    float64
}

func (r e14Result) bytesPerCkpt() float64 {
	if r.ckpts == 0 {
		return 0
	}
	return r.bytesShipped / float64(r.ckpts)
}

// e14Run drives one autonomic job — 4 nodes, timeout detector, real
// transient failures — and measures the shipping and restore costs. The
// checkpoint interval scales with the dirty rate so every configuration
// checkpoints after a comparable amount of workload progress: Sparse's
// iteration cost scales with its per-iteration write count, so
// per-progress intervals are what make WriteFrac behave as a dirty rate
// (a fixed wall-clock interval sees the same page flux at every
// WriteFrac).
func e14Run(dirtyFrac float64, incremental bool, rebaseEvery, iters int) e14Result {
	prog := workload.Sparse{MiB: 1, WriteFrac: dirtyFrac, Seed: 14}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 14, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	inj := cluster.NewInjector(cluster.Exponential{Mean: 100 * simtime.Millisecond},
		3*simtime.Millisecond, 33, 3)
	c.SetInjector(inj)

	interval := simtime.Duration(dirtyFrac * float64(25*simtime.Millisecond))
	if interval < simtime.Millisecond {
		interval = simtime.Millisecond
	}
	sup := cluster.MustNewSupervisor(cluster.SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  uint64(iters),
		Policy:      policy.Fixed(interval),
		Detector:    mon,
		ControlNode: 3,
		Incremental: incremental,
		RebaseEvery: rebaseEvery,
	})
	err := sup.Run(5 * simtime.Second)

	r := e14Result{
		completed:    err == nil && sup.Completed,
		ckpts:        sup.Checkpoints,
		restarts:     sup.Restarts,
		bytesShipped: float64(c.Counters.Get("ckpt.bytes_shipped")),
		deltaAcks:    c.Counters.Get("ckpt.delta_acks"),
		fullAcks:     c.Counters.Get("ckpt.full_acks"),
		retired:      c.Counters.Get("ckpt.retired"),
	}
	// The restore cost a failure at end-of-run would pay: read the whole
	// recovery chain back from the server, accumulating the modeled
	// storage time. (The chain is replayed oldest-first at restore; the
	// read dominates the modeled cost.)
	if leaf := sup.LastLeaf(); leaf != "" {
		var wait simtime.Duration
		env := &storage.Env{Bill: costmodel.Discard{},
			Wait: func(d simtime.Duration, _ string) { wait += d }}
		if chain, cerr := checkpoint.LoadChain(c.Node(3).Remote(), env, leaf); cerr == nil {
			r.chainLen = len(chain)
			r.restoreMs = wait.Millis()
		}
	}
	return r
}

// E14Summary is the machine-readable digest of one E14 dirty rate — the
// payload of BENCH_incremental.json (the bench-ckpt make target).
type E14Summary struct {
	DirtyRate         float64 `json:"dirty_rate"`
	RebaseEvery       int     `json:"rebase_every"`
	FullBytesPerCkpt  float64 `json:"full_bytes_per_ckpt"`
	DeltaBytesPerCkpt float64 `json:"delta_bytes_per_ckpt"`
	Reduction         float64 `json:"reduction"`
	FullRestoreMs     float64 `json:"full_restore_ms"`
	DeltaRestoreMs    float64 `json:"delta_restore_ms"`
	DeltaChainLen     int     `json:"delta_chain_len"`
}

// E14Bench runs the full-vs-delta comparison at each dirty rate and
// returns the per-rate summaries.
func E14Bench(quick bool) []E14Summary {
	dirty := []float64{0.02, 0.1, 0.4}
	iters := 500
	if quick {
		dirty = []float64{0.02, 0.4}
		iters = 250
	}
	const rebase = 8
	var out []E14Summary
	for _, d := range dirty {
		full := e14Run(d, false, 0, iters)
		delta := e14Run(d, true, rebase, iters)
		s := E14Summary{
			DirtyRate:         d,
			RebaseEvery:       rebase,
			FullBytesPerCkpt:  full.bytesPerCkpt(),
			DeltaBytesPerCkpt: delta.bytesPerCkpt(),
			FullRestoreMs:     full.restoreMs,
			DeltaRestoreMs:    delta.restoreMs,
			DeltaChainLen:     delta.chainLen,
		}
		if s.FullBytesPerCkpt > 0 {
			s.Reduction = 1 - s.DeltaBytesPerCkpt/s.FullBytesPerCkpt
		}
		out = append(out, s)
	}
	return out
}
