package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// e12Detectors is the detector sweep: a ground-truth oracle baseline
// (the pre-autonomic supervisor), fixed timeouts at two settings, and
// the phi-accrual detector at three thresholds.
var e12Detectors = []string{"oracle", "timeout-1ms", "timeout-3ms", "phi-4", "phi-8", "phi-12"}

// E12Detection measures message-based failure detection end to end: the
// same job, failure schedule, and network run under every detector, once
// per loss rate and once under a 10ms control-plane partition of the
// job's node (the node stays alive — every suspicion of it is false).
// The oracle rows are the unreachable baseline: they read simulator
// ground truth, so loss and partitions cannot touch them. Every
// autonomic row must get safety from epoch fencing instead — the
// double-commit column is the proof, and it must stay 0.
func E12Detection(losses []float64) *trace.Table {
	tb := trace.NewTable(
		"E12 — failure detection vs network faults: latency, false positives, and fenced split brains",
		"detector", "scenario", "completed", "makespan(ms)", "ckpts", "restarts",
		"wasted", "det-lat(ms)", "false-pos", "fenced", "dbl-commit")
	for _, loss := range losses {
		for _, det := range e12Detectors {
			tb.Row(e12Run(det, loss, false)...)
		}
	}
	for _, det := range e12Detectors {
		tb.Row(e12Run(det, 0, true)...)
	}
	tb.Note("identical seeds per row: every divergence is the detector's doing")
	tb.Note("wasted = failovers of nodes that were in fact alive; det-lat = mean true-failure detection latency")
	tb.Note("fenced = stale-epoch publishes rejected by the server; dbl-commit = stale publishes that landed (must be 0)")
	tb.Note("the oracle baseline is unrealizable: it reads liveness no distributed system can observe")
	return tb
}

// e12Run drives one supervised job under one detector and one network
// scenario and returns the table row.
func e12Run(kind string, loss float64, partition bool) []any {
	row, _, _ := e12RunFull(kind, loss, partition)
	return row
}

// e12RunFull additionally returns the sorted counter snapshot and the
// rendered orchestration event log, so the determinism regression test
// can compare two same-seed runs byte for byte.
func e12RunFull(kind string, loss float64, partition bool) (row []any, counters, events string) {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 12}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 12, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	np := c.EnableNetFaults(cluster.NetFaultConfig{Loss: loss, DelayJitter: 200 * simtime.Microsecond})
	if partition {
		cut := false
		c.OnStep(func() {
			if !cut && c.Now() >= simtime.Time(7*simtime.Millisecond) {
				cut = true
				np.Partition("island", 0)
			}
			if cut && c.Now() >= simtime.Time(17*simtime.Millisecond) {
				np.Heal("island")
			}
		})
	}

	period := 200 * simtime.Microsecond
	var d detector.Detector
	switch kind {
	case "timeout-1ms":
		d = detector.NewTimeout(simtime.Millisecond)
	case "timeout-3ms":
		d = detector.NewTimeout(3 * simtime.Millisecond)
	case "phi-4":
		d = detector.NewPhiAccrual(4, 64, period/2)
	case "phi-8":
		d = detector.NewPhiAccrual(8, 64, period/2)
	case "phi-12":
		d = detector.NewPhiAccrual(12, 64, period/2)
	}

	cfg := cluster.SupervisorConfig{
		C:          c,
		MkMech:     func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:       prog,
		Iterations: 300,
		Policy:     policy.Fixed(3 * simtime.Millisecond),
	}
	var mon *detector.Monitor
	if d != nil {
		mon = detector.NewMonitor(c, d, detector.Config{Period: period, Observer: 3}, c.Counters)
		cfg.Detector = mon
		cfg.ControlNode = 3
	}
	sup := cluster.MustNewSupervisor(cfg)
	// Real (transient) failures on the three worker nodes; the observer
	// stays up — a failing control plane is a different experiment.
	inj := cluster.NewInjector(cluster.Exponential{Mean: 40 * simtime.Millisecond},
		3*simtime.Millisecond, 33, 3)
	c.SetInjector(inj)

	err := sup.Run(5 * simtime.Second)
	completed := err == nil && sup.Completed

	scenario := fmt.Sprintf("loss %.0f%%", loss*100)
	if partition {
		scenario = "partition 10ms"
	}
	lat := 0.0
	if mon != nil && mon.Latency.N() > 0 {
		lat = mon.Latency.Mean()
	}
	ctr := c.Counters
	row = []any{
		kind, scenario, completed, sup.Makespan.Millis(),
		sup.Checkpoints, sup.Restarts,
		ctr.Get("det.wasted_restarts"), lat,
		ctr.Get("det.false_positives"),
		ctr.Get("fence.rejected"), ctr.Get("fence.double_commits"),
	}
	return row, ctr.String(), cluster.FormatEvents(sup.Events)
}
