package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Experiments are exercised with small parameters; shape assertions mirror
// EXPERIMENTS.md (who wins, by roughly what factor).

func TestE1UserCostsMoreThanSystem(t *testing.T) {
	tb := E1UserVsSystem([]int{4})
	if tb.NumRows() < 4 {
		t.Fatalf("rows = %d:\n%s", tb.NumRows(), tb)
	}
	var userSys, kernSys int64
	for i := 0; i < tb.NumRows(); i++ {
		n, err := strconv.ParseInt(tb.Cell(i, 4), 10, 64)
		if err != nil {
			t.Fatalf("syscalls cell %q", tb.Cell(i, 4))
		}
		switch tb.Cell(i, 2) {
		case "user":
			userSys += n
		case "system":
			kernSys += n
		}
	}
	// User-level extraction needs strictly more syscalls than the
	// system-level paths (which only pay the initiation round trips).
	if userSys <= kernSys {
		t.Fatalf("user syscalls %d ≤ system %d:\n%s", userSys, kernSys, tb)
	}
}

func TestE2DeltaDependsOnApplication(t *testing.T) {
	tb := E2Incremental(4)
	if tb.NumRows() < 5 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	ratios := map[string]float64{}
	for i := 0; i < tb.NumRows(); i++ {
		r, err := strconv.ParseFloat(tb.Cell(i, 3), 64)
		if err != nil {
			t.Fatalf("ratio cell %q", tb.Cell(i, 3))
		}
		ratios[tb.Cell(i, 0)] = r
	}
	dense := ratios["dense[mib=4]"]
	chase := ratios["chase[mib=4,we=64,seed=2]"]
	if dense < 0.9 {
		t.Fatalf("dense delta/full = %.3f, want ≈1:\n%s", dense, tb)
	}
	if chase > 0.2*dense {
		t.Fatalf("pointer-chase delta/full = %.3f not ≪ dense %.3f:\n%s", chase, dense, tb)
	}
}

func TestE3FinerBlocksSmallerDeltas(t *testing.T) {
	tb := E3BlockSize(2, []int{256, 1024, 4096})
	if tb.NumRows() != 4 { // 3 sweep rows + the hybrid row
		t.Fatalf("rows = %d:\n%s", tb.NumRows(), tb)
	}
	first, _ := strconv.ParseFloat(tb.Cell(0, 1), 64) // 256 B delta MB
	last, _ := strconv.ParseFloat(tb.Cell(2, 1), 64)  // 4096 B delta MB
	if first >= last {
		t.Fatalf("finer blocks did not shrink delta: %v vs %v\n%s", first, last, tb)
	}
}

func TestE4FIFOInsensitiveSignalDeferred(t *testing.T) {
	tb := E4Agents([]int{0, 8})
	if tb.NumRows() < 8 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	get := func(load, agent string) (initMS, totalMS float64) {
		for i := 0; i < tb.NumRows(); i++ {
			if tb.Cell(i, 0) == load && tb.Cell(i, 1) == agent {
				a, _ := strconv.ParseFloat(tb.Cell(i, 2), 64)
				b, _ := strconv.ParseFloat(tb.Cell(i, 3), 64)
				return a, b
			}
		}
		t.Fatalf("row %s/%s missing:\n%s", load, agent, tb)
		return 0, 0
	}
	_, fifoIdle := get("0", "kthread-FIFO(CRAK)")
	_, fifoLoad := get("8", "kthread-FIFO(CRAK)")
	_, otherLoad := get("8", "kthread-OTHER")
	sigIdleInit, _ := get("0", "ksignal(EPCKPT)")
	sigLoadInit, _ := get("8", "ksignal(EPCKPT)")

	if otherLoad <= fifoLoad {
		t.Fatalf("SCHED_OTHER (%v ms) not slower than FIFO (%v ms) under load:\n%s", otherLoad, fifoLoad, tb)
	}
	if fifoLoad > 3*fifoIdle+1 {
		t.Fatalf("FIFO latency too load-sensitive: %v vs %v:\n%s", fifoLoad, fifoIdle, tb)
	}
	if sigLoadInit <= sigIdleInit {
		t.Fatalf("kernel-signal delivery delay did not grow with load: %v vs %v:\n%s", sigLoadInit, sigIdleInit, tb)
	}
}

func TestE5RemoteBeatsLocalBeatsNone(t *testing.T) {
	tb := E5Storage([]float64{24})
	if tb.NumRows() != 3 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	get := func(policy string) float64 {
		for i := 0; i < tb.NumRows(); i++ {
			if tb.Cell(i, 1) == policy {
				v, err := strconv.ParseFloat(tb.Cell(i, 2), 64)
				if err != nil {
					t.Fatalf("makespan %q for %s (did not complete)", tb.Cell(i, 2), policy)
				}
				return v
			}
		}
		t.Fatalf("policy %s missing", policy)
		return 0
	}
	none, local, remote := get("none"), get("local"), get("remote")
	if !(remote < local && local < none) {
		t.Fatalf("makespans: remote %.1f local %.1f none %.1f, want remote<local<none:\n%s",
			remote, local, none, tb)
	}
}

func TestE6YoungNearOptimal(t *testing.T) {
	tb := E6Interval(8)
	var atOpt, tooShort, tooLong, adaptive float64
	for i := 0; i < tb.NumRows(); i++ {
		v, _ := strconv.ParseFloat(tb.Cell(i, 2), 64)
		switch {
		case tb.Cell(i, 1) == "fixed(=Young)":
			atOpt = v
		case i == 0:
			tooShort = v
		case tb.Cell(i, 0) == "adaptive":
			adaptive = v
		case i == tb.NumRows()-2:
			tooLong = v
		}
	}
	if atOpt <= 0 || atOpt >= tooShort || atOpt >= tooLong {
		t.Fatalf("Young interval not near-optimal: opt %.2f short %.2f long %.2f:\n%s",
			atOpt, tooShort, tooLong, tb)
	}
	if adaptive > atOpt*1.15 {
		t.Fatalf("adaptive %.2f not within 15%% of oracle %.2f:\n%s", adaptive, atOpt, tb)
	}
}

func TestE7LineBeatsPageForSparse(t *testing.T) {
	tb := E7Hardware(2)
	if tb.NumRows() != 3 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	// Row 0: pointer chase — huge ratio. Row 2: dense — ratio ≈1.
	chaseRatio, err := strconv.ParseFloat(tb.Cell(0, 3), 64)
	if err != nil {
		t.Fatalf("ratio cell %q", tb.Cell(0, 3))
	}
	denseRatio, _ := strconv.ParseFloat(tb.Cell(2, 3), 64)
	if chaseRatio < 8 {
		t.Fatalf("chase page/line ratio %.1f, want ≫1:\n%s", chaseRatio, tb)
	}
	if denseRatio > 1.1 {
		t.Fatalf("dense page/line ratio %.2f, want ≈1:\n%s", denseRatio, tb)
	}
}

func TestE8DrainScales(t *testing.T) {
	tb := E8MPI([]int{2, 8}, 4)
	if tb.NumRows() != 2 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	for i := 0; i < tb.NumRows(); i++ {
		if tb.Cell(i, 4) != "true" {
			t.Fatalf("checkpoint failed for row %d:\n%s", i, tb)
		}
	}
	d2, _ := strconv.ParseFloat(tb.Cell(0, 1), 64)
	d8, _ := strconv.ParseFloat(tb.Cell(1, 1), 64)
	if d8 < d2 {
		t.Fatalf("drain(8)=%v < drain(2)=%v:\n%s", d8, d2, tb)
	}
}

func TestE9MatrixShape(t *testing.T) {
	tb := E9Matrix()
	if tb.NumRows() != 5 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	find := func(resource string) []string {
		for i := 0; i < tb.NumRows(); i++ {
			if tb.Cell(i, 0) == resource {
				return []string{tb.Cell(i, 1), tb.Cell(i, 2), tb.Cell(i, 3), tb.Cell(i, 4)}
			}
		}
		t.Fatalf("resource %s missing", resource)
		return nil
	}
	// No special resources: everyone succeeds.
	for _, v := range find("none") {
		if v != "OK" {
			t.Fatalf("plain workload failed: %v\n%s", find("none"), tb)
		}
	}
	// Socket: only ZAP survives.
	sock := find("socket")
	if sock[3] != "OK" {
		t.Fatalf("ZAP lost the socket: %v\n%s", sock, tb)
	}
	for i := 0; i < 3; i++ {
		if sock[i] == "OK" {
			t.Fatalf("non-virtualizing mechanism %d kept the socket: %v\n%s", i, sock, tb)
		}
	}
	// PID: UCLiK and ZAP preserve it; condor and CRAK do not.
	pid := find("pid")
	if pid[2] != "OK" || pid[3] != "OK" {
		t.Fatalf("PID-preserving mechanisms failed: %v\n%s", pid, tb)
	}
	if pid[0] == "OK" || pid[1] == "OK" {
		t.Fatalf("non-PID-preserving mechanisms passed: %v\n%s", pid, tb)
	}
	// All three: only ZAP.
	all := find("all")
	if all[3] != "OK" {
		t.Fatalf("ZAP failed the full matrix: %v\n%s", all, tb)
	}
}

func TestE11StorageFaultsContrast(t *testing.T) {
	tb := E11StorageFaults(0.10)
	if tb.NumRows() != 2 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	// Row 0 is atomic commit, row 1 the legacy in-place path. Both runs
	// must complete, and only the unsafe one may show integrity damage.
	for row := 0; row < 2; row++ {
		if tb.Cell(row, 1) != "true" {
			t.Fatalf("row %d did not complete:\n%s", row, tb)
		}
	}
	atomicTorn := tb.Cell(0, 7) + tb.Cell(0, 8) + tb.Cell(0, 9)
	if atomicTorn != "000" {
		t.Fatalf("atomic commit produced torn/lost images:\n%s", tb)
	}
	if tb.Cell(1, 7) == "0" && tb.Cell(1, 8) == "0" && tb.Cell(1, 9) == "0" {
		t.Fatalf("unsafe commit produced no torn/lost images — no contrast:\n%s", tb)
	}
}

func TestE10Runs(t *testing.T) {
	tb := E10Extras()
	out := tb.String()
	for _, want := range []string{"swsusp", "fork-ckpt", "gang"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E10 missing %s:\n%s", want, out)
		}
	}
	if tb.NumRows() < 6 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
}

func TestE12PhiUnderLossIsSafeAndFalsePositiveRecoveryCompletes(t *testing.T) {
	tb := E12Detection([]float64{0.05})
	if tb.NumRows() != 12 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	find := func(det, scenario string) int {
		for r := 0; r < tb.NumRows(); r++ {
			if tb.Cell(r, 0) == det && tb.Cell(r, 1) == scenario {
				return r
			}
		}
		t.Fatalf("row %s/%s missing:\n%s", det, scenario, tb)
		return -1
	}
	// Split-brain safety is unconditional: no row may leak a double
	// commit, fenced or not-yet-fenced.
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Cell(r, 10) != "0" {
			t.Fatalf("row %d leaked a double commit:\n%s", r, tb)
		}
	}
	// Phi-accrual under 5% heartbeat loss: completes, zero split brains.
	phi := find("phi-8", "loss 5%")
	if tb.Cell(phi, 2) != "true" {
		t.Fatalf("phi-8 under loss did not complete:\n%s", tb)
	}
	// The partition scenario is one long false positive for the job's
	// node: the failover must be wasted-but-safe AND the job must still
	// finish — the demonstrated false-positive recovery.
	part := find("phi-8", "partition 10ms")
	if tb.Cell(part, 2) != "true" {
		t.Fatalf("partition recovery did not complete:\n%s", tb)
	}
	if tb.Cell(part, 8) == "0" {
		t.Fatalf("partition produced no false positive:\n%s", tb)
	}
	if tb.Cell(part, 9) == "0" {
		t.Fatalf("stale incarnation never hit the fence:\n%s", tb)
	}
	// The oracle baseline is blind to the partition: same makespan as its
	// fault-free row would have; at minimum it must not restart for it.
	oracle := find("oracle", "partition 10ms")
	if tb.Cell(oracle, 8) != "0" || tb.Cell(oracle, 6) != tb.Cell(find("oracle", "loss 5%"), 6) {
		t.Fatalf("oracle baseline affected by control-plane faults:\n%s", tb)
	}
}

// TestE12DeterministicReplay runs the E12 autonomic scenario twice with
// the same seed and demands byte-identical counter snapshots and
// orchestration event logs: the simulation's determinism is what makes
// every other experiment (and the chaos harness's seed replay)
// trustworthy.
func TestE12DeterministicReplay(t *testing.T) {
	type snap struct{ counters, events string }
	run := func() snap {
		_, ctr, evs := e12RunFull("phi-8", 0.05, false)
		return snap{ctr, evs}
	}
	a, b := run(), run()
	if a.counters != b.counters {
		t.Errorf("counter snapshots differ:\n--- first ---\n%s\n--- second ---\n%s", a.counters, b.counters)
	}
	if a.events != b.events {
		t.Errorf("event logs differ:\n--- first ---\n%s\n--- second ---\n%s", a.events, b.events)
	}
	if a.events == "" {
		t.Error("event log empty: supervisor emitted no events")
	}
}

// TestE14DeltaWinsAtLowDirtyRate: the acceptance shape of E14 — at a low
// dirty rate delta chains ship substantially fewer bytes per checkpoint
// than full images, and the price is a longer recovery chain with a
// larger storage read time.
func TestE14DeltaWinsAtLowDirtyRate(t *testing.T) {
	full := e14Run(0.02, false, 0, 250)
	delta := e14Run(0.02, true, 8, 250)
	if !full.completed || !delta.completed {
		t.Fatalf("completed: full=%v delta=%v", full.completed, delta.completed)
	}
	if delta.bytesPerCkpt() > 0.7*full.bytesPerCkpt() {
		t.Fatalf("delta %.0f B/ckpt not ≪ full %.0f B/ckpt",
			delta.bytesPerCkpt(), full.bytesPerCkpt())
	}
	if delta.deltaAcks == 0 || delta.retired == 0 {
		t.Fatalf("delta run shipped no deltas (%d) or retired nothing (%d)",
			delta.deltaAcks, delta.retired)
	}
	if full.chainLen != 1 {
		t.Fatalf("full-image recovery chain length %d, want 1", full.chainLen)
	}
	if delta.chainLen <= 1 {
		t.Fatalf("delta recovery chain length %d, want >1", delta.chainLen)
	}
	if delta.restoreMs <= full.restoreMs {
		t.Fatalf("chain restore read %.3f ms not above full %.3f ms — tradeoff missing",
			delta.restoreMs, full.restoreMs)
	}
}

// TestE13ChaosSweepContrast: the shipped build survives a seed block
// with zero violations; the fencing-disabled build is caught by the
// double-commit checker within the same block.
func TestE13ChaosSweepContrast(t *testing.T) {
	tb := E13ChaosSweep(1, 25)
	if tb.NumRows() != 2 {
		t.Fatalf("rows=%d:\n%s", tb.NumRows(), tb)
	}
	for c := 3; c <= 7; c++ {
		if tb.Cell(0, c) != "0" {
			t.Fatalf("shipped build violated an invariant:\n%s", tb)
		}
	}
	if tb.Cell(1, 3) == "0" {
		t.Fatalf("no-fencing build produced no double commit in 25 seeds:\n%s", tb)
	}
	if tb.Cell(1, 8) == "" {
		t.Fatalf("no first-bad-seed recorded for the broken build:\n%s", tb)
	}
}

// TestE15ParallelCaptureScales: the acceptance shape of E15 — 4 shard
// workers at least double the 1-worker capture throughput, and the
// pipelined cluster run completes with a real publish-latency
// distribution and a replayable recovery chain behind it.
func TestE15ParallelCaptureScales(t *testing.T) {
	s := E15Bench(true)
	if len(s.Capture) != 4 {
		t.Fatalf("capture points = %d, want 4", len(s.Capture))
	}
	byWorkers := map[int]E15CapturePoint{}
	for _, pt := range s.Capture {
		byWorkers[pt.Workers] = pt
	}
	w1, w4 := byWorkers[1], byWorkers[4]
	if w1.ThroughputMBs <= 0 {
		t.Fatalf("1-worker throughput %.1f MB/s", w1.ThroughputMBs)
	}
	if w4.ThroughputMBs < 2*w1.ThroughputMBs {
		t.Fatalf("4-worker throughput %.1f MB/s < 2x 1-worker %.1f MB/s",
			w4.ThroughputMBs, w1.ThroughputMBs)
	}
	if !s.Completed {
		t.Fatal("pipelined cluster run did not complete")
	}
	if s.Publish.N == 0 || s.Publish.P50Ms <= 0 || s.Publish.P99Ms < s.Publish.P50Ms {
		t.Fatalf("degenerate publish-latency summary: %+v", s.Publish)
	}
	if s.Restore.ChainLen < 1 || s.Restore.ReadMs <= 0 {
		t.Fatalf("degenerate restore summary: %+v", s.Restore)
	}
}
