package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E15Parallel measures the tentpole of the parallel-capture work: the
// same stopped process captured with 1, 2, 4, and 8 shard workers. The
// image bytes are identical by construction (the parallel encoder is
// byte-stable; see checkpoint.EncodeParallel), so the only thing the
// sweep can change is the simulated read+encode time — which is the
// point: worker count buys capture throughput, not a different artifact.
func E15Parallel(quick bool) *trace.Table {
	mib := 16
	if quick {
		mib = 8
	}
	tb := trace.NewTable(
		fmt.Sprintf("E15 — sharded capture throughput vs worker count (dense %d MiB)", mib),
		"workers", "latency(ms)", "throughput(MB/s)", "speedup")
	var base simtime.Duration
	for _, w := range []int{1, 2, 4, 8} {
		dur, payload := e15Capture(mib, w)
		if w == 1 {
			base = dur
		}
		tb.Row(w, dur.Millis(),
			fmt.Sprintf("%.1f", e15Throughput(payload, dur)),
			fmt.Sprintf("%.2fx", float64(base)/float64(dur)))
	}
	p := e15Pipelined(quick)
	tb.Note("identical image bytes at every width; only the simulated capture time moves")
	tb.Note("workers are a fixed request parameter, never the host's core count (machine-independent runs)")
	if p.Completed {
		tb.Note(fmt.Sprintf("pipelined cluster run: publish latency p50 %.2f ms, p99 %.2f ms over %d publishes (%d batched, %d stalls)",
			p.Publish.P50Ms, p.Publish.P99Ms, p.Publish.N, p.Publish.Batched, p.Publish.Stalls))
		tb.Note(fmt.Sprintf("end-of-run restore: chain of %d read back in %.2f ms", p.Restore.ChainLen, p.Restore.ReadMs))
	}
	return tb
}

// e15Capture stops a dense process and captures it once with the given
// worker count, returning the simulated capture duration and payload.
func e15Capture(mib, workers int) (simtime.Duration, int) {
	prog := workload.Dense{MiB: mib}
	k := newMachine("e15", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		return 0, 0
	}
	workload.SetIterations(p, 1<<30)
	runTo(k, p, 1) // materialize the working set
	k.Stop(p)
	t0 := k.Now()
	_, st, err := checkpoint.Capture(checkpoint.Request{
		Acc:       &checkpoint.KernelAccessor{K: k, P: p},
		Mechanism: "e15", Hostname: "e15", Seq: 1, Now: t0, Parallelism: workers,
	})
	if err != nil {
		return 0, 0
	}
	return k.Now().Sub(t0), st.PayloadBytes
}

// e15Throughput converts one capture into MB/s of simulated time.
func e15Throughput(payload int, dur simtime.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(payload) / 1e6 / dur.Seconds()
}

// E15CapturePoint is one worker-count sample of the capture sweep.
type E15CapturePoint struct {
	Workers       int     `json:"workers"`
	LatencyMs     float64 `json:"latency_ms"`
	ThroughputMBs float64 `json:"throughput_mb_s"`
	Speedup       float64 `json:"speedup"`
}

// E15PublishSummary summarizes the pipelined run's publish-latency
// histogram (capture-to-durable, per image).
type E15PublishSummary struct {
	N       int     `json:"n"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MeanMs  float64 `json:"mean_ms"`
	Shipped int64   `json:"shipped"`
	Batched int64   `json:"batched"`
	Stalls  int64   `json:"stalls"`
}

// E15RestoreSummary is the restore cost a failure at end-of-run would
// pay: the modeled storage time to read the recovery chain back.
type E15RestoreSummary struct {
	ChainLen int     `json:"chain_len"`
	ReadMs   float64 `json:"read_ms"`
}

// E15Summary is the payload of BENCH_5.json: the capture-throughput
// sweep plus the pipelined cluster run's publish and restore latencies.
type E15Summary struct {
	Capture   []E15CapturePoint `json:"capture_throughput"`
	Completed bool              `json:"completed"`
	Publish   E15PublishSummary `json:"publish_latency"`
	Restore   E15RestoreSummary `json:"restore_latency"`
}

// E15Bench runs the sweep and the pipelined cluster job and returns the
// machine-readable summary (the bench-parallel make target).
func E15Bench(quick bool) E15Summary {
	mib := 16
	if quick {
		mib = 8
	}
	var out E15Summary
	var base simtime.Duration
	for _, w := range []int{1, 2, 4, 8} {
		dur, payload := e15Capture(mib, w)
		if w == 1 {
			base = dur
		}
		pt := E15CapturePoint{
			Workers:       w,
			LatencyMs:     dur.Millis(),
			ThroughputMBs: e15Throughput(payload, dur),
		}
		if dur > 0 {
			pt.Speedup = float64(base) / float64(dur)
		}
		out.Capture = append(out.Capture, pt)
	}
	p := e15Pipelined(quick)
	out.Completed = p.Completed
	out.Publish = p.Publish
	out.Restore = p.Restore
	return out
}

// e15ClusterResult carries the pipelined run's summaries.
type e15ClusterResult struct {
	Completed bool
	Publish   E15PublishSummary
	Restore   E15RestoreSummary
}

// e15Pipelined drives one autonomic job — 4 nodes, timeout detector,
// real transient failures, delta chains — through the pipelined shipping
// path and reads back its latency distributions.
func e15Pipelined(quick bool) e15ClusterResult {
	// Long enough that many delta publishes complete behind the ~25ms
	// full-image transfers; rebases kept sparse for the same reason.
	iters := 2000
	if quick {
		iters = 500
	}
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.1, Seed: 15}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 15, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	inj := cluster.NewInjector(cluster.Exponential{Mean: 100 * simtime.Millisecond},
		3*simtime.Millisecond, 33, 3)
	c.SetInjector(inj)

	sup := cluster.MustNewSupervisor(cluster.SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  uint64(iters),
		Policy:      policy.Fixed(simtime.Millisecond),
		Detector:    mon,
		ControlNode: 3,
		Incremental: true,
		RebaseEvery: 16,
		Pipeline:    &cluster.PipelineConfig{MaxInFlight: 4},
	})
	err := sup.Run(10 * simtime.Second)

	r := e15ClusterResult{Completed: err == nil && sup.Completed}
	snap := sup.Metrics.Hist("pipe.publish_latency").Snapshot()
	r.Publish = E15PublishSummary{
		N:       snap.N,
		P50Ms:   snap.P50 / 1e6,
		P99Ms:   snap.P99 / 1e6,
		MeanMs:  snap.Mean / 1e6,
		Shipped: c.Counters.Get("pipe.shipped"),
		Batched: c.Counters.Get("pipe.batched"),
		Stalls:  c.Counters.Get("pipe.stalls"),
	}
	if leaf := sup.LastLeaf(); leaf != "" {
		var wait simtime.Duration
		env := &storage.Env{Bill: costmodel.Discard{},
			Wait: func(d simtime.Duration, _ string) { wait += d }}
		if chain, cerr := checkpoint.LoadChain(c.Node(3).Remote(), env, leaf); cerr == nil {
			r.Restore = E15RestoreSummary{ChainLen: len(chain), ReadMs: wait.Millis()}
		}
	}
	return r
}
