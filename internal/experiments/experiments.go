// Package experiments implements E1–E10 from DESIGN.md: each function
// reproduces one figure, table, or measured claim of the paper and
// returns the result as a rendered table. cmd/crbench prints them; the
// repository-root benchmarks wrap them for `go test -bench`.
package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/userlevel"
	"repro/internal/workload"
)

// newMachine builds a kernel with the given programs.
func newMachine(name string, progs ...kernel.Program) *kernel.Kernel {
	reg := kernel.NewRegistry()
	for _, p := range progs {
		reg.MustRegister(p)
	}
	return kernel.New(kernel.DefaultConfig(name), costmodel.Default2005(), reg)
}

func localDisk() *storage.Local {
	return storage.NewLocal("disk", costmodel.Default2005(), nil)
}

// runTo advances k until p's PC reaches iter (or it exits).
func runTo(k *kernel.Kernel, p *proc.Process, iter uint64) {
	for p.Regs().PC < iter && p.State != proc.StateZombie {
		k.RunFor(simtime.Millisecond)
	}
}

// mb renders bytes as MB with two decimals.
func mb(n int) string { return fmt.Sprintf("%.2f", float64(n)/1e6) }

// E1UserVsSystem measures §3's efficiency argument: checkpoint latency and
// syscall footprint of user-level vs system-level extraction, across
// process sizes. The user-level scheme pays per-item system calls, signal
// delivery, and mprotect traffic; the kernel-level one reads process
// structures directly.
func E1UserVsSystem(sizesMiB []int) *trace.Table {
	tb := trace.NewTable(
		"E1 — user-level vs system-level checkpoint cost (dense workload)",
		"size(MiB)", "mechanism", "context", "latency(ms)", "syscalls", "payload(MB)")
	for _, mib := range sizesMiB {
		type cfg struct {
			label   string
			context string
			mk      func() mechanism.Mechanism
		}
		for _, c := range []cfg{
			{"condor(signal)", "user", func() mechanism.Mechanism { return userlevel.NewCondorStyle() }},
			{"libckpt(library)", "user", func() mechanism.Mechanism { return userlevel.NewLibCkpt(0, nil, false) }},
			{"CRAK(kthread)", "system", func() mechanism.Mechanism { return syslevel.NewCRAK() }},
			{"EPCKPT(ksignal)", "system", func() mechanism.Mechanism { return syslevel.NewEPCKPT() }},
		} {
			m := c.mk()
			prog := workload.Dense{MiB: mib}
			prepared := m.Prepare(prog)
			k := newMachine("e1", prepared)
			if err := m.Install(k); err != nil {
				continue
			}
			p, err := k.Spawn(prepared.Name())
			if err != nil {
				continue
			}
			_ = m.Setup(k, p)
			workload.SetIterations(p, 1<<30)
			runTo(k, p, 1)                // materialize the working set
			k.RunFor(simtime.Millisecond) // let library checkpoint points register
			sys0 := k.SyscallCount
			tk, err := mechanism.Checkpoint(m, k, p, localDisk(), nil)
			if err != nil {
				continue
			}
			tb.Row(mib, c.label, c.context,
				tk.Total().Millis(), int64(k.SyscallCount-sys0), mb(tk.Stats.PayloadBytes))
		}
	}
	tb.Note("paper §3: user-level pays syscall/context-switch and signal costs; kernel access is direct")
	return tb
}

// E2Incremental reproduces the §1/§3 incremental-checkpointing claim (per
// [31], savings depend on the application): full vs incremental checkpoint
// sizes across write densities, plus the tracking overhead between
// checkpoints.
func E2Incremental(mib int) *trace.Table {
	tb := trace.NewTable(
		"E2 — full vs incremental checkpoint size by application write pattern",
		"workload", "full(MB)", "mean-delta(MB)", "delta/full", "track-faults", "track-overhead(ms)")
	apps := []kernel.Program{
		workload.Dense{MiB: mib},
		workload.Stencil{MiB: mib},
		workload.Sparse{MiB: mib, WriteFrac: 0.10, Seed: 2},
		workload.Sparse{MiB: mib, WriteFrac: 0.01, Seed: 2},
		workload.PointerChase{MiB: mib, WriteEvery: 64, Seed: 2},
	}
	for _, app := range apps {
		k := newMachine("e2", app)
		p, err := k.Spawn(app.Name())
		if err != nil {
			continue
		}
		workload.SetIterations(p, 1<<30)
		runTo(k, p, 2)

		trk := checkpoint.NewKernelWPTracker(k, p)
		if err := trk.Arm(); err != nil {
			continue
		}
		acc := &checkpoint.KernelAccessor{K: k, P: p}
		// First capture: the full baseline.
		k.Stop(p)
		_, fullSt, err := checkpoint.Capture(checkpoint.Request{
			Acc: acc, Trk: trk, Mechanism: "e2", Hostname: "e2", Seq: 1, Now: k.Now(),
		})
		if err != nil {
			continue
		}
		k.Wake(p)
		// Three incremental epochs.
		var deltaSum int
		const epochs = 3
		for e := 0; e < epochs; e++ {
			runTo(k, p, p.Regs().PC+1)
			k.Stop(p)
			_, st, err := checkpoint.Capture(checkpoint.Request{
				Acc: acc, Trk: trk, Mechanism: "e2", Hostname: "e2",
				Seq: uint64(e + 2), Parent: "x", Now: k.Now(),
			})
			if err != nil {
				break
			}
			deltaSum += st.PayloadBytes
			k.Wake(p)
		}
		meanDelta := deltaSum / epochs
		ts := trk.Stats()
		tb.Row(app.Name(), mb(fullSt.PayloadBytes), mb(meanDelta),
			fmt.Sprintf("%.3f", float64(meanDelta)/float64(fullSt.PayloadBytes)),
			int64(ts.Faults), ts.RuntimeOverhead.Millis())
		trk.Close()
	}
	tb.Note("paper [31]: \"the reduction in the size of the checkpoint data depends strongly on the application\"")
	return tb
}

// E3BlockSize reproduces the probabilistic/adaptive-block-size analysis of
// [23] and [1]: a block-size sweep trades hash time against shipped bytes,
// with the analytic miss probability of narrow checksums.
func E3BlockSize(mib int, blockSizes []int) *trace.Table {
	tb := trace.NewTable(
		"E3 — probabilistic checkpointing: block-size sweep (pointer-chase workload)",
		"block(B)", "delta(MB)", "hash-time(ms)", "blocks-changed", "P[miss]@16bit")
	for _, bs := range blockSizes {
		prog := workload.PointerChase{MiB: mib, WriteEvery: 16, Seed: 5}
		k := newMachine("e3", prog)
		p, _ := k.Spawn(prog.Name())
		workload.SetIterations(p, 1<<30)
		runTo(k, p, 4096)
		k.Stop(p)

		acc := &checkpoint.KernelAccessor{K: k, P: p}
		led := costmodel.NewLedger()
		trk, err := checkpoint.NewHashTracker(acc, led, k.CM, bs, 16)
		if err != nil {
			continue
		}
		if err := trk.Arm(); err != nil {
			continue
		}
		k.Wake(p)
		runTo(k, p, p.Regs().PC+4096)
		k.Stop(p)
		led.Reset()
		rs, err := trk.Collect()
		if err != nil {
			continue
		}
		bytes := 0
		for _, r := range rs {
			bytes += r.Length
		}
		nBlocks := bytes / bs
		tb.Row(bs, mb(bytes), led.Total.Millis(), nBlocks,
			fmt.Sprintf("%.2e", trk.MissProbability(nBlocks)))
		trk.Close()
	}
	// Hybrid row: page tracking narrows hashing to dirty pages only.
	{
		prog := workload.PointerChase{MiB: mib, WriteEvery: 16, Seed: 5}
		k := newMachine("e3h", prog)
		p, _ := k.Spawn(prog.Name())
		workload.SetIterations(p, 1<<30)
		runTo(k, p, 4096)
		k.Stop(p)
		led := costmodel.NewLedger()
		trk, err := checkpoint.NewHybridTracker(k, p, led, 256)
		if err == nil && trk.Arm() == nil {
			if _, err := trk.Collect(); err == nil { // baseline
				k.Wake(p)
				runTo(k, p, p.Regs().PC+4096)
				k.Stop(p)
				led.Reset()
				if rs, err := trk.Collect(); err == nil {
					bytes := 0
					for _, r := range rs {
						bytes += r.Length
					}
					tb.Row("hybrid-256", mb(bytes), led.Total.Millis(), bytes/256, "0 (exact)")
				}
			}
			trk.Close()
		}
	}

	// Adaptive row.
	prog := workload.PointerChase{MiB: mib, WriteEvery: 16, Seed: 5}
	k := newMachine("e3a", prog)
	p, _ := k.Spawn(prog.Name())
	workload.SetIterations(p, 1<<30)
	runTo(k, p, 4096)
	k.Stop(p)
	acc := &checkpoint.KernelAccessor{K: k, P: p}
	atrk, err := checkpoint.NewAdaptiveTracker(acc, costmodel.Discard{}, k.CM, nil)
	if err == nil && atrk.Arm() == nil {
		for e := 0; e < 4; e++ {
			k.Wake(p)
			runTo(k, p, p.Regs().PC+4096)
			k.Stop(p)
			_, _ = atrk.Collect()
		}
		tb.Note("adaptive tracker [1] converged to block size %d B", atrk.Granularity())
		atrk.Close()
	}
	tb.Note("paper [23]: finer blocks shrink deltas at higher hash cost; checksum width sets the miss risk")
	return tb
}

// E4Agents measures §4.1's comparison of the three system-level agents
// under background load: the kernel-signal path defers to the target's
// next kernel→user transition, the self-checkpointing syscall path waits
// for the application's next checkpoint call, and the kernel-thread path
// depends on its scheduling class.
func E4Agents(loads []int) *trace.Table {
	tb := trace.NewTable(
		"E4 — initiation delay and total latency of system-level agents vs background load",
		"load", "agent", "init-delay(ms)", "total(ms)")
	for _, load := range loads {
		type agent struct {
			label string
			mk    func() mechanism.Mechanism
		}
		agents := []agent{
			{"kthread-FIFO(CRAK)", func() mechanism.Mechanism { return syslevel.NewCRAK() }},
			{"kthread-OTHER", func() mechanism.Mechanism { return syslevel.NewCRAKWithPolicy(proc.SchedOther, 20) }},
			{"ksignal(EPCKPT)", func() mechanism.Mechanism { return syslevel.NewEPCKPT() }},
			{"syscall(VMADump)", func() mechanism.Mechanism { return syslevel.NewVMADump(0, nil) }},
		}
		for _, a := range agents {
			m := a.mk()
			prog := workload.Sparse{MiB: 4, WriteFrac: 0.1, Seed: 3}
			prepared := m.Prepare(prog)
			progs := []kernel.Program{prepared}
			for i := 0; i < load; i++ {
				progs = append(progs, workload.Spin{Tag: fmt.Sprintf("bg%d", i)})
			}
			k := newMachine("e4", progs...)
			if err := m.Install(k); err != nil {
				continue
			}
			p, err := k.Spawn(prepared.Name())
			if err != nil {
				continue
			}
			_ = m.Setup(k, p)
			workload.SetIterations(p, 1<<30)
			for i := 0; i < load; i++ {
				bg, _ := k.Spawn(workload.Spin{Tag: fmt.Sprintf("bg%d", i)}.Name())
				workload.SetIterations(bg, 1<<30)
			}
			k.RunFor(5 * simtime.Millisecond)
			tk, err := mechanism.Checkpoint(m, k, p, localDisk(), nil)
			if err != nil {
				continue
			}
			tb.Row(load, a.label, tk.InitiationDelay().Millis(), tk.Total().Millis())
		}
	}
	tb.Note("paper §4.1: signal delivery is deferred to the target's next kernel→user transition;")
	tb.Note("a SCHED_FIFO kernel thread runs to completion regardless of load")
	return tb
}
