package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// E18Scale measures the fleet-scale control plane at the two anchors of
// the scale pair — the fleet-1k and fleet-10k catalog scenarios, both
// run with identical tick, detector bound, and fault density — and
// reports orchestration throughput, detection-latency, and failover
// tails at each scale. The acceptance line is the ratio row: the sharded
// digest architecture's claim is that detection latency does not grow
// with fleet size, gated as 10k-node detect p99 within 2x of the
// 1k-node p99.
func E18Scale(quick bool) *trace.Table {
	s := E18Bench(quick)
	tb := trace.NewTable(
		"E18 — fleet scale: detection and failover latency vs fleet size",
		"scenario", "nodes", "shards", "pass", "events/s", "detect p99(ms)", "failover p99(ms)", "timers")
	for _, p := range s.Points {
		tb.Row(p.Name, fmt.Sprint(p.Nodes), fmt.Sprint(p.Shards), fmt.Sprint(p.Pass),
			fmt.Sprintf("%.0f", p.EventsPerSec), fmt.Sprintf("%.2f", p.DetectP99Ms),
			fmt.Sprintf("%.2f", p.FailoverP99Ms), fmt.Sprint(p.Timers))
	}
	tb.Note(fmt.Sprintf("1k→10k detect p99 ratio %.2fx (gate: <= 2x): %v", s.DetectRatio, s.RatioWithin2x))
	tb.Note("timers = armed recurring timers: one digest tick per shard, not one per node")
	return tb
}

// E18ScalePoint is one scenario's measured summary.
type E18ScalePoint struct {
	Name          string   `json:"name"`
	Nodes         int      `json:"nodes"`
	Shards        int      `json:"shards"`
	Jobs          int      `json:"jobs"`
	Pass          bool     `json:"pass"`
	Failures      []string `json:"failures,omitempty"`
	EventsPerSec  float64  `json:"events_per_sec"`
	WallMs        float64  `json:"wall_ms"`
	DetectP50Ms   float64  `json:"detect_p50_ms"`
	DetectP99Ms   float64  `json:"detect_p99_ms"`
	FailoverP99Ms float64  `json:"failover_p99_ms"`
	Detections    int      `json:"detections"`
	Checkpoints   int64    `json:"checkpoints"`
	Migrations    int64    `json:"migrations"`
	Timers        int      `json:"timers"`
}

// E18Summary is the payload of BENCH_8.json.
type E18Summary struct {
	Points []E18ScalePoint `json:"points"`
	// DetectRatio is fleet-10k's detect p99 over fleet-1k's — the number
	// the scale claim stands on.
	DetectRatio   float64 `json:"detect_p99_ratio_10k_vs_1k"`
	RatioWithin2x bool    `json:"ratio_within_2x"`
	AllPass       bool    `json:"all_pass"`
}

// E18Bench runs the scale pair and returns the machine-readable summary
// (the bench-scale make target). The quick flag is accepted for CLI
// symmetry with the other benches but changes nothing: the whole pair is
// simulated-time work that completes in under a second of wall clock, so
// CI always measures the real 10k-node scenario.
func E18Bench(quick bool) E18Summary {
	_ = quick
	out := E18Summary{AllPass: true}
	var p99 [2]float64
	for i, name := range []string{"fleet-1k", "fleet-10k"} {
		sc, ok := scenario.Find(name)
		if !ok {
			panic("E18: scenario " + name + " missing from catalog")
		}
		res := scenario.Run(sc)
		out.Points = append(out.Points, E18ScalePoint{
			Name: res.Name, Nodes: sc.Config.Nodes, Shards: sc.Config.Shards, Jobs: sc.Config.Jobs,
			Pass: res.Pass, Failures: res.Failures,
			EventsPerSec: res.EventsPerSec, WallMs: res.WallMillis,
			DetectP50Ms: res.Stats.DetectP50, DetectP99Ms: res.Stats.DetectP99,
			FailoverP99Ms: res.Stats.FailoverP99,
			Detections:    res.Stats.Detections, Checkpoints: res.Stats.Checkpoints,
			Migrations: res.Stats.Migrations, Timers: res.Stats.Timers,
		})
		p99[i] = res.Stats.DetectP99
		if !res.Pass {
			out.AllPass = false
		}
	}
	if p99[0] > 0 {
		out.DetectRatio = p99[1] / p99[0]
	}
	out.RatioWithin2x = out.DetectRatio > 0 && out.DetectRatio <= 2.0
	return out
}
