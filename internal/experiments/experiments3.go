package experiments

import (
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E11StorageFaults measures crash consistency of the checkpoint path
// itself: a detailed-cluster job runs to completion under fail-stop node
// failures while every storage write can crash mid-transfer, be silently
// truncated, or hit a server outage. The contrast is the commit protocol
// — atomic (stage + durability barrier + publish) vs the legacy in-place
// write — on otherwise identical clusters with the same seed.
func E11StorageFaults(writeFault float64) *trace.Table {
	tb := trace.NewTable(
		"E11 — completion and image integrity under injected storage faults, by commit protocol",
		"commit", "completed", "makespan(ms)", "ckpts", "restarts",
		"retried", "fellback", "torn@restore", "lost", "torn-disk", "debris")
	for _, unsafe := range []bool{false, true} {
		tb.Row(e11Run(writeFault, unsafe)...)
	}
	tb.Note("per-write fault rate %.0f%%; torn@restore/lost = corrupt or vanished images hit by recovery;", writeFault*100)
	tb.Note("torn-disk = committed images that no longer decode; debris = unpublished staging objects")
	tb.Note("paper §4.1: checkpoints must survive \"a failure of the machine\" — including the one")
	tb.Note("that interrupts the checkpoint write itself")
	return tb
}

// e11Run drives one Supervisor job over storage faults and returns the
// table row. Both commit modes build identical clusters from the same
// seed, so every divergence in the row traces back to the protocol.
func e11Run(writeFault float64, unsafeCommit bool) []any {
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.2, Seed: 11}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 3, Seed: 11, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	c.EnableStorageFaults(cluster.StorageFaultConfig{
		WriteFault:   writeFault,
		OutageFrac:   0.25,
		SilentTear:   writeFault,
		PublishFault: writeFault / 5,
		// Outages outlast the retry budget (~7ms of doubling backoff), so
		// some rounds exhaust their retries and take the local-disk
		// fallback instead of just waiting the server out.
		ServerRepair: 20 * simtime.Millisecond,
	})
	inj := cluster.NewInjector(cluster.Exponential{Mean: 40 * simtime.Millisecond},
		3*simtime.Millisecond, 21, 3)
	c.SetInjector(inj)
	sup := cluster.MustNewSupervisor(cluster.SupervisorConfig{
		C:             c,
		MkMech:        func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:          prog,
		Iterations:    600,
		Policy:        policy.Fixed(5 * simtime.Millisecond),
		LocalFallback: true,
		UnsafeCommit:  unsafeCommit,
	})
	err := sup.Run(10 * simtime.Second)
	mode := "atomic"
	if unsafeCommit {
		mode = "unsafe"
	}
	completed := err == nil && sup.Completed

	// End-of-run integrity sweep: decode every committed image left on the
	// server and the node disks. Atomic commit guarantees tornDisk == 0 —
	// a crash can only tear a staging object, which the sweep counts as
	// debris, never as an image.
	var tornDisk, debris int
	if c.Server != nil {
		_, tn, st := checkpoint.Audit(c.Node(0).Remote())
		tornDisk += tn
		debris += st
	}
	for _, n := range c.Nodes() {
		if !n.Alive() {
			continue
		}
		_, tn, st := checkpoint.Audit(n.Disk)
		tornDisk += tn
		debris += st
	}
	return []any{
		mode, completed, sup.Makespan.Millis(),
		sup.Checkpoints, sup.Restarts,
		sup.Counters.Get("ckpt.retried"), sup.Counters.Get("ckpt.fellback"),
		sup.Counters.Get("ckpt.torn"), sup.Counters.Get("ckpt.lost"),
		tornDisk, debris,
	}
}
