package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/trace"
)

// E13ChaosSweep runs the deterministic chaos harness over a block of
// consecutive seeds twice — once as shipped and once with epoch fencing
// disabled — and tabulates invariant violations per configuration. The
// shipped build must hold every invariant across the whole sweep; the
// broken build exists to prove the harness has teeth: the double-commit
// checker must catch a fenced-off incarnation's publish landing on some
// seeds, and each catch is replayable from the seed alone.
func E13ChaosSweep(startSeed int64, seeds int) *trace.Table {
	tb := trace.NewTable(
		"E13 — seeded chaos sweep: invariant violations, shipped vs fencing-disabled",
		"config", "seeds", "completed", "double-commit", "acked-durability",
		"state-digest", "no-oracle", "liveness", "first-bad-seed")
	for _, broken := range []bool{false, true} {
		name := "shipped"
		if broken {
			name = "no-fencing"
		}
		completed := 0
		byInv := map[string]int{}
		firstBad := ""
		for i := 0; i < seeds; i++ {
			sp := chaos.Generate(startSeed + int64(i))
			sp.NoFencing = broken
			r := chaos.Run(sp)
			if r.Completed {
				completed++
			}
			for _, v := range r.Violations {
				byInv[v.Invariant]++
			}
			if len(r.Violations) > 0 && firstBad == "" {
				firstBad = fmt.Sprintf("%d", sp.Seed)
			}
		}
		tb.Row(name, seeds, completed, byInv["double-commit"], byInv["acked-durability"],
			byInv["state-digest"], byInv["no-oracle"], byInv["liveness"], firstBad)
	}
	tb.Note("same seed block for both rows: the only delta is the NoFencing knob")
	tb.Note("a first-bad-seed replays with chaos.Replay(seed, \"\") and shrinks with chaos.Shrink")
	return tb
}
