package experiments

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E16Restore measures the restore fast path: modeled recovery latency as
// the delta chain deepens, at replay widths 1/4/8, against the one-full-
// image baseline — then the same 16-delta chain after a server-side fold.
// The claim under test is the bugfix's acceptance line: with last-writer-
// wins pruning and parallel replay, a 16-delta restore stays within ~2x
// of reading a single full image, and compaction closes the rest of the
// gap entirely.
func E16Restore(quick bool) *trace.Table {
	s := E16Bench(quick)
	tb := trace.NewTable(
		fmt.Sprintf("E16 — restore latency vs chain depth and replay width (sparse %d MiB)", s.MiB),
		"deltas", "workers", "latency(ms)", "vs full read")
	tb.Row(0, 1, fmt.Sprintf("%.2f", s.FullReadMs), "1.00x")
	for _, pt := range s.Points {
		tb.Row(pt.Deltas, pt.Workers, fmt.Sprintf("%.2f", pt.LatencyMs), fmt.Sprintf("%.2fx", pt.VsFull))
	}
	tb.Row(fmt.Sprintf("%d(folded)", s.Compacted.DeltasBefore), s.Compacted.Workers,
		fmt.Sprintf("%.2f", s.Compacted.LatencyMs), fmt.Sprintf("%.2fx", s.Compacted.VsFull))
	tb.Note("latency = modeled storage read time for the chain + modeled copy time for the pruned replay plan")
	tb.Note("identical restored bytes at every width; workers only move the simulated copy time")
	if s.Cluster.Completed {
		tb.Note(fmt.Sprintf("autonomic run (CompactAfter=%d): restore p50 %.2f ms, p99 %.2f ms over %d failover(s); %d fold(s) retired %d delta(s)",
			s.Cluster.CompactAfter, s.Cluster.P50Ms, s.Cluster.P99Ms, s.Cluster.Restores,
			s.Cluster.Folds, s.Cluster.FoldedDeltas))
	}
	return tb
}

// E16Point is one (chain depth, replay width) sample.
type E16Point struct {
	Deltas    int     `json:"deltas"`
	Workers   int     `json:"workers"`
	ChainLen  int     `json:"chain_len"`
	LatencyMs float64 `json:"latency_ms"`
	VsFull    float64 `json:"vs_full"`
}

// E16Compacted is the 16-delta chain re-measured after one server-side
// fold: chain length collapses to 1 and the restore pays the full-image
// price again.
type E16Compacted struct {
	DeltasBefore int     `json:"deltas_before"`
	Workers      int     `json:"workers"`
	ChainLen     int     `json:"chain_len"`
	LatencyMs    float64 `json:"latency_ms"`
	VsFull       float64 `json:"vs_full"`
}

// E16ClusterSummary is the failover-measured restore.latency histogram
// from an autonomic run with background compaction enabled.
type E16ClusterSummary struct {
	Completed    bool    `json:"completed"`
	CompactAfter int     `json:"compact_after"`
	Restores     int     `json:"restores"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Folds        int64   `json:"folds"`
	FoldedDeltas int64   `json:"folded_deltas"`
	FinalChain   int     `json:"final_chain_len"`
}

// E16Summary is the payload of BENCH_6.json.
type E16Summary struct {
	MiB        int               `json:"mib"`
	FullReadMs float64           `json:"full_read_ms"`
	Points     []E16Point        `json:"restore_latency"`
	Compacted  E16Compacted      `json:"compacted"`
	Cluster    E16ClusterSummary `json:"cluster"`
}

// E16Bench runs the sweep and the compacted/cluster variants and returns
// the machine-readable summary (the bench-restore make target).
func E16Bench(quick bool) E16Summary {
	mib := 4
	if quick {
		mib = 2
	}
	out := E16Summary{MiB: mib}

	// Baseline: a chain of one full image — pure read + full-size copy.
	base, _ := e16Chain(mib, 0)
	_, out.FullReadMs = e16RestoreLatency(base.tgt, base.objects, 1)

	for _, deltas := range []int{4, 8, 16} {
		ch, _ := e16Chain(mib, deltas)
		for _, w := range []int{1, 4, 8} {
			n, ms := e16RestoreLatency(ch.tgt, ch.objects, w)
			out.Points = append(out.Points, E16Point{
				Deltas: deltas, Workers: w, ChainLen: n,
				LatencyMs: ms, VsFull: ms / out.FullReadMs,
			})
		}
		if deltas == 16 {
			// Fold the deep chain server-side and re-measure: the restore
			// should land back on the full-image baseline.
			if st, err := storage.CompactChain(ch.tgt, ch.objects, checkpoint.FoldEncodedChain, nil); err == nil && st.Folded != "" {
				n, ms := e16RestoreLatency(ch.tgt, []string{st.Folded}, 8)
				out.Compacted = E16Compacted{
					DeltasBefore: deltas, Workers: 8, ChainLen: n,
					LatencyMs: ms, VsFull: ms / out.FullReadMs,
				}
			}
		}
	}
	out.Cluster = e16Cluster(quick)
	return out
}

// e16ChainResult is a built chain: its target, every object name in
// chain order, and the leaf.
type e16ChainResult struct {
	tgt     storage.Target
	objects []string
	leaf    string
}

// e16Chain captures one full image plus nDeltas incremental images of a
// sparse workload onto a remote target, advancing the process between
// captures so each delta carries a fresh dirty set. The write fraction
// models the checkpoint-interval dirty rate incremental shipping is for:
// a few percent of pages per interval — deltas that are small beside the
// full image, which is exactly when deep chains are worth keeping.
func e16Chain(mib, nDeltas int) (e16ChainResult, error) {
	prog := workload.Sparse{MiB: mib, WriteFrac: 0.02, Seed: 16}
	k := newMachine("e16", prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		return e16ChainResult{}, err
	}
	workload.SetIterations(p, 1<<30)
	srv := storage.NewServer("e16-srv", costmodel.Default2005())
	res := e16ChainResult{tgt: storage.NewRemote("e16-net", srv)}

	trk := checkpoint.NewKernelWPTracker(k, p)
	if err := trk.Arm(); err != nil {
		return e16ChainResult{}, err
	}
	defer trk.Close()

	var parent string
	for seq := uint64(1); seq <= uint64(nDeltas+1); seq++ {
		// Fine-grained stepping: one workload iteration per checkpoint
		// interval, so each delta carries WriteFrac of the pages — the
		// small-delta regime incremental chains exist for.
		target := p.Regs().PC + 1
		for p.Regs().PC < target && p.State != proc.StateZombie {
			k.RunFor(10 * simtime.Microsecond)
		}
		k.Stop(p)
		img, _, err := checkpoint.Capture(checkpoint.Request{
			Acc: &checkpoint.KernelAccessor{K: k, P: p}, Trk: trk,
			Target: res.tgt, Env: storage.NopEnv(),
			Mechanism: "e16", Hostname: "e16", Seq: seq, Parent: parent, Now: k.Now(),
		})
		if err != nil {
			return e16ChainResult{}, err
		}
		parent = img.ObjectName()
		res.objects = append(res.objects, parent)
		k.Wake(p)
	}
	res.leaf = parent
	return res, nil
}

// e16RestoreLatency models one failover restore from the chain the
// manifest names: the storage time of a batched chain read plus the copy
// time of the pruned replay plan at the given width. Identical to the
// supervisor's restore.latency accounting, measured on a quiet target.
// The manifest may be stale after a fold (ancestors retired); reload it
// from the leaf like the supervisor's fallback walk would.
func e16RestoreLatency(tgt storage.Target, objects []string, workers int) (int, float64) {
	var wait simtime.Duration
	env := &storage.Env{Bill: costmodel.Discard{},
		Wait: func(d simtime.Duration, _ string) { wait += d }}
	chain, err := checkpoint.LoadChainManifest(tgt, env, objects)
	if err != nil {
		wait = 0
		chain, err = checkpoint.LoadChain(tgt, env, objects[len(objects)-1])
		if err != nil {
			return 0, 0
		}
	}
	lat := wait
	if n, err := checkpoint.ReplayBytes(chain); err == nil {
		lat += checkpoint.RestoreCost(n, workers)
	}
	return len(chain), lat.Millis()
}

// e16Cluster drives one autonomic job with incremental shipping, real
// transient failures, and background compaction, and reads back the
// failover-measured restore latency distribution.
func e16Cluster(quick bool) E16ClusterSummary {
	iters := 2000
	if quick {
		iters = 500
	}
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.1, Seed: 16}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 16, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	const compactAfter = 4
	sup := cluster.MustNewSupervisor(cluster.SupervisorConfig{
		C:            c,
		MkMech:       func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:         prog,
		Iterations:   uint64(iters),
		Policy:       policy.Fixed(simtime.Millisecond),
		Detector:     mon,
		ControlNode:  3,
		Incremental:  true,
		RebaseEvery:  64, // sparse rebases: compaction owns the chain bound
		CompactAfter: compactAfter,
		Pipeline:     &cluster.PipelineConfig{MaxInFlight: 4},
	})

	// Scripted failures (not a stochastic injector) so the bench always
	// measures real failover restores: kill the job's node right after
	// the first server-side fold, and again 15ms later — each restore
	// then replays a folded-or-short chain, the steady state compaction
	// maintains. Failing earlier would race the ~25ms first full-image
	// publish and measure scratch restarts instead of restores.
	jobNode := 0
	folds := 0
	sup.OnEvent = func(ev cluster.Event) {
		switch ev.Kind {
		case cluster.EvAdmit:
			jobNode = ev.Node
		case cluster.EvCompact:
			folds++
		}
	}
	fails := 0
	var nextFail simtime.Time
	rebootNode, rebootAt := -1, simtime.Time(0)
	c.OnStep(func() {
		if rebootNode >= 0 && c.Now() >= rebootAt {
			c.Reboot(rebootNode)
			rebootNode = -1
		}
		armed := (fails == 0 && folds > 0) || (fails == 1 && c.Now() >= nextFail)
		if fails < 2 && armed && c.NodeAlive(jobNode) {
			fails++
			c.Fail(jobNode)
			rebootNode, rebootAt = jobNode, c.Now().Add(2*simtime.Millisecond)
			nextFail = c.Now().Add(15 * simtime.Millisecond)
		}
	})
	err := sup.Run(10 * simtime.Second)

	snap := sup.Metrics.Hist("restore.latency").Snapshot()
	s := E16ClusterSummary{
		Completed:    err == nil && sup.Completed,
		CompactAfter: compactAfter,
		Restores:     snap.N,
		P50Ms:        snap.P50,
		P99Ms:        snap.P99,
		Folds:        c.Counters.Get("compact.folds"),
		FoldedDeltas: c.Counters.Get("compact.folded_deltas"),
	}
	if leaf := sup.LastLeaf(); leaf != "" {
		if chain, cerr := checkpoint.LoadChain(c.Node(3).Remote(), nil, leaf); cerr == nil {
			s.FinalChain = len(chain)
		}
	}
	return s
}
