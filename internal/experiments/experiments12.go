package experiments

import (
	"fmt"
	"hash/fnv"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/detector"
	"repro/internal/mechanism"
	"repro/internal/policy"
	"repro/internal/simos/kernel"
	"repro/internal/simos/mem"
	"repro/internal/simos/proc"
	"repro/internal/simtime"
	"repro/internal/syslevel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E20Policy measures what the policy layer buys: the Young/Daly cadence
// engine against a fixed-interval twin on the same random fault
// schedule (work lost to failures, §4's dominant cost term), and the
// liveness content policy against a plain write-protect tracker on a
// twin delta chain (bytes shipped, with the restored live state proved
// byte-identical). Both halves are the BENCH_10 acceptance gates.
func E20Policy(quick bool) *trace.Table {
	s := E20Bench(quick)
	tb := trace.NewTable(
		"E20 — policy-driven cadence and content vs fixed/full twins",
		"variant", "completed", "failures", "work lost(ms)", "ckpts", "recomputes", "final interval(ms)")
	for _, c := range []E20CadenceSummary{s.Fixed, s.YoungDaly} {
		tb.Row(c.Policy, c.Completed, c.Failures, fmt.Sprintf("%.2f", c.WorkLostMs),
			c.Checkpoints, c.Recomputes, fmt.Sprintf("%.3f", c.FinalIntervalMs))
	}
	tb.Note(fmt.Sprintf("work-lost ratio youngdaly/fixed %.2fx (gate: <= %.1fx); fingerprints match=%v",
		s.WorkLostRatio, e20WorkLostGate, s.FingerprintsMatch))
	lv := s.Liveness
	tb.Note(fmt.Sprintf("liveness chain %d bytes vs tracker baseline %d (%.2fx, gate: <= %.1fx); excluded %d bytes over %d epochs",
		lv.FilteredBytes, lv.BaselineBytes, lv.BytesRatio, e20BytesGate, lv.ExcludedBytes, lv.Epochs))
	tb.Note(fmt.Sprintf("restored live state byte-identical=%v (digest %#x), restored fingerprints at reference=%v; overall pass=%v",
		lv.LiveDigestMatch, lv.FilteredDigest, lv.FingerprintMatch, s.GatePass))
	return tb
}

// Acceptance bounds for BENCH_10: the adaptive cadence must lose at
// most 0.8x the fixed twin's work on the same fault schedule, and the
// liveness chain must ship at most 0.9x the tracker baseline's bytes.
const (
	e20WorkLostGate = 0.8
	e20BytesGate    = 0.9
)

// E20CadenceSummary is one autonomic run under a cadence policy.
type E20CadenceSummary struct {
	Policy          string  `json:"policy"`
	Completed       bool    `json:"completed"`
	Fingerprint     uint64  `json:"fingerprint"`
	Checkpoints     int     `json:"checkpoints"`
	Restarts        int     `json:"restarts"`
	Failures        int     `json:"failures"`
	WorkLostMs      float64 `json:"work_lost_ms"`
	Recomputes      int     `json:"recomputes"`
	FinalIntervalMs float64 `json:"final_interval_ms"`
}

// E20LivenessSummary is the twin-chain content-policy comparison.
type E20LivenessSummary struct {
	Epochs           int     `json:"epochs"`
	FilteredBytes    int     `json:"filtered_bytes"`
	BaselineBytes    int     `json:"baseline_bytes"`
	BytesRatio       float64 `json:"bytes_ratio"`
	ExcludedBytes    int     `json:"excluded_bytes"`
	FilteredDigest   uint64  `json:"filtered_live_digest"`
	BaselineDigest   uint64  `json:"baseline_live_digest"`
	LiveDigestMatch  bool    `json:"live_digest_match"`
	FingerprintMatch bool    `json:"fingerprint_match"`
}

// E20Summary is the payload of BENCH_10.json.
type E20Summary struct {
	Fixed             E20CadenceSummary  `json:"cluster_fixed"`
	YoungDaly         E20CadenceSummary  `json:"cluster_youngdaly"`
	WorkLostRatio     float64            `json:"work_lost_ratio"`
	FingerprintsMatch bool               `json:"fingerprints_match"`
	Liveness          E20LivenessSummary `json:"liveness"`
	GatePass          bool               `json:"gate_pass"`
}

// E20Bench runs both halves and returns the machine-readable summary
// (the bench-policy make target). GatePass asserts the acceptance line:
// youngdaly work lost at or below 0.8x the fixed twin with matching
// completion fingerprints, and liveness delta bytes at or below 0.9x
// the tracker baseline with the restored live state byte-identical.
func E20Bench(quick bool) E20Summary {
	out := E20Summary{GatePass: true}

	out.Fixed = e20Cluster(quick, policy.Fixed(12*simtime.Millisecond))
	out.YoungDaly = e20Cluster(quick, policy.YoungDaly(12*simtime.Millisecond))
	if out.Fixed.WorkLostMs > 0 {
		out.WorkLostRatio = out.YoungDaly.WorkLostMs / out.Fixed.WorkLostMs
	}
	out.FingerprintsMatch = out.Fixed.Completed && out.YoungDaly.Completed &&
		out.Fixed.Fingerprint == out.YoungDaly.Fingerprint
	if !out.FingerprintsMatch || out.Fixed.WorkLostMs == 0 ||
		out.WorkLostRatio > e20WorkLostGate || out.YoungDaly.Recomputes == 0 {
		out.GatePass = false
	}

	out.Liveness = e20Liveness(quick)
	lv := out.Liveness
	if !lv.LiveDigestMatch || !lv.FingerprintMatch ||
		lv.ExcludedBytes == 0 || lv.BytesRatio > e20BytesGate {
		out.GatePass = false
	}
	return out
}

// e20Cluster drives one autonomic job under the given cadence policy
// with a seeded random failure injector. The injector's schedule is a
// function of its own RNG and the simulated clock only, so the fixed
// and youngdaly twins face the same fault arrivals; what differs is how
// much work each cadence abandons per failure.
func e20Cluster(quick bool, spec policy.Spec) E20CadenceSummary {
	iters := 2000
	if quick {
		iters = 500
	}
	prog := workload.Sparse{MiB: 1, WriteFrac: 0.1, Seed: 20}
	reg := kernel.NewRegistry()
	reg.MustRegister(prog)
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 20, KernelCfg: kernel.DefaultConfig("")},
		costmodel.Default2005(), reg)
	mon := detector.NewMonitor(c, detector.NewTimeout(2*simtime.Millisecond),
		detector.Config{Period: 200 * simtime.Microsecond, Observer: 3}, c.Counters)
	sup := cluster.MustNewSupervisor(cluster.SupervisorConfig{
		C:           c,
		MkMech:      func() mechanism.Mechanism { return syslevel.NewCRAK() },
		Prog:        prog,
		Iterations:  uint64(iters),
		Policy:      spec,
		Detector:    mon,
		ControlNode: 3,
		Incremental: true,
		RebaseEvery: 8,
	})
	// Transient failures on the three worker nodes, mean gap 10ms per
	// node against the fixed 12ms cadence: long enough that the fixed
	// twin still completes, short enough that Young's optimum (roughly
	// sqrt(2*cost*MTBF)) sits well below the base interval.
	inj := cluster.NewInjector(cluster.Exponential{Mean: 10 * simtime.Millisecond},
		simtime.Millisecond, 20, 3)
	c.SetInjector(inj)
	err := sup.Run(20 * simtime.Second)

	lost := sup.Metrics.Hist("policy.work_lost").Snapshot()
	return E20CadenceSummary{
		Policy:          string(sup.Policy.Spec().Strategy),
		Completed:       err == nil && sup.Completed,
		Fingerprint:     sup.Fingerprint,
		Checkpoints:     sup.Checkpoints,
		Restarts:        sup.Restarts,
		Failures:        lost.N,
		WorkLostMs:      lost.Mean * float64(lost.N),
		Recomputes:      sup.Policy.Recomputes(),
		FinalIntervalMs: sup.Policy.Interval().Millis(),
	}
}

// e20Driver steps a workload by direct program calls so the filtered
// and baseline twins see byte-identical access sequences.
type e20Driver struct {
	prog kernel.Program
	k    *kernel.Kernel
	p    *proc.Process
	ctx  *kernel.Context
}

func e20NewDriver(name string, prog kernel.Program, iters uint64) (*e20Driver, error) {
	k := newMachine(name, prog)
	p, err := k.Spawn(prog.Name())
	if err != nil {
		return nil, err
	}
	workload.SetIterations(p, iters)
	return &e20Driver{prog: prog, k: k, p: p,
		ctx: &kernel.Context{K: k, P: p, T: p.MainThread()}}, nil
}

func (d *e20Driver) step(n uint64) error {
	target := d.p.Regs().PC + n
	for d.p.Regs().PC < target && d.p.State != proc.StateZombie {
		if _, err := d.prog.Step(d.ctx); err != nil {
			return err
		}
	}
	if d.p.State == proc.StateZombie {
		return fmt.Errorf("e20: workload finished mid-epoch")
	}
	return nil
}

func (d *e20Driver) capture(trk checkpoint.Tracker, seq uint64, parent string) (*checkpoint.Image, error) {
	img, _, err := checkpoint.Capture(checkpoint.Request{
		Acc:       &checkpoint.KernelAccessor{K: d.k, P: d.p},
		Trk:       trk,
		Mechanism: "e20",
		Hostname:  "e20",
		Seq:       seq,
		Parent:    parent,
		Now:       d.k.Now(),
	})
	return img, err
}

// e20Liveness captures twin delta chains of the same stepped workload —
// one through the liveness tracker, one through the plain write-protect
// tracker — then restores both and proves every page the liveness
// tracker did not explicitly declare dead is byte-identical between the
// restores, and that both restored processes still run to the reference
// fingerprint.
func e20Liveness(quick bool) E20LivenessSummary {
	mib := 2
	if quick {
		mib = 1
	}
	const iters = 14
	const baseAt = 2
	const epochs = 5
	prog := workload.Sparse{MiB: mib, WriteFrac: 0.3, Seed: 21}
	out := E20LivenessSummary{Epochs: epochs}

	// Undisturbed reference fingerprint.
	kr := newMachine("e20-ref", prog)
	pr, err := kr.Spawn(prog.Name())
	if err != nil {
		return out
	}
	workload.SetIterations(pr, iters)
	if !kr.RunUntilExit(pr, kr.Now().Add(10*simtime.Minute)) {
		return out
	}
	want := workload.Fingerprint(pr)

	df, err := e20NewDriver("e20-flt", prog, iters)
	if err != nil {
		return out
	}
	db, err := e20NewDriver("e20-all", prog, iters)
	if err != nil {
		return out
	}
	if df.step(baseAt) != nil || db.step(baseAt) != nil {
		return out
	}
	ftrk := checkpoint.NewKernelLivenessTracker(df.k, df.p, checkpoint.DefaultDeadStreak)
	btrk := checkpoint.NewKernelWPTracker(db.k, db.p)
	if ftrk.Arm() != nil || btrk.Arm() != nil {
		return out
	}
	defer ftrk.Close()
	defer btrk.Close()

	fimg, err := df.capture(ftrk, 1, "")
	if err != nil {
		return out
	}
	bimg, err := db.capture(btrk, 1, "")
	if err != nil {
		return out
	}
	fchain, bchain := []*checkpoint.Image{fimg}, []*checkpoint.Image{bimg}
	excluded := make(map[mem.PageNum]bool)
	for e := 0; e < epochs; e++ {
		if df.step(1) != nil || db.step(1) != nil {
			return out
		}
		if fimg, err = df.capture(ftrk, uint64(e+2), fchain[len(fchain)-1].ObjectName()); err != nil {
			return out
		}
		if bimg, err = db.capture(btrk, uint64(e+2), bchain[len(bchain)-1].ObjectName()); err != nil {
			return out
		}
		fchain, bchain = append(fchain, fimg), append(bchain, bimg)
		for _, r := range ftrk.LastExcluded() {
			for a := r.Addr; a < r.Addr+mem.Addr(r.Length); a += mem.PageSize {
				excluded[a.Page()] = true
			}
		}
	}
	for _, img := range fchain {
		out.FilteredBytes += img.PayloadBytes()
	}
	for _, img := range bchain {
		out.BaselineBytes += img.PayloadBytes()
	}
	out.BytesRatio = float64(out.FilteredBytes) / float64(out.BaselineBytes)
	out.ExcludedBytes = int(ftrk.Stats().ExcludedBytes)

	mf := newMachine("e20-dst-flt", prog)
	pf, err := checkpoint.Restore(mf, fchain, checkpoint.RestoreOptions{Enqueue: true})
	if err != nil {
		return out
	}
	mb := newMachine("e20-dst-all", prog)
	pb, err := checkpoint.Restore(mb, bchain, checkpoint.RestoreOptions{Enqueue: true})
	if err != nil {
		return out
	}
	out.FilteredDigest, err = e20LiveDigest(pf, excluded)
	if err != nil {
		return out
	}
	out.BaselineDigest, err = e20LiveDigest(pb, excluded)
	if err != nil {
		return out
	}
	out.LiveDigestMatch = out.FilteredDigest == out.BaselineDigest

	if !mf.RunUntilExit(pf, mf.Now().Add(10*simtime.Minute)) ||
		!mb.RunUntilExit(pb, mb.Now().Add(10*simtime.Minute)) {
		return out
	}
	out.FingerprintMatch = workload.Fingerprint(pf) == want && workload.Fingerprint(pb) == want
	return out
}

// e20LiveDigest hashes every arena page outside the declared-dead set.
func e20LiveDigest(p *proc.Process, excluded map[mem.PageNum]bool) (uint64, error) {
	arena := p.AS.FindByName(workload.ArenaName)
	if arena == nil {
		return 0, fmt.Errorf("e20: restored process has no arena")
	}
	h := fnv.New64a()
	buf := make([]byte, mem.PageSize)
	for off := uint64(0); off < arena.Length; off += mem.PageSize {
		addr := arena.Start + mem.Addr(off)
		if excluded[addr.Page()] {
			continue
		}
		if err := p.AS.ReadDirect(addr, buf); err != nil {
			return 0, err
		}
		h.Write(buf)
	}
	return h.Sum64(), nil
}
